open Helpers

let feq = Alcotest.(check (float 1e-9))

let test_mean_var () =
  feq "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  feq "variance" (2.0 /. 3.0) (Metrics.variance [ 1.0; 2.0; 3.0 ]);
  feq "stddev of constant" 0.0 (Metrics.stddev [ 4.0; 4.0; 4.0 ]);
  Alcotest.check_raises "empty mean" (Invalid_argument "Metrics.mean: empty")
    (fun () -> ignore (Metrics.mean []))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  feq "median interp" 2.5 (Metrics.median xs);
  feq "p0" 1.0 (Metrics.percentile 0.0 xs);
  feq "p100" 4.0 (Metrics.percentile 100.0 xs);
  feq "p25" 1.75 (Metrics.percentile 25.0 xs);
  feq "singleton" 7.0 (Metrics.percentile 60.0 [ 7.0 ]);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Metrics.percentile: p out of range") (fun () ->
      ignore (Metrics.percentile 120.0 xs))

let test_percentiles_batch () =
  let xs = [ 4.0; 1.0; 3.0; 2.0 ] in
  (match Metrics.percentiles [ 0.0; 25.0; 50.0; 100.0 ] xs with
  | [ p0; p25; p50; p100 ] ->
      feq "p0" 1.0 p0;
      feq "p25" 1.75 p25;
      feq "p50" 2.5 p50;
      feq "p100" 4.0 p100
  | _ -> Alcotest.fail "wrong arity");
  Alcotest.(check (list (float 1e-9))) "empty ps" [] (Metrics.percentiles [] xs);
  Alcotest.check_raises "empty data"
    (Invalid_argument "Metrics.percentiles: empty") (fun () ->
      ignore (Metrics.percentiles [ 50.0 ] []))

let prop_percentiles_match_percentile =
  qcheck_to_alcotest "percentiles agrees with one-at-a-time percentile"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.0) 100.0))
    (fun xs ->
      let ps = [ 0.0; 10.0; 25.0; 50.0; 90.0; 100.0 ] in
      List.for_all2
        (fun p v -> Float.abs (v -. Metrics.percentile p xs) < 1e-9)
        ps
        (Metrics.percentiles ps xs))

let test_linear_fit_exact () =
  let pts = [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  let f = Metrics.linear_fit pts in
  feq "slope" 2.0 f.slope;
  feq "intercept" 1.0 f.intercept;
  feq "r2" 1.0 f.r2

let test_linear_fit_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Metrics.linear_fit: need at least two points") (fun () ->
      ignore (Metrics.linear_fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Metrics.linear_fit: x values are all equal") (fun () ->
      ignore (Metrics.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]))

let test_loglog_power_law () =
  (* y = 3 x^2 exactly. *)
  let pts = List.map (fun x -> (x, 3.0 *. x *. x)) [ 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let f = Metrics.loglog_fit pts in
  feq "exponent" 2.0 f.slope;
  feq "r2" 1.0 f.r2;
  Alcotest.check_raises "nonpositive rejected"
    (Invalid_argument "Metrics.loglog_fit: needs positive coordinates") (fun () ->
      ignore (Metrics.loglog_fit [ (0.0, 1.0); (1.0, 2.0) ]))

let test_growth_ratio () =
  feq "doubling" 2.0 (Metrics.growth_ratio [ (1.0, 1.0); (2.0, 2.0); (3.0, 4.0) ])

let prop_fit_recovers_line =
  qcheck_to_alcotest "linear_fit recovers arbitrary lines"
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) (int_range 3 20))
    (fun (a, b, n) ->
      let pts = List.init n (fun i -> (float_of_int i, a +. (b *. float_of_int i))) in
      let f = Metrics.linear_fit pts in
      Float.abs (f.slope -. b) < 1e-6 && Float.abs (f.intercept -. a) < 1e-6)

let prop_loglog_recovers_exponent =
  qcheck_to_alcotest "loglog_fit recovers power laws"
    QCheck.(pair (float_range 0.2 3.0) (float_range 0.1 10.0))
    (fun (k, c) ->
      let pts = List.map (fun x -> (x, c *. (x ** k))) [ 1.0; 2.0; 4.0; 8.0 ] in
      let f = Metrics.loglog_fit pts in
      Float.abs (f.slope -. k) < 1e-6)

let prop_percentile_monotone =
  qcheck_to_alcotest "percentile monotone in p"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-100.0) 100.0))
    (fun xs ->
      let p25 = Metrics.percentile 25.0 xs in
      let p50 = Metrics.percentile 50.0 xs in
      let p75 = Metrics.percentile 75.0 xs in
      p25 <= p50 && p50 <= p75)

let prop_stddev_nonneg =
  qcheck_to_alcotest "variance non-negative"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (float_range (-50.0) 50.0))
    (fun xs -> Metrics.variance xs >= 0.0)

let () =
  Alcotest.run "metrics"
    [
      ( "units",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_var;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentiles batch" `Quick test_percentiles_batch;
          Alcotest.test_case "linear fit" `Quick test_linear_fit_exact;
          Alcotest.test_case "fit errors" `Quick test_linear_fit_errors;
          Alcotest.test_case "loglog power law" `Quick test_loglog_power_law;
          Alcotest.test_case "growth ratio" `Quick test_growth_ratio;
        ] );
      ( "properties",
        [
          prop_fit_recovers_line;
          prop_loglog_recovers_exponent;
          prop_percentile_monotone;
          prop_percentiles_match_percentile;
          prop_stddev_nonneg;
        ] );
    ]
