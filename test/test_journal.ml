(* The write-ahead journal: CRC framing, encode/scan roundtrips, and —
   the robustness core — torn-write tolerance.  A crash can damage only
   the file's tail, so the tests truncate a known log at EVERY byte
   offset and corrupt every byte of its final record, asserting the scan
   never raises, keeps exactly the intact prefix, and reports (not
   swallows) the torn tail. *)

module Jn = Serve.Journal

let sample_records =
  [
    Jn.Submitted
      {
        id = "a";
        line = "{\"op\":\"submit\",\"id\":\"a\",\"protocol\":\"flood\"}";
      };
    Jn.Result
      {
        id = "a";
        digest = Jn.digest "{\"outcome\":\"quiescent\"}";
        outcome = "done";
        deliveries = 16;
        total_bits = 16;
      };
    Jn.Submitted { id = "b\"\n\\x"; line = "weird \"id\" \\ bytes" };
    Jn.Cancelled { id = "b\"\n\\x"; reason = "watchdog" };
    Jn.Failed { id = "c"; code = "unknown_graph"; msg = "no graph \"g\"" };
  ]

let sample_log () =
  String.concat "" (List.map Jn.encode sample_records)

let check_records msg expected (scan : Jn.scan) =
  Alcotest.(check int) (msg ^ ": record count") (List.length expected)
    (List.length scan.Jn.records);
  List.iteri
    (fun i (e, g) ->
      if e <> g then
        Alcotest.failf "%s: record %d differs:\n  %s\nvs\n  %s" msg i
          (Jn.encode e) (Jn.encode g))
    (List.combine expected scan.Jn.records)

let test_crc32 () =
  (* The IEEE CRC32 check value: crc32("123456789") = 0xcbf43926. *)
  Alcotest.(check int) "IEEE check value" 0xcbf43926 (Jn.crc32 "123456789");
  Alcotest.(check int) "empty" 0 (Jn.crc32 "")

let test_roundtrip () =
  let scan = Jn.scan_string (sample_log ()) in
  check_records "roundtrip" sample_records scan;
  Alcotest.(check bool) "not torn" false scan.Jn.torn;
  Alcotest.(check int) "all bytes valid"
    (String.length (sample_log ()))
    scan.Jn.valid_bytes;
  (* Digest helper agrees with the stdlib. *)
  Alcotest.(check string) "digest = MD5 hex"
    (Digest.to_hex (Digest.string "payload"))
    (Jn.digest "payload")

(* Truncate the log at every byte offset: the scan must keep exactly the
   records whose full framed lines survive, flag everything else as a
   torn tail, and never raise. *)
let test_truncation_sweep () =
  let log = sample_log () in
  let n = String.length log in
  (* Record-boundary offsets, cumulative. *)
  let boundaries =
    List.fold_left
      (fun acc r ->
        (List.hd acc + String.length (Jn.encode r)) :: acc)
      [ 0 ] sample_records
  in
  let intact_at cut =
    (* How many leading records fit entirely in [0, cut). *)
    let rec go taken off = function
      | [] -> taken
      | r :: rest ->
          let off' = off + String.length (Jn.encode r) in
          if off' <= cut then go (taken + 1) off' rest else taken
    in
    go 0 0 sample_records
  in
  for cut = 0 to n do
    let scan = Jn.scan_string (String.sub log 0 cut) in
    let expected =
      List.filteri (fun i _ -> i < intact_at cut) sample_records
    in
    check_records (Printf.sprintf "cut at %d" cut) expected scan;
    let at_boundary = List.mem cut boundaries in
    Alcotest.(check bool)
      (Printf.sprintf "torn flag at %d" cut)
      (not at_boundary) scan.Jn.torn
  done

(* Flip every byte of the final record (xor 0xff maps every hex digit,
   '{', '"' and '\n' out of its alphabet, so damage is always visible to
   framing, checksum or decode): the prefix must survive, the tail must
   be reported torn, nothing may raise. *)
let test_corruption_sweep () =
  let log = sample_log () in
  let prefix = List.filteri (fun i _ -> i < 4) sample_records in
  let tail_start =
    List.fold_left (fun acc r -> acc + String.length (Jn.encode r)) 0 prefix
  in
  for pos = tail_start to String.length log - 1 do
    let b = Bytes.of_string log in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
    let scan = Jn.scan_string (Bytes.to_string b) in
    check_records (Printf.sprintf "corrupt byte %d" pos) prefix scan;
    Alcotest.(check bool)
      (Printf.sprintf "torn at %d" pos)
      true scan.Jn.torn;
    Alcotest.(check int)
      (Printf.sprintf "prefix end at %d" pos)
      tail_start scan.Jn.valid_bytes
  done

(* A record body that decodes as JSON but is not a journal record (bad
   "k", missing members) also stops the scan without raising. *)
let test_alien_records () =
  let frame body = Printf.sprintf "%08x %s\n" (Jn.crc32 body) body in
  let log = Jn.encode (List.hd sample_records) ^ frame "{\"k\":\"martian\"}" in
  let scan = Jn.scan_string log in
  check_records "alien kind" [ List.hd sample_records ] scan;
  Alcotest.(check bool) "alien kind is torn" true scan.Jn.torn;
  let log2 = frame "[1,2,3]" in
  let scan2 = Jn.scan_string log2 in
  Alcotest.(check int) "non-object body" 0 (List.length scan2.Jn.records);
  Alcotest.(check bool) "non-object torn" true scan2.Jn.torn;
  (* Underscores are valid in OCaml int literals but not in our CRC hex
     field — the parser must not accept "0xab_cd"-style damage. *)
  let body = "{\"k\":\"cancel\",\"id\":\"z\",\"reason\":\"r\"}" in
  let crc = Printf.sprintf "%08x" (Jn.crc32 body) in
  let crooked = "0_" ^ String.sub crc 2 6 ^ " " ^ body ^ "\n" in
  let scan3 = Jn.scan_string crooked in
  Alcotest.(check int) "underscored crc rejected" 0
    (List.length scan3.Jn.records);
  Alcotest.(check bool) "underscored crc torn" true scan3.Jn.torn

let with_temp f =
  let path = Filename.temp_file "anonet-journal" ".log" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_open_append_truncates () =
  with_temp (fun path ->
      (* A valid prefix plus a torn tail on disk... *)
      let oc = open_out_bin path in
      output_string oc (sample_log ());
      output_string oc "deadbeef {\"k\":\"result\",\"id\":";  (* no newline *)
      close_out oc;
      (match Jn.open_append path with
      | Error e -> Alcotest.failf "open_append: %s" e
      | Ok (j, scan) ->
          Alcotest.(check bool) "tail reported torn" true scan.Jn.torn;
          check_records "prefix kept" sample_records scan;
          (* ...is amputated, so appends continue a clean log. *)
          Jn.append j (Jn.Cancelled { id = "late"; reason = "cancel" });
          Jn.close j);
      match Jn.scan_file path with
      | Error e -> Alcotest.failf "rescan: %s" e
      | Ok scan ->
          check_records "clean continuation"
            (sample_records @ [ Jn.Cancelled { id = "late"; reason = "cancel" } ])
            scan;
          Alcotest.(check bool) "no longer torn" false scan.Jn.torn)

let test_writer_stats_and_idempotent_close () =
  with_temp (fun path ->
      Sys.remove path;
      (match Jn.scan_file path with
      | Ok scan ->
          Alcotest.(check int) "missing file: empty" 0
            (List.length scan.Jn.records);
          Alcotest.(check bool) "missing file: not torn" false scan.Jn.torn
      | Error e -> Alcotest.failf "missing file: %s" e);
      match Jn.open_append ~sync:false path with
      | Error e -> Alcotest.failf "open_append: %s" e
      | Ok (j, _) ->
          List.iter (Jn.append j) sample_records;
          let st = Jn.stats j in
          Alcotest.(check int) "appends counted"
            (List.length sample_records)
            st.Jn.s_appends;
          Alcotest.(check int) "bytes counted"
            (String.length (sample_log ()))
            st.Jn.s_bytes;
          Jn.close j;
          Jn.close j;
          (* close is idempotent *)
          Alcotest.check_raises "append after close"
            (Invalid_argument "Journal.append: closed") (fun () ->
              Jn.append j (Jn.Cancelled { id = "x"; reason = "r" })))

let () =
  Alcotest.run "journal"
    [
      ( "framing",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32;
          Alcotest.test_case "encode/scan roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "alien records stop the scan" `Quick
            test_alien_records;
        ] );
      ( "torn-writes",
        [
          Alcotest.test_case "truncation at every byte offset" `Quick
            test_truncation_sweep;
          Alcotest.test_case "corruption of every tail byte" `Quick
            test_corruption_sweep;
          Alcotest.test_case "open_append truncates the torn tail" `Quick
            test_open_append_truncates;
        ] );
      ( "writer",
        [
          Alcotest.test_case "stats + idempotent close" `Quick
            test_writer_stats_and_idempotent_close;
        ] );
    ]
