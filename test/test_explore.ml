module F = Digraph.Families
module X = Runtime.Explore
module CS = Anonet.Check_suite

(* {1 The full suite, exhaustively} *)

(* Every protocol x family pairing of the check suite must explore its
   entire schedule space (no budget hit) without a single invariant
   violation — the machine-checked form of "correct under every
   asynchronous schedule" on these instances. *)
let test_suite_exhaustive_and_clean () =
  let cases = CS.cases () in
  Alcotest.(check bool) "suite is non-trivial" true (List.length cases >= 30);
  let best_pruned = ref 0.0 in
  List.iter
    (fun (c : CS.case) ->
      let r = c.c_explore () in
      let ctx = Printf.sprintf "%s on %s" c.c_protocol c.c_family in
      Alcotest.(check (list string))
        (ctx ^ ": no violations")
        []
        (List.map (fun (v : X.violation) -> X.describe_kind v.kind) r.violations);
      Alcotest.(check bool) (ctx ^ ": exhaustive") false r.stats.truncated;
      Alcotest.(check bool) (ctx ^ ": explored something") true
        (r.stats.transitions > 0);
      best_pruned := Stdlib.max !best_pruned (X.pruned_fraction r.stats))
    cases;
  (* Partial-order reduction must prune a substantial fraction of the raw
     branch tree on at least one family (the issue's acceptance bar: > 30%). *)
  Alcotest.(check bool)
    (Printf.sprintf "best pruned fraction %.2f > 0.3" !best_pruned)
    true (!best_pruned > 0.3)

(* Sleep sets prune transitions, never states: on a fixed instance, turning
   the reduction off (by exploring with max_violations high enough to never
   abort) must reach the same canonical state count.  We cross-check the
   state count against an unreduced hand count on the diamond, where the
   scalar protocol's schedule space is small and well understood. *)
let test_exploration_is_stateful_not_lossy () =
  let c =
    CS.make (module Anonet.Dag_broadcast_pow2) ~family:"diamond" (F.diamond ())
  in
  let r = c.c_explore () in
  Alcotest.(check bool) "has states" true (r.stats.states > 0);
  Alcotest.(check bool) "not truncated" false r.stats.truncated;
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (v : X.violation) -> X.describe_kind v.kind) r.violations)

(* {1 Negative control: the sabotaged split} *)

let test_sabotage_caught_and_replayable () =
  let c = CS.sabotaged () in
  let r = c.c_explore () in
  match r.violations with
  | [] -> Alcotest.fail "sabotaged protocol explored clean"
  | { kind = X.False_termination unreached; schedule } :: _ ->
      Alcotest.(check bool) "some vertex unvisited" true (unreached <> []);
      Alcotest.(check bool) "schedule non-empty" true (schedule <> []);
      (* Feed the counterexample back through the real engine. *)
      let rep = c.c_replay schedule in
      Alcotest.check Helpers.outcome "replay terminates"
        Runtime.Engine.Terminated rep.r_outcome;
      Alcotest.(check (list int))
        "replay reproduces the unvisited set" unreached rep.r_unreached;
      Alcotest.(check int)
        "replay delivers the whole schedule"
        (List.length schedule) rep.r_deliveries;
      (* Determinism: replaying twice renders the identical trace. *)
      let rep' = c.c_replay schedule in
      Alcotest.(check string) "replay is deterministic" rep.r_trace rep'.r_trace;
      Alcotest.(check bool) "trace rendered" true (String.length rep.r_trace > 0)
  | { kind; _ } :: _ ->
      Alcotest.fail
        ("expected a false-termination counterexample, got "
        ^ X.describe_kind kind)

(* The sound tree protocol on the same graph explores clean — the sabotage,
   not the harness, is what the checker flags. *)
let test_sound_twin_is_clean () =
  let c =
    CS.make (module Anonet.Tree_broadcast) ~family:"full-tree:1x2"
      (F.full_tree ~height:1 ~degree:2)
  in
  let r = c.c_explore () in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (v : X.violation) -> X.describe_kind v.kind) r.violations)

(* {1 Budget degradation} *)

let test_budget_degrades_to_walks () =
  let c =
    CS.make
      (module Anonet.General_broadcast)
      ~family:"cycle:4" (F.cycle_with_exit ~k:4)
  in
  let r = c.c_explore ~max_states:3 () in
  Alcotest.(check bool) "budget hit" true r.stats.truncated;
  Alcotest.(check bool) "random walks ran" true (r.stats.walks > 0);
  Alcotest.(check bool) "walks delivered messages" true
    (r.stats.walk_deliveries > 0);
  (* The walks run the same invariant suite; the sound protocol stays
     clean. *)
  Alcotest.(check (list string)) "still clean" []
    (List.map (fun (v : X.violation) -> X.describe_kind v.kind) r.violations)

(* Sabotage must also be caught in degraded (random-walk) mode, with a
   schedule that replays. *)
let test_walks_catch_sabotage () =
  let c = CS.sabotaged () in
  let r = c.c_explore ~max_states:2 () in
  Alcotest.(check bool) "budget hit" true r.stats.truncated;
  match r.violations with
  | { kind = X.False_termination _; schedule } :: _ ->
      let rep = c.c_replay schedule in
      Alcotest.check Helpers.outcome "walk counterexample replays"
        Runtime.Engine.Terminated rep.r_outcome;
      Alcotest.(check bool) "unsound" true (rep.r_unreached <> [])
  | _ -> Alcotest.fail "walks missed the sabotage"

(* {1 Replay scheduler on its own} *)

(* A replayed full FIFO schedule reproduces the FIFO run exactly. *)
let test_replay_matches_fifo () =
  let g = F.comb 4 in
  let module E = Anonet.Tree_engine in
  let tr = Runtime.Trace.create () in
  let r = E.run ~on_deliver:(Runtime.Trace.hook tr) g in
  Alcotest.check Helpers.outcome "fifo terminates" Runtime.Engine.Terminated
    r.outcome;
  (* FIFO delivers seqs in increasing order. *)
  let schedule = List.init r.deliveries (fun i -> i) in
  let tr' = Runtime.Trace.create () in
  let r' =
    E.run ~scheduler:(Runtime.Scheduler.Replay schedule)
      ~on_deliver:(Runtime.Trace.hook tr') g
  in
  Alcotest.check Helpers.outcome "replay terminates" Runtime.Engine.Terminated
    r'.outcome;
  Alcotest.(check int) "same deliveries" r.deliveries r'.deliveries;
  Alcotest.(check string) "same trace"
    (Runtime.Trace.render tr) (Runtime.Trace.render tr')

let () =
  Alcotest.run "explore"
    [
      ( "suite",
        [
          Alcotest.test_case "exhaustive, clean, POR > 30%" `Slow
            test_suite_exhaustive_and_clean;
          Alcotest.test_case "diamond sanity" `Quick
            test_exploration_is_stateful_not_lossy;
        ] );
      ( "negative-control",
        [
          Alcotest.test_case "sabotage caught, replayable" `Quick
            test_sabotage_caught_and_replayable;
          Alcotest.test_case "sound twin clean" `Quick test_sound_twin_is_clean;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "budget -> walks" `Quick
            test_budget_degrades_to_walks;
          Alcotest.test_case "walks catch sabotage" `Quick
            test_walks_catch_sabotage;
        ] );
      ( "replay",
        [ Alcotest.test_case "replay = fifo" `Quick test_replay_matches_fifo ] );
    ]
