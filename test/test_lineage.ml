(* Obs.Lineage: the causal-provenance recorder.

   The load-bearing contract is classic <-> flat parity: both engines
   execute the same delivery schedule, and node ids are the 1-based
   delivery counter, so for the same graph the two recorders must agree
   on every aggregate {e and} — with sampling off — on the entire stored
   node stream, even though the flat engine records through a packed pop
   journal realized lazily and the classic engine through its own.  The
   par engine's id assignment is schedule-dependent, so only node-count
   reconciliation holds there. *)

module E = Runtime.Engine
module F = Digraph.Families
module H = Helpers
module L = Obs.Lineage

module Cl = Runtime.Engine.Make (Anonet.Flood)
module Fl = Flatcore.Engine.Make (Anonet.Flood)
module Pr = Par.Engine.Make (Anonet.Flood)

let stored_list l =
  let acc = ref [] in
  L.iter_stored l (fun n ->
      acc := (n.L.n_id, n.L.n_parent, n.L.n_edge, n.L.n_vertex, n.L.n_depth) :: !acc);
  List.rev !acc

(* {1 Classic <-> flat parity, full store} *)

let parity_prop g =
  let fail fmt = QCheck.Test.fail_reportf fmt in
  let lc = L.create ~sample_every:1 ~capacity:(1 lsl 20) () in
  let lf = L.create ~sample_every:1 ~capacity:(1 lsl 20) () in
  let cr = Cl.run ~lineage:lc g in
  let fr = Fl.run ~lineage:lf g in
  if cr.E.deliveries <> fr.E.deliveries then fail "schedules diverged";
  (* Sampling off, capacity ample: node count reconciles exactly. *)
  if L.nodes lc <> cr.E.deliveries then
    fail "classic nodes %d <> deliveries %d" (L.nodes lc) cr.E.deliveries;
  if L.nodes lf <> fr.E.deliveries then
    fail "flat nodes %d <> deliveries %d" (L.nodes lf) fr.E.deliveries;
  if L.stored lc <> L.nodes lc then fail "classic store incomplete";
  if L.dropped lc <> 0 || L.dropped lf <> 0 then fail "unexpected drops";
  if L.max_depth lc <> L.max_depth lf then
    fail "max_depth %d <> %d" (L.max_depth lc) (L.max_depth lf);
  if L.width lc <> L.width lf then fail "width differs";
  if L.depth_histogram lc <> L.depth_histogram lf then
    fail "depth histogram differs";
  if L.critical_edges lc ~k:8 <> L.critical_edges lf ~k:8 then
    fail "critical edges differ";
  if stored_list lc <> stored_list lf then fail "stored node streams differ";
  true

let parity_tests =
  [
    H.qcheck_to_alcotest ~count:25 "classic == flat: trees" H.arb_grounded_tree
      parity_prop;
    H.qcheck_to_alcotest ~count:15 "classic == flat: dags" H.arb_dag parity_prop;
    H.qcheck_to_alcotest ~count:10 "classic == flat: digraphs" H.arb_digraph
      parity_prop;
  ]

(* {1 Sampling and capacity bounds} *)

let test_sampling () =
  let g = F.random_digraph (Prng.create 11) ~n:30 ~extra_edges:40 ~back_edges:8 ~t_edge_prob:0.3 in
  let exact = L.create ~sample_every:1 () in
  ignore (Cl.run ~lineage:exact g);
  let sampled = L.create ~sample_every:5 () in
  let r = Cl.run ~lineage:sampled g in
  (* Aggregates are exact regardless of sampling. *)
  Alcotest.(check int) "nodes exact" (L.nodes exact) (L.nodes sampled);
  Alcotest.(check int) "nodes = deliveries" r.E.deliveries (L.nodes sampled);
  Alcotest.(check int) "max_depth exact" (L.max_depth exact) (L.max_depth sampled);
  Alcotest.(check bool) "histogram exact" true
    (L.depth_histogram exact = L.depth_histogram sampled);
  (* The countdown samples the 1st note then every 5th. *)
  Alcotest.(check int)
    "stored counts the sampled minority"
    (1 + ((L.nodes sampled - 1) / 5))
    (L.stored sampled);
  Alcotest.(check int) "nothing dropped" 0 (L.dropped sampled)

let test_capacity () =
  let g = F.random_digraph (Prng.create 12) ~n:30 ~extra_edges:40 ~back_edges:8 ~t_edge_prob:0.3 in
  let l = L.create ~sample_every:1 ~capacity:8 () in
  ignore (Cl.run ~lineage:l g);
  Alcotest.(check int) "store capped" 8 (L.stored l);
  Alcotest.(check int)
    "overflow counted as dropped" (L.nodes l - 8) (L.dropped l);
  Alcotest.(check bool) "aggregates still exact" true (L.nodes l > 8)

(* {1 Critical path on a line graph} *)

let test_critical_path () =
  let k = 9 in
  let g = F.path k in
  let l = L.create ~sample_every:1 () in
  let r = Cl.run ~lineage:l g in
  Alcotest.(check int) "one delivery per edge" (Digraph.n_edges g) r.E.deliveries;
  Alcotest.(check int) "depth = path length" (k + 1) (L.max_depth l);
  Alcotest.(check int) "width 1" 1 (L.width l);
  let path = L.critical_path l in
  Alcotest.(check int) "full chain retained" (k + 1) (List.length path);
  (* Deepest-first: depths k+1, k, ..., 1, parent links chaining. *)
  List.iteri
    (fun i n ->
      Alcotest.(check int)
        (Printf.sprintf "depth at position %d" i)
        (k + 1 - i) n.L.n_depth)
    path;
  let rec chained = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check int) "parent link" b.L.n_id a.L.n_parent;
        chained rest
    | [ last ] -> Alcotest.(check int) "root parent" 0 last.L.n_parent
    | [] -> ()
  in
  chained path

(* {1 JSON export} *)

let test_json () =
  let g = F.random_digraph (Prng.create 13) ~n:20 ~extra_edges:25 ~back_edges:5 ~t_edge_prob:0.3 in
  let l = L.create ~sample_every:2 () in
  ignore (Cl.run ~lineage:l g);
  let s = L.to_json l in
  Alcotest.(check bool) "valid JSON" true (Obs.Json.valid s);
  let v = Result.get_ok (Obs.Json.parse s) in
  let field name =
    match Obs.Json.member name v with
    | Some (Obs.Json.Number n) -> int_of_string n
    | _ -> Alcotest.failf "missing field %s" name
  in
  Alcotest.(check int) "nodes" (L.nodes l) (field "nodes");
  Alcotest.(check int) "max_depth" (L.max_depth l) (field "max_depth");
  Alcotest.(check int) "stored" (L.stored l) (field "stored");
  Alcotest.(check int) "dropped" (L.dropped l) (field "dropped")

(* {1 Par: node-count reconciliation + shard tracks} *)

let test_par_reconcile () =
  let g = F.random_digraph (Prng.create 14) ~n:40 ~extra_edges:60 ~back_edges:10 ~t_edge_prob:0.3 in
  let l = L.create ~sample_every:1 ~capacity:(1 lsl 20) () in
  let r = Pr.run ~domains:4 ~lineage:l g in
  Alcotest.(check int) "nodes = deliveries" r.E.deliveries (L.nodes l);
  Alcotest.(check int) "full store" r.E.deliveries (L.stored l);
  (* Ids are the global delivery-slot claims: unique and 1-based. *)
  let seen = Hashtbl.create 64 in
  let max_id = ref 0 in
  L.iter_stored l (fun n ->
      if Hashtbl.mem seen n.L.n_id then Alcotest.failf "duplicate id %d" n.L.n_id;
      Hashtbl.add seen n.L.n_id ();
      if n.L.n_id > !max_id then max_id := n.L.n_id;
      if n.L.n_depth < 1 then Alcotest.failf "depth < 1 at id %d" n.L.n_id);
  Alcotest.(check int) "ids dense" r.E.deliveries !max_id

(* {1 Merge} *)

let test_merge () =
  let g = F.path 5 in
  let a = L.create ~sample_every:1 () in
  let b = L.create ~sample_every:1 () in
  ignore (Cl.run ~lineage:a g);
  ignore (Cl.run ~lineage:b g);
  let solo_nodes = L.nodes a and solo_depth = L.max_depth a in
  L.merge ~into:a b;
  Alcotest.(check int) "nodes sum" (2 * solo_nodes) (L.nodes a);
  Alcotest.(check int) "max_depth maxes" solo_depth (L.max_depth a);
  Alcotest.(check int) "stores append" (2 * solo_nodes) (L.stored a)

let () =
  Alcotest.run "lineage"
    [
      ("parity", parity_tests);
      ( "bounds",
        [
          Alcotest.test_case "sampling countdown" `Quick test_sampling;
          Alcotest.test_case "capacity + dropped" `Quick test_capacity;
        ] );
      ( "queries",
        [
          Alcotest.test_case "critical path, deepest first" `Quick
            test_critical_path;
          Alcotest.test_case "json export" `Quick test_json;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ("par", [ Alcotest.test_case "reconcile + unique ids" `Quick test_par_reconcile ]);
    ]
