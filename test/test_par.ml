(* The sharded multicore engine against the sequential engine.

   The load-bearing property: a parallel run is just one more legal
   asynchronous schedule, so for every suite protocol on its own graph class
   the outcome and the visited set must match the sequential engine, and the
   final linear cut (vertex states + undelivered messages) must satisfy the
   protocol's conservation law.  Schedule-dependent measures (deliveries for
   the non-tree protocols, bit high-water marks) are deliberately not
   compared.

   Fault plans: per-edge [on_send] streams are keyed by (seed, edge) and all
   of an edge's sends run in one shard, so with corruption off (its bit draw
   happens at delivery time) and duplication off (a duplicated copy can flip
   termination itself, see test_faults) a tree run's fault counters must be
   identical under any schedule — parallel included. *)

module E = Runtime.Engine
module F = Digraph.Families
module H = Helpers

(* {1 The final-cut conservation check} *)

let conservation_ok (type s m)
    (module P : Runtime.Protocol_intf.CHECKABLE
      with type state = s
       and type message = m) g (states : s array) (leftover : m list) =
  match P.conservation with
  | None -> true
  | Some (Runtime.Protocol_intf.Conservation c) ->
      let acc =
        List.fold_left (fun a m -> c.add a (c.of_message m)) c.zero leftover
      in
      let acc =
        List.fold_left
          (fun a v ->
            c.add a
              (c.retained
                 ~out_degree:(Digraph.out_degree g v)
                 ~in_degree:(Digraph.in_degree g v)
                 states.(v)))
          acc (Digraph.vertices g)
      in
      Result.is_ok (c.check acc)

(* {1 Parallel == sequential, per suite protocol} *)

let equiv_case (type s m)
    (module P : Runtime.Protocol_intf.CHECKABLE
      with type state = s
       and type message = m) name g =
  let module Seq = Runtime.Engine.Make (P) in
  let module Pn = Par.Engine.Make (P) in
  let seq_left = ref [] in
  let sr = Seq.run ~on_undelivered:(fun m -> seq_left := m :: !seq_left) g in
  if not (conservation_ok (module P) g sr.states !seq_left) then
    QCheck.Test.fail_reportf "%s: sequential conservation breached (%s)" name
      (H.report_summary sr);
  List.for_all
    (fun domains ->
      let pr = Pn.run_full ~domains g in
      if pr.report.outcome <> sr.outcome then
        QCheck.Test.fail_reportf "%s: %d domains: %s, sequential %s" name
          domains
          (H.outcome_string pr.report.outcome)
          (H.outcome_string sr.outcome);
      if pr.report.visited <> sr.visited then
        QCheck.Test.fail_reportf "%s: %d domains: visited set differs" name
          domains;
      if pr.report.final_in_flight <> List.length pr.leftover then
        QCheck.Test.fail_reportf
          "%s: %d domains: final_in_flight %d but %d leftover messages" name
          domains pr.report.final_in_flight
          (List.length pr.leftover);
      if not (conservation_ok (module P) g pr.report.states pr.leftover) then
        QCheck.Test.fail_reportf "%s: %d domains: conservation breached (%s)"
          name domains
          (H.report_summary pr.report);
      true)
    [ 1; 2; 4 ]

let equivalence_tests =
  List.map
    (fun (name, cls, p) ->
      let arb, count =
        match cls with
        | `Trees -> (H.arb_grounded_tree, 40)
        | `Dags -> (H.arb_dag, 30)
        | `Digraphs -> (H.arb_digraph, 20)
      in
      H.qcheck_to_alcotest ~count
        (Printf.sprintf "par == seq: %s (1/2/4 domains)" name)
        arb
        (fun g ->
          let (module P : Runtime.Protocol_intf.CHECKABLE) = p in
          equiv_case (module P) name g))
    (Anonet.Check_suite.protocols ())

(* Both engines share the sharding knob's contract: BFS-layer sharding is
   just a different vertex partition, so it must agree too. *)
let sharding_equivalent () =
  let module Pn = Par.Engine.Make (Anonet.General_broadcast) in
  let g =
    F.random_digraph (Prng.create 31) ~n:40 ~extra_edges:40 ~back_edges:10
      ~t_edge_prob:0.2
  in
  let a = Pn.run ~domains:3 ~sharding:`Round_robin g in
  let b = Pn.run ~domains:3 ~sharding:`Bfs_layers g in
  Alcotest.check H.outcome "outcome" a.outcome b.outcome;
  Alcotest.(check (array bool)) "visited" a.visited b.visited

(* {1 Fault parity} *)

(* Tree protocol, drop + delay + kill (no duplication, no corruption): every
   edge carries at most one send, so the per-edge fault streams are consumed
   identically under any schedule and the merged parallel counters must
   equal the sequential ones — as must the outcome, the visited set and the
   delivery count. *)
let fault_parity () =
  let module Seq = Runtime.Engine.Make (Anonet.Tree_broadcast) in
  let module Pn = Par.Engine.Make (Anonet.Tree_broadcast) in
  for seed = 1 to 12 do
    let g =
      F.random_grounded_tree (Prng.create (100 + seed)) ~n:40 ~t_edge_prob:0.3
    in
    let faults =
      Runtime.Faults.create ~drop:0.12 ~max_delay:3 ~kill:0.05 ~seed ()
    in
    let sr = Seq.run ~faults g in
    let pr = Pn.run ~domains:4 ~faults g in
    let ctx = Printf.sprintf "seed %d" seed in
    Alcotest.check H.outcome (ctx ^ ": outcome") sr.outcome pr.outcome;
    Alcotest.(check (array bool)) (ctx ^ ": visited") sr.visited pr.visited;
    Alcotest.(check int) (ctx ^ ": deliveries") sr.deliveries pr.deliveries;
    Alcotest.(check int)
      (ctx ^ ": dropped")
      sr.fault_stats.dropped_copies pr.fault_stats.dropped_copies;
    Alcotest.(check int)
      (ctx ^ ": extra")
      sr.fault_stats.extra_copies pr.fault_stats.extra_copies;
    Alcotest.(check int)
      (ctx ^ ": delayed")
      sr.fault_stats.delayed_copies pr.fault_stats.delayed_copies;
    Alcotest.(check (list int))
      (ctx ^ ": dead edges")
      sr.fault_stats.dead_edges pr.fault_stats.dead_edges
  done

(* {1 Pool} *)

let pool_order () =
  let r = Par.Pool.run ~domains:4 100 (fun i -> i * i) in
  Alcotest.(check (array int)) "job order" (Array.init 100 (fun i -> i * i)) r;
  Alcotest.(check (list string))
    "map_list order"
    [ "a!"; "b!"; "c!" ]
    (Par.Pool.map_list ~domains:2 (fun s -> s ^ "!") [ "a"; "b"; "c" ])

let pool_empty_and_errors () =
  Alcotest.(check (array int)) "zero jobs" [||] (Par.Pool.run 0 (fun i -> i));
  Alcotest.check_raises "exception propagates" (Failure "job 7") (fun () ->
      ignore
        (Par.Pool.run ~domains:3 16 (fun i ->
             if i = 7 then failwith "job 7" else i)))

let mailbox_batches () =
  let mb = Par.Mailbox.create () in
  Alcotest.(check bool) "fresh empty" true (Par.Mailbox.is_empty mb);
  List.iter (Par.Mailbox.push mb) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "LIFO batch" [ 3; 2; 1 ] (Par.Mailbox.take_all mb);
  Alcotest.(check (list int)) "drained" [] (Par.Mailbox.take_all mb);
  (* Concurrent producers: nothing lost, nothing duplicated. *)
  let producers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 249 do
              Par.Mailbox.push mb ((d * 250) + i)
            done))
  in
  List.iter Domain.join producers;
  let got = List.sort compare (Par.Mailbox.take_all mb) in
  Alcotest.(check (list int)) "1000 pushes survive" (List.init 1000 Fun.id) got

(* {1 Parallel campaign} *)

let campaign_matches_sequential () =
  let module C = Runtime.Campaign in
  let module TR = C.Of_protocol (Anonet.Tree_broadcast) in
  let module GR = C.Of_protocol (Anonet.General_broadcast) in
  let runners = [ TR.runner (); GR.runner () ] in
  let graphs =
    [
      {
        C.g_name = "random-tree-12";
        build =
          (fun ~seed ->
            F.random_grounded_tree (Prng.create seed) ~n:12 ~t_edge_prob:0.3);
      };
      {
        C.g_name = "random-digraph-10";
        build =
          (fun ~seed ->
            F.random_digraph (Prng.create seed) ~n:10 ~extra_edges:6
              ~back_edges:2 ~t_edge_prob:0.25);
      };
    ]
  in
  (* Drop-only grid: violations are impossible (a drop can only starve), so
     per-job shrinking cannot make the merged result diverge. *)
  let grid = C.grid ~drops:[ 0.0; 0.1 ] ~max_delays:[ 0; 2 ] () in
  let seeds = [ 1; 2; 3 ] in
  let seq = C.run ~runners ~graphs ~grid ~seeds () in
  let par = Par.Campaign.run ~domains:4 ~runners ~graphs ~grid ~seeds () in
  Alcotest.(check string)
    "identical JSON rendering" (C.to_json seq) (C.to_json par);
  Alcotest.(check bool) "sound" (C.sound seq) (C.sound par)

(* {1 Large-graph smoke test} *)

let flood_layered () =
  let g = F.random_layered_large (Prng.create 7) ~target_edges:2_000 in
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  let r = Pn.run ~domains:2 g in
  Alcotest.check H.outcome "flood quiesces" E.Quiescent r.outcome;
  Alcotest.(check bool)
    "all visited" true
    (Array.for_all Fun.id r.visited);
  (* Flooding forwards exactly once per vertex, so exactly one delivery per
     edge regardless of schedule. *)
  Alcotest.(check int) "one delivery per edge" (Digraph.n_edges g) r.deliveries

let () =
  Alcotest.run "par"
    [
      ("equivalence", equivalence_tests);
      ( "sharding",
        [ Alcotest.test_case "bfs-layers == round-robin" `Quick
            sharding_equivalent ] );
      ("faults", [ Alcotest.test_case "tree fault parity" `Quick fault_parity ]);
      ( "pool",
        [
          Alcotest.test_case "deterministic order" `Quick pool_order;
          Alcotest.test_case "empty + exceptions" `Quick pool_empty_and_errors;
          Alcotest.test_case "mailbox batches" `Quick mailbox_batches;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "par sweep == sequential sweep" `Quick
            campaign_matches_sequential;
        ] );
      ( "throughput",
        [ Alcotest.test_case "flood on layered graph" `Quick flood_layered ] );
    ]
