(* The serve subsystem: NDJSON framing (including overflow resync and a
   chunking fuzz), the full session lifecycle over [Server.handle_line]
   (the exact function the socket loop calls), admission control and
   credits, cancellation in every phase, byte-determinism of results
   under concurrent load, and exact metrics reconciliation. *)

open Helpers
module W = Serve.Wire
module S = Serve.Server
module J = Obs.Json

(* {1 Wire framing} *)

let lines_of evs =
  List.filter_map (function W.Line l -> Some l | W.Overflow -> None) evs

let test_wire_basic () =
  let w = W.create () in
  Alcotest.(check (list string))
    "two lines in one chunk" [ "a"; "bb" ]
    (lines_of (W.feed_string w "a\nbb\n"));
  Alcotest.(check (list string)) "partial buffered" [] (lines_of (W.feed_string w "cc"));
  Alcotest.(check bool) "pending visible" true (W.pending w);
  Alcotest.(check (list string))
    "completed across feeds" [ "ccd" ]
    (lines_of (W.feed_string w "d\n"));
  Alcotest.(check (list string))
    "CR stripped" [ "x" ]
    (lines_of (W.feed_string w "x\r\n"));
  Alcotest.(check (list string))
    "empty line is a frame" [ "" ]
    (lines_of (W.feed_string w "\n"))

let test_wire_overflow () =
  let w = W.create ~max_line:4 () in
  let evs = W.feed_string w "abcdefgh\nok\n" in
  Alcotest.(check int) "one overflow event" 1
    (List.length (List.filter (( = ) W.Overflow) evs));
  Alcotest.(check (list string)) "resyncs after newline" [ "ok" ] (lines_of evs);
  (* Overflow split across feeds: the discard mode must persist. *)
  let w = W.create ~max_line:4 () in
  ignore (W.feed_string w "12345");
  ignore (W.feed_string w "67890");
  let evs = W.feed_string w "123\nfine\n" in
  Alcotest.(check (list string)) "later frames survive" [ "fine" ] (lines_of evs)

(* Any chunking of the same byte stream yields the same frames. *)
let prop_wire_chunking =
  qcheck_to_alcotest ~count:100 "framing is chunking-invariant"
    QCheck.(
      pair
        (small_list (string_gen_of_size (Gen.int_range 0 12) (Gen.char_range 'a' 'z')))
        (int_range 1 7))
    (fun (lines, chunk) ->
      let stream = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let w = W.create () in
      let got = ref [] in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        got := !got @ lines_of (W.feed_string w (String.sub stream !i len));
        i := !i + len
      done;
      !got = lines)

(* {1 Server helpers} *)

let mk ?(workers = 0) ?(max_queue = 64) ?(credits = 32) () =
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:4"); ("mid", "random:12:3") ];
      workers;
      max_queue;
      credits;
      (* counting on the cyclic [mid] graph runs to the step limit; keep
         those sessions short — the contracts under test don't care. *)
      step_limit = 20_000;
    }
  in
  match S.create ~config () with
  | Ok t -> t
  | Error e -> Alcotest.failf "server create: %s" e

let req t ?(conn = 0) line = S.handle_line t ~conn line

let parse_resp resp =
  match J.parse resp with
  | Ok v -> v
  | Error i -> Alcotest.failf "unparseable response at %d: %s" i resp

let is_ok resp =
  match Option.bind (J.member "ok" (parse_resp resp)) J.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "no \"ok\" in %s" resp

let err_code resp =
  match
    Option.bind (J.member "error" (parse_resp resp)) (fun e ->
        Option.bind (J.member "code" e) J.to_string_opt)
  with
  | Some c -> c
  | None -> Alcotest.failf "no error code in %s" resp

let state_of resp =
  match
    Option.bind (J.member "result" (parse_resp resp)) (fun r ->
        Option.bind (J.member "state" r) J.to_string_opt)
  with
  | Some s -> s
  | None -> Alcotest.failf "no state in %s" resp

let result_json resp =
  match J.member "result" (parse_resp resp) with
  | Some r -> r
  | None -> Alcotest.failf "no result in %s" resp

let submit_line ?(protocol = "flood") ?(graph = "small") ?(seed = 1) ?engine
    ?scheduler ?deadline_ms ?step_limit id =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%s,\"protocol\":%s,\"graph\":%s,\"seed\":%d%s%s%s%s}"
    (J.escape id) (J.escape protocol) (J.escape graph) seed
    (match engine with
    | None -> ""
    | Some e -> Printf.sprintf ",\"engine\":%s" (J.escape e))
    (match scheduler with
    | None -> ""
    | Some s -> Printf.sprintf ",\"scheduler\":%s" (J.escape s))
    (match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf ",\"deadline_ms\":%d" ms)
    (match step_limit with
    | None -> ""
    | Some l -> Printf.sprintf ",\"step_limit\":%d" l)

let status t id = req t (Printf.sprintf "{\"op\":\"status\",\"id\":%s}" (J.escape id))
let result t id = req t (Printf.sprintf "{\"op\":\"result\",\"id\":%s}" (J.escape id))
let cancel t id = req t (Printf.sprintf "{\"op\":\"cancel\",\"id\":%s}" (J.escape id))

(* {1 Lifecycle} *)

let test_lifecycle () =
  let t = mk () in
  let r = req t (submit_line "a") in
  Alcotest.(check bool) "submit accepted" true (is_ok r);
  Alcotest.(check string) "queued" "queued" (state_of (status t "a"));
  Alcotest.(check string) "result early" "not_done" (err_code (result t "a"));
  Alcotest.(check bool) "step runs it" true (S.step t);
  Alcotest.(check bool) "queue drained" false (S.step t);
  Alcotest.(check string) "done" "done" (state_of (status t "a"));
  let v = result_json (result t "a") in
  Alcotest.(check (option string))
    "flood quiesces" (Some "quiescent")
    (Option.bind (J.member "outcome" v) J.to_string_opt);
  Alcotest.(check (option bool))
    "covers the graph" (Some true)
    (Option.bind (J.member "all_visited" v) J.to_bool_opt);
  let d = Option.bind (J.member "deliveries" v) J.to_int_opt in
  Alcotest.(check bool) "deliveries counted" true (Option.value ~default:0 d > 0);
  (* Reconciliation: the merged registry equals the one result we saw. *)
  let m = result_json (req t "{\"op\":\"metrics\"}") in
  Alcotest.(check (option int))
    "metrics reconcile with the report" d
    (Option.bind (J.member "counters" m)
       (fun c -> Option.bind (J.member "sessions.engine.deliveries" c) J.to_int_opt));
  S.stop t

let test_bad_frames () =
  let t = mk () in
  Alcotest.(check string) "garbage" "parse_error" (err_code (req t "not json"));
  Alcotest.(check string) "unknown op" "bad_request"
    (err_code (req t "{\"op\":\"frobnicate\",\"id\":\"x\"}"));
  Alcotest.(check string) "missing id" "bad_request"
    (err_code (req t "{\"op\":\"status\"}"));
  Alcotest.(check string) "unknown protocol" "unknown_protocol"
    (err_code (req t (submit_line ~protocol:"telepathy" "x")));
  Alcotest.(check string) "unknown graph" "unknown_graph"
    (err_code (req t (submit_line ~graph:"nowhere" "x")));
  Alcotest.(check string) "bad scheduler" "bad_request"
    (err_code
       (req t "{\"op\":\"submit\",\"id\":\"x\",\"protocol\":\"flood\",\"graph\":\"small\",\"scheduler\":\"psychic\"}"));
  (* An unknown engine is the typed Bad_request, never a dropped
     connection. *)
  Alcotest.(check string) "bad engine" "bad_request"
    (err_code (req t (submit_line ~engine:"turbo" "x")));
  Alcotest.(check string) "unknown session" "unknown_id" (err_code (status t "ghost"));
  (* The connection survives all of the above. *)
  Alcotest.(check bool) "still serving" true (is_ok (req t (submit_line "ok")));
  S.stop t

let test_duplicate_id () =
  let t = mk () in
  Alcotest.(check bool) "first" true (is_ok (req t (submit_line "dup")));
  Alcotest.(check string) "second rejected" "duplicate_id"
    (err_code (req t (submit_line "dup")));
  Alcotest.(check bool) "original unharmed" true (S.step t);
  Alcotest.(check string) "and finishes" "done" (state_of (status t "dup"));
  (* A finished id is still taken: results must stay addressable. *)
  Alcotest.(check string) "still taken after finish" "duplicate_id"
    (err_code (req t (submit_line "dup")));
  S.stop t

(* {1 Admission control} *)

let test_overloaded () =
  let t = mk ~max_queue:1 () in
  Alcotest.(check bool) "fills the queue" true (is_ok (req t (submit_line "q1")));
  let r = req t (submit_line "q2") in
  Alcotest.(check string) "overflow typed" "overloaded" (err_code r);
  (* Rollback: the refused session left no trace and the id is reusable. *)
  Alcotest.(check string) "no ghost session" "unknown_id" (err_code (status t "q2"));
  ignore (S.step t);
  Alcotest.(check bool) "slot freed after drain" true (is_ok (req t (submit_line "q2")));
  ignore (S.step t);
  Alcotest.(check string) "retry completes" "done" (state_of (status t "q2"));
  S.stop t

let test_no_credit () =
  let t = mk ~credits:1 () in
  Alcotest.(check bool) "conn 0 first" true (is_ok (req t ~conn:0 (submit_line "c1")));
  Alcotest.(check string) "conn 0 second refused" "no_credit"
    (err_code (req t ~conn:0 (submit_line "c2")));
  Alcotest.(check bool) "credits are per-connection" true
    (is_ok (req t ~conn:1 (submit_line "c3")));
  ignore (S.step t);
  ignore (S.step t);
  Alcotest.(check bool) "credit returns on finish" true
    (is_ok (req t ~conn:0 (submit_line "c4")));
  ignore (S.step t);
  S.stop t

(* {1 Cancellation} *)

let test_cancel_queued () =
  let t = mk () in
  ignore (req t (submit_line "z"));
  Alcotest.(check string) "cancel answers final state" "cancelled"
    (state_of (cancel t "z"));
  Alcotest.(check string) "status agrees" "cancelled" (state_of (status t "z"));
  Alcotest.(check string) "result is a typed error" "cancelled"
    (err_code (result t "z"));
  (* The dead session is still in the queue; popping it must be a no-op. *)
  Alcotest.(check bool) "worker pops the corpse" true (S.step t);
  Alcotest.(check string) "not resurrected" "cancelled" (state_of (status t "z"));
  Alcotest.(check string) "cancel is idempotent" "cancelled" (state_of (cancel t "z"));
  S.stop t

let test_deadline () =
  let t = mk () in
  (* The deadline clock starts when the worker picks the session up, so a
     fast run cannot be caught by it — use one that would grind for ages
     (counting on the cyclic graph, huge step limit) and give it 5ms: the
     engine's periodic deadline poll must kill it mid-run. *)
  ignore
    (req t
       (submit_line ~protocol:"counting" ~graph:"mid" ~step_limit:10_000_000
          ~deadline_ms:5 "d"));
  ignore (S.step t);
  Alcotest.(check string) "deadline cancels" "cancelled" (state_of (status t "d"));
  let resp = result t "d" in
  Alcotest.(check string) "typed error" "cancelled" (err_code resp);
  let msg =
    match
      Option.bind (J.member "error" (parse_resp resp)) (fun e ->
          Option.bind (J.member "msg" e) J.to_string_opt)
    with
    | Some m -> m
    | None -> ""
  in
  Alcotest.(check bool) "names the deadline" true
    (let n = String.length msg in
     let rec go i = i + 8 <= n && (String.sub msg i 8 = "deadline" || go (i + 1)) in
     go 0);
  S.stop t

let test_cancel_running_race () =
  (* Real workers, a burst of sessions, cancels racing execution: every
     session must still reach a final state — none stuck, none lost. *)
  let t = mk ~workers:2 () in
  S.start_workers t;
  let n = 24 in
  for i = 0 to n - 1 do
    let id = Printf.sprintf "r%d" i in
    ignore (req t (submit_line ~graph:"mid" ~protocol:"counting" ~seed:i id))
  done;
  for i = 0 to n - 1 do
    if i mod 2 = 0 then ignore (cancel t (Printf.sprintf "r%d" i))
  done;
  for i = 0 to n - 1 do
    let id = Printf.sprintf "r%d" i in
    match S.await t id with
    | Some (Serve.Session.Done _ | Serve.Session.Cancelled _) -> ()
    | Some st ->
        Alcotest.failf "session %s ended %s" id (Serve.Session.state_name st)
    | None -> Alcotest.failf "session %s lost" id
  done;
  S.stop t

(* {1 Determinism and reconciliation under concurrency} *)

let test_concurrent_determinism () =
  let t = mk ~workers:4 () in
  S.start_workers t;
  let n = 8 in
  for i = 0 to n - 1 do
    ignore
      (req t ~conn:i
         (submit_line ~graph:"mid" ~protocol:"counting" ~seed:42
            (Printf.sprintf "det%d" i)))
  done;
  let payloads =
    List.init n (fun i ->
        let id = Printf.sprintf "det%d" i in
        ignore (S.await t id);
        J.to_string (result_json (result t id)))
  in
  List.iter
    (fun p ->
      Alcotest.(check string) "same seed, same bytes" (List.hd payloads) p)
    payloads;
  (* Exact rollup: merged deliveries = n * the per-run count. *)
  let one =
    match
      Option.bind
        (J.member "deliveries" (parse_resp (List.hd payloads)))
        J.to_int_opt
    with
    | Some d -> d
    | None -> Alcotest.fail "no deliveries"
  in
  let m = result_json (req t "{\"op\":\"metrics\"}") in
  Alcotest.(check (option int))
    "rollup is exact" (Some (n * one))
    (Option.bind (J.member "counters" m)
       (fun c -> Option.bind (J.member "sessions.engine.deliveries" c) J.to_int_opt));
  S.stop t

(* The engine knob is invisible on the wire: a flat session's result
   payload is byte-identical to the classic one for the same submission —
   across protocols, the seeded random scheduler, and churn. *)
let test_engine_parity () =
  let t = mk () in
  let submit_pair name line_of =
    let classic_id = name ^ "-classic" and flat_id = name ^ "-flat" in
    Alcotest.(check bool)
      "classic accepted" true
      (is_ok (req t (line_of classic_id "classic")));
    Alcotest.(check bool)
      "flat accepted" true
      (is_ok (req t (line_of flat_id "flat")));
    while S.step t do
      ()
    done;
    Alcotest.(check string)
      (name ^ " payload bytes match")
      (J.to_string (result_json (result t classic_id)))
      (J.to_string (result_json (result t flat_id)))
  in
  submit_pair "flood" (fun id e ->
      submit_line ~protocol:"flood" ~graph:"small" ~engine:e id);
  submit_pair "counting" (fun id e ->
      submit_line ~protocol:"counting" ~graph:"mid" ~scheduler:"random"
        ~seed:42 ~engine:e id);
  submit_pair "churned-general" (fun id e ->
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":%s,\"protocol\":\"general\",\"graph\":\"mid\",\"scheduler\":\"random\",\"seed\":7,\"engine\":%s,\"churn\":{\"rate\":0.1,\"seed\":3}}"
        (J.escape id) (J.escape e));
  S.stop t

(* [watch] streams incremental registry diffs: queued -> empty metrics,
   after the run -> a diff carrying exactly the report's deliveries (the
   first watch covered nothing), then a drained second diff. *)
let test_watch () =
  let t = mk () in
  ignore (req t (submit_line "w"));
  let watch id = req t (Printf.sprintf "{\"op\":\"watch\",\"id\":%s}" (J.escape id)) in
  let counter v name =
    Option.bind (J.member "metrics" v) (fun m ->
        Option.bind (J.member "counters" m) (fun c ->
            Option.bind (J.member name c) J.to_int_opt))
  in
  let w1 = result_json (watch "w") in
  Alcotest.(check (option string))
    "queued state" (Some "queued")
    (Option.bind (J.member "state" w1) J.to_string_opt);
  Alcotest.(check (option int))
    "no registry yet" None (counter w1 "engine.deliveries");
  ignore (S.step t);
  let w2 = result_json (watch "w") in
  Alcotest.(check (option string))
    "done state" (Some "done")
    (Option.bind (J.member "state" w2) J.to_string_opt);
  let d =
    Option.bind (J.member "deliveries" (result_json (result t "w"))) J.to_int_opt
  in
  Alcotest.(check (option int))
    "first real diff carries the run's deliveries" d
    (counter w2 "engine.deliveries");
  (* The engine epilogue registered its GC gauges on the session registry. *)
  Alcotest.(check bool) "gc gauges visible" true
    (Option.is_some
       (Option.bind (J.member "metrics" w2) (fun m ->
            Option.bind (J.member "gauges" m)
              (J.member "engine.gc.heap_words"))));
  let d3 = counter (result_json (watch "w")) "engine.deliveries" in
  Alcotest.(check bool) "second diff drained" true (d3 = None || d3 = Some 0);
  Alcotest.(check string) "unknown id" "unknown_id"
    (err_code (watch "nope"));
  S.stop t

let test_shutdown_refuses_submits () =
  let t = mk () in
  ignore (req t (submit_line "pre"));
  S.stop t;
  Alcotest.(check string) "queued work failed visibly" "shutting_down"
    (err_code (result t "pre"));
  Alcotest.(check string) "new submits refused" "shutting_down"
    (err_code (req t (submit_line "post")))

(* {1 Wire-protocol fuzz}

   Random truncation, bit flips and oversizing of valid request lines,
   pushed through [Wire.feed] and [Server.handle_line]/[handle_overflow]
   — the exact pair the socket loop runs.  The server must never raise,
   must answer every frame with a parseable envelope, must resync to
   clean frames afterwards, and must count every overflow discard. *)

let counter_of t name =
  match
    Option.bind (J.member "result" (parse_resp (req t "{\"op\":\"metrics\"}")))
      (fun m -> Option.bind (J.member "counters" m) (J.member name))
  with
  | Some v -> Option.value ~default:(-1) (J.to_int_opt v)
  | None -> 0

let test_wire_fuzz () =
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:4") ];
      workers = 0;
      max_line = 128;
      step_limit = 20_000;
    }
  in
  let t =
    match S.create ~config () with
    | Ok t -> t
    | Error e -> Alcotest.failf "server create: %s" e
  in
  let prng = Prng.create 0xF022 in
  let w = Serve.Wire.create ~max_line:128 () in
  let overflows = ref 0 and frames = ref 0 in
  let feed_random_chunks s =
    let n = String.length s in
    let i = ref 0 in
    let evs = ref [] in
    while !i < n do
      let len = min (1 + Prng.int prng 23) (n - !i) in
      evs := !evs @ Serve.Wire.feed_string w (String.sub s !i len);
      i := !i + len
    done;
    !evs
  in
  let respond evs =
    List.iter
      (fun ev ->
        let resp =
          match ev with
          | Serve.Wire.Line l ->
              incr frames;
              req t l
          | Serve.Wire.Overflow ->
              incr overflows;
              S.handle_overflow t
        in
        (* Every answer, even to garbage, is a parseable envelope. *)
        ignore (is_ok resp))
      evs
  in
  for i = 0 to 499 do
    let base =
      match Prng.int prng 4 with
      | 0 -> submit_line ~seed:i (Printf.sprintf "fz%d" i)
      | 1 -> Printf.sprintf "{\"op\":\"status\",\"id\":\"fz%d\"}" (Prng.int prng 500)
      | 2 -> "{\"op\":\"metrics\"}"
      | _ -> Printf.sprintf "{\"op\":\"result\",\"id\":\"fz%d\"}" (Prng.int prng 500)
    in
    let mutated =
      match Prng.int prng 4 with
      | 0 -> String.sub base 0 (Prng.int prng (String.length base + 1))
      | 1 ->
          let b = Bytes.of_string base in
          for _ = 0 to Prng.int prng 4 do
            let p = Prng.int prng (Bytes.length b) in
            Bytes.set b p
              (Char.chr (Char.code (Bytes.get b p) lxor (1 lsl Prng.int prng 8)))
          done;
          Bytes.to_string b
      | 2 -> base ^ String.make (128 + Prng.int prng 256) 'x'  (* oversize *)
      | _ -> base
    in
    respond (feed_random_chunks (mutated ^ "\n"))
  done;
  (* Resync proof: a pristine frame right after the chaos parses clean. *)
  (match feed_random_chunks "{\"op\":\"metrics\"}\n" with
  | [ Serve.Wire.Line l ] ->
      incr frames;
      Alcotest.(check bool) "clean frame after fuzz" true (is_ok (req t l))
  | evs -> Alcotest.failf "expected 1 clean frame, got %d events" (List.length evs));
  Alcotest.(check bool) "some overflows exercised" true (!overflows > 0);
  Alcotest.(check int) "overflow discards counted" !overflows
    (counter_of t "server.wire.overflows");
  Alcotest.(check bool) "frame_errors covers overflows" true
    (counter_of t "server.frame_errors" >= !overflows);
  S.stop t

(* {1 Adaptive shedding (Sched unit)} *)

let test_sched_shed () =
  let module Sc = Serve.Sched in
  let q : string Sc.t = Sc.create ~cap:4 ~watermark_ms:50 () in
  (match Sc.try_push q ~now:0.0 "a" with
  | Sc.Pushed -> ()
  | _ -> Alcotest.fail "first push refused");
  (* The item waited 200ms (synthetic clock): EWMA seeds at 200. *)
  (match Sc.try_pop ~now:0.2 q with
  | Some "a" -> ()
  | _ -> Alcotest.fail "pop");
  Alcotest.(check int) "ewma seeded by first sample" 200 (Sc.est_wait_ms q);
  (* Past the watermark, a doomed deadline is refused at the door... *)
  (match Sc.try_push q ~now:1.0 ~deadline:1.05 "doomed" with
  | Sc.Shed hint -> Alcotest.(check int) "hint = estimate" 200 hint
  | _ -> Alcotest.fail "expected Shed");
  (* ...a meetable one and deadline-less work keep FIFO semantics. *)
  (match Sc.try_push q ~now:1.0 ~deadline:2.0 "fine" with
  | Sc.Pushed -> ()
  | _ -> Alcotest.fail "meetable deadline refused");
  (match Sc.try_push q ~now:1.0 "no-deadline" with
  | Sc.Pushed -> ()
  | _ -> Alcotest.fail "deadline-less refused");
  (* Capacity still bounds admission, with the same hint. *)
  (match Sc.try_push q ~now:1.0 "c3" with Sc.Pushed -> () | _ -> Alcotest.fail "c3");
  (match Sc.try_push q ~now:1.0 "c4" with Sc.Pushed -> () | _ -> Alcotest.fail "c4");
  (match Sc.try_push q ~now:1.0 "over" with
  | Sc.Full hint -> Alcotest.(check bool) "full hint" true (hint >= 1)
  | _ -> Alcotest.fail "expected Full");
  (* watermark_ms = 0 never sheds, however stale the queue got. *)
  let q0 : string Sc.t = Sc.create ~cap:2 () in
  (match Sc.try_push q0 ~now:0.0 "x" with Sc.Pushed -> () | _ -> Alcotest.fail "x");
  ignore (Sc.try_pop ~now:9.0 q0);
  (match Sc.try_push q0 ~now:10.0 ~deadline:10.001 "y" with
  | Sc.Pushed -> ()
  | _ -> Alcotest.fail "shedding disabled must stay FIFO")

(* {1 Idempotency keys} *)

let submit_key_line ?(protocol = "flood") ?(graph = "small") ?(seed = 1) ~key id =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%s,\"protocol\":%s,\"graph\":%s,\"seed\":%d,\"key\":%s}"
    (J.escape id) (J.escape protocol) (J.escape graph) seed (J.escape key)

let key_of_resp resp =
  Option.bind (J.member "result" (parse_resp resp)) (fun r ->
      Option.bind (J.member "key_of" r) J.to_string_opt)

let test_idempotent_keys () =
  let t = mk () in
  Alcotest.(check bool) "original" true (is_ok (req t (submit_key_line ~key:"K" "k1")));
  (* Duplicate while the original is still in flight: no new session,
     the answer points at the in-flight original. *)
  let r2 = req t (submit_key_line ~key:"K" "k2") in
  Alcotest.(check bool) "dup acknowledged" true (is_ok r2);
  Alcotest.(check (option string)) "points at original" (Some "k1") (key_of_resp r2);
  Alcotest.(check string) "dup state is original's" "queued" (state_of r2);
  Alcotest.(check string) "no session for the dup id" "unknown_id"
    (err_code (status t "k2"));
  Alcotest.(check bool) "runs once" true (S.step t);
  Alcotest.(check bool) "only once" false (S.step t);
  (* After completion a duplicate returns the original's exact result. *)
  let orig = J.to_string (result_json (result t "k1")) in
  let r3 = req t (submit_key_line ~key:"K" "k3") in
  Alcotest.(check bool) "dup after done ok" true (is_ok r3);
  Alcotest.(check string) "byte-identical payload" orig
    (J.to_string (result_json r3));
  Alcotest.(check int) "key hits counted" 2 (counter_of t "server.sessions.key_hits");
  (* A cancelled original answers with its cancellation. *)
  Alcotest.(check bool) "c-orig" true (is_ok (req t (submit_key_line ~key:"C" "c1")));
  ignore (cancel t "c1");
  Alcotest.(check string) "dup of cancelled" "cancelled"
    (err_code (req t (submit_key_line ~key:"C" "c2")));
  S.stop t

let test_key_rollback_on_overload () =
  let t = mk ~max_queue:1 () in
  Alcotest.(check bool) "fill queue" true (is_ok (req t (submit_line "x1")));
  (* The keyed submit is refused by admission: its claim must unwind. *)
  Alcotest.(check string) "overloaded" "overloaded"
    (err_code (req t (submit_key_line ~key:"R" "x2")));
  Alcotest.(check string) "rolled-back session gone" "unknown_id"
    (err_code (status t "x2"));
  ignore (S.step t);
  (* Same key is claimable again — not a duplicate of the failed try. *)
  let r = req t (submit_key_line ~key:"R" "x3") in
  Alcotest.(check bool) "key reusable after rollback" true (is_ok r);
  Alcotest.(check (option string)) "a fresh claim, not a dup" None (key_of_resp r);
  S.stop t

(* {1 Watchdog} *)

let mk_submit ?(protocol = "amnesiac") ?(graph = "mid") id =
  {
    Serve.Proto.sub_id = id;
    sub_protocol = protocol;
    sub_graph = graph;
    sub_scheduler = "fifo";
    sub_engine = "classic";
    sub_seed = 0;
    sub_payload = 0;
    sub_step_limit = None;
    sub_faults = None;
    sub_churn = None;
    sub_deadline_ms = None;
    sub_key = None;
  }

(* The escalation ladder, on a synthetic clock: warn at [warn_after_ms],
   cancel at [cancel_after_ms], breaker after [quarantine_strikes]. *)
let test_watchdog_ladder () =
  let module WD = Serve.Watchdog in
  let module Sn = Serve.Session in
  let tab = Sn.create_table () in
  let reg = Obs.Registry.create () in
  let cfg =
    {
      WD.tick_ms = 10;
      warn_after_ms = 100;
      cancel_after_ms = 200;
      quarantine_strikes = 2;
      quarantine_ms = 1_000;
    }
  in
  let wd = WD.create cfg tab reg in
  let running id ~at =
    match Sn.add tab ~conn:0 ~now:at (mk_submit id) with
    | Error () -> Alcotest.failf "add %s" id
    | Ok s ->
        Sn.transition tab s (fun s ->
            s.Sn.state <- Sn.Running;
            s.Sn.t_started <- at);
        s
  in
  let s1 = running "w1" ~at:0.0 in
  Alcotest.(check int) "young: untouched" 0 (WD.sweep wd ~now:0.05);
  Alcotest.(check int) "level still 0" 0 s1.Serve.Session.wd_level;
  Alcotest.(check int) "past warn: warned" 1 (WD.sweep wd ~now:0.15);
  Alcotest.(check int) "level 1" 1 s1.Serve.Session.wd_level;
  Alcotest.(check bool) "warn does not cancel" false (Atomic.get s1.Serve.Session.cancel);
  Alcotest.(check int) "warn is once" 0 (WD.sweep wd ~now:0.16);
  Alcotest.(check int) "past cancel: cancelled" 1 (WD.sweep wd ~now:0.25);
  Alcotest.(check int) "level 2" 2 s1.Serve.Session.wd_level;
  Alcotest.(check bool) "cancel flag flipped" true (Atomic.get s1.Serve.Session.cancel);
  Alcotest.(check int) "ladder tops out" 0 (WD.sweep wd ~now:0.30);
  (* One strike of (mid, amnesiac): breaker still closed. *)
  Alcotest.(check bool) "one strike: closed" true
    (WD.quarantined wd ~graph:"mid" ~protocol:"amnesiac" ~now:0.3 = None);
  (* Second stuck session of the same pair trips it. *)
  let s2 = running "w2" ~at:0.3 in
  Alcotest.(check int) "w2 cancelled directly" 1 (WD.sweep wd ~now:0.6);
  Alcotest.(check int) "w2 level 2" 2 s2.Serve.Session.wd_level;
  (match WD.quarantined wd ~graph:"mid" ~protocol:"amnesiac" ~now:0.7 with
  | Some ms -> Alcotest.(check bool) "remaining in (0, 1000]" true (ms >= 1 && ms <= 1_000)
  | None -> Alcotest.fail "breaker should be open");
  Alcotest.(check bool) "other pairs unaffected" true
    (WD.quarantined wd ~graph:"small" ~protocol:"flood" ~now:0.7 = None);
  Alcotest.(check bool) "window expires" true
    (WD.quarantined wd ~graph:"mid" ~protocol:"amnesiac" ~now:2.0 = None);
  (* Finished sessions never escalate. *)
  Sn.transition tab s1 (fun s -> s.Sn.state <- Sn.Cancelled "watchdog");
  Sn.transition tab s2 (fun s -> s.Sn.state <- Sn.Cancelled "watchdog");
  Alcotest.(check int) "nothing left to escalate" 0 (WD.sweep wd ~now:9.9)

(* End to end: a livelocking amnesiac flood on a cyclic graph wedges a
   worker; the watchdog domain cancels it within its budget while
   healthy sessions keep completing; the (graph, protocol) pair is then
   quarantined with a retry-after hint. *)
let test_watchdog_cancels_wedged () =
  let wd_cfg =
    {
      Serve.Watchdog.tick_ms = 10;
      warn_after_ms = 40;
      cancel_after_ms = 80;
      quarantine_strikes = 1;
      quarantine_ms = 60_000;
    }
  in
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:4"); ("mid", "random:12:3") ];
      workers = 2;
      step_limit = 20_000;
      watchdog = Some wd_cfg;
    }
  in
  let t =
    match S.create ~config () with
    | Ok t -> t
    | Error e -> Alcotest.failf "server create: %s" e
  in
  S.start_workers t;
  (* The wedge: amnesiac flooding never quiesces on a cyclic graph, and
     its huge explicit budget means only the watchdog can end it. *)
  Alcotest.(check bool) "wedge submitted" true
    (is_ok
       (req t
          (submit_line ~protocol:"amnesiac" ~graph:"mid"
             ~step_limit:500_000_000 "wedge")));
  Alcotest.(check bool) "healthy 1" true (is_ok (req t (submit_line "h1")));
  Alcotest.(check bool) "healthy 2" true (is_ok (req t (submit_line ~seed:2 "h2")));
  (match S.await t "wedge" with
  | Some (Serve.Session.Cancelled "watchdog") -> ()
  | Some st ->
      Alcotest.failf "wedge ended as %s, not watchdog-cancelled"
        (Serve.Session.state_name st)
  | None -> Alcotest.fail "wedge unknown");
  (match S.await t "h1" with
  | Some (Serve.Session.Done _) -> ()
  | _ -> Alcotest.fail "healthy session h1 should complete");
  (match S.await t "h2" with
  | Some (Serve.Session.Done _) -> ()
  | _ -> Alcotest.fail "healthy session h2 should complete");
  (* The pair is now behind the breaker, with a machine-readable hint. *)
  let r = req t (submit_line ~protocol:"amnesiac" ~graph:"mid" "wedge2") in
  Alcotest.(check string) "quarantined" "quarantined" (err_code r);
  (match
     Option.bind (J.member "error" (parse_resp r)) (fun e ->
         Option.bind (J.member "retry_after_ms" e) J.to_int_opt)
   with
  | Some ms -> Alcotest.(check bool) "retry-after hint" true (ms > 0)
  | None -> Alcotest.fail "quarantined answer must carry retry_after_ms");
  (* Other work is unaffected. *)
  Alcotest.(check bool) "flood/small still admitted" true
    (is_ok (req t (submit_line ~seed:3 "h3")));
  Alcotest.(check bool) "watchdog cancels counted" true
    (counter_of t "server.watchdog.cancelled" >= 1);
  Alcotest.(check bool) "quarantine counted" true
    (counter_of t "server.watchdog.quarantines" >= 1);
  S.stop t

(* {1 Journal recovery (in-process restart)} *)

let test_recovery_restart () =
  let path = Filename.temp_file "anonet-serve" ".journal" in
  Sys.remove path;
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:4") ];
      workers = 0;
      step_limit = 20_000;
      journal = Some path;
      journal_sync = false;
    }
  in
  let boot () =
    match S.create ~config () with
    | Ok t -> t
    | Error e -> Alcotest.failf "server create: %s" e
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Generation 1: one completed (keyed), one cancelled, one left
         queued at shutdown. *)
      let t1 = boot () in
      Alcotest.(check bool) "a" true (is_ok (req t1 (submit_key_line ~key:"K" "a")));
      Alcotest.(check bool) "a runs" true (S.step t1);
      let ra = J.to_string (result_json (result t1 "a")) in
      Alcotest.(check bool) "b" true (is_ok (req t1 (submit_line ~seed:2 "b")));
      ignore (cancel t1 "b");
      Alcotest.(check bool) "c" true (is_ok (req t1 (submit_line ~seed:3 "c")));
      S.stop t1;
      (* Generation 2 replays the journal before serving. *)
      let t2 = boot () in
      (match S.recovery t2 with
      | None -> Alcotest.fail "no recovery summary"
      | Some r ->
          Alcotest.(check int) "replayed" 2 r.S.rec_replayed;
          Alcotest.(check int) "verified" 1 r.S.rec_verified;
          Alcotest.(check int) "mismatched" 0 r.S.rec_mismatched;
          Alcotest.(check int) "completed" 1 r.S.rec_completed;
          Alcotest.(check int) "cancelled" 1 r.S.rec_cancelled;
          Alcotest.(check int) "failed" 0 r.S.rec_failed;
          Alcotest.(check int) "orphans" 0 r.S.rec_orphans;
          Alcotest.(check int) "unreplayable" 0 r.S.rec_unreplayable;
          Alcotest.(check bool) "not torn" false r.S.rec_torn;
          (* The summary and the metrics counters are the same numbers. *)
          List.iter
            (fun (name, v) ->
              Alcotest.(check int) ("counter " ^ name) v
                (counter_of t2 ("server.recovered." ^ name)))
            [
              ("replayed", r.S.rec_replayed);
              ("verified", r.S.rec_verified);
              ("mismatched", r.S.rec_mismatched);
              ("completed", r.S.rec_completed);
              ("cancelled", r.S.rec_cancelled);
              ("failed", r.S.rec_failed);
              ("orphans", r.S.rec_orphans);
              ("unreplayable", r.S.rec_unreplayable);
              ("torn", if r.S.rec_torn then 1 else 0);
            ]);
      (* The acknowledged-and-completed session came back byte-identical. *)
      Alcotest.(check string) "a byte-identical" ra
        (J.to_string (result_json (result t2 "a")));
      (* The cancelled session stayed cancelled (not resurrected)... *)
      Alcotest.(check string) "b still cancelled" "cancelled" (err_code (result t2 "b"));
      (* ...and the acked-but-unfinished one was finished by recovery. *)
      Alcotest.(check string) "c completed" "done" (state_of (status t2 "c"));
      (* Recovered ids stay taken; recovered keys stay claimed. *)
      Alcotest.(check string) "id a still taken" "duplicate_id"
        (err_code (req t2 (submit_line "a")));
      let rk = req t2 (submit_key_line ~key:"K" "a2") in
      Alcotest.(check bool) "key K answers from recovery" true (is_ok rk);
      Alcotest.(check string) "key K returns a's bytes" ra
        (J.to_string (result_json rk));
      S.stop t2)

(* {1 Client retry policy}

   The client's backoff IS the supervisor's retransmission schedule:
   same config, same PRNG, same numbers.  A server hint can only
   lengthen a wait. *)

let test_retry_policy_reuse () =
  let r = { Serve.Client.default_retry with r_base_ms = 20; r_seed = 7 } in
  let p_client = Prng.create 7 and p_sup = Prng.create 7 in
  let cfg = Runtime.Supervisor.config ~base_timeout:20 () in
  for round = 0 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "round %d matches Supervisor.backoff" round)
      (Runtime.Supervisor.backoff cfg p_sup ~round)
      (Serve.Client.retry_delay_ms r p_client ~round ~hint_ms:0)
  done;
  Alcotest.(check int) "server hint dominates short backoffs" 10_000
    (Serve.Client.retry_delay_ms r (Prng.create 7) ~round:0 ~hint_ms:10_000)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "framing" `Quick test_wire_basic;
          Alcotest.test_case "overflow + resync" `Quick test_wire_overflow;
          prop_wire_chunking;
          Alcotest.test_case "protocol fuzz (truncate/flip/oversize)" `Quick
            test_wire_fuzz;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "submit/status/result/metrics" `Quick test_lifecycle;
          Alcotest.test_case "bad frames" `Quick test_bad_frames;
          Alcotest.test_case "duplicate id" `Quick test_duplicate_id;
          Alcotest.test_case "watch streams diffs" `Quick test_watch;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "no_credit" `Quick test_no_credit;
          Alcotest.test_case "adaptive shedding (Sched)" `Quick test_sched_shed;
          Alcotest.test_case "idempotency keys" `Quick test_idempotent_keys;
          Alcotest.test_case "key rollback on overload" `Quick
            test_key_rollback_on_overload;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "escalation ladder (synthetic clock)" `Quick
            test_watchdog_ladder;
          Alcotest.test_case "wedged session cancelled, healthy complete"
            `Quick test_watchdog_cancels_wedged;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "journal replay across restart" `Quick
            test_recovery_restart;
          Alcotest.test_case "client backoff = supervisor policy" `Quick
            test_retry_policy_reuse;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "queued" `Quick test_cancel_queued;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "running races" `Quick test_cancel_running_race;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "8-way same-seed determinism" `Quick
            test_concurrent_determinism;
          Alcotest.test_case "flat/classic payload parity" `Quick
            test_engine_parity;
          Alcotest.test_case "shutdown" `Quick test_shutdown_refuses_submits;
        ] );
    ]
