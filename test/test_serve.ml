(* The serve subsystem: NDJSON framing (including overflow resync and a
   chunking fuzz), the full session lifecycle over [Server.handle_line]
   (the exact function the socket loop calls), admission control and
   credits, cancellation in every phase, byte-determinism of results
   under concurrent load, and exact metrics reconciliation. *)

open Helpers
module W = Serve.Wire
module S = Serve.Server
module J = Obs.Json

(* {1 Wire framing} *)

let lines_of evs =
  List.filter_map (function W.Line l -> Some l | W.Overflow -> None) evs

let test_wire_basic () =
  let w = W.create () in
  Alcotest.(check (list string))
    "two lines in one chunk" [ "a"; "bb" ]
    (lines_of (W.feed_string w "a\nbb\n"));
  Alcotest.(check (list string)) "partial buffered" [] (lines_of (W.feed_string w "cc"));
  Alcotest.(check bool) "pending visible" true (W.pending w);
  Alcotest.(check (list string))
    "completed across feeds" [ "ccd" ]
    (lines_of (W.feed_string w "d\n"));
  Alcotest.(check (list string))
    "CR stripped" [ "x" ]
    (lines_of (W.feed_string w "x\r\n"));
  Alcotest.(check (list string))
    "empty line is a frame" [ "" ]
    (lines_of (W.feed_string w "\n"))

let test_wire_overflow () =
  let w = W.create ~max_line:4 () in
  let evs = W.feed_string w "abcdefgh\nok\n" in
  Alcotest.(check int) "one overflow event" 1
    (List.length (List.filter (( = ) W.Overflow) evs));
  Alcotest.(check (list string)) "resyncs after newline" [ "ok" ] (lines_of evs);
  (* Overflow split across feeds: the discard mode must persist. *)
  let w = W.create ~max_line:4 () in
  ignore (W.feed_string w "12345");
  ignore (W.feed_string w "67890");
  let evs = W.feed_string w "123\nfine\n" in
  Alcotest.(check (list string)) "later frames survive" [ "fine" ] (lines_of evs)

(* Any chunking of the same byte stream yields the same frames. *)
let prop_wire_chunking =
  qcheck_to_alcotest ~count:100 "framing is chunking-invariant"
    QCheck.(
      pair
        (small_list (string_gen_of_size (Gen.int_range 0 12) (Gen.char_range 'a' 'z')))
        (int_range 1 7))
    (fun (lines, chunk) ->
      let stream = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
      let w = W.create () in
      let got = ref [] in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        got := !got @ lines_of (W.feed_string w (String.sub stream !i len));
        i := !i + len
      done;
      !got = lines)

(* {1 Server helpers} *)

let mk ?(workers = 0) ?(max_queue = 64) ?(credits = 32) () =
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:4"); ("mid", "random:12:3") ];
      workers;
      max_queue;
      credits;
      (* counting on the cyclic [mid] graph runs to the step limit; keep
         those sessions short — the contracts under test don't care. *)
      step_limit = 20_000;
    }
  in
  match S.create ~config () with
  | Ok t -> t
  | Error e -> Alcotest.failf "server create: %s" e

let req t ?(conn = 0) line = S.handle_line t ~conn line

let parse_resp resp =
  match J.parse resp with
  | Ok v -> v
  | Error i -> Alcotest.failf "unparseable response at %d: %s" i resp

let is_ok resp =
  match Option.bind (J.member "ok" (parse_resp resp)) J.to_bool_opt with
  | Some b -> b
  | None -> Alcotest.failf "no \"ok\" in %s" resp

let err_code resp =
  match
    Option.bind (J.member "error" (parse_resp resp)) (fun e ->
        Option.bind (J.member "code" e) J.to_string_opt)
  with
  | Some c -> c
  | None -> Alcotest.failf "no error code in %s" resp

let state_of resp =
  match
    Option.bind (J.member "result" (parse_resp resp)) (fun r ->
        Option.bind (J.member "state" r) J.to_string_opt)
  with
  | Some s -> s
  | None -> Alcotest.failf "no state in %s" resp

let result_json resp =
  match J.member "result" (parse_resp resp) with
  | Some r -> r
  | None -> Alcotest.failf "no result in %s" resp

let submit_line ?(protocol = "flood") ?(graph = "small") ?(seed = 1) ?engine
    ?scheduler ?deadline_ms ?step_limit id =
  Printf.sprintf
    "{\"op\":\"submit\",\"id\":%s,\"protocol\":%s,\"graph\":%s,\"seed\":%d%s%s%s%s}"
    (J.escape id) (J.escape protocol) (J.escape graph) seed
    (match engine with
    | None -> ""
    | Some e -> Printf.sprintf ",\"engine\":%s" (J.escape e))
    (match scheduler with
    | None -> ""
    | Some s -> Printf.sprintf ",\"scheduler\":%s" (J.escape s))
    (match deadline_ms with
    | None -> ""
    | Some ms -> Printf.sprintf ",\"deadline_ms\":%d" ms)
    (match step_limit with
    | None -> ""
    | Some l -> Printf.sprintf ",\"step_limit\":%d" l)

let status t id = req t (Printf.sprintf "{\"op\":\"status\",\"id\":%s}" (J.escape id))
let result t id = req t (Printf.sprintf "{\"op\":\"result\",\"id\":%s}" (J.escape id))
let cancel t id = req t (Printf.sprintf "{\"op\":\"cancel\",\"id\":%s}" (J.escape id))

(* {1 Lifecycle} *)

let test_lifecycle () =
  let t = mk () in
  let r = req t (submit_line "a") in
  Alcotest.(check bool) "submit accepted" true (is_ok r);
  Alcotest.(check string) "queued" "queued" (state_of (status t "a"));
  Alcotest.(check string) "result early" "not_done" (err_code (result t "a"));
  Alcotest.(check bool) "step runs it" true (S.step t);
  Alcotest.(check bool) "queue drained" false (S.step t);
  Alcotest.(check string) "done" "done" (state_of (status t "a"));
  let v = result_json (result t "a") in
  Alcotest.(check (option string))
    "flood quiesces" (Some "quiescent")
    (Option.bind (J.member "outcome" v) J.to_string_opt);
  Alcotest.(check (option bool))
    "covers the graph" (Some true)
    (Option.bind (J.member "all_visited" v) J.to_bool_opt);
  let d = Option.bind (J.member "deliveries" v) J.to_int_opt in
  Alcotest.(check bool) "deliveries counted" true (Option.value ~default:0 d > 0);
  (* Reconciliation: the merged registry equals the one result we saw. *)
  let m = result_json (req t "{\"op\":\"metrics\"}") in
  Alcotest.(check (option int))
    "metrics reconcile with the report" d
    (Option.bind (J.member "counters" m)
       (fun c -> Option.bind (J.member "sessions.engine.deliveries" c) J.to_int_opt));
  S.stop t

let test_bad_frames () =
  let t = mk () in
  Alcotest.(check string) "garbage" "parse_error" (err_code (req t "not json"));
  Alcotest.(check string) "unknown op" "bad_request"
    (err_code (req t "{\"op\":\"frobnicate\",\"id\":\"x\"}"));
  Alcotest.(check string) "missing id" "bad_request"
    (err_code (req t "{\"op\":\"status\"}"));
  Alcotest.(check string) "unknown protocol" "unknown_protocol"
    (err_code (req t (submit_line ~protocol:"telepathy" "x")));
  Alcotest.(check string) "unknown graph" "unknown_graph"
    (err_code (req t (submit_line ~graph:"nowhere" "x")));
  Alcotest.(check string) "bad scheduler" "bad_request"
    (err_code
       (req t "{\"op\":\"submit\",\"id\":\"x\",\"protocol\":\"flood\",\"graph\":\"small\",\"scheduler\":\"psychic\"}"));
  (* An unknown engine is the typed Bad_request, never a dropped
     connection. *)
  Alcotest.(check string) "bad engine" "bad_request"
    (err_code (req t (submit_line ~engine:"turbo" "x")));
  Alcotest.(check string) "unknown session" "unknown_id" (err_code (status t "ghost"));
  (* The connection survives all of the above. *)
  Alcotest.(check bool) "still serving" true (is_ok (req t (submit_line "ok")));
  S.stop t

let test_duplicate_id () =
  let t = mk () in
  Alcotest.(check bool) "first" true (is_ok (req t (submit_line "dup")));
  Alcotest.(check string) "second rejected" "duplicate_id"
    (err_code (req t (submit_line "dup")));
  Alcotest.(check bool) "original unharmed" true (S.step t);
  Alcotest.(check string) "and finishes" "done" (state_of (status t "dup"));
  (* A finished id is still taken: results must stay addressable. *)
  Alcotest.(check string) "still taken after finish" "duplicate_id"
    (err_code (req t (submit_line "dup")));
  S.stop t

(* {1 Admission control} *)

let test_overloaded () =
  let t = mk ~max_queue:1 () in
  Alcotest.(check bool) "fills the queue" true (is_ok (req t (submit_line "q1")));
  let r = req t (submit_line "q2") in
  Alcotest.(check string) "overflow typed" "overloaded" (err_code r);
  (* Rollback: the refused session left no trace and the id is reusable. *)
  Alcotest.(check string) "no ghost session" "unknown_id" (err_code (status t "q2"));
  ignore (S.step t);
  Alcotest.(check bool) "slot freed after drain" true (is_ok (req t (submit_line "q2")));
  ignore (S.step t);
  Alcotest.(check string) "retry completes" "done" (state_of (status t "q2"));
  S.stop t

let test_no_credit () =
  let t = mk ~credits:1 () in
  Alcotest.(check bool) "conn 0 first" true (is_ok (req t ~conn:0 (submit_line "c1")));
  Alcotest.(check string) "conn 0 second refused" "no_credit"
    (err_code (req t ~conn:0 (submit_line "c2")));
  Alcotest.(check bool) "credits are per-connection" true
    (is_ok (req t ~conn:1 (submit_line "c3")));
  ignore (S.step t);
  ignore (S.step t);
  Alcotest.(check bool) "credit returns on finish" true
    (is_ok (req t ~conn:0 (submit_line "c4")));
  ignore (S.step t);
  S.stop t

(* {1 Cancellation} *)

let test_cancel_queued () =
  let t = mk () in
  ignore (req t (submit_line "z"));
  Alcotest.(check string) "cancel answers final state" "cancelled"
    (state_of (cancel t "z"));
  Alcotest.(check string) "status agrees" "cancelled" (state_of (status t "z"));
  Alcotest.(check string) "result is a typed error" "cancelled"
    (err_code (result t "z"));
  (* The dead session is still in the queue; popping it must be a no-op. *)
  Alcotest.(check bool) "worker pops the corpse" true (S.step t);
  Alcotest.(check string) "not resurrected" "cancelled" (state_of (status t "z"));
  Alcotest.(check string) "cancel is idempotent" "cancelled" (state_of (cancel t "z"));
  S.stop t

let test_deadline () =
  let t = mk () in
  (* The deadline clock starts when the worker picks the session up, so a
     fast run cannot be caught by it — use one that would grind for ages
     (counting on the cyclic graph, huge step limit) and give it 5ms: the
     engine's periodic deadline poll must kill it mid-run. *)
  ignore
    (req t
       (submit_line ~protocol:"counting" ~graph:"mid" ~step_limit:10_000_000
          ~deadline_ms:5 "d"));
  ignore (S.step t);
  Alcotest.(check string) "deadline cancels" "cancelled" (state_of (status t "d"));
  let resp = result t "d" in
  Alcotest.(check string) "typed error" "cancelled" (err_code resp);
  let msg =
    match
      Option.bind (J.member "error" (parse_resp resp)) (fun e ->
          Option.bind (J.member "msg" e) J.to_string_opt)
    with
    | Some m -> m
    | None -> ""
  in
  Alcotest.(check bool) "names the deadline" true
    (let n = String.length msg in
     let rec go i = i + 8 <= n && (String.sub msg i 8 = "deadline" || go (i + 1)) in
     go 0);
  S.stop t

let test_cancel_running_race () =
  (* Real workers, a burst of sessions, cancels racing execution: every
     session must still reach a final state — none stuck, none lost. *)
  let t = mk ~workers:2 () in
  S.start_workers t;
  let n = 24 in
  for i = 0 to n - 1 do
    let id = Printf.sprintf "r%d" i in
    ignore (req t (submit_line ~graph:"mid" ~protocol:"counting" ~seed:i id))
  done;
  for i = 0 to n - 1 do
    if i mod 2 = 0 then ignore (cancel t (Printf.sprintf "r%d" i))
  done;
  for i = 0 to n - 1 do
    let id = Printf.sprintf "r%d" i in
    match S.await t id with
    | Some (Serve.Session.Done _ | Serve.Session.Cancelled _) -> ()
    | Some st ->
        Alcotest.failf "session %s ended %s" id (Serve.Session.state_name st)
    | None -> Alcotest.failf "session %s lost" id
  done;
  S.stop t

(* {1 Determinism and reconciliation under concurrency} *)

let test_concurrent_determinism () =
  let t = mk ~workers:4 () in
  S.start_workers t;
  let n = 8 in
  for i = 0 to n - 1 do
    ignore
      (req t ~conn:i
         (submit_line ~graph:"mid" ~protocol:"counting" ~seed:42
            (Printf.sprintf "det%d" i)))
  done;
  let payloads =
    List.init n (fun i ->
        let id = Printf.sprintf "det%d" i in
        ignore (S.await t id);
        J.to_string (result_json (result t id)))
  in
  List.iter
    (fun p ->
      Alcotest.(check string) "same seed, same bytes" (List.hd payloads) p)
    payloads;
  (* Exact rollup: merged deliveries = n * the per-run count. *)
  let one =
    match
      Option.bind
        (J.member "deliveries" (parse_resp (List.hd payloads)))
        J.to_int_opt
    with
    | Some d -> d
    | None -> Alcotest.fail "no deliveries"
  in
  let m = result_json (req t "{\"op\":\"metrics\"}") in
  Alcotest.(check (option int))
    "rollup is exact" (Some (n * one))
    (Option.bind (J.member "counters" m)
       (fun c -> Option.bind (J.member "sessions.engine.deliveries" c) J.to_int_opt));
  S.stop t

(* The engine knob is invisible on the wire: a flat session's result
   payload is byte-identical to the classic one for the same submission —
   across protocols, the seeded random scheduler, and churn. *)
let test_engine_parity () =
  let t = mk () in
  let submit_pair name line_of =
    let classic_id = name ^ "-classic" and flat_id = name ^ "-flat" in
    Alcotest.(check bool)
      "classic accepted" true
      (is_ok (req t (line_of classic_id "classic")));
    Alcotest.(check bool)
      "flat accepted" true
      (is_ok (req t (line_of flat_id "flat")));
    while S.step t do
      ()
    done;
    Alcotest.(check string)
      (name ^ " payload bytes match")
      (J.to_string (result_json (result t classic_id)))
      (J.to_string (result_json (result t flat_id)))
  in
  submit_pair "flood" (fun id e ->
      submit_line ~protocol:"flood" ~graph:"small" ~engine:e id);
  submit_pair "counting" (fun id e ->
      submit_line ~protocol:"counting" ~graph:"mid" ~scheduler:"random"
        ~seed:42 ~engine:e id);
  submit_pair "churned-general" (fun id e ->
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":%s,\"protocol\":\"general\",\"graph\":\"mid\",\"scheduler\":\"random\",\"seed\":7,\"engine\":%s,\"churn\":{\"rate\":0.1,\"seed\":3}}"
        (J.escape id) (J.escape e));
  S.stop t

(* [watch] streams incremental registry diffs: queued -> empty metrics,
   after the run -> a diff carrying exactly the report's deliveries (the
   first watch covered nothing), then a drained second diff. *)
let test_watch () =
  let t = mk () in
  ignore (req t (submit_line "w"));
  let watch id = req t (Printf.sprintf "{\"op\":\"watch\",\"id\":%s}" (J.escape id)) in
  let counter v name =
    Option.bind (J.member "metrics" v) (fun m ->
        Option.bind (J.member "counters" m) (fun c ->
            Option.bind (J.member name c) J.to_int_opt))
  in
  let w1 = result_json (watch "w") in
  Alcotest.(check (option string))
    "queued state" (Some "queued")
    (Option.bind (J.member "state" w1) J.to_string_opt);
  Alcotest.(check (option int))
    "no registry yet" None (counter w1 "engine.deliveries");
  ignore (S.step t);
  let w2 = result_json (watch "w") in
  Alcotest.(check (option string))
    "done state" (Some "done")
    (Option.bind (J.member "state" w2) J.to_string_opt);
  let d =
    Option.bind (J.member "deliveries" (result_json (result t "w"))) J.to_int_opt
  in
  Alcotest.(check (option int))
    "first real diff carries the run's deliveries" d
    (counter w2 "engine.deliveries");
  (* The engine epilogue registered its GC gauges on the session registry. *)
  Alcotest.(check bool) "gc gauges visible" true
    (Option.is_some
       (Option.bind (J.member "metrics" w2) (fun m ->
            Option.bind (J.member "gauges" m)
              (J.member "engine.gc.heap_words"))));
  let d3 = counter (result_json (watch "w")) "engine.deliveries" in
  Alcotest.(check bool) "second diff drained" true (d3 = None || d3 = Some 0);
  Alcotest.(check string) "unknown id" "unknown_id"
    (err_code (watch "nope"));
  S.stop t

let test_shutdown_refuses_submits () =
  let t = mk () in
  ignore (req t (submit_line "pre"));
  S.stop t;
  Alcotest.(check string) "queued work failed visibly" "shutting_down"
    (err_code (result t "pre"));
  Alcotest.(check string) "new submits refused" "shutting_down"
    (err_code (req t (submit_line "post")))

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "framing" `Quick test_wire_basic;
          Alcotest.test_case "overflow + resync" `Quick test_wire_overflow;
          prop_wire_chunking;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "submit/status/result/metrics" `Quick test_lifecycle;
          Alcotest.test_case "bad frames" `Quick test_bad_frames;
          Alcotest.test_case "duplicate id" `Quick test_duplicate_id;
          Alcotest.test_case "watch streams diffs" `Quick test_watch;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overloaded" `Quick test_overloaded;
          Alcotest.test_case "no_credit" `Quick test_no_credit;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "queued" `Quick test_cancel_queued;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "running races" `Quick test_cancel_running_race;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "8-way same-seed determinism" `Quick
            test_concurrent_determinism;
          Alcotest.test_case "flat/classic payload parity" `Quick
            test_engine_parity;
          Alcotest.test_case "shutdown" `Quick test_shutdown_refuses_submits;
        ] );
    ]
