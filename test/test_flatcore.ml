(* The flat engine against the classic engine.

   The flat engine's contract is strictly stronger than Par's: it executes
   the {e same} delivery schedule as [Runtime.Engine] (same pools, same
   per-edge PRNG streams, same fate order), so for equal inputs every
   field of the report — including schedule-dependent measures like
   delivery counts, bit high-water marks and per-edge arrays — must be
   byte-for-byte identical, and the deterministic [engine.*] Obs cells
   must reconcile exactly.  Only the [engine.receive_ns*] wall-clock cells
   are exempt.

   The CSR compilation itself is checked twice: unit tests on a
   hand-built multigraph (multi-edges, self-loops, port permutations,
   edge-index round-trips), and a property test that [Flatcore.Graph]
   answers every local query like [Digraph] on random digraphs. *)

module E = Runtime.Engine
module F = Digraph.Families
module H = Helpers
module Scheduler = Runtime.Scheduler

(* {1 Report and Obs comparison} *)

let same_reports (type s) ~ctx (digest : s -> string) (cr : s E.report)
    (fr : s E.report) =
  let chk name t a b = Alcotest.check t (ctx ^ ": " ^ name) a b in
  chk "outcome" H.outcome cr.E.outcome fr.E.outcome;
  chk "deliveries" Alcotest.int cr.E.deliveries fr.E.deliveries;
  chk "total_bits" Alcotest.int cr.E.total_bits fr.E.total_bits;
  chk "max_edge_bits" Alcotest.int cr.E.max_edge_bits fr.E.max_edge_bits;
  chk "max_message_bits" Alcotest.int cr.E.max_message_bits fr.E.max_message_bits;
  chk "max_state_bits" Alcotest.int cr.E.max_state_bits fr.E.max_state_bits;
  chk "max_in_flight" Alcotest.int cr.E.max_in_flight fr.E.max_in_flight;
  chk "final_in_flight" Alcotest.int cr.E.final_in_flight fr.E.final_in_flight;
  chk "distinct_messages" Alcotest.int cr.E.distinct_messages
    fr.E.distinct_messages;
  chk "edge_messages" Alcotest.(array int) cr.E.edge_messages fr.E.edge_messages;
  chk "edge_bits" Alcotest.(array int) cr.E.edge_bits fr.E.edge_bits;
  chk "visited" Alcotest.(array bool) cr.E.visited fr.E.visited;
  chk "states" Alcotest.(array string) (Array.map digest cr.E.states)
    (Array.map digest fr.E.states);
  chk "fault_stats" Alcotest.bool true (cr.E.fault_stats = fr.E.fault_stats);
  chk "vfault_stats" Alcotest.bool true (cr.E.vfault_stats = fr.E.vfault_stats);
  chk "churn_stats" Alcotest.bool true (cr.E.churn_stats = fr.E.churn_stats)

(* Everything in the registry must match except the wall-clock receive
   timings (their histogram {e counts} agree, their contents cannot) and
   the [engine.gc.*] gauges (allocation word counts are an artifact of
   each implementation's data structures, not of the semantics). *)
let strip_ns snap =
  List.filter
    (fun (name, _) ->
      (not (String.starts_with ~prefix:"engine.receive_ns" name))
      && not (String.starts_with ~prefix:"engine.gc." name))
    snap

let receive_ns_count snap =
  match Obs.Registry.find_histogram snap "engine.receive_ns_hist" with
  | Some (count, _, _) -> count
  | None -> 0

let same_obs ~ctx (a : Obs.t) (b : Obs.t) =
  let sa = Obs.Registry.snapshot a.Obs.registry
  and sb = Obs.Registry.snapshot b.Obs.registry in
  Alcotest.(check int)
    (ctx ^ ": sampled-receive count")
    (receive_ns_count sa) (receive_ns_count sb);
  let sa = strip_ns sa and sb = strip_ns sb in
  if sa <> sb then
    Alcotest.failf "%s: obs snapshots differ:\n%s\nvs\n%s" ctx
      (Obs.Registry.to_json sa) (Obs.Registry.to_json sb)

(* {1 CSR builder units} *)

(* Multi-edges 0->1, a self-loop at 1, skewed ports: the shapes that break
   sloppy port bookkeeping. *)
let csr_multigraph () =
  let g =
    Digraph.make ~n:4 ~s:0 ~t:3
      [ (0, 1); (0, 1); (1, 1); (1, 2); (2, 3); (0, 3); (2, 1) ]
  in
  let c = Flatcore.Csr.of_digraph g in
  Alcotest.(check int) "n" (Digraph.n_vertices g) (Flatcore.Csr.n_vertices c);
  Alcotest.(check int) "m" (Digraph.n_edges g) (Flatcore.Csr.n_edges c);
  Alcotest.(check int) "s" (Digraph.source g) (Flatcore.Csr.source c);
  Alcotest.(check int) "t" (Digraph.terminal g) (Flatcore.Csr.terminal c);
  for e = 0 to Digraph.n_edges g - 1 do
    let u, j = Digraph.edge_of_index g e in
    let tv, tp = Digraph.out_port_target_port g u j in
    let ctx = Printf.sprintf "edge %d" e in
    Alcotest.(check int) (ctx ^ ": src") u (Flatcore.Csr.edge_src c e);
    Alcotest.(check int) (ctx ^ ": src port") j (Flatcore.Csr.edge_src_port c e);
    Alcotest.(check int) (ctx ^ ": head") tv (Flatcore.Csr.edge_head c e);
    Alcotest.(check int) (ctx ^ ": tgt port") tp (Flatcore.Csr.edge_tgt_port c e);
    Alcotest.(check int)
      (ctx ^ ": index round-trip")
      e
      (Flatcore.Csr.edge_index c u j)
  done

let graph_queries_agree g =
  let c = Flatcore.Graph.of_digraph g in
  let fail fmt = QCheck.Test.fail_reportf fmt in
  if Flatcore.Graph.n_vertices c <> Digraph.n_vertices g then fail "n differs";
  if Flatcore.Graph.n_edges c <> Digraph.n_edges g then fail "m differs";
  if Flatcore.Graph.source c <> Digraph.source g then fail "s differs";
  if Flatcore.Graph.terminal c <> Digraph.terminal g then fail "t differs";
  List.iter
    (fun v ->
      let od = Digraph.out_degree g v and idg = Digraph.in_degree g v in
      if Flatcore.Graph.out_degree c v <> od then fail "out_degree differs";
      if Flatcore.Graph.in_degree c v <> idg then fail "in_degree differs";
      for j = 0 to od - 1 do
        if Flatcore.Graph.out_neighbor c v j <> Digraph.out_neighbor g v j then
          fail "out_neighbor differs";
        if
          Flatcore.Graph.out_port_target_port c v j
          <> Digraph.out_port_target_port g v j
        then fail "out_port_target_port differs";
        let e = Digraph.edge_index g v j in
        if Flatcore.Graph.edge_index c v j <> e then fail "edge_index differs";
        if Flatcore.Graph.edge_of_index c e <> (v, j) then
          fail "edge_of_index differs"
      done;
      for i = 0 to idg - 1 do
        if Flatcore.Graph.in_origin c v i <> Digraph.in_origin g v i then
          fail "in_origin differs"
      done;
      let collect iter_out graph =
        let acc = ref [] in
        iter_out graph v (fun j w -> acc := (j, w) :: !acc);
        List.rev !acc
      in
      if collect Flatcore.Graph.iter_out c <> collect Digraph.iter_out g then
        fail "iter_out differs";
      if
        Flatcore.Graph.fold_out c v ~init:0 (fun a _ w -> a + w)
        <> Digraph.fold_out g v ~init:0 (fun a _ w -> a + w)
      then fail "fold_out differs")
    (Digraph.vertices g);
  if Flatcore.Graph.edges c <> Digraph.edges g then fail "edges differ";
  if Flatcore.Graph.classify c <> Digraph.classify g then fail "classify differs";
  true

(* {1 Flat == classic, per suite protocol} *)

(* [verify_codec] + hooks force the generic path, so this exercises the
   full transcription; schedulers cover every pool flavor.  [Random] takes
   a mutable PRNG, hence a fresh same-seed generator per engine. *)
let equiv_case (type s m)
    (module P : Runtime.Protocol_intf.CHECKABLE
      with type state = s
       and type message = m) name g =
  let module C = Runtime.Engine.Make (P) in
  let module Fl = Flatcore.Engine.Make (P) in
  let encode m =
    let w = Bitio.Bit_writer.create () in
    P.encode w m;
    string_of_int (Bitio.Bit_writer.length w) ^ ":" ^ Bitio.Bit_writer.to_string w
  in
  let run_pair mk_sched ctx =
    let cl = ref [] and fl = ref [] in
    let co = Obs.create ~sample_every:7 () in
    let fo = Obs.create ~sample_every:7 () in
    let cr =
      C.run ~scheduler:(mk_sched ()) ~payload_bits:2 ~verify_codec:true ~obs:co
        ~on_undelivered:(fun m -> cl := encode m :: !cl)
        g
    in
    let fr =
      Fl.run ~scheduler:(mk_sched ()) ~payload_bits:2 ~verify_codec:true
        ~obs:fo
        ~on_undelivered:(fun m -> fl := encode m :: !fl)
        g
    in
    same_reports ~ctx P.digest cr fr;
    Alcotest.(check (list string)) (ctx ^ ": leftover") !cl !fl;
    same_obs ~ctx co fo
  in
  run_pair (fun () -> Scheduler.Fifo) (name ^ "/fifo");
  run_pair (fun () -> Scheduler.Lifo) (name ^ "/lifo");
  run_pair (fun () -> Scheduler.Random (Prng.create 5)) (name ^ "/random");
  run_pair
    (fun () -> Scheduler.Edge_priority (fun e -> e mod 3))
    (name ^ "/edge-priority");
  (* And once with everything defaulted — the configuration the CLI's
     [--engine flat] actually runs, fast path included when it certifies. *)
  let cr = C.run g and fr = Fl.run g in
  same_reports ~ctx:(name ^ "/plain") P.digest cr fr;
  true

let equivalence_tests =
  List.map
    (fun (name, cls, p) ->
      let arb, count =
        match cls with
        | `Trees -> (H.arb_grounded_tree, 25)
        | `Dags -> (H.arb_dag, 15)
        | `Digraphs -> (H.arb_digraph, 10)
      in
      H.qcheck_to_alcotest ~count
        (Printf.sprintf "flat == classic: %s (all schedulers)" name)
        arb
        (fun g ->
          let (module P : Runtime.Protocol_intf.CHECKABLE) = p in
          equiv_case (module P) name g))
    (Anonet.Check_suite.protocols ())

(* {1 Chaos parity: faults x vfaults x supervisor x churn} *)

let chaos_parity (type s m)
    (module P : Runtime.Protocol_intf.CHECKABLE
      with type state = s
       and type message = m) name ~family () =
  for seed = 1 to 6 do
    let g =
      match family with
      | `Trees ->
          F.random_grounded_tree (Prng.create (40 + seed)) ~n:24 ~t_edge_prob:0.3
      | `Dags ->
          F.random_dag (Prng.create (40 + seed)) ~n:20 ~extra_edges:10
            ~t_edge_prob:0.3
      | `Digraphs ->
          F.random_digraph (Prng.create (40 + seed)) ~n:16 ~extra_edges:12
            ~back_edges:4 ~t_edge_prob:0.25
    in
    let module C = Runtime.Engine.Make (P) in
    let module Fl = Flatcore.Engine.Make (P) in
    let faults =
      Runtime.Faults.create ~drop:0.1 ~duplicate:0.05 ~max_delay:3 ~corrupt:0.1
        ~kill:0.04 ~seed ()
    in
    let vfaults =
      Runtime.Vfaults.uniform
        (Runtime.Vfaults.plan ~crash:0.05 ~max_downtime:3
           ~recovery:Runtime.Vfaults.Amnesia ~stutter:0.05 ())
        ~seed
    in
    let churn =
      Runtime.Churn.uniform
        (Runtime.Churn.plan ~remove:0.08 ~max_downtime:4 ())
        ~seed
    in
    let supervisor =
      { Runtime.Supervisor.default with max_retries = 3; seed = seed * 7 }
    in
    let variants =
      [
        ("faults", Some faults, None, None, None);
        ("vfaults", None, Some vfaults, None, None);
        ("vfaults+supervisor", None, Some vfaults, None, Some supervisor);
        ("churn", None, None, Some churn, None);
        ("everything", Some faults, Some vfaults, Some churn, Some supervisor);
      ]
    in
    List.iter
      (fun (vname, faults, vfaults, churn, supervisor) ->
        let ctx = Printf.sprintf "%s/%s/seed-%d" name vname seed in
        let co = Obs.create ~sample_every:5 () in
        let fo = Obs.create ~sample_every:5 () in
        let cr = C.run ?faults ?vfaults ?churn ?supervisor ~obs:co g in
        let fr = Fl.run ?faults ?vfaults ?churn ?supervisor ~obs:fo g in
        same_reports ~ctx P.digest cr fr;
        same_obs ~ctx co fo)
      variants
  done

let chaos_tests =
  List.map
    (fun (name, cls, p) ->
      let (module P : Runtime.Protocol_intf.CHECKABLE) = p in
      Alcotest.test_case
        (Printf.sprintf "chaos parity: %s" name)
        `Quick
        (chaos_parity (module P) name ~family:cls))
    (Anonet.Check_suite.protocols ())

(* {1 The flood fast path} *)

(* Layered graphs with obs on: the probe certifies flooding, the int-ring
   loop runs, and everything still reconciles with classic — including
   Step_limit and Cancelled endings. *)
let flood_fast_parity () =
  let module C = Runtime.Engine.Make (Anonet.Flood) in
  let module Fl = Flatcore.Engine.Make (Anonet.Flood) in
  for seed = 1 to 6 do
    let g = F.random_layered_large (Prng.create seed) ~target_edges:1_500 in
    let ctx = Printf.sprintf "layered/seed-%d" seed in
    let co = Obs.create ~sample_every:13 () in
    let fo = Obs.create ~sample_every:13 () in
    let cr = C.run ~payload_bits:3 ~obs:co g in
    let fr = Fl.run ~payload_bits:3 ~obs:fo g in
    same_reports ~ctx Anonet.Flood.digest cr fr;
    same_obs ~ctx co fo;
    Alcotest.check H.outcome (ctx ^ ": quiescent") E.Quiescent fr.E.outcome;
    Alcotest.(check int)
      (ctx ^ ": one delivery per edge")
      (Digraph.n_edges g) fr.E.deliveries;
    (* Truncated endings leave identical in-flight accounting. *)
    let limit = Digraph.n_edges g / 3 in
    let cr = C.run ~step_limit:limit g and fr = Fl.run ~step_limit:limit g in
    same_reports ~ctx:(ctx ^ "/step-limit") Anonet.Flood.digest cr fr;
    Alcotest.check H.outcome
      (ctx ^ ": step-limited")
      E.Step_limit fr.E.outcome;
    let cancelling () =
      let polls = ref 0 in
      fun () ->
        incr polls;
        !polls > 40
    in
    let cr = C.run ~stop:(cancelling ()) g
    and fr = Fl.run ~stop:(cancelling ()) g in
    same_reports ~ctx:(ctx ^ "/cancel") Anonet.Flood.digest cr fr;
    Alcotest.check H.outcome (ctx ^ ": cancelled") E.Cancelled fr.E.outcome
  done

(* Amnesiac flood also floods — but its messages carry a round tag, so the
   certificate must {e reject} it and land on the generic path (distinct
   messages per port would break the one-slot argument).  Spot-check the
   reports still agree. *)
let non_flood_stays_generic () =
  let module C = Runtime.Engine.Make (Anonet.Counting) in
  let module Fl = Flatcore.Engine.Make (Anonet.Counting) in
  let g =
    F.random_digraph (Prng.create 11) ~n:20 ~extra_edges:15 ~back_edges:5
      ~t_edge_prob:0.3
  in
  let cr = C.run g and fr = Fl.run g in
  same_reports ~ctx:"counting/plain" Anonet.Counting.digest cr fr

let () =
  Alcotest.run "flatcore"
    [
      ( "csr",
        [
          Alcotest.test_case "multigraph ports + round-trips" `Quick
            csr_multigraph;
          H.qcheck_to_alcotest ~count:60 "flat graph == digraph queries"
            H.arb_digraph graph_queries_agree;
        ] );
      ("equivalence", equivalence_tests);
      ("chaos", chaos_tests);
      ( "fast-path",
        [
          Alcotest.test_case "flood fast path == classic" `Quick
            flood_fast_parity;
          Alcotest.test_case "non-flood protocols stay generic" `Quick
            non_flood_stays_generic;
        ] );
    ]
