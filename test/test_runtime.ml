module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
open Helpers

(* A tiny counting protocol used to exercise the engine itself: every vertex
   forwards an incrementing hop counter once per receipt; nothing accepts. *)
module Hops = struct
  type state = { hops_seen : int list }
  type message = int

  let name = "hops"
  let initial_state ~out_degree:_ ~in_degree:_ = { hops_seen = [] }
  let root_emit ~out_degree = List.init out_degree (fun j -> (j, 0))

  let receive ~out_degree ~in_degree:_ st h ~in_port:_ =
    ( { hops_seen = h :: st.hops_seen },
      List.init out_degree (fun j -> (j, h + 1)) )

  let accepting _ = false
  let encode w h = Bitio.Codes.write_gamma0 w h
  let decode = Bitio.Codes.read_gamma0
  let equal_message = Int.equal
  let state_bits st = 32 * List.length st.hops_seen
  let pp_message = Format.pp_print_int
  let pp_state fmt st = Format.fprintf fmt "%d msgs" (List.length st.hops_seen)
end

module Hops_engine = E.Make (Hops)
module Flood_engine = Runtime.Engine.Make (Anonet.Flood)

let test_flood_visits_everything () =
  let g = F.grid_dag ~rows:3 ~cols:3 in
  let r = Flood_engine.run g in
  Alcotest.check outcome "flood cannot detect termination" E.Quiescent r.outcome;
  Alcotest.(check bool) "but visits every vertex" true
    (Array.for_all (fun v -> v) r.visited)

let test_flood_one_message_per_edge_on_tree () =
  let g = F.comb 6 in
  let r = Flood_engine.run g in
  Alcotest.(check int) "deliveries = edges" (G.n_edges g) r.deliveries;
  Array.iter (fun c -> Alcotest.(check int) "one per edge" 1 c) r.edge_messages

let test_hop_counts_on_path () =
  let g = F.path 4 in
  let r = Hops_engine.run g in
  (* s -> v1 -> ... -> v4 -> t: t hears hop count 4. *)
  Alcotest.(check (list int)) "t heard hop 4" [ 4 ]
    r.states.(G.terminal g).Hops.hops_seen

let test_stats_accounting () =
  let g = F.path 3 in
  let r = Hops_engine.run g in
  Alcotest.(check int) "deliveries" 4 r.deliveries;
  Alcotest.(check int) "total = sum edge bits" r.total_bits
    (Array.fold_left ( + ) 0 r.edge_bits);
  Alcotest.(check int) "messages = sum edge messages" r.deliveries
    (Array.fold_left ( + ) 0 r.edge_messages);
  Alcotest.(check bool) "bandwidth <= total" true (r.max_edge_bits <= r.total_bits);
  Alcotest.(check bool) "max message <= bandwidth" true
    (r.max_message_bits <= r.max_edge_bits);
  (* Hop counters 0..3 are pairwise distinct symbols. *)
  Alcotest.(check int) "distinct messages" 4 r.distinct_messages

let test_payload_bits_charged () =
  let g = F.path 3 in
  let base = Hops_engine.run g in
  let loaded = Hops_engine.run ~payload_bits:100 g in
  Alcotest.(check int) "each delivery charged |m|"
    (base.total_bits + (100 * base.deliveries))
    loaded.total_bits

let test_step_limit () =
  let g = F.grid_dag ~rows:4 ~cols:4 in
  let r = Hops_engine.run ~step_limit:5 g in
  Alcotest.check outcome "limit reported" E.Step_limit r.outcome;
  Alcotest.(check int) "stopped at limit" 5 r.deliveries

let test_trace_hook () =
  let g = F.path 3 in
  let tr = Runtime.Trace.create () in
  let _ = Hops_engine.run ~on_deliver:(Runtime.Trace.hook tr) g in
  Alcotest.(check int) "all deliveries traced" 4 (Runtime.Trace.length tr);
  let sends = Runtime.Trace.sends_per_vertex tr ~n:(G.n_vertices g) in
  Alcotest.(check int) "s sent once" 1 sends.(G.source g);
  Alcotest.(check int) "t sent nothing" 0 sends.(G.terminal g);
  let recvs = Runtime.Trace.receives_per_vertex tr ~n:(G.n_vertices g) in
  Alcotest.(check int) "t received once" 1 recvs.(G.terminal g);
  (* Events are ordered and carry consistent ports. *)
  List.iter
    (fun (ev : E.event) ->
      Alcotest.(check int) "edge target consistent"
        ev.to_vertex
        (G.out_neighbor g ev.from_vertex ev.from_port))
    (Runtime.Trace.events tr)

let test_in_flight_highwater () =
  let g = F.path 3 in
  let r = Hops_engine.run g in
  (* On a path only one message is ever in flight. *)
  Alcotest.(check int) "path keeps one in flight" 1 r.max_in_flight;
  let wide = F.comb 6 in
  let rw = Hops_engine.run ~scheduler:Runtime.Scheduler.Lifo wide in
  Alcotest.(check bool) "comb holds several in flight" true (rw.max_in_flight >= 2)

let test_trace_render () =
  let g = F.path 3 in
  let tr = Runtime.Trace.create () in
  let _ = Hops_engine.run ~on_deliver:(Runtime.Trace.hook tr) g in
  let s = Runtime.Trace.render tr in
  Alcotest.(check bool) "render has one line per delivery" true
    (List.length (String.split_on_char '\n' (String.trim s)) = 4);
  let short = Runtime.Trace.render ~limit:2 tr in
  Alcotest.(check bool) "truncation notice" true
    (String.length short > 0
    && String.split_on_char '\n' (String.trim short) |> List.length = 3);
  let first_uses = Runtime.Trace.edge_first_use tr in
  Alcotest.(check int) "four edges used" 4 (List.length first_uses);
  Alcotest.(check bool) "steps increasing" true
    (List.map snd first_uses = List.sort compare (List.map snd first_uses))

(* [?limit] boundary behaviour: the notice names exactly how many deliveries
   were cut, and disappears once the limit covers the whole trace. *)
let test_trace_render_limit () =
  let g = F.path 3 in
  let tr = Runtime.Trace.create () in
  let _ = Hops_engine.run ~on_deliver:(Runtime.Trace.hook tr) g in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let short = Runtime.Trace.render ~limit:1 tr in
  Alcotest.(check bool) "notice counts the omitted deliveries" true
    (contains short "... (3 more deliveries)");
  Alcotest.(check bool) "limit = length: no notice" false
    (contains (Runtime.Trace.render ~limit:4 tr) "more deliveries");
  Alcotest.(check bool) "limit > length: no notice" false
    (contains (Runtime.Trace.render ~limit:100 tr) "more deliveries");
  Alcotest.(check int) "limit 0 is just the notice" 1
    (List.length
       (String.split_on_char '\n' (String.trim (Runtime.Trace.render ~limit:0 tr))))

(* Scheduler behaviour: every scheduler must deliver everything on a DAG —
   the flood reaches all vertices regardless of order. *)
let schedulers () =
  [
    ("fifo", Runtime.Scheduler.Fifo);
    ("lifo", Runtime.Scheduler.Lifo);
    ("random-1", Runtime.Scheduler.Random (Prng.create 1));
    ("random-2", Runtime.Scheduler.Random (Prng.create 99));
    ("prio-reverse", Runtime.Scheduler.Edge_priority (fun e -> -e));
    ("prio-forward", Runtime.Scheduler.Edge_priority (fun e -> e));
  ]

let test_schedulers_all_deliver () =
  let g = F.grid_dag ~rows:3 ~cols:4 in
  List.iter
    (fun (name, sch) ->
      let r = Flood_engine.run ~scheduler:sch g in
      Alcotest.(check bool) (name ^ " visits all") true
        (Array.for_all (fun v -> v) r.visited);
      Alcotest.(check int) (name ^ " delivers all floods") (G.n_edges g) r.deliveries)
    (schedulers ())

let test_scheduler_describe () =
  List.iter
    (fun (name, sch) ->
      let d = Runtime.Scheduler.describe sch in
      Alcotest.(check bool) (name ^ " described") true (String.length d > 0))
    (schedulers ())

(* {1 Binheap (the Edge_priority pool and the fault-delay queue)} *)

let prop_binheap_order =
  qcheck_to_alcotest ~count:300 "heap-order under randomized push/pop"
    QCheck.(list (pair (pair small_int small_int) bool))
    (fun ops ->
      (* Model: a sorted list of keys.  [bool] selects push vs pop; pops on
         the empty heap must return None. *)
      let h = Runtime.Binheap.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (key, is_pop) ->
          if is_pop then begin
            match (Runtime.Binheap.pop h, !model) with
            | None, [] -> ()
            | Some (k, v), m :: rest ->
                if k <> m || v <> snd k then ok := false;
                model := rest
            | Some _, [] | None, _ :: _ -> ok := false
          end
          else begin
            Runtime.Binheap.push h key (snd key);
            model := List.sort compare (key :: !model)
          end;
          if Runtime.Binheap.length h <> List.length !model then ok := false)
        ops;
      (* Drain what's left: must come out in sorted order. *)
      let rec drain acc =
        match Runtime.Binheap.pop h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      !ok && drain [] = !model)

let test_binheap_ties_fifo_by_seq () =
  (* Equal priorities fall back to the sequence number, exactly what the
     Edge_priority scheduler relies on for stable tie-breaks. *)
  let h = Runtime.Binheap.create () in
  List.iter (fun seq -> Runtime.Binheap.push h (0, seq) seq) [ 3; 1; 2; 0 ];
  let order =
    List.init 4 (fun _ ->
        match Runtime.Binheap.pop h with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "fifo among ties" [ 0; 1; 2; 3 ] order

(* Fully duplicate keys (not just equal priorities): every copy must survive
   sift-up/sift-down and pop out with a nondecreasing key stream. *)
let test_binheap_duplicate_keys () =
  let h = Runtime.Binheap.create () in
  let pushes = [ (5, 'a'); (1, 'b'); (5, 'c'); (1, 'd'); (5, 'e'); (1, 'f') ] in
  List.iter (fun (k, v) -> Runtime.Binheap.push h k v) pushes;
  Alcotest.(check int) "all copies stored" 6 (Runtime.Binheap.length h);
  let rec drain acc =
    match Runtime.Binheap.pop h with
    | None -> List.rev acc
    | Some kv -> drain (kv :: acc)
  in
  let out = drain [] in
  Alcotest.(check (list int)) "keys nondecreasing, duplicates intact"
    [ 1; 1; 1; 5; 5; 5 ] (List.map fst out);
  Alcotest.(check (list char)) "no value lost or duplicated"
    [ 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ]
    (List.sort compare (List.map snd out))

(* {1 Trace.edge_first_use} *)

let test_edge_first_use () =
  let g = F.grid_dag ~rows:3 ~cols:3 in
  let tr = Runtime.Trace.create () in
  let _ = Flood_engine.run ~scheduler:Runtime.Scheduler.Lifo ~on_deliver:(Runtime.Trace.hook tr) g in
  let first_uses = Runtime.Trace.edge_first_use tr in
  let events = Runtime.Trace.events tr in
  (* Every traced edge appears exactly once... *)
  let keys = List.map fst first_uses in
  Alcotest.(check int) "no duplicate edges" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun (ev : E.event) ->
      Alcotest.(check bool) "every used edge listed" true
        (List.mem_assoc (ev.from_vertex, ev.from_port) first_uses))
    events;
  (* ...with the step of its earliest delivery... *)
  List.iter
    (fun ((fv, fp), step) ->
      let min_step =
        List.fold_left
          (fun acc (ev : E.event) ->
            if ev.from_vertex = fv && ev.from_port = fp then min acc ev.step
            else acc)
          max_int events
      in
      Alcotest.(check int)
        (Printf.sprintf "first use of %d.%d" fv fp)
        min_step step)
    first_uses;
  (* ...in first-use order. *)
  Alcotest.(check bool) "steps increasing" true
    (List.map snd first_uses = List.sort compare (List.map snd first_uses))

(* Cooperative cancellation: the hook is polled once per message boundary,
   a [true] ends the run as [Cancelled] with the accounting intact — the
   copies never delivered are all in [final_in_flight] and each reaches
   [on_undelivered] exactly once. *)
let test_cancelled_outcome () =
  let g = F.grid_dag ~rows:4 ~cols:4 in
  let polls = ref 0 in
  let stop () =
    incr polls;
    !polls > 3
  in
  let undelivered = ref 0 in
  let r = Hops_engine.run ~stop ~on_undelivered:(fun _ -> incr undelivered) g in
  Alcotest.check outcome "cancelled" E.Cancelled r.outcome;
  Alcotest.(check int) "three deliveries happened first" 3 r.deliveries;
  Alcotest.(check bool) "messages were in flight" true (r.final_in_flight > 0);
  Alcotest.(check int) "every leftover surfaced" r.final_in_flight !undelivered

let test_stop_never_true_is_free () =
  let g = F.comb 5 in
  let plain = Flood_engine.run g in
  let r = Flood_engine.run ~stop:(fun () -> false) g in
  Alcotest.check outcome "same outcome" plain.outcome r.outcome;
  Alcotest.(check int) "same deliveries" plain.deliveries r.deliveries;
  Alcotest.(check int) "same bits" plain.total_bits r.total_bits

let prop_flood_visits_all_digraphs =
  qcheck_to_alcotest ~count:80 "flood visits every vertex of any network"
    arb_digraph (fun g ->
      let r = Flood_engine.run g in
      Array.for_all (fun v -> v) r.visited)

let prop_scheduler_invariant_visits =
  qcheck_to_alcotest ~count:50 "visited set is schedule-independent" arb_digraph
    (fun g ->
      let runs =
        List.map (fun (_, sch) -> (Flood_engine.run ~scheduler:sch g).visited)
          (schedulers ())
      in
      match runs with
      | first :: rest -> List.for_all (fun v -> v = first) rest
      | [] -> true)

let () =
  Alcotest.run "runtime"
    [
      ( "engine",
        [
          Alcotest.test_case "flood visits everything" `Quick
            test_flood_visits_everything;
          Alcotest.test_case "one message per tree edge" `Quick
            test_flood_one_message_per_edge_on_tree;
          Alcotest.test_case "hop counts" `Quick test_hop_counts_on_path;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
          Alcotest.test_case "payload bits" `Quick test_payload_bits_charged;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "trace hook" `Quick test_trace_hook;
          Alcotest.test_case "in-flight high water" `Quick test_in_flight_highwater;
          Alcotest.test_case "trace render" `Quick test_trace_render;
          Alcotest.test_case "trace render limit" `Quick test_trace_render_limit;
          Alcotest.test_case "cancelled outcome" `Quick test_cancelled_outcome;
          Alcotest.test_case "inert stop hook" `Quick test_stop_never_true_is_free;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "all deliver" `Quick test_schedulers_all_deliver;
          Alcotest.test_case "describe" `Quick test_scheduler_describe;
          prop_flood_visits_all_digraphs;
          prop_scheduler_invariant_visits;
        ] );
      ( "binheap",
        [
          prop_binheap_order;
          Alcotest.test_case "ties break by seq" `Quick test_binheap_ties_fifo_by_seq;
          Alcotest.test_case "duplicate keys" `Quick test_binheap_duplicate_keys;
        ] );
      ( "trace",
        [ Alcotest.test_case "edge_first_use" `Quick test_edge_first_use ] );
    ]
