(* The edge-churn adversary: instance fate semantics, T-interval
   constrain/contract, engine integration (zero overhead, obs
   reconciliation, supervisor healing), sequential-vs-sharded parity,
   replay determinism under combined churn + vertex faults, the dynamic
   protocols (amnesiac flooding, counting) and the chaos churn controls. *)

open Helpers
module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module C = Runtime.Churn
module V = Runtime.Vfaults
module S = Runtime.Scheduler
module Ch = Runtime.Chaos

let fate =
  let pp fmt (f : C.fate) =
    Format.pp_print_string fmt
      (match f with
      | C.Cross -> "cross"
      | C.Removed n -> Printf.sprintf "removed(%d)" n
      | C.Down -> "down"
      | C.Back `Add -> "back-add"
      | C.Back `Heal -> "back-heal")
  in
  Alcotest.testable pp ( = )

(* {1 Instance fate semantics} *)

let test_script_remove_and_add_clocks () =
  let spec =
    C.script
      [ C.remove_event ~edge:0 ~at:2 ~down_for:2 (); C.add_event ~edge:1 ~at:3 ]
  in
  let i = C.Instance.start spec in
  let offer e = C.Instance.on_offer i ~edge:e in
  (* Edge 0: up, removed on the 2nd offer, two swallowed, back up. *)
  Alcotest.check fate "1st crosses" C.Cross (offer 0);
  Alcotest.check fate "2nd removed" (C.Removed 2) (offer 0);
  Alcotest.(check bool) "down while draining" false (C.Instance.is_up i ~edge:0);
  Alcotest.check fate "3rd swallowed" C.Down (offer 0);
  Alcotest.check fate "4th swallowed, heals" (C.Back `Heal) (offer 0);
  Alcotest.(check bool) "back up" true (C.Instance.is_up i ~edge:0);
  Alcotest.check fate "5th crosses again" C.Cross (offer 0);
  (* Edge 1: absent from the start, appears at its 3rd offer. *)
  Alcotest.check fate "absent: 1st swallowed" C.Down (offer 1);
  Alcotest.check fate "absent: 2nd swallowed, appears" (C.Back `Add) (offer 1);
  Alcotest.check fate "3rd delivers" C.Cross (offer 1);
  (* An unscripted edge is untouched. *)
  Alcotest.check fate "edge 2 healthy" C.Cross (offer 2);
  Alcotest.(check int) "one add" 1 (C.Instance.adds i);
  Alcotest.(check int) "one remove" 1 (C.Instance.removes i);
  Alcotest.(check int) "one heal" 1 (C.Instance.heals i);
  Alcotest.(check int) "five copies lost" 5 (C.Instance.lost i);
  Alcotest.(check int) "no contract, no violations" 0
    (C.Instance.window_violations i)

let test_add_at_one_degenerates_to_present () =
  let i = C.Instance.start (C.script [ C.add_event ~edge:4 ~at:1 ]) in
  Alcotest.check fate "present from the first offer" C.Cross
    (C.Instance.on_offer i ~edge:4);
  Alcotest.(check int) "still counted as an add" 1 (C.Instance.adds i);
  Alcotest.(check int) "nothing lost" 0 (C.Instance.lost i)

let test_stale_removal_head_fires_on_next_offer () =
  (* Two removals with the same [at]: the second's clock position is
     consumed by the first's outage, so it must fire on the next up
     offer rather than jam the queue. *)
  let spec =
    C.script
      [
        C.remove_event ~edge:0 ~at:1 ~down_for:0 ();
        C.remove_event ~edge:0 ~at:1 ~down_for:0 ();
      ]
  in
  let i = C.Instance.start spec in
  Alcotest.check fate "first removal" (C.Removed 0) (C.Instance.on_offer i ~edge:0);
  Alcotest.check fate "stale second fires next" (C.Removed 0)
    (C.Instance.on_offer i ~edge:0);
  Alcotest.check fate "then quiet" C.Cross (C.Instance.on_offer i ~edge:0);
  Alcotest.(check int) "two removes" 2 (C.Instance.removes i);
  Alcotest.(check int) "both healed immediately" 2 (C.Instance.heals i)

let test_uniform_plan_is_seed_deterministic () =
  let fates seed =
    let i = C.Instance.start (C.uniform (C.plan ~remove:0.4 ~max_downtime:2 ()) ~seed) in
    List.init 40 (fun k -> C.Instance.on_offer i ~edge:(k mod 5))
  in
  Alcotest.(check bool) "same seed, same fates" true (fates 7 = fates 7);
  Alcotest.(check bool) "different seed, different fates" true
    (fates 7 <> fates 8)

(* {1 T-interval connectivity} *)

(* s has two parallel edges to the middle vertex; only the first is in the
   BFS arborescence (and it doubles as s's shortest step toward t), so the
   second parallel edge is the one unprotected edge. *)
let parallel_pair () = G.make ~n:3 ~s:0 ~t:2 [ (0, 1); (0, 1); (1, 2) ]

let test_skeleton_protects_spanning_subgraph () =
  let g = parallel_pair () in
  let prot = C.skeleton g in
  Alcotest.(check bool) "tree edge protected" true
    prot.(G.edge_index g 0 0);
  Alcotest.(check bool) "parallel spare unprotected" false
    prot.(G.edge_index g 0 1);
  Alcotest.(check bool) "edge toward t protected" true
    prot.(G.edge_index g 1 0)

let test_constrain_caps_outages_and_drops_protected () =
  let g = parallel_pair () in
  let spare = G.edge_index g 0 1 in
  let tree = G.edge_index g 0 0 in
  (* T = 1 permits no churn at all. *)
  let spec = C.script [ C.remove_event ~edge:spare ~at:1 ~down_for:5 () ] in
  Alcotest.(check bool) "T=1 collapses to none" true
    (C.is_none (C.constrain ~t_interval:1 g spec));
  (* A protected-edge removal is dropped entirely. *)
  Alcotest.(check bool) "protected removal dropped" true
    (C.is_none
       (C.constrain ~t_interval:4 g
          (C.script [ C.remove_event ~edge:tree ~at:1 ~down_for:1 () ])));
  (* An unprotected outage is clamped below the window: down_for 5 with
     T = 3 becomes down_for 1 (outage spans 2 < 3 offers), and the clamped
     instance records zero violations by construction. *)
  let clamped = C.constrain ~t_interval:3 g spec in
  let i = C.Instance.start clamped in
  Alcotest.check fate "removal still fires" (C.Removed 1)
    (C.Instance.on_offer i ~edge:spare);
  Alcotest.check fate "heals one offer later" (C.Back `Heal)
    (C.Instance.on_offer i ~edge:spare);
  Alcotest.check fate "up again" C.Cross (C.Instance.on_offer i ~edge:spare);
  Alcotest.(check int) "constrained => zero violations" 0
    (C.Instance.window_violations i)

let test_contract_counts_but_never_changes_fates () =
  let g = parallel_pair () in
  let spare = G.edge_index g 0 1 in
  let tree = G.edge_index g 0 0 in
  let spec =
    C.script
      [
        C.remove_event ~edge:spare ~at:1 ~down_for:5 ();
        C.remove_event ~edge:tree ~at:2 ~down_for:0 ();
      ]
  in
  let run spec =
    let i = C.Instance.start spec in
    let fates =
      List.concat_map
        (fun e -> List.init 8 (fun _ -> C.Instance.on_offer i ~edge:e))
        [ spare; tree ]
    in
    (fates, C.Instance.window_violations i)
  in
  let raw_fates, raw_violations = run spec in
  let con_fates, con_violations = run (C.with_contract ~t_interval:3 g spec) in
  Alcotest.(check bool) "fates byte-identical under contract" true
    (raw_fates = con_fates);
  Alcotest.(check int) "raw spec counts nothing" 0 raw_violations;
  (* Two breaches: the long outage (6 >= 3 offers) and the protected-edge
     removal, each charged once at outage start. *)
  Alcotest.(check int) "contract counts both breaches" 2 con_violations

(* {1 Engine integration} *)

(* On a path every vertex has exactly one in-edge, so a bounded outage on
   the only copy's edge starves the bare run; the supervisor's
   retransmission rounds burn down the outage and push the heal through. *)
let test_supervisor_heals_scripted_outage_on_path () =
  let g = F.path 5 in
  let churn =
    C.script [ C.remove_event ~edge:(G.edge_index g 1 0) ~at:1 ~down_for:1 () ]
  in
  let bare = Anonet.Tree_engine.run ~churn g in
  Alcotest.(check bool) "bare run does not terminate" true
    (bare.E.outcome <> E.Terminated);
  Alcotest.(check int) "the only copy was lost" 1
    bare.E.churn_stats.E.messages_lost_in_flight;
  let r = Anonet.Tree_engine.run ~churn ~supervisor:Runtime.Supervisor.default g in
  if r.E.outcome <> E.Terminated then
    Alcotest.fail ("supervised run should terminate: " ^ report_summary r);
  Alcotest.(check bool) "all visited" true (Array.for_all Fun.id r.E.visited);
  Alcotest.(check int) "one removal" 1 r.E.churn_stats.E.removes;
  Alcotest.(check int) "healed under retransmission" 1 r.E.churn_stats.E.heals;
  Alcotest.(check bool) "retransmissions happened" true
    (r.E.vfault_stats.E.replayed > 0)

let test_churn_free_runs_have_zero_overhead () =
  for seed = 1 to 8 do
    let g =
      F.random_digraph (Prng.create seed) ~n:14 ~extra_edges:8 ~back_edges:3
        ~t_edge_prob:0.25
    in
    let bare = Anonet.General_engine.run g in
    let churned = Anonet.General_engine.run ~churn:C.none g in
    Alcotest.check outcome "same outcome" bare.E.outcome churned.E.outcome;
    Alcotest.(check int) "identical deliveries" bare.E.deliveries
      churned.E.deliveries;
    Alcotest.(check int) "identical bits" bare.E.total_bits
      churned.E.total_bits;
    Alcotest.(check bool) "same coverage" true
      (bare.E.visited = churned.E.visited);
    Alcotest.(check bool) "all-zero churn stats" true
      (churned.E.churn_stats = E.no_churn_stats);
    (* The all-stable plan collapses to [none] before the engine sees it. *)
    Alcotest.(check bool) "stable plan is none" true
      (C.is_none (C.uniform C.stable ~seed))
  done

let test_obs_counters_reconcile_exactly () =
  for seed = 1 to 6 do
    let g =
      F.random_digraph (Prng.create seed) ~n:16 ~extra_edges:10 ~back_edges:4
        ~t_edge_prob:0.25
    in
    let churn =
      C.with_contract ~t_interval:3 g
        (C.uniform (C.plan ~remove:0.3 ~max_downtime:3 ()) ~seed)
    in
    let obs = Obs.create () in
    let r =
      Anonet.General_engine.run ~churn ~supervisor:Runtime.Supervisor.default
        ~obs g
    in
    let c name = Obs.Registry.(value (counter obs.Obs.registry name)) in
    let cs = r.E.churn_stats in
    Alcotest.(check int) "adds" cs.E.adds (c "engine.churn.adds");
    Alcotest.(check int) "removes" cs.E.removes (c "engine.churn.removes");
    Alcotest.(check int) "heals" cs.E.heals (c "engine.churn.heals");
    Alcotest.(check int) "lost in flight" cs.E.messages_lost_in_flight
      (c "engine.churn.lost_in_flight");
    Alcotest.(check int) "window violations" cs.E.window_violations
      (c "engine.churn.window_violations");
    Alcotest.(check bool) "churn actually fired" true (cs.E.removes > 0);
    Alcotest.(check bool) "every outage lost a copy" true
      (cs.E.messages_lost_in_flight >= cs.E.removes);
    Alcotest.(check bool) "heals never exceed removes" true
      (cs.E.heals <= cs.E.removes)
  done

(* {1 Sequential vs sharded parity} *)

(* Churn clocks are edge-local and every offer on an edge is made by the
   shard owning its target vertex, so the sharded engine's fates — and
   therefore the whole churn ledger — must match the sequential engine. *)
let test_sharded_churn_parity () =
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  for seed = 1 to 8 do
    let g =
      F.random_digraph (Prng.create seed) ~n:20 ~extra_edges:12 ~back_edges:4
        ~t_edge_prob:0.25
    in
    let churn =
      C.with_contract ~t_interval:3 g
        (C.uniform (C.plan ~remove:0.25 ~max_downtime:2 ()) ~seed)
    in
    let s = Anonet.Flood_engine.run ~churn g in
    List.iter
      (fun domains ->
        let p = Pn.run ~domains ~churn g in
        let tag name = Printf.sprintf "%s (domains=%d)" name domains in
        Alcotest.(check int) (tag "same adds") s.E.churn_stats.E.adds
          p.E.churn_stats.E.adds;
        Alcotest.(check int) (tag "same removes") s.E.churn_stats.E.removes
          p.E.churn_stats.E.removes;
        Alcotest.(check int) (tag "same heals") s.E.churn_stats.E.heals
          p.E.churn_stats.E.heals;
        Alcotest.(check int) (tag "same lost")
          s.E.churn_stats.E.messages_lost_in_flight
          p.E.churn_stats.E.messages_lost_in_flight;
        Alcotest.(check int) (tag "same violations")
          s.E.churn_stats.E.window_violations
          p.E.churn_stats.E.window_violations;
        Alcotest.(check bool) (tag "same coverage") true
          (s.E.visited = p.E.visited);
        Alcotest.(check int) (tag "same deliveries") s.E.deliveries
          p.E.deliveries)
      [ 1; 2; 4 ]
  done

let test_sharded_obs_churn_counters_reconcile () =
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  let g =
    F.random_digraph (Prng.create 3) ~n:20 ~extra_edges:12 ~back_edges:4
      ~t_edge_prob:0.25
  in
  let churn = C.uniform (C.plan ~remove:0.3 ~max_downtime:2 ()) ~seed:3 in
  let obs = Obs.create () in
  let p = Pn.run ~domains:4 ~churn ~obs g in
  let c name = Obs.Registry.(avalue (acounter obs.Obs.registry name)) in
  Alcotest.(check int) "adds" p.E.churn_stats.E.adds (c "engine.churn.adds");
  Alcotest.(check int) "removes" p.E.churn_stats.E.removes
    (c "engine.churn.removes");
  Alcotest.(check int) "heals" p.E.churn_stats.E.heals (c "engine.churn.heals");
  Alcotest.(check int) "lost" p.E.churn_stats.E.messages_lost_in_flight
    (c "engine.churn.lost_in_flight");
  Alcotest.(check bool) "churn actually fired" true
    (p.E.churn_stats.E.removes > 0)

(* {1 Replay determinism under churn + vertex faults} *)

let check_replay_reproduces ~supervisor g =
  let runner =
    Anonet.Resilient.chaos_runner ~k:3 (module Anonet.General_broadcast)
  in
  let churn = C.uniform (C.plan ~remove:0.2 ~max_downtime:2 ()) ~seed:7 in
  let vfaults =
    V.uniform (V.plan ~crash:0.08 ~max_downtime:2 ~stutter:0.05 ()) ~seed:6
  in
  let faults = Runtime.Faults.none in
  let orig =
    runner.Ch.run ~scheduler:S.Fifo ~record:true ~faults ~vfaults ~churn
      ~supervisor ~step_limit:200_000 g
  in
  Alcotest.(check bool) "schedule recorded" true (orig.Ch.schedule <> []);
  let replayed =
    runner.Ch.run
      ~scheduler:(S.Replay orig.Ch.schedule)
      ~record:false ~faults ~vfaults ~churn ~supervisor ~step_limit:200_000 g
  in
  Alcotest.check outcome "same outcome" orig.Ch.outcome replayed.Ch.outcome;
  Alcotest.(check int) "same deliveries" orig.Ch.deliveries
    replayed.Ch.deliveries;
  Alcotest.(check int) "same bits" orig.Ch.total_bits replayed.Ch.total_bits;
  Alcotest.(check bool) "same coverage" true
    (orig.Ch.visited = replayed.Ch.visited);
  Alcotest.(check bool) "same churn stats" true
    (orig.Ch.churn_stats = replayed.Ch.churn_stats);
  Alcotest.(check bool) "same vfault stats" true
    (orig.Ch.vfault_stats = replayed.Ch.vfault_stats)

let test_replay_reproduces_churny_run () =
  for seed = 1 to 6 do
    let g =
      F.random_digraph (Prng.create seed) ~n:14 ~extra_edges:8 ~back_edges:3
        ~t_edge_prob:0.25
    in
    check_replay_reproduces ~supervisor:None g;
    check_replay_reproduces ~supervisor:(Some Runtime.Supervisor.default) g
  done

(* {1 Dynamic scenarios} *)

let test_random_dynamic_round_trips_through_of_dynamic () =
  for seed = 1 to 6 do
    let g, events =
      F.random_dynamic (Prng.create seed) ~n:14 ~extra_edges:6 ~back_edges:2
        ~t_edge_prob:0.3 ()
    in
    Alcotest.(check bool) "valid graph" true
      (Result.is_ok (G.validate ~allow_multi_root:true g));
    Alcotest.(check bool) "events in range" true
      (List.for_all
         (fun (d : F.dyn_event) ->
           d.F.de_edge >= 0 && d.F.de_edge < G.n_edges g && d.F.de_at >= 1)
         events);
    let churn = C.of_dynamic events in
    Alcotest.(check bool) "script armed" (events <> []) (not (C.is_none churn));
    (* The compiled script drives the engine without incident, and the
       engine's ledger can only report what the script contains. *)
    let r =
      Anonet.Flood_engine.run ~churn ~supervisor:Runtime.Supervisor.default g
    in
    let n_adds =
      List.length (List.filter (fun d -> d.F.de_down_for = None) events)
    in
    Alcotest.(check bool) "adds bounded by script" true
      (r.E.churn_stats.E.adds <= n_adds)
  done

(* Amnesiac flooding is stateless: it quiesces on DAGs but a single cycle
   edge — present from the start or churned in — makes tokens circulate
   forever (Austin et al.). *)
let test_amnesiac_quiesces_on_dag_livelocks_on_cycle () =
  let dag = Anonet.Amnesiac_engine.run (F.grid_dag ~rows:2 ~cols:3) in
  Alcotest.(check bool) "quiesces on a DAG" true
    (dag.E.outcome <> E.Step_limit);
  Alcotest.(check bool) "covers the DAG" true
    (Array.for_all Fun.id dag.E.visited);
  let cyc =
    Anonet.Amnesiac_engine.run ~step_limit:5_000 (F.cycle_with_exit ~k:3)
  in
  Alcotest.check outcome "livelocks on a cycle" E.Step_limit cyc.E.outcome

let test_amnesiac_livelock_needs_the_churned_in_edge () =
  (* Path 0->1->2->3 plus a back edge 2->1 that starts absent.  If it is
     churned in on its first offer the cycle closes and tokens circulate
     forever; if its add point is never reached the single pass of traffic
     stays finite and the run quiesces. *)
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 2); (2, 3); (2, 1) ] in
  let back = G.edge_index g 2 1 in
  let live =
    Anonet.Amnesiac_engine.run ~step_limit:5_000
      ~churn:(C.script [ C.add_event ~edge:back ~at:1 ]) g
  in
  Alcotest.check outcome "churned-in edge closes the cycle" E.Step_limit
    live.E.outcome;
  let quiet =
    Anonet.Amnesiac_engine.run ~step_limit:5_000
      ~churn:(C.script [ C.add_event ~edge:back ~at:50 ]) g
  in
  Alcotest.(check bool) "edge that never appears stays harmless" true
    (quiet.E.outcome <> E.Step_limit)

let test_counting_census_is_exact () =
  let graphs =
    [
      ("path:4", F.path 4);
      ("full-tree:2x2", F.full_tree ~height:2 ~degree:2);
      ("diamond", F.diamond ());
      ("grid:3x3", F.grid_dag ~rows:3 ~cols:3);
    ]
    @ List.init 4 (fun k ->
          let seed = k + 1 in
          ( Printf.sprintf "random-dag:%d" seed,
            F.random_dag (Prng.create seed) ~n:12 ~extra_edges:6
              ~t_edge_prob:0.3 ))
  in
  List.iter
    (fun (name, g) ->
      let r = Anonet.Counting_engine.run g in
      Alcotest.check outcome (name ^ " terminates") E.Terminated r.E.outcome;
      Alcotest.(check int)
        (name ^ " counts every vertex")
        (G.n_vertices g)
        (Anonet.Counting.census r.E.states.(G.terminal g)))
    graphs

let test_counting_survives_supervised_outage () =
  let g = F.path 5 in
  let churn =
    C.script [ C.remove_event ~edge:(G.edge_index g 2 0) ~at:1 ~down_for:2 () ]
  in
  let r =
    Anonet.Counting_engine.run ~churn ~supervisor:Runtime.Supervisor.default g
  in
  Alcotest.check outcome "terminates through the outage" E.Terminated
    r.E.outcome;
  Alcotest.(check int) "census still exact" (G.n_vertices g)
    (Anonet.Counting.census r.E.states.(G.terminal g));
  Alcotest.(check int) "outage healed" 1 r.E.churn_stats.E.heals

(* {1 Chaos controls} *)

let test_chaos_churn_control_never_unsound () =
  let res = Anonet.Check_suite.chaos_churn ~budget:15 () in
  Alcotest.(check int) "zero soundness violations" 0 res.Ch.unsound;
  Alcotest.(check bool) "search actually ran" true (res.Ch.trials_run >= 45)

let test_chaos_amnesiac_finds_replayable_livelock () =
  let res = Anonet.Check_suite.chaos_amnesiac () in
  Alcotest.(check bool) "found witnesses" true (res.Ch.witnesses <> []);
  Alcotest.(check int) "never falsely terminates" 0 res.Ch.unsound;
  Alcotest.(check bool) "livelock witnessed" true (res.Ch.livelocked > 0);
  let cfg =
    Ch.config ~budget:12 ~seed:11 ~p_churn:1.0 ~max_faults:1
      ~step_limit:10_000 ()
  in
  let runner =
    Anonet.Resilient.chaos_runner ~k:1 (module Anonet.Amnesiac_flood)
  in
  List.iter
    (fun w ->
      Alcotest.(check bool) "livelock leaves nobody missing" true
        (w.Ch.w_kind <> Ch.Livelock || w.Ch.w_missing = []);
      let gc =
        { Runtime.Campaign.g_name = w.Ch.w_graph;
          build =
            (fun ~seed ->
              fst
                (F.random_dynamic (Prng.create seed) ~n:12 ~extra_edges:6
                   ~back_edges:2 ~t_edge_prob:0.3 ()));
        }
      in
      let s = Ch.replay cfg runner gc w in
      Alcotest.(check bool)
        ("witness replays on " ^ w.Ch.w_graph)
        true (Ch.confirms w s))
    res.Ch.witnesses

let () =
  Alcotest.run "churn"
    [
      ( "instance",
        [
          Alcotest.test_case "scripted remove + add clocks" `Quick
            test_script_remove_and_add_clocks;
          Alcotest.test_case "add at 1 degenerates to present" `Quick
            test_add_at_one_degenerates_to_present;
          Alcotest.test_case "stale removal head fires next" `Quick
            test_stale_removal_head_fires_on_next_offer;
          Alcotest.test_case "uniform plan seed-deterministic" `Quick
            test_uniform_plan_is_seed_deterministic;
        ] );
      ( "t-interval",
        [
          Alcotest.test_case "skeleton protects spanning subgraph" `Quick
            test_skeleton_protects_spanning_subgraph;
          Alcotest.test_case "constrain caps outages, drops protected" `Quick
            test_constrain_caps_outages_and_drops_protected;
          Alcotest.test_case "contract counts, never changes fates" `Quick
            test_contract_counts_but_never_changes_fates;
        ] );
      ( "engine",
        [
          Alcotest.test_case "supervisor heals scripted outage" `Quick
            test_supervisor_heals_scripted_outage_on_path;
          Alcotest.test_case "churn-free runs have zero overhead" `Quick
            test_churn_free_runs_have_zero_overhead;
          Alcotest.test_case "obs counters reconcile exactly" `Quick
            test_obs_counters_reconcile_exactly;
        ] );
      ( "par",
        [
          Alcotest.test_case "sequential vs sharded parity" `Quick
            test_sharded_churn_parity;
          Alcotest.test_case "sharded obs counters reconcile" `Quick
            test_sharded_obs_churn_counters_reconcile;
        ] );
      ( "replay",
        [
          Alcotest.test_case "churny run replays byte-for-byte" `Quick
            test_replay_reproduces_churny_run;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "random_dynamic round-trips" `Quick
            test_random_dynamic_round_trips_through_of_dynamic;
          Alcotest.test_case "amnesiac: DAG quiesces, cycle livelocks" `Quick
            test_amnesiac_quiesces_on_dag_livelocks_on_cycle;
          Alcotest.test_case "amnesiac: livelock needs the churned-in edge"
            `Quick test_amnesiac_livelock_needs_the_churned_in_edge;
          Alcotest.test_case "counting census exact" `Quick
            test_counting_census_is_exact;
          Alcotest.test_case "counting survives supervised outage" `Quick
            test_counting_survives_supervised_outage;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "churn control never unsound" `Quick
            test_chaos_churn_control_never_unsound;
          Alcotest.test_case "amnesiac control finds replayable livelock"
            `Quick test_chaos_amnesiac_finds_replayable_livelock;
        ] );
    ]
