(* The chaos search: joint edge x vertex fault-space exploration, witness
   shrinking and dedup, schedule replay, and the Check_suite controls. *)

open Helpers
module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Fl = Runtime.Faults
module V = Runtime.Vfaults
module Ch = Runtime.Chaos
module S = Runtime.Scheduler

(* {1 Fault-set plumbing} *)

let test_canonical_key_order_insensitive () =
  let a = Ch.Kill_edge 3 in
  let b = Ch.Crash_vertex (V.event ~vertex:2 ~at:1 ()) in
  let c = Ch.Crash_vertex (V.event ~vertex:5 ~at:2 ~recovery:V.Stop ()) in
  Alcotest.(check string) "permutation invariant"
    (Ch.canonical_key [ a; b; c ])
    (Ch.canonical_key [ c; a; b ]);
  Alcotest.(check bool) "different sets differ" true
    (Ch.canonical_key [ a; b ] <> Ch.canonical_key [ a; c ])

let test_required_excuses_stopped_and_cut () =
  let g = F.path 4 in
  (* 0 -> 1 -> 2 -> 3.  Killing edge (1,2) cuts 2 and 3 off. *)
  let kill12 = Ch.Kill_edge (G.edge_index g 1 0) in
  let req = Ch.required g [ kill12 ] in
  Alcotest.(check bool) "vertex 1 still required" true req.(1);
  Alcotest.(check bool) "vertex 2 excused (unreachable)" false req.(2);
  Alcotest.(check bool) "vertex 3 excused (unreachable)" false req.(3);
  (* A crash-stopped vertex is excused and does not forward. *)
  let stop1 = Ch.Crash_vertex (V.event ~vertex:1 ~at:1 ~recovery:V.Stop ()) in
  let req = Ch.required g [ stop1 ] in
  Alcotest.(check bool) "stopped vertex excused" false req.(1);
  Alcotest.(check bool) "its subtree excused too" false req.(2);
  (* A restarting crash excuses nothing. *)
  let req = Ch.required g [ Ch.Crash_vertex (V.event ~vertex:1 ~at:1 ()) ] in
  Alcotest.(check bool) "amnesiac vertex still required" true req.(1);
  Alcotest.(check bool) "downstream still required" true req.(3)

let test_compile_round_trip () =
  let faults, vfaults, churn =
    Ch.compile
      [
        Ch.Kill_edge 0;
        Ch.Crash_vertex (V.event ~vertex:1 ~at:1 ());
        Ch.Churn_edge (Runtime.Churn.remove_event ~edge:2 ~at:1 ());
      ]
  in
  Alcotest.(check bool) "edge plan armed" false (Fl.is_none faults);
  Alcotest.(check bool) "vertex plan armed" false (V.is_none vfaults);
  Alcotest.(check bool) "churn script armed" false
    (Runtime.Churn.is_none churn);
  let nf, nv, nc = Ch.compile [] in
  Alcotest.(check bool) "empty set compiles to none" true
    (Fl.is_none nf && V.is_none nv && Runtime.Churn.is_none nc)

(* {1 Replay determinism under faults} *)

(* The engine records every consumed copy's seq; replaying that schedule
   with the same fault plans must reproduce the report byte-for-byte. *)
let check_replay_reproduces ~supervisor g =
  let runner = Anonet.Resilient.chaos_runner ~k:3 (module Anonet.General_broadcast) in
  let faults = Fl.create ~drop:0.15 ~duplicate:0.1 ~max_delay:2 ~corrupt:0.1 ~seed:5 () in
  let vfaults =
    V.uniform (V.plan ~crash:0.1 ~max_downtime:2 ~stutter:0.05 ()) ~seed:6
  in
  let orig =
    runner.Ch.run ~scheduler:S.Fifo ~record:true ~faults ~vfaults
      ~churn:Runtime.Churn.none ~supervisor ~step_limit:200_000 g
  in
  Alcotest.(check bool) "schedule recorded" true (orig.Ch.schedule <> []);
  let replayed =
    runner.Ch.run
      ~scheduler:(S.Replay orig.Ch.schedule)
      ~record:false ~faults ~vfaults ~churn:Runtime.Churn.none ~supervisor
      ~step_limit:200_000 g
  in
  Alcotest.check outcome "same outcome" orig.Ch.outcome replayed.Ch.outcome;
  Alcotest.(check int) "same deliveries" orig.Ch.deliveries
    replayed.Ch.deliveries;
  Alcotest.(check int) "same bits" orig.Ch.total_bits replayed.Ch.total_bits;
  Alcotest.(check bool) "same coverage" true
    (orig.Ch.visited = replayed.Ch.visited);
  Alcotest.(check bool) "same fault stats" true
    (orig.Ch.fault_stats = replayed.Ch.fault_stats);
  Alcotest.(check bool) "same vfault stats" true
    (orig.Ch.vfault_stats = replayed.Ch.vfault_stats)

let test_replay_reproduces_faulty_run () =
  for seed = 1 to 6 do
    let g =
      F.random_digraph (Prng.create seed) ~n:14 ~extra_edges:8 ~back_edges:3
        ~t_edge_prob:0.25
    in
    check_replay_reproduces ~supervisor:None g;
    check_replay_reproduces ~supervisor:(Some Runtime.Supervisor.default) g
  done

(* {1 The search itself} *)

let small_cfg ?supervisor () =
  Ch.config ~budget:40 ~seed:11 ~recoveries:[ V.Amnesia ] ~p_edge:0.0
    ?supervisor ()

let flood_runner () = Anonet.Resilient.chaos_runner ~k:1 (module Anonet.Flood)

let test_negative_control_finds_small_starvation_witness () =
  let res = Anonet.Check_suite.chaos_negative () in
  Alcotest.(check bool) "found witnesses" true (res.Ch.witnesses <> []);
  Alcotest.(check int) "flood never falsely terminates" 0 res.Ch.unsound;
  Alcotest.(check bool) "starvation witnessed" true (res.Ch.starved > 0);
  let smallest =
    List.fold_left
      (fun m w -> min m (List.length w.Ch.w_faults))
      max_int res.Ch.witnesses
  in
  Alcotest.(check bool) "shrunk to <= 4 atoms" true (smallest <= 4);
  List.iter
    (fun w ->
      Alcotest.(check bool) "shrinking never grows a witness" true
        (List.length w.Ch.w_faults <= w.Ch.w_original_size);
      Alcotest.(check bool) "missing vertices recorded" true
        (w.Ch.w_missing <> []);
      Alcotest.(check bool) "schedule recorded" true (w.Ch.w_schedule <> []))
    res.Ch.witnesses

let test_witness_replays_and_confirms () =
  (* Re-derive the chaos_negative configuration so replay sees the same
     compiled faults, then confirm every witness byte-for-byte. *)
  let cfg =
    Ch.config ~budget:60 ~seed:11 ~recoveries:[ V.Amnesia ] ~p_edge:0.0 ()
  in
  let runner = flood_runner () in
  let graphs = Anonet.Resilient.chaos_graphs () in
  let res = Ch.run cfg ~runners:[ runner ] ~graphs in
  Alcotest.(check bool) "found witnesses" true (res.Ch.witnesses <> []);
  List.iter
    (fun w ->
      let gc =
        List.find
          (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph)
          graphs
      in
      let s = Ch.replay cfg runner gc w in
      Alcotest.(check bool)
        ("witness replays on " ^ w.Ch.w_graph)
        true (Ch.confirms w s))
    res.Ch.witnesses

let test_search_is_deterministic () =
  let run () =
    Ch.run (small_cfg ()) ~runners:[ flood_runner () ]
      ~graphs:(Anonet.Resilient.chaos_graphs ())
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical JSON" (Ch.to_json a) (Ch.to_json b)

let test_witnesses_deduplicated () =
  let res =
    Ch.run (small_cfg ()) ~runners:[ flood_runner () ]
      ~graphs:(Anonet.Resilient.chaos_graphs ())
  in
  (* Shrunk sets are unique per (runner, graph, kind); duplicates counted. *)
  let keys =
    List.map
      (fun w ->
        w.Ch.w_runner ^ "|" ^ w.Ch.w_graph ^ "|"
        ^ Ch.describe_kind w.Ch.w_kind
        ^ "|"
        ^ Ch.canonical_key w.Ch.w_faults)
      res.Ch.witnesses
  in
  Alcotest.(check int) "witness keys unique" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check int) "hits = witnesses + duplicates" res.Ch.hits
    (List.length res.Ch.witnesses + res.Ch.duplicates);
  Alcotest.(check bool) "shrinking actually collapsed some hits" true
    (res.Ch.duplicates > 0)

let test_supervised_redundant_has_no_unsound_witness () =
  let res = Anonet.Check_suite.chaos_supervised ~budget:25 () in
  Alcotest.(check int) "zero soundness violations" 0 res.Ch.unsound;
  Alcotest.(check bool) "search actually ran" true (res.Ch.trials_run >= 75)

(* {1 Parallel chaos} *)

let test_par_chaos_matches_sequential () =
  let cfg = small_cfg () in
  let runners = [ flood_runner () ] in
  let graphs = Anonet.Resilient.chaos_graphs () in
  let seq = Ch.run cfg ~runners ~graphs in
  let par = Par.Chaos.run ~domains:2 cfg ~runners ~graphs in
  Alcotest.(check string) "byte-identical JSON" (Ch.to_json seq)
    (Ch.to_json par)

let () =
  Alcotest.run "chaos"
    [
      ( "fault-sets",
        [
          Alcotest.test_case "canonical key order-insensitive" `Quick
            test_canonical_key_order_insensitive;
          Alcotest.test_case "required excuses stopped + cut" `Quick
            test_required_excuses_stopped_and_cut;
          Alcotest.test_case "compile round trip" `Quick test_compile_round_trip;
        ] );
      ( "replay",
        [
          Alcotest.test_case "faulty run replays byte-for-byte" `Quick
            test_replay_reproduces_faulty_run;
        ] );
      ( "search",
        [
          Alcotest.test_case "negative control: small starvation witness"
            `Quick test_negative_control_finds_small_starvation_witness;
          Alcotest.test_case "witnesses replay and confirm" `Quick
            test_witness_replays_and_confirms;
          Alcotest.test_case "deterministic" `Quick test_search_is_deterministic;
          Alcotest.test_case "witnesses deduplicated" `Quick
            test_witnesses_deduplicated;
          Alcotest.test_case "supervised R3 never unsound" `Quick
            test_supervised_redundant_has_no_unsound_witness;
        ] );
      ( "par",
        [
          Alcotest.test_case "parallel search matches sequential" `Quick
            test_par_chaos_matches_sequential;
        ] );
    ]
