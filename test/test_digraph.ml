module G = Digraph
module F = Digraph.Families
open Helpers

(* {1 Core graph type} *)

let test_make_and_accessors () =
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 2); (1, 3); (2, 3) ] in
  Alcotest.(check int) "vertices" 4 (G.n_vertices g);
  Alcotest.(check int) "edges" 4 (G.n_edges g);
  Alcotest.(check int) "out_degree 1" 2 (G.out_degree g 1);
  Alcotest.(check int) "in_degree 3" 2 (G.in_degree g 3);
  Alcotest.(check int) "out port order" 2 (G.out_neighbor g 1 0);
  Alcotest.(check int) "out port order 2" 3 (G.out_neighbor g 1 1);
  Alcotest.(check (pair int int)) "in origin" (1, 1) (G.in_origin g 3 0);
  Alcotest.(check (pair int int)) "in origin 2" (2, 0) (G.in_origin g 3 1)

let test_make_rejects () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Graph.make: edge endpoint out of range") (fun () ->
      ignore (G.make ~n:2 ~s:0 ~t:1 [ (0, 5) ]));
  Alcotest.check_raises "tiny graph"
    (Invalid_argument "Graph.make: need at least s and t") (fun () ->
      ignore (G.make ~n:1 ~s:0 ~t:0 []))

let test_multi_edges_and_self_loops () =
  let g = G.make ~n:3 ~s:0 ~t:2 [ (0, 1); (1, 1); (1, 2); (1, 2) ] in
  Alcotest.(check int) "multi out degree" 3 (G.out_degree g 1);
  Alcotest.(check int) "self loop in degree" 2 (G.in_degree g 1);
  Alcotest.(check int) "t in degree" 2 (G.in_degree g 2)

let test_edge_index_roundtrip () =
  let g = F.grid_dag ~rows:3 ~cols:4 in
  List.iter
    (fun u ->
      for j = 0 to G.out_degree g u - 1 do
        let idx = G.edge_index g u j in
        Alcotest.(check (pair int int)) "roundtrip" (u, j) (G.edge_of_index g idx)
      done)
    (G.vertices g)

let test_out_port_target_port () =
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 2); (1, 3); (2, 3) ] in
  let v, i = G.out_port_target_port g 1 1 in
  Alcotest.(check (pair int int)) "lands on t port 0" (3, 0) (v, i);
  let v, i = G.out_port_target_port g 2 0 in
  Alcotest.(check (pair int int)) "lands on t port 1" (3, 1) (v, i)

let test_validate () =
  let ok = F.path 3 in
  Alcotest.(check bool) "valid model graph" true (G.validate ok = Ok ());
  let bad_s = G.make ~n:3 ~s:0 ~t:2 [ (0, 1); (0, 2) ] in
  Alcotest.(check bool) "s out-degree 2 rejected" true (G.validate bad_s <> Ok ());
  let bad_t = G.make ~n:3 ~s:0 ~t:1 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "t with out-edge rejected" true (G.validate bad_t <> Ok ())

(* {1 Structure queries} *)

let test_reachability () =
  let g = F.diamond () in
  Alcotest.(check bool) "all reachable" true (G.all_reachable g);
  Alcotest.(check bool) "all coreachable" true (G.all_coreachable g);
  let trapped = F.add_trap g ~from_vertex:1 in
  Alcotest.(check bool) "trap reachable" true (G.all_reachable trapped);
  Alcotest.(check bool) "trap not coreachable" false (G.all_coreachable trapped)

let test_dag_and_topo () =
  Alcotest.(check bool) "grid is dag" true (G.is_dag (F.grid_dag ~rows:3 ~cols:3));
  Alcotest.(check bool) "cycle not dag" false (G.is_dag (F.cycle_with_exit ~k:4));
  match G.topological_order (F.diamond ()) with
  | None -> Alcotest.fail "diamond has a topo order"
  | Some order ->
      let pos = Array.make 6 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool) "topo respects edges" true (pos.(u) < pos.(v)))
        (G.edges (F.diamond ()))

let test_grounded_tree_recognition () =
  Alcotest.(check bool) "comb" true (G.is_grounded_tree (F.comb 5));
  Alcotest.(check bool) "path" true (G.is_grounded_tree (F.path 4));
  Alcotest.(check bool) "diamond not" false (G.is_grounded_tree (F.diamond ()));
  Alcotest.(check bool) "classify comb" true (G.classify (F.comb 3) = `Grounded_tree);
  Alcotest.(check bool) "classify diamond" true (G.classify (F.diamond ()) = `Dag);
  Alcotest.(check bool) "classify cycle" true
    (G.classify (F.cycle_with_exit ~k:3) = `General)

let test_scc () =
  let g = F.cycle_with_exit ~k:5 in
  let comp, count = G.scc g in
  (* s, t, and the 5-cycle as one component: 3 components. *)
  Alcotest.(check int) "component count" 3 count;
  let cycle_comp = comp.(1) in
  for i = 1 to 5 do
    Alcotest.(check int) "cycle vertices together" cycle_comp comp.(i)
  done;
  Alcotest.(check bool) "s separate" true (comp.(0) <> cycle_comp)

let test_scc_dag_all_singletons () =
  let g = F.grid_dag ~rows:3 ~cols:3 in
  let _, count = G.scc g in
  Alcotest.(check int) "dag: n components" (G.n_vertices g) count

(* A 400k-vertex path: the recursive Tarjan blew the stack around 10^5
   frames, so this passing is what certifies the explicit-stack rewrite. *)
let test_scc_deep_path () =
  let n = 400_000 in
  let g = F.path n in
  let comp, count = G.scc g in
  Alcotest.(check int) "path: all singletons" (G.n_vertices g) count;
  Alcotest.(check int) "ids reverse-topological" 0 comp.(G.terminal g)

let test_scc_deep_cycle () =
  let n = 300_000 in
  (* s -> 0 -> 1 -> ... -> n-1 -> 0, plus n-1 -> t: one giant component. *)
  let edges =
    ((n + 0, 0) :: List.init n (fun i -> (i, (i + 1) mod n)))
    @ [ (n - 1, n + 1) ]
  in
  let g = G.make ~n:(n + 2) ~s:n ~t:(n + 1) edges in
  let comp, count = G.scc g in
  Alcotest.(check int) "s + cycle + t" 3 count;
  Alcotest.(check int) "cycle collapsed" comp.(0) comp.(n - 1)

let test_random_layered_large () =
  let target_edges = 5_000 in
  let g = F.random_layered_large (Prng.create 11) ~target_edges in
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "all reachable" true (G.all_reachable g);
  Alcotest.(check bool) "all coreachable" true (G.all_coreachable g);
  Alcotest.(check bool) "is a dag" true (G.is_dag g);
  let e = G.n_edges g in
  Alcotest.(check bool)
    (Printf.sprintf "|E|=%d within 25%% of target" e)
    true
    (abs (e - target_edges) * 4 <= target_edges);
  Alcotest.check_raises "tiny target rejected"
    (Invalid_argument
       "Families.random_layered_large: target_edges must be >= 32") (fun () ->
      ignore (F.random_layered_large (Prng.create 1) ~target_edges:10))

(* {1 Families} *)

let test_comb_shape () =
  let n = 7 in
  let g = F.comb n in
  Alcotest.(check int) "vertices" (n + 2) (G.n_vertices g);
  Alcotest.(check int) "edges" (2 * n) (G.n_edges g);
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "coreachable" true (G.all_coreachable g);
  (* v_i for i < n has chain + tooth; v_n only the tooth. *)
  for i = 1 to n - 1 do
    Alcotest.(check int) "out degree 2" 2 (G.out_degree g i)
  done;
  Alcotest.(check int) "last out degree" 1 (G.out_degree g n)

let test_path_shape () =
  let g = F.path 5 in
  Alcotest.(check int) "vertices" 7 (G.n_vertices g);
  Alcotest.(check int) "edges" 6 (G.n_edges g);
  Alcotest.(check bool) "grounded tree" true (G.is_grounded_tree g)

let test_full_tree_shape () =
  let g = F.full_tree ~height:3 ~degree:2 in
  (* 15 tree nodes + s + t. *)
  Alcotest.(check int) "vertices" 17 (G.n_vertices g);
  (* s->root, 14 tree edges, 8 leaf->t edges. *)
  Alcotest.(check int) "edges" 23 (G.n_edges g);
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "dag" true (G.is_dag g);
  Alcotest.(check bool) "grounded tree" true (G.is_grounded_tree g);
  let leaf = F.full_tree_leaf ~height:3 ~degree:2 ~path_ports:[ 0; 0; 0 ] in
  Alcotest.(check int) "leftmost leaf out-degree" 1 (G.out_degree g leaf);
  Alcotest.(check int) "leaf points to t" (G.terminal g) (G.out_neighbor g leaf 0)

let test_pruned_tree_shape () =
  let height = 4 and degree = 3 in
  let g = F.pruned_tree ~height ~degree in
  Alcotest.(check int) "h+3 vertices" (height + 3) (G.n_vertices g);
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "coreachable" true (G.all_coreachable g);
  (* Path vertices keep full out-degree (port 0 continues the path). *)
  for i = 1 to height do
    Alcotest.(check int) "out degree d" degree (G.out_degree g i)
  done;
  let leaf = F.pruned_tree_leaf ~height in
  Alcotest.(check int) "leaf out-degree 1" 1 (G.out_degree g leaf)

let test_skeleton_shape () =
  let n = 3 in
  let subset = [| true; false; true |] in
  let g = F.skeleton ~n ~subset in
  Alcotest.(check int) "vertices" ((4 * n) + 2) (G.n_vertices g);
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "dag" true (G.is_dag g);
  Alcotest.(check bool) "coreachable" true (G.all_coreachable g);
  let w = F.skeleton_w ~n in
  (* u_0 and u_4 (subset indices 0 and 2) feed w; u_2 does not. *)
  Alcotest.(check int) "w in-degree = |S|" 2 (G.in_degree g w);
  Alcotest.(check int) "w out-degree 1" 1 (G.out_degree g w);
  Alcotest.(check int) "w -> t" (G.terminal g) (G.out_neighbor g w 0)

let test_cycle_with_exit_shape () =
  let g = F.cycle_with_exit ~k:6 in
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "not dag" false (G.is_dag g);
  Alcotest.(check bool) "coreachable" true (G.all_coreachable g)

let test_figure_eight_shape () =
  let g = F.figure_eight () in
  Alcotest.(check bool) "valid" true (G.validate g = Ok ());
  Alcotest.(check bool) "coreachable" true (G.all_coreachable g);
  let _, count = G.scc g in
  Alcotest.(check bool) "one big scc" true (count < G.n_vertices g)

let test_add_trap_cycle () =
  let g = F.add_trap_cycle (F.path 2) ~from_vertex:1 in
  Alcotest.(check bool) "reachable" true (G.all_reachable g);
  Alcotest.(check bool) "not coreachable" false (G.all_coreachable g);
  Alcotest.(check bool) "not dag" false (G.is_dag g)

(* {1 Random family properties} *)

let prop_grounded_trees_are_grounded =
  qcheck_to_alcotest ~count:100 "random grounded trees satisfy the definition"
    arb_grounded_tree (fun g ->
      G.is_grounded_tree g && G.validate g = Ok () && G.all_reachable g
      && G.all_coreachable g)

let prop_dags_are_dags =
  qcheck_to_alcotest ~count:100 "random DAGs are valid connected DAGs" arb_dag
    (fun g ->
      G.is_dag g && G.validate g = Ok () && G.all_reachable g && G.all_coreachable g)

let prop_digraphs_connected =
  qcheck_to_alcotest ~count:100 "random digraphs reachable and coreachable"
    arb_digraph (fun g ->
      G.validate g = Ok () && G.all_reachable g && G.all_coreachable g)

let prop_edge_count_consistent =
  qcheck_to_alcotest ~count:100 "edge list matches degree sums" arb_digraph (fun g ->
      let sum_out =
        List.fold_left (fun acc v -> acc + G.out_degree g v) 0 (G.vertices g)
      in
      let sum_in =
        List.fold_left (fun acc v -> acc + G.in_degree g v) 0 (G.vertices g)
      in
      sum_out = G.n_edges g && sum_in = G.n_edges g
      && List.length (G.edges g) = G.n_edges g)

(* {1 Algorithms added for analysis and mapping verification} *)

let test_transpose () =
  let g = F.diamond () in
  let tg = G.transpose g in
  Alcotest.(check int) "same edge count" (G.n_edges g) (G.n_edges tg);
  Alcotest.(check int) "s/t swapped" (G.terminal g) (G.source tg);
  (* Edge sets are reversed. *)
  let fwd = List.sort compare (G.edges g) in
  let bwd = List.sort compare (List.map (fun (u, v) -> (v, u)) (G.edges tg)) in
  Alcotest.(check (list (pair int int))) "edges reversed" fwd bwd;
  (* Double transpose restores edge multiset. *)
  let ttg = G.transpose tg in
  Alcotest.(check (list (pair int int))) "involution on edge multiset" fwd
    (List.sort compare (G.edges ttg))

let test_distances_and_diameter () =
  let g = F.path 4 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4; 5 |]
    (G.distances_from g 0);
  Alcotest.(check int) "diameter" 5 (G.diameter_from_s g);
  let trapped = F.add_trap g ~from_vertex:1 in
  let d = G.distances_from trapped (G.terminal trapped) in
  Alcotest.(check int) "t reaches nothing forward" 0
    (Array.fold_left ( + ) 0 (Array.map (fun x -> if x > 0 then 1 else 0) d))

let test_longest_path () =
  Alcotest.(check int) "path" 6 (G.longest_path_dag (F.path 5));
  Alcotest.(check int) "grid 3x4" 7 (G.longest_path_dag (F.grid_dag ~rows:3 ~cols:4));
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Graph.longest_path_dag: graph has a cycle") (fun () ->
      ignore (G.longest_path_dag (F.cycle_with_exit ~k:3)))

let test_condensation () =
  let g = F.cycle_with_exit ~k:5 in
  let dag, comp = G.condensation g in
  Alcotest.(check bool) "condensation is a dag" true (G.is_dag dag);
  Alcotest.(check int) "three components" 3 (G.n_vertices dag);
  Alcotest.(check int) "cycle collapsed" comp.(1) comp.(3)

let test_induced_subgraph () =
  let g = F.diamond () in
  (* Drop vertex 3 (one diamond branch). *)
  let keep = Array.map (fun v -> v <> 3) (Array.of_list (G.vertices g)) in
  let sub = G.induced_subgraph g ~keep ~s:(G.source g) ~t:(G.terminal g) in
  Alcotest.(check int) "five vertices left" 5 (G.n_vertices sub);
  Alcotest.(check int) "edges through 3 dropped" 4 (G.n_edges sub);
  Alcotest.(check bool) "still coreachable" true (G.all_coreachable sub)

let test_canonical_isomorphism () =
  (* Same structure, different vertex numbering: isomorphic. *)
  let a = G.make ~n:5 ~s:0 ~t:4 [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4) ] in
  let b = G.make ~n:5 ~s:0 ~t:4 [ (0, 2); (2, 3); (2, 1); (3, 4); (1, 4) ] in
  Alcotest.(check bool) "renumbered graphs isomorphic" true (G.isomorphic a b);
  (* Swapping the port order at vertex 1 is a different port-numbered net. *)
  let c = G.make ~n:5 ~s:0 ~t:4 [ (0, 1); (1, 3); (1, 2); (2, 4); (3, 4) ] in
  Alcotest.(check bool) "port order matters only up to symmetry" true
    (G.isomorphic a c = G.isomorphic c a);
  Alcotest.(check bool) "self isomorphic" true (G.isomorphic a a);
  Alcotest.(check bool) "different shapes rejected" false
    (G.isomorphic a (F.path 3))

let prop_transpose_involution =
  qcheck_to_alcotest ~count:80 "transpose is an involution up to signature"
    arb_digraph (fun g ->
      let tt = G.transpose (G.transpose g) in
      List.sort compare (G.edges tt) = List.sort compare (G.edges g)
      && G.source tt = G.source g && G.terminal tt = G.terminal g)

let prop_condensation_dag =
  qcheck_to_alcotest ~count:80 "condensation is always a DAG" arb_digraph (fun g ->
      let dag, comp = G.condensation g in
      G.is_dag dag && Array.length comp = G.n_vertices g)

let prop_canonical_stable_under_renumbering =
  qcheck_to_alcotest ~count:60 "canonical signature survives renumbering"
    QCheck.(pair arb_digraph (int_bound 10_000))
    (fun (g, seed) ->
      (* Apply a random permutation that fixes nothing in particular. *)
      let n = G.n_vertices g in
      let perm = Array.init n (fun i -> i) in
      Prng.shuffle_in_place (Prng.create seed) perm;
      let edges = List.map (fun (u, v) -> (perm.(u), perm.(v))) (G.edges g) in
      (* Renumbered edge list must be grouped per source in original port
         order for ports to survive: sort by original dense edge index. *)
      let g' =
        G.make ~n ~s:perm.(G.source g) ~t:perm.(G.terminal g) edges
      in
      (* Edge insertion order per source is preserved by List.map, so the
         port structure is intact and the graphs are isomorphic. *)
      G.isomorphic g g')

let test_dot_output () =
  let dot = G.Dot.to_dot (F.diamond ()) in
  Alcotest.(check bool) "mentions digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph")

let () =
  Alcotest.run "digraph"
    [
      ( "core",
        [
          Alcotest.test_case "make/accessors" `Quick test_make_and_accessors;
          Alcotest.test_case "make rejects" `Quick test_make_rejects;
          Alcotest.test_case "multi-edges & loops" `Quick test_multi_edges_and_self_loops;
          Alcotest.test_case "edge_index roundtrip" `Quick test_edge_index_roundtrip;
          Alcotest.test_case "out_port_target_port" `Quick test_out_port_target_port;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "dot" `Quick test_dot_output;
        ] );
      ( "structure",
        [
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "dag/topo" `Quick test_dag_and_topo;
          Alcotest.test_case "grounded tree recognition" `Quick
            test_grounded_tree_recognition;
          Alcotest.test_case "scc cycle" `Quick test_scc;
          Alcotest.test_case "scc dag" `Quick test_scc_dag_all_singletons;
          Alcotest.test_case "scc deep path" `Quick test_scc_deep_path;
          Alcotest.test_case "scc deep cycle" `Quick test_scc_deep_cycle;
        ] );
      ( "families",
        [
          Alcotest.test_case "comb" `Quick test_comb_shape;
          Alcotest.test_case "path" `Quick test_path_shape;
          Alcotest.test_case "full tree" `Quick test_full_tree_shape;
          Alcotest.test_case "pruned tree" `Quick test_pruned_tree_shape;
          Alcotest.test_case "skeleton" `Quick test_skeleton_shape;
          Alcotest.test_case "cycle with exit" `Quick test_cycle_with_exit_shape;
          Alcotest.test_case "figure eight" `Quick test_figure_eight_shape;
          Alcotest.test_case "trap cycle" `Quick test_add_trap_cycle;
          Alcotest.test_case "layered large" `Quick test_random_layered_large;
        ] );
      ( "random-families",
        [
          prop_grounded_trees_are_grounded;
          prop_dags_are_dags;
          prop_digraphs_connected;
          prop_edge_count_consistent;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "distances/diameter" `Quick test_distances_and_diameter;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "condensation" `Quick test_condensation;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
          Alcotest.test_case "canonical isomorphism" `Quick test_canonical_isomorphism;
          prop_transpose_involution;
          prop_condensation_dag;
          prop_canonical_stable_under_renumbering;
        ] );
    ]
