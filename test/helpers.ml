(* Shared test utilities: QCheck generators for the numeric kernel and the
   interval machinery, Alcotest testables, and graph-family samplers. *)

module B = Bignat
module Q = Exact.Rational
module Dy = Exact.Dyadic
module I = Intervals.Interval
module Is = Intervals.Iset

let qcheck_to_alcotest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* {1 Alcotest testables} *)

let bignat = Alcotest.testable B.pp B.equal
let rational = Alcotest.testable Q.pp Q.equal
let dyadic = Alcotest.testable Dy.pp Dy.equal
let interval = Alcotest.testable I.pp I.equal
let iset = Alcotest.testable Is.pp Is.equal

let outcome_string (o : Runtime.Engine.outcome) =
  match o with
  | Runtime.Engine.Terminated -> "terminated"
  | Runtime.Engine.Quiescent -> "quiescent"
  | Runtime.Engine.Step_limit -> "step-limit"
  | Runtime.Engine.Cancelled -> "cancelled"

let outcome =
  let pp fmt o = Format.pp_print_string fmt (outcome_string o) in
  Alcotest.testable pp ( = )

(* One-line run report for assertion messages: outcome, deliveries, what is
   still in flight (starvation vs true quiescence), and the fault counters. *)
let report_summary (r : _ Runtime.Engine.report) =
  let f = r.Runtime.Engine.fault_stats in
  Printf.sprintf
    "%s after %d deliveries (in-flight %d; dropped %d, extra %d, delayed %d, \
     corrupted %d, garbled %d, dead edges %d)"
    (outcome_string r.Runtime.Engine.outcome)
    r.Runtime.Engine.deliveries r.Runtime.Engine.final_in_flight
    f.Runtime.Engine.dropped_copies f.Runtime.Engine.extra_copies
    f.Runtime.Engine.delayed_copies f.Runtime.Engine.corrupted_deliveries
    f.Runtime.Engine.garbled_drops
    (List.length f.Runtime.Engine.dead_edges)

(* {1 QCheck generators} *)

let gen_bignat : B.t QCheck.Gen.t =
  QCheck.Gen.(
    let small = map B.of_int (int_bound 1_000_000) in
    let big =
      map
        (fun limbs ->
          List.fold_left
            (fun acc l -> B.add (B.shift_left acc 30) (B.of_int l))
            B.zero limbs)
        (list_size (int_range 1 6) (int_bound ((1 lsl 30) - 1)))
    in
    oneof [ small; big ])

let arb_bignat = QCheck.make ~print:B.to_string gen_bignat

let gen_small_nat = QCheck.Gen.int_bound 100_000
let arb_small_nat = QCheck.make ~print:string_of_int gen_small_nat

let gen_rational : Q.t QCheck.Gen.t =
  QCheck.Gen.(
    map3
      (fun negative num den -> Q.make ~negative num (B.succ den))
      bool gen_bignat gen_bignat)

let arb_rational = QCheck.make ~print:Q.to_string gen_rational

let gen_dyadic : Dy.t QCheck.Gen.t =
  QCheck.Gen.(
    map3 (fun negative m e -> Dy.make ~negative m e) bool gen_bignat (int_bound 48))

let arb_dyadic = QCheck.make ~print:Dy.to_string gen_dyadic

(* A dyadic in [0, 1), endpoint-like. *)
let gen_unit_dyadic : Dy.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun e m_raw ->
        let e = 1 + e in
        let m = m_raw mod (1 lsl e) in
        Dy.make (B.of_int m) e)
      (int_bound 19) (int_bound ((1 lsl 20) - 1)))

let arb_unit_dyadic = QCheck.make ~print:Dy.to_string gen_unit_dyadic

let gen_interval : I.t QCheck.Gen.t =
  QCheck.Gen.(map2 I.make gen_unit_dyadic gen_unit_dyadic)

let arb_interval = QCheck.make ~print:I.to_string gen_interval

let gen_iset : Is.t QCheck.Gen.t =
  QCheck.Gen.(map Is.of_intervals (list_size (int_range 0 8) gen_interval))

let arb_iset = QCheck.make ~print:Is.to_string gen_iset

(* {1 Graph samplers} *)

let gen_grounded_tree : Digraph.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun seed n ->
        Digraph.Families.random_grounded_tree (Prng.create seed) ~n:(n + 1)
          ~t_edge_prob:0.3)
      (int_bound 10_000) (int_bound 60))

let gen_dag : Digraph.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun seed n ->
        let prng = Prng.create seed in
        Digraph.Families.random_dag prng ~n:(n + 1)
          ~extra_edges:(Prng.int_in prng 0 (2 * (n + 1)))
          ~t_edge_prob:0.25)
      (int_bound 10_000) (int_bound 50))

let gen_digraph : Digraph.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun seed n ->
        let prng = Prng.create seed in
        Digraph.Families.random_digraph prng ~n:(n + 1)
          ~extra_edges:(Prng.int_in prng 0 (n + 1))
          ~back_edges:(Prng.int_in prng 0 ((n / 2) + 1))
          ~t_edge_prob:0.25)
      (int_bound 10_000) (int_bound 40))

let graph_print g =
  Format.asprintf "%a" Digraph.pp g

let arb_grounded_tree = QCheck.make ~print:graph_print gen_grounded_tree
let arb_dag = QCheck.make ~print:graph_print gen_dag
let arb_digraph = QCheck.make ~print:graph_print gen_digraph

(* {1 Misc} *)

let rec pairwise_disjoint = function
  | [] -> true
  | x :: rest -> List.for_all (Is.disjoint x) rest && pairwise_disjoint rest
