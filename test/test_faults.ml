(* The fault-injection subsystem: per-edge fault plans, the engine's delay /
   corruption / kill integration, the Redundant(k) resilience wrapper, and
   the deterministic Campaign harness. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Fl = Runtime.Faults
module C = Runtime.Campaign
open Helpers

(* {1 Fault-plan distributions (the fixed Faults.copies semantics)} *)

let count_fates plan ~sends =
  (* One edge, many sends: the per-edge stream makes this a pure sample of
     the documented per-send distribution. *)
  let inst = Fl.Instance.start (Fl.uniform plan ~seed:42) in
  List.init sends (fun _ -> Fl.Instance.on_send inst ~edge:0)

let test_duplication_is_geometric () =
  let fates = count_fates (Fl.plan ~duplicate:0.5 ()) ~sends:5000 in
  let max_copies =
    List.fold_left (fun acc f -> max acc (List.length f)) 0 fates
  in
  Alcotest.(check bool) "geometric duplication exceeds the old cap of 2" true
    (max_copies > 2);
  let total = List.fold_left (fun acc f -> acc + List.length f) 0 fates in
  let mean = float_of_int total /. 5000.0 in
  (* E[1 + Geom(0.5)] = 2. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean copies %.3f ~ 2" mean)
    true
    (mean > 1.85 && mean < 2.15)

let test_drop_and_duplicate_independent () =
  (* Under the old semantics duplication was only sampled when the drop coin
     failed, so P(copies >= 2) was (1-p)*q; independent per-copy drops give
     P(copies >= 2) = q*(1-p)^2 + higher terms, and crucially E[copies] =
     (1 + q/(1-q)) * (1-p) exactly. *)
  let fates = count_fates (Fl.plan ~drop:0.5 ~duplicate:0.5 ()) ~sends:8000 in
  let total = List.fold_left (fun acc f -> acc + List.length f) 0 fates in
  let mean = float_of_int total /. 8000.0 in
  (* E = 2 * 0.5 = 1. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean surviving copies %.3f ~ 1" mean)
    true
    (mean > 0.9 && mean < 1.1);
  let dropped_all = List.length (List.filter (fun f -> f = []) fates) in
  let duplicated = List.length (List.filter (fun f -> List.length f >= 2) fates) in
  Alcotest.(check bool) "both total loss and duplication occur" true
    (dropped_all > 1000 && duplicated > 1000)

let test_fault_validation () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument "") f in
  let check_invalid f =
    try
      f ();
      Alcotest.fail "expected Invalid_argument"
    with Invalid_argument _ -> ()
  in
  ignore bad;
  check_invalid (fun () -> ignore (Fl.plan ~drop:1.5 ()));
  check_invalid (fun () -> ignore (Fl.plan ~duplicate:1.0 ()));
  check_invalid (fun () -> ignore (Fl.plan ~max_delay:(-1) ()));
  check_invalid (fun () -> ignore (Fl.create ~kill:(-0.1) ~seed:1 ()))

(* {1 Engine integration} *)

let digraph seed =
  F.random_digraph (Prng.create seed) ~n:15 ~extra_edges:10 ~back_edges:4
    ~t_edge_prob:0.25

let test_faulty_runs_reproducible () =
  let g = digraph 7 in
  let run () =
    let faults =
      Fl.create ~drop:0.1 ~duplicate:0.15 ~max_delay:3 ~corrupt:0.05 ~kill:0.01
        ~seed:99 ()
    in
    Anonet.General_engine.run ~faults g
  in
  let a = run () and b = run () in
  Alcotest.check outcome "same outcome" a.outcome b.outcome;
  Alcotest.(check int) "same deliveries" a.deliveries b.deliveries;
  Alcotest.(check int) "same bits" a.total_bits b.total_bits;
  Alcotest.(check int) "same final in-flight" a.final_in_flight b.final_in_flight;
  Alcotest.(check bool) "same fault stats" true (a.fault_stats = b.fault_stats)

let test_delay_reorders_but_stays_sound () =
  (* Delays lose nothing: the general protocol is schedule-free, so it must
     still terminate having visited everything — even under Fifo, which the
     delay queue quietly reorders. *)
  let delayed_total = ref 0 in
  for seed = 1 to 20 do
    let g = digraph seed in
    let faults = Fl.create ~max_delay:5 ~seed () in
    let r = Anonet.General_engine.run ~faults g in
    delayed_total := !delayed_total + r.fault_stats.delayed_copies;
    if not (r.outcome = E.Terminated && Array.for_all (fun v -> v) r.visited)
    then Alcotest.fail ("delay broke soundness: " ^ report_summary r)
  done;
  Alcotest.(check bool) "some copies actually delayed" true (!delayed_total > 0)

let test_corruption_is_counted_not_fatal () =
  let corrupted = ref 0 and garbled = ref 0 in
  for seed = 1 to 20 do
    let g = digraph seed in
    let faults = Fl.create ~corrupt:0.3 ~seed () in
    let r = Anonet.General_engine.run ~faults g in
    corrupted := !corrupted + r.fault_stats.corrupted_deliveries;
    garbled := !garbled + r.fault_stats.garbled_drops
  done;
  Alcotest.(check bool)
    (Printf.sprintf "bit flips surfaced as diagnostics (%d corrupted, %d garbled)"
       !corrupted !garbled)
    true
    (!corrupted + !garbled > 0)

let test_killed_edge_starves_path () =
  let g = F.path 4 in
  let faults = Fl.create ~kill:1.0 ~seed:5 () in
  let r = Anonet.Tree_engine.run ~faults g in
  Alcotest.check outcome "starves" E.Quiescent r.outcome;
  Alcotest.(check bool) "nothing delivered" true (r.deliveries = 0);
  Alcotest.(check bool) "the dead edge is reported" true
    (r.fault_stats.dead_edges <> []);
  Alcotest.(check int) "no residual in-flight (loss, not starvation)" 0
    r.final_in_flight

let test_step_limit_reports_in_flight () =
  (* Flood on a cycle family keeps messages moving; a tiny step limit must
     leave the residue visible in final_in_flight. *)
  let g = F.figure_eight () in
  let module Fe = Runtime.Engine.Make (Anonet.Flood) in
  let r = Fe.run ~step_limit:2 g in
  Alcotest.check outcome "stopped by limit" E.Step_limit r.outcome;
  Alcotest.(check bool) ("in-flight residue: " ^ report_summary r) true
    (r.final_in_flight > 0)

(* {1 Redundant(k) resilience wrapper} *)

module K3 = struct
  let k = 3
end

module K5 = struct
  let k = 5
end

module General_r3 = Anonet.Redundant.Make (K3) (Anonet.General_broadcast)
module Tree_r5 = Anonet.Redundant.Make (K5) (Anonet.Tree_broadcast)
module General_r3_engine = Runtime.Engine.Make (General_r3)
module Tree_r5_engine = Runtime.Engine.Make (Tree_r5)

let test_redundant_faithful_when_reliable () =
  let g = F.comb 8 in
  let bare = Anonet.Tree_engine.run g in
  let red = Tree_r5_engine.run g in
  Alcotest.check outcome "still terminates" E.Terminated red.outcome;
  Alcotest.(check bool) "all visited" true (Array.for_all (fun v -> v) red.visited);
  (* The engine stops at the accepting configuration, which can leave late
     copies undelivered — conservation holds over delivered + in-flight. *)
  Alcotest.(check int) "k-fold copies conserved"
    (5 * (bare.deliveries + bare.final_in_flight))
    (red.deliveries + red.final_in_flight);
  Alcotest.(check bool) "repetition + checksum cost real bits" true
    (red.total_bits > bare.total_bits);
  Alcotest.(check bool) "dedup memory is charged" true
    (red.max_state_bits > bare.max_state_bits)

let test_redundant_neutralizes_duplication () =
  (* The bare general protocol falsely terminates under duplication (see
     test_extensions); the dedup layer must close exactly that hole. *)
  for seed = 1 to 40 do
    let g = digraph seed in
    let faults = Fl.create ~duplicate:0.3 ~seed () in
    let r = General_r3_engine.run ~faults g in
    if r.outcome = E.Terminated && not (Array.for_all (fun v -> v) r.visited)
    then Alcotest.fail ("dedup failed on seed " ^ string_of_int seed)
  done

let drop_survivors run =
  let ok = ref 0 in
  for seed = 1 to 20 do
    let g = F.comb 8 in
    let faults = Fl.create ~drop:0.25 ~seed () in
    let r = run ~faults g in
    if r = E.Terminated then incr ok
  done;
  !ok

let test_redundancy_restores_broadcast_under_drops () =
  let bare =
    drop_survivors (fun ~faults g -> (Anonet.Tree_engine.run ~faults g).outcome)
  in
  let red =
    drop_survivors (fun ~faults g -> (Tree_r5_engine.run ~faults g).outcome)
  in
  Alcotest.(check bool)
    (Printf.sprintf "bare %d/20 vs redundant %d/20 at drop 0.25" bare red)
    true
    (bare <= 4 && red >= 15 && red > bare)

(* {1 Campaign harness} *)

module Tree_runner = C.Of_protocol (Anonet.Tree_broadcast)
module Dag_runner = C.Of_protocol (Anonet.Dag_broadcast_pow2)
module General_runner = C.Of_protocol (Anonet.General_broadcast)
module Tree_r5_runner = C.Of_protocol (Tree_r5)
module General_r3_runner = C.Of_protocol (General_r3)

module Dag_r3 = Anonet.Redundant.Make (K3) (Anonet.Dag_broadcast_pow2)
module Dag_r3_runner = C.Of_protocol (Dag_r3)

let seeds20 = List.init 20 (fun i -> i + 1)

let tree_case =
  {
    C.g_name = "random-tree-12";
    build =
      (fun ~seed ->
        F.random_grounded_tree (Prng.create seed) ~n:12 ~t_edge_prob:0.3);
  }

let dag_case =
  {
    C.g_name = "random-dag-12";
    build =
      (fun ~seed ->
        F.random_dag (Prng.create seed) ~n:12 ~extra_edges:12 ~t_edge_prob:0.25);
  }

let general_case =
  {
    C.g_name = "random-digraph-12";
    build =
      (fun ~seed ->
        F.random_digraph (Prng.create seed) ~n:12 ~extra_edges:8 ~back_edges:3
          ~t_edge_prob:0.25);
  }

(* The acceptance campaign: three broadcast protocols (tree, DAG, general),
   each behind the Redundant wrapper and run on its own graph family, over a
   full drop x duplicate x delay x corruption grid, 20 seeds per cell.
   Soundness must hold on every run: repetition + dedup defuses drops and
   duplication, and the wrapper's checksum turns single-bit corruption into
   a detected decode failure (a drop) instead of a silently different valid
   message — without it, a corrupted commodity amount can inflate the
   terminal's flow and falsely terminate. *)
let acceptance_grid =
  C.grid ~drops:[ 0.0; 0.1 ] ~duplicates:[ 0.0; 0.2 ] ~max_delays:[ 0; 2 ]
    ~corrupts:[ 0.0; 0.02 ] ()

let test_campaign_acceptance_sound () =
  let pairs =
    [
      (Tree_r5_runner.runner (), tree_case);
      (Dag_r3_runner.runner (), dag_case);
      (General_r3_runner.runner (), general_case);
    ]
  in
  List.iter
    (fun ((runner : C.runner), graph) ->
      let res =
        C.run ~step_limit:300_000 ~runners:[ runner ] ~graphs:[ graph ]
          ~grid:acceptance_grid ~seeds:seeds20 ()
      in
      Alcotest.(check int)
        (runner.C.r_name ^ ": full 2x2x2x2 grid")
        16 (List.length res.C.cells);
      (match res.C.violations with
      | [] -> ()
      | v :: _ ->
          Alcotest.fail
            (Printf.sprintf "unsound: %s on %s at %s seed %d" v.C.v_runner
               v.C.v_graph v.C.v_point.C.label v.C.v_seed));
      Alcotest.(check bool) (runner.C.r_name ^ " sound") true (C.sound res))
    pairs

let test_campaign_deterministic () =
  let small () =
    C.run ~step_limit:100_000
      ~runners:[ General_runner.runner () ]
      ~graphs:[ general_case ]
      ~grid:(C.grid ~drops:[ 0.0; 0.2 ] ~duplicates:[ 0.0; 0.25 ] ())
      ~seeds:(List.init 10 (fun i -> i + 1))
      ()
  in
  Alcotest.(check string) "bit-for-bit identical JSON" (C.to_json (small ()))
    (C.to_json (small ()))

let test_campaign_drops_only_is_sound_for_bare_protocols () =
  let pairs =
    [
      (Tree_runner.runner (), tree_case);
      (Dag_runner.runner (), dag_case);
      (General_runner.runner (), general_case);
    ]
  in
  List.iter
    (fun ((runner : C.runner), graph) ->
      let res =
        C.run ~step_limit:300_000 ~runners:[ runner ] ~graphs:[ graph ]
          ~grid:(C.grid ~drops:[ 0.1; 0.3 ] ~max_delays:[ 0; 3 ] ())
          ~seeds:seeds20 ()
      in
      Alcotest.(check bool)
        (runner.C.r_name ^ ": drops and delays never cause false termination")
        true (C.sound res))
    pairs

let test_campaign_finds_and_shrinks_duplication_violation () =
  let seeds = List.init 60 (fun i -> i + 1) in
  let res =
    C.run ~step_limit:300_000
      ~runners:[ General_runner.runner () ]
      ~graphs:[ general_case ]
      ~grid:[ C.point ~duplicate:0.35 () ]
      ~seeds ()
  in
  match res.C.violations with
  | [] ->
      Alcotest.fail "expected duplication to break the bare general protocol"
  | v :: _ ->
      Alcotest.(check bool) "shrunk rate <= original" true
        (v.C.shrunk_point.C.fault_plan.Fl.duplicate
        <= v.C.v_point.C.fault_plan.Fl.duplicate);
      (* The shrunk witness must replay: same runner, same graph family,
         shrunk (rate, seed) pair still falsely terminates. *)
      let g = general_case.C.build ~seed:v.C.shrunk_seed in
      let runner = General_runner.runner () in
      let s =
        runner.C.run
          ~faults:(Fl.uniform v.C.shrunk_point.C.fault_plan ~seed:v.C.shrunk_seed)
          ~step_limit:300_000 g
      in
      let reach = G.reachable_from_s g in
      Alcotest.check outcome "witness terminates" E.Terminated s.C.outcome;
      Alcotest.(check bool) "witness leaves a reachable vertex unvisited" true
        (List.exists
           (fun v' -> reach.(v') && not s.C.visited.(v'))
           (G.vertices g))

let test_campaign_reports_starvation_and_dark_edges () =
  let res =
    C.run ~step_limit:100_000
      ~runners:[ Tree_runner.runner () ]
      ~graphs:
        [ { C.g_name = "path-4"; build = (fun ~seed:_ -> F.path 4) } ]
      ~grid:[ C.point ~kill:0.8 () ]
      ~seeds:(List.init 10 (fun i -> i + 1))
      ()
  in
  Alcotest.(check bool) "killing edges starves the path" true
    (res.C.starvations <> []);
  let s = List.hd res.C.starvations in
  Alcotest.(check bool) "dark edges named" true (s.C.dark_edges <> []);
  Alcotest.(check bool) "starved vertices named" true (s.C.starved <> [])

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "geometric duplication" `Quick
            test_duplication_is_geometric;
          Alcotest.test_case "drop/duplicate independent" `Quick
            test_drop_and_duplicate_independent;
          Alcotest.test_case "validation" `Quick test_fault_validation;
        ] );
      ( "engine",
        [
          Alcotest.test_case "faulty runs reproducible" `Quick
            test_faulty_runs_reproducible;
          Alcotest.test_case "delay reorders, stays sound" `Quick
            test_delay_reorders_but_stays_sound;
          Alcotest.test_case "corruption counted, not fatal" `Quick
            test_corruption_is_counted_not_fatal;
          Alcotest.test_case "killed edge starves" `Quick
            test_killed_edge_starves_path;
          Alcotest.test_case "step limit reports in-flight" `Quick
            test_step_limit_reports_in_flight;
        ] );
      ( "redundant",
        [
          Alcotest.test_case "faithful when reliable" `Quick
            test_redundant_faithful_when_reliable;
          Alcotest.test_case "neutralizes duplication" `Quick
            test_redundant_neutralizes_duplication;
          Alcotest.test_case "restores broadcast under drops" `Quick
            test_redundancy_restores_broadcast_under_drops;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "acceptance grid is sound" `Slow
            test_campaign_acceptance_sound;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "drops-only sound for bare protocols" `Slow
            test_campaign_drops_only_is_sound_for_bare_protocols;
          Alcotest.test_case "finds and shrinks duplication violation" `Quick
            test_campaign_finds_and_shrinks_duplication_violation;
          Alcotest.test_case "reports starvation + dark edges" `Quick
            test_campaign_reports_starvation_and_dark_edges;
        ] );
    ]
