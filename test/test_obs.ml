(* The telemetry subsystem: registry cells and snapshots, the timeline ring,
   the exporters (including the Chrome-trace JSON round-trip through the
   validating parser), and the reconciliation guarantees — Obs counters must
   agree exactly with the engine/explorer/sharded-engine reports they
   instrument. *)

open Helpers
module R = Obs.Registry

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
module T = Obs.Timeline
module E = Runtime.Engine
module F = Digraph.Families

(* {1 Registry} *)

let test_registry_cells () =
  let reg = R.create () in
  let c = R.counter reg "c" in
  R.incr c;
  R.add c 4;
  Alcotest.(check int) "counter" 5 (R.value c);
  let g = R.gauge reg "g" in
  R.set g 7;
  R.set g 3;
  Alcotest.(check int) "gauge keeps last" 3 (R.gauge_value g);
  let a = R.acounter reg "a" in
  R.aincr a;
  R.aadd a 9;
  Alcotest.(check int) "acounter" 10 (R.avalue a);
  let c' = R.counter reg "c" in
  R.incr c';
  Alcotest.(check int) "re-registration returns the same cell" 6 (R.value c);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Registry: \"c\" already registered with another kind")
    (fun () -> ignore (R.gauge reg "c"))

let test_histogram_buckets () =
  Alcotest.(check int) "bucket of 0" 0 (R.bucket_of 0);
  Alcotest.(check int) "bucket of -3" 0 (R.bucket_of (-3));
  Alcotest.(check int) "bucket of 1" 1 (R.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (R.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (R.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (R.bucket_of 4);
  Alcotest.(check int) "bucket of 1024" 11 (R.bucket_of 1024);
  (* Every positive bucket covers [2^(i-1), 2^i - 1]. *)
  for i = 1 to 20 do
    Alcotest.(check int) "lo in bucket" i (R.bucket_of (R.bucket_lo i));
    Alcotest.(check int) "hi in bucket" i (R.bucket_of (R.bucket_hi i))
  done;
  let reg = R.create () in
  let h = R.histogram reg "h" in
  List.iter (R.observe h) [ 0; 1; 1; 3; 900 ];
  match R.find_histogram (R.snapshot reg) "h" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some (count, sum, buckets) ->
      Alcotest.(check int) "count" 5 count;
      Alcotest.(check int) "sum" 905 sum;
      Alcotest.(check (list (pair int int)))
        "buckets" [ (0, 1); (1, 2); (2, 1); (10, 1) ] buckets

let test_snapshot_diff () =
  let reg = R.create () in
  let c = R.counter reg "runs.count" in
  let g = R.gauge reg "depth" in
  let h = R.histogram reg "sizes" in
  R.add c 10;
  R.set g 4;
  R.observe h 2;
  let older = R.snapshot reg in
  R.add c 5;
  R.set g 9;
  R.observe h 70;
  let newer = R.snapshot reg in
  let d = R.diff ~older ~newer in
  Alcotest.(check (option int)) "counter subtracts" (Some 5) (R.find d "runs.count");
  Alcotest.(check (option int)) "gauge keeps newer" (Some 9) (R.find d "depth");
  (match R.find_histogram d "sizes" with
  | Some (count, sum, buckets) ->
      Alcotest.(check int) "hist count diff" 1 count;
      Alcotest.(check int) "hist sum diff" 70 sum;
      Alcotest.(check (list (pair int int))) "hist buckets diff" [ (7, 1) ] buckets
  | None -> Alcotest.fail "histogram missing from diff");
  (* Names are sorted, so the JSON is deterministic; and it parses. *)
  let names = List.map fst newer in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names;
  Alcotest.(check bool) "snapshot JSON valid" true (Obs.Json.valid (R.to_json newer))

(* Rollup: fold per-session snapshots into a server-wide registry. *)
let test_merge_rollup () =
  let session = R.create () in
  R.add (R.counter session "engine.deliveries") 7;
  R.set (R.gauge session "depth") 3;
  let h = R.histogram session "bits" in
  List.iter (R.observe h) [ 1; 900 ];
  let snap = R.snapshot session in
  let server = R.create () in
  R.merge ~into:server ~prefix:"sessions." snap;
  R.merge ~into:server ~prefix:"sessions." snap;
  let merged = R.snapshot server in
  Alcotest.(check (option int))
    "counters add across merges" (Some 14)
    (R.find merged "sessions.engine.deliveries");
  Alcotest.(check (option int))
    "gauges take the incoming reading" (Some 3)
    (R.find merged "sessions.depth");
  (match R.find_histogram merged "sessions.bits" with
  | Some (count, sum, buckets) ->
      Alcotest.(check int) "hist count adds" 4 count;
      Alcotest.(check int) "hist sum adds" 1802 sum;
      Alcotest.(check (list (pair int int))) "buckets add" [ (1, 2); (10, 2) ] buckets
  | None -> Alcotest.fail "histogram missing after merge");
  (* Unprefixed merge reuses cells idempotently... *)
  let plain = R.create () in
  R.merge ~into:plain snap;
  Alcotest.(check (option int)) "no prefix" (Some 7)
    (R.find (R.snapshot plain) "engine.deliveries");
  (* ...and a kind collision under the prefixed name is loud. *)
  ignore (R.histogram server "sessions.clash");
  let bad = R.create () in
  R.incr (R.counter bad "clash");
  Alcotest.check_raises "kind collision"
    (Invalid_argument
       "Obs.Registry: \"sessions.clash\" already registered with another kind")
    (fun () -> R.merge ~into:server ~prefix:"sessions." (R.snapshot bad))

(* The value parser: bytes survive a parse/print round trip — including
   control characters and the exact lexemes of numbers. *)
let test_json_value_roundtrip () =
  let module J = Obs.Json in
  let cases =
    [
      "{\"a\":[1,2.50,-0.125e2],\"b\":\"tab\\tnl\\nq\\\"\",\"c\":null}";
      "{\"ctl\":\"\\u0000\\u001f\\u0007\"}";
      "[true,false,[],{},\"\",1e-9,100000000000000000000]";
      "\"plain\"";
      "-0.0";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok v -> Alcotest.(check string) "byte-faithful" s (J.to_string v)
      | Error i -> Alcotest.failf "parse %s failed at %d" s i)
    cases;
  (* escape emits parseable text for every byte. *)
  let wild = String.init 256 Char.chr in
  (match J.parse (J.escape wild) with
  | Ok v ->
      Alcotest.(check (option string)) "escape round-trips all bytes"
        (Some wild) (J.to_string_opt v)
  | Error i -> Alcotest.failf "escaped string unparseable at %d" i);
  (* accessors *)
  match J.parse "{\"n\":3,\"f\":1.5,\"s\":\"x\",\"b\":true}" with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok v ->
      Alcotest.(check (option int)) "int" (Some 3)
        (Option.bind (J.member "n" v) J.to_int_opt);
      Alcotest.(check (option (float 1e-9))) "float" (Some 1.5)
        (Option.bind (J.member "f" v) J.to_float_opt);
      Alcotest.(check (option string)) "string" (Some "x")
        (Option.bind (J.member "s" v) J.to_string_opt);
      Alcotest.(check (option bool)) "bool" (Some true)
        (Option.bind (J.member "b" v) J.to_bool_opt);
      Alcotest.(check bool) "missing member" true (J.member "zz" v = None)

(* {1 Timeline} *)

let fake_clock () =
  let t = ref 0.0 in
  ((fun () -> !t), fun v -> t := v)

let test_timeline_events () =
  let clock, set = fake_clock () in
  let tl = T.create ~clock ~capacity:16 () in
  set 1.0;
  T.begin_span tl ~track:0 "work";
  set 1.5;
  T.sample tl ~track:1 "depth" 42.0;
  set 2.0;
  T.instant tl ~track:0 "tick";
  set 3.0;
  T.end_span tl ~track:0 "work";
  Alcotest.(check int) "recorded" 4 (T.recorded tl);
  Alcotest.(check int) "dropped" 0 (T.dropped tl);
  Alcotest.(check (list int)) "tracks" [ 0; 1 ] (T.tracks tl);
  match T.events tl with
  | [ b; s; i; e ] ->
      Alcotest.(check string) "begin name" "work" b.T.name;
      Alcotest.(check bool) "begin kind" true (b.T.kind = T.Begin);
      Alcotest.(check (float 1e-9)) "ts relative to create" 1.0 b.T.ts;
      Alcotest.(check (float 1e-9)) "sample value" 42.0 s.T.value;
      Alcotest.(check int) "sample track" 1 s.T.track;
      Alcotest.(check bool) "instant kind" true (i.T.kind = T.Instant);
      Alcotest.(check bool) "end kind" true (e.T.kind = T.End);
      Alcotest.(check (float 1e-9)) "end ts" 3.0 e.T.ts
  | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs)

let test_timeline_ring () =
  let clock, set = fake_clock () in
  let tl = T.create ~clock ~capacity:4 () in
  for i = 1 to 10 do
    set (float_of_int i);
    T.sample tl ~track:0 "x" (float_of_int i)
  done;
  Alcotest.(check int) "recorded counts overwrites" 10 (T.recorded tl);
  Alcotest.(check int) "dropped" 6 (T.dropped tl);
  let vals = List.map (fun (e : T.event) -> e.T.value) (T.events tl) in
  Alcotest.(check (list (float 1e-9))) "newest window, oldest first"
    [ 7.0; 8.0; 9.0; 10.0 ] vals;
  let n = ref 0 in
  T.iter (fun _ -> incr n) tl;
  Alcotest.(check int) "iter over retained window" 4 !n

(* {1 Exporters + the JSON validator} *)

let test_json_validator () =
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "valid %s" s) true (Obs.Json.valid s))
    [
      "{}"; "[]"; "null"; "-1.5e-3"; "\"a\\u00e9\\n\"";
      "{\"a\":[1,2,{\"b\":false}],\"c\":null}";
    ];
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "invalid %s" s) false (Obs.Json.valid s))
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "{} trailing";
      "{\"a\" 1}"; "[01]";
    ]

let test_exporters () =
  let clock, set = fake_clock () in
  let tl = T.create ~clock ~capacity:8 () in
  T.begin_span tl ~track:0 "run";
  set 0.5;
  T.sample tl ~track:2 "q\"uote" 1.25;
  set 1.0;
  T.end_span tl ~track:0 "run";
  let trace = Obs.Export.chrome_trace ~process_name:"test" tl in
  Alcotest.(check bool) "chrome trace is valid JSON" true (Obs.Json.valid trace);
  Alcotest.(check bool) "has traceEvents" true (contains trace "traceEvents");
  let csv = Obs.Export.timeline_csv tl in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int)
    "csv: dropped line + header + one row per event" 5 (List.length lines);
  Alcotest.(check string) "csv dropped line" "# dropped=0" (List.hd lines);
  Alcotest.(check string) "csv header" "ts_s,track,kind,name,value"
    (List.nth lines 1);
  Alcotest.(check bool) "chrome trace carries dropped" true
    (contains trace "\"dropped\":\"0\"");
  let reg = R.create () in
  R.add (R.counter reg "n") 3;
  let mj = Obs.Export.metrics_json ~meta:[ ("proto", "tr\"ee") ] (R.snapshot reg) in
  Alcotest.(check bool) "metrics JSON valid" true (Obs.Json.valid mj)

(* Perfetto flow events: each stored child whose parent is also stored
   yields exactly one "s"/"f" pair sharing the child's node id; children
   whose parent missed the sampled store are skipped entirely rather than
   emitted as dangling halves. *)
let test_flow_events () =
  let module J = Obs.Json in
  let module L = Obs.Lineage in
  let clock, set = fake_clock () in
  let tl = T.create ~clock ~capacity:8 () in
  T.begin_span tl ~track:0 "run";
  set 1.0;
  T.end_span tl ~track:0 "run";
  (* Chain 1 -> 2 -> 3 plus an unrelated root 4: flows for children 2, 3. *)
  let lin = L.create ~sample_every:1 ~clock () in
  L.bind lin ~n_vertices:4 ~n_edges:4;
  L.note lin ~id:1 ~parent:0 ~depth:1 ~edge:(-1) ~vertex:0 ~track:0;
  L.note lin ~id:2 ~parent:1 ~depth:2 ~edge:0 ~vertex:1 ~track:0;
  L.note lin ~id:3 ~parent:2 ~depth:3 ~edge:1 ~vertex:2 ~track:1;
  L.note lin ~id:4 ~parent:0 ~depth:1 ~edge:(-1) ~vertex:3 ~track:0;
  let trace = Obs.Export.chrome_trace ~lineage:lin tl in
  Alcotest.(check bool) "trace with flows is valid JSON" true
    (Obs.Json.valid trace);
  let v = Result.get_ok (J.parse trace) in
  let evs =
    match J.member "traceEvents" v with
    | Some (J.Array evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let id_of ev =
    match J.member "id" ev with
    | Some (J.Number n) -> int_of_string n
    | _ -> Alcotest.fail "flow event without numeric id"
  in
  let starts = ref [] and finishes = ref [] in
  List.iter
    (fun ev ->
      match J.member "ph" ev with
      | Some (J.String "s") -> starts := id_of ev :: !starts
      | Some (J.String "f") ->
          (match J.member "bp" ev with
          | Some (J.String "e") -> ()
          | _ -> Alcotest.fail "\"f\" event without bp=e");
          finishes := id_of ev :: !finishes
      | _ -> ())
    evs;
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "one pair per stored child" [ 2; 3 ]
    (sorted !starts);
  Alcotest.(check (list int)) "every \"s\" matched by an \"f\""
    (sorted !starts) (sorted !finishes);
  Alcotest.(check int) "flow ids unique" (List.length !starts)
    (List.length (List.sort_uniq compare !starts));
  Alcotest.(check bool) "otherData carries lineage_dropped" true
    (contains trace "\"lineage_dropped\":\"0\"");
  (* sample_every:2 stores ids {1, 3}; child 3's parent 2 is missing, so
     no flow events at all — never a dangling half. *)
  let part = L.create ~sample_every:2 ~clock () in
  L.bind part ~n_vertices:4 ~n_edges:4;
  L.note part ~id:1 ~parent:0 ~depth:1 ~edge:(-1) ~vertex:0 ~track:0;
  L.note part ~id:2 ~parent:1 ~depth:2 ~edge:0 ~vertex:1 ~track:0;
  L.note part ~id:3 ~parent:2 ~depth:3 ~edge:1 ~vertex:2 ~track:0;
  let trace2 = Obs.Export.chrome_trace ~lineage:part tl in
  Alcotest.(check bool) "partial-store trace valid" true
    (Obs.Json.valid trace2);
  Alcotest.(check bool) "no dangling flow halves" false
    (contains trace2 "\"ph\":\"s\"")

(* {1 Trace satellites: growable storage, iter/to_csv, per-vertex tallies} *)

let mk_event step fv fp tv tp bits : E.event =
  {
    E.step;
    seq = step;
    from_vertex = fv;
    from_port = fp;
    to_vertex = tv;
    to_port = tp;
    bits;
  }

let test_trace_accessors () =
  let tr = Runtime.Trace.create () in
  (* Push past the initial capacity to exercise the doubling. *)
  for i = 0 to 40 do
    Runtime.Trace.hook tr (mk_event i (i mod 3) (i mod 2) ((i + 1) mod 4) 0 5) ()
  done;
  Alcotest.(check int) "length" 41 (Runtime.Trace.length tr);
  let via_iter = ref [] in
  Runtime.Trace.iter (fun ev -> via_iter := ev :: !via_iter) tr;
  Alcotest.(check bool) "iter agrees with events" true
    (List.rev !via_iter = Runtime.Trace.events tr);
  let csv = Runtime.Trace.to_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "csv rows" 42 (List.length lines);
  Alcotest.(check string) "csv header"
    "step,from_vertex,from_port,to_vertex,to_port,bits" (List.hd lines);
  Alcotest.(check string) "csv first row" "0,0,0,1,0,5" (List.nth lines 1);
  let rendered = Runtime.Trace.render ~limit:2 tr in
  Alcotest.(check bool) "render truncation notice" true
    (contains rendered "39 more deliveries")

let test_trace_first_use_and_receives () =
  let tr = Runtime.Trace.create () in
  List.iter
    (fun (s, fv, fp, tv) -> Runtime.Trace.hook tr (mk_event s fv fp tv 0 1) ())
    [ (0, 0, 0, 1); (1, 0, 1, 2); (2, 0, 0, 1); (3, 1, 0, 2); (4, 1, 0, 2) ];
  Alcotest.(check (list (pair (pair int int) int)))
    "edge_first_use keeps first step, first-use order"
    [ ((0, 0), 0); ((0, 1), 1); ((1, 0), 3) ]
    (Runtime.Trace.edge_first_use tr);
  Alcotest.(check (list int)) "receives_per_vertex" [ 0; 2; 3 ]
    (Array.to_list (Runtime.Trace.receives_per_vertex tr ~n:3));
  Alcotest.(check (list int)) "sends_per_vertex" [ 3; 2; 0 ]
    (Array.to_list (Runtime.Trace.sends_per_vertex tr ~n:3))

let test_trace_on_real_run () =
  let module En = Runtime.Engine.Make (Anonet.Tree_broadcast) in
  let g = F.comb 6 in
  let tr = Runtime.Trace.create () in
  let r = En.run ~on_deliver:(Runtime.Trace.hook tr) g in
  Alcotest.check outcome "terminated" E.Terminated r.E.outcome;
  Alcotest.(check int) "trace caught every delivery" r.E.deliveries
    (Runtime.Trace.length tr);
  (* On a grounded tree every edge carries exactly one message (Lemma 3.3),
     so first-use covers every edge and receive counts equal in-degrees. *)
  Alcotest.(check int) "every edge used"
    (Digraph.n_edges g)
    (List.length (Runtime.Trace.edge_first_use tr));
  let recv = Runtime.Trace.receives_per_vertex tr ~n:(Digraph.n_vertices g) in
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "receives at %d = in-degree" v)
        (Digraph.in_degree g v) recv.(v))
    (Digraph.vertices g);
  Alcotest.(check int) "receives sum to deliveries" r.E.deliveries
    (Array.fold_left ( + ) 0 recv)

(* {1 Percentile boundary regression (satellite)} *)

let test_percentile_boundaries () =
  let feq = Alcotest.(check (float 1e-9)) in
  feq "p100 lands on the last element" 9.0
    (Metrics.percentile 100.0 [ 1.0; 5.0; 9.0 ]);
  feq "p0 lands on the first" 1.0 (Metrics.percentile 0.0 [ 1.0; 5.0; 9.0 ]);
  feq "singleton at p100" 7.0 (Metrics.percentile 100.0 [ 7.0 ]);
  feq "singleton at p0" 7.0 (Metrics.percentile 0.0 [ 7.0 ]);
  (* A p arbitrarily close to 100 must stay in bounds. *)
  let xs = List.init 1000 (fun i -> float_of_int i) in
  feq "p99.9999999 bounded" 999.0
    (Float.round (Metrics.percentile 99.9999999 xs))

(* {1 Reconciliation: Obs counters vs engine/explorer/par reports} *)

let counter_of snap name =
  match R.find snap name with
  | Some v -> v
  | None -> Alcotest.failf "counter %s missing" name

let test_engine_reconciles_fault_free () =
  let module En = Runtime.Engine.Make (Anonet.General_broadcast) in
  let g =
    F.random_digraph (Prng.create 11) ~n:24 ~extra_edges:24 ~back_edges:6
      ~t_edge_prob:0.2
  in
  let o = Obs.create ~sample_every:7 () in
  let r = En.run ~obs:o g in
  let snap = R.snapshot o.Obs.registry in
  Alcotest.(check int) "deliveries" r.E.deliveries (counter_of snap "engine.deliveries");
  Alcotest.(check int) "total bits" r.E.total_bits (counter_of snap "engine.total_bits");
  Alcotest.(check (option int)) "residual gauge is zero" (Some 0)
    (R.find snap "engine.cut_residual");
  (match R.find_histogram snap "engine.message_bits" with
  | Some (count, sum, _) ->
      Alcotest.(check int) "histogram count = deliveries" r.E.deliveries count;
      Alcotest.(check int) "histogram sum = total bits" r.E.total_bits sum
  | None -> Alcotest.fail "message_bits histogram missing");
  Alcotest.(check bool) "trace of the run is valid JSON" true
    (Obs.Json.valid (Obs.Export.chrome_trace o.Obs.timeline))

let prop_engine_reconciles_under_faults =
  qcheck_to_alcotest ~count:30 "obs counters == report under faults"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let module En = Runtime.Engine.Make (Anonet.General_broadcast) in
      let g =
        F.random_digraph (Prng.create seed) ~n:14 ~extra_edges:10 ~back_edges:4
          ~t_edge_prob:0.25
      in
      let faults =
        Runtime.Faults.create ~drop:0.08 ~duplicate:0.15 ~max_delay:2
          ~corrupt:0.05 ~seed ()
      in
      let o = Obs.create ~sample_every:13 () in
      let r = En.run ~faults ~step_limit:200_000 ~obs:o g in
      let snap = R.snapshot o.Obs.registry in
      let f = r.E.fault_stats in
      counter_of snap "engine.deliveries" = r.E.deliveries
      && counter_of snap "engine.total_bits" = r.E.total_bits
      && counter_of snap "engine.dropped_copies" = f.E.dropped_copies
      && counter_of snap "engine.extra_copies" = f.E.extra_copies
      && counter_of snap "engine.delayed_copies" = f.E.delayed_copies
      && counter_of snap "engine.corrupted_deliveries" = f.E.corrupted_deliveries
      && counter_of snap "engine.garbled_drops" = f.E.garbled_drops)

let test_obs_accumulates_across_runs () =
  let module En = Runtime.Engine.Make (Anonet.Tree_broadcast) in
  let g = F.comb 8 in
  let o = Obs.create ~sample_every:5 () in
  let r1 = En.run ~obs:o g in
  let r2 = En.run ~obs:o g in
  let snap = R.snapshot o.Obs.registry in
  Alcotest.(check int) "two runs accumulate"
    (r1.E.deliveries + r2.E.deliveries)
    (counter_of snap "engine.deliveries")

let test_par_reconciles () =
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  let g = F.random_layered_large (Prng.create 5) ~target_edges:3_000 in
  let o = Obs.create ~sample_every:64 () in
  let r = Pn.run ~domains:3 ~obs:o g in
  let snap = R.snapshot o.Obs.registry in
  Alcotest.(check int) "par.deliveries == report" r.E.deliveries
    (counter_of snap "par.deliveries");
  let shard_sum =
    List.fold_left
      (fun acc (name, entry) ->
        match entry with
        | R.Counter v
          when String.length name > 9
               && String.sub name 0 9 = "par.shard"
               && String.length name > 11
               && String.sub name (String.length name - 11) 11 = ".deliveries"
          ->
            acc + v
        | _ -> acc)
      0 snap
  in
  Alcotest.(check int) "per-shard counters sum to the total" r.E.deliveries
    shard_sum;
  Alcotest.(check bool) "par trace valid" true
    (Obs.Json.valid (Obs.Export.chrome_trace o.Obs.timeline))

let test_explore_reconciles () =
  let cases = Anonet.Check_suite.cases ~max_edges:6 () in
  let c = List.hd cases in
  let o = Obs.create ~sample_every:16 () in
  let r = c.Anonet.Check_suite.c_explore ~obs:o () in
  let snap = R.snapshot o.Obs.registry in
  let st = r.Runtime.Explore.stats in
  Alcotest.(check int) "states" st.Runtime.Explore.states
    (counter_of snap "explore.states");
  Alcotest.(check int) "transitions" st.Runtime.Explore.transitions
    (counter_of snap "explore.transitions");
  Alcotest.(check int) "pruned_sleep" st.Runtime.Explore.pruned_sleep
    (counter_of snap "explore.pruned_sleep");
  Alcotest.(check int) "pruned_memo" st.Runtime.Explore.pruned_memo
    (counter_of snap "explore.pruned_memo");
  Alcotest.(check int) "pruned_dup" st.Runtime.Explore.pruned_dup
    (counter_of snap "explore.pruned_dup");
  Alcotest.(check int) "walks" st.Runtime.Explore.walks
    (counter_of snap "explore.walks")

let test_obs_create_validates () =
  Alcotest.check_raises "sample_every < 1"
    (Invalid_argument "Obs.create: sample_every < 1") (fun () ->
      ignore (Obs.create ~sample_every:0 ()))

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "cells" `Quick test_registry_cells;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "snapshot + diff + json" `Quick test_snapshot_diff;
          Alcotest.test_case "merge rollup" `Quick test_merge_rollup;
          Alcotest.test_case "json value round-trip" `Quick test_json_value_roundtrip;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "events" `Quick test_timeline_events;
          Alcotest.test_case "ring wrap" `Quick test_timeline_ring;
        ] );
      ( "export",
        [
          Alcotest.test_case "json validator" `Quick test_json_validator;
          Alcotest.test_case "chrome trace + csv + metrics" `Quick test_exporters;
          Alcotest.test_case "flow-event pairing" `Quick test_flow_events;
        ] );
      ( "trace",
        [
          Alcotest.test_case "growable accessors" `Quick test_trace_accessors;
          Alcotest.test_case "first-use + per-vertex" `Quick
            test_trace_first_use_and_receives;
          Alcotest.test_case "real run" `Quick test_trace_on_real_run;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile boundaries" `Quick
            test_percentile_boundaries;
        ] );
      ( "reconciliation",
        [
          Alcotest.test_case "engine fault-free" `Quick
            test_engine_reconciles_fault_free;
          prop_engine_reconciles_under_faults;
          Alcotest.test_case "accumulates across runs" `Quick
            test_obs_accumulates_across_runs;
          Alcotest.test_case "par shards" `Quick test_par_reconciles;
          Alcotest.test_case "explore" `Quick test_explore_reconciles;
          Alcotest.test_case "create validates" `Quick test_obs_create_validates;
        ] );
    ]
