(* Vertex-level fault plans (Vfaults), the self-healing supervisor, the
   Redundant checksum-reject accounting and the campaign shrink memo. *)

open Helpers
module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Fl = Runtime.Faults
module V = Runtime.Vfaults
module C = Runtime.Campaign

let fate =
  let pp fmt (f : V.fate) =
    Format.pp_print_string fmt
      (match f with
      | V.Deliver -> "deliver"
      | V.Stutter -> "stutter"
      | V.Down_drop -> "down-drop"
      | V.Crash (r, d) ->
          Printf.sprintf "crash(%s,%d)" (V.describe_recovery r) d)
  in
  Alcotest.testable pp ( = )

(* {1 Instance semantics} *)

let test_script_clock_and_restart () =
  let vf = V.script [ V.event ~vertex:1 ~at:2 ~downtime:2 () ] in
  let i = V.Instance.start vf in
  (* Vertex 1: deliver, crash on the 2nd, swallow 2 while down, recover. *)
  let offer () = V.Instance.on_deliver i ~vertex:1 in
  Alcotest.check fate "1st delivers" V.Deliver (offer ());
  Alcotest.check fate "2nd crashes" (V.Crash (V.Amnesia, 2)) (offer ());
  Alcotest.check fate "3rd swallowed" V.Down_drop (offer ());
  Alcotest.(check bool) "down while draining" false (V.Instance.is_up i ~vertex:1);
  Alcotest.check fate "4th swallowed, then restart" V.Down_drop (offer ());
  Alcotest.check fate "5th delivers again" V.Deliver (offer ());
  Alcotest.(check bool) "back up" true (V.Instance.is_up i ~vertex:1);
  (* An unscripted vertex is untouched. *)
  Alcotest.check fate "vertex 2 healthy" V.Deliver
    (V.Instance.on_deliver i ~vertex:2);
  Alcotest.(check int) "one crash" 1 (V.Instance.crashes i);
  Alcotest.(check int) "one restart" 1 (V.Instance.restarts i);
  Alcotest.(check int) "two down-drops" 2 (V.Instance.down_drops i);
  Alcotest.(check (list int)) "nobody stopped" [] (V.Instance.stopped i)

let test_crash_stop_is_permanent () =
  let vf = V.script [ V.event ~vertex:3 ~at:1 ~recovery:V.Stop () ] in
  let i = V.Instance.start vf in
  Alcotest.check fate "crashes immediately" (V.Crash (V.Stop, 1))
    (V.Instance.on_deliver i ~vertex:3);
  for _ = 1 to 10 do
    Alcotest.check fate "dead forever" V.Down_drop
      (V.Instance.on_deliver i ~vertex:3)
  done;
  Alcotest.(check bool) "never up again" false (V.Instance.is_up i ~vertex:3);
  Alcotest.(check (list int)) "listed as stopped" [ 3 ] (V.Instance.stopped i);
  Alcotest.(check int) "no restart" 0 (V.Instance.restarts i)

let test_uniform_stutter_swallows () =
  let vf = V.uniform (V.plan ~stutter:1.0 ()) ~seed:4 in
  let i = V.Instance.start vf in
  for _ = 1 to 5 do
    Alcotest.check fate "always stutters" V.Stutter
      (V.Instance.on_deliver i ~vertex:2)
  done;
  Alcotest.(check int) "counted" 5 (V.Instance.stuttered i);
  Alcotest.(check int) "no crash" 0 (V.Instance.crashes i)

(* {1 Engine integration} *)

(* Three parallel edges into vertex 1: the crash eats the first copy, the
   downtime the second, and the third is delivered after the restart — so
   flooding still covers the graph and the counters are schedule-free. *)
let triple_edge () = G.make ~n:3 ~s:0 ~t:2 [ (0, 1); (0, 1); (0, 1); (1, 2) ]

let test_amnesia_heals_given_redundant_copies () =
  let vfaults = V.script [ V.event ~vertex:1 ~at:1 ~downtime:1 () ] in
  let r = Anonet.Flood_engine.run ~vfaults (triple_edge ()) in
  Alcotest.(check bool) "all visited" true (Array.for_all Fun.id r.E.visited);
  Alcotest.(check int) "one crash" 1 r.E.vfault_stats.E.crashes;
  Alcotest.(check int) "one restart" 1 r.E.vfault_stats.E.restarts;
  Alcotest.(check int) "one down-drop" 1 r.E.vfault_stats.E.down_drops;
  Alcotest.(check bool) "state bits were lost" true
    (r.E.vfault_stats.E.lost_state_bits >= 0)

let test_amnesia_starves_bare_flood_on_a_path () =
  let g = F.path 4 in
  let vfaults = V.script [ V.event ~vertex:1 ~at:1 ~downtime:1 () ] in
  let r = Anonet.Flood_engine.run ~vfaults g in
  Alcotest.(check bool) "vertex 1 unreached" false r.E.visited.(1);
  Alcotest.(check bool) "downstream starves" false r.E.visited.(2);
  Alcotest.(check int) "crashed once" 1 r.E.vfault_stats.E.crashes;
  Alcotest.(check int) "no later delivery, so no restart" 0
    r.E.vfault_stats.E.restarts

let test_crash_stop_engine_counters () =
  let vfaults = V.script [ V.event ~vertex:1 ~at:1 ~recovery:V.Stop () ] in
  let r = Anonet.Flood_engine.run ~vfaults (triple_edge ()) in
  Alcotest.(check bool) "stopped vertex unvisited" false r.E.visited.(1);
  Alcotest.(check (list int)) "reported stopped" [ 1 ]
    r.E.vfault_stats.E.stopped_vertices;
  Alcotest.(check int) "two copies swallowed dead" 2
    r.E.vfault_stats.E.down_drops

(* {1 Supervisor} *)

(* On a path every vertex has exactly one in-edge, so a crash swallows the
   only copy and the bare run starves; the supervisor's retransmission
   rounds must push the message through the downtime and terminate. *)
let test_supervisor_heals_crash_on_path () =
  let g = F.path 5 in
  let vfaults =
    V.script [ V.event ~vertex:1 ~at:1 ~downtime:1 ~recovery:V.Restore () ]
  in
  let bare = Anonet.Tree_engine.run ~vfaults g in
  Alcotest.(check bool) "bare run does not terminate" true
    (bare.E.outcome <> E.Terminated);
  let r =
    Anonet.Tree_engine.run ~vfaults ~supervisor:Runtime.Supervisor.default g
  in
  if r.E.outcome <> E.Terminated then
    Alcotest.fail ("supervised run should terminate: " ^ report_summary r);
  Alcotest.(check bool) "all visited" true (Array.for_all Fun.id r.E.visited);
  Alcotest.(check bool) "retransmissions happened" true
    (r.E.vfault_stats.E.replayed > 0);
  Alcotest.(check int) "one crash" 1 r.E.vfault_stats.E.crashes;
  Alcotest.(check int) "one restart" 1 r.E.vfault_stats.E.restarts

let test_supervisor_fault_free_overhead_is_zero () =
  for seed = 1 to 10 do
    let g =
      F.random_digraph (Prng.create seed) ~n:14 ~extra_edges:8 ~back_edges:3
        ~t_edge_prob:0.25
    in
    let bare = Anonet.General_engine.run g in
    let sup =
      Anonet.General_engine.run ~supervisor:Runtime.Supervisor.default g
    in
    Alcotest.check outcome "same outcome" bare.E.outcome sup.E.outcome;
    Alcotest.(check int) "identical deliveries" bare.E.deliveries
      sup.E.deliveries;
    Alcotest.(check int) "identical bits" bare.E.total_bits sup.E.total_bits;
    Alcotest.(check int) "no retransmission fired" 0
      sup.E.vfault_stats.E.replayed;
    Alcotest.(check int) "checkpointed every delivery" sup.E.deliveries
      sup.E.vfault_stats.E.checkpoints
  done

let test_escalation_stops_when_nothing_lost () =
  let g = F.path 4 in
  let e = Anonet.Resilient.run_escalating (module Anonet.Tree_broadcast) g in
  Alcotest.(check bool) "fault-free run terminates at k0" true e.terminated;
  Alcotest.(check int) "never escalated" 1 e.final_k;
  Alcotest.(check int) "single attempt" 1 (List.length e.attempts)

let test_escalation_raises_k_under_loss () =
  (* Heavy drops starve the bare protocol but leave observable loss, so the
     policy must double k at least once; with the supervisor retransmitting
     on top, higher k eventually terminates on most seeds. *)
  let g = F.path 4 in
  let faults = Fl.create ~drop:0.55 ~seed:3 () in
  let e =
    Anonet.Resilient.run_escalating ~faults ~k_max:16
      (module Anonet.Tree_broadcast)
      g
  in
  Alcotest.(check bool) "escalated past k0" true (e.final_k > 1);
  Alcotest.(check bool) "attempt list matches final k" true
    (List.length e.attempts > 1)

(* {1 Vfaults + edge faults reconciled with Obs} *)

let test_obs_counters_reconcile_exactly () =
  let g =
    F.random_digraph (Prng.create 7) ~n:16 ~extra_edges:10 ~back_edges:4
      ~t_edge_prob:0.25
  in
  let obs = Obs.create () in
  let faults = Fl.create ~drop:0.1 ~corrupt:0.1 ~seed:5 () in
  let vfaults =
    V.uniform (V.plan ~crash:0.1 ~max_downtime:3 ~stutter:0.05 ()) ~seed:9
  in
  let r =
    Anonet.General_engine.run ~faults ~vfaults
      ~supervisor:Runtime.Supervisor.default ~obs g
  in
  let c name = Obs.Registry.(value (counter obs.Obs.registry name)) in
  Alcotest.(check int) "crashes" r.E.vfault_stats.E.crashes
    (c "engine.crashes");
  Alcotest.(check int) "restarts" r.E.vfault_stats.E.restarts
    (c "engine.restarts");
  Alcotest.(check int) "lost state bits" r.E.vfault_stats.E.lost_state_bits
    (c "engine.lost_state_bits");
  Alcotest.(check int) "down drops" r.E.vfault_stats.E.down_drops
    (c "engine.down_drops");
  Alcotest.(check int) "stuttered" r.E.vfault_stats.E.stuttered
    (c "engine.stuttered");
  Alcotest.(check int) "checkpoints" r.E.vfault_stats.E.checkpoints
    (c "engine.checkpoints");
  Alcotest.(check int) "replayed" r.E.vfault_stats.E.replayed
    (c "engine.replayed");
  Alcotest.(check int) "checksum rejects" r.E.fault_stats.E.checksum_rejects
    (c "engine.checksum_rejects");
  Alcotest.(check bool) "something actually happened" true
    (r.E.vfault_stats.E.crashes > 0 || r.E.vfault_stats.E.stuttered > 0)

let test_vfaulty_runs_reproducible () =
  let g =
    F.random_digraph (Prng.create 13) ~n:14 ~extra_edges:8 ~back_edges:3
      ~t_edge_prob:0.25
  in
  let run () =
    let faults = Fl.create ~drop:0.1 ~duplicate:0.1 ~max_delay:2 ~seed:21 () in
    let vfaults =
      V.uniform (V.plan ~crash:0.08 ~max_downtime:2 ~stutter:0.05 ()) ~seed:22
    in
    Anonet.General_engine.run ~faults ~vfaults
      ~supervisor:Runtime.Supervisor.default g
  in
  let a = run () and b = run () in
  Alcotest.check outcome "same outcome" a.E.outcome b.E.outcome;
  Alcotest.(check int) "same deliveries" a.E.deliveries b.E.deliveries;
  Alcotest.(check bool) "same vfault stats" true
    (a.E.vfault_stats = b.E.vfault_stats);
  Alcotest.(check bool) "same fault stats" true
    (a.E.fault_stats = b.E.fault_stats)

(* {1 Sequential vs sharded parity} *)

(* Flood sends once per edge, so each vertex is offered exactly in-degree
   copies; with a scripted crash the fates depend only on that per-vertex
   clock, never on the interleaving — the sharded engine must agree. *)
let test_sharded_vfault_parity () =
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  for seed = 1 to 8 do
    let g =
      F.random_digraph (Prng.create seed) ~n:20 ~extra_edges:12 ~back_edges:4
        ~t_edge_prob:0.25
    in
    let vfaults =
      V.script
        [
          V.event ~vertex:1 ~at:1 ~downtime:1 ();
          V.event ~vertex:2 ~at:1 ~recovery:V.Stop ();
          V.event ~vertex:3 ~at:2 ~downtime:2 ~recovery:V.Restore ();
        ]
    in
    let s = Anonet.Flood_engine.run ~vfaults g in
    let p = Pn.run ~domains:2 ~vfaults g in
    Alcotest.(check int) "same crashes" s.E.vfault_stats.E.crashes
      p.E.vfault_stats.E.crashes;
    Alcotest.(check int) "same restarts" s.E.vfault_stats.E.restarts
      p.E.vfault_stats.E.restarts;
    Alcotest.(check int) "same down drops" s.E.vfault_stats.E.down_drops
      p.E.vfault_stats.E.down_drops;
    Alcotest.(check (list int)) "same stopped set"
      s.E.vfault_stats.E.stopped_vertices p.E.vfault_stats.E.stopped_vertices;
    Alcotest.(check bool) "same coverage" true (s.E.visited = p.E.visited);
    Alcotest.(check int) "same deliveries" s.E.deliveries p.E.deliveries
  done

(* {1 Redundant checksum rejections} *)

module K3 = struct
  let k = 3
end

module General_r3 = Anonet.Redundant.Make (K3) (Anonet.General_broadcast)
module R3_engine = Runtime.Engine.Make (General_r3)

let test_corruption_heavy_redundant_rejects_and_stays_sound () =
  let total_rejects = ref 0 in
  for seed = 1 to 15 do
    let g =
      F.random_digraph (Prng.create seed) ~n:12 ~extra_edges:8 ~back_edges:3
        ~t_edge_prob:0.25
    in
    let faults = Fl.create ~corrupt:0.25 ~seed () in
    let r = R3_engine.run ~faults g in
    total_rejects := !total_rejects + r.E.fault_stats.E.checksum_rejects;
    (* Detected corruption degrades to a drop: soundness must survive. *)
    if r.E.outcome = E.Terminated then begin
      let reach = G.reachable_from_s g in
      if
        List.exists
          (fun v -> reach.(v) && not r.E.visited.(v))
          (G.vertices g)
      then Alcotest.fail ("false termination under corruption: " ^ report_summary r)
    end
  done;
  Alcotest.(check bool) "checksums actually fired" true (!total_rejects > 50)

let test_bare_protocol_never_checksum_rejects () =
  let g =
    F.random_digraph (Prng.create 2) ~n:12 ~extra_edges:8 ~back_edges:3
      ~t_edge_prob:0.25
  in
  let faults = Fl.create ~corrupt:0.25 ~seed:2 () in
  let r = Anonet.General_engine.run ~faults g in
  Alcotest.(check int) "no checksum layer, no rejects" 0
    r.E.fault_stats.E.checksum_rejects;
  Alcotest.(check bool) "corruption lands as deliveries or garbles" true
    (r.E.fault_stats.E.corrupted_deliveries + r.E.fault_stats.E.garbled_drops
    > 0)

(* {1 Campaign shrink memo} *)

module General_runner = C.Of_protocol (Anonet.General_broadcast)

let general_case =
  {
    C.g_name = "random-digraph-12";
    build =
      (fun ~seed ->
        F.random_digraph (Prng.create seed) ~n:12 ~extra_edges:8 ~back_edges:3
          ~t_edge_prob:0.25);
  }

(* Many seeds of one failing cell share one canonical (runner, graph, plan)
   key, so even with a shrink budget of 1 every violation must carry a
   shrunk witness — and the same one. *)
let test_shrink_memo_dedupes_identical_failures () =
  let seeds = List.init 60 (fun i -> i + 1) in
  let res =
    C.run ~step_limit:300_000 ~max_shrinks:1
      ~runners:[ General_runner.runner () ]
      ~graphs:[ general_case ]
      ~grid:[ C.point ~duplicate:0.35 () ]
      ~seeds ()
  in
  match res.C.violations with
  | [] -> Alcotest.fail "expected duplication violations"
  | v0 :: _ as vs ->
      Alcotest.(check bool) "several seeds hit the same cell" true
        (List.length vs > 1);
      List.iter
        (fun v ->
          Alcotest.(check string) "memoized shrink shared by all"
            v0.C.shrunk_point.C.label v.C.shrunk_point.C.label;
          Alcotest.(check int) "memoized seed shared by all" v0.C.shrunk_seed
            v.C.shrunk_seed;
          Alcotest.(check bool) "shrunk rate <= original" true
            (v.C.shrunk_point.C.fault_plan.Fl.duplicate
            <= v.C.v_point.C.fault_plan.Fl.duplicate))
        vs

let () =
  Alcotest.run "vfaults"
    [
      ( "instance",
        [
          Alcotest.test_case "script clock + restart" `Quick
            test_script_clock_and_restart;
          Alcotest.test_case "crash-stop permanent" `Quick
            test_crash_stop_is_permanent;
          Alcotest.test_case "uniform stutter" `Quick
            test_uniform_stutter_swallows;
        ] );
      ( "engine",
        [
          Alcotest.test_case "amnesia healed by redundant copies" `Quick
            test_amnesia_heals_given_redundant_copies;
          Alcotest.test_case "amnesia starves bare flood" `Quick
            test_amnesia_starves_bare_flood_on_a_path;
          Alcotest.test_case "crash-stop counters" `Quick
            test_crash_stop_engine_counters;
          Alcotest.test_case "vfaulty runs reproducible" `Quick
            test_vfaulty_runs_reproducible;
          Alcotest.test_case "sharded parity" `Quick test_sharded_vfault_parity;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "heals crash on a path" `Quick
            test_supervisor_heals_crash_on_path;
          Alcotest.test_case "fault-free overhead zero" `Quick
            test_supervisor_fault_free_overhead_is_zero;
          Alcotest.test_case "escalation stops without loss" `Quick
            test_escalation_stops_when_nothing_lost;
          Alcotest.test_case "escalation raises k under loss" `Quick
            test_escalation_raises_k_under_loss;
        ] );
      ( "obs",
        [
          Alcotest.test_case "counters reconcile exactly" `Quick
            test_obs_counters_reconcile_exactly;
        ] );
      ( "redundant",
        [
          Alcotest.test_case "corruption-heavy rejects, stays sound" `Quick
            test_corruption_heavy_redundant_rejects_and_stays_sound;
          Alcotest.test_case "bare protocol never rejects" `Quick
            test_bare_protocol_never_checksum_rejects;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "shrink memo dedupes identical failures" `Quick
            test_shrink_memo_dedupes_identical_failures;
        ] );
    ]
