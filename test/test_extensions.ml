(* Tests for the model extensions the paper claims in Section 2 and the
   engine features supporting them: synchronous execution, multi-out-degree
   roots, channel faults, on-wire codec verification, and the memory
   (state-space) quality measure. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
open Helpers

module Sync_general = Runtime.Sync_engine.Make (Anonet.General_broadcast)
module Sync_tree = Runtime.Sync_engine.Make (Anonet.Tree_broadcast)
module Sync_dag = Runtime.Sync_engine.Make (Anonet.Dag_broadcast_pow2)
module Sync_label = Runtime.Sync_engine.Make (Anonet.Labeling)
module Sync_map = Runtime.Sync_engine.Make (Anonet.Mapping)

(* {1 Synchronous engine} *)

let test_sync_rounds_on_path () =
  (* s -> v1 -> ... -> vn -> t: the commodity needs exactly n+1 rounds. *)
  List.iter
    (fun n ->
      let r = Sync_tree.run (F.path n) in
      Alcotest.check outcome "terminates" E.Terminated r.base.outcome;
      Alcotest.(check int) (Printf.sprintf "rounds on path %d" n) (n + 1) r.rounds)
    [ 1; 3; 10; 50 ]

let test_sync_matches_async_outcome () =
  List.iter
    (fun (name, g) ->
      let sync = Sync_general.run g in
      let asy = Anonet.broadcast_general g in
      Alcotest.check outcome (name ^ ": same outcome") asy.outcome
        sync.base.outcome)
    [
      ("comb", F.comb 6);
      ("grid", F.grid_dag ~rows:3 ~cols:3);
      ("cycle", F.cycle_with_exit ~k:5);
      ("fig8", F.figure_eight ());
      ("trap", F.add_trap (F.diamond ()) ~from_vertex:1);
    ]

let test_sync_dag_rounds_are_depth () =
  (* On a grid the DAG protocol's round count is the longest s->t path. *)
  let r = Sync_dag.run (F.grid_dag ~rows:3 ~cols:4) in
  Alcotest.check outcome "terminated" E.Terminated r.base.outcome;
  (* s -> (0,0) -> ... -> (2,3) -> t: 1 + (rows-1 + cols-1) + 1 + 1 hops. *)
  Alcotest.(check int) "rounds = depth" 7 r.rounds

let prop_sync_general_correct =
  qcheck_to_alcotest ~count:60 "sync general broadcast correct on digraphs"
    arb_digraph (fun g ->
      let r = Sync_general.run g in
      r.base.outcome = E.Terminated
      && Array.for_all (fun v -> v) r.base.visited
      && r.rounds > 0)

let prop_sync_labeling_valid =
  qcheck_to_alcotest ~count:40 "sync labeling yields disjoint labels" arb_digraph
    (fun g ->
      let r = Sync_label.run g in
      let labels =
        List.map (fun v -> Anonet.Labeling.label r.base.states.(v))
          (G.internal_vertices g)
      in
      r.base.outcome = E.Terminated
      && List.for_all (fun l -> not (Is.is_empty l)) labels
      && pairwise_disjoint labels)

let prop_sync_mapping_reconstructs =
  qcheck_to_alcotest ~count:30 "sync mapping reconstructs" arb_digraph (fun g ->
      let r = Sync_map.run g in
      r.base.outcome = E.Terminated
      &&
      match Anonet.Mapping.extract_map r.base.states.(G.terminal g) with
      | Ok m -> Anonet.Mapping.map_isomorphic m g
      | Error _ -> false)

(* {1 Multi-out-degree roots (Section 2 extension)} *)

let widen seed g = F.widen_root (Prng.create seed) g ~extra:3

let test_multi_root_validate () =
  let g = widen 5 (F.grid_dag ~rows:3 ~cols:3) in
  Alcotest.(check bool) "strict validate rejects" true (G.validate g <> Ok ());
  Alcotest.(check bool) "extended validate accepts" true
    (G.validate ~allow_multi_root:true g = Ok ());
  Alcotest.(check int) "root out-degree 4" 4 (G.out_degree g (G.source g))

let prop_multi_root_protocols_correct =
  qcheck_to_alcotest ~count:50 "protocols correct with multi-edge roots"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let g = widen seed g in
      let general = Anonet.broadcast_general g in
      let labeling, labels = Anonet.assign_labels g in
      general.outcome = E.Terminated && general.all_visited
      && labeling.outcome = E.Terminated
      && pairwise_disjoint
           (List.map (fun v -> labels.(v)) (G.internal_vertices g)))

let prop_multi_root_dag_conserves =
  qcheck_to_alcotest ~count:50 "multi-root DAG broadcast conserves commodity"
    QCheck.(pair arb_dag (int_bound 1000))
    (fun (g, seed) ->
      let g = widen seed g in
      QCheck.assume (G.is_dag g);
      let r = Anonet.Dag_engine.run g in
      r.outcome = E.Terminated
      && Exact.Dyadic.equal
           (Anonet.Dag_broadcast_pow2.accumulated r.states.(G.terminal g))
           Exact.Dyadic.one)

let prop_multi_root_mapping =
  qcheck_to_alcotest ~count:30 "mapping reconstructs multi-root networks"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let g = widen seed g in
      let r = Anonet.Mapping_engine.run g in
      r.outcome = E.Terminated
      &&
      match Anonet.Mapping.extract_map r.states.(G.terminal g) with
      | Ok m -> Anonet.Mapping.map_isomorphic m g
      | Error _ -> false)

(* {1 Channel faults} *)

let prop_drops_never_false_terminate =
  qcheck_to_alcotest ~count:60 "drops: termination still implies all visited"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let faults = Runtime.Faults.create ~drop:0.15 ~seed () in
      let r = Anonet.General_engine.run ~faults g in
      match r.outcome with
      | E.Terminated -> Array.for_all (fun v -> v) r.visited
      | E.Quiescent -> true
      | E.Step_limit | E.Cancelled -> false)

let prop_drops_safe_for_scalar =
  qcheck_to_alcotest ~count:60 "drops: scalar protocols never falsely terminate"
    QCheck.(pair arb_grounded_tree (int_bound 1000))
    (fun (g, seed) ->
      let faults = Runtime.Faults.create ~drop:0.2 ~seed () in
      let r = Anonet.Tree_engine.run ~faults g in
      match r.outcome with
      | E.Terminated -> Array.for_all (fun v -> v) r.visited
      | E.Quiescent -> true
      | E.Step_limit | E.Cancelled -> false)

(* A duplicated alpha delta is indistinguishable from a detected cycle, so
   even the interval protocol can beta-flood coverage for values whose alpha
   copy is still in flight: false termination.  The paper's exactly-once
   channel assumption is therefore load-bearing — demonstrate it. *)
let test_duplication_breaks_general_broadcast () =
  let broken = ref false in
  let seed = ref 0 in
  while (not !broken) && !seed < 200 do
    incr seed;
    let prng = Prng.create !seed in
    let g =
      F.random_digraph prng ~n:15 ~extra_edges:8 ~back_edges:4 ~t_edge_prob:0.25
    in
    let faults = Runtime.Faults.create ~duplicate:0.3 ~seed:!seed () in
    let r = Anonet.General_engine.run ~faults g in
    if r.outcome = E.Terminated && not (Array.for_all (fun v -> v) r.visited) then
      broken := true
  done;
  Alcotest.(check bool) "duplication can falsely terminate general broadcast" true
    !broken

let prop_duplication_mapping_still_exact =
  qcheck_to_alcotest ~count:25 "duplication: mapping still reconstructs exactly"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let faults = Runtime.Faults.create ~duplicate:0.25 ~seed () in
      let r = Anonet.Mapping_engine.run ~faults g in
      r.outcome = E.Terminated
      &&
      match Anonet.Mapping.extract_map r.states.(G.terminal g) with
      | Ok m -> Anonet.Mapping.map_isomorphic m g
      | Error _ -> false)

let test_duplication_breaks_scalar_conservation () =
  (* The scalar protocols depend on reliable channels (their stated model):
     duplicated commodity either inflates the terminal's total past 1 or
     makes it hit exactly 1 early (false termination). *)
  let g = F.comb 8 in
  let broken = ref false in
  let seed = ref 0 in
  while (not !broken) && !seed < 100 do
    incr seed;
    let faults = Runtime.Faults.create ~duplicate:0.4 ~seed:!seed () in
    let r = Anonet.Tree_engine.run ~faults g in
    let acc = Anonet.Tree_broadcast.accumulated r.states.(G.terminal g) in
    let inflated = Exact.Dyadic.compare acc Exact.Dyadic.one > 0 in
    let false_positive =
      r.outcome = E.Terminated && not (Array.for_all (fun v -> v) r.visited)
    in
    if inflated || false_positive then broken := true
  done;
  Alcotest.(check bool) "duplication breaks scalar conservation" true !broken

(* {1 Wire-codec verification in situ} *)

let test_verify_codec_all_protocols () =
  let g = F.figure_eight () in
  let tree_g = F.comb 6 in
  let dag_g = F.grid_dag ~rows:3 ~cols:3 in
  let check name outcome' =
    Alcotest.check outcome (name ^ " with codec checks") E.Terminated outcome'
  in
  check "tree" (Anonet.Tree_engine.run ~verify_codec:true tree_g).outcome;
  check "tree-naive" (Anonet.Tree_naive_engine.run ~verify_codec:true tree_g).outcome;
  check "dag" (Anonet.Dag_engine.run ~verify_codec:true dag_g).outcome;
  check "general" (Anonet.General_engine.run ~verify_codec:true g).outcome;
  check "labeling" (Anonet.Labeling_engine.run ~verify_codec:true g).outcome;
  check "mapping" (Anonet.Mapping_engine.run ~verify_codec:true g).outcome

let prop_verify_codec_random =
  qcheck_to_alcotest ~count:40 "all wire messages round-trip on random digraphs"
    arb_digraph (fun g ->
      let b = Anonet.General_engine.run ~verify_codec:true g in
      let m = Anonet.Mapping_engine.run ~verify_codec:true g in
      b.outcome = E.Terminated && m.outcome = E.Terminated)

(* {1 State-space (memory) measure} *)

let test_state_bits_reported () =
  let g = F.cycle_with_exit ~k:6 in
  let tree = Anonet.Tree_engine.run (F.comb 6) in
  let general = Anonet.General_engine.run g in
  let mapping = Anonet.Mapping_engine.run g in
  Alcotest.(check bool) "tree states are small" true
    (tree.max_state_bits > 0 && tree.max_state_bits < 200);
  Alcotest.(check bool) "general states bigger" true
    (general.max_state_bits > tree.max_state_bits);
  Alcotest.(check bool) "mapping states biggest" true
    (mapping.max_state_bits > general.max_state_bits)

let prop_state_bits_grow_with_network =
  qcheck_to_alcotest ~count:30 "interval state memory grows with coverage"
    arb_digraph (fun g ->
      let r = Anonet.General_engine.run g in
      (* The terminal ends holding all of [0,1): at least some tens of bits. *)
      r.outcome = E.Terminated && r.max_state_bits >= 16)

let () =
  Alcotest.run "extensions"
    [
      ( "synchronous",
        [
          Alcotest.test_case "rounds on paths" `Quick test_sync_rounds_on_path;
          Alcotest.test_case "matches async outcomes" `Quick
            test_sync_matches_async_outcome;
          Alcotest.test_case "dag rounds = depth" `Quick test_sync_dag_rounds_are_depth;
          prop_sync_general_correct;
          prop_sync_labeling_valid;
          prop_sync_mapping_reconstructs;
        ] );
      ( "multi-root",
        [
          Alcotest.test_case "validate modes" `Quick test_multi_root_validate;
          prop_multi_root_protocols_correct;
          prop_multi_root_dag_conserves;
          prop_multi_root_mapping;
        ] );
      ( "faults",
        [
          prop_drops_never_false_terminate;
          prop_drops_safe_for_scalar;
          prop_duplication_mapping_still_exact;
          Alcotest.test_case "duplication breaks general broadcast" `Quick
            test_duplication_breaks_general_broadcast;
          Alcotest.test_case "duplication breaks scalar" `Quick
            test_duplication_breaks_scalar_conservation;
        ] );
      ( "codec",
        [
          Alcotest.test_case "verify_codec all protocols" `Quick
            test_verify_codec_all_protocols;
          prop_verify_codec_random;
        ] );
      ( "memory",
        [
          Alcotest.test_case "state bits ordering" `Quick test_state_bits_reported;
          prop_state_bits_grow_with_network;
        ] );
    ]
