(* anonet — command-line driver.

   Generate a network family, run one of the paper's protocols on it under a
   chosen asynchronous schedule, and report the complexity measures (or the
   labels / the reconstructed map / a Graphviz rendering).

     anonet run --family comb:32 --protocol tree
     anonet run --family random:50:7 --protocol general --scheduler lifo
     anonet label --family cycle:9
     anonet map --family random:20:42 --dot
     anonet dot --family skeleton:4
     anonet check                        # model-check the whole suite
     anonet check --sabotage             # negative control; must exit 1

   Exit status: [run] is nonzero when the protocol fails to terminate or
   terminates with unvisited vertices; [faults] when any seed produces a
   false termination; [check] when any invariant violation is found. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine

let pf = Printf.printf

(* {1 Family specifications} *)

let family_doc = "Network family: " ^ F.spec_doc ^ " (e.g. 'cycle:5+trap')."

let parse_family spec =
  match F.of_spec spec with Ok g -> Ok g | Error e -> Error (`Msg e)

let family_conv =
  Cmdliner.Arg.conv
    ( parse_family,
      fun fmt _ -> Format.pp_print_string fmt "<network>" )

let parse_scheduler = function
  | "fifo" -> Ok Runtime.Scheduler.Fifo
  | "lifo" -> Ok Runtime.Scheduler.Lifo
  | s -> (
      match String.split_on_char ':' s with
      | [ "random"; seed ] -> (
          match int_of_string_opt seed with
          | Some seed -> Ok (Runtime.Scheduler.Random (Prng.create seed))
          | None -> Error (`Msg "random scheduler needs an int seed"))
      | _ -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s)))

let scheduler_conv =
  Cmdliner.Arg.conv
    (parse_scheduler, fun fmt s -> Format.pp_print_string fmt (Runtime.Scheduler.describe s))

let parse_engine s =
  match Flatcore.kind_of_string s with
  | Some k -> Ok k
  | None -> Error (`Msg (Printf.sprintf "unknown engine %S (classic | flat)" s))

let engine_conv =
  Cmdliner.Arg.conv
    ( parse_engine,
      fun fmt k -> Format.pp_print_string fmt (Flatcore.string_of_kind k) )

(* {1 Common terms} *)

open Cmdliner

let family_t =
  Arg.(
    required
    & opt (some family_conv) None
    & info [ "f"; "family" ] ~docv:"FAMILY" ~doc:family_doc)

let scheduler_t =
  Arg.(
    value
    & opt scheduler_conv Runtime.Scheduler.Fifo
    & info [ "scheduler" ] ~docv:"SCHED" ~doc:"fifo | lifo | random:SEED")

let engine_t =
  Arg.(
    value
    & opt engine_conv Flatcore.Classic
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "classic | flat.  The flat engine executes on the CSR-compiled \
           graph with arena-backed messages; it runs the identical delivery \
           schedule, so reports match the classic engine byte for byte — a \
           pure performance knob.")

let payload_t =
  Arg.(
    value & opt int 0
    & info [ "payload" ] ~docv:"BITS"
        ~doc:"Size of the broadcast message m, charged to every protocol message.")

let describe_graph g =
  pf "network : |V|=%d |E|=%d d_out=%d class=%s\n" (G.n_vertices g) (G.n_edges g)
    (G.max_out_degree g)
    (match G.classify g with
    | `Grounded_tree -> "grounded-tree"
    | `Dag -> "dag"
    | `General -> "general");
  match G.validate g with
  | Ok () -> ()
  | Error e -> pf "warning : %s\n" e

let describe_stats (st : Anonet.stats) =
  pf "outcome          : %s\n"
    (match st.outcome with
    | E.Terminated -> "terminated"
    | E.Quiescent -> "quiescent (no termination)"
    | E.Step_limit -> "step limit"
    | E.Cancelled -> "cancelled");
  pf "deliveries       : %d\n" st.deliveries;
  pf "total bits       : %d\n" st.total_bits;
  pf "bandwidth        : %d bits (busiest edge)\n" st.max_edge_bits;
  pf "largest message  : %d bits\n" st.max_message_bits;
  pf "distinct symbols : %d\n" st.distinct_messages;
  pf "all visited      : %b\n" st.all_visited

let protocol_of_name : string -> (module Runtime.Protocol_intf.PROTOCOL) option
    = function
  | "flood" -> Some (module Anonet.Flood)
  | "tree" -> Some (module Anonet.Tree_broadcast)
  | "tree-naive" -> Some (module Anonet.Tree_broadcast_naive)
  | "dag" -> Some (module Anonet.Dag_broadcast_pow2)
  | "general" -> Some (module Anonet.General_broadcast)
  | "labeling" -> Some (module Anonet.Labeling)
  | "mapping" -> Some (module Anonet.Mapping)
  | "undirected" -> Some (module Anonet.Undirected_labeling)
  | _ -> None

let domains_t =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Execute on $(docv) domains with the sharded multicore engine (1 = \
           the sequential engine).  The parallel delivery order is one more \
           legal asynchronous schedule, so the outcome and visited set match \
           the sequential run; the --scheduler policy does not apply.")

(* {1 Churn terms}

   [--churn-rate]/[--churn-t] arm the edge-churn adversary on a run: a
   uniform per-offer removal plan with seed-derived per-edge PRNG streams,
   optionally wrapped in the T-interval connectivity contract. *)

let churn_rate_t =
  Arg.(
    value & opt float 0.0
    & info [ "churn-rate" ] ~docv:"P"
        ~doc:
          "Per-offer probability that an edge is removed for a bounded \
           outage (it heals under traffic).  0 disables churn entirely.")

let churn_t_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "churn-t" ] ~docv:"T"
        ~doc:
          "Install the T-interval connectivity contract: the run counts \
           window violations — outages touching the protected spanning \
           skeleton or spanning >= $(docv) consecutive offers.  Fates are \
           unchanged, so replays stay byte-identical.")

let churn_seed_t =
  Arg.(
    value & opt int 0
    & info [ "churn-seed" ] ~docv:"S"
        ~doc:"Seed of the churn adversary's per-edge PRNG streams.")

let churn_of ~rate ~t ~seed g =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "--churn-rate must be in [0,1]";
  if rate = 0.0 then Runtime.Churn.none
  else
    let c =
      Runtime.Churn.uniform
        (Runtime.Churn.plan ~remove:rate ~max_downtime:3 ())
        ~seed
    in
    match t with
    | None -> c
    | Some t -> Runtime.Churn.with_contract ~t_interval:t g c

let describe_churn (cs : E.churn_stats) =
  pf "churn            : %d adds, %d removes, %d heals, %d lost in flight, \
      %d window violations\n"
    cs.E.adds cs.E.removes cs.E.heals cs.E.messages_lost_in_flight
    cs.E.window_violations

(* {1 Telemetry terms}

   [--trace-out]/[--metrics-out]/[--csv-out] attach an [Obs] sink to the
   run and write the requested exports when it finishes; with none of the
   three the run is uninstrumented and pays nothing. *)

let trace_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's span/sample timeline as Chrome trace-event JSON — \
           open it at https://ui.perfetto.dev or chrome://tracing.")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the run's metrics-registry snapshot as JSON.")

let csv_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv-out" ] ~docv:"FILE"
        ~doc:"Write the timeline as flat CSV (ts_s,track,kind,name,value).")

let sample_t =
  Arg.(
    value & opt int 256
    & info [ "sample" ] ~docv:"K"
        ~doc:
          "Emit timeline samples every $(docv) deliveries (or explorer \
           transitions); counters stay exact regardless.")

let lineage_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "lineage-out" ] ~docv:"FILE"
        ~doc:
          "Record the causal delivery forest — every delivery linked to the \
           delivery whose receive emitted it — and write its JSON summary \
           (nodes, causal depth, width, critical path, top critical edges, \
           stored node samples) to $(docv).  Inspect it with 'anonet trace \
           --lineage FILE'.  Combined with --trace-out, the Perfetto trace \
           gains flow arrows along the stored causal edges.")

let lineage_sample_t =
  Arg.(
    value & opt int 1
    & info [ "lineage-sample" ] ~docv:"K"
        ~doc:
          "Store every $(docv)-th lineage node (causal-depth aggregates \
           stay exact regardless); 1 stores everything up to the capacity \
           bound.")

(* The lineage clock rides the timeline's when a sink is attached, so flow
   arrows land on the same time axis as the spans they cross. *)
let make_lineage ~sample lineage_out (obs : Obs.t option) =
  match lineage_out with
  | None -> None
  | Some _ ->
      if sample < 1 then invalid_arg "--lineage-sample must be at least 1";
      let clock =
        Option.map (fun (o : Obs.t) () -> Obs.Timeline.now o.Obs.timeline) obs
      in
      Some (Obs.Lineage.create ~sample_every:sample ?clock ())

let make_obs ~sample trace_out metrics_out csv_out =
  if trace_out = None && metrics_out = None && csv_out = None then None
  else if sample < 1 then invalid_arg "--sample must be at least 1"
  else Some (Obs.create ~sample_every:sample ())

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flush_lineage lineage lineage_out =
  match (lineage, lineage_out) with
  | Some l, Some p ->
      write_file p (Obs.Lineage.to_json l);
      pf "lineage written : %s (%d nodes, depth %d, width %d, %d stored, \
          %d dropped)\n"
        p (Obs.Lineage.nodes l) (Obs.Lineage.max_depth l) (Obs.Lineage.width l)
        (Obs.Lineage.stored l) (Obs.Lineage.dropped l)
  | _ -> ()

let flush_obs ?(meta = []) ?lineage obs trace_out metrics_out csv_out =
  match obs with
  | None -> ()
  | Some (o : Obs.t) ->
      Option.iter
        (fun p ->
          write_file p (Obs.Export.chrome_trace ?lineage o.Obs.timeline);
          pf "\ntrace written   : %s (open at ui.perfetto.dev)\n" p)
        trace_out;
      Option.iter
        (fun p ->
          write_file p
            (Obs.Export.metrics_json ~meta
               (Obs.Registry.snapshot o.Obs.registry));
          pf "metrics written : %s\n" p)
        metrics_out;
      Option.iter
        (fun p ->
          write_file p (Obs.Export.timeline_csv o.Obs.timeline);
          pf "csv written     : %s\n" p)
        csv_out

(* Exit status of [run]: 1 on non-termination, 2 on a soundness violation
   (terminated with unvisited vertices), 0 on a sound termination. *)
let finish (st : Anonet.stats) =
  describe_stats st;
  match st.outcome with
  | E.Terminated when st.all_visited -> `Ok 0
  | E.Terminated ->
      pf "\nerror: terminated with unvisited vertices (soundness violation)\n";
      `Ok 2
  | E.Quiescent | E.Step_limit | E.Cancelled ->
      pf "\nerror: protocol did not terminate\n";
      `Ok 1

(* {1 Commands} *)

let run_cmd =
  let protocol_t =
    Arg.(
      value & opt string "general"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:
            "flood | tree | tree-naive | dag | general | labeling | mapping | \
             undirected (the last expects a ring:N / bidirected:N:SEED family)")
  in
  (* One unified path: resolve the protocol module, pick the sequential or
     sharded engine, thread the optional [Obs] sink through either. *)
  let run g protocol scheduler engine payload domains churn_rate churn_t
      churn_seed sample trace_out metrics_out csv_out lineage_out
      lineage_sample =
    match protocol_of_name protocol with
    | None -> `Error (false, Printf.sprintf "unknown protocol %S" protocol)
    | Some (module P : Runtime.Protocol_intf.PROTOCOL) -> (
        try
          if domains < 1 then invalid_arg "--domains must be at least 1";
          if engine = Flatcore.Flat && domains > 1 then
            invalid_arg
              "--engine flat is the sequential fast engine; drop --domains";
          let obs = make_obs ~sample trace_out metrics_out csv_out in
          let lineage = make_lineage ~sample:lineage_sample lineage_out obs in
          let churn = churn_of ~rate:churn_rate ~t:churn_t ~seed:churn_seed g in
          describe_graph g;
          if domains > 1 then
            pf "protocol: %s, domains: %d (sharded engine), payload: %d bits\n\n"
              protocol domains payload
          else
            pf "protocol: %s, scheduler: %s, engine: %s, payload: %d bits\n\n"
              protocol
              (Runtime.Scheduler.describe scheduler)
              (Flatcore.string_of_kind engine)
              payload;
          let r, churn_stats =
            if domains > 1 then
              let module En = Par.Engine.Make (P) in
              let r =
                En.run ~domains ~payload_bits:payload ~churn ?obs ?lineage g
              in
              (Anonet.stats_of_report r, r.E.churn_stats)
            else
              let r =
                match engine with
                | Flatcore.Flat ->
                    let module En = Flatcore.Engine.Make (P) in
                    En.run ~scheduler ~payload_bits:payload ~churn ?obs
                      ?lineage g
                | Flatcore.Classic ->
                    let module En = Runtime.Engine.Make (P) in
                    En.run ~scheduler ~payload_bits:payload ~churn ?obs
                      ?lineage g
              in
              (Anonet.stats_of_report r, r.E.churn_stats)
          in
          if not (Runtime.Churn.is_none churn) then describe_churn churn_stats;
          let res = finish r in
          flush_obs
            ~meta:[ ("command", "run"); ("protocol", protocol) ]
            ?lineage obs trace_out metrics_out csv_out;
          flush_lineage lineage lineage_out;
          res
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a protocol on a generated network and print stats.")
    Term.(
      ret (const run $ family_t $ protocol_t $ scheduler_t $ engine_t
         $ payload_t $ domains_t $ churn_rate_t $ churn_t_t $ churn_seed_t
         $ sample_t $ trace_out_t $ metrics_out_t $ csv_out_t $ lineage_out_t
         $ lineage_sample_t))

let label_cmd =
  let run g scheduler =
    describe_graph g;
    let st, labels = Anonet.assign_labels ~scheduler g in
    describe_stats st;
    pf "\nlabels:\n";
    List.iter
      (fun v -> pf "  %4d : %s\n" v (Intervals.Iset.to_string labels.(v)))
      (G.internal_vertices g);
    0
  in
  Cmd.v
    (Cmd.info "label" ~doc:"Assign unique labels (Section 5) and print them.")
    Term.(const run $ family_t $ scheduler_t)

let sync_cmd =
  let protocol_t =
    Arg.(
      value & opt string "general"
      & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"tree | dag | general | labeling | mapping")
  in
  let run g protocol payload =
    describe_graph g;
    pf "protocol: %s (synchronous rounds), payload: %d bits\n\n" protocol payload;
    let show rounds base =
      pf "rounds           : %d\n" rounds;
      describe_stats (Anonet.stats_of_report base)
    in
    let module ST = Runtime.Sync_engine.Make (Anonet.Tree_broadcast) in
    let module SD = Runtime.Sync_engine.Make (Anonet.Dag_broadcast_pow2) in
    let module SG = Runtime.Sync_engine.Make (Anonet.General_broadcast) in
    let module SL = Runtime.Sync_engine.Make (Anonet.Labeling) in
    let module SM = Runtime.Sync_engine.Make (Anonet.Mapping) in
    match protocol with
    | "tree" ->
        let r = ST.run ~payload_bits:payload g in
        show r.rounds r.base;
        `Ok 0
    | "dag" ->
        let r = SD.run ~payload_bits:payload g in
        show r.rounds r.base;
        `Ok 0
    | "general" ->
        let r = SG.run ~payload_bits:payload g in
        show r.rounds r.base;
        `Ok 0
    | "labeling" ->
        let r = SL.run ~payload_bits:payload g in
        show r.rounds r.base;
        `Ok 0
    | "mapping" ->
        let r = SM.run ~payload_bits:payload g in
        show r.rounds r.base;
        `Ok 0
    | p -> `Error (false, Printf.sprintf "unknown protocol %S" p)
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Run a protocol under the synchronous model and report rounds.")
    Term.(ret (const run $ family_t $ protocol_t $ payload_t))

let map_cmd =
  let dot_t =
    Arg.(value & flag & info [ "dot" ] ~doc:"Also print the reconstruction as DOT.")
  in
  let run g scheduler dot =
    describe_graph g;
    let st, map = Anonet.map_network ~scheduler g in
    describe_stats st;
    match map with
    | Error e ->
        pf "\nmap extraction: %s\n" e;
        1
    | Ok m ->
        pf "\nreconstruction: |V|=%d |E|=%d isomorphic-to-input=%b\n"
          (G.n_vertices m.Anonet.Mapping.graph)
          (G.n_edges m.Anonet.Mapping.graph)
          (Anonet.Mapping.map_isomorphic m g);
        if dot then
          pf "\n%s"
            (G.Dot.to_dot ~name:"map"
               ~vertex_label:(fun v ->
                 match m.Anonet.Mapping.labels.(v) with
                 | Some iv -> Intervals.Interval.to_string iv
                 | None -> if v = 0 then "s" else "t")
               m.Anonet.Mapping.graph);
        0
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Extract the full topology (mapping protocol).")
    Term.(const run $ family_t $ scheduler_t $ dot_t)

let trace_cmd =
  let limit_t =
    Arg.(value & opt int 60 & info [ "limit" ] ~docv:"N" ~doc:"Max deliveries to print.")
  in
  let lineage_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "lineage" ] ~docv:"FILE"
          ~doc:
            "Summarize a causal-lineage JSON file written by --lineage-out \
             (nodes, causal depth, width, top critical edges, the critical \
             path) instead of running a broadcast; --family is ignored.")
  in
  (* [trace --lineage] wants no network, so the family becomes optional
     here — its absence is an error only on the broadcast path. *)
  let family_opt_t =
    Arg.(
      value
      & opt (some family_conv) None
      & info [ "f"; "family" ] ~docv:"FAMILY" ~doc:family_doc)
  in
  let summarize_lineage path limit =
    let module J = Obs.Json in
    match
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with
    | exception Sys_error e -> `Error (false, e)
    | s -> (
        match J.parse s with
        | Error pos ->
            `Error (false, Printf.sprintf "%s: invalid JSON at byte %d" path pos)
        | Ok v ->
            let geti name =
              match Option.bind (J.member name v) J.to_int_opt with
              | Some i -> i
              | None -> 0
            in
            pf "lineage summary  : %s\n" path;
            pf "nodes            : %d (%d stored, %d dropped, sample every \
                %d, capacity %d)\n"
              (geti "nodes") (geti "stored") (geti "dropped")
              (geti "sample_every") (geti "capacity");
            pf "causal depth     : %d (deepest node %d)\n" (geti "max_depth")
              (geti "deepest");
            pf "causal width     : %d (busiest depth layer)\n" (geti "width");
            (match J.member "critical_edges" v with
            | Some (J.Array (_ :: _ as edges)) ->
                pf "\ntop critical edges (edge, deepest delivery it carried):\n";
                List.iteri
                  (fun i e ->
                    match e with
                    | J.Array [ a; b ] when i < 8 -> (
                        match (J.to_int_opt a, J.to_int_opt b) with
                        | Some e', Some d ->
                            pf "  edge %6d : depth %d\n" e' d
                        | _ -> ())
                    | _ -> ())
                  edges
            | _ -> ());
            (match J.member "critical_path" v with
            | Some (J.Array (_ :: _ as steps)) ->
                pf "\ncritical path (deepest first):\n";
                pf "  %10s %10s %8s %8s %6s\n" "node" "parent" "edge" "vertex"
                  "depth";
                List.iteri
                  (fun i st ->
                    match st with
                    | J.Array [ id; p; e; vx; d ] when i < limit -> (
                        match
                          ( J.to_int_opt id, J.to_int_opt p, J.to_int_opt e,
                            J.to_int_opt vx, J.to_int_opt d )
                        with
                        | Some id, Some p, Some e, Some vx, Some d ->
                            pf "  %10d %10d %8d %8d %6d\n" id p e vx d
                        | _ -> ())
                    | _ -> ())
                  steps
            | _ -> ());
            `Ok 0)
  in
  let run g scheduler limit lineage =
    match (lineage, g) with
    | Some path, _ -> summarize_lineage path limit
    | None, None ->
        `Error (true, "required option --family is missing (or use --lineage)")
    | None, Some g ->
        describe_graph g;
        let tr = Runtime.Trace.create () in
        let r =
          Anonet.General_engine.run ~scheduler
            ~on_deliver:(Runtime.Trace.hook tr) g
        in
        pf "general broadcast under %s: %s after %d deliveries\n\n"
          (Runtime.Scheduler.describe scheduler)
          (match r.outcome with
          | E.Terminated -> "terminated"
          | E.Quiescent -> "quiescent"
          | E.Step_limit -> "step limit"
          | E.Cancelled -> "cancelled")
          r.deliveries;
        print_string (Runtime.Trace.render ~limit tr);
        `Ok 0
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the general broadcast and print the delivery-by-delivery log, \
          or summarize a causal-lineage file (--lineage).")
    Term.(ret (const run $ family_opt_t $ scheduler_t $ limit_t $ lineage_t))

let dot_cmd =
  let run g =
    print_string (G.Dot.to_dot g);
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the generated network in Graphviz DOT syntax.")
    Term.(const run $ family_t)

let faults_cmd =
  let protocol_t =
    Arg.(
      value & opt string "general"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:"flood | tree | tree-naive | dag | general | labeling | mapping")
  in
  let fprob name doc =
    Arg.(value & opt float 0.0 & info [ name ] ~docv:"P" ~doc)
  in
  let drop_t = fprob "drop" "Per-copy drop probability." in
  let duplicate_t =
    fprob "duplicate" "Geometric duplication parameter (mean 1/(1-P) copies)."
  in
  let corrupt_t = fprob "corrupt" "Per-copy single-bit corruption probability." in
  let kill_t = fprob "kill" "Per-edge permanent kill probability." in
  let delay_t =
    Arg.(
      value & opt int 0
      & info [ "delay" ] ~docv:"D" ~doc:"Max per-copy delivery delay (uniform 0..D).")
  in
  let seeds_t =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Fault seeds to sweep (1..N).")
  in
  let redundancy_t =
    Arg.(
      value & opt int 1
      & info [ "r"; "redundancy" ] ~docv:"K"
          ~doc:
            "Wrap the protocol in the Redundant(K) resilience layer: K-repetition \
             sends, receive-side dedup, and a checksum that turns bit corruption \
             into detected drops.")
  in
  let run g protocol scheduler engine drop duplicate delay corrupt kill seeds k
      domains sample trace_out metrics_out csv_out lineage_out lineage_sample =
    match protocol_of_name protocol with
    | None -> `Error (false, Printf.sprintf "unknown protocol %S" protocol)
    | Some (module P : Runtime.Protocol_intf.PROTOCOL) -> (
        try
          (* Validate the plan before any output so a bad rate yields a clean
             one-line error instead of a half-printed table. *)
          let (_ : Runtime.Faults.plan) =
            Runtime.Faults.plan ~drop ~duplicate ~max_delay:delay ~corrupt ~kill
              ()
          in
          let (module Q : Runtime.Protocol_intf.PROTOCOL) =
            if k <= 1 then (module P)
            else
              (module Anonet.Redundant.Make
                        (struct
                          let k = k
                        end)
                        (P))
          in
          if domains < 1 then invalid_arg "--domains must be at least 1";
          if engine = Flatcore.Flat && domains > 1 then
            invalid_arg
              "--engine flat is the sequential fast engine; drop --domains";
          (* One sink across the sweep: counters accumulate over all seeds. *)
          let obs = make_obs ~sample trace_out metrics_out csv_out in
          let module En = Runtime.Engine.Make (Q) in
          let module Fn = Flatcore.Engine.Make (Q) in
          let module Pn = Par.Engine.Make (Q) in
          (* The faulty runs share one CSR: compiled once, swept many times. *)
          let csr =
            if engine = Flatcore.Flat then Some (Flatcore.Csr.of_digraph g)
            else None
          in
          let engine_run ~faults ?lineage g =
            if domains > 1 then Pn.run ~domains ~faults ?obs ?lineage g
            else
              match csr with
              | Some csr -> Fn.run_csr ~scheduler ~faults ?obs ?lineage csr
              | None -> En.run ~scheduler ~faults ?obs ?lineage g
          in
          (* Lineage over a sweep: a fresh recorder per seed, keeping the
             deepest causal forest observed — the sweep's worst-case chain
             is what a profiler wants from a fault campaign. *)
          let lineage_best = ref None in
          describe_graph g;
          if domains > 1 then
            pf "protocol: %s, domains: %d (sharded engine)\n" Q.name domains
          else
            pf "protocol: %s, scheduler: %s, engine: %s\n" Q.name
              (Runtime.Scheduler.describe scheduler)
              (Flatcore.string_of_kind engine);
          pf "faults  : drop=%.3f duplicate=%.3f delay<=%d corrupt=%.3f kill=%.3f\n\n"
            drop duplicate delay corrupt kill;
          let n = G.n_vertices g in
          pf "%5s %12s %9s %9s %9s | %7s %6s %7s %7s %7s %5s\n" "seed" "outcome"
            "visited" "delivered" "in-flight" "dropped" "extra" "delayed" "corrupt"
            "garbled" "dead";
          let sound = ref 0 and false_term = ref 0 in
          for seed = 1 to seeds do
            let faults =
              Runtime.Faults.create ~drop ~duplicate ~max_delay:delay ~corrupt
                ~kill ~seed ()
            in
            let lineage = make_lineage ~sample:lineage_sample lineage_out obs in
            let r = engine_run ~faults ?lineage g in
            (match (lineage, !lineage_best) with
            | Some l, Some b
              when Obs.Lineage.max_depth l <= Obs.Lineage.max_depth b ->
                ()
            | Some _, _ -> lineage_best := lineage
            | None, _ -> ());
            let visited =
              Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 r.visited
            in
            let all = Array.for_all (fun v -> v) r.visited in
            (match r.outcome with
            | E.Terminated -> if all then incr sound else incr false_term
            | E.Quiescent | E.Step_limit | E.Cancelled -> ());
            let f = r.fault_stats in
            pf "%5d %12s %6d/%-2d %9d %9d | %7d %6d %7d %7d %7d %5d\n" seed
              (match r.outcome with
              | E.Terminated -> if all then "terminated" else "FALSE-TERM"
              | E.Quiescent -> "quiescent"
              | E.Step_limit -> "step-limit"
              | E.Cancelled -> "cancelled")
              visited n r.deliveries r.final_in_flight f.dropped_copies
              f.extra_copies f.delayed_copies f.corrupted_deliveries
              f.garbled_drops
              (List.length f.dead_edges)
          done;
          pf "\nsound terminations: %d/%d   false terminations: %d\n" !sound seeds
            !false_term;
          flush_obs
            ~meta:
              [
                ("command", "faults");
                ("protocol", protocol);
                ("seeds", string_of_int seeds);
              ]
            ?lineage:!lineage_best obs trace_out metrics_out csv_out;
          flush_lineage !lineage_best lineage_out;
          `Ok (if !false_term > 0 then 1 else 0)
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Sweep fault seeds over one protocol/network/fault-plan combination \
          and print a per-seed outcome table with fault counters.")
    Term.(
      ret
        (const run $ family_t $ protocol_t $ scheduler_t $ engine_t $ drop_t
       $ duplicate_t $ delay_t $ corrupt_t $ kill_t $ seeds_t $ redundancy_t
       $ domains_t $ sample_t $ trace_out_t $ metrics_out_t $ csv_out_t
       $ lineage_out_t $ lineage_sample_t))

let check_cmd =
  let max_edges_t =
    Arg.(
      value & opt int 8
      & info [ "max-edges" ] ~docv:"E"
          ~doc:"Only check suite instances with at most $(docv) edges.")
  in
  let protocol_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:
            "Only check this protocol (tree | tree-naive | dag | general | \
             labeling | mapping).")
  in
  let max_states_t =
    Arg.(
      value & opt int 200_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:
            "Distinct-state budget per instance; beyond it the search degrades \
             to seeded bounded random walks.")
  in
  let sabotage_t =
    Arg.(
      value & flag
      & info [ "sabotage" ]
          ~doc:
            "Check the sabotaged-split negative control instead of the suite.  \
             Its split ships the whole commodity on one out-edge, so this must \
             find a false-termination counterexample and exit 1.")
  in
  let run max_edges protocol engine max_states sabotage domains sample
      trace_out metrics_out csv_out =
    let module X = Runtime.Explore in
    let module CS = Anonet.Check_suite in
    if sample < 1 then `Error (false, "--sample must be at least 1")
    else
    let obs = make_obs ~sample trace_out metrics_out csv_out in
    let cases =
      if sabotage then [ CS.sabotaged () ]
      else
        List.filter
          (fun (c : CS.case) ->
            match protocol with None -> true | Some p -> p = c.c_protocol)
          (CS.cases ~max_edges ())
    in
    match cases with
    | [] -> `Error (false, "no suite case matches the given filters")
    | _ ->
        pf "%-12s %-16s %3s %8s %8s %8s %6s %s\n" "protocol" "family" "|E|"
          "states" "transit" "pruned" "walks" "status";
        let bad = ref 0 in
        let failures = ref [] in
        (* Each instance explores independently; the pool shards them across
           domains and hands the results back in suite order.  The shared
           sink is safe: explorer counters flush atomically and the
           timeline ring is multi-writer. *)
        let explored =
          Par.Pool.map_list ~domains
            (fun (c : CS.case) -> (c, c.c_explore ~max_states ?obs ()))
            cases
        in
        List.iter
          (fun ((c : CS.case), (r : X.result)) ->
            let status =
              match r.violations with
              | [] -> if r.stats.truncated then "ok (bounded)" else "ok"
              | v :: _ ->
                  incr bad;
                  failures := (c, v) :: !failures;
                  "VIOLATION"
            in
            pf "%-12s %-16s %3d %8d %8d %7.1f%% %6d %s\n" c.c_protocol c.c_family
              c.c_edges r.stats.states r.stats.transitions
              (100.0 *. X.pruned_fraction r.stats)
              r.stats.walks status)
          explored;
        List.iter
          (fun ((c : CS.case), (v : X.violation)) ->
            pf "\n%s on %s: %s\n" c.c_protocol c.c_family (X.describe_kind v.kind);
            pf "schedule: [%s]\n"
              (String.concat "; " (List.map string_of_int v.schedule));
            let rep = c.c_replay ~engine v.schedule in
            pf "replayed through the engine: %s, %d deliveries, unvisited: [%s]\n"
              (match rep.r_outcome with
              | E.Terminated -> "terminated"
              | E.Quiescent -> "quiescent"
              | E.Step_limit -> "step limit"
              | E.Cancelled -> "cancelled")
              rep.r_deliveries
              (String.concat "; " (List.map string_of_int rep.r_unreached));
            print_string rep.r_trace)
          (List.rev !failures);
        pf "\n%d/%d instances clean\n" (List.length cases - !bad)
          (List.length cases);
        flush_obs
          ~meta:
            [
              ("command", "check");
              ("instances", string_of_int (List.length cases));
            ]
          obs trace_out metrics_out csv_out;
        `Ok (if !bad > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Model-check every protocol against every asynchronous schedule on \
          the small-instance suite: exhaustive DFS over delivery \
          interleavings with sleep-set partial-order reduction, checking \
          conservation laws, broadcast soundness and quiescence at every \
          state.  Violations are replayed through the real engine and exit \
          with status 1.")
    Term.(
      ret
        (const run $ max_edges_t $ protocol_t $ engine_t $ max_states_t
       $ sabotage_t $ domains_t $ sample_t $ trace_out_t $ metrics_out_t
       $ csv_out_t))

let obs_cmd =
  let protocol_t =
    Arg.(
      value & opt string "general"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:
            "flood | tree | tree-naive | dag | general | labeling | mapping | \
             undirected")
  in
  let run g protocol scheduler payload domains sample trace_out metrics_out
      csv_out =
    match protocol_of_name protocol with
    | None -> `Error (false, Printf.sprintf "unknown protocol %S" protocol)
    | Some (module P : Runtime.Protocol_intf.PROTOCOL) -> (
        try
          if domains < 1 then invalid_arg "--domains must be at least 1";
          if sample < 1 then invalid_arg "--sample must be at least 1";
          let o = Obs.create ~sample_every:sample () in
          describe_graph g;
          if domains > 1 then
            pf "protocol: %s, domains: %d (sharded engine), payload: %d bits, \
                sample every %d\n\n"
              protocol domains payload sample
          else
            pf "protocol: %s, scheduler: %s, payload: %d bits, sample every %d\n\n"
              protocol
              (Runtime.Scheduler.describe scheduler)
              payload sample;
          let r =
            if domains > 1 then
              let module En = Par.Engine.Make (P) in
              En.run ~domains ~payload_bits:payload ~obs:o g
            else
              let module En = Runtime.Engine.Make (P) in
              En.run ~scheduler ~payload_bits:payload ~obs:o g
          in
          pf "outcome : %s, %d deliveries, %d total bits\n"
            (match r.E.outcome with
            | E.Terminated -> "terminated"
            | E.Quiescent -> "quiescent"
            | E.Step_limit -> "step limit"
            | E.Cancelled -> "cancelled")
            r.E.deliveries r.E.total_bits;
          let snap = Obs.Registry.snapshot o.Obs.registry in
          pf "\n%-28s %14s\n" "counter / gauge" "value";
          List.iter
            (fun (name, e) ->
              match e with
              | Obs.Registry.Counter v -> pf "%-28s %14d\n" name v
              | Obs.Registry.Gauge v -> pf "%-28s %14d  (gauge)\n" name v
              | Obs.Registry.Histogram _ -> ())
            snap;
          let histograms =
            List.filter
              (fun (_, e) ->
                match e with Obs.Registry.Histogram _ -> true | _ -> false)
              snap
          in
          if histograms <> [] then begin
            pf "\n%-28s %10s %14s %12s %s\n" "histogram" "count" "sum" "mean"
              "p-bucket range";
            List.iter
              (fun (name, e) ->
                match e with
                | Obs.Registry.Histogram { h_count; h_sum; h_buckets } ->
                    let top =
                      List.fold_left
                        (fun acc (i, c) ->
                          match acc with
                          | Some (_, c') when c' >= c -> acc
                          | _ -> Some (i, c))
                        None h_buckets
                    in
                    pf "%-28s %10d %14d %12.1f %s\n" name h_count h_sum
                      (if h_count = 0 then 0.0
                       else float_of_int h_sum /. float_of_int h_count)
                      (match top with
                      | None -> "-"
                      | Some (i, _) ->
                          Printf.sprintf "[%d,%d]" (Obs.Registry.bucket_lo i)
                            (Obs.Registry.bucket_hi i))
                | _ -> ())
              histograms
          end;
          let tl = o.Obs.timeline in
          pf "\ntimeline : %d events recorded, %d dropped, %d track(s), \
              capacity %d\n"
            (Obs.Timeline.recorded tl) (Obs.Timeline.dropped tl)
            (List.length (Obs.Timeline.tracks tl))
            (Obs.Timeline.capacity tl);
          flush_obs
            ~meta:[ ("command", "obs"); ("protocol", protocol) ]
            (Some o) trace_out metrics_out csv_out;
          `Ok 0
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "Run a protocol fully instrumented and print a telemetry summary: \
          every counter, gauge and histogram the engine recorded, plus \
          timeline statistics.  Combine with --trace-out/--metrics-out/\
          --csv-out to export the raw data.")
    Term.(
      ret
        (const run $ family_t $ protocol_t $ scheduler_t $ payload_t
       $ domains_t $ sample_t $ trace_out_t $ metrics_out_t $ csv_out_t))

let chaos_cmd =
  let module Ch = Runtime.Chaos in
  let protocol_t =
    Arg.(
      value & opt string "general"
      & info [ "p"; "protocol" ] ~docv:"PROTO"
          ~doc:
            "flood | tree | tree-naive | dag | general | labeling | mapping | \
             undirected")
  in
  let redundancy_t =
    Arg.(
      value & opt int 3
      & info [ "k"; "redundancy" ] ~docv:"K"
          ~doc:
            "Wrap the protocol behind Redundant($(docv)); 1 runs it bare.")
  in
  let supervise_t =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Arm the self-healing supervisor on every run the search \
             performs: per-vertex checkpointing (so crash amnesia degrades \
             to restore-from-checkpoint) and retransmission with \
             exponential backoff at quiescence.")
  in
  let budget_t =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~docv:"N"
          ~doc:"Random fault sets tried per (protocol, graph family).")
  in
  let max_faults_t =
    Arg.(
      value & opt int 4
      & info [ "max-faults" ] ~docv:"N"
          ~doc:"Maximum atoms (edge kills + vertex crashes) per fault set.")
  in
  let seed_t =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"S" ~doc:"Search seed.")
  in
  let p_edge_t =
    Arg.(
      value & opt float 0.5
      & info [ "p-edge" ] ~docv:"P"
          ~doc:"Probability a generated atom is an edge kill (vs a crash).")
  in
  let recoveries_t =
    Arg.(
      value
      & opt string "stop,amnesia,restore"
      & info [ "recoveries" ] ~docv:"LIST"
          ~doc:
            "Comma-separated crash recovery modes the generator draws from \
             (stop | amnesia | restore).")
  in
  let json_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the full search result (witnesses included) as JSON.")
  in
  let recovery_of_name = function
    | "stop" -> Some Runtime.Vfaults.Stop
    | "amnesia" -> Some Runtime.Vfaults.Amnesia
    | "restore" -> Some Runtime.Vfaults.Restore
    | _ -> None
  in
  let run protocol k supervise budget max_faults seed p_edge recoveries
      domains churn_rate churn_t json_out sample trace_out metrics_out csv_out =
    match protocol_of_name protocol with
    | None -> `Error (false, Printf.sprintf "unknown protocol %S" protocol)
    | Some (module P : Runtime.Protocol_intf.PROTOCOL) -> (
        try
          if k < 1 then invalid_arg "--redundancy must be at least 1";
          if budget < 1 then invalid_arg "--budget must be at least 1";
          if domains < 1 then invalid_arg "--domains must be at least 1";
          let recoveries =
            List.map
              (fun r ->
                match recovery_of_name (String.trim r) with
                | Some m -> m
                | None -> invalid_arg (Printf.sprintf "unknown recovery %S" r))
              (String.split_on_char ',' recoveries)
          in
          if recoveries = [] then invalid_arg "--recoveries must be non-empty";
          let supervisor =
            if supervise then Some Runtime.Supervisor.default else None
          in
          let cfg =
            Ch.config ~budget ~max_faults ~seed ~p_edge ~recoveries ?supervisor
              ~p_churn:churn_rate ?churn_t ()
          in
          let runner = Anonet.Resilient.chaos_runner ~k (module P) in
          let graphs = Anonet.Resilient.chaos_graphs () in
          pf "chaos search: %s, %d fault sets x %d families, <=%d atoms, \
              seed %d%s\n\n"
            runner.Ch.r_name budget (List.length graphs) max_faults seed
            (if supervise then ", supervised" else "");
          let res =
            if domains > 1 then Par.Chaos.run ~domains cfg ~runners:[ runner ] ~graphs
            else Ch.run cfg ~runners:[ runner ] ~graphs
          in
          pf "trials: %d   hits: %d   duplicates: %d   witnesses: %d \
              (unsound %d, starved %d, livelocked %d)\n"
            res.Ch.trials_run res.Ch.hits res.Ch.duplicates
            (List.length res.Ch.witnesses)
            res.Ch.unsound res.Ch.starved res.Ch.livelocked;
          List.iter
            (fun (w : Ch.witness) ->
              let gc =
                List.find
                  (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph)
                  graphs
              in
              let confirmed = Ch.confirms w (Ch.replay cfg runner gc w) in
              pf "\n%s on %s (trial %d, shrunk %d -> %d atoms)%s\n"
                (Ch.describe_kind w.Ch.w_kind)
                w.Ch.w_graph w.Ch.w_trial w.Ch.w_original_size
                (List.length w.Ch.w_faults)
                (if confirmed then ", replay confirms"
                 else " — REPLAY DIVERGED");
              List.iter (fun f -> pf "  %s\n" (Ch.describe_fault f)) w.Ch.w_faults;
              pf "  missing: [%s]\n"
                (String.concat "; " (List.map string_of_int w.Ch.w_missing)))
            res.Ch.witnesses;
          Option.iter
            (fun p ->
              write_file p (Ch.to_json res);
              pf "\nresult written  : %s\n" p)
            json_out;
          (* Instrument a replay of the first witness so the Perfetto trace
             shows the violating schedule itself. *)
          let obs = make_obs ~sample trace_out metrics_out csv_out in
          (match (obs, res.Ch.witnesses) with
          | Some o, (w : Ch.witness) :: _ ->
              let gc =
                List.find
                  (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph)
                  graphs
              in
              let g = gc.Runtime.Campaign.build ~seed:cfg.Ch.seed in
              let faults, vfaults, churn = Ch.compile w.Ch.w_faults in
              let churn =
                match cfg.Ch.churn_t with
                | None -> churn
                | Some t -> Runtime.Churn.with_contract ~t_interval:t g churn
              in
              let (module R) =
                if k = 1 then (module P : Runtime.Protocol_intf.PROTOCOL)
                else Anonet.Resilient.redundant ~k (module P)
              in
              let module En = Runtime.Engine.Make (R) in
              ignore
                (En.run
                   ~scheduler:(Runtime.Scheduler.Replay w.Ch.w_schedule)
                   ~faults ~vfaults ~churn ?supervisor
                   ~step_limit:cfg.Ch.step_limit ~obs:o g)
          | _ -> ());
          flush_obs
            ~meta:
              [
                ("command", "chaos");
                ("protocol", protocol);
                ("witnesses", string_of_int (List.length res.Ch.witnesses));
              ]
            obs trace_out metrics_out csv_out;
          `Ok
            (if res.Ch.unsound > 0 then 2
             else if res.Ch.starved > 0 || res.Ch.livelocked > 0 then 1
             else 0)
        with Invalid_argument msg -> `Error (false, msg))
  in
  let chaos_churn_rate_t =
    Arg.(
      value & opt float 0.0
      & info [ "churn-rate" ] ~docv:"P"
          ~doc:
            "Probability a generated atom is a churn event (a bounded edge \
             outage or an initially-absent edge appearing mid-run) instead \
             of a kill/crash.  0 keeps the generator's classic PRNG stream, \
             so existing seeds reproduce their witnesses byte-for-byte.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Search the joint edge-kill x vertex-crash x edge-churn fault space \
          for minimal fault sets that break broadcast soundness or liveness: \
          seeded random generation, delta-debugging shrink, canonical dedup, \
          and a replayable delivery schedule per witness.  Exits 2 on a \
          soundness witness, 1 on starvation or livelock only, 0 when clean.")
    Term.(
      ret
        (const run $ protocol_t $ redundancy_t $ supervise_t $ budget_t
       $ max_faults_t $ seed_t $ p_edge_t $ recoveries_t $ domains_t
       $ chaos_churn_rate_t $ churn_t_t $ json_out_t $ sample_t $ trace_out_t
       $ metrics_out_t $ csv_out_t))

let churn_cmd =
  let module Ch = Runtime.Chaos in
  let amnesiac_t =
    Arg.(
      value & flag
      & info [ "amnesiac" ]
          ~doc:
            "Run the dynamic-network negative control instead: bare amnesiac \
             flooding on a random-dynamic footprint under an all-churn \
             search.  A churned-in back edge closes a cycle and tokens \
             circulate forever, so the search must find a livelock witness \
             and exit 1.")
  in
  let budget_t =
    Arg.(
      value & opt int 40
      & info [ "budget" ] ~docv:"N"
          ~doc:"Random fault sets tried per graph family.")
  in
  let seed_t =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"S" ~doc:"Search seed.")
  in
  let rate_t =
    Arg.(
      value & opt float 0.5
      & info [ "churn-rate" ] ~docv:"P"
          ~doc:"Probability a generated atom is a churn event.")
  in
  let t_interval_t =
    Arg.(
      value & opt int 4
      & info [ "churn-t" ] ~docv:"T"
          ~doc:
            "T-interval connectivity window: witnesses report how often \
             their churn script breaches it (accounting only; fates and \
             replays are unchanged).")
  in
  let json_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the full search result (witnesses included) as JSON.")
  in
  let dynamic_case ~n =
    {
      Runtime.Campaign.g_name = Printf.sprintf "random-dynamic-%d" n;
      build =
        (fun ~seed ->
          fst
            (F.random_dynamic (Prng.create seed) ~n ~extra_edges:6
               ~back_edges:2 ~t_edge_prob:0.3 ()));
    }
  in
  let run amnesiac budget seed rate t_interval engine json_out sample trace_out
      metrics_out csv_out lineage_out lineage_sample =
    try
      if budget < 1 then invalid_arg "--budget must be at least 1";
      (* Two packaged searches over the dynamic-network regime: the hardened
         stack (Redundant(3) + supervisor, joint kill x crash x churn space)
         that must stay sound, and the amnesiac negative control that must
         livelock.  Both replay their witnesses byte-for-byte. *)
      let cfg, runner, graphs, supervisor =
        if amnesiac then
          ( Ch.config ~budget ~seed ~p_churn:1.0 ~max_faults:1
              ~step_limit:10_000 ~churn_t:t_interval (),
            Anonet.Resilient.chaos_runner ~k:1 (module Anonet.Amnesiac_flood),
            [ dynamic_case ~n:12 ],
            None )
        else
          ( Ch.config ~budget ~seed ~p_churn:rate ~churn_t:t_interval
              ~supervisor:Runtime.Supervisor.default (),
            Anonet.Resilient.chaos_runner ~k:3
              (module Anonet.General_broadcast),
            Anonet.Resilient.chaos_graphs () @ [ dynamic_case ~n:12 ],
            Some Runtime.Supervisor.default )
      in
      pf "churn search: %s, %d fault sets x %d families, churn rate %.2f, \
          T = %d, seed %d%s\n\n"
        runner.Ch.r_name budget (List.length graphs)
        (if amnesiac then 1.0 else rate)
        t_interval seed
        (if amnesiac then " (amnesiac negative control)" else ", supervised");
      let res = Ch.run cfg ~runners:[ runner ] ~graphs in
      pf "trials: %d   hits: %d   duplicates: %d   witnesses: %d \
          (unsound %d, starved %d, livelocked %d)\n"
        res.Ch.trials_run res.Ch.hits res.Ch.duplicates
        (List.length res.Ch.witnesses)
        res.Ch.unsound res.Ch.starved res.Ch.livelocked;
      List.iter
        (fun (w : Ch.witness) ->
          let gc =
            List.find
              (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph)
              graphs
          in
          let confirmed = Ch.confirms w (Ch.replay cfg runner gc w) in
          pf "\n%s on %s (trial %d, shrunk %d -> %d atoms)%s\n"
            (Ch.describe_kind w.Ch.w_kind)
            w.Ch.w_graph w.Ch.w_trial w.Ch.w_original_size
            (List.length w.Ch.w_faults)
            (if confirmed then ", replay confirms" else " — REPLAY DIVERGED");
          List.iter (fun f -> pf "  %s\n" (Ch.describe_fault f)) w.Ch.w_faults;
          pf "  missing: [%s]\n"
            (String.concat "; " (List.map string_of_int w.Ch.w_missing)))
        res.Ch.witnesses;
      Option.iter
        (fun p ->
          write_file p (Ch.to_json res);
          pf "\nresult written  : %s\n" p)
        json_out;
      (* Instrument a replay of the first witness so the Perfetto trace
         shows the violating schedule, churn instants included — and the
         lineage the causal chain that starved the missing vertices. *)
      let obs = make_obs ~sample trace_out metrics_out csv_out in
      let lineage = make_lineage ~sample:lineage_sample lineage_out obs in
      (match res.Ch.witnesses with
      | (w : Ch.witness) :: _ when obs <> None || lineage <> None ->
          let gc =
            List.find
              (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph)
              graphs
          in
          let g = gc.Runtime.Campaign.build ~seed:cfg.Ch.seed in
          let faults, vfaults, churn = Ch.compile w.Ch.w_faults in
          let churn =
            match cfg.Ch.churn_t with
            | None -> churn
            | Some t -> Runtime.Churn.with_contract ~t_interval:t g churn
          in
          (* Engine parity covers the replay scheduler too, so the trace of
             the violating schedule is identical either way. *)
          let replay_one (module P : Runtime.Protocol_intf.PROTOCOL) =
            match engine with
            | Flatcore.Flat ->
                let module En = Flatcore.Engine.Make (P) in
                ignore
                  (En.run
                     ~scheduler:(Runtime.Scheduler.Replay w.Ch.w_schedule)
                     ~faults ~vfaults ~churn ?supervisor
                     ~step_limit:cfg.Ch.step_limit ?obs ?lineage g)
            | Flatcore.Classic ->
                let module En = Runtime.Engine.Make (P) in
                ignore
                  (En.run
                     ~scheduler:(Runtime.Scheduler.Replay w.Ch.w_schedule)
                     ~faults ~vfaults ~churn ?supervisor
                     ~step_limit:cfg.Ch.step_limit ?obs ?lineage g)
          in
          replay_one
            (if amnesiac then (module Anonet.Amnesiac_flood)
             else
               Anonet.Resilient.redundant ~k:3
                 (module Anonet.General_broadcast))
      | _ -> ());
      flush_obs
        ~meta:
          [
            ("command", "churn");
            ("control", if amnesiac then "amnesiac" else "supervised");
            ("witnesses", string_of_int (List.length res.Ch.witnesses));
          ]
        ?lineage obs trace_out metrics_out csv_out;
      flush_lineage lineage lineage_out;
      `Ok
        (if res.Ch.unsound > 0 then 2
         else if res.Ch.starved > 0 || res.Ch.livelocked > 0 then 1
         else 0)
    with Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Search the dynamic-network fault space: edge churn (bounded \
          outages, mid-run edge insertions) joint with kills and crashes, \
          under the T-interval connectivity contract.  The default hardened \
          stack (Redundant(3) + supervisor) must stay sound; --amnesiac \
          runs the negative control that must livelock.  Exits 2 on a \
          soundness witness, 1 on starvation or livelock, 0 when clean.")
    Term.(
      ret
        (const run $ amnesiac_t $ budget_t $ seed_t $ rate_t $ t_interval_t
       $ engine_t $ json_out_t $ sample_t $ trace_out_t $ metrics_out_t
       $ csv_out_t $ lineage_out_t $ lineage_sample_t))

(* {1 Serving}

   [anonet serve] hosts the long-lived session service; [anonet client]
   talks to one over its Unix socket — raw request lines, or the packaged
   smoke probe CI runs. *)

let serve_cmd =
  let graph_t =
    Arg.(
      value
      & opt_all string [ "small=comb:8" ]
      & info [ "g"; "graph" ] ~docv:"NAME=FAMILY"
          ~doc:
            ("Add a named graph to the server table (repeatable).  FAMILY \
              grammar: " ^ F.spec_doc ^ "."))
  in
  let socket_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket at $(docv).")
  in
  let stdio_t =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve stdin/stdout as connection 0 (NDJSON request per line); \
             EOF shuts down when no socket is configured.")
  in
  let workers_t =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains executing sessions concurrently.")
  in
  let max_queue_t =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission-queue bound; submissions beyond it get the typed \
             'overloaded' error immediately.")
  in
  let credits_t =
    Arg.(
      value & opt int 32
      & info [ "credits" ] ~docv:"N"
          ~doc:
            "Max unfinished sessions per connection; beyond it: 'no_credit'.")
  in
  let step_limit_t =
    Arg.(
      value & opt int 10_000_000
      & info [ "step-limit" ] ~docv:"N"
          ~doc:"Default delivery budget for sessions that name none.")
  in
  let journal_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Append-only checksummed write-ahead log.  Every submit is \
             journaled before its acknowledgement; on restart the log is \
             replayed (torn tails truncated, completed results re-executed \
             and digest-verified, acknowledged-but-unfinished submits \
             finished) before serving resumes.")
  in
  let no_sync_t =
    Arg.(
      value & flag
      & info [ "journal-no-sync" ]
          ~doc:
            "Skip the fsync on journal appends (throwaway servers, \
             benchmarking the baseline).")
  in
  let watchdog_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog" ] ~docv:"MS"
          ~doc:
            "Enable the stuck-session watchdog with a $(docv) cancel budget: \
             Running sessions are warned at half the budget, cooperatively \
             cancelled past it, and a (graph, protocol) pair that keeps \
             getting cancelled is quarantined behind a circuit breaker.")
  in
  let shed_t =
    Arg.(
      value & opt int 0
      & info [ "shed-watermark-ms" ] ~docv:"MS"
          ~doc:
            "Queue-latency watermark for adaptive shedding: past it, \
             submissions whose deadline the backlog would blow are refused \
             with a retry-after hint instead of queued.  0 disables.")
  in
  let run graphs socket stdio workers max_queue credits step_limit engine
      journal no_sync watchdog_ms shed_watermark_ms =
    let parse_pair spec =
      match String.index_opt spec '=' with
      | Some i ->
          Ok
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
      | None -> Error (Printf.sprintf "--graph %S is not NAME=FAMILY" spec)
    in
    let rec parse_pairs acc = function
      | [] -> Ok (List.rev acc)
      | spec :: rest -> (
          match parse_pair spec with
          | Ok p -> parse_pairs (p :: acc) rest
          | Error _ as e -> e)
    in
    match parse_pairs [] graphs with
    | Error e -> `Error (false, e)
    | Ok pairs -> (
        if socket = None && not stdio then
          `Error (false, "need --socket PATH, --stdio, or both")
        else
          let config =
            {
              Serve.Server.default_config with
              graphs = pairs;
              workers;
              max_queue;
              credits;
              step_limit;
              default_engine = Flatcore.string_of_kind engine;
              journal;
              journal_sync = not no_sync;
              shed_watermark_ms;
              watchdog =
                Option.map
                  (fun ms ->
                    {
                      Serve.Watchdog.default_config with
                      tick_ms = max 1 (ms / 4);
                      warn_after_ms = max 1 (ms / 2);
                      cancel_after_ms = max 1 ms;
                    })
                  watchdog_ms;
            }
          in
          match Serve.Server.create ~config () with
          | Error e -> `Error (false, e)
          | Ok server ->
              if not stdio then begin
                pf "anonet serve: graphs [%s], %d workers, queue %d, \
                    default engine %s\n"
                  (String.concat "; " (List.map fst pairs))
                  workers max_queue
                  (Flatcore.string_of_kind engine);
                Option.iter
                  (fun (r : Serve.Server.recovery) ->
                    pf
                      "journal recovery: %d replayed (%d verified, %d \
                       mismatched), %d completed, %d cancelled, %d failed, \
                       %d orphans, %d unreplayable%s\n"
                      r.Serve.Server.rec_replayed r.Serve.Server.rec_verified
                      r.Serve.Server.rec_mismatched
                      r.Serve.Server.rec_completed
                      r.Serve.Server.rec_cancelled r.Serve.Server.rec_failed
                      r.Serve.Server.rec_orphans
                      r.Serve.Server.rec_unreplayable
                      (if r.Serve.Server.rec_torn then " (torn tail truncated)"
                       else ""))
                  (Serve.Server.recovery server);
                Option.iter (pf "listening on %s\n%!") socket
              end;
              Serve.Server.serve_loop ?socket ~stdio server;
              `Ok 0)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Host the long-lived session service: graphs loaded once, NDJSON \
          submit/status/result/cancel/metrics/shutdown over stdio and/or a \
          Unix socket, bounded admission, per-connection credits, live \
          rolled-up metrics.")
    Term.(
      ret
        (const run $ graph_t $ socket_t $ stdio_t $ workers_t $ max_queue_t
       $ credits_t $ step_limit_t $ engine_t $ journal_t $ no_sync_t
       $ watchdog_t $ shed_t))

let client_cmd =
  let socket_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Server's Unix socket path.")
  in
  let smoke_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "smoke" ] ~docv:"N"
          ~doc:
            "Run the end-to-end smoke probe: N mixed sessions (flood, \
             counting, churned general; every seed twice), then verify \
             byte-determinism and that the server's merged metrics \
             reconcile with the collected results.  Exits nonzero on any \
             failure.")
  in
  let shutdown_t =
    Arg.(
      value & flag
      & info [ "shutdown" ] ~doc:"Send a shutdown request after everything else.")
  in
  let lines_t =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:"Raw NDJSON request lines, sent in order; responses print to \
                stdout.")
  in
  let retry_t =
    Arg.(
      value & opt int 0
      & info [ "retry" ] ~docv:"N"
          ~doc:
            "Retry raw requests up to N times on 'overloaded' answers and \
             refused connections, with capped exponential backoff plus \
             seeded jitter (the supervisor's retransmission schedule), \
             honouring the server's retry_after_ms hints.  0 disables.")
  in
  let retry_base_t =
    Arg.(
      value & opt int 50
      & info [ "retry-base-ms" ] ~docv:"MS"
          ~doc:"Backoff base for --retry; doubles each round, jittered.")
  in
  let run socket smoke shutdown lines retries retry_base_ms =
    let retry =
      { Serve.Client.default_retry with r_attempts = retries;
        r_base_ms = retry_base_ms }
    in
    let connect () =
      if retries > 0 then Serve.Client.connect_retry ~retry socket
      else Serve.Client.connect socket
    in
    let send_lines () =
      match lines with
      | [] -> Ok ()
      | lines -> (
          match connect () with
          | Error e -> Error e
          | Ok c ->
              let rec go = function
                | [] ->
                    Serve.Client.close c;
                    Ok ()
                | l :: rest -> (
                    match
                      if retries > 0 then
                        Serve.Client.request_retry ~retry c l
                      else Serve.Client.request c l
                    with
                    | Ok resp ->
                        print_endline resp;
                        go rest
                    | Error e ->
                        Serve.Client.close c;
                        Error e)
              in
              go lines)
    in
    let run_smoke () =
      match smoke with
      | None -> Ok true
      | Some n -> (
          match Serve.Client.smoke ~sessions:n ~socket () with
          | Error e -> Error e
          | Ok r ->
              pf
                "smoke: %d sessions, %d results, determinism=%b \
                 reconcile=%b (sum=%d metrics=%d)\n"
                r.Serve.Client.sessions r.Serve.Client.ok_results
                r.Serve.Client.determinism_ok r.Serve.Client.reconcile_ok
                r.Serve.Client.sum_deliveries r.Serve.Client.metrics_deliveries;
              Ok
                (r.Serve.Client.determinism_ok && r.Serve.Client.reconcile_ok
                && r.Serve.Client.ok_results = r.Serve.Client.sessions))
    in
    match send_lines () with
    | Error e -> `Error (false, e)
    | Ok () -> (
        match run_smoke () with
        | Error e -> `Error (false, e)
        | Ok healthy ->
            let sd =
              if shutdown then
                match Serve.Client.shutdown ~socket with
                | Ok resp ->
                    print_endline resp;
                    true
                | Error e ->
                    pf "shutdown failed: %s\n" e;
                    false
              else true
            in
            `Ok (if healthy && sd then 0 else 1))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running 'anonet serve' over its Unix socket: send raw \
          request lines, run the smoke probe, or ask it to shut down.")
    Term.(
      ret
        (const run $ socket_t $ smoke_t $ shutdown_t $ lines_t $ retry_t
       $ retry_base_t))

let main_cmd =
  let doc =
    "Distributed broadcasting and mapping protocols in directed anonymous \
     networks (Langberg, Schwartz & Bruck, PODC 2007)"
  in
  Cmd.group (Cmd.info "anonet" ~version:"1.0.0" ~doc)
    [ run_cmd; sync_cmd; label_cmd; map_cmd; trace_cmd; dot_cmd; faults_cmd;
      check_cmd; obs_cmd; chaos_cmd; churn_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval' main_cmd)
