(* The undirected-anonymous baseline (token-DFS labeling) and the
   exponential label-length gap of the paper's conclusion. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
open Helpers

module U = Anonet.Undirected_labeling

let gen_bidirected =
  QCheck.Gen.(
    map2
      (fun seed n ->
        let prng = Prng.create seed in
        let n = n + 1 in
        F.bidirected_random prng ~n ~extra_edges:(Prng.int prng (n + 1)))
      (int_bound 10_000) (int_bound 40))

let arb_bidirected = QCheck.make ~print:graph_print gen_bidirected

let ids_of g (r : U.state E.report) =
  List.filter_map (fun v -> U.vertex_id r.states.(v)) (G.internal_vertices g)

let is_consecutive ids n =
  List.sort_uniq compare ids = List.init n (fun i -> i)

let test_ring_labels_exact () =
  List.iter
    (fun n ->
      let g = F.bidirected_ring ~n in
      let r = Anonet.Undirected_engine.run g in
      Alcotest.check outcome "terminates" E.Terminated r.outcome;
      let ids = ids_of g r in
      Alcotest.(check bool)
        (Printf.sprintf "ring %d consecutive ids" n)
        true
        (is_consecutive ids n);
      Alcotest.(check (option int)) "terminal learns the count" (Some n)
        (U.total_count r.states.(G.terminal g)))
    [ 1; 2; 3; 5; 9; 20 ]

let test_port_alignment_of_family () =
  (* The protocol's network contract: bidirected ports aligned, last
     out-port to t. *)
  let prng = Prng.create 3 in
  let g = F.bidirected_random prng ~n:12 ~extra_edges:8 in
  List.iter
    (fun v ->
      let k = G.out_degree g v - 1 in
      Alcotest.(check int) "last out-port to t" (G.terminal g) (G.out_neighbor g v k);
      for j = 0 to k - 1 do
        let u, _ = G.in_origin g v j in
        Alcotest.(check int)
          (Printf.sprintf "vertex %d port %d aligned" v j)
          (G.out_neighbor g v j) u
      done)
    (G.internal_vertices g)

let prop_random_bidirected_labeled =
  qcheck_to_alcotest ~count:100 "token DFS labels every vertex consecutively"
    arb_bidirected (fun g ->
      let r = Anonet.Undirected_engine.run g in
      let n = List.length (G.internal_vertices g) in
      r.outcome = E.Terminated
      && is_consecutive (ids_of g r) n
      && U.total_count r.states.(G.terminal g) = Some n)

let prop_schedule_independent =
  qcheck_to_alcotest ~count:40 "correct under every schedule"
    QCheck.(pair arb_bidirected (int_bound 1000))
    (fun (g, seed) ->
      let n = List.length (G.internal_vertices g) in
      [
        Runtime.Scheduler.Fifo;
        Runtime.Scheduler.Lifo;
        Runtime.Scheduler.Random (Prng.create seed);
      ]
      |> List.for_all (fun scheduler ->
             let r = Anonet.Undirected_engine.run ~scheduler g in
             r.outcome = E.Terminated && is_consecutive (ids_of g r) n))

let prop_label_bits_logarithmic =
  qcheck_to_alcotest ~count:60 "labels are O(log |V|) bits" arb_bidirected (fun g ->
      let r = Anonet.Undirected_engine.run g in
      let max_bits =
        List.fold_left
          (fun acc i -> max acc (Bitio.Codes.gamma0_size i))
          0 (ids_of g r)
      in
      let n = List.length (G.internal_vertices g) in
      let log2n =
        let rec lg acc k = if k <= 1 then acc else lg (acc + 1) (k / 2) in
        lg 0 n + 1
      in
      r.outcome = E.Terminated && max_bits <= (2 * log2n) + 3)

let prop_message_count_linear =
  qcheck_to_alcotest ~count:60 "token traversal uses O(|E|) messages"
    arb_bidirected (fun g ->
      let r = Anonet.Undirected_engine.run g in
      (* Token+Return cross each bidirected edge at most twice; Done floods
         once per edge; Start once. *)
      r.outcome = E.Terminated && r.deliveries <= (3 * G.n_edges g) + 2)

let prop_codec_roundtrips =
  qcheck_to_alcotest ~count:40 "wire codec verified in situ" arb_bidirected (fun g ->
      (Anonet.Undirected_engine.run ~verify_codec:true g).outcome = E.Terminated)

(* The conclusion's gap, as one assertion: at equal vertex count, directed
   labels (pruned family) are an order of magnitude longer than undirected
   ones, and the ratio widens with size. *)
let test_exponential_gap () =
  let undirected_bits n =
    let g = F.bidirected_random (Prng.create (77 + n)) ~n ~extra_edges:n in
    let r = Anonet.Undirected_engine.run g in
    List.fold_left (fun acc i -> max acc (Bitio.Codes.gamma0_size i)) 0 (ids_of g r)
  in
  let directed_bits n =
    (* Same vertex count: pruned tree has h + 3 vertices. *)
    (Anonet.Lower_bounds.pruned_label ~height:(n - 3) ~degree:2).label_bits
  in
  let ratio n = float_of_int (directed_bits n) /. float_of_int (undirected_bits n) in
  Alcotest.(check bool) "directed labels much longer at |V|=32" true (ratio 32 > 5.0);
  Alcotest.(check bool) "gap widens with size" true (ratio 64 > ratio 16)

let () =
  Alcotest.run "undirected-baseline"
    [
      ( "token-dfs",
        [
          Alcotest.test_case "ring labels" `Quick test_ring_labels_exact;
          Alcotest.test_case "family port alignment" `Quick
            test_port_alignment_of_family;
          prop_random_bidirected_labeled;
          prop_schedule_independent;
          prop_codec_roundtrips;
        ] );
      ( "complexity",
        [
          prop_label_bits_logarithmic;
          prop_message_count_linear;
          Alcotest.test_case "exponential gap vs directed" `Quick
            test_exponential_gap;
        ] );
    ]
