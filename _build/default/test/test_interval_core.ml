module Is = Intervals.Iset
module IC = Anonet.Interval_core
open Helpers

(* Drive a single vertex's state machine directly with arbitrary inputs and
   check the paper's structural properties: state-monotonicity, conservation
   (nothing received is ever lost), and delta discipline. *)

let arb_inputs =
  QCheck.(
    pair (int_range 0 5)
      (list_of_size (QCheck.Gen.int_range 1 6) (pair arb_iset arb_iset)))

let feed ~assign_label ~out_degree inputs =
  List.fold_left
    (fun (st, log) (alpha, beta) ->
      let st', outs = IC.step ~assign_label st ~alpha ~beta in
      (st', (st, st', outs) :: log))
    (IC.create ~out_degree, [])
    inputs

let prop_monotone assign_label =
  qcheck_to_alcotest ~count:300
    (Printf.sprintf "state-monotonicity (labels=%b)" assign_label)
    arb_inputs
    (fun (d, inputs) ->
      let _, log = feed ~assign_label ~out_degree:d inputs in
      List.for_all (fun (prev, next, _) -> IC.invariant ~prev next) log)

let prop_conservation assign_label =
  qcheck_to_alcotest ~count:300
    (Printf.sprintf "nothing lost: received subset of state (labels=%b)" assign_label)
    arb_inputs
    (fun (d, inputs) ->
      let final, _ = feed ~assign_label ~out_degree:d inputs in
      let received =
        List.fold_left
          (fun acc (a, b) -> Is.union acc (Is.union a b))
          Is.empty inputs
      in
      let held =
        Array.fold_left Is.union
          (Is.union final.IC.beta final.IC.label)
          final.IC.alpha
      in
      (* Out-degree-0 vertices absorb into seen_alpha/beta/label only. *)
      let held = Is.union held (Is.union final.IC.seen_alpha final.IC.beta) in
      Is.subset received held)

let prop_sends_are_deltas assign_label =
  qcheck_to_alcotest ~count:300
    (Printf.sprintf "alpha sends disjoint from previously sent (labels=%b)"
       assign_label)
    arb_inputs
    (fun (d, inputs) ->
      let _, log = feed ~assign_label ~out_degree:d inputs in
      List.for_all
        (fun ((prev : IC.t), _, outs) ->
          List.for_all
            (fun (o : IC.outgoing) ->
              Is.disjoint o.d_alpha prev.IC.alpha.(o.port)
              && Is.disjoint o.d_beta prev.IC.beta)
            outs)
        log)

let prop_alpha_send_recorded assign_label =
  qcheck_to_alcotest ~count:300
    (Printf.sprintf "every alpha send is recorded in state (labels=%b)" assign_label)
    arb_inputs
    (fun (d, inputs) ->
      let _, log = feed ~assign_label ~out_degree:d inputs in
      List.for_all
        (fun (_, (next : IC.t), outs) ->
          List.for_all
            (fun (o : IC.outgoing) ->
              Is.subset o.d_alpha next.IC.alpha.(o.port)
              && Is.subset o.d_beta next.IC.beta)
            outs)
        log)

let prop_label_only_in_label_mode =
  qcheck_to_alcotest ~count:300 "labels appear only in labeling mode" arb_inputs
    (fun (d, inputs) ->
      let final_plain, _ = feed ~assign_label:false ~out_degree:d inputs in
      Is.is_empty final_plain.IC.label)

let prop_label_nonempty_once_initialized =
  qcheck_to_alcotest ~count:300 "labeling init yields non-empty label" arb_inputs
    (fun (d, inputs) ->
      let final, _ = feed ~assign_label:true ~out_degree:d inputs in
      (not final.IC.initialized) || not (Is.is_empty final.IC.label))

(* Deterministic unit checks. *)

let unit_msg = (Is.unit, Is.empty)

let test_first_receive_partitions () =
  let st = IC.create ~out_degree:3 in
  let st', outs = IC.step ~assign_label:false st ~alpha:(fst unit_msg) ~beta:Is.empty in
  Alcotest.(check bool) "initialized" true st'.IC.initialized;
  Alcotest.(check int) "one send per port" 3 (List.length outs);
  let total =
    List.fold_left (fun acc (o : IC.outgoing) -> Is.union acc o.d_alpha) Is.empty outs
  in
  Alcotest.check iset "sends cover everything received" Is.unit total

let test_labeling_keeps_part () =
  let st = IC.create ~out_degree:3 in
  let st', outs = IC.step ~assign_label:true st ~alpha:Is.unit ~beta:Is.empty in
  Alcotest.(check bool) "label non-empty" false (Is.is_empty st'.IC.label);
  let sent =
    List.fold_left (fun acc (o : IC.outgoing) -> Is.union acc o.d_alpha) Is.empty outs
  in
  Alcotest.(check bool) "label disjoint from sends" true (Is.disjoint st'.IC.label sent);
  Alcotest.check iset "label + sends = received" Is.unit (Is.union st'.IC.label sent);
  Alcotest.(check bool) "label beta-flooded" true (Is.subset st'.IC.label st'.IC.beta)

let test_cycle_detection () =
  let st = IC.create ~out_degree:1 in
  (* First receive: everything forwarded on the only port. *)
  let st, outs1 = IC.step ~assign_label:false st ~alpha:Is.unit ~beta:Is.empty in
  Alcotest.(check int) "forwarded" 1 (List.length outs1);
  (* The same commodity comes back: must be diverted to beta, not resent. *)
  let st, outs2 = IC.step ~assign_label:false st ~alpha:Is.unit ~beta:Is.empty in
  Alcotest.check iset "cycle recorded in beta" Is.unit st.IC.beta;
  List.iter
    (fun (o : IC.outgoing) ->
      Alcotest.(check bool) "no alpha resend" true (Is.is_empty o.d_alpha);
      Alcotest.check iset "beta delta flooded" Is.unit o.d_beta)
    outs2;
  Alcotest.(check int) "beta flood goes out" 1 (List.length outs2)

let test_beta_only_before_init () =
  let st = IC.create ~out_degree:2 in
  let half = Is.interval Exact.Dyadic.zero Exact.Dyadic.half in
  let st, outs = IC.step ~assign_label:false st ~alpha:Is.empty ~beta:half in
  Alcotest.(check bool) "still uninitialized" false st.IC.initialized;
  Alcotest.(check int) "beta relayed on both ports" 2 (List.length outs);
  (* Now the real commodity arrives and is partitioned over both ports. *)
  let st, outs = IC.step ~assign_label:false st ~alpha:Is.unit ~beta:Is.empty in
  Alcotest.(check bool) "initialized now" true st.IC.initialized;
  Alcotest.(check int) "both ports served" 2 (List.length outs)

let test_quiet_when_nothing_new () =
  let st = IC.create ~out_degree:2 in
  let st, _ = IC.step ~assign_label:false st ~alpha:Is.unit ~beta:Is.empty in
  (* Re-delivering a beta subset already known: g = phi on every port. *)
  let st', outs = IC.step ~assign_label:false st ~alpha:Is.empty ~beta:Is.empty in
  Alcotest.(check int) "silent" 0 (List.length outs);
  Alcotest.(check bool) "state unchanged" true (IC.invariant ~prev:st st')

let test_accepting () =
  let st = IC.create ~out_degree:0 in
  Alcotest.(check bool) "initially not accepting" false (IC.accepting st);
  let st, _ = IC.step ~assign_label:false st ~alpha:Is.unit ~beta:Is.empty in
  Alcotest.(check bool) "accepting after full coverage" true (IC.accepting st);
  let st2 = IC.create ~out_degree:0 in
  let half = Is.interval Exact.Dyadic.zero Exact.Dyadic.half in
  let st2, _ = IC.step ~assign_label:false st2 ~alpha:half ~beta:Is.empty in
  Alcotest.(check bool) "half coverage not accepting" false (IC.accepting st2)

let () =
  Alcotest.run "interval-core"
    [
      ( "units",
        [
          Alcotest.test_case "first receive partitions" `Quick
            test_first_receive_partitions;
          Alcotest.test_case "labeling keeps a part" `Quick test_labeling_keeps_part;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "beta before init" `Quick test_beta_only_before_init;
          Alcotest.test_case "quiet when nothing new" `Quick test_quiet_when_nothing_new;
          Alcotest.test_case "accepting" `Quick test_accepting;
        ] );
      ( "properties",
        [
          prop_monotone false;
          prop_monotone true;
          prop_conservation false;
          prop_conservation true;
          prop_sends_are_deltas false;
          prop_sends_are_deltas true;
          prop_alpha_send_recorded false;
          prop_alpha_send_recorded true;
          prop_label_only_in_label_mode;
          prop_label_nonempty_once_initialized;
        ] );
    ]
