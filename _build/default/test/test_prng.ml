let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_independent () =
  let a = Prng.create 3 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_diverges () =
  let a = Prng.create 11 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" true (Prng.bits64 a <> Prng.bits64 b)

let test_int_bounds () =
  let g = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_one () =
  let g = Prng.create 5 in
  for _ = 1 to 10 do
    Alcotest.(check int) "bound 1 gives 0" 0 (Prng.int g 1)
  done

let test_int_in () =
  let g = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in g (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_int_covers_range () =
  let g = Prng.create 13 in
  let seen = Array.make 10 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g 10) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all (fun b -> b) seen)

let test_float_range () =
  let g = Prng.create 21 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_chance_extremes () =
  let g = Prng.create 23 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.chance g 0.0);
    Alcotest.(check bool) "p=1 always" true (Prng.chance g 1.0)
  done

let test_shuffle_is_permutation () =
  let g = Prng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_list () =
  let g = Prng.create 37 in
  let l = List.init 30 (fun i -> i) in
  let l' = Prng.shuffle_list g l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare l')

let test_sample_without_replacement () =
  let g = Prng.create 41 in
  for _ = 1 to 50 do
    let k = Prng.int_in g 0 10 in
    let s = Prng.sample_without_replacement g k 10 in
    Alcotest.(check int) "size k" k (List.length s);
    Alcotest.(check bool) "distinct sorted in range" true
      (List.sort_uniq compare s = s && List.for_all (fun v -> v >= 0 && v < 10) s)
  done

let test_pick () =
  let g = Prng.create 43 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "picked element" true (Array.mem (Prng.pick g a) a)
  done;
  Alcotest.(check bool) "pick_list" true
    (List.mem (Prng.pick_list g [ 1; 2; 3 ]) [ 1; 2; 3 ])

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bound=1" `Quick test_int_one;
          Alcotest.test_case "int_in range" `Quick test_int_in;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "pick" `Quick test_pick;
        ] );
      ( "collections",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "shuffle list" `Quick test_shuffle_list;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_sample_without_replacement;
        ] );
    ]
