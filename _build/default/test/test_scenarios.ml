(* Cross-protocol consistency and larger-scale stress scenarios. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
module I = Intervals.Interval
open Helpers

(* The mapping protocol embeds the labeling protocol unchanged: under the
   same deterministic schedule both must assign the same interval to every
   vertex. *)
let prop_mapping_labels_match_labeling =
  qcheck_to_alcotest ~count:50 "mapping labels = labeling labels under FIFO"
    arb_digraph (fun g ->
      let lr = Anonet.Labeling_engine.run g in
      let mr = Anonet.Mapping_engine.run g in
      lr.outcome = E.Terminated && mr.outcome = E.Terminated
      && List.for_all
           (fun v ->
             let from_labeling = Is.first_interval (Anonet.Labeling.label lr.states.(v)) in
             let from_mapping = Anonet.Mapping.vertex_label mr.states.(v) in
             match (from_labeling, from_mapping) with
             | Some a, Some b -> I.equal a b
             | None, None -> true
             | _ -> false)
           (G.internal_vertices g))

(* The general broadcast is the labeling protocol with d instead of d+1
   parts: their coverage at the terminal must both be the whole interval,
   and labeling can only cost more. *)
let prop_labeling_costs_more_than_broadcast =
  qcheck_to_alcotest ~count:50 "labeling costs at least broadcast" arb_digraph
    (fun g ->
      let b = Anonet.broadcast_general g in
      let l, _ = Anonet.assign_labels g in
      b.outcome = E.Terminated && l.outcome = E.Terminated
      && l.total_bits >= b.total_bits)

(* The reconstructed map is itself a valid network: re-running the mapping
   protocol on the reconstruction reproduces it again (a fixpoint). *)
let prop_mapping_fixpoint =
  qcheck_to_alcotest ~count:25 "mapping its own output is a fixpoint" arb_digraph
    (fun g ->
      match Anonet.map_network g with
      | _, Error _ -> false
      | _, Ok m -> (
          match Anonet.map_network m.Anonet.Mapping.graph with
          | _, Ok m2 -> G.isomorphic m.Anonet.Mapping.graph m2.Anonet.Mapping.graph
          | _, Error _ -> false))

(* Engine determinism: identical runs produce identical reports. *)
let prop_engine_deterministic =
  qcheck_to_alcotest ~count:40 "identical runs are bit-identical" arb_digraph
    (fun g ->
      let a = Anonet.broadcast_general g in
      let b = Anonet.broadcast_general g in
      a = b)

(* Same-seed random schedules are also reproducible. *)
let prop_random_schedule_reproducible =
  qcheck_to_alcotest ~count:40 "same-seed random schedule reproduces"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let run () =
        Anonet.broadcast_general
          ~scheduler:(Runtime.Scheduler.Random (Prng.create seed))
          g
      in
      run () = run ())

(* {1 Stress at larger scale} *)

let test_stress_tree_2000 () =
  let g = F.random_grounded_tree (Prng.create 424242) ~n:2000 ~t_edge_prob:0.3 in
  let st = Anonet.broadcast_tree g in
  Alcotest.check outcome "big tree terminates" E.Terminated st.outcome;
  Alcotest.(check int) "one message per edge" (G.n_edges g) st.deliveries

let test_stress_general_300 () =
  let g =
    F.random_digraph (Prng.create 777) ~n:300 ~extra_edges:300 ~back_edges:75
      ~t_edge_prob:0.2
  in
  let st = Anonet.broadcast_general g in
  Alcotest.check outcome "n=300 cyclic digraph terminates" E.Terminated st.outcome;
  Alcotest.(check bool) "all visited" true st.all_visited

let test_stress_mapping_120 () =
  let g =
    F.random_digraph (Prng.create 909) ~n:120 ~extra_edges:60 ~back_edges:30
      ~t_edge_prob:0.2
  in
  let _, map = Anonet.map_network g in
  match map with
  | Ok m ->
      Alcotest.(check bool) "n=120 reconstruction isomorphic" true
        (Anonet.Mapping.map_isomorphic m g)
  | Error e -> Alcotest.fail e

let test_stress_deep_labels () =
  (* 400 sequential halvings: endpoints with hundreds of bits. *)
  let r = Anonet.Lower_bounds.pruned_label ~height:400 ~degree:2 in
  Alcotest.(check bool) "400-level label exact and large" true (r.label_bits > 800)

let test_stress_undirected_500 () =
  let g = F.bidirected_random (Prng.create 31337) ~n:500 ~extra_edges:400 in
  let st, ids = Anonet.assign_labels_undirected g in
  Alcotest.check outcome "n=500 token DFS terminates" E.Terminated st.outcome;
  let assigned = List.filter_map (fun v -> ids.(v)) (G.internal_vertices g) in
  Alcotest.(check int) "all 500 labeled" 500 (List.length assigned);
  Alcotest.(check (list int)) "consecutive" (List.init 500 (fun i -> i))
    (List.sort compare assigned)

let () =
  Alcotest.run "scenarios"
    [
      ( "consistency",
        [
          prop_mapping_labels_match_labeling;
          prop_labeling_costs_more_than_broadcast;
          prop_mapping_fixpoint;
          prop_engine_deterministic;
          prop_random_schedule_reproducible;
        ] );
      ( "stress",
        [
          Alcotest.test_case "tree n=2000" `Slow test_stress_tree_2000;
          Alcotest.test_case "general n=300" `Slow test_stress_general_300;
          Alcotest.test_case "mapping n=120" `Slow test_stress_mapping_120;
          Alcotest.test_case "labels depth 400" `Slow test_stress_deep_labels;
          Alcotest.test_case "undirected n=500" `Slow test_stress_undirected_500;
        ] );
    ]
