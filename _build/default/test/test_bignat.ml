module B = Bignat
open Helpers

(* {1 Unit tests against known values} *)

let test_constants () =
  Alcotest.check bignat "zero" B.zero (B.of_int 0);
  Alcotest.check bignat "one" B.one (B.of_int 1);
  Alcotest.check bignat "two" B.two (B.of_int 2);
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one)

let test_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) "roundtrip" n (B.to_int_exn (B.of_int n)))
    [ 0; 1; 2; 1073741823; 1073741824; 4611686018427387903; max_int ]

let test_of_int_negative () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Bignat.of_int: negative")
    (fun () -> ignore (B.of_int (-1)))

let test_string_known () =
  Alcotest.(check string) "decimal" "123456789012345678901234567890"
    B.(to_string (of_string "123456789012345678901234567890"));
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "binary" "1010" (B.to_string_binary (B.of_int 10));
  Alcotest.(check string) "binary zero" "0" (B.to_string_binary B.zero)

let test_add_known () =
  let a = B.of_string "99999999999999999999" in
  Alcotest.check bignat "carry chain" (B.of_string "100000000000000000000") (B.add a B.one)

let test_sub_known () =
  let a = B.of_string "100000000000000000000" in
  Alcotest.check bignat "borrow chain" (B.of_string "99999999999999999999") (B.sub a B.one);
  Alcotest.check_raises "underflow" (Invalid_argument "Bignat.sub: negative result")
    (fun () -> ignore (B.sub B.one B.two))

let test_mul_known () =
  Alcotest.check bignat "big square"
    (B.of_string "15241578753238836750495351562536198787501905199875019052100")
    B.(mul (of_string "123456789012345678901234567890")
         (of_string "123456789012345678901234567890"))

let test_divmod_known () =
  let a = B.of_string "1000000000000000000000000000007" in
  let b = B.of_string "998244353" in
  let q, r = B.divmod a b in
  Alcotest.check bignat "reconstruct" a (B.add (B.mul q b) r);
  Alcotest.(check bool) "r < b" true (B.compare r b < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod a B.zero))

let test_divmod_int () =
  let a = B.of_string "123456789123456789123456789" in
  let q, r = B.divmod_int a 97 in
  Alcotest.check bignat "reconstruct" a (B.add (B.mul_int q 97) (B.of_int r));
  Alcotest.(check bool) "r in range" true (r >= 0 && r < 97)

let test_gcd_known () =
  Alcotest.check bignat "gcd(12,18)" (B.of_int 6) (B.gcd (B.of_int 12) (B.of_int 18));
  Alcotest.check bignat "gcd(x,0)" (B.of_int 5) (B.gcd (B.of_int 5) B.zero);
  Alcotest.check bignat "gcd(0,x)" (B.of_int 5) (B.gcd B.zero (B.of_int 5));
  Alcotest.check bignat "coprime" B.one (B.gcd (B.of_int 35) (B.of_int 64))

let test_shifts_known () =
  Alcotest.check bignat "shl" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  Alcotest.check bignat "shr" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  Alcotest.check bignat "shr to zero" B.zero (B.shift_right (B.of_int 40) 7);
  Alcotest.check bignat "shl across limbs"
    (B.of_string "85070591730234615865843651857942052864")
    (B.shift_left B.one 126)

let test_bit_length () =
  Alcotest.(check int) "zero" 0 (B.bit_length B.zero);
  Alcotest.(check int) "one" 1 (B.bit_length B.one);
  Alcotest.(check int) "255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.bit_length (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.bit_length (B.pow2 100))

let test_testbit () =
  let x = B.of_int 0b1011010 in
  let expected = [ false; true; false; true; true; false; true; false ] in
  List.iteri
    (fun i b -> Alcotest.(check bool) (Printf.sprintf "bit %d" i) b (B.testbit x i))
    expected

let test_pow () =
  Alcotest.check bignat "3^20" (B.of_string "3486784401") (B.pow (B.of_int 3) 20);
  Alcotest.check bignat "x^0" B.one (B.pow (B.of_int 42) 0);
  Alcotest.check bignat "0^0" B.one (B.pow B.zero 0);
  Alcotest.check bignat "2^200 = pow2 200" (B.pow2 200) (B.pow B.two 200)

let test_limb_boundaries () =
  (* The representation uses 30-bit limbs; exercise values straddling the
     limb edges where carry/borrow/shift bugs hide. *)
  let b30 = B.pow2 30 and b60 = B.pow2 60 and b90 = B.pow2 90 in
  List.iter
    (fun x ->
      Alcotest.check bignat "x = (x+1)-1" x (B.sub (B.add x B.one) B.one);
      Alcotest.check bignat "x = (x-1)+1" x (B.add (B.sub x B.one) B.one);
      Alcotest.check bignat "x = (x<<1)>>1" x (B.shift_right (B.shift_left x 1) 1);
      let q, r = B.divmod x (B.of_int 7) in
      Alcotest.check bignat "divmod at boundary" x (B.add (B.mul_int q 7) r))
    [ b30; B.pred b30; B.succ b30; b60; B.pred b60; B.succ b60; b90; B.pred b90 ]

let test_mul_carry_chain () =
  (* (2^30 - 1)^2 exercises the widest single-limb product. *)
  let m = B.pred (B.pow2 30) in
  Alcotest.check bignat "max limb square"
    (B.add (B.sub (B.pow2 60) (B.pow2 31)) B.one)
    (B.mul m m);
  (* Multiplying all-ones limbs forces long carry propagation. *)
  let ones = B.pred (B.pow2 120) in
  Alcotest.check bignat "(2^120-1)*(2^120-1)"
    (B.sub (B.add (B.pow2 240) B.one) (B.shift_left B.one 121))
    (B.mul ones ones)

let test_compare_order () =
  let xs = List.map B.of_string [ "0"; "1"; "2"; "1073741824"; "99999999999999999999" ] in
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "strictly increasing" true (B.compare a b < 0);
        Alcotest.(check bool) "antisymmetric" true (B.compare b a > 0);
        check rest
    | _ -> ()
  in
  check xs;
  Alcotest.(check bool) "min" true (B.equal (B.min B.one B.two) B.one);
  Alcotest.(check bool) "max" true (B.equal (B.max B.one B.two) B.two)

(* {1 Properties} *)

let prop_add_comm =
  qcheck_to_alcotest "add commutative"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_add_assoc =
  qcheck_to_alcotest "add associative"
    QCheck.(triple arb_bignat arb_bignat arb_bignat)
    (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)))

let prop_add_sub =
  qcheck_to_alcotest "sub inverts add"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) -> B.equal (B.sub (B.add a b) b) a)

let prop_mul_comm =
  qcheck_to_alcotest "mul commutative"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let prop_mul_distributes =
  qcheck_to_alcotest "mul distributes over add"
    QCheck.(triple arb_bignat arb_bignat arb_bignat)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_mul_int_agrees =
  qcheck_to_alcotest "mul_int agrees with mul"
    QCheck.(pair arb_bignat arb_small_nat)
    (fun (a, m) -> B.equal (B.mul_int a m) (B.mul a (B.of_int m)))

let prop_divmod =
  qcheck_to_alcotest "divmod reconstructs"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) ->
      let b = B.succ b in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let prop_gcd_divides =
  qcheck_to_alcotest "gcd divides both"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) ->
      let g = B.gcd a b in
      if B.is_zero g then B.is_zero a && B.is_zero b
      else B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let prop_gcd_comm =
  qcheck_to_alcotest "gcd commutative"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) -> B.equal (B.gcd a b) (B.gcd b a))

let prop_shift_roundtrip =
  qcheck_to_alcotest "shift left then right"
    QCheck.(pair arb_bignat (int_bound 200))
    (fun (a, k) -> B.equal (B.shift_right (B.shift_left a k) k) a)

let prop_shift_is_mul_pow2 =
  qcheck_to_alcotest "shift_left = mul by 2^k"
    QCheck.(pair arb_bignat (int_bound 120))
    (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow2 k)))

let prop_string_roundtrip =
  qcheck_to_alcotest "decimal string roundtrip" arb_bignat (fun a ->
      B.equal a (B.of_string (B.to_string a)))

let prop_bit_length_bounds =
  qcheck_to_alcotest "2^(len-1) <= x < 2^len" arb_bignat (fun a ->
      let n = B.bit_length a in
      if B.is_zero a then n = 0
      else B.compare a (B.pow2 n) < 0 && B.compare a (B.pow2 (n - 1)) >= 0)

let prop_compare_total_order =
  qcheck_to_alcotest "compare consistent with sub"
    QCheck.(pair arb_bignat arb_bignat)
    (fun (a, b) ->
      match B.compare a b with
      | 0 -> B.equal a b
      | c when c < 0 -> not (B.is_zero (B.sub b a))
      | _ -> not (B.is_zero (B.sub a b)))

let prop_int_roundtrip =
  qcheck_to_alcotest "to_int_opt on small values" arb_small_nat (fun n ->
      B.to_int_opt (B.of_int n) = Some n)

let () =
  Alcotest.run "bignat"
    [
      ( "units",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
          Alcotest.test_case "of_int negative" `Quick test_of_int_negative;
          Alcotest.test_case "strings" `Quick test_string_known;
          Alcotest.test_case "add carry" `Quick test_add_known;
          Alcotest.test_case "sub borrow" `Quick test_sub_known;
          Alcotest.test_case "mul big" `Quick test_mul_known;
          Alcotest.test_case "divmod big" `Quick test_divmod_known;
          Alcotest.test_case "divmod_int" `Quick test_divmod_int;
          Alcotest.test_case "gcd" `Quick test_gcd_known;
          Alcotest.test_case "shifts" `Quick test_shifts_known;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "testbit" `Quick test_testbit;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "limb boundaries" `Quick test_limb_boundaries;
          Alcotest.test_case "mul carry chains" `Quick test_mul_carry_chain;
          Alcotest.test_case "compare order" `Quick test_compare_order;
        ] );
      ( "properties",
        [
          prop_add_comm;
          prop_add_assoc;
          prop_add_sub;
          prop_mul_comm;
          prop_mul_distributes;
          prop_mul_int_agrees;
          prop_divmod;
          prop_gcd_divides;
          prop_gcd_comm;
          prop_shift_roundtrip;
          prop_shift_is_mul_pow2;
          prop_string_roundtrip;
          prop_bit_length_bounds;
          prop_compare_total_order;
          prop_int_roundtrip;
        ] );
    ]
