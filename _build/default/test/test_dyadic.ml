module B = Bignat
module Q = Exact.Rational
module Dy = Exact.Dyadic
open Helpers

(* {1 Unit tests} *)

let test_normalization () =
  Alcotest.check dyadic "4/8 = 1/2" Dy.half (Dy.make (B.of_int 4) 3);
  Alcotest.check dyadic "0/2^k = 0" Dy.zero (Dy.make B.zero 10);
  Alcotest.(check int) "mantissa odd after normalize" 3
    (B.to_int_exn (Dy.mantissa (Dy.make (B.of_int 12) 4)));
  Alcotest.(check int) "exponent reduced" 2 (Dy.exponent (Dy.make (B.of_int 12) 4))

let test_decimal_strings () =
  Alcotest.(check string) "5/16" "0.3125" (Dy.to_string (Dy.make (B.of_int 5) 4));
  Alcotest.(check string) "1/2" "0.5" (Dy.to_string Dy.half);
  Alcotest.(check string) "integer" "7" (Dy.to_string (Dy.of_int 7));
  Alcotest.(check string) "negative" "-0.25" (Dy.to_string (Dy.make ~negative:true B.one 2));
  Alcotest.(check string) "zero" "0" (Dy.to_string Dy.zero);
  Alcotest.(check string) "mixed" "2.75" (Dy.to_string (Dy.make (B.of_int 11) 2))

let test_binary_strings () =
  Alcotest.(check string) "5/16" "0.0101" (Dy.to_binary_string (Dy.make (B.of_int 5) 4));
  Alcotest.(check string) "integer" "111" (Dy.to_binary_string (Dy.of_int 7));
  Alcotest.(check string) "zero" "0" (Dy.to_binary_string Dy.zero)

let test_arith_known () =
  Alcotest.check dyadic "1/2 + 1/4" (Dy.make (B.of_int 3) 2)
    (Dy.add Dy.half (Dy.make B.one 2));
  Alcotest.check dyadic "1/2 - 1/4" (Dy.make B.one 2) (Dy.sub Dy.half (Dy.make B.one 2));
  Alcotest.check dyadic "1/4 - 1/2 negative" (Dy.make ~negative:true B.one 2)
    (Dy.sub (Dy.make B.one 2) Dy.half);
  Alcotest.check dyadic "3/4 * 1/2" (Dy.make (B.of_int 3) 3)
    (Dy.mul (Dy.make (B.of_int 3) 2) Dy.half)

let test_pow2 () =
  Alcotest.check dyadic "2^3" (Dy.of_int 8) (Dy.pow2 3);
  Alcotest.check dyadic "2^-2" (Dy.make B.one 2) (Dy.pow2 (-2));
  Alcotest.check dyadic "2^0" Dy.one (Dy.pow2 0)

let test_mul_pow2 () =
  let x = Dy.make (B.of_int 3) 2 in
  Alcotest.check dyadic "x * 4" (Dy.of_int 3) (Dy.mul_pow2 x 2);
  Alcotest.check dyadic "x / 4" (Dy.make (B.of_int 3) 4) (Dy.div_pow2 x 2);
  Alcotest.check dyadic "x * 8 across exp" (Dy.of_int 6) (Dy.mul_pow2 x 3)

let test_midpoint () =
  Alcotest.check dyadic "mid(0,1)" Dy.half (Dy.midpoint Dy.zero Dy.one);
  Alcotest.check dyadic "mid(1/4,1/2)" (Dy.make (B.of_int 3) 3)
    (Dy.midpoint (Dy.make B.one 2) Dy.half)

let test_rational_bridge () =
  let d = Dy.make (B.of_int 5) 4 in
  Alcotest.check rational "to_rational" (Q.of_ints 5 16) (Dy.to_rational d);
  (match Dy.of_rational_opt (Q.of_ints 5 16) with
  | Some d' -> Alcotest.check dyadic "roundtrip" d d'
  | None -> Alcotest.fail "5/16 is dyadic");
  Alcotest.(check bool) "1/3 not dyadic" true (Dy.of_rational_opt (Q.of_ints 1 3) = None)

let test_to_float () =
  Alcotest.(check (float 1e-12)) "0.3125" 0.3125 (Dy.to_float (Dy.make (B.of_int 5) 4));
  Alcotest.(check (float 1e-12)) "-2.5" (-2.5) (Dy.to_float (Dy.make ~negative:true (B.of_int 5) 1))

(* {1 Properties} *)

let prop_add_comm =
  qcheck_to_alcotest "add commutative"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) -> Dy.equal (Dy.add a b) (Dy.add b a))

let prop_add_assoc =
  qcheck_to_alcotest "add associative"
    QCheck.(triple arb_dyadic arb_dyadic arb_dyadic)
    (fun (a, b, c) -> Dy.equal (Dy.add (Dy.add a b) c) (Dy.add a (Dy.add b c)))

let prop_add_neg =
  qcheck_to_alcotest "x + (-x) = 0" arb_dyadic (fun a -> Dy.is_zero (Dy.add a (Dy.neg a)))

let prop_sub_add =
  qcheck_to_alcotest "(a-b)+b = a"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) -> Dy.equal (Dy.add (Dy.sub a b) b) a)

let prop_mul_agrees_with_rational =
  qcheck_to_alcotest "mul agrees with rationals"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) ->
      Q.equal (Dy.to_rational (Dy.mul a b)) (Q.mul (Dy.to_rational a) (Dy.to_rational b)))

let prop_add_agrees_with_rational =
  qcheck_to_alcotest "add agrees with rationals"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) ->
      Q.equal (Dy.to_rational (Dy.add a b)) (Q.add (Dy.to_rational a) (Dy.to_rational b)))

let prop_compare_agrees_with_rational =
  qcheck_to_alcotest "compare agrees with rationals"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) -> Dy.compare a b = Q.compare (Dy.to_rational a) (Dy.to_rational b))

let prop_normal_form =
  qcheck_to_alcotest "normal form: odd mantissa or zero exponent" arb_dyadic (fun a ->
      if Dy.is_zero a then Dy.exponent a = 0 && not (Dy.is_negative a)
      else Dy.exponent a = 0 || not (B.is_even (Dy.mantissa a)))

let prop_mul_pow2_roundtrip =
  qcheck_to_alcotest "mul_pow2 then div_pow2"
    QCheck.(pair arb_dyadic (int_bound 60))
    (fun (a, k) -> Dy.equal (Dy.div_pow2 (Dy.mul_pow2 a k) k) a)

let prop_midpoint_between =
  qcheck_to_alcotest "midpoint strictly between"
    QCheck.(pair arb_dyadic arb_dyadic)
    (fun (a, b) ->
      QCheck.assume (not (Dy.equal a b));
      let lo = Dy.min a b and hi = Dy.max a b in
      let m = Dy.midpoint a b in
      Dy.compare lo m < 0 && Dy.compare m hi < 0)

let prop_rational_roundtrip =
  qcheck_to_alcotest "dyadic -> rational -> dyadic" arb_dyadic (fun a ->
      match Dy.of_rational_opt (Dy.to_rational a) with
      | Some a' -> Dy.equal a a'
      | None -> false)

let prop_of_rational_rejects_non_dyadic =
  qcheck_to_alcotest "rejects odd denominators > 1" arb_rational (fun q ->
      QCheck.assume (not (B.is_one (Q.den q)));
      QCheck.assume (not (B.is_even (Q.den q)));
      Dy.of_rational_opt q = None)

let () =
  Alcotest.run "dyadic"
    [
      ( "units",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "decimal strings" `Quick test_decimal_strings;
          Alcotest.test_case "binary strings" `Quick test_binary_strings;
          Alcotest.test_case "arithmetic" `Quick test_arith_known;
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "mul_pow2" `Quick test_mul_pow2;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "rational bridge" `Quick test_rational_bridge;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ( "properties",
        [
          prop_add_comm;
          prop_add_assoc;
          prop_add_neg;
          prop_sub_add;
          prop_mul_agrees_with_rational;
          prop_add_agrees_with_rational;
          prop_compare_agrees_with_rational;
          prop_normal_form;
          prop_mul_pow2_roundtrip;
          prop_midpoint_between;
          prop_rational_roundtrip;
          prop_of_rational_rejects_non_dyadic;
        ] );
    ]
