module B = Bignat
module Dy = Exact.Dyadic
module I = Intervals.Interval
module Is = Intervals.Iset
open Helpers

let dy n e = Dy.make (B.of_int n) e
let iv a b = I.make a b

(* {1 Interval units} *)

let test_empty_canonical () =
  Alcotest.check interval "reversed is empty" I.empty (iv Dy.one Dy.zero);
  Alcotest.check interval "degenerate is empty" I.empty (iv Dy.half Dy.half);
  Alcotest.(check bool) "is_empty" true (I.is_empty I.empty);
  Alcotest.(check bool) "unit non-empty" false (I.is_empty I.unit)

let test_measure () =
  Alcotest.check dyadic "unit measure" Dy.one (I.measure I.unit);
  Alcotest.check dyadic "empty measure" Dy.zero (I.measure I.empty);
  Alcotest.check dyadic "[1/4,1/2)" (dy 1 2) (I.measure (iv (dy 1 2) Dy.half))

let test_mem () =
  Alcotest.(check bool) "lo included" true (I.mem Dy.zero I.unit);
  Alcotest.(check bool) "hi excluded" false (I.mem Dy.one I.unit);
  Alcotest.(check bool) "inside" true (I.mem Dy.half I.unit);
  Alcotest.(check bool) "empty has no members" false (I.mem Dy.zero I.empty)

let test_intersect () =
  let a = iv Dy.zero Dy.half and b = iv (dy 1 2) Dy.one in
  Alcotest.check interval "overlap" (iv (dy 1 2) Dy.half) (I.intersect a b);
  let c = iv Dy.half Dy.one in
  Alcotest.check interval "touching intervals are disjoint" I.empty (I.intersect a c);
  Alcotest.(check bool) "touches though" true (I.touches a c)

let test_subset () =
  Alcotest.(check bool) "empty subset of anything" true (I.subset I.empty I.unit);
  Alcotest.(check bool) "self subset" true (I.subset I.unit I.unit);
  Alcotest.(check bool) "strict" true (I.subset (iv (dy 1 2) Dy.half) I.unit);
  Alcotest.(check bool) "not subset" false (I.subset I.unit (iv Dy.zero Dy.half))

let test_split_known () =
  (* Splitting [0,1) in 3: N=4, delta=1/4 -> [0,1/4) [1/4,1/2) [1/2,1). *)
  match I.split I.unit 3 with
  | [ a; b; c ] ->
      Alcotest.check interval "first" (iv Dy.zero (dy 1 2)) a;
      Alcotest.check interval "second" (iv (dy 1 2) Dy.half) b;
      Alcotest.check interval "third" (iv Dy.half Dy.one) c
  | _ -> Alcotest.fail "expected 3 parts"

let test_split_edge_cases () =
  Alcotest.(check (list interval)) "k=1 identity" [ I.unit ] (I.split I.unit 1);
  Alcotest.(check int) "empty splits to empties" 4 (List.length (I.split I.empty 4));
  Alcotest.(check bool) "all empty" true (List.for_all I.is_empty (I.split I.empty 4));
  Alcotest.check_raises "k=0 rejected" (Invalid_argument "Interval.split: k must be >= 1")
    (fun () -> ignore (I.split I.unit 0))

let prop_split_partitions =
  qcheck_to_alcotest "split: disjoint cover, all non-empty"
    QCheck.(pair arb_interval (int_range 1 12))
    (fun (ivl, k) ->
      QCheck.assume (not (I.is_empty ivl));
      let parts = I.split ivl k in
      List.length parts = k
      && List.for_all (fun p -> not (I.is_empty p)) parts
      && Is.equal (Is.of_intervals parts) (Is.of_interval ivl)
      && Dy.equal (Dy.sum (List.map I.measure parts)) (I.measure ivl))

let prop_interval_codec =
  qcheck_to_alcotest "interval codec roundtrip" arb_interval (fun ivl ->
      let w = Bitio.Bit_writer.create () in
      I.write w ivl;
      let r =
        Bitio.Bit_reader.of_string
          ~length_bits:(Bitio.Bit_writer.length w)
          (Bitio.Bit_writer.to_string w)
      in
      I.equal (I.read r) ivl)

(* {1 Iset units} *)

let test_normalization_merges () =
  let s = Is.of_intervals [ iv Dy.half Dy.one; iv Dy.zero Dy.half ] in
  Alcotest.check iset "adjacent merge to unit" Is.unit s;
  Alcotest.(check int) "single interval" 1 (Is.count s);
  let s2 = Is.of_intervals [ iv Dy.zero (dy 3 2); iv (dy 1 2) Dy.one ] in
  Alcotest.check iset "overlapping merge" Is.unit s2

let test_gap_preserved () =
  let s = Is.of_intervals [ iv Dy.zero (dy 1 2); iv Dy.half Dy.one ] in
  Alcotest.(check int) "two intervals" 2 (Is.count s);
  Alcotest.check dyadic "measure 3/4" (dy 3 2) (Is.measure s)

let test_union_inter_diff_known () =
  let a = Is.interval Dy.zero Dy.half in
  let b = Is.interval (dy 1 2) Dy.one in
  Alcotest.check iset "union" Is.unit (Is.union a b);
  Alcotest.check iset "inter" (Is.interval (dy 1 2) Dy.half) (Is.inter a b);
  Alcotest.check iset "diff" (Is.interval Dy.zero (dy 1 2)) (Is.diff a b);
  Alcotest.check iset "complement" (Is.interval Dy.half Dy.one) (Is.complement a)

let test_is_unit () =
  Alcotest.(check bool) "unit" true (Is.is_unit Is.unit);
  Alcotest.(check bool) "not quite" false
    (Is.is_unit (Is.interval Dy.zero (dy 1023 10)));
  let pieces = I.split I.unit 7 in
  Alcotest.(check bool) "reassembled from 7 pieces" true
    (Is.is_unit (Is.of_intervals pieces))

let test_mem_iset () =
  let s = Is.of_intervals [ iv Dy.zero (dy 1 2); iv Dy.half Dy.one ] in
  Alcotest.(check bool) "in first" true (Is.mem (dy 1 3) s);
  Alcotest.(check bool) "in gap" false (Is.mem (dy 3 3) s);
  Alcotest.(check bool) "in second" true (Is.mem (dy 3 2) s)

(* {1 Iset algebra properties} *)

let prop_union_comm =
  qcheck_to_alcotest "union commutative"
    QCheck.(pair arb_iset arb_iset)
    (fun (a, b) -> Is.equal (Is.union a b) (Is.union b a))

let prop_union_assoc =
  qcheck_to_alcotest "union associative"
    QCheck.(triple arb_iset arb_iset arb_iset)
    (fun (a, b, c) -> Is.equal (Is.union (Is.union a b) c) (Is.union a (Is.union b c)))

let prop_inter_comm =
  qcheck_to_alcotest "inter commutative"
    QCheck.(pair arb_iset arb_iset)
    (fun (a, b) -> Is.equal (Is.inter a b) (Is.inter b a))

let prop_inter_union_distrib =
  qcheck_to_alcotest "inter distributes over union"
    QCheck.(triple arb_iset arb_iset arb_iset)
    (fun (a, b, c) ->
      Is.equal (Is.inter a (Is.union b c)) (Is.union (Is.inter a b) (Is.inter a c)))

let prop_diff_partition =
  qcheck_to_alcotest "a = (a-b) + (a&b), disjointly"
    QCheck.(pair arb_iset arb_iset)
    (fun (a, b) ->
      let d = Is.diff a b and i = Is.inter a b in
      Is.equal a (Is.union d i) && Is.disjoint d i && Is.disjoint d b)

let prop_measure_additive =
  qcheck_to_alcotest "measure additive over disjoint union"
    QCheck.(pair arb_iset arb_iset)
    (fun (a, b) ->
      let d = Is.diff b a in
      Dy.equal (Is.measure (Is.union a d)) (Dy.add (Is.measure a) (Is.measure d)))

let prop_subset_diff =
  qcheck_to_alcotest "subset iff empty diff"
    QCheck.(pair arb_iset arb_iset)
    (fun (a, b) -> Is.subset a b = Is.is_empty (Is.diff a b))

let prop_complement_involution =
  qcheck_to_alcotest "complement involutive on subsets of [0,1)" arb_iset (fun a ->
      let a = Is.inter a Is.unit in
      Is.equal a (Is.complement (Is.complement a)))

let prop_complement_partition =
  qcheck_to_alcotest "a + complement(a) = [0,1)" arb_iset (fun a ->
      let a = Is.inter a Is.unit in
      Is.is_unit (Is.union a (Is.complement a)) && Is.disjoint a (Is.complement a))

let prop_normal_form_sorted_disjoint =
  qcheck_to_alcotest "normal form: sorted, disjoint, non-adjacent" arb_iset (fun s ->
      let rec ok = function
        | a :: (b :: _ as rest) ->
            Dy.compare (I.hi a) (I.lo b) < 0 && (not (I.is_empty a)) && ok rest
        | [ a ] -> not (I.is_empty a)
        | [] -> true
      in
      ok (Is.intervals s))

let prop_canonical_partition =
  qcheck_to_alcotest "canonical partition: disjoint cover, non-empty parts"
    QCheck.(pair arb_iset (int_range 1 8))
    (fun (s, d) ->
      QCheck.assume (not (Is.is_empty s));
      let parts = Is.canonical_partition s d in
      List.length parts = d
      && List.for_all (fun p -> not (Is.is_empty p)) parts
      && Is.equal (List.fold_left Is.union Is.empty parts) s
      && Helpers.pairwise_disjoint parts)

let prop_canonical_partition_interval_budget =
  qcheck_to_alcotest "canonical partition adds at most d intervals"
    QCheck.(pair arb_iset (int_range 1 8))
    (fun (s, d) ->
      QCheck.assume (not (Is.is_empty s));
      let parts = Is.canonical_partition s d in
      let total = List.fold_left (fun acc p -> acc + Is.count p) 0 parts in
      total <= Is.count s + d)

let prop_iset_codec =
  qcheck_to_alcotest "iset codec roundtrip and size accounting" arb_iset (fun s ->
      let w = Bitio.Bit_writer.create () in
      Is.write w s;
      let r =
        Bitio.Bit_reader.of_string
          ~length_bits:(Bitio.Bit_writer.length w)
          (Bitio.Bit_writer.to_string w)
      in
      Is.equal (Is.read r) s && Bitio.Bit_writer.length w = Is.size_bits s)

let () =
  Alcotest.run "intervals"
    [
      ( "interval",
        [
          Alcotest.test_case "empty canonical" `Quick test_empty_canonical;
          Alcotest.test_case "measure" `Quick test_measure;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "intersect/touches" `Quick test_intersect;
          Alcotest.test_case "subset" `Quick test_subset;
          Alcotest.test_case "split known" `Quick test_split_known;
          Alcotest.test_case "split edge cases" `Quick test_split_edge_cases;
          prop_split_partitions;
          prop_interval_codec;
        ] );
      ( "iset",
        [
          Alcotest.test_case "normalization merges" `Quick test_normalization_merges;
          Alcotest.test_case "gap preserved" `Quick test_gap_preserved;
          Alcotest.test_case "union/inter/diff" `Quick test_union_inter_diff_known;
          Alcotest.test_case "is_unit" `Quick test_is_unit;
          Alcotest.test_case "mem" `Quick test_mem_iset;
        ] );
      ( "iset-properties",
        [
          prop_union_comm;
          prop_union_assoc;
          prop_inter_comm;
          prop_inter_union_distrib;
          prop_diff_partition;
          prop_measure_additive;
          prop_subset_diff;
          prop_complement_involution;
          prop_complement_partition;
          prop_normal_form_sorted_disjoint;
          prop_canonical_partition;
          prop_canonical_partition_interval_budget;
          prop_iset_codec;
        ] );
    ]
