module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
open Helpers

module M = Anonet.Mapping
module M_engine = Anonet.Mapping_engine

let run_map ?scheduler g =
  let r = M_engine.run ?scheduler g in
  (r, M.extract_map r.states.(G.terminal g))

let check_reconstruction name g =
  let r, map = run_map g in
  Alcotest.check outcome (name ^ " terminates") E.Terminated r.outcome;
  match map with
  | Error e -> Alcotest.fail (name ^ ": extraction failed: " ^ e)
  | Ok m ->
      Alcotest.(check int)
        (name ^ ": vertex count")
        (G.n_vertices g)
        (G.n_vertices m.M.graph);
      Alcotest.(check int) (name ^ ": edge count") (G.n_edges g) (G.n_edges m.M.graph);
      Alcotest.(check bool) (name ^ ": isomorphic") true (M.map_isomorphic m g)

let test_families () =
  List.iter
    (fun (name, g) -> check_reconstruction name g)
    [
      ("path", F.path 4);
      ("comb", F.comb 6);
      ("diamond", F.diamond ());
      ("grid", F.grid_dag ~rows:3 ~cols:3);
      ("cycle", F.cycle_with_exit ~k:5);
      ("figure eight", F.figure_eight ());
      ("skeleton", F.skeleton ~n:2 ~subset:[| true; true |]);
      ("pruned tree", F.pruned_tree ~height:3 ~degree:3);
    ]

let test_direct_s_to_t () =
  (* Smallest possible network: s -> v -> t (and s -> t is disallowed by
     the model only in that t must absorb; test both tiny shapes). *)
  check_reconstruction "two hop" (F.path 1);
  let g = G.make ~n:2 ~s:0 ~t:1 [ (0, 1) ] in
  let r, map = run_map g in
  Alcotest.check outcome "s->t terminates" E.Terminated r.outcome;
  match map with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check int) "just s and t" 2 (G.n_vertices m.M.graph);
      Alcotest.(check bool) "isomorphic" true (M.map_isomorphic m g)

let test_trap_blocks () =
  let g = F.add_trap (F.diamond ()) ~from_vertex:1 in
  let r = M_engine.run g in
  Alcotest.check outcome "no termination" E.Quiescent r.outcome;
  match M.extract_map r.states.(G.terminal g) with
  | Ok _ -> Alcotest.fail "must not extract from non-accepting state"
  | Error _ -> ()

let test_announcements_match_degrees () =
  let g = F.figure_eight () in
  let r, _ = run_map g in
  let anns =
    List.filter
      (fun (a : M.announcement) -> a.ann_who <> M.Root)
      (M.announcements r.states.(G.terminal g))
  in
  Alcotest.(check int) "one announcement per internal vertex"
    (List.length (G.internal_vertices g))
    (List.length anns);
  (* The multiset of announced (out, in) degrees matches the ground truth. *)
  let announced =
    List.sort compare (List.map (fun (a : M.announcement) -> (a.ann_out, a.ann_in)) anns)
  in
  let truth =
    List.sort compare
      (List.map (fun v -> (G.out_degree g v, G.in_degree g v)) (G.internal_vertices g))
  in
  Alcotest.(check (list (pair int int))) "degree multiset" truth announced

let test_facts_cover_every_edge () =
  let g = F.grid_dag ~rows:2 ~cols:3 in
  let r, _ = run_map g in
  let t_state = r.states.(G.terminal g) in
  let flooded = List.length (M.facts t_state) in
  (* Every edge not ending at t is a flooded fact; edges into t are local. *)
  let into_t =
    List.length (List.filter (fun (_, v) -> v = G.terminal g) (G.edges g))
  in
  Alcotest.(check int) "flooded facts + t-local = |E|" (G.n_edges g)
    (flooded + into_t)

let prop_reconstruction_on_random_digraphs =
  qcheck_to_alcotest ~count:60 "reconstructs random digraphs exactly" arb_digraph
    (fun g ->
      let r, map = run_map g in
      r.outcome = E.Terminated
      &&
      match map with
      | Error _ -> false
      | Ok m ->
          G.n_vertices m.M.graph = G.n_vertices g
          && G.n_edges m.M.graph = G.n_edges g
          && M.map_isomorphic m g)

let prop_reconstruction_on_random_dags =
  qcheck_to_alcotest ~count:60 "reconstructs random DAGs exactly" arb_dag (fun g ->
      let _, map = run_map g in
      match map with Error _ -> false | Ok m -> M.map_isomorphic m g)

let prop_schedule_independent_reconstruction =
  qcheck_to_alcotest ~count:30 "reconstruction is schedule independent"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      [
        Runtime.Scheduler.Fifo;
        Runtime.Scheduler.Lifo;
        Runtime.Scheduler.Random (Prng.create seed);
        Runtime.Scheduler.Edge_priority (fun e -> -e);
        Runtime.Scheduler.Edge_priority (fun e -> e);
      ]
      |> List.for_all (fun sch ->
             match run_map ~scheduler:sch g with
             | _, Ok m -> M.map_isomorphic m g
             | _, Error _ -> false))

let prop_traps_block_mapping =
  qcheck_to_alcotest ~count:40 "traps prevent mapping termination"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let internals = G.internal_vertices g in
      QCheck.assume (internals <> []);
      let v = List.nth internals (seed mod List.length internals) in
      let r = M_engine.run (F.add_trap g ~from_vertex:v) in
      r.outcome = E.Quiescent)

(* The reconstructed labels are exactly the labeling protocol's labels. *)
let test_map_labels_are_valid_intervals () =
  let g = F.cycle_with_exit ~k:4 in
  let _, map = run_map g in
  match map with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Array.iteri
        (fun v lbl ->
          match lbl with
          | Some iv ->
              Alcotest.(check bool)
                (Printf.sprintf "vertex %d label inside [0,1)" v)
                true
                (Is.subset (Is.of_interval iv) Is.unit)
          | None ->
              Alcotest.(check bool) "only s and t unlabeled" true
                (v = 0 || v = G.n_vertices m.M.graph - 1))
        m.M.labels

let test_map_isomorphic_rejects_wrong_graph () =
  let g = F.diamond () in
  let _, map = run_map g in
  match map with
  | Error e -> Alcotest.fail e
  | Ok m ->
      Alcotest.(check bool) "accepts truth" true (M.map_isomorphic m g);
      Alcotest.(check bool) "rejects different graph" false
        (M.map_isomorphic m (F.path 4));
      (* Same sizes, different wiring. *)
      let other = G.make ~n:6 ~s:0 ~t:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (2, 4); (4, 5) ] in
      Alcotest.(check bool) "rejects same-size different graph" false
        (M.map_isomorphic m other)

let () =
  Alcotest.run "mapping"
    [
      ( "reconstruction",
        [
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "tiny networks" `Quick test_direct_s_to_t;
          Alcotest.test_case "trap blocks" `Quick test_trap_blocks;
          prop_reconstruction_on_random_digraphs;
          prop_reconstruction_on_random_dags;
          prop_schedule_independent_reconstruction;
          prop_traps_block_mapping;
        ] );
      ( "knowledge",
        [
          Alcotest.test_case "announcements match degrees" `Quick
            test_announcements_match_degrees;
          Alcotest.test_case "facts cover edges" `Quick test_facts_cover_every_edge;
          Alcotest.test_case "labels valid" `Quick test_map_labels_are_valid_intervals;
          Alcotest.test_case "isomorphism test discriminates" `Quick
            test_map_isomorphic_rejects_wrong_graph;
        ] );
    ]
