module B = Bignat
module Q = Exact.Rational
open Helpers

(* {1 Unit tests} *)

let test_normalization () =
  Alcotest.check rational "6/8 = 3/4" (Q.of_ints 3 4) (Q.of_ints 6 8);
  Alcotest.check rational "0/5 = 0" Q.zero (Q.of_ints 0 5);
  Alcotest.check rational "neg/neg" (Q.of_ints 1 2) (Q.of_ints (-1) (-2));
  Alcotest.(check string) "reduced printing" "3/4" (Q.to_string (Q.of_ints 6 8));
  Alcotest.(check string) "integer printing" "5" (Q.to_string (Q.of_int 5));
  Alcotest.(check string) "negative printing" "-2/3" (Q.to_string (Q.of_ints 2 (-3)))

let test_zero_canonical () =
  let z = Q.sub (Q.of_ints 1 3) (Q.of_ints 1 3) in
  Alcotest.(check bool) "is_zero" true (Q.is_zero z);
  Alcotest.(check bool) "not negative" false (Q.is_negative z);
  Alcotest.(check int) "sign" 0 (Q.sign z)

let test_arith_known () =
  Alcotest.check rational "1/2+1/3" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rational "1/2-1/3" (Q.of_ints 1 6) (Q.sub (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rational "1/3-1/2" (Q.of_ints (-1) 6) (Q.sub (Q.of_ints 1 3) (Q.of_ints 1 2));
  Alcotest.check rational "2/3*3/4" (Q.of_ints 1 2) (Q.mul (Q.of_ints 2 3) (Q.of_ints 3 4));
  Alcotest.check rational "(1/2)/(1/3)" (Q.of_ints 3 2) (Q.div (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rational "div_int" (Q.of_ints 1 6) (Q.div_int (Q.of_ints 1 2) 3)

let test_div_errors () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv zero" Division_by_zero (fun () -> ignore (Q.inv Q.zero));
  Alcotest.check_raises "div_int 0" Division_by_zero (fun () ->
      ignore (Q.div_int Q.one 0));
  Alcotest.check_raises "make den 0" Division_by_zero (fun () ->
      ignore (Q.make B.one B.zero))

let test_flow_split_sums_to_one () =
  (* The naive tree protocol's core identity: sum of d copies of x/d is x. *)
  List.iter
    (fun d ->
      let x = Q.of_ints 3 7 in
      let part = Q.div_int x d in
      Alcotest.check rational
        (Printf.sprintf "d=%d" d)
        x
        (Q.sum (List.init d (fun _ -> part))))
    [ 1; 2; 3; 5; 8; 13 ]

let test_compare_known () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Q.compare (Q.of_ints (-1) 2) (Q.of_ints 1 3) < 0);
  Alcotest.(check bool) "-1/3 > -1/2" true (Q.compare (Q.of_ints (-1) 3) (Q.of_ints (-1) 2) > 0)

let test_to_float () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Q.to_float (Q.of_ints 3 4));
  Alcotest.(check (float 1e-9)) "-1/8" (-0.125) (Q.to_float (Q.of_ints (-1) 8))

(* {1 Properties} *)

let prop_add_comm =
  qcheck_to_alcotest "add commutative"
    QCheck.(pair arb_rational arb_rational)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_add_assoc =
  qcheck_to_alcotest "add associative"
    QCheck.(triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) -> Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_add_neg =
  qcheck_to_alcotest "x + (-x) = 0" arb_rational (fun a ->
      Q.is_zero (Q.add a (Q.neg a)))

let prop_sub_add =
  qcheck_to_alcotest "(a-b)+b = a"
    QCheck.(pair arb_rational arb_rational)
    (fun (a, b) -> Q.equal (Q.add (Q.sub a b) b) a)

let prop_mul_assoc =
  qcheck_to_alcotest "mul associative"
    QCheck.(triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) -> Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c)))

let prop_distrib =
  qcheck_to_alcotest "distributivity"
    QCheck.(triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) -> Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_inv =
  qcheck_to_alcotest "x * 1/x = 1" arb_rational (fun a ->
      QCheck.assume (not (Q.is_zero a));
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_reduced =
  qcheck_to_alcotest "always reduced" arb_rational (fun a ->
      Q.is_zero a || B.is_one (B.gcd (Q.num a) (Q.den a)))

let prop_compare_antisym =
  qcheck_to_alcotest "compare antisymmetric"
    QCheck.(pair arb_rational arb_rational)
    (fun (a, b) -> Q.compare a b = -Q.compare b a)

let prop_compare_add_monotone =
  qcheck_to_alcotest "compare invariant under translation"
    QCheck.(triple arb_rational arb_rational arb_rational)
    (fun (a, b, c) -> Q.compare a b = Q.compare (Q.add a c) (Q.add b c))

let prop_abs_sign =
  qcheck_to_alcotest "abs and sign consistent" arb_rational (fun a ->
      (Q.sign (Q.abs a) >= 0)
      && Q.equal (Q.abs a) (if Q.is_negative a then Q.neg a else a))

let prop_sum_matches_folds =
  qcheck_to_alcotest "sum = fold add"
    QCheck.(list_of_size (QCheck.Gen.int_bound 10) arb_rational)
    (fun l -> Q.equal (Q.sum l) (List.fold_left Q.add Q.zero l))

let () =
  Alcotest.run "rational"
    [
      ( "units",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "zero canonical" `Quick test_zero_canonical;
          Alcotest.test_case "arithmetic" `Quick test_arith_known;
          Alcotest.test_case "division errors" `Quick test_div_errors;
          Alcotest.test_case "flow split sums" `Quick test_flow_split_sums_to_one;
          Alcotest.test_case "compare" `Quick test_compare_known;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ( "properties",
        [
          prop_add_comm;
          prop_add_assoc;
          prop_add_neg;
          prop_sub_add;
          prop_mul_assoc;
          prop_distrib;
          prop_inv;
          prop_reduced;
          prop_compare_antisym;
          prop_compare_add_monotone;
          prop_abs_sign;
          prop_sum_matches_folds;
        ] );
    ]
