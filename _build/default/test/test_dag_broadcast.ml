module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Dy = Exact.Dyadic
open Helpers

module Dag = Anonet.Dag_broadcast_pow2
module Dag_engine = Anonet.Dag_engine
module Dag_naive_engine = Anonet.Dag_naive_engine

let test_terminates_on_dag_families () =
  List.iter
    (fun (name, g) ->
      let st = Anonet.broadcast_dag g in
      Alcotest.check outcome (name ^ " terminates") E.Terminated st.outcome;
      Alcotest.(check bool) (name ^ " visits all") true st.all_visited)
    [
      ("diamond", F.diamond ());
      ("grid 3x3", F.grid_dag ~rows:3 ~cols:3);
      ("grid 1x8", F.grid_dag ~rows:1 ~cols:8);
      ("comb", F.comb 6);
      ("full tree", F.full_tree ~height:3 ~degree:2);
      ("skeleton", F.skeleton ~n:3 ~subset:[| true; false; true |]);
    ]

let test_one_message_per_edge () =
  let g = F.grid_dag ~rows:4 ~cols:5 in
  let r = Dag_engine.run g in
  Alcotest.check outcome "terminated" E.Terminated r.outcome;
  Array.iter (fun c -> Alcotest.(check int) "exactly one" 1 c) r.edge_messages;
  Alcotest.(check int) "deliveries = |E|" (G.n_edges g) r.deliveries

let test_terminal_sums_to_one () =
  let g = F.grid_dag ~rows:3 ~cols:4 in
  let r = Dag_engine.run g in
  Alcotest.check dyadic "conservation at t" Dy.one (Dag.accumulated r.states.(G.terminal g))

let test_deadlock_on_cycles () =
  List.iter
    (fun (name, g) ->
      let st = Anonet.broadcast_dag g in
      Alcotest.check outcome (name ^ " deadlocks") E.Quiescent st.outcome;
      Alcotest.(check bool) (name ^ " does not even visit all") false st.all_visited)
    [
      ("cycle", F.cycle_with_exit ~k:4);
      ("figure eight", F.figure_eight ());
    ]

let test_trap_no_termination () =
  let g = F.add_trap (F.grid_dag ~rows:3 ~cols:3) ~from_vertex:2 in
  Alcotest.check outcome "trap blocks" E.Quiescent (Anonet.broadcast_dag g).outcome

let prop_terminates_on_random_dags =
  qcheck_to_alcotest ~count:100 "terminates on random DAGs, one message per edge"
    arb_dag (fun g ->
      let r = Dag_engine.run g in
      r.outcome = E.Terminated
      && Array.for_all (fun v -> v) r.visited
      && r.deliveries = G.n_edges g
      && Array.for_all (fun c -> c = 1) r.edge_messages)

(* Definition B.1, verified on executions: at every internal vertex the
   commodity flowing in equals the commodity flowing out (s only emits,
   t only absorbs). *)
let prop_commodity_preservation_at_every_vertex =
  qcheck_to_alcotest ~count:60 "Def B.1: per-vertex flow conservation" arb_dag
    (fun g ->
      let n = G.n_vertices g in
      let inflow = Array.make n Dy.zero and outflow = Array.make n Dy.zero in
      let hook (ev : E.event) (msg : Dag.message) =
        outflow.(ev.from_vertex) <- Dy.add outflow.(ev.from_vertex) msg;
        inflow.(ev.to_vertex) <- Dy.add inflow.(ev.to_vertex) msg
      in
      let r = Dag_engine.run ~on_deliver:hook g in
      r.outcome = E.Terminated
      && List.for_all
           (fun v -> Dy.equal inflow.(v) outflow.(v))
           (G.internal_vertices g)
      && Dy.equal outflow.(G.source g) Dy.one
      && Dy.equal inflow.(G.terminal g) Dy.one)

let prop_naive_same_shape =
  qcheck_to_alcotest ~count:60 "naive rule: same outcome and message count" arb_dag
    (fun g ->
      let a = Dag_engine.run g in
      let b = Dag_naive_engine.run g in
      a.outcome = b.outcome && a.deliveries = b.deliveries)

let prop_schedule_independent =
  qcheck_to_alcotest ~count:50 "schedule independent on DAGs"
    QCheck.(pair arb_dag (int_bound 1000))
    (fun (g, seed) ->
      [
        Runtime.Scheduler.Fifo;
        Runtime.Scheduler.Lifo;
        Runtime.Scheduler.Random (Prng.create seed);
        Runtime.Scheduler.Edge_priority (fun e -> -e);
      ]
      |> List.for_all (fun sch ->
             let st = Anonet.broadcast_dag ~scheduler:sch g in
             st.outcome = E.Terminated && st.all_visited))

(* Bandwidth shape (Section 3.3): value exponents can reach Theta(|E|), so
   per-edge bits grow with depth on deep splitting chains. *)
let test_bandwidth_grows_on_splitting_chains () =
  let bw k =
    let subset = Array.make k true in
    let g = F.skeleton ~n:k ~subset in
    let r = Dag_engine.run g in
    Alcotest.check outcome "terminates" E.Terminated r.outcome;
    r.max_message_bits
  in
  let b4 = bw 4 and b16 = bw 16 in
  Alcotest.(check bool) "bandwidth grows linearly-ish" true (b16 >= b4 + 12)

(* The scalar tree protocol also works on DAGs but sends one message per
   s->v path; the waiting protocol sends one per edge.  The diamond chain
   makes the gap exponential. *)
let test_wait_rule_beats_eager_on_reconverging_dags () =
  let chain_of_diamonds k =
    (* s -> d1 -> (a|b) -> d2 -> ... -> t, k diamonds. *)
    let n = (3 * k) + 1 in
    (* hub_i = 3i+1; branches 3i+2, 3i+3. *)
    let t = n + 1 in
    let edges = ref [ (0, 1) ] in
    for i = 0 to k - 1 do
      let hub = (3 * i) + 1 in
      edges := (hub + 2, hub + 3) :: (hub + 1, hub + 3) :: (hub, hub + 2)
               :: (hub, hub + 1) :: !edges
    done;
    edges := ((3 * k) + 1, t) :: !edges;
    G.make ~n:(n + 2) ~s:0 ~t (List.rev !edges)
  in
  let g = chain_of_diamonds 8 in
  let waiting = Dag_engine.run g in
  let eager = Anonet.Tree_engine.run g in
  Alcotest.check outcome "waiting terminates" E.Terminated waiting.outcome;
  Alcotest.check outcome "eager also terminates" E.Terminated eager.outcome;
  Alcotest.(check int) "waiting: one per edge" (G.n_edges g) waiting.deliveries;
  Alcotest.(check bool) "eager sends one message per path (2^k blowup)" true
    (eager.deliveries > 250 && eager.deliveries > 4 * waiting.deliveries)

let () =
  Alcotest.run "dag-broadcast"
    [
      ( "termination",
        [
          Alcotest.test_case "families terminate" `Quick test_terminates_on_dag_families;
          Alcotest.test_case "one message per edge" `Quick test_one_message_per_edge;
          Alcotest.test_case "conservation at t" `Quick test_terminal_sums_to_one;
          Alcotest.test_case "cycles deadlock" `Quick test_deadlock_on_cycles;
          Alcotest.test_case "trap blocks" `Quick test_trap_no_termination;
          prop_terminates_on_random_dags;
          prop_schedule_independent;
          prop_commodity_preservation_at_every_vertex;
        ] );
      ( "shape",
        [
          Alcotest.test_case "bandwidth grows on chains" `Quick
            test_bandwidth_grows_on_splitting_chains;
          Alcotest.test_case "wait-rule vs eager blowup" `Quick
            test_wait_rule_beats_eager_on_reconverging_dags;
          prop_naive_same_shape;
        ] );
    ]
