module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
module I = Intervals.Interval
open Helpers

module L = Anonet.Labeling
module L_engine = Anonet.Labeling_engine

(* Labels of the internal vertices after a run. *)
let internal_labels g (r : L.state E.report) =
  List.map (fun v -> L.label r.states.(v)) (G.internal_vertices g)

let check_unique_labeling name g =
  let r = L_engine.run g in
  Alcotest.check outcome (name ^ " terminates") E.Terminated r.outcome;
  let labels = internal_labels g r in
  Alcotest.(check bool) (name ^ ": all internal vertices labeled") true
    (List.for_all (fun l -> not (Is.is_empty l)) labels);
  Alcotest.(check bool) (name ^ ": labels pairwise disjoint") true
    (pairwise_disjoint labels);
  Alcotest.(check bool) (name ^ ": labels are single intervals") true
    (List.for_all (fun l -> Is.count l = 1) labels)

let test_families () =
  List.iter
    (fun (name, g) -> check_unique_labeling name g)
    [
      ("path", F.path 4);
      ("comb", F.comb 7);
      ("diamond", F.diamond ());
      ("grid", F.grid_dag ~rows:3 ~cols:3);
      ("cycle", F.cycle_with_exit ~k:6);
      ("figure eight", F.figure_eight ());
      ("pruned tree", F.pruned_tree ~height:4 ~degree:3);
    ]

let test_trap_blocks () =
  let g = F.add_trap (F.cycle_with_exit ~k:4) ~from_vertex:1 in
  Alcotest.check outcome "no termination with trap" E.Quiescent (L_engine.run g).outcome

let prop_unique_labels_on_random_digraphs =
  qcheck_to_alcotest ~count:80 "unique disjoint single-interval labels" arb_digraph
    (fun g ->
      let r = L_engine.run g in
      let labels = internal_labels g r in
      r.outcome = E.Terminated
      && List.for_all (fun l -> not (Is.is_empty l)) labels
      && pairwise_disjoint labels
      && List.for_all (fun l -> Is.count l = 1) labels)

let prop_labels_schedule_independent_validity =
  qcheck_to_alcotest ~count:40 "valid under every schedule"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      [
        Runtime.Scheduler.Fifo;
        Runtime.Scheduler.Lifo;
        Runtime.Scheduler.Random (Prng.create seed);
      ]
      |> List.for_all (fun sch ->
             let r = L_engine.run ~scheduler:sch g in
             let labels = internal_labels g r in
             r.outcome = E.Terminated
             && List.for_all (fun l -> not (Is.is_empty l)) labels
             && pairwise_disjoint labels))

(* Labels are still subsets of [0,1) accounted for at the terminal: label
   union beta union alpha at t covers the unit interval. *)
let prop_labels_accounted_at_terminal =
  qcheck_to_alcotest ~count:60 "terminal accounts for every label" arb_digraph
    (fun g ->
      let r = L_engine.run g in
      r.outcome = E.Terminated
      &&
      let covered_at_t = L.covered r.states.(G.terminal g) in
      List.for_all
        (fun l -> Is.subset l covered_at_t)
        (internal_labels g r))

(* Theorem 5.1: label length O(|V| log d_out) bits. *)
let prop_label_bits_bounded =
  qcheck_to_alcotest ~count:60 "label bits O(|V| log d_out)" arb_digraph (fun g ->
      let r = L_engine.run g in
      r.outcome = E.Terminated
      &&
      let v = G.n_vertices g in
      let logd =
        let rec lg acc n = if n <= 1 then acc else lg (acc + 1) (n / 2) in
        max 1 (lg 0 (G.max_out_degree g) + 1)
      in
      List.for_all
        (fun l -> Is.max_endpoint_bits l <= (8 * v * logd) + 64)
        (internal_labels g r))

(* Label determinism: the protocol is deterministic under a fixed schedule. *)
let test_deterministic_under_fifo () =
  let g = F.figure_eight () in
  let r1 = L_engine.run g and r2 = L_engine.run g in
  List.iter2
    (fun a b -> Alcotest.check iset "same label" a b)
    (internal_labels g r1) (internal_labels g r2)

(* The first labeled vertex keeps the first slice of [0,1): on a path the
   labels are fully predictable. *)
let test_path_labels_explicit () =
  let g = F.path 2 in
  (* s=0 -> v1 -> v2 -> t.  v1 has out-degree 1: canonical partition of
     [0,1) into 2 parts: label [0,1/2), forward [1/2,1).  v2 then keeps
     [1/2,3/4) and forwards [3/4,1). *)
  let r = L_engine.run g in
  Alcotest.check outcome "terminated" E.Terminated r.outcome;
  let dy n e = Exact.Dyadic.make (Bignat.of_int n) e in
  Alcotest.check iset "v1 label" (Is.interval Exact.Dyadic.zero Exact.Dyadic.half)
    (L.label r.states.(1));
  Alcotest.check iset "v2 label" (Is.interval Exact.Dyadic.half (dy 3 2))
    (L.label r.states.(2));
  Alcotest.check iset "t absorbs the rest as terminal coverage"
    Is.unit (L.covered r.states.(3))

(* Every vertex that never lies on an s->t path keeps the protocol from
   terminating; vertices on paths always get labels first. *)
let test_labels_exist_before_termination () =
  let g = F.cycle_with_exit ~k:5 in
  let t = G.terminal g in
  let labeled_at_end = ref 0 in
  let hook (ev : E.event) (_ : L.message) = ignore ev in
  let r = L_engine.run ~on_deliver:hook g in
  Array.iteri
    (fun v st ->
      if v <> G.source g && v <> t && not (Is.is_empty (L.label st)) then
        incr labeled_at_end)
    r.states;
  Alcotest.(check int) "all five cycle vertices labeled" 5 !labeled_at_end

let () =
  Alcotest.run "labeling"
    [
      ( "uniqueness",
        [
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "trap blocks" `Quick test_trap_blocks;
          prop_unique_labels_on_random_digraphs;
          prop_labels_schedule_independent_validity;
          prop_labels_accounted_at_terminal;
        ] );
      ( "label-structure",
        [
          prop_label_bits_bounded;
          Alcotest.test_case "deterministic under fifo" `Quick
            test_deterministic_under_fifo;
          Alcotest.test_case "path labels explicit" `Quick test_path_labels_explicit;
          Alcotest.test_case "cycle labels complete" `Quick
            test_labels_exist_before_termination;
        ] );
    ]
