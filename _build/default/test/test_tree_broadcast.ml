module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Dy = Exact.Dyadic
module B = Bignat
open Helpers

module Tree = Anonet.Tree_broadcast
module Naive = Anonet.Tree_broadcast_naive
module Tree_engine = Anonet.Tree_engine
module Naive_engine = Anonet.Tree_naive_engine

let schedulers seed =
  [
    Runtime.Scheduler.Fifo;
    Runtime.Scheduler.Lifo;
    Runtime.Scheduler.Random (Prng.create seed);
    Runtime.Scheduler.Edge_priority (fun e -> -e);
  ]

(* {1 The splitting rule itself} *)

let test_pow2_split_counts () =
  (* (d, ceil(log2 d), edges carrying x/2^c). *)
  List.iter
    (fun (d, c, small) ->
      let c', small', big' = Anonet.Commodity.pow2_split_counts d in
      Alcotest.(check (triple int int int))
        (Printf.sprintf "d=%d" d)
        (c, small, d - small) (c', small', big'))
    [ (1, 0, 1); (2, 1, 2); (3, 2, 2); (4, 2, 4); (5, 3, 2); (6, 3, 4); (8, 3, 8) ]

let prop_pow2_split_preserves =
  qcheck_to_alcotest "pow2 split is commodity preserving"
    QCheck.(pair (int_range 1 16) (int_bound 40))
    (fun (d, e) ->
      let x = Dy.pow2 (-e) in
      let parts = Anonet.Commodity.Pow2_dyadic.split x d in
      List.length parts = d && Dy.equal (Dy.sum parts) x)

let prop_pow2_split_values_are_powers =
  qcheck_to_alcotest "pow2 split values are powers of two"
    QCheck.(pair (int_range 1 16) (int_bound 40))
    (fun (d, e) ->
      let x = Dy.pow2 (-e) in
      Anonet.Commodity.Pow2_dyadic.split x d
      |> List.for_all (fun v -> B.is_one (Dy.mantissa v)))

let prop_naive_split_preserves =
  qcheck_to_alcotest "naive split is commodity preserving"
    QCheck.(pair (int_range 1 16) arb_rational)
    (fun (d, x) ->
      let parts = Anonet.Commodity.Even_rational.split x d in
      Exact.Rational.equal (Exact.Rational.sum parts) x)

(* {1 Termination on grounded trees} *)

let test_terminates_on_families () =
  List.iter
    (fun (name, g) ->
      let st = Anonet.broadcast_tree g in
      Alcotest.check outcome (name ^ " terminates") E.Terminated st.outcome;
      Alcotest.(check bool) (name ^ " visits all") true st.all_visited)
    [
      ("path", F.path 6);
      ("comb", F.comb 9);
      ("full tree", F.full_tree ~height:3 ~degree:3);
      ("pruned tree", F.pruned_tree ~height:5 ~degree:4);
    ]

let test_terminal_accumulates_exactly_one () =
  let g = F.comb 7 in
  let r = Tree_engine.run g in
  Alcotest.check dyadic "sum of flows is one" Dy.one
    (Tree.accumulated r.states.(G.terminal g))

let test_non_termination_with_trap () =
  let g = F.add_trap (F.comb 5) ~from_vertex:3 in
  let st = Anonet.broadcast_tree g in
  Alcotest.check outcome "trap prevents termination" E.Quiescent st.outcome

let test_non_termination_trap_is_deficit () =
  let g = F.add_trap (F.comb 5) ~from_vertex:3 in
  let r = Tree_engine.run g in
  let acc = Tree.accumulated r.states.(G.terminal g) in
  Alcotest.(check bool) "terminal strictly below one" true (Dy.compare acc Dy.one < 0)

(* Lemma 3.3: on grounded trees every vertex transmits a single message per
   out-edge — equivalently, exactly one message crosses each edge. *)
let test_lemma_3_3_single_message () =
  let g = F.comb 8 in
  let r = Tree_engine.run g in
  Array.iter (fun c -> Alcotest.(check int) "one message per edge" 1 c) r.edge_messages;
  Alcotest.(check int) "deliveries = |E|" (G.n_edges g) r.deliveries

(* All values transmitted on a grounded tree are powers of two with exponent
   at most O(|E|) (Theorem 3.1's encoding argument). *)
let test_values_are_small_powers_of_two () =
  let g = F.full_tree ~height:4 ~degree:3 in
  let seen_bad = ref 0 in
  let hook (_ : E.event) (msg : Tree.message) =
    if not (B.is_one (Dy.mantissa msg)) then incr seen_bad;
    if Dy.exponent msg > 2 * G.n_edges g then incr seen_bad
  in
  let r = Tree_engine.run ~on_deliver:hook g in
  Alcotest.check outcome "terminated" E.Terminated r.outcome;
  Alcotest.(check int) "all values power-of-two and small" 0 !seen_bad

let prop_terminates_on_random_grounded_trees =
  qcheck_to_alcotest ~count:100 "terminates on random grounded trees"
    arb_grounded_tree (fun g ->
      let st = Anonet.broadcast_tree g in
      st.outcome = E.Terminated && st.all_visited)

let prop_naive_agrees_on_outcome =
  qcheck_to_alcotest ~count:60 "naive rule reaches the same outcome"
    arb_grounded_tree (fun g ->
      let a = Anonet.broadcast_tree g in
      let b = Anonet.broadcast_tree_naive g in
      a.outcome = b.outcome && a.deliveries = b.deliveries)

let prop_schedule_independent =
  qcheck_to_alcotest ~count:50 "outcome is schedule independent"
    QCheck.(pair arb_grounded_tree (int_bound 1000))
    (fun (g, seed) ->
      schedulers seed
      |> List.for_all (fun sch ->
             let st = Anonet.broadcast_tree ~scheduler:sch g in
             st.outcome = E.Terminated && st.all_visited))

let prop_trap_never_terminates =
  qcheck_to_alcotest ~count:60 "any trap prevents termination"
    QCheck.(pair arb_grounded_tree (int_bound 1000))
    (fun (g, seed) ->
      (* Hang the trap off a random internal vertex. *)
      let internals = G.internal_vertices g in
      QCheck.assume (internals <> []);
      let v = List.nth internals (seed mod List.length internals) in
      let trapped = F.add_trap g ~from_vertex:v in
      (Anonet.broadcast_tree trapped).outcome = E.Quiescent)

(* The ablation of Section 3.1: the power-of-two rule beats x/d encoding on
   combs (where naive denominators pick up non-dyadic factors). *)
let test_pow2_beats_naive_on_fanout_trees () =
  let prng = Prng.create 7 in
  let g = F.random_grounded_tree prng ~n:120 ~t_edge_prob:0.3 in
  let opt = Anonet.broadcast_tree g in
  let naive = Anonet.broadcast_tree_naive g in
  Alcotest.(check bool) "same deliveries" true (opt.deliveries = naive.deliveries);
  Alcotest.(check bool) "pow2 total bits no worse" true
    (opt.total_bits <= naive.total_bits)

let () =
  Alcotest.run "tree-broadcast"
    [
      ( "splitting-rule",
        [
          Alcotest.test_case "pow2 split counts" `Quick test_pow2_split_counts;
          prop_pow2_split_preserves;
          prop_pow2_split_values_are_powers;
          prop_naive_split_preserves;
        ] );
      ( "termination",
        [
          Alcotest.test_case "families terminate" `Quick test_terminates_on_families;
          Alcotest.test_case "terminal sums to one" `Quick
            test_terminal_accumulates_exactly_one;
          Alcotest.test_case "trap: no termination" `Quick test_non_termination_with_trap;
          Alcotest.test_case "trap: flow deficit" `Quick
            test_non_termination_trap_is_deficit;
          prop_terminates_on_random_grounded_trees;
          prop_schedule_independent;
          prop_trap_never_terminates;
        ] );
      ( "structure",
        [
          Alcotest.test_case "Lemma 3.3: single message" `Quick
            test_lemma_3_3_single_message;
          Alcotest.test_case "values are powers of two" `Quick
            test_values_are_small_powers_of_two;
          Alcotest.test_case "pow2 vs naive bits" `Quick
            test_pow2_beats_naive_on_fanout_trees;
          prop_naive_agrees_on_outcome;
        ] );
    ]
