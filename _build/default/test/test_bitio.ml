module W = Bitio.Bit_writer
module R = Bitio.Bit_reader
module C = Bitio.Codes
module B = Bignat
module Dy = Exact.Dyadic
open Helpers

(* {1 Writer / reader units} *)

let test_bit_roundtrip () =
  let w = W.create () in
  let pattern = [ true; false; true; true; false; false; true; false; true ] in
  List.iter (W.bit w) pattern;
  Alcotest.(check int) "length" 9 (W.length w);
  let r = R.of_string ~length_bits:9 (W.to_string w) in
  List.iter (fun b -> Alcotest.(check bool) "bit" b (R.bit r)) pattern;
  Alcotest.(check bool) "at end" true (R.at_end r)

let test_bits_roundtrip () =
  let w = W.create () in
  W.bits w 0b101101 6;
  W.bits w 0 3;
  W.bits w 12345 20;
  let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
  Alcotest.(check int) "first" 0b101101 (R.bits r 6);
  Alcotest.(check int) "zero" 0 (R.bits r 3);
  Alcotest.(check int) "third" 12345 (R.bits r 20)

let test_bit_string () =
  let w = W.create () in
  W.bits w 0b1011 4;
  Alcotest.(check string) "bit string" "1011" (W.to_bit_string w)

let test_truncated () =
  let w = W.create () in
  W.bits w 3 2;
  let r = R.of_string ~length_bits:2 (W.to_string w) in
  let _ = R.bits r 2 in
  Alcotest.check_raises "reading past end" R.Truncated (fun () -> ignore (R.bit r))

let test_reader_limits () =
  Alcotest.check_raises "bad length" (Invalid_argument "Bit_reader.of_string: bad length")
    (fun () -> ignore (R.of_string ~length_bits:9 "x"));
  let r = R.of_string "ab" in
  Alcotest.(check int) "remaining" 16 (R.remaining r)

(* {1 Code units} *)

let test_unary () =
  List.iter
    (fun n ->
      let w = W.create () in
      C.write_unary w n;
      Alcotest.(check int) "size" (n + 1) (W.length w);
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      Alcotest.(check int) "value" n (C.read_unary r))
    [ 0; 1; 5; 17 ]

let test_gamma_known () =
  (* Elias gamma of 1 is "1"; of 2 is "010"; of 5 is "00101". *)
  let enc n =
    let w = W.create () in
    C.write_gamma w n;
    W.to_bit_string w
  in
  Alcotest.(check string) "gamma 1" "1" (enc 1);
  Alcotest.(check string) "gamma 2" "010" (enc 2);
  Alcotest.(check string) "gamma 5" "00101" (enc 5)

let test_gamma_rejects () =
  let w = W.create () in
  Alcotest.check_raises "gamma 0" (Invalid_argument "Codes.write_gamma: needs n >= 1")
    (fun () -> C.write_gamma w 0)

let test_delta_roundtrip () =
  List.iter
    (fun n ->
      let w = W.create () in
      C.write_delta w n;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      Alcotest.(check int) "delta roundtrip" n (C.read_delta r))
    [ 1; 2; 3; 100; 65535; 1_000_000 ]

let test_gamma0_size () =
  List.iter
    (fun n ->
      let w = W.create () in
      C.write_gamma0 w n;
      Alcotest.(check int)
        (Printf.sprintf "predicted size for %d" n)
        (W.length w) (C.gamma0_size n))
    [ 0; 1; 2; 7; 8; 100; 12345 ]

(* {1 Properties} *)

let prop_gamma_roundtrip =
  qcheck_to_alcotest "gamma roundtrip"
    QCheck.(int_range 1 1_000_000)
    (fun n ->
      let w = W.create () in
      C.write_gamma w n;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      C.read_gamma r = n)

let prop_gamma0_roundtrip =
  qcheck_to_alcotest "gamma0 roundtrip"
    QCheck.(int_bound 1_000_000)
    (fun n ->
      let w = W.create () in
      C.write_gamma0 w n;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      C.read_gamma0 r = n)

let prop_bignat_roundtrip =
  qcheck_to_alcotest "bignat roundtrip" arb_bignat (fun x ->
      let w = W.create () in
      C.write_bignat w x;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      B.equal (C.read_bignat r) x)

let prop_bignat_size =
  qcheck_to_alcotest "bignat_size predicts" arb_bignat (fun x ->
      let w = W.create () in
      C.write_bignat w x;
      W.length w = C.bignat_size x)

let prop_dyadic_roundtrip =
  qcheck_to_alcotest "dyadic roundtrip" arb_dyadic (fun d ->
      let w = W.create () in
      C.write_dyadic w d;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      Dy.equal (C.read_dyadic r) d)

let prop_dyadic_size =
  qcheck_to_alcotest "dyadic_size predicts" arb_dyadic (fun d ->
      let w = W.create () in
      C.write_dyadic w d;
      W.length w = C.dyadic_size d)

let prop_rational_roundtrip =
  qcheck_to_alcotest "rational roundtrip" arb_rational (fun q ->
      let w = W.create () in
      C.write_rational w q;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      Exact.Rational.equal (C.read_rational r) q)

let prop_concatenation_self_delimits =
  qcheck_to_alcotest "two values concatenated decode independently"
    QCheck.(pair arb_dyadic arb_bignat)
    (fun (d, x) ->
      let w = W.create () in
      C.write_dyadic w d;
      C.write_bignat w x;
      let r = R.of_string ~length_bits:(W.length w) (W.to_string w) in
      Dy.equal (C.read_dyadic r) d && B.equal (C.read_bignat r) x && R.at_end r)

let () =
  Alcotest.run "bitio"
    [
      ( "writer-reader",
        [
          Alcotest.test_case "bit roundtrip" `Quick test_bit_roundtrip;
          Alcotest.test_case "bits roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "bit string" `Quick test_bit_string;
          Alcotest.test_case "truncation" `Quick test_truncated;
          Alcotest.test_case "reader limits" `Quick test_reader_limits;
        ] );
      ( "codes",
        [
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "gamma known" `Quick test_gamma_known;
          Alcotest.test_case "gamma rejects 0" `Quick test_gamma_rejects;
          Alcotest.test_case "delta roundtrip" `Quick test_delta_roundtrip;
          Alcotest.test_case "gamma0 size" `Quick test_gamma0_size;
        ] );
      ( "properties",
        [
          prop_gamma_roundtrip;
          prop_gamma0_roundtrip;
          prop_bignat_roundtrip;
          prop_bignat_size;
          prop_dyadic_roundtrip;
          prop_dyadic_size;
          prop_rational_roundtrip;
          prop_concatenation_self_delimits;
        ] );
    ]
