module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
open Helpers

module GB = Anonet.General_broadcast
module GB_engine = Anonet.General_engine

let schedulers seed =
  [
    Runtime.Scheduler.Fifo;
    Runtime.Scheduler.Lifo;
    Runtime.Scheduler.Random (Prng.create seed);
    Runtime.Scheduler.Edge_priority (fun e -> -e);
    Runtime.Scheduler.Edge_priority (fun e -> e);
  ]

let test_terminates_everywhere () =
  List.iter
    (fun (name, g) ->
      let st = Anonet.broadcast_general g in
      Alcotest.check outcome (name ^ " terminates") E.Terminated st.outcome;
      Alcotest.(check bool) (name ^ " visits all") true st.all_visited)
    [
      ("path", F.path 5);
      ("comb", F.comb 8);
      ("diamond", F.diamond ());
      ("grid", F.grid_dag ~rows:3 ~cols:4);
      ("cycle", F.cycle_with_exit ~k:7);
      ("figure eight", F.figure_eight ());
      ("full tree", F.full_tree ~height:3 ~degree:2);
      ("skeleton", F.skeleton ~n:2 ~subset:[| true; false |]);
    ]

let test_terminal_covers_unit () =
  let g = F.figure_eight () in
  let r = GB_engine.run g in
  Alcotest.check iset "covered = [0,1)" Is.unit (GB.covered r.states.(G.terminal g))

let test_no_termination_on_traps () =
  List.iter
    (fun (name, g) ->
      let st = Anonet.broadcast_general g in
      Alcotest.check outcome (name ^ " must not terminate") E.Quiescent st.outcome)
    [
      ("sink trap", F.add_trap (F.cycle_with_exit ~k:4) ~from_vertex:2);
      ("cycle trap", F.add_trap_cycle (F.grid_dag ~rows:2 ~cols:3) ~from_vertex:1);
      ("trap off comb", F.add_trap (F.comb 4) ~from_vertex:2);
    ]

let test_self_loop_handled () =
  (* A self-loop is the smallest cycle: detected and beta-diverted. *)
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 1); (1, 2); (2, 3) ] in
  let st = Anonet.broadcast_general g in
  Alcotest.check outcome "self-loop terminates" E.Terminated st.outcome

let test_multi_edge_handled () =
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 2); (1, 2); (2, 3); (2, 3) ] in
  let st = Anonet.broadcast_general g in
  Alcotest.check outcome "multi-edges terminate" E.Terminated st.outcome

let test_two_vertex_cycle () =
  (* s -> a <-> b, a -> t: beta must carry b's stuck half back out. *)
  let g = G.make ~n:4 ~s:0 ~t:3 [ (0, 1); (1, 2); (2, 1); (1, 3) ] in
  let st = Anonet.broadcast_general g in
  Alcotest.check outcome "terminates" E.Terminated st.outcome;
  Alcotest.(check bool) "all visited" true st.all_visited

let prop_terminates_on_random_digraphs =
  qcheck_to_alcotest ~count:100 "terminates and visits all on random digraphs"
    arb_digraph (fun g ->
      let st = Anonet.broadcast_general g in
      st.outcome = E.Terminated && st.all_visited)

let prop_schedule_independent =
  qcheck_to_alcotest ~count:40 "schedule independent"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      schedulers seed
      |> List.for_all (fun sch ->
             let st = Anonet.broadcast_general ~scheduler:sch g in
             st.outcome = E.Terminated && st.all_visited))

let prop_trap_never_terminates =
  qcheck_to_alcotest ~count:50 "traps always prevent termination"
    QCheck.(pair arb_digraph (int_bound 1000))
    (fun (g, seed) ->
      let internals = G.internal_vertices g in
      QCheck.assume (internals <> []);
      let v = List.nth internals (seed mod List.length internals) in
      (Anonet.broadcast_general (F.add_trap g ~from_vertex:v)).outcome = E.Quiescent
      && (Anonet.broadcast_general (F.add_trap_cycle g ~from_vertex:v)).outcome
         = E.Quiescent)

(* Theorem 4.3's structural bounds, measured on real runs. *)
let prop_message_size_bounds =
  qcheck_to_alcotest ~count:40 "interval count and endpoint bits stay bounded"
    arb_digraph (fun g ->
      let max_intervals = ref 0 and max_endpoint = ref 0 in
      let hook (_ : E.event) ((alpha, beta) : GB.message) =
        max_intervals := max !max_intervals (Is.count alpha + Is.count beta);
        max_endpoint :=
          max !max_endpoint
            (max (Is.max_endpoint_bits alpha) (Is.max_endpoint_bits beta))
      in
      let r = GB_engine.run ~on_deliver:hook g in
      let e = G.n_edges g and v = G.n_vertices g in
      let logd =
        let d = G.max_out_degree g in
        let rec lg acc n = if n <= 1 then acc else lg (acc + 1) (n / 2) in
        max 1 (lg 0 d + 1)
      in
      r.outcome = E.Terminated
      (* Each vertex partitions once into <= d_out parts: O(|E|) intervals. *)
      && !max_intervals <= (4 * e) + 8
      (* Endpoints gain O(log d_out) bits per vertex on the path. *)
      && !max_endpoint <= (8 * v * logd) + 64)

(* Theorem 4.2's per-edge traffic argument: any value is alpha-carried (and
   beta-carried) at most once per edge, so an edge carries O(|E|) messages. *)
let prop_per_edge_message_bound =
  qcheck_to_alcotest ~count:40 "per-edge message count O(|E|)" arb_digraph
    (fun g ->
      let r = GB_engine.run g in
      let worst = Array.fold_left max 0 r.edge_messages in
      r.outcome = E.Terminated && worst <= (4 * G.n_edges g) + 4)

(* State-monotonicity as observed through the engine: covered sets only
   grow at the terminal. *)
let test_monotone_coverage_at_terminal () =
  let g = F.figure_eight () in
  let t = G.terminal g in
  let last = ref Is.empty in
  let ok = ref true in
  let hook (ev : E.event) ((alpha, beta) : GB.message) =
    if ev.to_vertex = t then begin
      let now = Is.union !last (Is.union alpha beta) in
      if not (Is.subset !last now) then ok := false;
      last := now
    end
  in
  let r = GB_engine.run ~on_deliver:hook g in
  Alcotest.check outcome "terminated" E.Terminated r.outcome;
  Alcotest.(check bool) "coverage monotone" true !ok;
  Alcotest.check iset "hook reconstructs coverage" (GB.covered r.states.(t)) !last

(* The broadcast payload m rides on every message: communication scales by
   |m| * deliveries, exactly the |E||m| term. *)
let test_payload_term () =
  let g = F.cycle_with_exit ~k:5 in
  let plain = GB_engine.run g in
  let with_m = GB_engine.run ~payload_bits:64 g in
  Alcotest.(check int) "payload term"
    (plain.total_bits + (64 * plain.deliveries))
    with_m.total_bits

let () =
  Alcotest.run "general-broadcast"
    [
      ( "termination",
        [
          Alcotest.test_case "families terminate" `Quick test_terminates_everywhere;
          Alcotest.test_case "coverage at t" `Quick test_terminal_covers_unit;
          Alcotest.test_case "traps block" `Quick test_no_termination_on_traps;
          Alcotest.test_case "self loop" `Quick test_self_loop_handled;
          Alcotest.test_case "multi edge" `Quick test_multi_edge_handled;
          Alcotest.test_case "two-vertex cycle" `Quick test_two_vertex_cycle;
          prop_terminates_on_random_digraphs;
          prop_schedule_independent;
          prop_trap_never_terminates;
        ] );
      ( "complexity-shape",
        [
          prop_message_size_bounds;
          prop_per_edge_message_bound;
          Alcotest.test_case "monotone coverage" `Quick test_monotone_coverage_at_terminal;
          Alcotest.test_case "payload |m| term" `Quick test_payload_term;
        ] );
    ]
