(* End-to-end scenarios crossing several subsystems: the protocols compared
   on the same workloads, the full pipeline from graph generation to
   topology reconstruction, and cross-protocol consistency. *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module Is = Intervals.Iset
open Helpers

(* On grounded trees, all four broadcasting protocols (tree, naive tree,
   DAG-wait, general) must agree: terminate, visit everything. *)
let prop_all_protocols_agree_on_trees =
  qcheck_to_alcotest ~count:60 "all protocols terminate on grounded trees"
    arb_grounded_tree (fun g ->
      let runs =
        [
          Anonet.broadcast_tree g;
          Anonet.broadcast_tree_naive g;
          Anonet.broadcast_dag g;
          Anonet.broadcast_general g;
        ]
      in
      List.for_all
        (fun (st : Anonet.stats) -> st.outcome = E.Terminated && st.all_visited)
        runs)

(* On DAGs, the three applicable protocols agree. *)
let prop_dag_protocols_agree =
  qcheck_to_alcotest ~count:60 "dag + general agree on DAGs" arb_dag (fun g ->
      let a = Anonet.broadcast_dag g in
      let b = Anonet.broadcast_general g in
      a.outcome = E.Terminated && b.outcome = E.Terminated && a.all_visited
      && b.all_visited)

(* General graphs: general broadcast, labeling and mapping agree on
   termination; mapping reconstructs the graph the others ran on. *)
let prop_general_pipeline =
  qcheck_to_alcotest ~count:40 "broadcast, label, map pipeline" arb_digraph (fun g ->
      let b = Anonet.broadcast_general g in
      let l, labels = Anonet.assign_labels g in
      let m, map = Anonet.map_network g in
      b.outcome = E.Terminated && l.outcome = E.Terminated
      && m.outcome = E.Terminated
      && (match map with
         | Ok m -> Anonet.Mapping.map_isomorphic m g
         | Error _ -> false)
      &&
      let internal = List.map (fun v -> labels.(v)) (G.internal_vertices g) in
      pairwise_disjoint internal
      && List.for_all (fun l -> not (Is.is_empty l)) internal)

(* Protocol cost ordering on the same workload: the richer the protocol, the
   more it communicates. *)
let test_cost_ordering () =
  let prng = Prng.create 1234 in
  let g = F.random_dag prng ~n:60 ~extra_edges:40 ~t_edge_prob:0.2 in
  let dag = Anonet.broadcast_dag g in
  let general = Anonet.broadcast_general g in
  let label, _ = Anonet.assign_labels g in
  let mapping, _ = Anonet.map_network g in
  Alcotest.(check bool) "dag <= general" true (dag.total_bits <= general.total_bits);
  Alcotest.(check bool) "general <= labeling" true
    (general.total_bits <= label.total_bits);
  Alcotest.(check bool) "labeling <= mapping" true
    (label.total_bits <= mapping.total_bits)

(* The engine's quiescence captures the paper's non-termination exactly:
   adding a single trap flips every protocol from Terminated to Quiescent. *)
let test_trap_flips_everything () =
  let g = F.grid_dag ~rows:3 ~cols:3 in
  let trapped = F.add_trap g ~from_vertex:1 in
  let check name before after =
    Alcotest.check outcome (name ^ " before") E.Terminated before;
    Alcotest.check outcome (name ^ " after") E.Quiescent after
  in
  check "tree" (Anonet.broadcast_tree g).outcome
    (Anonet.broadcast_tree trapped).outcome;
  check "dag" (Anonet.broadcast_dag g).outcome (Anonet.broadcast_dag trapped).outcome;
  check "general" (Anonet.broadcast_general g).outcome
    (Anonet.broadcast_general trapped).outcome;
  check "labeling" (fst (Anonet.assign_labels g)).outcome
    (fst (Anonet.assign_labels trapped)).outcome;
  check "mapping" (fst (Anonet.map_network g)).outcome
    (fst (Anonet.map_network trapped)).outcome

(* A realistic composite: label a network, then use the labels as routing
   identities — the promise of the paper's conclusion.  We verify that the
   reconstructed map can answer reachability queries identically to the
   ground truth. *)
let test_map_supports_queries () =
  let prng = Prng.create 77 in
  let g =
    F.random_digraph prng ~n:25 ~extra_edges:15 ~back_edges:6 ~t_edge_prob:0.2
  in
  match Anonet.map_network g with
  | _, Error e -> Alcotest.fail e
  | _, Ok m ->
      let reach_truth = G.reachable_from_s g in
      let reach_map = G.reachable_from_s m.Anonet.Mapping.graph in
      Alcotest.(check int) "same reachable count"
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 reach_truth)
        (Array.fold_left (fun a b -> if b then a + 1 else a) 0 reach_map);
      let comp_truth = snd (G.scc g) in
      let comp_map = snd (G.scc m.Anonet.Mapping.graph) in
      Alcotest.(check int) "same scc count" comp_truth comp_map

(* Stress: a larger network exercising bignum endpoints deep enough to leave
   the native int range. *)
let test_deep_chain_precision () =
  let g = F.path 200 in
  let st = Anonet.broadcast_tree g in
  Alcotest.check outcome "deep path terminates" E.Terminated st.outcome;
  let stl, labels = Anonet.assign_labels g in
  Alcotest.check outcome "deep labeling terminates" E.Terminated stl.outcome;
  (* 200 nested halvings: endpoints far beyond 64-bit precision. *)
  let deepest = labels.(200) in
  Alcotest.(check bool) "deep label non-empty" false (Is.is_empty deepest);
  Alcotest.(check bool) "deep label tiny but exact" true
    (Exact.Dyadic.compare (Is.measure deepest) (Exact.Dyadic.pow2 (-150)) < 0)

let test_wide_fanout () =
  (* One vertex with out-degree 64 feeding t through 64 relays. *)
  let d = 64 in
  let hub = 1 in
  let t = d + 2 in
  let edges =
    ((0, hub) :: List.init d (fun i -> (hub, 2 + i)))
    @ List.init d (fun i -> (2 + i, t))
  in
  let g = G.make ~n:(d + 3) ~s:0 ~t edges in
  List.iter
    (fun (name, (st : Anonet.stats)) ->
      Alcotest.check outcome (name ^ " wide fanout") E.Terminated st.outcome)
    [
      ("tree", Anonet.broadcast_tree g);
      ("naive", Anonet.broadcast_tree_naive g);
      ("dag", Anonet.broadcast_dag g);
      ("general", Anonet.broadcast_general g);
    ]

let () =
  Alcotest.run "integration"
    [
      ( "cross-protocol",
        [
          prop_all_protocols_agree_on_trees;
          prop_dag_protocols_agree;
          prop_general_pipeline;
          Alcotest.test_case "cost ordering" `Quick test_cost_ordering;
          Alcotest.test_case "trap flips everything" `Quick test_trap_flips_everything;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "map answers queries" `Quick test_map_supports_queries;
          Alcotest.test_case "deep chain precision" `Quick test_deep_chain_precision;
          Alcotest.test_case "wide fanout" `Quick test_wide_fanout;
        ] );
    ]
