test/test_lower_bounds.ml: Alcotest Anonet Array Digraph Exact Helpers Intervals List Printf Prng Runtime
