test/test_bitio.mli:
