test/test_intervals.ml: Alcotest Bignat Bitio Exact Helpers Intervals List QCheck
