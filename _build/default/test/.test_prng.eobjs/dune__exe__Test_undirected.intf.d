test/test_undirected.mli:
