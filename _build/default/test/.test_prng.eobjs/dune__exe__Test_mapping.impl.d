test/test_mapping.ml: Alcotest Anonet Array Digraph Helpers Intervals List Printf Prng QCheck Runtime
