test/test_labeling.ml: Alcotest Anonet Array Bignat Digraph Exact Helpers Intervals List Prng QCheck Runtime
