test/test_interval_core.mli:
