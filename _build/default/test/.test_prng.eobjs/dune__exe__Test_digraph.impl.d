test/test_digraph.ml: Alcotest Array Digraph Helpers List Prng QCheck String
