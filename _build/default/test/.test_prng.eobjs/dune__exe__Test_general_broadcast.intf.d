test/test_general_broadcast.mli:
