test/test_extensions.ml: Alcotest Anonet Array Digraph Exact Helpers Intervals List Printf Prng QCheck Runtime
