test/test_undirected.ml: Alcotest Anonet Array Bitio Digraph Helpers List Printf Prng QCheck Runtime
