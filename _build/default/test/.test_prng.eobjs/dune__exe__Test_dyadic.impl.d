test/test_dyadic.ml: Alcotest Bignat Exact Helpers QCheck
