test/test_tree_broadcast.ml: Alcotest Anonet Array Bignat Digraph Exact Helpers List Printf Prng QCheck Runtime
