test/test_rational.ml: Alcotest Bignat Exact Helpers List Printf QCheck
