test/test_metrics.ml: Alcotest Float Helpers List Metrics QCheck
