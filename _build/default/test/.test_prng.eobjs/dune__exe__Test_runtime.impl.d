test/test_runtime.ml: Alcotest Anonet Array Bitio Digraph Format Helpers Int List Prng Runtime String
