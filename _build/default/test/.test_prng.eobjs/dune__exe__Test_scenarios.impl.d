test/test_scenarios.ml: Alcotest Anonet Array Digraph Helpers Intervals List Prng QCheck Runtime
