test/test_general_broadcast.ml: Alcotest Anonet Array Digraph Helpers Intervals List Prng QCheck Runtime
