test/test_dag_broadcast.ml: Alcotest Anonet Array Digraph Exact Helpers List Prng QCheck Runtime
