test/test_integration.ml: Alcotest Anonet Array Digraph Exact Helpers Intervals List Prng Runtime
