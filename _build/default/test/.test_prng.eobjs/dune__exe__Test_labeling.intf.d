test/test_labeling.mli:
