test/test_dyadic.mli:
