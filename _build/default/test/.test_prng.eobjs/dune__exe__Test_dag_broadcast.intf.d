test/test_dag_broadcast.mli:
