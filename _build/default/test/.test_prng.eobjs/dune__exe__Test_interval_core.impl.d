test/test_interval_core.ml: Alcotest Anonet Array Exact Helpers Intervals List Printf QCheck
