test/test_bitio.ml: Alcotest Bignat Bitio Exact Helpers List Printf QCheck
