test/test_bignat.ml: Alcotest Bignat Helpers List Printf QCheck
