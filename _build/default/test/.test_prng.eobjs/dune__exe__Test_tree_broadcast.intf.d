test/test_tree_broadcast.mli:
