test/helpers.ml: Alcotest Bignat Digraph Exact Format Intervals List Prng QCheck QCheck_alcotest Runtime
