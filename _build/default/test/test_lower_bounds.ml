module LB = Anonet.Lower_bounds
module Is = Intervals.Iset
open Helpers

(* {1 Theorem 3.2: comb alphabet} *)

let test_comb_symbols_grow_linearly () =
  List.iter
    (fun n ->
      let r = LB.comb_symbols n in
      Alcotest.(check int) "edge count" (2 * n) r.LB.edges;
      (* Lemma 3.7 separates the n chain edges pairwise (the paper states
         n+1, an off-by-one: v_n has out-degree 1).  Our protocol uses
         exactly the n values 1, 1/2, ..., 1/2^(n-1). *)
      Alcotest.(check int) (Printf.sprintf "distinct symbols at n=%d" n) n
        r.LB.distinct_symbols)
    [ 1; 2; 4; 8; 16; 32 ]

let test_comb_total_bits_superlinear () =
  (* Omega(|E| log |E|): bits per n strictly outgrow linear scaling. *)
  let r16 = LB.comb_symbols 16 and r256 = LB.comb_symbols 256 in
  let per_edge16 = float_of_int r16.LB.total_bits /. float_of_int r16.LB.edges in
  let per_edge256 = float_of_int r256.LB.total_bits /. float_of_int r256.LB.edges in
  Alcotest.(check bool) "per-edge cost grows with |E|" true (per_edge256 > per_edge16)

let test_comb_bandwidth_logarithmic () =
  (* O(log |E|) bandwidth: doubling n adds O(1) bits to the widest edge. *)
  let b64 = (LB.comb_symbols 64).LB.max_edge_bits in
  let b128 = (LB.comb_symbols 128).LB.max_edge_bits in
  Alcotest.(check bool) "log growth" true (b128 - b64 <= 8 && b128 >= b64)

(* {1 Theorem 3.8: skeleton quantities} *)

let test_skeleton_all_subsets_distinct_pow2 () =
  List.iter
    (fun n ->
      let r = LB.skeleton_quantities_pow2 ~n in
      Alcotest.(check int)
        (Printf.sprintf "2^%d distinct quantities" n)
        r.LB.subsets r.LB.distinct_quantities)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_skeleton_all_subsets_distinct_naive () =
  List.iter
    (fun n ->
      let r = LB.skeleton_quantities_naive ~n in
      Alcotest.(check int)
        (Printf.sprintf "2^%d distinct (naive)" n)
        r.LB.subsets r.LB.distinct_quantities)
    [ 1; 2; 3; 4; 5 ]

(* Appendix B, inequality chain (1): on the skeleton the quantities entering
   the spine and hang-off vertices satisfy
   q(u_{2i+2}) < q(v_{2i+2}) <= q(v_{2i+1})/2 <= q(u_{2i})/2. *)
let test_skeleton_inequality_chain () =
  let module Dy = Exact.Dyadic in
  let n = 5 in
  let subset = Array.make n true in
  let g = Digraph.Families.skeleton ~n ~subset in
  let nv = Digraph.n_vertices g in
  let inflow = Array.make nv Dy.zero in
  let module P = Anonet.Dag_broadcast_pow2 in
  let module E2 = Anonet.Dag_engine in
  let hook (ev : Runtime.Engine.event) (msg : P.message) =
    inflow.(ev.to_vertex) <- Dy.add inflow.(ev.to_vertex) msg
  in
  let r = E2.run ~on_deliver:hook g in
  Alcotest.(check bool) "terminated" true (r.outcome = Runtime.Engine.Terminated);
  (* Vertex ids per the family: v_i = 1+i, u_i = 1+2n+i. *)
  let v i = 1 + i and u i = 1 + (2 * n) + i in
  let q x = inflow.(x) in
  let lt a b = Dy.compare a b < 0 and le a b = Dy.compare a b <= 0 in
  for i = 0 to n - 3 do
    Alcotest.(check bool) "q(u_{2i+2}) < q(v_{2i+2})" true
      (lt (q (u ((2 * i) + 2))) (q (v ((2 * i) + 2))));
    Alcotest.(check bool) "q(v_{2i+2}) <= q(v_{2i+1})/2" true
      (le (q (v ((2 * i) + 2))) (Dy.div_pow2 (q (v ((2 * i) + 1))) 1));
    Alcotest.(check bool) "q(v_{2i+1}) <= q(u_{2i})" true
      (le (q (v ((2 * i) + 1))) (q (u (2 * i))))
  done

let test_skeleton_bandwidth_linear () =
  (* The largest w->t quantity needs Omega(n) bits. *)
  let r4 = LB.skeleton_quantities_pow2 ~n:4 in
  let r8 = LB.skeleton_quantities_pow2 ~n:8 in
  Alcotest.(check bool) "max quantity bits grow linearly" true
    (r8.LB.max_quantity_bits >= r4.LB.max_quantity_bits + 6)

(* {1 Linear cuts: the Appendix A machinery, verified on executions} *)

module Dy = Exact.Dyadic

let test_linear_cuts_of_path () =
  (* On a path with n internal vertices there are exactly n+1 linear cuts
     (one per prefix). *)
  let g = Digraph.Families.path 4 in
  Alcotest.(check int) "cut count" 5 (List.length (LB.linear_cuts g))

let test_linear_cut_conservation () =
  (* Lemma 3.5 via flow conservation: the termination values crossing any
     linear cut sum to exactly 1 — i.e. every cut snapshot is terminating. *)
  List.iter
    (fun (name, g) ->
      let cuts = LB.linear_cuts g in
      Alcotest.(check bool) (name ^ " has cuts") true (List.length cuts >= 2);
      List.iter
        (fun cut ->
          let values = LB.cut_crossing_values g cut in
          Alcotest.check Helpers.dyadic (name ^ ": cut sums to one") Dy.one
            (Dy.sum values))
        cuts)
    [
      ("comb 5", Digraph.Families.comb 5);
      ("full tree", Digraph.Families.full_tree ~height:2 ~degree:3);
      ("random tree", Digraph.Families.random_grounded_tree (Prng.create 5) ~n:8 ~t_edge_prob:0.4);
    ]

let test_theorem_3_6_no_strict_subset () =
  (* Theorem 3.6: crossing multisets of two linear cuts — even from
     different grounded trees — are never in strict inclusion. *)
  let graphs =
    [
      Digraph.Families.comb 4;
      Digraph.Families.comb 6;
      Digraph.Families.full_tree ~height:2 ~degree:2;
      Digraph.Families.random_grounded_tree (Prng.create 9) ~n:7 ~t_edge_prob:0.4;
    ]
  in
  let multisets =
    List.concat_map
      (fun g -> List.map (LB.cut_crossing_values g) (LB.linear_cuts g))
      graphs
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool) "no strict multiset inclusion" false
            (LB.multiset_strict_subset a b))
        multisets)
    multisets

let test_linear_cut_conservation_on_dags () =
  (* The remark after Lemma 3.5: the cut machinery applies to DAGs too —
     under the wait-for-all-ports protocol every cut snapshot still carries
     total flow exactly 1. *)
  List.iter
    (fun (name, g) ->
      List.iter
        (fun cut ->
          let values = LB.cut_crossing_values_dag g cut in
          Alcotest.check Helpers.dyadic (name ^ ": DAG cut sums to one") Dy.one
            (Dy.sum values))
        (LB.linear_cuts g))
    [
      ("diamond", Digraph.Families.diamond ());
      ("grid 2x3", Digraph.Families.grid_dag ~rows:2 ~cols:3);
      ("skeleton", Digraph.Families.skeleton ~n:2 ~subset:[| true; false |]);
      ("random dag", Digraph.Families.random_dag (Prng.create 12) ~n:7 ~extra_edges:5 ~t_edge_prob:0.4);
    ]

let test_multiset_subset_primitive () =
  let one = Dy.one and half = Dy.half in
  Alcotest.(check bool) "strict" true
    (LB.multiset_strict_subset [ half ] [ half; one ]);
  Alcotest.(check bool) "equal not strict" false
    (LB.multiset_strict_subset [ half; one ] [ half; one ]);
  Alcotest.(check bool) "multiplicity respected" false
    (LB.multiset_strict_subset [ half; half ] [ half; one ]);
  Alcotest.(check bool) "empty strict subset" true
    (LB.multiset_strict_subset [] [ one ])

(* {1 Theorem 5.2: label lower bound} *)

let test_pruned_label_grows_with_height () =
  let l2 = (LB.pruned_label ~height:2 ~degree:3).LB.label_bits in
  let l8 = (LB.pruned_label ~height:8 ~degree:3).LB.label_bits in
  let l16 = (LB.pruned_label ~height:16 ~degree:3).LB.label_bits in
  Alcotest.(check bool) "monotone in height" true (l2 < l8 && l8 < l16);
  (* Linear in height: the per-level increment is about log2(degree+1). *)
  Alcotest.(check bool) "roughly linear" true (l16 - l8 >= (l8 - l2) / 2)

let test_pruned_label_grows_with_degree () =
  let d2 = (LB.pruned_label ~height:6 ~degree:2).LB.label_bits in
  let d16 = (LB.pruned_label ~height:6 ~degree:16).LB.label_bits in
  Alcotest.(check bool) "monotone in degree" true (d2 < d16)

let test_pruned_has_few_vertices () =
  let r = LB.pruned_label ~height:10 ~degree:8 in
  Alcotest.(check int) "h+3 vertices" 13 r.LB.vertices;
  (* ... yet the label already needs many bits: the exponential gap. *)
  Alcotest.(check bool) "label bits >> log2(vertices)" true (r.LB.label_bits > 30)

let test_full_equals_pruned () =
  List.iter
    (fun (height, degree) ->
      let full_label, pruned_label = LB.full_vs_pruned_leaf_labels ~height ~degree in
      Alcotest.check iset
        (Printf.sprintf "h=%d d=%d: identical execution along the path" height degree)
        full_label pruned_label;
      Alcotest.(check bool) "non-empty" false (Is.is_empty pruned_label))
    [ (1, 2); (2, 2); (3, 2); (2, 3); (3, 3); (4, 2); (2, 4) ]

let () =
  Alcotest.run "lower-bounds"
    [
      ( "comb (Thm 3.2)",
        [
          Alcotest.test_case "distinct symbols linear" `Quick
            test_comb_symbols_grow_linearly;
          Alcotest.test_case "total bits superlinear" `Quick
            test_comb_total_bits_superlinear;
          Alcotest.test_case "bandwidth logarithmic" `Quick
            test_comb_bandwidth_logarithmic;
        ] );
      ( "linear-cuts (App A)",
        [
          Alcotest.test_case "path cut count" `Quick test_linear_cuts_of_path;
          Alcotest.test_case "Lemma 3.5: cuts are terminating" `Quick
            test_linear_cut_conservation;
          Alcotest.test_case "Thm 3.6: no strict inclusion" `Quick
            test_theorem_3_6_no_strict_subset;
          Alcotest.test_case "Lemma 3.5 on DAGs" `Quick
            test_linear_cut_conservation_on_dags;
          Alcotest.test_case "multiset primitive" `Quick test_multiset_subset_primitive;
        ] );
      ( "skeleton (Thm 3.8)",
        [
          Alcotest.test_case "2^n distinct (pow2)" `Quick
            test_skeleton_all_subsets_distinct_pow2;
          Alcotest.test_case "2^n distinct (naive)" `Quick
            test_skeleton_all_subsets_distinct_naive;
          Alcotest.test_case "bandwidth linear" `Quick test_skeleton_bandwidth_linear;
          Alcotest.test_case "inequality chain (1)" `Quick
            test_skeleton_inequality_chain;
        ] );
      ( "pruning (Thm 5.2)",
        [
          Alcotest.test_case "label grows with height" `Quick
            test_pruned_label_grows_with_height;
          Alcotest.test_case "label grows with degree" `Quick
            test_pruned_label_grows_with_degree;
          Alcotest.test_case "few vertices, long label" `Quick
            test_pruned_has_few_vertices;
          Alcotest.test_case "full = pruned along path" `Quick test_full_equals_pruned;
        ] );
    ]
