(** Channel fault injection.

    The paper's model assumes reliable (if arbitrarily slow) channels; these
    knobs let the test-suite probe what actually depends on that assumption:

    - {e drops}: no protocol in the paper retransmits, so any lost message
      must show up as non-termination, never as a false positive — this
      safety direction holds for every protocol and is property-tested;
    - {e duplication}: a re-delivered alpha commodity is indistinguishable
      from a detected cycle, so the scalar protocols double-count flow and
      even the interval protocols of Sections 4/5 can beta-flood coverage
      for values still in flight — both can falsely terminate (the paper's
      reliance on exactly-once channels is real).  The one exception is the
      mapping protocol: its termination additionally waits for one
      adjacency fact per announced out-edge, and facts are only minted by
      labeled (hence visited) vertices, which restores duplication
      safety. *)

type t

val none : t

val create : ?drop:float -> ?duplicate:float -> seed:int -> unit -> t
(** Probabilities per sent message; both default to 0. *)

val copies : t -> int
(** How many copies of the next sent message actually enter the channel:
    0 (dropped), 1 (normal) or 2 (duplicated). *)

val is_none : t -> bool
