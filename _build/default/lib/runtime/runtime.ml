(** Asynchronous simulation of anonymous protocols (Section 2's model).

    - {!Protocol_intf} — the [(Pi, Sigma, pi0, sigma0, f, g, S)] signature;
    - {!Engine} — discrete-event executor with bit-exact accounting;
    - {!Scheduler} — asynchronous delivery orders, including adversarial ones;
    - {!Trace} — execution recording for tests. *)

module Protocol_intf = Protocol_intf
module Engine = Engine
module Sync_engine = Sync_engine
module Scheduler = Scheduler
module Faults = Faults
module Trace = Trace
