type t = { mutable rev_events : Engine.event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let hook tr (ev : Engine.event) _msg =
  tr.rev_events <- ev :: tr.rev_events;
  tr.count <- tr.count + 1

let events tr = List.rev tr.rev_events

let length tr = tr.count

let sends_per_vertex tr ~n =
  let a = Array.make n 0 in
  List.iter (fun (ev : Engine.event) -> a.(ev.from_vertex) <- a.(ev.from_vertex) + 1) tr.rev_events;
  a

let receives_per_vertex tr ~n =
  let a = Array.make n 0 in
  List.iter (fun (ev : Engine.event) -> a.(ev.to_vertex) <- a.(ev.to_vertex) + 1) tr.rev_events;
  a

let render ?(limit = 100) tr =
  let buf = Buffer.create 256 in
  let rec go shown = function
    | [] -> ()
    | _ when shown >= limit ->
        Buffer.add_string buf
          (Printf.sprintf "... (%d more deliveries)\n" (tr.count - shown))
    | (ev : Engine.event) :: rest ->
        Buffer.add_string buf
          (Printf.sprintf "#%-5d %d.%d -> %d.%d  %4d bits\n" ev.step
             ev.from_vertex ev.from_port ev.to_vertex ev.to_port ev.bits);
        go (shown + 1) rest
  in
  go 0 (events tr);
  Buffer.contents buf

let edge_first_use tr =
  let seen = Hashtbl.create 16 in
  List.fold_left
    (fun acc (ev : Engine.event) ->
      let key = (ev.from_vertex, ev.from_port) in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        (key, ev.step) :: acc
      end)
    []
    (events tr)
  |> List.rev
