(** Asynchronous delivery schedules.

    The model of Section 2 is fully asynchronous: an adversary may delay any
    in-flight message arbitrarily.  The paper's correctness claims hold for
    {e every} schedule, so the engine abstracts delivery order behind this
    type and the test-suite re-runs protocols under many schedules.  Since
    the protocols are delta-based and state-monotone, no per-edge FIFO
    assumption is made — [Lifo] and [Random] freely reorder messages that
    share an edge. *)

type t =
  | Fifo  (** Deliver in send order: the "synchronous-looking" schedule. *)
  | Lifo  (** Always deliver the newest message: depth-first progress. *)
  | Random of Prng.t
      (** Uniformly random in-flight message: the schedule used for
          randomized stress tests. *)
  | Edge_priority of (int -> int)
      (** Deliver the in-flight message whose dense edge index minimizes the
          given function (ties by send order); an adversarial family —
          e.g. starving the direct edges to [t] for as long as possible. *)

val describe : t -> string
