(** Synchronous execution of an anonymous protocol.

    Section 2 notes the results "can be easily extended ... to the case that
    the communication throughout the network is synchronous"; this engine
    realizes that model: computation proceeds in global rounds, every
    message sent in round [r] is delivered at round [r+1], and the round
    count is the protocol's {e time complexity} — the extra quality measure
    the synchronous model affords (Section 2, "Quality").

    All bit accounting matches {!Engine}. *)

type 'state report = {
  base : 'state Engine.report;
  rounds : int;  (** Rounds until termination / quiescence. *)
}

module Make (P : Protocol_intf.PROTOCOL) : sig
  val run :
    ?payload_bits:int ->
    ?round_limit:int ->
    ?on_deliver:(Engine.event -> P.message -> unit) ->
    Digraph.t ->
    P.state report
  (** Defaults: [payload_bits = 0], [round_limit = 100_000]. *)
end
