type t = { drop : float; duplicate : float; prng : Prng.t option }

let none = { drop = 0.0; duplicate = 0.0; prng = None }

let create ?(drop = 0.0) ?(duplicate = 0.0) ~seed () =
  if drop < 0.0 || drop > 1.0 || duplicate < 0.0 || duplicate > 1.0 then
    invalid_arg "Faults.create: probabilities must be in [0,1]";
  { drop; duplicate; prng = Some (Prng.create seed) }

let copies f =
  match f.prng with
  | None -> 1
  | Some prng ->
      if Prng.chance prng f.drop then 0
      else if Prng.chance prng f.duplicate then 2
      else 1

let is_none f = f.prng = None
