lib/runtime/sync_engine.ml: Array Bitio Digraph Engine Hashtbl List Protocol_intf Stdlib
