lib/runtime/trace.mli: Digraph Engine
