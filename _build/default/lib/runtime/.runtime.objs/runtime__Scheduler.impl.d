lib/runtime/scheduler.ml: Prng
