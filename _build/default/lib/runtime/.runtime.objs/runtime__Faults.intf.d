lib/runtime/faults.mli:
