lib/runtime/engine.ml: Array Bitio Digraph Faults Format Hashtbl List Printexc Printf Prng Protocol_intf Queue Scheduler Stdlib
