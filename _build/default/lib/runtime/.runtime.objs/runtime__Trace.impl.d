lib/runtime/trace.ml: Array Buffer Engine Hashtbl List Printf
