lib/runtime/protocol_intf.ml: Bitio Format
