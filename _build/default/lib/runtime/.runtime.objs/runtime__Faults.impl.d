lib/runtime/faults.ml: Prng
