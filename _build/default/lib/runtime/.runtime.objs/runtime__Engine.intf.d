lib/runtime/engine.mli: Digraph Faults Protocol_intf Scheduler
