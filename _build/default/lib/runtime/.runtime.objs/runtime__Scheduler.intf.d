lib/runtime/scheduler.mli: Prng
