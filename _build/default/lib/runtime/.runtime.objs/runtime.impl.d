lib/runtime/runtime.ml: Engine Faults Protocol_intf Scheduler Sync_engine Trace
