lib/runtime/sync_engine.mli: Digraph Engine Protocol_intf
