(** Deterministic pseudo-random number generation for reproducible experiments.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, splittable generator with 64-bit state.  Every experiment in this
    repository threads an explicit generator so that runs are reproducible
    from a seed; nothing uses the global [Stdlib.Random] state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the continuation of [g]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement g k n] draws [k] distinct values from
    [\[0, n)], in increasing order.  Requires [0 <= k <= n]. *)
