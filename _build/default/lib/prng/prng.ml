type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

let int g bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 g) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub (Int64.sub r v) (Int64.sub bound64 1L) < 0L && bound > 1 then
      draw ()
    else v
  in
  Int64.to_int (draw ())

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g =
  (* 53 random mantissa bits, as in Java's SplittableRandom. *)
  let r = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float r *. 0x1.0p-53

let chance g p = float g < p

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle_in_place g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list g l =
  let a = Array.of_list l in
  shuffle_in_place g a;
  Array.to_list a

let sample_without_replacement g k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = n - k to n - 1 do
    let v = int g (j + 1) in
    if S.mem v !s then s := S.add j !s else s := S.add v !s
  done;
  S.elements !s
