(** Graphviz export for debugging and documentation. *)

val to_dot :
  ?name:string ->
  ?vertex_label:(Graph.vertex -> string) ->
  Graph.t ->
  string
(** [to_dot g] renders the network in DOT syntax.  [s] is drawn as a house,
    [t] as a double circle.  [vertex_label] overrides the default numeric
    labels (used to show assigned labels after the labeling protocol). *)
