lib/digraph/families.ml: Array Graph List Prng
