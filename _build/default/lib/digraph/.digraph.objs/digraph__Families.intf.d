lib/digraph/families.mli: Graph Prng
