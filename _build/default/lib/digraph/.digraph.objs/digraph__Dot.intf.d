lib/digraph/dot.mli: Graph
