lib/digraph/dot.ml: Buffer Graph List Printf String
