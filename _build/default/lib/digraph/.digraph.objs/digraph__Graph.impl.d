lib/digraph/graph.ml: Array Format List Queue Stack Stdlib String
