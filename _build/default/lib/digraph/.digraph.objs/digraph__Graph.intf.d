lib/digraph/graph.mli: Format
