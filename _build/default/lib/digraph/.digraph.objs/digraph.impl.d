lib/digraph/digraph.ml: Dot Families Graph
