let to_dot ?(name = "anonet") ?vertex_label g =
  let buf = Buffer.create 256 in
  let label v =
    match vertex_label with Some f -> f v | None -> string_of_int v
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  rankdir=TB;\n";
  List.iter
    (fun v ->
      let shape =
        if v = Graph.source g then "house"
        else if v = Graph.terminal g then "doublecircle"
        else "circle"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" v
           (String.escaped (label v)) shape))
    (Graph.vertices g);
  List.iter
    (fun u ->
      for j = 0 to Graph.out_degree g u - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [taillabel=\"%d\"];\n" u
             (Graph.out_neighbor g u j) j)
      done)
    (Graph.vertices g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
