(** Exact signed rational numbers over {!Bignat}.

    Needed by the naive grounded-tree protocol of Section 3.1, whose
    termination commodity is [x/d] for arbitrary out-degrees [d] (1/3 is not a
    dyadic number), and by commodity-preservation checks that sum such values
    exactly.  Values are kept normalized: positive denominator, reduced by the
    GCD, and zero has canonical representation. *)

type t

val zero : t
val one : t

val make : ?negative:bool -> Bignat.t -> Bignat.t -> t
(** [make num den] is [±num/den], reduced.  @raise Division_by_zero on a zero
    denominator. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints p q] is [p/q]. @raise Division_by_zero when [q = 0]. *)

val of_bignat : Bignat.t -> t

val num : t -> Bignat.t
(** Numerator magnitude (always the reduced form). *)

val den : t -> Bignat.t
(** Denominator (always positive, reduced). *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_negative : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero when dividing by zero. *)

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val div_int : t -> int -> t
(** [div_int x d] is [x/d]; the naive flow-splitting step.
    @raise Division_by_zero when [d = 0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val sum : t list -> t

val bit_size : t -> int
(** Bits needed by a plain numerator+denominator encoding: used to *measure*
    the communication cost of protocols that ship rationals. *)

val to_string : t -> string
(** ["p/q"], or ["p"] when the denominator is 1; negatives prefixed by [-]. *)

val pp : Format.formatter -> t -> unit

val to_float : t -> float
(** Lossy, for display and plotting only. *)
