(** Exact signed dyadic rationals: values of the form [± m / 2^e].

    The paper's interval commodity (Definition 4.1) is built from
    "binary-point numbers of finite representation, i.e., a sum of powers of 2
    with a finite number of summands" — exactly the dyadic rationals.  The
    power-of-two flow rule of Section 3.1 also lives here: all its termination
    values are [2^-k].

    Values are normalized (mantissa odd unless the exponent is zero; zero is
    canonical), so structural equality is numeric equality. *)

type t

val zero : t
val one : t
val half : t

val make : ?negative:bool -> Bignat.t -> int -> t
(** [make m e] is [± m / 2^e], normalized. Requires [e >= 0]. *)

val of_int : int -> t
val of_bignat : Bignat.t -> t

val mantissa : t -> Bignat.t
(** Mantissa magnitude of the normal form. *)

val exponent : t -> int
(** Denominator exponent of the normal form: the value is
    [sign * mantissa / 2^exponent]. *)

val pow2 : int -> t
(** [pow2 k] is [2^k]; [k] may be negative. *)

val is_zero : t -> bool
val is_negative : t -> bool
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val mul_pow2 : t -> int -> t
(** [mul_pow2 x k] is [x * 2^k]; [k] may be negative (exact in all cases). *)

val div_pow2 : t -> int -> t
(** [div_pow2 x k] is [x / 2^k]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val sum : t list -> t

val midpoint : t -> t -> t
(** Exact average; the canonical way to bisect an interval. *)

val to_rational : t -> Rational.t

val of_rational_opt : Rational.t -> t option
(** [Some d] when the rational's denominator is a power of two. *)

val bit_size : t -> int
(** Bits of a mantissa+exponent encoding; used to measure message sizes and
    label lengths (Theorems 4.3 and 5.1). *)

val to_string : t -> string
(** Exact decimal expansion, e.g. ["0.3125"] for [5/16]. *)

val to_binary_string : t -> string
(** Exact binary-point expansion, e.g. ["0.0101"] for [5/16]. *)

val pp : Format.formatter -> t -> unit

val to_float : t -> float
(** Lossy, for display only. *)
