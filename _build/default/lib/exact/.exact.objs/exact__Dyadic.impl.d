lib/exact/dyadic.ml: Bignat Float Format List Rational Stdlib String
