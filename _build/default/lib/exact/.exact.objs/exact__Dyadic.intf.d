lib/exact/dyadic.mli: Bignat Format Rational
