lib/exact/rational.mli: Bignat Format
