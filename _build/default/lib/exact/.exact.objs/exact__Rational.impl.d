lib/exact/rational.ml: Bignat Format List Stdlib
