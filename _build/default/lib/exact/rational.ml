module B = Bignat

(* Invariants: [den] > 0, gcd(num, den) = 1, and [negative] implies
   [num] <> 0, so zero is uniquely represented. *)
type t = { negative : bool; num : B.t; den : B.t }

let zero = { negative = false; num = B.zero; den = B.one }
let one = { negative = false; num = B.one; den = B.one }

let make ?(negative = false) num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then zero
  else begin
    let g = B.gcd num den in
    { negative; num = B.div num g; den = B.div den g }
  end

let of_bignat n = { negative = false; num = n; den = B.one }

let of_int n =
  if n >= 0 then of_bignat (B.of_int n)
  else { negative = true; num = B.of_int (-n); den = B.one }

let of_ints p q =
  if q = 0 then raise Division_by_zero;
  let negative = (p < 0) <> (q < 0) in
  make ~negative (B.of_int (abs p)) (B.of_int (abs q))

let num x = x.num
let den x = x.den
let is_zero x = B.is_zero x.num
let is_negative x = x.negative
let sign x = if is_zero x then 0 else if x.negative then -1 else 1

let neg x = if is_zero x then x else { x with negative = not x.negative }
let abs x = { x with negative = false }

(* Signed magnitude addition on reduced fractions. *)
let add x y =
  let xn = B.mul x.num y.den and yn = B.mul y.num x.den in
  let den = B.mul x.den y.den in
  if x.negative = y.negative then make ~negative:x.negative (B.add xn yn) den
  else begin
    let c = B.compare xn yn in
    if c = 0 then zero
    else if c > 0 then make ~negative:x.negative (B.sub xn yn) den
    else make ~negative:y.negative (B.sub yn xn) den
  end

let sub x y = add x (neg y)

let mul x y =
  make ~negative:(x.negative <> y.negative) (B.mul x.num y.num) (B.mul x.den y.den)

let inv x =
  if is_zero x then raise Division_by_zero;
  { x with num = x.den; den = x.num }

let div x y = mul x (inv y)

let div_int x d =
  if d = 0 then raise Division_by_zero;
  make ~negative:(x.negative <> (d < 0)) x.num (B.mul_int x.den (Stdlib.abs d))

let compare x y =
  match (sign x, sign y) with
  | sx, sy when sx <> sy -> Stdlib.compare sx sy
  | 0, _ -> 0
  | s, _ ->
      let c = B.compare (B.mul x.num y.den) (B.mul y.num x.den) in
      if s > 0 then c else -c

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let sum = List.fold_left add zero

let bit_size x = 1 + B.bit_length x.num + B.bit_length x.den

let to_string x =
  let s = if x.negative then "-" else "" in
  if B.is_one x.den then s ^ B.to_string x.num
  else s ^ B.to_string x.num ^ "/" ^ B.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)

let to_float x =
  (* Scale down big operands so the conversion stays in double range. *)
  let shift = Stdlib.max 0 (Stdlib.max (B.bit_length x.num) (B.bit_length x.den) - 512) in
  let n = float_of_string (B.to_string (B.shift_right x.num shift)) in
  let d = float_of_string (B.to_string (B.shift_right x.den shift)) in
  let v = if d = 0.0 then 0.0 else n /. d in
  if x.negative then -.v else v
