module B = Bignat

(* Invariants: [exp >= 0]; [mant] is odd unless [exp = 0]; zero is
   [{ negative = false; mant = 0; exp = 0 }]. *)
type t = { negative : bool; mant : B.t; exp : int }

let zero = { negative = false; mant = B.zero; exp = 0 }
let one = { negative = false; mant = B.one; exp = 0 }
let half = { negative = false; mant = B.one; exp = 1 }

let normalize negative mant exp =
  if B.is_zero mant then zero
  else begin
    let mant = ref mant and exp = ref exp in
    while !exp > 0 && B.is_even !mant do
      mant := B.shift_right !mant 1;
      decr exp
    done;
    { negative; mant = !mant; exp = !exp }
  end

let make ?(negative = false) m e =
  if e < 0 then invalid_arg "Dyadic.make: negative exponent";
  normalize negative m e

let of_bignat n = { negative = false; mant = n; exp = 0 }

let of_int n =
  if n >= 0 then of_bignat (B.of_int n)
  else { negative = true; mant = B.of_int (-n); exp = 0 }

let mantissa x = x.mant
let exponent x = x.exp

let pow2 k =
  if k >= 0 then { negative = false; mant = B.pow2 k; exp = 0 }
  else { negative = false; mant = B.one; exp = -k }

let is_zero x = B.is_zero x.mant
let is_negative x = x.negative
let sign x = if is_zero x then 0 else if x.negative then -1 else 1

let neg x = if is_zero x then x else { x with negative = not x.negative }
let abs x = { x with negative = false }

(* Bring both operands over the common denominator 2^(max exp). *)
let align x y =
  let e = Stdlib.max x.exp y.exp in
  (B.shift_left x.mant (e - x.exp), B.shift_left y.mant (e - y.exp), e)

let add x y =
  let mx, my, e = align x y in
  if x.negative = y.negative then normalize x.negative (B.add mx my) e
  else begin
    let c = B.compare mx my in
    if c = 0 then zero
    else if c > 0 then normalize x.negative (B.sub mx my) e
    else normalize y.negative (B.sub my mx) e
  end

let sub x y = add x (neg y)

let mul x y = normalize (x.negative <> y.negative) (B.mul x.mant y.mant) (x.exp + y.exp)

let mul_pow2 x k =
  if is_zero x then x
  else if k >= 0 then
    if x.exp >= k then { x with exp = x.exp - k }
    else { x with mant = B.shift_left x.mant (k - x.exp); exp = 0 }
  else { x with exp = x.exp - k }

let div_pow2 x k = mul_pow2 x (-k)

let compare x y =
  match (sign x, sign y) with
  | sx, sy when sx <> sy -> Stdlib.compare sx sy
  | 0, _ -> 0
  | s, _ ->
      let mx, my, _ = align x y in
      let c = B.compare mx my in
      if s > 0 then c else -c

let equal x y = compare x y = 0
let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let sum = List.fold_left add zero

let midpoint x y = div_pow2 (add x y) 1

let to_rational x =
  Rational.make ~negative:x.negative x.mant (B.pow2 x.exp)

let of_rational_opt r =
  let den = Rational.den r in
  let e = B.bit_length den - 1 in
  if B.equal den (B.pow2 e) then
    Some (make ~negative:(Rational.is_negative r) (Rational.num r) e)
  else None

(* Width of the binary representation of a small non-negative int. *)
let int_width n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let bit_size x =
  (* Sign bit, mantissa bits, and an Elias-gamma-sized exponent field. *)
  1 + B.bit_length x.mant + (2 * int_width x.exp) + 1

let to_binary_string x =
  let sign = if x.negative then "-" else "" in
  if is_zero x then "0"
  else begin
    let int_part = B.shift_right x.mant x.exp in
    let frac = B.sub x.mant (B.shift_left int_part x.exp) in
    if x.exp = 0 then sign ^ B.to_string_binary int_part
    else begin
      let bits =
        String.init x.exp (fun i -> if B.testbit frac (x.exp - 1 - i) then '1' else '0')
      in
      sign ^ B.to_string_binary int_part ^ "." ^ bits
    end
  end

let to_string x =
  let sign = if x.negative then "-" else "" in
  if is_zero x then "0"
  else begin
    let int_part = B.shift_right x.mant x.exp in
    let frac = B.sub x.mant (B.shift_left int_part x.exp) in
    if x.exp = 0 then sign ^ B.to_string int_part
    else begin
      (* frac / 2^e = frac * 5^e / 10^e: an exact decimal expansion. *)
      let scaled = B.mul frac (B.pow (B.of_int 5) x.exp) in
      let digits = B.to_string scaled in
      let padded =
        if String.length digits >= x.exp then digits
        else String.make (x.exp - String.length digits) '0' ^ digits
      in
      sign ^ B.to_string int_part ^ "." ^ padded
    end
  end

let pp fmt x = Format.pp_print_string fmt (to_string x)

let to_float x =
  let shift = Stdlib.max 0 (B.bit_length x.mant - 512) in
  let m = float_of_string (B.to_string (B.shift_right x.mant shift)) in
  let r = m *. Float.pow 2.0 (Float.of_int (shift - x.exp)) in
  if x.negative then -.r else r
