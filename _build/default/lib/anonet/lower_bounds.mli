(** Runnable versions of the paper's lower-bound arguments.

    The paper's "evaluation" is its theorems; these helpers execute the
    witness constructions and report the combinatorial quantities the proofs
    predict, so the benches can check the measured shapes against them. *)

type comb_result = {
  comb_n : int;
  edges : int;
  distinct_symbols : int;
      (** At least [n] by Lemma 3.7 (the paper states [n+1], but [v_n] has
          out-degree 1 in [G_n], so the lemma only separates the first [n]
          chain edges; the [Omega(|E|)] conclusion is unaffected — our
          protocol realizes exactly [n] distinct symbols). *)
  total_bits : int;
  max_edge_bits : int;
}

val comb_symbols : int -> comb_result
(** Run the optimal grounded-tree protocol on [G_n] (Figure 5) and count the
    distinct termination symbols crossing its edges — the quantity the
    Theorem 3.2 lower bound is built on. *)

type skeleton_result = {
  skeleton_n : int;
  subsets : int;  (** [2^n]. *)
  distinct_quantities : int;  (** Equal to [2^n] by inequality (1). *)
  min_quantity_bits : int;  (** Encoded size of the smallest quantity seen. *)
  max_quantity_bits : int;  (** ... and the largest: the [Omega(|E|)] witness. *)
}

val skeleton_quantities_pow2 : n:int -> skeleton_result
(** Sweep all [2^n] subset choices of the Figure 4 skeleton family, running
    the power-of-two commodity-preserving DAG protocol, and collect the
    quantity entering [t] through the collector [w].  Theorem 3.8 predicts
    [2^n] pairwise distinct values, hence an [Omega(n) = Omega(|E|)]-bit
    bandwidth for some subset. *)

val skeleton_quantities_naive : n:int -> skeleton_result
(** Same sweep under the naive [x/d] rational rule. *)

(** {1 Linear cuts (Definition 3.4 and Appendix A)}

    A linear cut partitions the vertices into [V1]/[V2] such that no vertex
    of [V1] is a descendant of one in [V2] — equivalently, no edge crosses
    from [V2] to [V1].  Lemma 3.5 shows the multiset of symbols crossing any
    linear cut must be {e terminating}, and Theorem 3.6 that no such
    multiset may strictly contain another; these are the engines of the
    paper's lower bounds, and the functions below let the tests check them
    on real executions. *)

val linear_cuts : Digraph.t -> bool array list
(** All linear cuts of a small acyclic network, each as a [V1]-membership
    array ([s] always in [V1], [t] always in [V2]).  Exponential in the
    number of internal vertices — intended for graphs with at most ~15 of
    them. *)

val cut_crossing_values : Digraph.t -> bool array -> Exact.Dyadic.t list
(** Run the grounded-tree protocol and collect the termination values
    carried by the edges crossing the given cut (sorted).  On grounded
    trees each edge carries exactly one symbol (Lemma 3.3), so this is the
    multiset [sigma_A(E')] of the proofs. *)

val cut_crossing_values_dag : Digraph.t -> bool array -> Exact.Dyadic.t list
(** Same snapshot for the Section 3.3 DAG protocol (wait-for-all-ports, one
    message per edge) — the "equally well ... to directed acyclic graphs"
    remark after Lemma 3.5. *)

val multiset_strict_subset : Exact.Dyadic.t list -> Exact.Dyadic.t list -> bool
(** Strict multiset inclusion, the relation Theorem 3.6 forbids between
    crossing multisets of two linear cuts.  Both inputs sorted. *)

type label_result = {
  height : int;
  degree : int;
  vertices : int;
  label_bits : int;  (** Encoded size of the surviving leaf's label. *)
}

val pruned_label : height:int -> degree:int -> label_result
(** Run the labeling protocol on the pruned tree of Figure 6(b) and measure
    the label of the surviving leaf [v]: it grows as
    [Omega(height * log degree)] even though the graph has only [height + 3]
    vertices (Theorem 5.2). *)

val full_vs_pruned_leaf_labels :
  height:int -> degree:int -> Intervals.Iset.t * Intervals.Iset.t
(** The Theorem 5.2 pruning argument, executed: the label of the leftmost
    leaf in the full tree of Figure 6(a) and the label of the surviving leaf
    of the pruned tree.  The theorem's key observation is that they are
    {e equal} — the pruned execution is indistinguishable along the path. *)
