include Interval_protocol.Make (struct
  let name = "labeling"
  let assign_label = true
end)
