lib/anonet/flood.ml: Bitio Format List
