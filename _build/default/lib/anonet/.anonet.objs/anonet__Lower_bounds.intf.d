lib/anonet/lower_bounds.mli: Digraph Exact Intervals
