lib/anonet/general_broadcast.ml: Interval_protocol
