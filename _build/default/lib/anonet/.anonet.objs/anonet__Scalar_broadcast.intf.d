lib/anonet/scalar_broadcast.mli: Commodity Runtime
