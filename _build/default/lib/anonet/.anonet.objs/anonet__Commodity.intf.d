lib/anonet/commodity.mli: Bitio Exact Format
