lib/anonet/scalar_broadcast.ml: Commodity Format List
