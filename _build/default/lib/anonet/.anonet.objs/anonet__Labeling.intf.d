lib/anonet/labeling.mli: Interval_protocol
