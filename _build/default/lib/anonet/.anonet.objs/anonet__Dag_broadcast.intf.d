lib/anonet/dag_broadcast.mli: Commodity Runtime
