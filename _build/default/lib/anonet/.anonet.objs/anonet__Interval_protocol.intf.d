lib/anonet/interval_protocol.mli: Interval_core Intervals Runtime
