lib/anonet/mapping.ml: Array Bitio Digraph Format Hashtbl Interval_core Intervals List Option Set Stdlib
