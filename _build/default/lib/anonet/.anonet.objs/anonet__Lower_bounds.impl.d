lib/anonet/lower_bounds.ml: Array Bitio Commodity Dag_broadcast Digraph Exact Intervals Labeling List Runtime Scalar_broadcast
