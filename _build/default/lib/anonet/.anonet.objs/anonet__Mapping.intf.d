lib/anonet/mapping.mli: Digraph Intervals Runtime
