lib/anonet/undirected_labeling.mli: Runtime
