lib/anonet/undirected_labeling.ml: Bitio Format List
