lib/anonet/labeling.ml: Interval_protocol
