lib/anonet/interval_core.mli: Intervals
