lib/anonet/general_broadcast.mli: Interval_protocol
