lib/anonet/interval_protocol.ml: Array Format Interval_core Intervals List
