lib/anonet/dag_broadcast.ml: Commodity Format List
