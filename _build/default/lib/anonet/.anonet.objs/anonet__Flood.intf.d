lib/anonet/flood.mli: Runtime
