lib/anonet/interval_core.ml: Array Intervals List
