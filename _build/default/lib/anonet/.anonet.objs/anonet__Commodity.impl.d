lib/anonet/commodity.ml: Bitio Exact Format List
