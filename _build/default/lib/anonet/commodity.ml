module type S = sig
  type t

  val name : string
  val unit_commodity : t
  val zero : t
  val add : t -> t -> t
  val is_unit : t -> bool
  val split : t -> int -> t list
  val encode : Bitio.Bit_writer.t -> t -> unit
  val decode : Bitio.Bit_reader.t -> t
  val bit_size : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

let ceil_log2 d =
  assert (d >= 1);
  let rec go c p = if p >= d then c else go (c + 1) (p * 2) in
  go 0 1

let pow2_split_counts d =
  let c = ceil_log2 d in
  let small = (2 * d) - (1 lsl c) in
  (c, small, d - small)

module Pow2_dyadic = struct
  module Dy = Exact.Dyadic

  type t = Dy.t

  let name = "pow2-dyadic"
  let unit_commodity = Dy.one
  let zero = Dy.zero
  let add = Dy.add
  let is_unit x = Dy.equal x Dy.one

  let split x d =
    if d < 1 then invalid_arg "Pow2_dyadic.split: d must be >= 1";
    let c, small, _big = pow2_split_counts d in
    List.init d (fun j ->
        if j < small then Dy.div_pow2 x c else Dy.div_pow2 x (c - 1))

  let encode = Bitio.Codes.write_dyadic
  let decode = Bitio.Codes.read_dyadic
  let bit_size = Bitio.Codes.dyadic_size
  let equal = Dy.equal
  let compare = Dy.compare
  let to_string = Dy.to_string
  let pp = Dy.pp
end

module Even_rational = struct
  module Q = Exact.Rational

  type t = Q.t

  let name = "even-rational"
  let unit_commodity = Q.one
  let zero = Q.zero
  let add = Q.add
  let is_unit x = Q.equal x Q.one

  let split x d =
    if d < 1 then invalid_arg "Even_rational.split: d must be >= 1";
    let part = Q.div_int x d in
    List.init d (fun _ -> part)

  let encode = Bitio.Codes.write_rational
  let decode = Bitio.Codes.read_rational
  let bit_size = Bitio.Codes.rational_size
  let equal = Q.equal
  let compare = Q.compare
  let to_string = Q.to_string
  let pp = Q.pp
end
