(** Broadcasting over general directed graphs — the main protocol of the
    paper (Section 4, Theorem 4.2).

    The commodity is the unit interval: the root injects [\[0,1)], every
    vertex canonically partitions what it first receives among its
    out-edges, repeated arrivals are recognized as cycles and flooded to the
    terminal as beta information, and the terminal halts exactly when the
    union of everything it has seen is [\[0,1)] — which happens iff every
    vertex of the network lies on a path to [t].

    Complexity (Theorems 4.2/4.3): total communication
    [O(|E|^2 |V| log d_out) + |E||m|]; per-symbol size
    [O(|E| |V| log d_out) + |m|]. *)

include module type of Interval_protocol.Make (struct
  let name = "general-broadcast"
  let assign_label = false
end)
