module Make (C : Commodity.S) = struct
  type state = { acc : C.t; heard : int }
  type message = C.t

  let name = "dag-broadcast/" ^ C.name

  let initial_state ~out_degree:_ ~in_degree:_ = { acc = C.zero; heard = 0 }

  let root_emit ~out_degree =
    if out_degree = 0 then []
    else List.mapi (fun j v -> (j, v)) (C.split C.unit_commodity out_degree)

  let receive ~out_degree ~in_degree state x ~in_port:_ =
    let state = { acc = C.add state.acc x; heard = state.heard + 1 } in
    let sends =
      if state.heard = in_degree && out_degree > 0 then
        List.mapi (fun j v -> (j, v)) (C.split state.acc out_degree)
      else []
    in
    (state, sends)

  let accepting state = C.is_unit state.acc

  let encode = C.encode
  let decode = C.decode
  let equal_message = C.equal

  let state_bits st = C.bit_size st.acc + 32

  let pp_message = C.pp

  let pp_state fmt st =
    Format.fprintf fmt "acc=%s heard=%d" (C.to_string st.acc) st.heard

  let accumulated st = st.acc
  let heard st = st.heard
end
