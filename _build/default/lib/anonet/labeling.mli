(** Unique label assignment over general directed graphs (Section 5,
    Theorem 5.1).

    A variation of {!General_broadcast}: at its canonical partition each
    vertex splits its first interval-union into [d+1] parts instead of [d],
    keeps part 0 as its {e label}, and immediately floods the label as beta
    information so the terminal can still account for the whole of [\[0,1)].
    On termination every vertex on a path to [t] holds a non-empty label
    interval, all labels are pairwise disjoint (hence unique), each label is
    a single interval of [O(|V| log d_out)] bits — which Theorem 5.2 shows
    is optimal. *)

include module type of Interval_protocol.Make (struct
  let name = "labeling"
  let assign_label = true
end)
