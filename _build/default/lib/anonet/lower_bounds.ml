module Is = Intervals.Iset

type comb_result = {
  comb_n : int;
  edges : int;
  distinct_symbols : int;
  total_bits : int;
  max_edge_bits : int;
}

module Tree_protocol = Scalar_broadcast.Make (Commodity.Pow2_dyadic)
module Tree_engine = Runtime.Engine.Make (Tree_protocol)

let comb_symbols n =
  let g = Digraph.Families.comb n in
  let r = Tree_engine.run g in
  assert (r.outcome = Runtime.Engine.Terminated);
  {
    comb_n = n;
    edges = Digraph.n_edges g;
    distinct_symbols = r.distinct_messages;
    total_bits = r.total_bits;
    max_edge_bits = r.max_edge_bits;
  }

type skeleton_result = {
  skeleton_n : int;
  subsets : int;
  distinct_quantities : int;
  min_quantity_bits : int;
  max_quantity_bits : int;
}

module Skeleton_sweep (C : Commodity.S) = struct
  module P = Dag_broadcast.Make (C)
  module E = Runtime.Engine.Make (P)

  (* The quantity flowing from the collector w into t for one subset choice;
     [C.zero] when w receives nothing (the empty subset). *)
  let w_quantity ~n ~subset =
    let g = Digraph.Families.skeleton ~n ~subset in
    let w = Digraph.Families.skeleton_w ~n in
    let captured = ref C.zero in
    let hook (ev : Runtime.Engine.event) msg =
      if ev.from_vertex = w then captured := msg
    in
    let r = E.run ~on_deliver:hook g in
    (* With an empty subset w is unreachable, which legitimately leaves the
       run quiescent only if some commodity is stranded; here all commodity
       bypasses w, so the run still terminates. *)
    assert (r.outcome = Runtime.Engine.Terminated);
    !captured

  let quantity_bits q =
    let w = Bitio.Bit_writer.create () in
    C.encode w q;
    Bitio.Bit_writer.length w

  let sweep ~n =
    let subsets = 1 lsl n in
    let values = ref [] in
    for mask = 0 to subsets - 1 do
      let subset = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
      values := w_quantity ~n ~subset :: !values
    done;
    let sorted = List.sort_uniq C.compare !values in
    let non_zero = List.filter (fun q -> not (C.equal q C.zero)) sorted in
    let bit_sizes = List.map quantity_bits non_zero in
    {
      skeleton_n = n;
      subsets;
      distinct_quantities = List.length sorted;
      min_quantity_bits = List.fold_left min max_int bit_sizes;
      max_quantity_bits = List.fold_left max 0 bit_sizes;
    }
end

module Sweep_pow2 = Skeleton_sweep (Commodity.Pow2_dyadic)
module Sweep_naive = Skeleton_sweep (Commodity.Even_rational)

let skeleton_quantities_pow2 ~n = Sweep_pow2.sweep ~n
let skeleton_quantities_naive ~n = Sweep_naive.sweep ~n

let linear_cuts g =
  let internals = Array.of_list (Digraph.internal_vertices g) in
  let k = Array.length internals in
  if k > 20 then invalid_arg "Lower_bounds.linear_cuts: graph too large";
  let n = Digraph.n_vertices g in
  let edges = Digraph.edges g in
  let cuts = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let v1 = Array.make n false in
    v1.(Digraph.source g) <- true;
    Array.iteri (fun i v -> v1.(v) <- (mask lsr i) land 1 = 1) internals;
    (* Linear cut iff no edge crosses from V2 into V1. *)
    let ok =
      List.for_all (fun (u, v) -> not ((not v1.(u)) && v1.(v))) edges
    in
    if ok then cuts := v1 :: !cuts
  done;
  List.rev !cuts

(* One full run determines every edge's symbol (in both the grounded-tree
   and the DAG protocol every edge carries exactly one message). *)
let crossing_of_run g v1 run =
  let ne = Digraph.n_edges g in
  let symbols = Array.make ne None in
  let hook (ev : Runtime.Engine.event) msg =
    let idx = Digraph.edge_index g ev.from_vertex ev.from_port in
    symbols.(idx) <- Some msg
  in
  run hook;
  let crossing = ref [] in
  List.iteri
    (fun idx (u, v) ->
      if v1.(u) && not v1.(v) then
        match symbols.(idx) with
        | Some x -> crossing := x :: !crossing
        | None -> assert false)
    (Digraph.edges g);
  List.sort Exact.Dyadic.compare !crossing

let cut_crossing_values g v1 =
  crossing_of_run g v1 (fun hook ->
      let r = Tree_engine.run ~on_deliver:hook g in
      assert (r.outcome = Runtime.Engine.Terminated))

module Dag_pow2_engine = Runtime.Engine.Make (Sweep_pow2.P)

let cut_crossing_values_dag g v1 =
  crossing_of_run g v1 (fun hook ->
      let r = Dag_pow2_engine.run ~on_deliver:hook g in
      assert (r.outcome = Runtime.Engine.Terminated))

let multiset_strict_subset a b =
  (* Both sorted; a strict subset of b as multisets. *)
  let rec included a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' ->
        let c = Exact.Dyadic.compare x y in
        if c = 0 then included a' b'
        else if c > 0 then included a b'
        else false
  in
  List.length a < List.length b && included a b

type label_result = {
  height : int;
  degree : int;
  vertices : int;
  label_bits : int;
}

module Label_engine = Runtime.Engine.Make (Labeling)

let iset_bits s =
  let w = Bitio.Bit_writer.create () in
  Is.write w s;
  Bitio.Bit_writer.length w

let pruned_label ~height ~degree =
  let g = Digraph.Families.pruned_tree ~height ~degree in
  let leaf = Digraph.Families.pruned_tree_leaf ~height in
  let r = Label_engine.run g in
  assert (r.outcome = Runtime.Engine.Terminated);
  {
    height;
    degree;
    vertices = Digraph.n_vertices g;
    label_bits = iset_bits (Labeling.label r.states.(leaf));
  }

let full_vs_pruned_leaf_labels ~height ~degree =
  let path_ports = List.init height (fun _ -> 0) in
  let full = Digraph.Families.full_tree ~height ~degree in
  let full_leaf = Digraph.Families.full_tree_leaf ~height ~degree ~path_ports in
  let pruned = Digraph.Families.pruned_tree ~height ~degree in
  let pruned_leaf = Digraph.Families.pruned_tree_leaf ~height in
  let r_full = Label_engine.run full in
  let r_pruned = Label_engine.run pruned in
  assert (r_full.outcome = Runtime.Engine.Terminated);
  assert (r_pruned.outcome = Runtime.Engine.Terminated);
  ( Labeling.label r_full.states.(full_leaf),
    Labeling.label r_pruned.states.(pruned_leaf) )
