include Interval_protocol.Make (struct
  let name = "general-broadcast"
  let assign_label = false
end)
