(** Scalar termination commodities for the flow-based broadcast protocols of
    Section 3.

    A commodity is the value a vertex splits among its out-edges; the source
    injects one unit and the terminal declares termination when the values it
    has received sum back to one.  Two concrete disciplines are provided:

    - {!Pow2_dyadic} — the paper's optimal rule (Section 3.1): a vertex of
      out-degree [d] sends [x / 2^ceil(log d)] on its first
      [2d - 2^ceil(log d)] edges and twice that on the rest, so every value
      in the network is a (dyadic) power of two and encodes in
      [O(log |E|)] bits on grounded trees;
    - {!Even_rational} — the naive rule [x/d], which needs general exact
      rationals and is the ablation baseline the paper credits with
      [O(|E|^{3/2})] total communication. *)

module type S = sig
  type t

  val name : string

  val unit_commodity : t
  (** The flow of value 1 leaving the source. *)

  val zero : t
  val add : t -> t -> t
  val is_unit : t -> bool

  val split : t -> int -> t list
  (** [split x d] with [d >= 1]: the values for out-edges [0..d-1]; the
      commodity-preservation contract is that they sum to [x]. *)

  val encode : Bitio.Bit_writer.t -> t -> unit
  val decode : Bitio.Bit_reader.t -> t
  val bit_size : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

module Pow2_dyadic : S with type t = Exact.Dyadic.t
module Even_rational : S with type t = Exact.Rational.t

val pow2_split_counts : int -> int * int * int
(** [pow2_split_counts d] is [(c, small_edges, big_edges)] for out-degree
    [d]: [small_edges] edges carry [x/2^c], [big_edges] carry [x/2^(c-1)],
    with [c = ceil(log2 d)].  Exposed for direct unit-testing of the rule. *)
