(** Arbitrary-precision natural numbers.

    The commodity values manipulated by the paper's protocols shrink as fast
    as [2^-O(|E|)] (Theorem 3.1) and interval endpoints carry
    [O(|V| log d_out)] bits (Theorem 4.3), so fixed-width arithmetic is not an
    option and the sealed build environment has no [zarith].  This module is a
    self-contained bignum kernel: little-endian arrays of 30-bit limbs,
    schoolbook multiplication, shift-subtract division, binary GCD.

    All values are non-negative; [sub] raises on underflow.  Values are
    normalized (no leading zero limbs), so structural equality coincides with
    numeric equality. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** [of_int n] requires [n >= 0]. *)

val to_int_opt : t -> int option
(** [Some n] when the value fits in an OCaml [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

val add : t -> t -> t

val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val succ : t -> t
val pred : t -> t

val mul : t -> t -> t
val mul_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= r < b].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val divmod_int : t -> int -> t * int
(** Division by a small positive int. *)

val gcd : t -> t -> t
(** Binary GCD; [gcd zero x = x]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit x i] is bit [i] (LSB is bit 0). *)

val pow2 : int -> t
(** [pow2 k] is [2^k]. *)

val pow : t -> int -> t
(** [pow b e] with [e >= 0], by binary exponentiation. *)

val of_string : string -> t
(** Parse a decimal string. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val to_string_binary : t -> string
(** Binary representation, MSB first; ["0"] for zero. *)

val pp : Format.formatter -> t -> unit
