(* Little-endian array of limbs, each in [0, 2^limb_bits).  Normalized: the
   most significant limb is non-zero; zero is the empty array.  30-bit limbs
   keep every intermediate product of the schoolbook loops well inside the
   63-bit native int range. *)

let limb_bits = 30
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero x = Array.length x = 0
let is_one x = Array.length x = 1 && x.(0) = 1

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then List.rev acc else limbs ((n land limb_mask) :: acc) (n lsr limb_bits) in
    Array.of_list (limbs [] n)
  end

let to_int_opt x =
  let n = Array.length x in
  if n = 0 then Some 0
  else if n * limb_bits <= 62 then begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor x.(i)
    done;
    Some !v
  end
  else begin
    (* May still fit: check the high limbs. *)
    let v = ref 0 and ok = ref true in
    for i = n - 1 downto 0 do
      if !v > (max_int - x.(i)) lsr limb_bits then ok := false
      else v := (!v lsl limb_bits) lor x.(i)
    done;
    if !ok then Some !v else None
  end

let to_int_exn x =
  match to_int_opt x with
  | Some n -> n
  | None -> failwith "Bignat.to_int_exn: value too large"

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let hash (x : t) = Hashtbl.hash x

let is_even x = Array.length x = 0 || x.(0) land 1 = 0

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Bignat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + limb_base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let succ x = add x one
let pred x = sub x one

let mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let cur = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      (* Propagate the remaining carry (can span several limbs). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let cur = r.(!k) + !carry in
        r.(!k) <- cur land limb_mask;
        carry := cur lsr limb_bits;
        incr k
      done
    done;
    normalize r
  end

let mul_int a m =
  if m < 0 then invalid_arg "Bignat.mul_int: negative"
  else if m = 0 then zero
  else if m < limb_base then begin
    let la = Array.length a in
    let r = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let cur = (a.(i) * m) + !carry in
      r.(i) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    let k = ref la in
    while !carry <> 0 do
      r.(!k) <- !carry land limb_mask;
      carry := !carry lsr limb_bits;
      incr k
    done;
    normalize r
  end
  else mul a (of_int m)

let bit_length x =
  let n = Array.length x in
  if n = 0 then 0
  else begin
    let top = x.(n - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((n - 1) * limb_bits) + width 0 top
  end

let testbit x i =
  let limb = i / limb_bits and off = i mod limb_bits in
  limb < Array.length x && (x.(limb) lsr off) land 1 = 1

let shift_left (x : t) k =
  if k < 0 then invalid_arg "Bignat.shift_left: negative shift";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let lx = Array.length x in
    let r = Array.make (lx + limbs + 1) 0 in
    if bits = 0 then Array.blit x 0 r limbs lx
    else begin
      let carry = ref 0 in
      for i = 0 to lx - 1 do
        let cur = (x.(i) lsl bits) lor !carry in
        r.(i + limbs) <- cur land limb_mask;
        carry := cur lsr limb_bits
      done;
      r.(lx + limbs) <- !carry
    end;
    normalize r
  end

let shift_right (x : t) k =
  if k < 0 then invalid_arg "Bignat.shift_right: negative shift";
  if is_zero x || k = 0 then x
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let lx = Array.length x in
    if limbs >= lx then zero
    else begin
      let n = lx - limbs in
      let r = Array.make n 0 in
      if bits = 0 then Array.blit x limbs r 0 n
      else begin
        for i = 0 to n - 1 do
          let lo = x.(i + limbs) lsr bits in
          let hi = if i + limbs + 1 < lx then (x.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let pow2 k =
  let r = Array.make ((k / limb_bits) + 1) 0 in
  r.(k / limb_bits) <- 1 lsl (k mod limb_bits);
  r

(* Division by a small positive int, m < limb_base. *)
let divmod_small (a : t) (m : int) : t * int =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / m;
    r := cur mod m
  done;
  (normalize q, !r)

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    (* Shift-subtract long division, one bit at a time: O(bits(a) * limbs(b)).
       Plenty fast for the endpoint sizes our protocols produce. *)
    let n = bit_length a in
    let q = Array.make (Array.length a) 0 in
    let r = ref zero in
    for i = n - 1 downto 0 do
      r := shift_left !r 1;
      if testbit a i then r := add !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (normalize q, !r)
  end

let divmod_int (a : t) (m : int) : t * int =
  if m <= 0 then invalid_arg "Bignat.divmod_int: divisor must be positive";
  if m < limb_base then divmod_small a m
  else begin
    let q, r = divmod a (of_int m) in
    (q, to_int_exn r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Binary GCD: only shifts, subtraction and parity tests. *)
let gcd a0 b0 =
  if is_zero a0 then b0
  else if is_zero b0 then a0
  else begin
    let a = ref a0 and b = ref b0 and shift = ref 0 in
    while is_even !a && is_even !b do
      a := shift_right !a 1;
      b := shift_right !b 1;
      incr shift
    done;
    while is_even !a do
      a := shift_right !a 1
    done;
    (* Invariant: [!a] is odd. *)
    let continue = ref true in
    while !continue do
      while is_even !b do
        b := shift_right !b 1
      done;
      if compare !a !b > 0 then begin
        let t = !a in
        a := !b;
        b := sub t !b
      end
      else b := sub !b !a;
      if is_zero !b then continue := false
    done;
    shift_left !a !shift
  end

let pow b e =
  if e < 0 then invalid_arg "Bignat.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_string s =
  if String.length s = 0 then invalid_arg "Bignat.of_string: empty";
  let v = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Bignat.of_string: not a digit";
      v := add (mul_int !v 10) (of_int (Char.code c - Char.code '0')))
    s;
  !v

let to_string x =
  if is_zero x then "0"
  else begin
    let buf = Buffer.create 16 in
    let rec go x =
      if not (is_zero x) then begin
        let q, r = divmod_int x 10 in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + r))
      end
    in
    go x;
    Buffer.contents buf
  end

let to_string_binary x =
  let n = bit_length x in
  if n = 0 then "0"
  else String.init n (fun i -> if testbit x (n - 1 - i) then '1' else '0')

let pp fmt x = Format.pp_print_string fmt (to_string x)
