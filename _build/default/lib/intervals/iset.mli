(** Interval-unions: finite unions of disjoint half-open dyadic intervals,
    the paper's [U\[0,1)] (Definition 4.1).

    Values are kept in normal form — sorted, pairwise disjoint, non-adjacent,
    non-empty intervals — so structural equality is set equality and the
    interval count is the minimal one (the quantity bounded by [O(|E|)] in
    Theorem 4.3). *)

type t

val empty : t
val unit : t
(** The full commodity [\[0,1)]. *)

val of_interval : Interval.t -> t
val of_intervals : Interval.t list -> t
(** Normalizes an arbitrary collection (overlaps and adjacency allowed). *)

val interval : Exact.Dyadic.t -> Exact.Dyadic.t -> t
(** [interval lo hi] is the single interval [\[lo, hi)]. *)

val intervals : t -> Interval.t list
(** The normal form, sorted. *)

val count : t -> int
(** Number of intervals in normal form. *)

val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val measure : t -> Exact.Dyadic.t
val mem : Exact.Dyadic.t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val disjoint : t -> t -> bool

val complement : t -> t
(** Complement within [\[0,1)]; only meaningful for subsets of the unit
    interval, which is all the protocols ever produce. *)

val is_unit : t -> bool
(** Does this union cover exactly [\[0,1)]?  The terminal's stopping
    predicate. *)

val first_interval : t -> Interval.t option
(** Leftmost interval of the normal form. *)

val canonical_partition : t -> int -> t list
(** [canonical_partition a d] is the paper's canonical partition of [a] into
    [d] interval-unions (Definition 4.1 as used by Theorem 4.2): the first
    interval [I1] of [a] is {!Interval.split} into [d] parts; part [j < d] is
    the [j]-th slice, and part [d] additionally receives the remaining
    intervals [I2 ... Ir].

    Note: the paper's prose says "partition [I1] into [d-1] parts", but that
    leaves the last out-edge with an empty commodity on single-interval
    unions, which would break Theorem 4.2 already on binary trees; the proof
    of Theorem 4.3 ("each vertex ... produces [d_out(v)] new intervals")
    confirms the [d]-way split implemented here.

    Every part is non-empty when [a] is non-empty.  Requires [d >= 1].
    Partitioning the empty union yields [d] empty unions. *)

val write : Bitio.Bit_writer.t -> t -> unit
val read : Bitio.Bit_reader.t -> t
val size_bits : t -> int
(** Exact encoded size: the unit of all communication measurements. *)

val max_endpoint_bits : t -> int
(** Largest [Dyadic.bit_size] over all endpoints — the quantity Theorem 4.3
    bounds by [O(|V| log d_out)]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
