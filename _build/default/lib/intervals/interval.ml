module Dy = Exact.Dyadic

type t = { lo : Dy.t; hi : Dy.t }

let empty = { lo = Dy.zero; hi = Dy.zero }

let make lo hi = if Dy.compare lo hi >= 0 then empty else { lo; hi }

let unit = { lo = Dy.zero; hi = Dy.one }

let lo iv = iv.lo
let hi iv = iv.hi

let is_empty iv = Dy.compare iv.lo iv.hi >= 0

let equal a b = Dy.equal a.lo b.lo && Dy.equal a.hi b.hi

let compare a b =
  let c = Dy.compare a.lo b.lo in
  if c <> 0 then c else Dy.compare a.hi b.hi

let measure iv = if is_empty iv then Dy.zero else Dy.sub iv.hi iv.lo

let mem x iv = Dy.compare iv.lo x <= 0 && Dy.compare x iv.hi < 0

let subset a b = is_empty a || (Dy.compare b.lo a.lo <= 0 && Dy.compare a.hi b.hi <= 0)

let intersect a b =
  if is_empty a || is_empty b then empty
  else make (Dy.max a.lo b.lo) (Dy.min a.hi b.hi)

let overlaps a b = not (is_empty (intersect a b))

let touches a b =
  (not (is_empty a)) && (not (is_empty b))
  && Dy.compare a.lo b.hi <= 0
  && Dy.compare b.lo a.hi <= 0

(* Smallest exponent c with 2^c >= k. *)
let ceil_log2 k =
  assert (k >= 1);
  let rec go c p = if p >= k then c else go (c + 1) (p * 2) in
  go 0 1

let split iv k =
  if k < 1 then invalid_arg "Interval.split: k must be >= 1";
  if is_empty iv then List.init k (fun _ -> empty)
  else if k = 1 then [ iv ]
  else begin
    let c = ceil_log2 k in
    let delta = Dy.div_pow2 (Dy.sub iv.hi iv.lo) c in
    let boundary j = Dy.add iv.lo (Dy.mul (Dy.of_int j) delta) in
    let part j =
      if j < k - 1 then make (boundary j) (boundary (j + 1))
      else make (boundary j) iv.hi
    in
    List.init k part
  end

let write w iv =
  Bitio.Codes.write_dyadic w iv.lo;
  Bitio.Codes.write_dyadic w iv.hi

let read r =
  let lo = Bitio.Codes.read_dyadic r in
  let hi = Bitio.Codes.read_dyadic r in
  make lo hi

let size_bits iv = Bitio.Codes.dyadic_size iv.lo + Bitio.Codes.dyadic_size iv.hi

let to_string iv =
  if is_empty iv then "[)"
  else Printf.sprintf "[%s, %s)" (Dy.to_string iv.lo) (Dy.to_string iv.hi)

let pp fmt iv = Format.pp_print_string fmt (to_string iv)
