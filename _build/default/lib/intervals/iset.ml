module Dy = Exact.Dyadic
module I = Interval

(* Normal form: sorted by lower endpoint; intervals non-empty, pairwise
   disjoint and non-adjacent (no [a,b) [b,c) pairs). *)
type t = I.t list

let empty : t = []
let unit : t = [ I.unit ]

let intervals s = s
let count = List.length
let is_empty s = s = []

(* Coalesce a sorted list of possibly overlapping/adjacent intervals. *)
let coalesce sorted =
  let rec go acc = function
    | [] -> List.rev acc
    | iv :: rest -> (
        match acc with
        | prev :: acc' when I.touches prev iv ->
            let merged = I.make (Dy.min (I.lo prev) (I.lo iv)) (Dy.max (I.hi prev) (I.hi iv)) in
            go (merged :: acc') rest
        | _ -> go (iv :: acc) rest)
  in
  go [] sorted

let of_intervals ivs =
  ivs |> List.filter (fun iv -> not (I.is_empty iv)) |> List.sort I.compare |> coalesce

let of_interval iv = of_intervals [ iv ]

let interval lo hi = of_interval (I.make lo hi)

let equal a b = List.equal I.equal a b

let compare a b = List.compare I.compare a b

let measure s = Dy.sum (List.map I.measure s)

let mem x s = List.exists (I.mem x) s

let union a b = of_intervals (a @ b)

let inter a b =
  (* Two-pointer sweep over the sorted normal forms. *)
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | ia :: ra, ib :: rb ->
        let m = I.intersect ia ib in
        let acc = if I.is_empty m then acc else m :: acc in
        if Dy.compare (I.hi ia) (I.hi ib) <= 0 then go acc ra b else go acc a rb
  in
  go [] a b

let diff a b =
  (* Subtract each interval of [b] from the running pieces of [a]. *)
  let subtract_one iv cut =
    if not (I.overlaps iv cut) then [ iv ]
    else
      [ I.make (I.lo iv) (Dy.min (I.hi iv) (I.lo cut));
        I.make (Dy.max (I.lo iv) (I.hi cut)) (I.hi iv) ]
      |> List.filter (fun i -> not (I.is_empty i))
  in
  let rec sub_all iv cuts =
    match cuts with
    | [] -> [ iv ]
    | cut :: rest -> List.concat_map (fun piece -> sub_all piece rest) (subtract_one iv cut)
  in
  (* Normal form is already sorted/disjoint, so the result needs no
     re-coalescing, but going through of_intervals keeps the invariant
     locally obvious. *)
  of_intervals (List.concat_map (fun iv -> sub_all iv b) a)

let subset a b = is_empty (diff a b)
let disjoint a b = is_empty (inter a b)

let complement s = diff unit s

let is_unit s = equal s unit

let first_interval = function [] -> None | iv :: _ -> Some iv

let canonical_partition s d =
  if d < 1 then invalid_arg "Iset.canonical_partition: d must be >= 1";
  match s with
  | [] -> List.init d (fun _ -> empty)
  | first :: rest ->
      let slices = I.split first d in
      let parts = List.map of_interval slices in
      let rec attach_rest = function
        | [] -> assert false
        | [ last ] -> [ union last (of_intervals rest) ]
        | p :: ps -> p :: attach_rest ps
      in
      attach_rest parts

let write w s =
  Bitio.Codes.write_gamma0 w (count s);
  List.iter (I.write w) s

let read r =
  let n = Bitio.Codes.read_gamma0 r in
  (* Explicit recursion: List.init does not guarantee evaluation order. *)
  let rec go acc k = if k = 0 then List.rev acc else go (I.read r :: acc) (k - 1) in
  of_intervals (go [] n)

let size_bits s =
  Bitio.Codes.gamma0_size (count s)
  + List.fold_left (fun acc iv -> acc + I.size_bits iv) 0 s

let max_endpoint_bits s =
  List.fold_left
    (fun acc iv -> max acc (max (Dy.bit_size (I.lo iv)) (Dy.bit_size (I.hi iv))))
    0 s

let to_string s =
  if is_empty s then "{}"
  else String.concat " u " (List.map I.to_string s)

let pp fmt s = Format.pp_print_string fmt (to_string s)
