lib/intervals/iset.ml: Bitio Exact Format Interval List String
