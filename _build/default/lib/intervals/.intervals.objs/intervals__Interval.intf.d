lib/intervals/interval.mli: Bitio Exact Format
