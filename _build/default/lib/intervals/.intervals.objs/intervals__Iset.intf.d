lib/intervals/iset.mli: Bitio Exact Format Interval
