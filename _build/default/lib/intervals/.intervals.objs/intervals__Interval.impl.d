lib/intervals/interval.ml: Bitio Exact Format List Printf
