(** Half-open intervals [\[a, b)] with exact dyadic endpoints.

    The element type of the paper's interval set [I\[0,1)] (Definition 4.1).
    The empty interval has the canonical representation [\[0, 0)], so
    structural equality is semantic equality. *)

type t

val make : Exact.Dyadic.t -> Exact.Dyadic.t -> t
(** [make lo hi] is [\[lo, hi)]; any [lo >= hi] yields the canonical empty
    interval. *)

val empty : t
val unit : t
(** [\[0, 1)], the initial commodity sent by the root. *)

val lo : t -> Exact.Dyadic.t
(** Meaningless (zero) on the empty interval. *)

val hi : t -> Exact.Dyadic.t

val is_empty : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** Lexicographic on [(lo, hi)]; empty sorts first. *)

val measure : t -> Exact.Dyadic.t
val mem : Exact.Dyadic.t -> t -> bool
val subset : t -> t -> bool
val overlaps : t -> t -> bool
val intersect : t -> t -> t

val touches : t -> t -> bool
(** [touches a b] when the two intervals overlap or share an endpoint, i.e.
    their union is a single interval. *)

val split : t -> int -> t list
(** [split iv k] is the paper's k-way rule (proof of Theorem 4.3): with
    [N] the smallest power of two [>= k] and [delta = (hi-lo)/N], produce
    [k-1] intervals of width [delta] and one final interval covering the
    rest.  All parts are non-empty when [iv] is non-empty, each endpoint
    gains [O(log k)] bits.  Requires [k >= 1].  Splitting the empty interval
    yields [k] empty intervals. *)

val write : Bitio.Bit_writer.t -> t -> unit
val read : Bitio.Bit_reader.t -> t
val size_bits : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
