(** Self-delimiting integer and number codes over {!Bit_writer}/{!Bit_reader}.

    Protocol messages must be decodable without out-of-band length
    information (a vertex only sees a bit stream on a port), so every field
    uses a prefix-free code: Elias gamma/delta for integers, and
    length-prefixed encodings for bignums and dyadics built on top. *)

val write_unary : Bit_writer.t -> int -> unit
(** [n >= 0] zeros followed by a one. *)

val read_unary : Bit_reader.t -> int

val write_gamma : Bit_writer.t -> int -> unit
(** Elias gamma; requires the argument to be [>= 1]. *)

val read_gamma : Bit_reader.t -> int

val write_gamma0 : Bit_writer.t -> int -> unit
(** Gamma shifted to accept 0: encodes [n >= 0] as [gamma (n+1)]. *)

val read_gamma0 : Bit_reader.t -> int

val write_delta : Bit_writer.t -> int -> unit
(** Elias delta; requires the argument to be [>= 1]. *)

val read_delta : Bit_reader.t -> int

val write_bignat : Bit_writer.t -> Bignat.t -> unit
(** Gamma-prefixed bit length, then the magnitude bits MSB-first. *)

val read_bignat : Bit_reader.t -> Bignat.t

val write_dyadic : Bit_writer.t -> Exact.Dyadic.t -> unit
(** Sign bit, gamma0 exponent, bignat mantissa. *)

val read_dyadic : Bit_reader.t -> Exact.Dyadic.t

val write_rational : Bit_writer.t -> Exact.Rational.t -> unit
val read_rational : Bit_reader.t -> Exact.Rational.t

val gamma0_size : int -> int
(** Encoded size in bits of {!write_gamma0}, without writing. *)

val bignat_size : Bignat.t -> int
val dyadic_size : Exact.Dyadic.t -> int
val rational_size : Exact.Rational.t -> int
