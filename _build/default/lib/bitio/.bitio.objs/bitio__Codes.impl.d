lib/bitio/codes.ml: Bignat Bit_reader Bit_writer Exact
