lib/bitio/bit_reader.ml: Char String
