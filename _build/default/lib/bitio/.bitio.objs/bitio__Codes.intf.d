lib/bitio/codes.mli: Bignat Bit_reader Bit_writer Exact
