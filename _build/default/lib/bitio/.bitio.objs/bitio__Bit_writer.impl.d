lib/bitio/bit_writer.ml: Buffer Char String
