lib/bitio/bit_writer.mli:
