(** Append-only bit sink.

    The paper's complexity measures are stated in bits (bandwidth = maximal
    bits over a single edge; total communication = bits over all edges), so
    every protocol message in this repository has a concrete, self-delimiting
    binary encoding produced through this writer.  Bits are packed MSB-first
    into bytes. *)

type t

val create : unit -> t

val bit : t -> bool -> unit

val bits : t -> int -> int -> unit
(** [bits w v width] appends the low [width] bits of [v], MSB first.
    Requires [0 <= width <= 62] and [v >= 0]. *)

val length : t -> int
(** Number of bits written so far. *)

val to_string : t -> string
(** Packed bytes; the final byte is zero-padded. *)

val to_bit_string : t -> string
(** Human-readable ['0']['1'] string, for tests and debugging. *)
