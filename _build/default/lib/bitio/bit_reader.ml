type t = { data : string; limit : int; mutable pos : int }

exception Truncated

let of_string ?length_bits s =
  let limit =
    match length_bits with
    | None -> 8 * String.length s
    | Some n ->
        if n < 0 || n > 8 * String.length s then
          invalid_arg "Bit_reader.of_string: bad length";
        n
  in
  { data = s; limit; pos = 0 }

let bit r =
  if r.pos >= r.limit then raise Truncated;
  let byte = Char.code r.data.[r.pos / 8] in
  let b = (byte lsr (7 - (r.pos mod 8))) land 1 = 1 in
  r.pos <- r.pos + 1;
  b

let bits r width =
  if width < 0 || width > 62 then invalid_arg "Bit_reader.bits: bad width";
  let v = ref 0 in
  for _ = 1 to width do
    v := (!v lsl 1) lor (if bit r then 1 else 0)
  done;
  !v

let pos r = r.pos
let remaining r = r.limit - r.pos
let at_end r = r.pos >= r.limit
