module B = Bignat
module Dy = Exact.Dyadic
module Q = Exact.Rational

let write_unary w n =
  if n < 0 then invalid_arg "Codes.write_unary: negative";
  for _ = 1 to n do
    Bit_writer.bit w false
  done;
  Bit_writer.bit w true

let read_unary r =
  let n = ref 0 in
  while not (Bit_reader.bit r) do
    incr n
  done;
  !n

let int_width n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let write_gamma w n =
  if n < 1 then invalid_arg "Codes.write_gamma: needs n >= 1";
  let k = int_width n - 1 in
  write_unary w k;
  Bit_writer.bits w (n - (1 lsl k)) k

let read_gamma r =
  let k = read_unary r in
  (1 lsl k) lor Bit_reader.bits r k

let write_gamma0 w n = write_gamma w (n + 1)
let read_gamma0 r = read_gamma r - 1

let write_delta w n =
  if n < 1 then invalid_arg "Codes.write_delta: needs n >= 1";
  let k = int_width n - 1 in
  write_gamma w (k + 1);
  Bit_writer.bits w (n - (1 lsl k)) k

let read_delta r =
  let k = read_gamma r - 1 in
  (1 lsl k) lor Bit_reader.bits r k

let write_bignat w x =
  let n = B.bit_length x in
  write_gamma0 w n;
  for i = n - 1 downto 0 do
    Bit_writer.bit w (B.testbit x i)
  done

let read_bignat r =
  let n = read_gamma0 r in
  let x = ref B.zero in
  for _ = 1 to n do
    x := B.shift_left !x 1;
    if Bit_reader.bit r then x := B.add !x B.one
  done;
  !x

let write_dyadic w d =
  Bit_writer.bit w (Dy.is_negative d);
  write_gamma0 w (Dy.exponent d);
  write_bignat w (Dy.mantissa d)

let read_dyadic r =
  let negative = Bit_reader.bit r in
  let e = read_gamma0 r in
  let m = read_bignat r in
  Dy.make ~negative m e

let write_rational w q =
  Bit_writer.bit w (Q.is_negative q);
  write_bignat w (Q.num q);
  write_bignat w (Q.den q)

let read_rational r =
  let negative = Bit_reader.bit r in
  let num = read_bignat r in
  let den = read_bignat r in
  Q.make ~negative num den

let gamma0_size n =
  let k = int_width (n + 1) - 1 in
  (2 * k) + 1

let bignat_size x =
  let n = B.bit_length x in
  gamma0_size n + n

let dyadic_size d = 1 + gamma0_size (Dy.exponent d) + bignat_size (Dy.mantissa d)
let rational_size q = 1 + bignat_size (Q.num q) + bignat_size (Q.den q)
