type t = { buf : Buffer.t; mutable acc : int; mutable used : int; mutable total : int }

let create () = { buf = Buffer.create 64; acc = 0; used = 0; total = 0 }

let bit w b =
  w.acc <- (w.acc lsl 1) lor (if b then 1 else 0);
  w.used <- w.used + 1;
  w.total <- w.total + 1;
  if w.used = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.used <- 0
  end

let bits w v width =
  if width < 0 || width > 62 then invalid_arg "Bit_writer.bits: bad width";
  if v < 0 then invalid_arg "Bit_writer.bits: negative value";
  for i = width - 1 downto 0 do
    bit w ((v lsr i) land 1 = 1)
  done

let length w = w.total

let to_string w =
  let s = Buffer.contents w.buf in
  if w.used = 0 then s
  else s ^ String.make 1 (Char.chr (w.acc lsl (8 - w.used)))

let to_bit_string w =
  let s = to_string w in
  String.init w.total (fun i ->
      let byte = Char.code s.[i / 8] in
      if (byte lsr (7 - (i mod 8))) land 1 = 1 then '1' else '0')
