(** Sequential reader over a packed bit string, the inverse of
    {!Bit_writer}. *)

type t

exception Truncated
(** Raised when reading past the end of the available bits. *)

val of_string : ?length_bits:int -> string -> t
(** [of_string s] reads bits MSB-first from [s].  [length_bits] bounds the
    number of valid bits (default: all bits of [s]). *)

val bit : t -> bool
val bits : t -> int -> int
(** [bits r width] reads [width <= 62] bits as a non-negative int. *)

val pos : t -> int
(** Bits consumed so far. *)

val remaining : t -> int
val at_end : t -> bool
