examples/lower_bound_tour.ml: Anonet Intervals List Printf
