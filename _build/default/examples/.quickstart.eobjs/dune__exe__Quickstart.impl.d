examples/quickstart.ml: Anonet Array Digraph Intervals List Printf Runtime
