examples/network_mapping.mli:
