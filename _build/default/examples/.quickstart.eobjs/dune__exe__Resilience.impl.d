examples/resilience.ml: Anonet Array Digraph Printf Prng Runtime
