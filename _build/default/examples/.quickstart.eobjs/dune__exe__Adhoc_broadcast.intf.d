examples/adhoc_broadcast.mli:
