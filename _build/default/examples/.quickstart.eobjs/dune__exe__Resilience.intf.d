examples/resilience.mli:
