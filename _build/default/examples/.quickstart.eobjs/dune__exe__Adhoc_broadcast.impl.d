examples/adhoc_broadcast.ml: Anonet Array Digraph Printf Prng Runtime
