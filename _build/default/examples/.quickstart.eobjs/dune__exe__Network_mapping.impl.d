examples/network_mapping.ml: Anonet Array Digraph Intervals List Printf Prng Runtime String
