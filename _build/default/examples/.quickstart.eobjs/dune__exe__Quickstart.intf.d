examples/quickstart.mli:
