(* A guided tour of the paper's three lower-bound constructions, executed.

     dune exec examples/lower_bound_tour.exe

   Each stop builds the witness family, runs the matching protocol, and
   prints the combinatorial quantity the proof is about. *)

let pf = Printf.printf

module LB = Anonet.Lower_bounds
module Is = Intervals.Iset

let () =
  pf "Stop 1 — Theorem 3.2: the comb G_n (Figure 5).\n";
  pf "Any correct broadcast protocol needs Omega(n) distinct symbols on\n";
  pf "G_n, so some symbols need Omega(log n) bits, so total communication\n";
  pf "is Omega(|E| log |E|).  Our protocol's symbol usage:\n\n";
  pf "  %6s %8s %10s %12s\n" "n" "|E|" "distinct" "total bits";
  List.iter
    (fun n ->
      let r = LB.comb_symbols n in
      pf "  %6d %8d %10d %12d\n" n r.LB.edges r.LB.distinct_symbols r.LB.total_bits)
    [ 8; 32; 128; 512 ];

  pf "\nStop 2 — Theorem 3.8: the skeleton tree (Figure 4).\n";
  pf "Across the 2^n ways of wiring the hang-off vertices into the\n";
  pf "collector w, a commodity-preserving protocol must deliver 2^n\n";
  pf "pairwise distinct quantities on the single edge w -> t, so that\n";
  pf "edge needs Omega(n) = Omega(|E|) bits of bandwidth:\n\n";
  pf "  %4s %10s %12s %14s\n" "n" "subsets" "distinct" "max bits seen";
  List.iter
    (fun n ->
      let r = LB.skeleton_quantities_pow2 ~n in
      pf "  %4d %10d %12d %14d\n" n r.LB.subsets r.LB.distinct_quantities
        r.LB.max_quantity_bits)
    [ 2; 4; 6; 8; 10 ];

  pf "\nStop 3 — Theorem 5.2: the pruned tree (Figure 6).\n";
  pf "In a full d-ary tree of height h some leaf's label needs h*log(d)\n";
  pf "bits.  Prune everything except that leaf's path, rewiring the cut\n";
  pf "edges to t: the executions along the path are indistinguishable, so\n";
  pf "the label survives — on a graph with only h+3 vertices:\n\n";
  List.iter
    (fun (h, d) ->
      let full_l, pruned_l = LB.full_vs_pruned_leaf_labels ~height:h ~degree:d in
      pf "  h=%d d=%d: full-tree label %s == pruned label %s: %b\n" h d
        (Is.to_string full_l) (Is.to_string pruned_l)
        (Is.equal full_l pruned_l))
    [ (2, 2); (3, 2); (3, 3) ];
  pf "\n  Label length on the pruned family (vertices stays h+3):\n";
  pf "  %8s %8s %10s %12s\n" "height" "degree" "vertices" "label bits";
  List.iter
    (fun (h, d) ->
      let r = LB.pruned_label ~height:h ~degree:d in
      pf "  %8d %8d %10d %12d\n" h d r.LB.vertices r.LB.label_bits)
    [ (4, 2); (16, 2); (64, 2); (16, 16) ];
  pf "\nThe exponential gap of the paper's conclusion, in the flesh:\n";
  pf "undirected anonymous networks label with O(log |V|) bits; directed\n";
  pf "ones provably cannot beat Omega(|V| log d_out).\n"
