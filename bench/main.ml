(* Experiment harness: regenerates the quantitative content of every result
   in the paper (DESIGN.md's E1..E10) and, under "timing", runs Bechamel
   wall-clock benchmarks of each protocol.

   Usage:
     dune exec bench/main.exe              # all experiment tables + timing
     dune exec bench/main.exe -- e4 e7     # selected tables
     dune exec bench/main.exe -- timing    # Bechamel micro-benchmarks only
     dune exec bench/main.exe -- campaign  # fault campaign, JSON on stdout
     dune exec bench/main.exe -- check     # model-checking sweep, JSON on stdout
     dune exec bench/main.exe -- throughput        # E15 multicore sweep, JSON
     dune exec bench/main.exe -- throughput:small  # CI-sized variant *)

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine
module LB = Anonet.Lower_bounds
module Is = Intervals.Iset

let pf = Printf.printf

let header id title =
  pf "\n================================================================\n";
  pf "%s  %s\n" id title;
  pf "================================================================\n"

let log2f x = log (float_of_int x) /. log 2.0

let outcome_str = function
  | E.Terminated -> "terminated"
  | E.Quiescent -> "quiescent"
  | E.Step_limit -> "step-limit"
  | E.Cancelled -> "cancelled"

(* Average float-valued measurements over seeds. *)
let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* {1 E1 — Theorem 3.1: grounded-tree broadcast upper bound} *)

let e1 () =
  header "E1" "Tree broadcast on random grounded trees (Thm 3.1: O(|E| log |E|))";
  pf "%8s %8s %10s %14s %8s %12s\n" "n" "|E|" "bits" "bits/ElogE" "bw" "bw-log2E";
  List.iter
    (fun n ->
      let samples =
        List.map
          (fun seed ->
            let g =
              F.random_grounded_tree (Prng.create (1000 + seed)) ~n ~t_edge_prob:0.3
            in
            let st = Anonet.broadcast_tree g in
            assert (st.outcome = E.Terminated);
            ( float_of_int (G.n_edges g),
              float_of_int st.total_bits,
              float_of_int st.max_edge_bits ))
          [ 1; 2; 3 ]
      in
      let e = avg (List.map (fun (a, _, _) -> a) samples) in
      let bits = avg (List.map (fun (_, b, _) -> b) samples) in
      let bw = avg (List.map (fun (_, _, c) -> c) samples) in
      pf "%8d %8.0f %10.0f %14.3f %8.1f %12.1f\n" n e bits
        (bits /. (e *. (log e /. log 2.0)))
        bw
        (bw -. (log e /. log 2.0)))
    [ 8; 16; 32; 64; 128; 256; 512; 1024; 2048 ]

(* {1 E2 — Theorem 3.2: comb lower bound} *)

let e2 () =
  header "E2" "Comb G_n alphabet growth (Thm 3.2: Omega(|E| log |E|))";
  pf "%8s %8s %10s %10s %14s %8s\n" "n" "|E|" "distinct" "bits" "bits/ElogE" "bw";
  List.iter
    (fun n ->
      let r = LB.comb_symbols n in
      pf "%8d %8d %10d %10d %14.3f %8d\n" n r.LB.edges r.LB.distinct_symbols
        r.LB.total_bits
        (float_of_int r.LB.total_bits
        /. (float_of_int r.LB.edges *. log2f r.LB.edges))
        r.LB.max_edge_bits)
    [ 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* {1 E3 — Section 3.3: DAG broadcast upper bound} *)

let e3 () =
  header "E3" "DAG broadcast on random DAGs (Sec 3.3: O(|E|) bandwidth, one msg/edge)";
  pf "%8s %8s %10s %10s %12s %12s\n" "n" "|E|" "msgs" "maxmsg" "maxmsg/E" "bits";
  List.iter
    (fun n ->
      let samples =
        List.map
          (fun seed ->
            let prng = Prng.create (2000 + seed) in
            let g = F.random_dag prng ~n ~extra_edges:(2 * n) ~t_edge_prob:0.2 in
            let r = Anonet.Dag_engine.run g in
            assert (r.outcome = E.Terminated);
            ( float_of_int (G.n_edges g),
              float_of_int r.deliveries,
              float_of_int r.max_message_bits,
              float_of_int r.total_bits ))
          [ 1; 2; 3 ]
      in
      let e = avg (List.map (fun (a, _, _, _) -> a) samples) in
      let msgs = avg (List.map (fun (_, b, _, _) -> b) samples) in
      let mm = avg (List.map (fun (_, _, c, _) -> c) samples) in
      let bits = avg (List.map (fun (_, _, _, d) -> d) samples) in
      pf "%8d %8.0f %10.0f %10.1f %12.4f %12.0f\n" n e msgs mm (mm /. e) bits)
    [ 8; 16; 32; 64; 128; 256; 512 ]

(* {1 E4 — Theorem 3.8: commodity-preserving lower bound} *)

let e4 () =
  header "E4" "Skeleton family, all subsets (Thm 3.8: 2^n distinct quantities)";
  pf "%4s %10s %12s %10s %10s | %12s %10s\n" "n" "subsets" "distinct" "minbits"
    "maxbits" "naive-dist" "naive-max";
  List.iter
    (fun n ->
      let p = LB.skeleton_quantities_pow2 ~n in
      let q = LB.skeleton_quantities_naive ~n in
      pf "%4d %10d %12d %10d %10d | %12d %10d\n" n p.LB.subsets
        p.LB.distinct_quantities p.LB.min_quantity_bits p.LB.max_quantity_bits
        q.LB.distinct_quantities q.LB.max_quantity_bits)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* {1 E5 — Theorems 4.2/4.3: general broadcast} *)

let e5 () =
  header "E5" "General broadcast on random digraphs (Thm 4.2: O(|E|^2 |V| log d))";
  pf "%8s %8s %8s %10s %12s %10s %14s\n" "n" "|E|" "|V|" "msgs" "bits" "maxmsg"
    "bits/E2VlogD";
  List.iter
    (fun n ->
      let samples =
        List.map
          (fun seed ->
            let prng = Prng.create (3000 + seed) in
            let g =
              F.random_digraph prng ~n ~extra_edges:n ~back_edges:(n / 4)
                ~t_edge_prob:0.2
            in
            let st = Anonet.broadcast_general g in
            assert (st.outcome = E.Terminated);
            let e = float_of_int (G.n_edges g) in
            let v = float_of_int (G.n_vertices g) in
            let logd = Float.max 1.0 (log2f (G.max_out_degree g)) in
            ( e,
              v,
              float_of_int st.deliveries,
              float_of_int st.total_bits,
              float_of_int st.max_message_bits,
              float_of_int st.total_bits /. (e *. e *. v *. logd) ))
          [ 1; 2; 3 ]
      in
      let pick f = avg (List.map f samples) in
      pf "%8d %8.0f %8.0f %10.0f %12.0f %10.0f %14.6f\n" n
        (pick (fun (e, _, _, _, _, _) -> e))
        (pick (fun (_, v, _, _, _, _) -> v))
        (pick (fun (_, _, m, _, _, _) -> m))
        (pick (fun (_, _, _, b, _, _) -> b))
        (pick (fun (_, _, _, _, mm, _) -> mm))
        (pick (fun (_, _, _, _, _, r) -> r)))
    [ 8; 16; 32; 64; 128; 256 ]

(* {1 E6 — Theorem 5.1: labeling} *)

let e6 () =
  header "E6" "Labeling on random digraphs (Thm 5.1: labels O(|V| log d) bits)";
  pf "%8s %8s %8s %12s %12s %14s\n" "n" "|E|" "|V|" "bits" "maxlabel" "maxlbl/VlogD";
  List.iter
    (fun n ->
      let samples =
        List.map
          (fun seed ->
            let prng = Prng.create (4000 + seed) in
            let g =
              F.random_digraph prng ~n ~extra_edges:n ~back_edges:(n / 4)
                ~t_edge_prob:0.2
            in
            let st, labels = Anonet.assign_labels g in
            assert (st.outcome = E.Terminated);
            let max_label =
              Array.fold_left (fun acc l -> max acc (Is.size_bits l)) 0 labels
            in
            let v = float_of_int (G.n_vertices g) in
            let logd = Float.max 1.0 (log2f (G.max_out_degree g)) in
            ( float_of_int (G.n_edges g),
              v,
              float_of_int st.total_bits,
              float_of_int max_label,
              float_of_int max_label /. (v *. logd) ))
          [ 1; 2; 3 ]
      in
      let pick f = avg (List.map f samples) in
      pf "%8d %8.0f %8.0f %12.0f %12.1f %14.4f\n" n
        (pick (fun (e, _, _, _, _) -> e))
        (pick (fun (_, v, _, _, _) -> v))
        (pick (fun (_, _, b, _, _) -> b))
        (pick (fun (_, _, _, ml, _) -> ml))
        (pick (fun (_, _, _, _, r) -> r)))
    [ 8; 16; 32; 64; 128; 256 ]

(* {1 E7 — Theorem 5.2: label lower bound} *)

let e7 () =
  header "E7" "Pruned trees (Thm 5.2: Omega(h log d)-bit labels on h+3 vertices)";
  pf "%8s %8s %10s %12s %18s\n" "height" "degree" "vertices" "labelbits"
    "bits/(h*log(d+1))";
  List.iter
    (fun (h, d) ->
      let r = LB.pruned_label ~height:h ~degree:d in
      pf "%8d %8d %10d %12d %18.3f\n" h d r.LB.vertices r.LB.label_bits
        (float_of_int r.LB.label_bits /. (float_of_int h *. log2f (d + 1))))
    [
      (2, 2); (4, 2); (8, 2); (16, 2); (32, 2); (64, 2);
      (8, 4); (8, 8); (8, 16); (8, 32);
      (16, 8); (32, 8);
    ];
  pf "\nPruning argument check (full-tree leaf label = pruned-tree leaf label):\n";
  List.iter
    (fun (h, d) ->
      let full_l, pruned_l = LB.full_vs_pruned_leaf_labels ~height:h ~degree:d in
      pf "  h=%d d=%d  equal=%b  label=%s\n" h d (Is.equal full_l pruned_l)
        (Is.to_string pruned_l))
    [ (2, 2); (3, 2); (4, 2); (2, 3); (3, 3); (2, 4) ]

(* {1 E8 — mapping} *)

let e8 () =
  header "E8" "Topology mapping on random digraphs (Sec 6 extension)";
  pf "%8s %8s %12s %12s %10s %12s\n" "n" "|E|" "label-bits" "map-bits" "overhead"
    "isomorphic";
  List.iter
    (fun n ->
      let prng = Prng.create (5000 + n) in
      let g =
        F.random_digraph prng ~n ~extra_edges:n ~back_edges:(n / 4) ~t_edge_prob:0.2
      in
      let lst, _ = Anonet.assign_labels g in
      let mst, map = Anonet.map_network g in
      let iso =
        match map with Ok m -> Anonet.Mapping.map_isomorphic m g | Error _ -> false
      in
      pf "%8d %8d %12d %12d %9.1fx %12b\n" n (G.n_edges g) lst.total_bits
        mst.total_bits
        (float_of_int mst.total_bits /. float_of_int (max 1 lst.total_bits))
        iso)
    [ 8; 16; 32; 64; 128 ]

(* {1 E9 — splitting-rule ablation} *)

let e9 () =
  header "E9" "Ablation: power-of-two vs naive x/d splitting (Sec 3.1)";
  pf "%8s %8s %12s %12s %10s %10s\n" "n" "|E|" "pow2-bits" "naive-bits" "pow2-bw"
    "naive-bw";
  List.iter
    (fun n ->
      let g = F.random_grounded_tree (Prng.create (6000 + n)) ~n ~t_edge_prob:0.3 in
      let a = Anonet.broadcast_tree g in
      let b = Anonet.broadcast_tree_naive g in
      pf "%8d %8d %12d %12d %10d %10d\n" n (G.n_edges g) a.total_bits b.total_bits
        a.max_edge_bits b.max_edge_bits)
    [ 16; 32; 64; 128; 256; 512; 1024 ]

(* {1 E10 — scheduler ablation} *)

let e10 () =
  header "E10" "Ablation: asynchronous schedules (correctness is schedule-free)";
  let prng = Prng.create 777 in
  let g =
    F.random_digraph prng ~n:100 ~extra_edges:100 ~back_edges:25 ~t_edge_prob:0.2
  in
  pf "network: |V|=%d |E|=%d\n" (G.n_vertices g) (G.n_edges g);
  pf "%16s %12s %10s %12s %10s\n" "scheduler" "outcome" "msgs" "bits" "maxmsg";
  List.iter
    (fun (name, sch) ->
      let st = Anonet.broadcast_general ~scheduler:sch g in
      pf "%16s %12s %10d %12d %10d\n" name (outcome_str st.outcome) st.deliveries
        st.total_bits st.max_message_bits)
    [
      ("fifo", Runtime.Scheduler.Fifo);
      ("lifo", Runtime.Scheduler.Lifo);
      ("random-1", Runtime.Scheduler.Random (Prng.create 1));
      ("random-2", Runtime.Scheduler.Random (Prng.create 2));
      ("random-3", Runtime.Scheduler.Random (Prng.create 3));
      ("starve-t", Runtime.Scheduler.Edge_priority (fun e -> -e));
      ("rush-t", Runtime.Scheduler.Edge_priority (fun e -> e));
    ]

(* {1 E11 — synchronous time complexity} *)

module Sync_general = Runtime.Sync_engine.Make (Anonet.General_broadcast)
module Sync_tree = Runtime.Sync_engine.Make (Anonet.Tree_broadcast)

let e11 () =
  header "E11" "Synchronous rounds (Sec 2 extension: time complexity)";
  pf "-- paths (rounds should be exactly depth = n+1) --\n";
  pf "%8s %8s %8s\n" "n" "rounds" "msgs";
  List.iter
    (fun n ->
      let r = Sync_tree.run (F.path n) in
      assert (r.base.outcome = E.Terminated);
      pf "%8d %8d %8d\n" n r.rounds r.base.deliveries)
    [ 4; 16; 64; 256 ];
  pf "\n-- random digraphs (general protocol; rounds ~ diameter-ish) --\n";
  pf "%8s %8s %8s %8s %10s\n" "n" "|V|" "|E|" "rounds" "msgs";
  List.iter
    (fun n ->
      let prng = Prng.create (7000 + n) in
      let g =
        F.random_digraph prng ~n ~extra_edges:n ~back_edges:(n / 4) ~t_edge_prob:0.2
      in
      let r = Sync_general.run g in
      assert (r.base.outcome = E.Terminated);
      pf "%8d %8d %8d %8d %10d\n" n (G.n_vertices g) (G.n_edges g) r.rounds
        r.base.deliveries)
    [ 16; 32; 64; 128; 256 ]

(* {1 E12 — channel-fault ablation} *)

let e12 () =
  header "E12" "Ablation: channel faults (safety under drops and duplication)";
  let trials = 60 in
  let tally name run =
    let term_ok = ref 0 and term_bad = ref 0 and quiescent = ref 0 in
    for seed = 1 to trials do
      let prng = Prng.create (8000 + seed) in
      let g =
        F.random_digraph prng ~n:20 ~extra_edges:10 ~back_edges:5 ~t_edge_prob:0.25
      in
      let outcome', visited = run seed g in
      match outcome' with
      | E.Terminated -> if visited then incr term_ok else incr term_bad
      | E.Quiescent -> incr quiescent
      | E.Step_limit | E.Cancelled -> ()
    done;
    pf "%34s %10d %12d %12d\n" name !term_ok !term_bad !quiescent
  in
  pf "%34s %10s %12s %12s   (over %d random digraphs)\n" "protocol+fault" "term-ok"
    "FALSE-term" "no-term" trials;
  let visited_of (r : _ E.report) = Array.for_all (fun v -> v) r.visited in
  tally "general, drop 15%" (fun seed g ->
      let faults = Runtime.Faults.create ~drop:0.15 ~seed () in
      let r = Anonet.General_engine.run ~faults g in
      (r.outcome, visited_of r));
  tally "general, duplicate 30%" (fun seed g ->
      let faults = Runtime.Faults.create ~duplicate:0.3 ~seed () in
      let r = Anonet.General_engine.run ~faults g in
      (r.outcome, visited_of r));
  tally "mapping, duplicate 30%" (fun seed g ->
      let faults = Runtime.Faults.create ~duplicate:0.3 ~seed () in
      let r = Anonet.Mapping_engine.run ~faults g in
      (r.outcome, visited_of r));
  tally "tree(on its trees), duplicate 30%" (fun seed _g ->
      let prng = Prng.create (9000 + seed) in
      let g = F.random_grounded_tree prng ~n:20 ~t_edge_prob:0.3 in
      let faults = Runtime.Faults.create ~duplicate:0.3 ~seed () in
      let r = Anonet.Tree_engine.run ~faults g in
      (r.outcome, visited_of r));
  pf "\nReading: FALSE-term > 0 under duplication shows the exactly-once\n";
  pf "channel assumption is load-bearing for every protocol except mapping,\n";
  pf "whose per-edge adjacency facts gate termination; drops only ever\n";
  pf "convert termination into no-termination (safety preserved).\n"

(* {1 E13 — the exponential label gap (conclusion)} *)

let e13 () =
  header "E13" "Label-length gap: undirected O(log|V|) vs directed Omega(|V| log d)";
  pf "%8s %18s %16s %8s\n" "|V|" "undirected-bits" "directed-bits" "ratio";
  List.iter
    (fun v ->
      let n = v - 2 in
      let g = F.bidirected_random (Prng.create (77 + n)) ~n ~extra_edges:n in
      let r = Anonet.Undirected_engine.run g in
      assert (r.outcome = E.Terminated);
      let und =
        List.fold_left
          (fun acc w ->
            match Anonet.Undirected_labeling.vertex_id r.states.(w) with
            | Some i -> max acc (Bitio.Codes.gamma0_size i)
            | None -> acc)
          0 (G.internal_vertices g)
      in
      let dir = (LB.pruned_label ~height:(v - 3) ~degree:2).LB.label_bits in
      pf "%8d %18d %16d %8.1f\n" v und dir (float_of_int dir /. float_of_int und))
    [ 8; 16; 32; 64; 128; 256 ];
  pf "\nBoth columns label a |V|-vertex anonymous network; the undirected\n";
  pf "token walk has feedback (it can reply over the edge a message came\n";
  pf "from), the directed pruned family cannot — the paper's exponential\n";
  pf "gap (conclusion, Section 6) in one table.\n"

(* {1 Power-law fits (printed after the sweeps)} *)

let fits () =
  header "FITS" "Measured power-law exponents vs the paper's bounds";
  let tree_pts =
    List.map
      (fun n ->
        let g = F.random_grounded_tree (Prng.create (1000 + n)) ~n ~t_edge_prob:0.3 in
        let st = Anonet.broadcast_tree g in
        (float_of_int (G.n_edges g), float_of_int st.total_bits))
      [ 16; 32; 64; 128; 256; 512; 1024; 2048 ]
  in
  let f = Metrics.loglog_fit tree_pts in
  pf "E1 tree total bits ~ |E|^k      : k = %.3f (bound: 1 + o(1), R2=%.3f)\n"
    f.Metrics.slope f.Metrics.r2;
  let skel_pts =
    List.map
      (fun n ->
        let r = LB.skeleton_quantities_pow2 ~n in
        (float_of_int n, float_of_int r.LB.max_quantity_bits))
      [ 2; 4; 6; 8; 10 ]
  in
  let f = Metrics.linear_fit skel_pts in
  pf "E4 skeleton max bits ~ a*n + b  : a = %.3f (bound: Theta(n), R2=%.3f)\n"
    f.Metrics.slope f.Metrics.r2;
  let label_pts =
    List.map
      (fun h ->
        let r = LB.pruned_label ~height:h ~degree:2 in
        (float_of_int h, float_of_int r.LB.label_bits))
      [ 4; 8; 16; 32; 64 ]
  in
  let f = Metrics.linear_fit label_pts in
  pf "E7 label bits ~ a*h + b (d=2)   : a = %.3f (bound: Theta(h log d), R2=%.3f)\n"
    f.Metrics.slope f.Metrics.r2;
  let general_pts =
    List.map
      (fun n ->
        let prng = Prng.create (3000 + n) in
        let g =
          F.random_digraph prng ~n ~extra_edges:n ~back_edges:(n / 4)
            ~t_edge_prob:0.2
        in
        let st = Anonet.broadcast_general g in
        (float_of_int (G.n_edges g), float_of_int st.total_bits))
      [ 16; 32; 64; 128; 256 ]
  in
  let f = Metrics.loglog_fit general_pts in
  pf "E5 general total bits ~ |E|^k   : k = %.3f (bound: <= 3 + o(1), R2=%.3f)\n"
    f.Metrics.slope f.Metrics.r2

(* {1 Bechamel timing benchmarks} *)

let timing () =
  header "TIMING" "Bechamel wall-clock benchmarks (one Test.make per experiment)";
  let open Bechamel in
  let open Toolkit in
  let tree_g = F.comb 256 in
  let dag_g = F.grid_dag ~rows:12 ~cols:12 in
  let prng = Prng.create 99 in
  let gen_g =
    F.random_digraph prng ~n:60 ~extra_edges:60 ~back_edges:15 ~t_edge_prob:0.2
  in
  let skel_g = F.skeleton ~n:8 ~subset:(Array.make 8 true) in
  let pruned_g = F.pruned_tree ~height:32 ~degree:4 in
  let tests =
    Test.make_grouped ~name:"anonet" ~fmt:"%s %s"
      [
        Test.make ~name:"e1-tree-broadcast-comb256"
          (Staged.stage (fun () -> ignore (Anonet.broadcast_tree tree_g)));
        Test.make ~name:"e2-comb-symbols-128"
          (Staged.stage (fun () -> ignore (LB.comb_symbols 128)));
        Test.make ~name:"e3-dag-broadcast-grid12"
          (Staged.stage (fun () -> ignore (Anonet.broadcast_dag dag_g)));
        Test.make ~name:"e4-skeleton-n8"
          (Staged.stage (fun () -> ignore (Anonet.Dag_engine.run skel_g)));
        Test.make ~name:"e5-general-broadcast-n60"
          (Staged.stage (fun () -> ignore (Anonet.broadcast_general gen_g)));
        Test.make ~name:"e6-labeling-n60"
          (Staged.stage (fun () -> ignore (Anonet.assign_labels gen_g)));
        Test.make ~name:"e7-pruned-labeling-h32d4"
          (Staged.stage (fun () -> ignore (Anonet.Labeling_engine.run pruned_g)));
        Test.make ~name:"e8-mapping-n60"
          (Staged.stage (fun () -> ignore (Anonet.map_network gen_g)));
        Test.make ~name:"e9-naive-tree-comb256"
          (Staged.stage (fun () -> ignore (Anonet.broadcast_tree_naive tree_g)));
        Test.make ~name:"e10-general-lifo-n60"
          (Staged.stage (fun () ->
               ignore
                 (Anonet.broadcast_general ~scheduler:Runtime.Scheduler.Lifo gen_g)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  pf "%45s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, est) -> pf "%45s %16.1f\n" name est)
    (List.sort compare !rows)

(* {1 Fault campaign (JSON)} *)

(* Machine-readable counterpart of E12: each broadcast protocol, bare and
   behind Redundant(3), swept on its own graph family over a full drop x
   duplicate x delay x corruption grid, 20 seeds per cell.  Prints a JSON
   array (one Campaign result per family) on stdout — no table header, so
   the output can be piped straight into a JSON consumer. *)
let campaign () =
  let module C = Runtime.Campaign in
  let module K3 = struct
    let k = 3
  end in
  let module Tree_r3 = Anonet.Redundant.Make (K3) (Anonet.Tree_broadcast) in
  let module Dag_r3 = Anonet.Redundant.Make (K3) (Anonet.Dag_broadcast_pow2) in
  let module General_r3 = Anonet.Redundant.Make (K3) (Anonet.General_broadcast) in
  let module Tree_runner = C.Of_protocol (Anonet.Tree_broadcast) in
  let module Dag_runner = C.Of_protocol (Anonet.Dag_broadcast_pow2) in
  let module General_runner = C.Of_protocol (Anonet.General_broadcast) in
  let module Tree_r3_runner = C.Of_protocol (Tree_r3) in
  let module Dag_r3_runner = C.Of_protocol (Dag_r3) in
  let module General_r3_runner = C.Of_protocol (General_r3) in
  let grid =
    C.grid ~drops:[ 0.0; 0.05; 0.15 ] ~duplicates:[ 0.0; 0.2 ]
      ~max_delays:[ 0; 2 ] ~corrupts:[ 0.0; 0.02 ] ()
  in
  let seeds = List.init 20 (fun i -> i + 1) in
  let sweeps =
    [
      ( [ Tree_runner.runner (); Tree_r3_runner.runner () ],
        {
          C.g_name = "random-tree-16";
          build =
            (fun ~seed ->
              F.random_grounded_tree (Prng.create seed) ~n:16 ~t_edge_prob:0.3);
        } );
      ( [ Dag_runner.runner (); Dag_r3_runner.runner () ],
        {
          C.g_name = "random-dag-16";
          build =
            (fun ~seed ->
              F.random_dag (Prng.create seed) ~n:16 ~extra_edges:16
                ~t_edge_prob:0.25);
        } );
      ( [ General_runner.runner (); General_r3_runner.runner () ],
        {
          C.g_name = "random-digraph-16";
          build =
            (fun ~seed ->
              F.random_digraph (Prng.create seed) ~n:16 ~extra_edges:10
                ~back_edges:4 ~t_edge_prob:0.25);
        } );
    ]
  in
  pf "[";
  List.iteri
    (fun i (runners, graph) ->
      let res =
        C.run ~step_limit:300_000 ~runners ~graphs:[ graph ] ~grid ~seeds ()
      in
      if i > 0 then pf ",";
      pf "\n%s" (C.to_json res))
    sweeps;
  pf "\n]\n"

(* {1 Model-checking benchmark (JSON)} *)

(* Machine-readable counterpart of [anonet check] (E14): exhaustively
   explores every suite case and prints one JSON object per case — states,
   transitions, the three pruning counters, pruned fraction, wall time and
   any violations — as a JSON array on stdout. *)
let check () =
  let module X = Runtime.Explore in
  let module J = Runtime.Json in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (c : Anonet.Check_suite.case) ->
      let t0 = Sys.time () in
      let r = c.c_explore () in
      let dt = Sys.time () -. t0 in
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n{\"protocol\":";
      J.buf_string b c.c_protocol;
      Buffer.add_string b ",\"family\":";
      J.buf_string b c.c_family;
      Printf.bprintf b
        ",\"edges\":%d,\"states\":%d,\"transitions\":%d,\"pruned_sleep\":%d,\"pruned_memo\":%d,\"pruned_dup\":%d,\"pruned_fraction\":%.4f,\"peak_depth\":%d,\"max_in_flight\":%d,\"truncated\":%b,\"cpu_s\":%.3f,\"violations\":"
        c.c_edges r.stats.states r.stats.transitions r.stats.pruned_sleep
        r.stats.pruned_memo r.stats.pruned_dup
        (X.pruned_fraction r.stats)
        r.stats.peak_depth r.stats.max_in_flight r.stats.truncated dt;
      J.buf_list b
        (fun b (v : X.violation) ->
          Buffer.add_string b "{\"kind\":";
          J.buf_string b (X.describe_kind v.kind);
          Buffer.add_string b ",\"schedule\":";
          J.buf_int_list b v.schedule;
          Buffer.add_string b "}")
        r.violations;
      Buffer.add_string b "}")
    (Anonet.Check_suite.cases ());
  Buffer.add_string b "\n]\n";
  print_string (Buffer.contents b)

(* {1 E15 — multicore throughput (JSON)} *)

(* Wall-clock sweep of the sharded engine over domain counts on one large
   layered digraph, flooding (1-bit messages, one delivery per edge) so the
   measurement is engine overhead rather than protocol arithmetic.  Emits a
   JSON object with the median/p90 wall time, deliveries/sec and the speedup
   against 1 domain, plus what the hardware actually offers — on a
   single-core host the speedup is honestly ~1.0 and the numbers mostly
   price the sharding overhead. *)
let throughput ~small () =
  let target_edges = if small then 30_000 else 120_000 in
  let repeats = if small then 3 else 5 in
  let g = F.random_layered_large (Prng.create 42) ~target_edges in
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  let series =
    List.map
      (fun domains ->
        let runs =
          List.init repeats (fun _ ->
              let t0 = Unix.gettimeofday () in
              let r = Pn.run ~domains g in
              assert (r.E.outcome = E.Quiescent);
              (Unix.gettimeofday () -. t0, r.E.deliveries))
        in
        let med, p90 =
          match Metrics.percentiles [ 50.0; 90.0 ] (List.map fst runs) with
          | [ m; p ] -> (m, p)
          | _ -> assert false
        in
        (domains, snd (List.hd runs), med, p90))
      [ 1; 2; 4 ]
  in
  let base_med =
    match series with (_, _, m, _) :: _ -> m | [] -> assert false
  in
  pf "{\n";
  pf "  \"experiment\": \"E15-throughput\",\n";
  pf "  \"protocol\": \"flood\",\n";
  pf "  \"graph\": {\"vertices\": %d, \"edges\": %d},\n" (G.n_vertices g)
    (G.n_edges g);
  pf "  \"repeats\": %d,\n" repeats;
  pf "  \"recommended_domain_count\": %d,\n" (Domain.recommended_domain_count ());
  pf "  \"series\": [";
  List.iteri
    (fun i (domains, deliveries, med, p90) ->
      if i > 0 then pf ",";
      pf
        "\n\
        \    {\"domains\": %d, \"deliveries\": %d, \"median_s\": %.6f, \
         \"p90_s\": %.6f, \"deliveries_per_s\": %.0f, \"speedup_vs_1\": %.3f}"
        domains deliveries med p90
        (float_of_int deliveries /. med)
        (base_med /. med))
    series;
  pf "\n  ]\n}\n"

(* {1 E16 — instrumentation overhead + reconciliation (JSON)} *)

(* Prices the [?obs] hook on the E15 flood workload: the same run bare and
   instrumented (metrics registry + timeline, sampling every 1024
   deliveries), overhead as a fraction of the bare median, and exact
   reconciliation of the Obs counters against the engine report (the flood
   under Fifo is deterministic, so [repeats] instrumented runs accumulate
   exactly [repeats * per-run] in each counter).  A 2-domain sharded
   section checks the per-shard counters sum to the report's deliveries,
   and the emitted Chrome trace is round-tripped through the validating
   JSON parser. *)
let obs_bench ~small () =
  let target_edges = if small then 30_000 else 120_000 in
  let repeats = if small then 5 else 7 in
  let g = F.random_layered_large (Prng.create 42) ~target_edges in
  let module En = Runtime.Engine.Make (Anonet.Flood) in
  let o = Obs.create ~sample_every:1024 () in
  (* Warm up, then interleave bare/instrumented pairs so machine drift
     lands on both sides of the comparison. *)
  ignore (En.run g);
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let pairs =
    List.init repeats (fun _ ->
        (timed (fun () -> En.run g), timed (fun () -> En.run ~obs:o g)))
  in
  let bare_med = Metrics.median (List.map (fun ((t, _), _) -> t) pairs) in
  let inst_med = Metrics.median (List.map (fun (_, (t, _)) -> t) pairs) in
  let (_, (bare_r : _ E.report)), (_, (inst_r : _ E.report)) = List.hd pairs in
  let snap = Obs.Registry.snapshot o.Obs.registry in
  let find name = Option.value ~default:min_int (Obs.Registry.find snap name) in
  let reconcile_deliveries =
    find "engine.deliveries" = repeats * inst_r.E.deliveries
  in
  let reconcile_bits =
    find "engine.total_bits" = repeats * inst_r.E.total_bits
  in
  let trace_valid = Obs.Json.valid (Obs.Export.chrome_trace o.Obs.timeline) in
  let op = Obs.create ~sample_every:1024 () in
  let module Pn = Par.Engine.Make (Anonet.Flood) in
  let par_r = Pn.run ~domains:2 ~obs:op g in
  let par_snap = Obs.Registry.snapshot op.Obs.registry in
  let pfind name =
    Option.value ~default:min_int (Obs.Registry.find par_snap name)
  in
  let reconcile_par =
    pfind "par.deliveries" = par_r.E.deliveries
    && pfind "par.shard0.deliveries" + pfind "par.shard1.deliveries"
       = par_r.E.deliveries
  in
  pf "{\n";
  pf "  \"experiment\": \"E16-obs-overhead\",\n";
  pf "  \"protocol\": \"flood\",\n";
  pf "  \"graph\": {\"vertices\": %d, \"edges\": %d},\n" (G.n_vertices g)
    (G.n_edges g);
  pf "  \"repeats\": %d,\n" repeats;
  pf "  \"sample_every\": 1024,\n";
  pf "  \"deliveries\": %d,\n" bare_r.E.deliveries;
  pf "  \"bare_median_s\": %.6f,\n" bare_med;
  pf "  \"instrumented_median_s\": %.6f,\n" inst_med;
  pf "  \"overhead_fraction\": %.4f,\n" ((inst_med -. bare_med) /. bare_med);
  pf "  \"timeline_events\": %d,\n" (Obs.Timeline.recorded o.Obs.timeline);
  pf
    "  \"reconcile\": {\"deliveries\": %b, \"total_bits\": %b, \
     \"par_deliveries\": %b},\n"
    reconcile_deliveries reconcile_bits reconcile_par;
  pf "  \"trace_json_valid\": %b,\n" trace_valid;
  pf "  \"metrics\": %s\n" (Obs.Registry.to_json snap);
  pf "}\n"

(* {1 E21 — causal-lineage overhead + parity (JSON)} *)

(* Prices the [?lineage] hook on the E15 flood workload, for both the
   classic and the flat engine: interleaved bare/recorded run pairs,
   medians, overhead as a fraction of the bare median, gated at <= 10%.
   Sampling every 256 deliveries keeps the store (and its clock reads)
   off the hot path while the per-delivery causal aggregates stay exact:
   every instrumented run must reconcile nodes = deliveries, and because
   the two engines execute the identical delivery schedule, their
   recorders must agree on every aggregate — node count, causal depth,
   width, the whole depth histogram and the stored-sample count.  The
   recorder's JSON round-trips through the validating parser. *)
let lineage_bench ~small () =
  let target_edges = if small then 30_000 else 120_000 in
  let repeats = if small then 15 else 9 in
  let g = F.random_layered_large (Prng.create 42) ~target_edges in
  let module En = Runtime.Engine.Make (Anonet.Flood) in
  let module Fn = Flatcore.Engine.Make (Anonet.Flood) in
  let csr = Flatcore.Csr.of_digraph g in
  let mk () = Obs.Lineage.create ~sample_every:256 () in
  (* Warm-up, then interleave so machine drift lands on both sides. *)
  ignore (En.run g);
  ignore (Fn.run_csr csr);
  (* Each sample times a batch of back-to-back runs: single runs are a
     couple of milliseconds here, where page-fault and allocator
     transients right after a major collection dominate the reading. *)
  let batch = 4 in
  let timed f =
    (* Level the GC between variants: without this, the instrumented
       run pays the collection debt of the allocations that preceded
       it (recorder + bind arrays) and reads a few percent slow. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r = ref (f ()) in
    for _ = 2 to batch do
      r := f ()
    done;
    ((Unix.gettimeofday () -. t0) /. float_of_int batch, !r)
  in
  let last_classic = ref (mk ()) and last_flat = ref (mk ()) in
  (* Alternate which side of each pair runs first: allocator state after
     a run (retained journals, freshly unmapped pages) systematically
     favors one ordering, and flipping it per repeat cancels that bias
     in the median. *)
  let quads =
    List.init repeats (fun i ->
        let flip = i land 1 = 1 in
        let classic_bare () = timed (fun () -> En.run g) in
        let classic_lin () =
          let r =
            timed (fun () ->
                let lc = mk () in
                let r = En.run ~lineage:lc g in
                last_classic := lc;
                r)
          in
          (* Realize outside the timed region — the CLI does the same
             between run and export — so the retained journal does not
             hold the engine's ring across later timed runs. *)
          ignore (Obs.Lineage.nodes !last_classic);
          r
        in
        let flat_bare () = timed (fun () -> Fn.run_csr csr) in
        let flat_lin () =
          let r =
            timed (fun () ->
                let lf = mk () in
                let r = Fn.run_csr ~lineage:lf csr in
                last_flat := lf;
                r)
          in
          ignore (Obs.Lineage.nodes !last_flat);
          r
        in
        let pair bare lin =
          if flip then
            let l = lin () in
            let b = bare () in
            (b, l)
          else
            let b = bare () in
            let l = lin () in
            (b, l)
        in
        let cb, cl = pair classic_bare classic_lin in
        let fb, fl = pair flat_bare flat_lin in
        (cb, cl, fb, fl))
  in
  let med pick = Metrics.median (List.map (fun q -> fst (pick q)) quads) in
  let classic_bare = med (fun (cb, _, _, _) -> cb) in
  let classic_lin = med (fun (_, cl, _, _) -> cl) in
  let flat_bare = med (fun (_, _, fb, _) -> fb) in
  let flat_lin = med (fun (_, _, _, fl) -> fl) in
  (* Overhead is the median of per-pair ratios: each bare/instrumented
     pair ran back to back, so slow machine drift cancels inside a pair
     instead of skewing one side's median. *)
  let med_over pick_bare pick_lin =
    Metrics.median
      (List.map
         (fun q -> (fst (pick_lin q) -. fst (pick_bare q)) /. fst (pick_bare q))
         quads)
  in
  let classic_over =
    med_over (fun (cb, _, _, _) -> cb) (fun (_, cl, _, _) -> cl)
  in
  let flat_over =
    med_over (fun (_, _, fb, _) -> fb) (fun (_, _, _, fl) -> fl)
  in
  let (_, (classic_r : _ E.report)), (_, (flat_r : _ E.report)) =
    match List.hd quads with (_, cl, _, fl) -> (cl, fl)
  in
  let lc = !last_classic and lf = !last_flat in
  let module L = Obs.Lineage in
  let reconcile =
    L.nodes lc = classic_r.E.deliveries && L.nodes lf = flat_r.E.deliveries
  in
  let parity =
    L.nodes lc = L.nodes lf
    && L.max_depth lc = L.max_depth lf
    && L.width lc = L.width lf
    && L.depth_histogram lc = L.depth_histogram lf
    && L.stored lc = L.stored lf
  in
  let json_valid = Obs.Json.valid (L.to_json lc) in
  let pass =
    classic_over <= 0.10 && flat_over <= 0.10 && reconcile && parity
    && json_valid
  in
  pf "{\n";
  pf "  \"experiment\": \"E21-lineage-overhead\",\n";
  pf "  \"protocol\": \"flood\",\n";
  pf "  \"graph\": {\"vertices\": %d, \"edges\": %d},\n" (G.n_vertices g)
    (G.n_edges g);
  pf "  \"repeats\": %d,\n" repeats;
  pf "  \"sample_every\": 256,\n";
  pf "  \"deliveries\": %d,\n" classic_r.E.deliveries;
  pf
    "  \"lineage\": {\"nodes\": %d, \"max_depth\": %d, \"width\": %d, \
     \"stored\": %d, \"dropped\": %d},\n"
    (L.nodes lc) (L.max_depth lc) (L.width lc) (L.stored lc) (L.dropped lc);
  pf
    "  \"classic\": {\"bare_median_s\": %.6f, \"lineage_median_s\": %.6f, \
     \"overhead_fraction\": %.4f},\n"
    classic_bare classic_lin classic_over;
  pf
    "  \"flat\": {\"bare_median_s\": %.6f, \"lineage_median_s\": %.6f, \
     \"overhead_fraction\": %.4f},\n"
    flat_bare flat_lin flat_over;
  pf "  \"reconcile_nodes_eq_deliveries\": %b,\n" reconcile;
  pf "  \"classic_flat_parity\": %b,\n" parity;
  pf "  \"json_valid\": %b,\n" json_valid;
  pf "  \"pass\": %b\n" pass;
  pf "}\n"

(* {1 E17 — chaos search + crash recovery (JSON)} *)

(* Three claims, one experiment.  (1) Soundness under churn: a chaos search
   over >= 500 seeded joint edge-kill x vertex-crash fault sets finds zero
   false terminations for supervised Redundant(3) general broadcast.
   (2) The machinery works: the negative control (bare flood under
   crash-restart amnesia) yields shrunk witnesses of <= 4 atoms, every one
   replay-confirmed byte-for-byte through Scheduler.Replay.  (3) The
   supervisor is cheap when nothing fails: on a fault-free run it adds
   zero deliveries (retransmission never fires) and its counters reconcile
   exactly with the Obs registry. *)
let chaos_bench ~small () =
  let module Ch = Runtime.Chaos in
  let budget = if small then 30 else 170 in
  let graphs = Anonet.Resilient.chaos_graphs () in
  (* (1) The supervised search. *)
  let sup_cfg =
    Ch.config ~budget ~seed:11 ~supervisor:Runtime.Supervisor.default ()
  in
  let sup_runner =
    Anonet.Resilient.chaos_runner ~k:3 (module Anonet.General_broadcast)
  in
  let t0 = Unix.gettimeofday () in
  let sup = Ch.run sup_cfg ~runners:[ sup_runner ] ~graphs in
  let sup_s = Unix.gettimeofday () -. t0 in
  (* (2) The negative control, amnesia only, no edge kills. *)
  let neg_cfg =
    Ch.config ~budget:(if small then 20 else 60) ~seed:11
      ~recoveries:[ Runtime.Vfaults.Amnesia ] ~p_edge:0.0 ()
  in
  let neg_runner = Anonet.Resilient.chaos_runner ~k:1 (module Anonet.Flood) in
  let neg = Ch.run neg_cfg ~runners:[ neg_runner ] ~graphs in
  let neg_min_atoms =
    List.fold_left
      (fun m (w : Ch.witness) -> min m (List.length w.Ch.w_faults))
      max_int neg.Ch.witnesses
  in
  let neg_confirmed =
    List.for_all
      (fun (w : Ch.witness) ->
        let gc =
          List.find (fun gc -> gc.Runtime.Campaign.g_name = w.Ch.w_graph) graphs
        in
        Ch.confirms w (Ch.replay neg_cfg neg_runner gc w))
      neg.Ch.witnesses
  in
  (* (3) Fault-free supervisor overhead + Obs reconciliation. *)
  let g =
    F.random_digraph (Prng.create 42) ~n:48 ~extra_edges:40 ~back_edges:12
      ~t_edge_prob:0.25
  in
  let module En = Runtime.Engine.Make (Anonet.General_broadcast) in
  ignore (En.run g);
  let repeats = if small then 5 else 7 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let o = Obs.create ~sample_every:1024 () in
  let pairs =
    List.init repeats (fun _ ->
        ( timed (fun () -> En.run g),
          timed (fun () -> En.run ~supervisor:Runtime.Supervisor.default ~obs:o g)
        ))
  in
  let bare_med = Metrics.median (List.map (fun ((t, _), _) -> t) pairs) in
  let sup_med = Metrics.median (List.map (fun (_, (t, _)) -> t) pairs) in
  let (_, (bare_r : _ E.report)), (_, (sup_r : _ E.report)) = List.hd pairs in
  let snap = Obs.Registry.snapshot o.Obs.registry in
  let find name = Option.value ~default:min_int (Obs.Registry.find snap name) in
  let reconcile =
    find "engine.deliveries" = repeats * sup_r.E.deliveries
    && find "engine.checkpoints" = repeats * sup_r.E.vfault_stats.E.checkpoints
    && find "engine.replayed" = repeats * sup_r.E.vfault_stats.E.replayed
    && find "engine.crashes" = 0
  in
  let delivery_overhead =
    float_of_int (sup_r.E.deliveries - bare_r.E.deliveries)
    /. float_of_int bare_r.E.deliveries
  in
  pf "{\n";
  pf "  \"experiment\": \"E17-chaos-recovery\",\n";
  pf "  \"supervised\": {\"runner\": %S, \"trials\": %d, \"hits\": %d, \
      \"unsound\": %d, \"starved\": %d, \"seconds\": %.2f},\n"
    sup_runner.Ch.r_name sup.Ch.trials_run sup.Ch.hits sup.Ch.unsound
    sup.Ch.starved sup_s;
  pf "  \"negative\": {\"runner\": %S, \"trials\": %d, \"witnesses\": %d, \
      \"min_atoms\": %d, \"all_replay_confirmed\": %b},\n"
    neg_runner.Ch.r_name neg.Ch.trials_run
    (List.length neg.Ch.witnesses)
    neg_min_atoms neg_confirmed;
  pf "  \"overhead\": {\"graph\": {\"vertices\": %d, \"edges\": %d}, \
      \"repeats\": %d, \"bare_deliveries\": %d, \"supervised_deliveries\": \
      %d, \"delivery_overhead_fraction\": %.4f, \"bare_median_s\": %.6f, \
      \"supervised_median_s\": %.6f, \"checkpoints\": %d, \"replayed\": %d},\n"
    (G.n_vertices g) (G.n_edges g) repeats bare_r.E.deliveries
    sup_r.E.deliveries delivery_overhead bare_med sup_med
    sup_r.E.vfault_stats.E.checkpoints sup_r.E.vfault_stats.E.replayed;
  pf "  \"reconcile_obs\": %b,\n" reconcile;
  pf "  \"pass\": %b\n"
    (sup.Ch.unsound = 0
    && sup.Ch.trials_run >= (if small then 90 else 500)
    && neg.Ch.witnesses <> [] && neg_min_atoms <= 4 && neg_confirmed
    && delivery_overhead <= 0.10 && reconcile);
  pf "}\n"

(* {1 E18 — dynamic-network resilience: churn rate x T sweep (JSON)} *)

(* Four claims.  (1) Resilience: supervised general broadcast swept over a
   churn-rate x T-interval grid stays sound in every cell (a terminated run
   covers everything) and heals outages under retransmission.  (2) The
   T-interval contract is meaningful: the same adversary clamped by
   [Churn.constrain] records zero window violations by construction, while
   [with_contract] accounting shows the raw adversary breaching small
   windows.  (3) Churn-free runs pay nothing: arming [Churn.none] changes
   no counter.  (4) The amnesiac negative control: stateless flooding
   quiesces while a cycle edge is absent and livelocks the moment a churn
   [Add] splices it in — and a small all-churn chaos search finds that
   livelock and replays it byte-for-byte. *)
let churn_bench ~small () =
  let module Ch = Runtime.Chaos in
  let module C = Runtime.Churn in
  let module En = Runtime.Engine.Make (Anonet.General_broadcast) in
  (* The hardened stack of E17 / chaos_churn: the supervisor is a blind
     repeater, so its duplicates need Redundant(3)'s wire-encoding dedup —
     bare conservation flow would be double-counted. *)
  let (module R3 : Runtime.Protocol_intf.PROTOCOL) =
    Anonet.Resilient.redundant ~k:3 (module Anonet.General_broadcast)
  in
  let module En3 = Runtime.Engine.Make (R3) in
  let rates = [ 0.05; 0.15; 0.3 ] in
  let ts = [ 2; 4; 8 ] in
  let seeds = List.init (if small then 3 else 8) (fun k -> k + 1) in
  let t0 = Unix.gettimeofday () in
  (* (1) + (2) the sweep. *)
  let cells =
    List.concat_map
      (fun rate ->
        List.map
          (fun t ->
            let stats =
              List.map
                (fun seed ->
                  let g =
                    F.random_digraph (Prng.create seed) ~n:24 ~extra_edges:16
                      ~back_edges:5 ~t_edge_prob:0.25
                  in
                  let spec =
                    C.uniform (C.plan ~remove:rate ~max_downtime:3 ()) ~seed
                  in
                  let clamped =
                    En3.run ~churn:(C.constrain ~t_interval:t g spec)
                      ~supervisor:Runtime.Supervisor.default g
                  in
                  let raw =
                    En3.run ~churn:(C.with_contract ~t_interval:t g spec)
                      ~supervisor:Runtime.Supervisor.default g
                  in
                  (clamped, raw))
                seeds
            in
            let count f = List.fold_left (fun a p -> a + f p) 0 stats in
            let terminated =
              count (fun ((c : _ E.report), _) ->
                  if c.E.outcome = E.Terminated then 1 else 0)
            in
            let unsound =
              count (fun ((c : _ E.report), (r : _ E.report)) ->
                  let bad (x : _ E.report) =
                    x.E.outcome = E.Terminated
                    && not (Array.for_all Fun.id x.E.visited)
                  in
                  (if bad c then 1 else 0) + if bad r then 1 else 0)
            in
            let heals =
              count (fun ((c : _ E.report), _) -> c.E.churn_stats.E.heals)
            in
            let clamped_violations =
              count (fun ((c : _ E.report), _) ->
                  c.E.churn_stats.E.window_violations)
            in
            let raw_violations =
              count (fun (_, (r : _ E.report)) ->
                  r.E.churn_stats.E.window_violations)
            in
            (rate, t, terminated, unsound, heals, clamped_violations,
             raw_violations))
          ts)
      rates
  in
  let sweep_s = Unix.gettimeofday () -. t0 in
  let total f = List.fold_left (fun a c -> a + f c) 0 cells in
  let runs_per_cell = List.length seeds in
  let sweep_unsound = total (fun (_, _, _, u, _, _, _) -> u) in
  let sweep_heals = total (fun (_, _, _, _, h, _, _) -> h) in
  let clamped_violations = total (fun (_, _, _, _, _, cv, _) -> cv) in
  let raw_violations = total (fun (_, _, _, _, _, _, rv) -> rv) in
  (* (3) zero overhead when churn-free. *)
  let g0 =
    F.random_digraph (Prng.create 42) ~n:48 ~extra_edges:40 ~back_edges:12
      ~t_edge_prob:0.25
  in
  let bare = En.run g0 in
  let armed = En.run ~churn:C.none g0 in
  let zero_overhead =
    bare.E.deliveries = armed.E.deliveries
    && bare.E.total_bits = armed.E.total_bits
    && armed.E.churn_stats = E.no_churn_stats
  in
  (* (4) amnesiac flooding: quiesce vs churned-in livelock, then the chaos
     search that must rediscover it. *)
  let module Am = Runtime.Engine.Make (Anonet.Amnesiac_flood) in
  let gd, events =
    F.random_dynamic (Prng.create 11) ~n:12 ~extra_edges:6 ~back_edges:2
      ~t_edge_prob:0.3 ()
  in
  let quiesce =
    (* Every initially-absent edge stays absent: its add point is pushed
       beyond any traffic the finite single pass can produce. *)
    Am.run ~step_limit:10_000
      ~churn:
        (C.script
           (List.filter_map
              (fun (d : F.dyn_event) ->
                match d.F.de_down_for with
                | None -> Some (C.add_event ~edge:d.F.de_edge ~at:1_000_000)
                | Some _ -> None)
              events))
      gd
  in
  let livelock =
    Am.run ~step_limit:10_000
      ~churn:
        (C.script
           (List.filter_map
              (fun (d : F.dyn_event) ->
                match d.F.de_down_for with
                | None -> Some (C.add_event ~edge:d.F.de_edge ~at:1)
                | Some _ -> None)
              events))
      gd
  in
  let amnesiac_split =
    quiesce.E.outcome <> E.Step_limit && livelock.E.outcome = E.Step_limit
  in
  let neg = Anonet.Check_suite.chaos_amnesiac ~budget:(if small then 6 else 12) () in
  let neg_confirmed =
    let gc ~n =
      {
        Runtime.Campaign.g_name = Printf.sprintf "random-dynamic-%d" n;
        build =
          (fun ~seed ->
            fst
              (F.random_dynamic (Prng.create seed) ~n ~extra_edges:6
                 ~back_edges:2 ~t_edge_prob:0.3 ()));
      }
    in
    let cfg =
      Ch.config ~budget:(if small then 6 else 12) ~seed:11 ~p_churn:1.0
        ~max_faults:1 ~step_limit:10_000 ()
    in
    let runner =
      Anonet.Resilient.chaos_runner ~k:1 (module Anonet.Amnesiac_flood)
    in
    List.for_all
      (fun (w : Ch.witness) -> Ch.confirms w (Ch.replay cfg runner (gc ~n:12) w))
      neg.Ch.witnesses
  in
  pf "{\n";
  pf "  \"experiment\": \"E18-churn-dynamic\",\n";
  pf "  \"sweep\": {\"runs_per_cell\": %d, \"seconds\": %.2f, \"cells\": [\n"
    runs_per_cell sweep_s;
  List.iteri
    (fun i (rate, t, terminated, unsound, heals, cv, rv) ->
      pf "    {\"rate\": %.2f, \"t\": %d, \"terminated\": %d, \"unsound\": \
          %d, \"heals\": %d, \"clamped_violations\": %d, \
          \"raw_violations\": %d}%s\n"
        rate t terminated unsound heals cv rv
        (if i = List.length cells - 1 then "" else ","))
    cells;
  pf "  ]},\n";
  pf "  \"zero_overhead\": %b,\n" zero_overhead;
  pf "  \"amnesiac\": {\"quiesce_outcome\": %S, \"livelock_outcome\": %S, \
      \"split\": %b},\n"
    (outcome_str quiesce.E.outcome)
    (outcome_str livelock.E.outcome)
    amnesiac_split;
  pf "  \"negative\": {\"trials\": %d, \"witnesses\": %d, \"livelocked\": \
      %d, \"unsound\": %d, \"all_replay_confirmed\": %b},\n"
    neg.Ch.trials_run
    (List.length neg.Ch.witnesses)
    neg.Ch.livelocked neg.Ch.unsound neg_confirmed;
  pf "  \"pass\": %b\n"
    (sweep_unsound = 0 && sweep_heals > 0 && clamped_violations = 0
    && raw_violations > 0 && zero_overhead && amnesiac_split
    && neg.Ch.livelocked > 0 && neg.Ch.unsound = 0 && neg_confirmed);
  pf "}\n"

(* {1 E20 — flat-core engine throughput (JSON)} *)

(* Prices the flat engine against the classic one on the E15 flood
   workload — same graph, same schedule, byte-identical reports (asserted
   here on every field the payload renders).  Two rows: the Fifo run takes
   the certified flood fast path (ring of edge indices, absorbed
   deliveries as two array ops), the Lifo run takes the generic flat path
   (CSR adjacency + arena-backed messages + encode memo), so the JSON
   separates "fast path" from "flat engine baseline" gains.  Classic and
   flat runs interleave so machine drift lands on both sides. *)
let flatcore_bench ~small () =
  let target_edges = if small then 30_000 else 120_000 in
  let repeats = if small then 3 else 5 in
  let g = F.random_layered_large (Prng.create 42) ~target_edges in
  let module Cn = Runtime.Engine.Make (Anonet.Flood) in
  let module Fn = Flatcore.Engine.Make (Anonet.Flood) in
  let t0 = Unix.gettimeofday () in
  let csr = Flatcore.Csr.of_digraph g in
  let compile_s = Unix.gettimeofday () -. t0 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let same (a : _ E.report) (b : _ E.report) =
    a.E.outcome = b.E.outcome
    && a.E.deliveries = b.E.deliveries
    && a.E.total_bits = b.E.total_bits
    && a.E.max_edge_bits = b.E.max_edge_bits
    && a.E.max_message_bits = b.E.max_message_bits
    && a.E.max_in_flight = b.E.max_in_flight
    && a.E.final_in_flight = b.E.final_in_flight
    && a.E.distinct_messages = b.E.distinct_messages
    && a.E.visited = b.E.visited
  in
  let row sched =
    let classic () = Cn.run ~scheduler:sched g in
    let flat () = Fn.run_csr ~scheduler:sched csr in
    ignore (classic ());
    ignore (flat ());
    let pairs = List.init repeats (fun _ -> (timed classic, timed flat)) in
    let classic_med = Metrics.median (List.map (fun ((t, _), _) -> t) pairs) in
    let flat_med = Metrics.median (List.map (fun (_, (t, _)) -> t) pairs) in
    let parity =
      List.for_all (fun ((_, cr), (_, fr)) -> same cr fr) pairs
    in
    let (_, (cr : _ E.report)), _ = List.hd pairs in
    (cr.E.deliveries, classic_med, flat_med, parity)
  in
  let fifo = row Runtime.Scheduler.Fifo in
  let lifo = row Runtime.Scheduler.Lifo in
  let deliveries, _, _, _ = fifo in
  let speedup (_, c, f, _) = c /. f in
  let parity_all (_, _, _, p) = p in
  let parity = parity_all fifo && parity_all lifo in
  let pass = parity && speedup fifo >= (if small then 1.5 else 3.0) in
  pf "{\n";
  pf "  \"experiment\": \"E20-flatcore\",\n";
  pf "  \"protocol\": \"flood\",\n";
  pf "  \"graph\": {\"vertices\": %d, \"edges\": %d},\n" (G.n_vertices g)
    (G.n_edges g);
  pf "  \"repeats\": %d,\n" repeats;
  pf "  \"deliveries\": %d,\n" deliveries;
  pf "  \"csr_compile_s\": %.6f,\n" compile_s;
  pf "  \"series\": [";
  List.iteri
    (fun i (path, sched, (deliveries, c, f, _)) ->
      if i > 0 then pf ",";
      pf
        "\n\
        \    {\"path\": %S, \"scheduler\": %S, \"classic_median_s\": %.6f, \
         \"flat_median_s\": %.6f, \"classic_deliveries_per_s\": %.0f, \
         \"flat_deliveries_per_s\": %.0f, \"speedup\": %.2f}"
        path sched c f
        (float_of_int deliveries /. c)
        (float_of_int deliveries /. f)
        (c /. f))
    [ ("fast", "fifo", fifo); ("generic", "lifo", lifo) ];
  pf "\n  ],\n";
  pf "  \"parity\": %b,\n" parity;
  pf "  \"pass\": %b\n" pass;
  pf "}\n"

(* E19: the serve layer under load.  Drives [Server.handle_line] directly —
   the same function the socket loop calls, minus syscalls — with an
   open-loop mixed-session flood from the main domain while worker domains
   execute, then audits every contract at once: no stuck sessions, no
   unsound results, byte-identical payloads for equal submissions under
   concurrent load, and exact metrics reconciliation. *)
let serve_bench ~small () =
  let module S = Serve.Server in
  let module J = Obs.Json in
  let sessions = if small then 1200 else 5000 in
  let workers = max 2 (min 4 (Domain.recommended_domain_count () - 1)) in
  let config =
    {
      S.default_config with
      graphs =
        [ ("small", "comb:8"); ("mid", "random:30:5"); ("grid", "grid:6x6") ];
      workers;
      max_queue = 256;
      credits = 1 lsl 20;  (* backpressure under test here is the queue *)
      step_limit = 200_000;
    }
  in
  let server =
    match S.create ~config () with Ok s -> s | Error e -> failwith e
  in
  S.start_workers server;
  let submit_line i =
    (* Pairs (2k, 2k+1) are equal submissions under distinct ids: every
       session participates in the byte-determinism audit. *)
    let seed = i / 2 in
    let id = Printf.sprintf "b%d" i in
    match seed mod 3 with
    | 0 ->
        Printf.sprintf
          "{\"op\":\"submit\",\"id\":\"%s\",\"protocol\":\"flood\",\"graph\":\"small\",\"seed\":%d}"
          id seed
    | 1 ->
        Printf.sprintf
          "{\"op\":\"submit\",\"id\":\"%s\",\"protocol\":\"counting\",\"graph\":\"grid\",\"scheduler\":\"random\",\"seed\":%d}"
          id seed
    | _ ->
        Printf.sprintf
          "{\"op\":\"submit\",\"id\":\"%s\",\"protocol\":\"general\",\"graph\":\"mid\",\"scheduler\":\"random\",\"seed\":%d,\"churn\":{\"rate\":0.05,\"seed\":%d}}"
          id seed seed
  in
  let ok_of resp =
    match J.parse resp with
    | Ok v -> (
        match Option.map J.to_bool_opt (J.member "ok" v) with
        | Some (Some b) -> b
        | _ -> false)
    | Error _ -> false
  in
  let code_of resp =
    match J.parse resp with
    | Ok v -> (
        match
          Option.bind (J.member "error" v) (fun e ->
              Option.bind (J.member "code" e) J.to_string_opt)
        with
        | Some c -> c
        | None -> "")
    | Error _ -> ""
  in
  let t0 = Unix.gettimeofday () in
  let overloads = ref 0 in
  for i = 0 to sessions - 1 do
    let line = submit_line i in
    let rec push () =
      let resp = S.handle_line server ~conn:(i mod 8) line in
      if not (ok_of resp) then
        if code_of resp = "overloaded" then begin
          (* open-loop producer hit admission control: back off and retry *)
          incr overloads;
          Unix.sleepf 0.0005;
          push ()
        end
        else failwith ("submit rejected: " ^ resp)
    in
    push ()
  done;
  let finals =
    Array.init sessions (fun i ->
        let id = Printf.sprintf "b%d" i in
        match S.await server id with
        | Some st -> (id, st)
        | None -> failwith ("lost session " ^ id))
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let stuck =
    Array.fold_left
      (fun acc (_, st) ->
        match st with Serve.Session.Done _ -> acc | _ -> acc + 1)
      0 finals
  in
  (* Fetch every result over the wire path and audit it. *)
  let results =
    Array.map
      (fun (id, _) ->
        let resp =
          S.handle_line server ~conn:0
            (Printf.sprintf "{\"op\":\"result\",\"id\":\"%s\"}" id)
        in
        if not (ok_of resp) then failwith ("result failed: " ^ resp);
        match J.parse resp with
        | Ok v -> (
            match J.member "result" v with
            | Some r -> (id, J.to_string r, r)
            | None -> failwith "missing result")
        | Error _ -> failwith "unparseable result")
      finals
  in
  let int_member name v =
    match Option.bind (J.member name v) J.to_int_opt with
    | Some i -> i
    | None -> -1
  in
  let unsound =
    Array.fold_left
      (fun acc (_, _, v) ->
        let terminated =
          match Option.bind (J.member "outcome" v) J.to_string_opt with
          | Some "terminated" -> true
          | _ -> false
        in
        let all_visited =
          match Option.bind (J.member "all_visited" v) J.to_bool_opt with
          | Some b -> b
          | None -> false
        in
        if terminated && not all_visited then acc + 1 else acc)
      0 results
  in
  let determinism_ok = ref true in
  Array.iteri
    (fun i (_, json, _) ->
      if i mod 2 = 1 then
        let _, json', _ = results.(i - 1) in
        if json <> json' then determinism_ok := false)
    results;
  let sum_deliveries =
    Array.fold_left (fun acc (_, _, v) -> acc + int_member "deliveries" v) 0 results
  in
  let metrics_resp = S.handle_line server ~conn:0 "{\"op\":\"metrics\"}" in
  let metrics_deliveries =
    match J.parse metrics_resp with
    | Ok v -> (
        match
          Option.bind (J.member "result" v) (fun r ->
              Option.bind (J.member "counters" r) (fun c ->
                  Option.bind
                    (J.member "sessions.engine.deliveries" c)
                    J.to_int_opt))
        with
        | Some n -> n
        | None -> -1)
    | Error _ -> -1
  in
  let reconcile_ok = metrics_deliveries = sum_deliveries in
  let latencies_ms =
    Array.to_list
      (Array.map
         (fun (id, _, _) ->
           match S.session_times server id with
           | Some (t_in, t_out) -> (t_out -. t_in) *. 1000.0
           | None -> nan)
         results)
  in
  let pcts = Metrics.percentiles [ 50.0; 99.0 ] latencies_ms in
  let p50, p99 =
    match pcts with [ a; b ] -> (a, b) | _ -> (nan, nan)
  in
  S.stop server;
  let pass =
    stuck = 0 && unsound = 0 && !determinism_ok && reconcile_ok
    && Array.length results = sessions
  in
  pf "{\n";
  pf "  \"experiment\": \"E19-serve\",\n";
  pf "  \"sessions\": %d,\n" sessions;
  pf "  \"workers\": %d,\n" workers;
  pf "  \"wall_seconds\": %.3f,\n" wall_s;
  pf "  \"sessions_per_sec\": %.1f,\n" (float_of_int sessions /. wall_s);
  pf "  \"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f},\n" p50 p99;
  pf "  \"overload_retries\": %d,\n" !overloads;
  pf "  \"stuck\": %d,\n" stuck;
  pf "  \"unsound\": %d,\n" unsound;
  pf "  \"determinism_ok\": %b,\n" !determinism_ok;
  pf "  \"reconcile\": {\"sum_deliveries\": %d, \"metrics_deliveries\": %d, \
      \"ok\": %b},\n"
    sum_deliveries metrics_deliveries reconcile_ok;
  pf "  \"pass\": %b\n" pass;
  pf "}\n"

(* {1 E22 — crash/recovery under SIGKILL (JSON)}

   The durability claim, tested the only honest way: a REAL socket
   server in a child process, a client driving mixed load through the
   wire, [kill -9] at seeded points mid-load, restart on the same
   journal, and then an audit from the client's ledger — every
   acknowledged submit must still produce a result (zero acked loss),
   and every result fetched before a crash must come back
   byte-identical after it.  A second, in-process phase prices the
   journal: E19-style open-loop load with and without [--journal],
   gating the p50 overhead at 10%.

   The chaos phase forks, so it MUST run before this process spawns any
   domain — run [recover] as its own bench invocation (CI does). *)
let recover_bench ~small () =
  let module S = Serve.Server in
  let module C = Serve.Client in
  let module J = Obs.Json in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let n = if small then 80 else 400 in
  let crashes = if small then 1 else 2 in
  let prng = Prng.create 0xE22 in
  let tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "anonet-recover-%d" (Unix.getpid ()))
  in
  let sock = tag ^ ".sock" and journal = tag ^ ".journal" in
  let rm f = try Sys.remove f with Sys_error _ -> () in
  rm journal;
  let config =
    {
      S.default_config with
      graphs = [ ("small", "comb:8"); ("grid", "grid:6x6") ];
      workers = 2;
      max_queue = 256;
      credits = 1 lsl 20;
      step_limit = 200_000;
      journal = Some journal;
      journal_sync = true;
    }
  in
  let start_server () =
    rm sock;
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (* Child: the real socket server.  Its chatter must not pollute
           the parent's JSON, and it must never run the parent's at_exit
           handlers — hence /dev/null and [Unix._exit]. *)
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Unix.dup2 devnull Unix.stdout;
        Unix.dup2 devnull Unix.stderr;
        (match S.create ~config () with
        | Error _ -> Unix._exit 1
        | Ok t ->
            S.serve_loop ~socket:sock t;
            S.stop t;
            Unix._exit 0)
    | pid -> pid
  in
  let retry =
    { C.r_attempts = 10; r_base_ms = 20; r_seed = 0xE22 }
  in
  let connect () =
    match C.connect_retry ~retry sock with
    | Ok c -> c
    | Error e -> failwith ("connect: " ^ e)
  in
  let rid i = Printf.sprintf "r%d" i in
  let submit_line i =
    if i mod 2 = 0 then
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":\"%s\",\"protocol\":\"flood\",\"graph\":\"small\",\"seed\":%d}"
        (rid i) i
    else
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":\"%s\",\"protocol\":\"counting\",\"graph\":\"grid\",\"scheduler\":\"random\",\"seed\":%d}"
        (rid i) i
  in
  let ok_of resp =
    match J.parse resp with
    | Ok v -> (
        match Option.map J.to_bool_opt (J.member "ok" v) with
        | Some (Some b) -> b
        | _ -> false)
    | Error _ -> false
  in
  let code_of resp =
    match J.parse resp with
    | Ok v -> (
        match
          Option.bind (J.member "error" v) (fun e ->
              Option.bind (J.member "code" e) J.to_string_opt)
        with
        | Some c -> c
        | None -> "")
    | Error _ -> ""
  in
  let result_bytes resp =
    match J.parse resp with
    | Ok v -> (
        match J.member "result" v with
        | Some r -> J.to_string r
        | None -> failwith "missing result member")
    | Error _ -> failwith "unparseable result"
  in
  let acked = ref [] in
  (* id -> result bytes the server acknowledged BEFORE a crash *)
  let prekill : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let submit c i =
    match C.request_retry ~retry c (submit_line i) with
    | Ok resp when ok_of resp -> acked := i :: !acked
    | Ok resp -> failwith ("submit rejected: " ^ resp)
    | Error e -> failwith ("submit io: " ^ e)
  in
  let poll_result c id ~budget_s =
    let deadline = Unix.gettimeofday () +. budget_s in
    let rec go () =
      match C.request c (Printf.sprintf "{\"op\":\"result\",\"id\":\"%s\"}" id) with
      | Ok resp when ok_of resp -> `Done (result_bytes resp)
      | Ok resp ->
          let c' = code_of resp in
          if c' = "not_done" && Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.005;
            go ()
          end
          else `Gone (if c' = "not_done" then "timeout" else c')
      | Error e -> `Gone ("io: " ^ e)
    in
    go ()
  in
  let t0 = Unix.gettimeofday () in
  let per_phase = n / (crashes + 1) in
  let next = ref 0 in
  let kill_points = ref [] in
  let pid = ref (start_server ()) in
  let client = ref (connect ()) in
  for crash = 1 to crashes do
    (* Seeded kill point, jittered around the phase boundary. *)
    let upto =
      min n
        ((crash * per_phase) - (per_phase / 4) + Prng.int prng (per_phase / 2))
    in
    kill_points := upto :: !kill_points;
    while !next < upto do
      submit !client !next;
      incr next
    done;
    (* Pin down pre-kill bytes for the oldest acked-but-unpinned ids:
       these exact bytes must survive the crash. *)
    let unsampled =
      List.filter (fun i -> not (Hashtbl.mem prekill (rid i))) (List.rev !acked)
    in
    List.iteri
      (fun k i ->
        if k < max 5 (per_phase / 4) then
          match poll_result !client (rid i) ~budget_s:30.0 with
          | `Done bytes -> Hashtbl.replace prekill (rid i) bytes
          | `Gone code -> failwith ("pre-kill result lost: " ^ rid i ^ ": " ^ code))
      unsampled;
    C.close !client;
    Unix.kill !pid Sys.sigkill;
    ignore (Unix.waitpid [] !pid);
    (* Reboot on the same journal: recovery replays + re-executes. *)
    pid := start_server ();
    client := connect ()
  done;
  while !next < n do
    submit !client !next;
    incr next
  done;
  (* The audit: every acked id yields a result; pinned bytes match. *)
  let lost = ref 0 and mismatches = ref 0 and lost_sample = ref "" in
  List.iter
    (fun i ->
      let id = rid i in
      match poll_result !client id ~budget_s:60.0 with
      | `Done bytes -> (
          match Hashtbl.find_opt prekill id with
          | Some b -> if b <> bytes then incr mismatches
          | None -> ())
      | `Gone code ->
          incr lost;
          if !lost_sample = "" then lost_sample := id ^ ": " ^ code)
    (List.rev !acked);
  let recovered_counter name =
    match C.request !client "{\"op\":\"metrics\"}" with
    | Ok resp -> (
        match J.parse resp with
        | Ok v -> (
            match
              Option.bind (J.member "result" v) (fun r ->
                  Option.bind (J.member "counters" r) (fun c ->
                      Option.bind
                        (J.member ("server.recovered." ^ name) c)
                        J.to_int_opt))
            with
            | Some i -> i
            | None -> -1)
        | Error _ -> -1)
    | Error _ -> -1
  in
  let rec_replayed = recovered_counter "replayed" in
  let rec_verified = recovered_counter "verified" in
  let rec_mismatched = recovered_counter "mismatched" in
  let rec_completed = recovered_counter "completed" in
  C.close !client;
  ignore (C.shutdown ~socket:sock);
  ignore (Unix.waitpid [] !pid);
  rm sock;
  let chaos_wall = Unix.gettimeofday () -. t0 in
  (* {2 Overhead phase} — closed-loop producers, journal on/off.  A
     single open-loop producer can't price the journal: the
     journal-slowed producer keeps the queue SHORTER, so measured wait
     DROPS with journaling on.  Closed-loop clients (one loop per
     connection, bounded in-flight) are the realistic shape; on a
     multi-core host several run concurrently, which is also the shape
     group commit is engineered for — simultaneous appends share
     fsyncs.  On a single-core host (CI) extra domains only time-slice,
     so concurrency shrinks to one stream. *)
  let m = if small then 240 else 1200 in
  let producers = max 1 (min 4 (Domain.recommended_domain_count () - 1)) in
  let overhead_run jpath =
    let config =
      {
        S.default_config with
        (* Heavier than the chaos phase's graphs on purpose: the gate
           prices the journal against representative session work, and a
           per-session fsync is a fixed cost — toy graphs would measure
           the filesystem, not the serve layer. *)
        graphs =
          [ ("small", "comb:16"); ("mid", "random:48:6"); ("grid", "grid:9x9") ];
        workers = producers;  (* every in-flight session gets a worker *)
        max_queue = 256;
        credits = 1 lsl 20;
        step_limit = 200_000;
        journal = jpath;
        journal_sync = true;
      }
    in
    let server =
      match S.create ~config () with Ok s -> s | Error e -> failwith e
    in
    S.start_workers server;
    let mixed_line i =
      match i mod 3 with
      | 0 ->
          Printf.sprintf
            "{\"op\":\"submit\",\"id\":\"o%d\",\"protocol\":\"flood\",\"graph\":\"small\",\"seed\":%d}"
            i i
      | 1 ->
          Printf.sprintf
            "{\"op\":\"submit\",\"id\":\"o%d\",\"protocol\":\"counting\",\"graph\":\"grid\",\"scheduler\":\"random\",\"seed\":%d}"
            i i
      | _ ->
          Printf.sprintf
            "{\"op\":\"submit\",\"id\":\"o%d\",\"protocol\":\"general\",\"graph\":\"mid\",\"scheduler\":\"random\",\"seed\":%d}"
            i i
    in
    let per = m / producers in
    let doms =
      List.init producers (fun p ->
          Domain.spawn (fun () ->
              for k = 0 to per - 1 do
                let i = (p * per) + k in
                let resp = S.handle_line server ~conn:p (mixed_line i) in
                if not (ok_of resp) then
                  failwith ("submit rejected: " ^ resp);
                ignore (S.await server (Printf.sprintf "o%d" i))
              done))
    in
    List.iter Domain.join doms;
    let lat =
      List.init (producers * per) (fun i ->
          match S.session_times server (Printf.sprintf "o%d" i) with
          | Some (t_in, t_out) -> (t_out -. t_in) *. 1000.0
          | None -> nan)
    in
    let jstats = S.journal_stats server in
    S.stop server;
    let p50 =
      match Metrics.percentiles [ 50.0 ] lat with [ p ] -> p | _ -> nan
    in
    (p50, jstats)
  in
  ignore (overhead_run None);  (* warm-up *)
  let j2 = tag ^ ".overhead.journal" in
  (* Paired rounds with the off/on order FLIPPED each round, overhead
     taken as the median of per-round deltas.  Two defenses at once:
     pairing beats run-to-run scheduling noise, and order-flipping
     cancels monotonic drift (CPU frequency ramp, cache warming) that
     otherwise hands whichever side runs later a systematic win. *)
  let rounds = 4 in
  let offs = ref [] and ons = ref [] and pcts = ref [] and jstats = ref None in
  let run_off () = fst (overhead_run None) in
  let run_on () =
    rm j2;
    let p, js = overhead_run (Some j2) in
    jstats := js;
    rm j2;
    p
  in
  for r = 1 to rounds do
    let off, on =
      if r mod 2 = 1 then
        let o = run_off () in
        (o, run_on ())
      else
        let n = run_on () in
        (run_off (), n)
    in
    offs := off :: !offs;
    ons := on :: !ons;
    pcts := ((on -. off) /. off *. 100.0) :: !pcts
  done;
  rm journal;
  let median l =
    match Metrics.percentiles [ 50.0 ] l with [ p ] -> p | _ -> nan
  in
  let p50_off = median !offs and p50_on = median !ons in
  let jstats = !jstats in
  let overhead_pct = median !pcts in
  let appends, fsyncs, jbytes =
    match jstats with
    | Some st -> Serve.Journal.(st.s_appends, st.s_fsyncs, st.s_bytes)
    | None -> (-1, -1, -1)
  in
  let pass =
    !lost = 0 && !mismatches = 0 && rec_mismatched = 0 && rec_replayed > 0
    && overhead_pct <= 10.0
  in
  pf "{\n";
  pf "  \"experiment\": \"E22-recover\",\n";
  pf "  \"sessions\": %d,\n" n;
  pf "  \"crashes\": %d,\n" crashes;
  pf "  \"kill_points\": [%s],\n"
    (String.concat ", " (List.rev_map string_of_int !kill_points));
  pf "  \"chaos_wall_seconds\": %.3f,\n" chaos_wall;
  pf "  \"acked\": %d,\n" (List.length !acked);
  pf "  \"prekill_pinned\": %d,\n" (Hashtbl.length prekill);
  pf "  \"lost\": %d,\n" !lost;
  if !lost > 0 then pf "  \"lost_sample\": %s,\n" (J.escape !lost_sample);
  pf "  \"byte_mismatches\": %d,\n" !mismatches;
  pf "  \"recovered\": {\"replayed\": %d, \"verified\": %d, \"mismatched\": \
      %d, \"completed\": %d},\n"
    rec_replayed rec_verified rec_mismatched rec_completed;
  pf "  \"overhead\": {\"sessions\": %d, \"p50_off_ms\": %.3f, \"p50_on_ms\": \
      %.3f, \"pct\": %.1f, \"appends\": %d, \"fsyncs\": %d, \"bytes\": %d},\n"
    m p50_off p50_on overhead_pct appends fsyncs jbytes;
  pf "  \"pass\": %b\n" pass;
  pf "}\n"

let all_tables =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("fits", fits);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) all_tables;
      timing ()
  | _ ->
      List.iter
        (fun a ->
          if a = "timing" then timing ()
          else if a = "campaign" then campaign ()
          else if a = "check" then check ()
          else if a = "throughput" then throughput ~small:false ()
          else if a = "throughput:small" then throughput ~small:true ()
          else if a = "obs" then obs_bench ~small:false ()
          else if a = "obs:small" then obs_bench ~small:true ()
          else if a = "chaos" then chaos_bench ~small:false ()
          else if a = "chaos:small" then chaos_bench ~small:true ()
          else if a = "churn" then churn_bench ~small:false ()
          else if a = "churn:small" then churn_bench ~small:true ()
          else if a = "serve" then serve_bench ~small:false ()
          else if a = "serve:small" then serve_bench ~small:true ()
          else if a = "recover" then recover_bench ~small:false ()
          else if a = "recover:small" then recover_bench ~small:true ()
          else if a = "flatcore" then flatcore_bench ~small:false ()
          else if a = "flatcore:small" then flatcore_bench ~small:true ()
          else if a = "lineage" then lineage_bench ~small:false ()
          else if a = "lineage:small" then lineage_bench ~small:true ()
          else
            match List.assoc_opt a all_tables with
            | Some f -> f ()
            | None ->
                pf
                  "unknown table %s (known: e1..e13, fits, campaign, check, \
                   timing, throughput[:small], obs[:small], chaos[:small], \
                   churn[:small], serve[:small], recover[:small], \
                   flatcore[:small], lineage[:small])\n"
                  a)
        args
