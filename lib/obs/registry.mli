(** A low-overhead metrics registry: named counters, gauges and
    log₂-bucketed histograms.

    Registration ([counter]/[gauge]/[histogram]/[acounter]) resolves a name
    to a cell under a mutex and is idempotent — ask for the same name twice
    and you share the cell.  The {e updates} on a cell are single plain
    stores (one atomic RMW for {!acounter}), so instrumented hot paths pay a
    few nanoseconds per event.  Plain cells are single-writer; when several
    domains bump one total, use {!acounter}.  [snapshot] is safe to take
    from any domain at any time (values racy-read, registration locked). *)

type t

val create : unit -> t

(** {1 Cells} *)

type counter
type gauge
type acounter
type histogram

val counter : t -> string -> counter
(** @raise Invalid_argument if [name] is registered with another kind
    (same for the three below). *)

val gauge : t -> string -> gauge

val acounter : t -> string -> acounter
(** Atomic counter, for totals shared across [Par] domains. *)

val histogram : t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> int -> unit
val gauge_value : gauge -> int
val aincr : acounter -> unit
val aadd : acounter -> int -> unit
val avalue : acounter -> int

val observe : histogram -> int -> unit
(** O(1): bucket [b] counts observations with exactly [b] significand bits
    ([v <= 0] lands in bucket 0, [2^(b-1) .. 2^b - 1] in bucket [b]). *)

val bucket_of : int -> int
val bucket_lo : int -> int
(** Smallest value of bucket [i]. *)

val bucket_hi : int -> int
(** Largest value of bucket [i] (0 for bucket 0). *)

(** {1 Snapshots}

    Deterministic: entries sorted by name, histograms as sparse
    [(bucket, count)] lists — two snapshots of equal state render to equal
    JSON bytes. *)

type entry =
  | Counter of int  (** [acounter]s snapshot as counters. *)
  | Gauge of int
  | Histogram of { h_count : int; h_sum : int; h_buckets : (int * int) list }

type snapshot = (string * entry) list

val snapshot : t -> snapshot

val diff : older:snapshot -> newer:snapshot -> snapshot
(** What happened between two snapshots: counters and histograms subtract,
    gauges keep the newer reading, entries missing from [newer] drop. *)

val merge : into:t -> ?prefix:string -> snapshot -> unit
(** Roll [snap] up into [into], each entry under [prefix ^ name]: counters
    and histogram contents {e add}, gauges take the incoming reading.
    Registration is idempotent — merging the same names again reuses the
    cells — so any number of per-session snapshots fold into one
    server-wide registry without double-registration.
    @raise Invalid_argument if a prefixed name is already registered with
    another kind.  Concurrent merges into one registry must be serialized
    by the caller (cell updates are plain stores). *)

val find : snapshot -> string -> int option
(** Counter or gauge value by name. *)

val find_histogram : snapshot -> string -> (int * int * (int * int) list) option
(** [(count, sum, sparse buckets)] by name. *)

val to_json : snapshot -> string
(** [{"counters":{..},"gauges":{..},"histograms":{..}}], byte-stable for a
    given snapshot. *)
