let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_list b f xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let buf_int_list b xs =
  buf_list b (fun b i -> Buffer.add_string b (string_of_int i)) xs

let escape s =
  let b = Buffer.create (String.length s + 2) in
  buf_string b s;
  Buffer.contents b

(* A float literal that is always a legal JSON number: no [nan]/[inf]
   tokens, no leading dot, and a ['.'] or exponent is fine per RFC 8259. *)
let buf_float b x =
  if not (Float.is_finite x) then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.bprintf b "%.0f" x
  else Printf.bprintf b "%.6g" x

(* {1 A minimal validating parser}

   Used by the test-suite and the CLI to confirm that every exporter emits
   well-formed RFC 8259 JSON (the acceptance check that a Chrome trace
   "round-trips through a parser"); it validates structure only and does not
   build a document tree. *)

exception Bad of int

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let bump () = incr pos in
  let fail () = raise (Bad !pos) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        bump ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = match peek () with Some d when d = c -> bump () | _ -> fail () in
  let literal l = String.iter expect l in
  let digits () =
    let saw = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9') ->
          saw := true;
          bump ()
      | _ -> continue := false
    done;
    if not !saw then fail ()
  in
  let number () =
    (match peek () with Some '-' -> bump () | _ -> ());
    (* JSON forbids leading zeros: the integer part is 0, or 1-9 digits. *)
    (match peek () with
    | Some '0' -> (
        bump ();
        match peek () with Some ('0' .. '9') -> fail () | _ -> ())
    | _ -> digits ());
    (match peek () with
    | Some '.' ->
        bump ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        bump ();
        (match peek () with Some ('+' | '-') -> bump () | _ -> ());
        digits ()
    | _ -> ()
  in
  let string_body () =
    expect '"';
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> fail ()
      | Some '"' ->
          bump ();
          continue := false
      | Some '\\' -> (
          bump ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> bump ()
          | Some 'u' ->
              bump ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> bump ()
                | _ -> fail ()
              done
          | _ -> fail ())
      | Some c when Char.code c < 32 -> fail ()
      | Some _ -> bump ()
    done
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        bump ();
        skip_ws ();
        (match peek () with
        | Some '}' -> bump ()
        | _ ->
            let continue = ref true in
            while !continue do
              skip_ws ();
              string_body ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some '}' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done)
    | Some '[' ->
        bump ();
        skip_ws ();
        (match peek () with
        | Some ']' -> bump ()
        | _ ->
            let continue = ref true in
            while !continue do
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some ']' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done)
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ());
    skip_ws ()
  in
  try
    value ();
    if !pos <> n then Error !pos else Ok ()
  with Bad p -> Error p

let valid s = Result.is_ok (validate s)
