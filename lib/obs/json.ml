let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_list b f xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let buf_int_list b xs =
  buf_list b (fun b i -> Buffer.add_string b (string_of_int i)) xs

let escape s =
  let b = Buffer.create (String.length s + 2) in
  buf_string b s;
  Buffer.contents b

(* One NDJSON frame: render [emit] into a scratch buffer, then write it as a
   single line and flush.  Rendering first keeps a raising emitter from
   leaving half a document on the wire, and the single [output_string] keeps
   concurrent writers from interleaving inside a frame. *)
let to_channel oc emit =
  let b = Buffer.create 256 in
  emit b;
  Buffer.add_char b '\n';
  output_string oc (Buffer.contents b);
  flush oc

(* A float literal that is always a legal JSON number: no [nan]/[inf]
   tokens, no leading dot, and a ['.'] or exponent is fine per RFC 8259. *)
let buf_float b x =
  if not (Float.is_finite x) then Buffer.add_string b "0"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.bprintf b "%.0f" x
  else Printf.bprintf b "%.6g" x

(* {1 A minimal validating parser}

   Used by the test-suite and the CLI to confirm that every exporter emits
   well-formed RFC 8259 JSON (the acceptance check that a Chrome trace
   "round-trips through a parser"); it validates structure only and does not
   build a document tree. *)

exception Bad of int

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let bump () = incr pos in
  let fail () = raise (Bad !pos) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        bump ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = match peek () with Some d when d = c -> bump () | _ -> fail () in
  let literal l = String.iter expect l in
  let digits () =
    let saw = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9') ->
          saw := true;
          bump ()
      | _ -> continue := false
    done;
    if not !saw then fail ()
  in
  let number () =
    (match peek () with Some '-' -> bump () | _ -> ());
    (* JSON forbids leading zeros: the integer part is 0, or 1-9 digits. *)
    (match peek () with
    | Some '0' -> (
        bump ();
        match peek () with Some ('0' .. '9') -> fail () | _ -> ())
    | _ -> digits ());
    (match peek () with
    | Some '.' ->
        bump ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        bump ();
        (match peek () with Some ('+' | '-') -> bump () | _ -> ());
        digits ()
    | _ -> ()
  in
  let string_body () =
    expect '"';
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> fail ()
      | Some '"' ->
          bump ();
          continue := false
      | Some '\\' -> (
          bump ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> bump ()
          | Some 'u' ->
              bump ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> bump ()
                | _ -> fail ()
              done
          | _ -> fail ())
      | Some c when Char.code c < 32 -> fail ()
      | Some _ -> bump ()
    done
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
        bump ();
        skip_ws ();
        (match peek () with
        | Some '}' -> bump ()
        | _ ->
            let continue = ref true in
            while !continue do
              skip_ws ();
              string_body ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some '}' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done)
    | Some '[' ->
        bump ();
        skip_ws ();
        (match peek () with
        | Some ']' -> bump ()
        | _ ->
            let continue = ref true in
            while !continue do
              value ();
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some ']' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done)
    | Some '"' -> string_body ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ());
    skip_ws ()
  in
  try
    value ();
    if !pos <> n then Error !pos else Ok ()
  with Bad p -> Error p

let valid s = Result.is_ok (validate s)

(* {1 A document-building parser}

   The serving layer needs to {e read} JSON, not just emit it: every request
   on the wire is one NDJSON line.  Same grammar as {!validate} (leading
   zeros rejected, one complete document, trailing whitespace only), but
   builds a {!value} tree.  Numbers keep their source lexeme so that
   re-serializing a parsed document is byte-faithful — [to_string (parse s)]
   never invents a different number spelling than the producer used. *)

type value =
  | Null
  | Bool of bool
  | Number of string
  | String of string
  | Array of value list
  | Object of (string * value) list

let utf8_of_code b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let bump () = incr pos in
  let fail () = raise (Bad !pos) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        bump ();
        skip_ws ()
    | _ -> ()
  in
  let expect c = match peek () with Some d when d = c -> bump () | _ -> fail () in
  let literal l = String.iter expect l in
  let digits () =
    let saw = ref false in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some ('0' .. '9') ->
          saw := true;
          bump ()
      | _ -> continue := false
    done;
    if not !saw then fail ()
  in
  let number () =
    let start = !pos in
    (match peek () with Some '-' -> bump () | _ -> ());
    (match peek () with
    | Some '0' -> (
        bump ();
        match peek () with Some ('0' .. '9') -> fail () | _ -> ())
    | _ -> digits ());
    (match peek () with
    | Some '.' ->
        bump ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        bump ();
        (match peek () with Some ('+' | '-') -> bump () | _ -> ());
        digits ()
    | _ -> ());
    Number (String.sub s start (!pos - start))
  in
  let hex4 () =
    let v = ref 0 in
    for _ = 1 to 4 do
      (v :=
         (!v lsl 4)
         +
         match peek () with
         | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
         | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
         | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
         | _ -> fail ());
      bump ()
    done;
    !v
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let continue = ref true in
    while !continue do
      match peek () with
      | None -> fail ()
      | Some '"' ->
          bump ();
          continue := false
      | Some '\\' -> (
          bump ();
          match peek () with
          | Some '"' -> bump (); Buffer.add_char b '"'
          | Some '\\' -> bump (); Buffer.add_char b '\\'
          | Some '/' -> bump (); Buffer.add_char b '/'
          | Some 'b' -> bump (); Buffer.add_char b '\b'
          | Some 'f' -> bump (); Buffer.add_char b '\012'
          | Some 'n' -> bump (); Buffer.add_char b '\n'
          | Some 'r' -> bump (); Buffer.add_char b '\r'
          | Some 't' -> bump (); Buffer.add_char b '\t'
          | Some 'u' ->
              bump ();
              utf8_of_code b (hex4 ())
          | _ -> fail ())
      | Some c when Char.code c < 32 -> fail ()
      | Some c ->
          bump ();
          Buffer.add_char b c
    done;
    Buffer.contents b
  in
  let rec value () =
    skip_ws ();
    let v =
      match peek () with
      | Some '{' ->
          bump ();
          skip_ws ();
          if peek () = Some '}' then begin
            bump ();
            Object []
          end
          else begin
            let members = ref [] in
            let continue = ref true in
            while !continue do
              skip_ws ();
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              members := (k, v) :: !members;
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some '}' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done;
            Object (List.rev !members)
          end
      | Some '[' ->
          bump ();
          skip_ws ();
          if peek () = Some ']' then begin
            bump ();
            Array []
          end
          else begin
            let items = ref [] in
            let continue = ref true in
            while !continue do
              items := value () :: !items;
              skip_ws ();
              match peek () with
              | Some ',' -> bump ()
              | Some ']' ->
                  bump ();
                  continue := false
              | _ -> fail ()
            done;
            Array (List.rev !items)
          end
      | Some '"' -> String (string_body ())
      | Some 't' ->
          literal "true";
          Bool true
      | Some 'f' ->
          literal "false";
          Bool false
      | Some 'n' ->
          literal "null";
          Null
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail ()
    in
    skip_ws ();
    v
  in
  try
    let v = value () in
    if !pos <> n then Error !pos else Ok v
  with Bad p -> Error p

let rec buf_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Number lexeme -> Buffer.add_string b lexeme
  | String s -> buf_string b s
  | Array vs -> buf_list b buf_value vs
  | Object kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          buf_string b k;
          Buffer.add_char b ':';
          buf_value b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 64 in
  buf_value b v;
  Buffer.contents b

(* {1 Accessors} *)

let member k = function Object kvs -> List.assoc_opt k kvs | _ -> None

let to_int_opt = function
  | Number lexeme -> int_of_string_opt lexeme
  | _ -> None

let to_float_opt = function
  | Number lexeme -> float_of_string_opt lexeme
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
