(** Exporters: Chrome trace-event JSON (Perfetto / chrome://tracing) and a
    flat CSV time-series dump. *)

val chrome_trace : ?process_name:string -> ?lineage:Lineage.t -> Timeline.t -> string
(** The timeline's retained window as a Chrome trace-event JSON document:
    [{"displayTimeUnit":"ms","traceEvents":[...]}], timestamps in
    microseconds, [tid] = the event's track.  [Begin]/[End] become ["B"]/
    ["E"] duration events, [Instant] ["i"], [Sample] ["C"] counter events
    (Perfetto plots those as per-name graphs).  With [?lineage], every
    stored parent→child delivery pair additionally becomes a Perfetto
    flow event: an ["s"] start at the parent and an ["f"] (["bp":"e"])
    finish at the child, sharing the child's node id — arrows across
    shard tracks in the UI.  ["otherData"] always carries the timeline's
    ["dropped"] count (and ["lineage_dropped"] when [?lineage] is
    given).  Open the file at {{:https://ui.perfetto.dev}ui.perfetto.dev}. *)

val timeline_csv : Timeline.t -> string
(** [ts_s,track,kind,name,value] rows, oldest first, after a
    [# dropped=N] comment line and the column-header line. *)

val metrics_json : ?meta:(string * string) list -> Registry.snapshot -> string
(** The snapshot as one JSON object; [meta] key/value strings are prepended
    at the top level (e.g. protocol and family names), the snapshot itself
    lands under ["metrics"]. *)
