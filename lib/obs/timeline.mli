(** Span / event timeline over a bounded ring buffer.

    Records four event kinds against monotonically increasing timestamps
    (seconds since [create]) and an integer [track] — one track per domain,
    shard or logical lane, mapped to a Chrome-trace [tid] by
    {!Export.chrome_trace}:

    - [Begin]/[End] — a duration span (begin/end pairs per track);
    - [Instant] — a point event;
    - [Sample] — a named numeric time-series point (exported as a
      Chrome-trace counter event, plotted by Perfetto as a graph).

    The buffer keeps the {e newest} [capacity] events; older ones are
    overwritten and counted in {!dropped}, so attaching a timeline to a
    million-delivery run costs constant memory.  Pushes are one atomic
    fetch-and-add plus one store and are safe from concurrent domains. *)

type kind = Begin | End | Instant | Sample

type event = {
  ts : float;  (** Seconds since the timeline's creation. *)
  track : int;
  name : string;
  kind : kind;
  value : float;  (** Meaningful for [Sample]; 0 otherwise. *)
}

type t

val create : ?clock:(unit -> float) -> ?capacity:int -> unit -> t
(** [clock] defaults to [Unix.gettimeofday] (injectable for deterministic
    tests); [capacity] defaults to 65536 events.
    @raise Invalid_argument when [capacity < 1]. *)

val now : t -> float
(** Seconds since creation, on the timeline's clock. *)

val begin_span : t -> track:int -> string -> unit
val end_span : t -> track:int -> string -> unit
val instant : t -> track:int -> string -> unit
val sample : t -> track:int -> string -> float -> unit

val events : t -> event list
(** The retained window, oldest first (at most [capacity] events). *)

val iter : (event -> unit) -> t -> unit
val capacity : t -> int

val recorded : t -> int
(** Total events ever pushed, including overwritten ones. *)

val dropped : t -> int
(** [recorded - capacity] when the ring has wrapped, else 0. *)

val tracks : t -> int list
(** Distinct track ids in the retained window, ascending. *)
