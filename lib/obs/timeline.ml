(* Bounded span/event timeline.  A fixed ring buffer holds the newest
   [capacity] events: the write cursor is one atomic fetch-and-add, the slot
   store one pointer write, so million-delivery runs pay O(1) per event and
   a constant memory footprint.  Several domains may push concurrently;
   when the ring wraps, the oldest events are overwritten (counted in
   [dropped]).  Slot stores from different domains racing on a wrapped
   index can interleave arbitrarily — harmless for telemetry, and the
   memory model guarantees each slot holds one intact event. *)

type kind = Begin | End | Instant | Sample

type event = {
  ts : float;  (** Seconds since the timeline was created. *)
  track : int;
  name : string;
  kind : kind;
  value : float;
}

type t = {
  clock : unit -> float;
  epoch : float;
  buf : event array;
  cap : int;
  cursor : int Atomic.t;  (** Total events ever pushed. *)
}

let dummy = { ts = 0.0; track = 0; name = ""; kind = Instant; value = 0.0 }

let create ?clock ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Obs.Timeline.create: capacity < 1";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  { clock; epoch = clock (); buf = Array.make capacity dummy; cap = capacity;
    cursor = Atomic.make 0 }

let now t = t.clock () -. t.epoch

let push t ev =
  let i = Atomic.fetch_and_add t.cursor 1 in
  t.buf.(i mod t.cap) <- ev

let record t ~track ~kind ~value name =
  push t { ts = now t; track; name; kind; value }

let begin_span t ~track name = record t ~track ~kind:Begin ~value:0.0 name
let end_span t ~track name = record t ~track ~kind:End ~value:0.0 name
let instant t ~track name = record t ~track ~kind:Instant ~value:0.0 name
let sample t ~track name value = record t ~track ~kind:Sample ~value name

let capacity t = t.cap
let recorded t = Atomic.get t.cursor
let dropped t = Stdlib.max 0 (recorded t - t.cap)

let events t =
  let total = Atomic.get t.cursor in
  let kept = Stdlib.min total t.cap in
  let start = total - kept in
  List.init kept (fun i -> t.buf.((start + i) mod t.cap))

let iter f t = List.iter f (events t)

let tracks t =
  List.sort_uniq compare (List.map (fun ev -> ev.track) (events t))
