(** Causal-provenance recorder: a happens-before forest over deliveries.

    Each delivery gets a node whose id is the engine's 1-based delivery
    counter, and records the node id of the receive that caused its send
    (0 for root emissions and supervisor retransmissions) plus its causal
    depth (parent depth + 1; roots have depth 1).  Aggregates — node
    count, longest chain, per-depth counts, per-edge max depth,
    per-vertex first-receive depth — are exact; the store of individual
    nodes is sampled (countdown like the engine's receive-timing sampler)
    and capacity-bounded with an explicit [dropped] counter.

    The record is exposed concretely so engine hot paths can update the
    sampling countdown inline; treat the fields as read-only outside
    [lib/runtime], [lib/flatcore] and [lib/par]. *)

type journal = {
  j_packed : int array;  (** edge lor (parent lsl journal_shift) *)
  j_heads : int array;  (** CSR edge -> target vertex *)
  j_count : int;
  j_track : int;
}
(** A whole run's pop journal, handed over by [note_journal] and
    replayed into the aggregates lazily on first query. *)

val journal_shift : int
(** Bit position separating a journal slot's edge (low bits) from its
    run-local parent id (high bits): 31, so both must be below [2^31]. *)

type t = {
  mutable nodes : int;
  mutable max_depth : int;
  mutable deepest : int;
  mutable depth_counts : int array;
  mutable edge_max_depth : int array;
  mutable vertex_first_depth : int array;
  mutable s_id : int array;
  mutable s_parent : int array;
  mutable s_edge : int array;
  mutable s_vertex : int array;
  mutable s_depth : int array;
  mutable s_track : int array;
  mutable s_ts : float array;
  mutable stored : int;
  mutable dropped : int;
  mutable until_sample : int;
  mutable pending : journal list;
  mutable bound_nv : int;
  mutable bound_ne : int;
  sample_every : int;
  capacity : int;
  clock : unit -> float;
}

type node = {
  n_id : int;
  n_parent : int;  (** 0 = root emission / supervisor retransmission *)
  n_edge : int;  (** -1 = root emission (no edge traversed) *)
  n_vertex : int;
  n_depth : int;
  n_track : int;
  n_ts : float;
}

val create :
  ?sample_every:int ->
  ?capacity:int ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [sample_every] (default 1) stores every k-th node; [capacity]
    (default 65536) bounds the store; [clock] (default
    [Unix.gettimeofday]) timestamps stored nodes. *)

val bind : t -> n_vertices:int -> n_edges:int -> unit
(** Size the per-edge / per-vertex attribution arrays for a graph.
    Growing preserves entries, so one recorder can span a sweep.  O(1):
    allocation is deferred off the engine's timed path. *)

val note :
  t ->
  id:int ->
  parent:int ->
  depth:int ->
  edge:int ->
  vertex:int ->
  track:int ->
  unit
(** Record one delivery.  [id] is the 1-based delivery counter; [edge]
    is the dense edge index (-1 for root emissions); [track] is the obs
    track (shard) that performed the delivery. *)

val note_journal :
  t -> packed:int array -> heads:int array -> count:int -> track:int -> unit
(** Hand over a whole run's pop journal in O(1): slot [k] of [packed]
    describes node [nodes + k + 1] — its traversed edge in the low
    [journal_shift] bits and its run-local parent id above them (0 =
    root emission); the node's vertex is [heads.(edge)] and its depth
    is reconstructed as parent depth + 1.  The caller transfers
    ownership of [packed]; it is replayed into the aggregates and
    sampled store on first query, producing exactly the note stream
    inline recording would have — except that stored samples are
    timestamped at realization, not delivery.  This is how the flat
    flood fast path keeps recording off its hot loop. *)

val nodes : t -> int
val max_depth : t -> int
val stored : t -> int
val dropped : t -> int

val width : t -> int
(** Max nodes at any single depth: the causal width of the broadcast. *)

val depth_histogram : t -> int array
(** Nodes per depth; index [i] holds the count at depth [i+1]. *)

val vertex_first_depth : t -> int -> int option
(** Depth at which a vertex first received, if it ever did. *)

val critical_edges : t -> k:int -> (int * int) list
(** Top-[k] [(edge, max_depth)] pairs, depth-descending. *)

val find : t -> int -> node option
(** Look a node id up in the (sorted) store. *)

val iter_stored : t -> (node -> unit) -> unit

val critical_path : t -> node list
(** Walk parent links from the deepest node through whatever prefix of
    the chain the store retained, deepest node first.  Exact end-to-end
    when sampling is off and nothing was dropped. *)

val merge : into:t -> t -> unit
(** Fold a per-shard recorder into an aggregate one: counts sum, maxes
    max, first-depths min, stores append up to capacity (overflow counts
    as dropped) and re-sort by id. *)

val to_json : t -> string
(** RFC 8259 object with nodes/max_depth/width/dropped, the depth
    histogram, top critical edges, the reconstructed critical path,
    per-vertex depths and the stored nodes. *)
