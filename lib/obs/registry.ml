(* Named metrics with O(1) hot-path updates.  Registration (name -> cell
   lookup) takes a mutex so concurrent domains can share one registry;
   updates on the returned cells are plain (or atomic, for the [acounter]
   variant) field writes with no locking, so the per-delivery cost of an
   instrumented engine is a handful of stores.  Plain counters, gauges and
   histograms are single-writer: use them from one domain, or use
   [acounter] where several domains bump the same total. *)

type counter = { mutable c : int }
type gauge = { mutable g : int }
type acounter = int Atomic.t

let n_buckets = 65
(* Bucket [i] holds values needing exactly [i] significand bits: bucket 0
   is [v <= 0], bucket i covers [2^(i-1), 2^i - 1]. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
}

type cell =
  | C of counter
  | G of gauge
  | A of acounter
  | H of histogram

type t = { cells : (string, cell) Hashtbl.t; lock : Mutex.t }

let create () = { cells = Hashtbl.create 32; lock = Mutex.create () }

let register t name make describe =
  Mutex.lock t.lock;
  let cell =
    match Hashtbl.find_opt t.cells name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add t.cells name c;
        c
  in
  Mutex.unlock t.lock;
  match describe cell with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs.Registry: %S already registered with another kind"
           name)

let counter t name =
  register t name
    (fun () -> C { c = 0 })
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name (fun () -> G { g = 0 }) (function G g -> Some g | _ -> None)

let acounter t name =
  register t name
    (fun () -> A (Atomic.make 0))
    (function A a -> Some a | _ -> None)

let histogram t name =
  register t name
    (fun () -> H { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 })
    (function H h -> Some h | _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g
let aincr a = Atomic.incr a
let aadd a n = ignore (Atomic.fetch_and_add a n)
let avalue a = Atomic.get a

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      b := !b + 1;
      v := !v lsr 1
    done;
    Stdlib.min !b (n_buckets - 1)
  end

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = h.h_buckets.(bucket_of v) in
  h.h_buckets.(bucket_of v) <- b + 1

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

(* {1 Snapshots} *)

type entry =
  | Counter of int
  | Gauge of int
  | Histogram of { h_count : int; h_sum : int; h_buckets : (int * int) list }

type snapshot = (string * entry) list

let snapshot t =
  Mutex.lock t.lock;
  let rows =
    Hashtbl.fold
      (fun name cell acc ->
        let entry =
          match cell with
          | C c -> Counter c.c
          | G g -> Gauge g.g
          | A a -> Counter (Atomic.get a)
          | H h ->
              let buckets = ref [] in
              for i = n_buckets - 1 downto 0 do
                if h.h_buckets.(i) > 0 then
                  buckets := (i, h.h_buckets.(i)) :: !buckets
              done;
              Histogram
                { h_count = h.h_count; h_sum = h.h_sum; h_buckets = !buckets }
        in
        (name, entry) :: acc)
      t.cells []
  in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

let find snap name =
  match List.assoc_opt name snap with
  | Some (Counter v) | Some (Gauge v) -> Some v
  | Some (Histogram _) | None -> None

let find_histogram snap name =
  match List.assoc_opt name snap with
  | Some (Histogram { h_count; h_sum; h_buckets }) ->
      Some (h_count, h_sum, h_buckets)
  | _ -> None

(* Counter and histogram entries subtract ([newer - older], missing-in-older
   treated as zero); gauges keep the newer reading.  Entries only present in
   [older] are dropped: a diff describes what happened {e during} the
   window. *)
let diff ~older ~newer =
  List.map
    (fun (name, entry) ->
      match (entry, List.assoc_opt name older) with
      | Counter n, Some (Counter o) -> (name, Counter (n - o))
      | Histogram n, Some (Histogram o) ->
          let sub =
            List.filter_map
              (fun (i, c) ->
                let c' =
                  c - (try List.assoc i o.h_buckets with Not_found -> 0)
                in
                if c' <> 0 then Some (i, c') else None)
              n.h_buckets
          in
          ( name,
            Histogram
              {
                h_count = n.h_count - o.h_count;
                h_sum = n.h_sum - o.h_sum;
                h_buckets = sub;
              } )
      | e, _ -> (name, e))
    newer

(* Roll a snapshot up into another registry, each entry under [prefix ^
   name].  Counters and histogram contents {e add} (so per-session deltas
   accumulate into server-wide totals), gauges take the incoming reading.
   Registration is idempotent — merging the same names again reuses the
   existing cells — and a prefixed name already registered with another
   kind raises [Invalid_argument], exactly like direct registration.

   Cell updates here are plain stores: concurrent merges into one registry
   must be serialized by the caller (the serve layer holds one rollup lock
   across each merge). *)
let merge ~into ?(prefix = "") snap =
  List.iter
    (fun (name, entry) ->
      let name = prefix ^ name in
      match entry with
      | Counter v -> add (counter into name) v
      | Gauge v -> set (gauge into name) v
      | Histogram { h_count; h_sum; h_buckets } ->
          let h =
            register into name
              (fun () ->
                H { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 })
              (function H h -> Some h | _ -> None)
          in
          h.h_count <- h.h_count + h_count;
          h.h_sum <- h.h_sum + h_sum;
          List.iter
            (fun (i, c) ->
              if i >= 0 && i < n_buckets then
                h.h_buckets.(i) <- h.h_buckets.(i) + c)
            h_buckets)
    snap

let to_json snap =
  let b = Buffer.create 512 in
  let section kind keep emit =
    let rows = List.filter (fun (_, e) -> keep e) snap in
    Buffer.add_char b '"';
    Buffer.add_string b kind;
    Buffer.add_string b "\":{";
    List.iteri
      (fun i (name, e) ->
        if i > 0 then Buffer.add_char b ',';
        Json.buf_string b name;
        Buffer.add_char b ':';
        emit e)
      rows;
    Buffer.add_char b '}'
  in
  Buffer.add_char b '{';
  section "counters"
    (function Counter _ -> true | _ -> false)
    (function Counter v -> Buffer.add_string b (string_of_int v) | _ -> ());
  Buffer.add_char b ',';
  section "gauges"
    (function Gauge _ -> true | _ -> false)
    (function Gauge v -> Buffer.add_string b (string_of_int v) | _ -> ());
  Buffer.add_char b ',';
  section "histograms"
    (function Histogram _ -> true | _ -> false)
    (function
      | Histogram { h_count; h_sum; h_buckets } ->
          Printf.bprintf b "{\"count\":%d,\"sum\":%d,\"buckets\":{" h_count h_sum;
          List.iteri
            (fun i (bi, c) ->
              if i > 0 then Buffer.add_char b ',';
              Printf.bprintf b "\"%d\":%d" bi c)
            h_buckets;
          Buffer.add_string b "}}"
      | _ -> ());
  Buffer.add_char b '}';
  Buffer.contents b
