(** Minimal JSON emission and validation helpers.

    This is the single home of the RFC 8259 string-escaping rules for every
    JSON producer in the tree ({!Export}, {!Registry.to_json},
    [Runtime.Campaign.to_json], the model-checking report of
    [bench -- check]); callers compose objects by hand, which keeps the
    output byte-stable for diffing.  [Runtime.Json] re-exports this module,
    so existing [Runtime.Json.*] call sites are unaffected. *)

val buf_string : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal: surrounding quotes, with quote,
    backslash and all control characters below U+0020 escaped. *)

val buf_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** [buf_list b f xs] appends [\[f x1, f x2, ...\]]. *)

val buf_int_list : Buffer.t -> int list -> unit

val buf_float : Buffer.t -> float -> unit
(** Append a float as a legal JSON number: integers without a fraction,
    everything else via [%.6g]; non-finite values degrade to [0] (JSON has
    no [nan]/[inf] tokens). *)

val escape : string -> string
(** [escape s] is the JSON string literal for [s], quotes included. *)

val validate : string -> (unit, int) result
(** Structural well-formedness check of one complete JSON document
    (trailing whitespace allowed, trailing garbage not).  [Error pos] gives
    the byte offset of the first offence.  Builds no document tree. *)

val valid : string -> bool
