(** Minimal JSON emission and validation helpers.

    This is the single home of the RFC 8259 string-escaping rules for every
    JSON producer in the tree ({!Export}, {!Registry.to_json},
    [Runtime.Campaign.to_json], the model-checking report of
    [bench -- check]); callers compose objects by hand, which keeps the
    output byte-stable for diffing.  [Runtime.Json] re-exports this module,
    so existing [Runtime.Json.*] call sites are unaffected. *)

val buf_string : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal: surrounding quotes, with quote,
    backslash and all control characters below U+0020 escaped. *)

val buf_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** [buf_list b f xs] appends [\[f x1, f x2, ...\]]. *)

val buf_int_list : Buffer.t -> int list -> unit

val buf_float : Buffer.t -> float -> unit
(** Append a float as a legal JSON number: integers without a fraction,
    everything else via [%.6g]; non-finite values degrade to [0] (JSON has
    no [nan]/[inf] tokens). *)

val escape : string -> string
(** [escape s] is the JSON string literal for [s], quotes included. *)

val to_channel : out_channel -> (Buffer.t -> unit) -> unit
(** [to_channel oc emit] renders [emit] into a scratch buffer, writes the
    result to [oc] as one newline-terminated line and flushes — the NDJSON
    framing discipline of [anonet serve].  Rendering before writing keeps a
    raising emitter from leaving a torn frame on the wire. *)

val validate : string -> (unit, int) result
(** Structural well-formedness check of one complete JSON document
    (trailing whitespace allowed, trailing garbage not).  [Error pos] gives
    the byte offset of the first offence.  Builds no document tree. *)

val valid : string -> bool

(** {1 Documents}

    A full parser for the serving layer's request side.  Same grammar as
    {!validate}; numbers keep their source lexeme, so {!to_string} of a
    parsed document never respells a number. *)

type value =
  | Null
  | Bool of bool
  | Number of string  (** The unconverted source lexeme. *)
  | String of string  (** Escapes decoded ([\uXXXX] re-encoded as UTF-8). *)
  | Array of value list
  | Object of (string * value) list  (** Members in source order. *)

val parse : string -> (value, int) result
(** One complete document; [Error pos] as in {!validate}. *)

val to_string : value -> string
(** Compact serialization: member order preserved, strings re-escaped with
    {!buf_string}, number lexemes verbatim. *)

val buf_value : Buffer.t -> value -> unit

val member : string -> value -> value option
(** Object member by key ([None] on non-objects too). *)

val to_int_opt : value -> int option
val to_float_opt : value -> float option
val to_string_opt : value -> string option
val to_bool_opt : value -> bool option
