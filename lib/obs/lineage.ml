(* Causal-provenance recorder: a happens-before forest over deliveries.

   Every delivery (pop) gets a node whose id is the engine's 1-based
   delivery counter — identical across the classic and flat engines for
   the same schedule, which is what makes lineage parity testable
   byte-for-byte.  Each message copy carries the node id of the receive
   that caused its send (its parent) and its causal depth (parent depth
   + 1; root emissions have depth 1), so every aggregate below is O(1)
   per delivery with no lookups:

   - [nodes], [max_depth]/[deepest]: longest causal chain, the quantity
     the paper's round bounds speak about.
   - [depth_counts]: nodes per depth — the per-chain-length histogram;
     its max is the causal width (peak parallelism of the broadcast).
   - [edge_max_depth]: deepest delivery seen per edge; sorting gives the
     top-k critical edges.
   - [vertex_first_depth]: depth at which each vertex first received —
     the per-vertex "round number".

   The *store* of individual nodes (for flow events and critical-path
   reconstruction) is sampled with a countdown ref like the engine's
   receive-timing sampler, and capacity-bounded: once full, sampled
   nodes bump [dropped] instead.  Aggregates are always exact; only the
   store is lossy.  Ids enter in strictly increasing order, so parent
   lookups are binary searches. *)

(* A pop journal handed over wholesale by an engine: slot [k] packs the
   traversed edge in the low [journal_shift] bits and the run-local
   parent id above them, so the engine's own edge ring doubles as the
   journal with no extra arrays or stores.  Depths are reconstructed at
   replay (parent depth + 1; a parent always pops before its children
   push, so the scan below is single-pass).  Kept pending and replayed
   into the aggregates on first query ([realize]). *)
type journal = {
  j_packed : int array;  (* edge lor (parent lsl journal_shift) *)
  j_heads : int array;  (* CSR edge -> target vertex *)
  j_count : int;
  j_track : int;
}

let journal_shift = 31
let journal_mask = (1 lsl journal_shift) - 1

type t = {
  mutable nodes : int;
  mutable max_depth : int;
  mutable deepest : int;  (* node id of the first deepest node; 0 = none *)
  mutable depth_counts : int array;  (* index = depth; grows on demand *)
  mutable edge_max_depth : int array;  (* sized by [bind]; 0 = unseen *)
  mutable vertex_first_depth : int array;  (* sized by [bind]; -1 = never *)
  (* Sampled node store, parallel arrays, filled [0, stored). *)
  mutable s_id : int array;
  mutable s_parent : int array;
  mutable s_edge : int array;
  mutable s_vertex : int array;
  mutable s_depth : int array;
  mutable s_track : int array;
  mutable s_ts : float array;
  mutable stored : int;
  mutable dropped : int;  (* sampled but thrown away: store full *)
  mutable until_sample : int;
  mutable pending : journal list;  (* newest first; drained by [realize] *)
  (* Attribution-array sizes promised by [bind]; allocation is deferred
     to [realize] so binding inside a timed engine run stays O(1). *)
  mutable bound_nv : int;
  mutable bound_ne : int;
  sample_every : int;
  capacity : int;
  clock : unit -> float;
}

type node = {
  n_id : int;
  n_parent : int;  (* 0 = root emission / supervisor retransmission *)
  n_edge : int;  (* -1 = root emission (no edge traversed) *)
  n_vertex : int;
  n_depth : int;
  n_track : int;
  n_ts : float;
}

let create ?(sample_every = 1) ?(capacity = 1 lsl 16) ?clock () =
  if sample_every < 1 then invalid_arg "Lineage.create: sample_every < 1";
  if capacity < 1 then invalid_arg "Lineage.create: capacity < 1";
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  {
    nodes = 0;
    max_depth = 0;
    deepest = 0;
    depth_counts = Array.make 64 0;
    edge_max_depth = [||];
    vertex_first_depth = [||];
    s_id = Array.make (min capacity 1024) 0;
    s_parent = Array.make (min capacity 1024) 0;
    s_edge = Array.make (min capacity 1024) 0;
    s_vertex = Array.make (min capacity 1024) 0;
    s_depth = Array.make (min capacity 1024) 0;
    s_track = Array.make (min capacity 1024) 0;
    s_ts = Array.make (min capacity 1024) 0.0;
    stored = 0;
    dropped = 0;
    until_sample = 1;
    pending = [];
    bound_nv = 0;
    bound_ne = 0;
    sample_every;
    capacity;
    clock;
  }

let grow_to a n fill =
  if Array.length a >= n then a
  else begin
    let b = Array.make n fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* Size the per-edge/per-vertex attribution arrays for a graph.  Growing
   preserves existing entries so one recorder can span a sweep of runs
   over same-shaped graphs.  O(1): allocation happens in [realize]. *)
let bind t ~n_vertices ~n_edges =
  if n_vertices > t.bound_nv then t.bound_nv <- n_vertices;
  if n_edges > t.bound_ne then t.bound_ne <- n_edges

let grow_store t =
  let cur = Array.length t.s_id in
  let n = min t.capacity (max 1024 (2 * cur)) in
  if n > cur then begin
    t.s_id <- grow_to t.s_id n 0;
    t.s_parent <- grow_to t.s_parent n 0;
    t.s_edge <- grow_to t.s_edge n 0;
    t.s_vertex <- grow_to t.s_vertex n 0;
    t.s_depth <- grow_to t.s_depth n 0;
    t.s_track <- grow_to t.s_track n 0;
    t.s_ts <- grow_to t.s_ts n 0.0
  end

(* Record one delivery.  Hot path: straight-line int updates; the clock
   only runs for the sampled minority that lands in the store. *)
let note_raw t ~id ~parent ~depth ~edge ~vertex ~track =
  t.nodes <- t.nodes + 1;
  if depth > t.max_depth then begin
    t.max_depth <- depth;
    t.deepest <- id
  end;
  if depth >= Array.length t.depth_counts then
    t.depth_counts <-
      grow_to t.depth_counts (max (depth + 1) (2 * Array.length t.depth_counts)) 0;
  Array.unsafe_set t.depth_counts depth
    (Array.unsafe_get t.depth_counts depth + 1);
  if edge >= 0 && edge < Array.length t.edge_max_depth
     && depth > Array.unsafe_get t.edge_max_depth edge
  then Array.unsafe_set t.edge_max_depth edge depth;
  if vertex >= 0 && vertex < Array.length t.vertex_first_depth
     && Array.unsafe_get t.vertex_first_depth vertex < 0
  then Array.unsafe_set t.vertex_first_depth vertex depth;
  t.until_sample <- t.until_sample - 1;
  if t.until_sample <= 0 then begin
    t.until_sample <- t.sample_every;
    if t.stored >= Array.length t.s_id then grow_store t;
    if t.stored < Array.length t.s_id then begin
      let i = t.stored in
      t.s_id.(i) <- id;
      t.s_parent.(i) <- parent;
      t.s_edge.(i) <- edge;
      t.s_vertex.(i) <- vertex;
      t.s_depth.(i) <- depth;
      t.s_track.(i) <- track;
      t.s_ts.(i) <- t.clock ();
      t.stored <- i + 1
    end
    else t.dropped <- t.dropped + 1
  end

(* Replaying a journal produces the exact note stream inline recording
   would have (same ids, aggregates and sampled store) — only the
   stored samples' timestamps collapse to realization time. *)
let apply_journal t j =
  let base = t.nodes in
  let nh = Array.length j.j_heads in
  let dep = Array.make (max j.j_count 1) 0 in
  for k = 0 to j.j_count - 1 do
    let packed = Array.unsafe_get j.j_packed k in
    let e = packed land journal_mask in
    let p = packed asr journal_shift in
    let depth = if p = 0 then 1 else Array.unsafe_get dep (p - 1) + 1 in
    Array.unsafe_set dep k depth;
    let v = if e < nh then Array.unsafe_get j.j_heads e else -1 in
    note_raw t ~id:(base + k + 1)
      ~parent:(if p = 0 then 0 else base + p)
      ~depth ~edge:e ~vertex:v ~track:j.j_track
  done

let realize t =
  if Array.length t.edge_max_depth < t.bound_ne then
    t.edge_max_depth <- grow_to t.edge_max_depth t.bound_ne 0;
  if Array.length t.vertex_first_depth < t.bound_nv then
    t.vertex_first_depth <- grow_to t.vertex_first_depth t.bound_nv (-1);
  match t.pending with
  | [] -> ()
  | js ->
      t.pending <- [];
      List.iter (apply_journal t) (List.rev js)

let note t ~id ~parent ~depth ~edge ~vertex ~track =
  realize t;
  note_raw t ~id ~parent ~depth ~edge ~vertex ~track

(* Hand over a whole run's pop journal in O(1).  The caller transfers
   ownership of [packed] (the flood engine's ring is dead once the run
   returns); it is replayed lazily on first query so the run itself
   pays nothing per delivery beyond the pack. *)
let note_journal t ~packed ~heads ~count ~track =
  t.pending <-
    { j_packed = packed; j_heads = heads; j_count = count; j_track = track }
    :: t.pending

(* {1 Queries} *)

let nodes t =
  realize t;
  t.nodes

let max_depth t =
  realize t;
  t.max_depth

let stored t =
  realize t;
  t.stored

let dropped t =
  realize t;
  t.dropped

let width t =
  realize t;
  Array.fold_left max 0 t.depth_counts

(* Nodes per depth, depths 1..max_depth. *)
let depth_histogram t =
  realize t;
  Array.init t.max_depth (fun i -> t.depth_counts.(i + 1))

let vertex_first_depth t v =
  realize t;
  if v >= 0 && v < Array.length t.vertex_first_depth then
    let d = t.vertex_first_depth.(v) in
    if d < 0 then None else Some d
  else None

(* Top-k edges by deepest delivery, depth-descending (edge-ascending to
   break ties deterministically). *)
let critical_edges t ~k =
  realize t;
  let all = ref [] in
  for e = Array.length t.edge_max_depth - 1 downto 0 do
    if t.edge_max_depth.(e) > 0 then all := (e, t.edge_max_depth.(e)) :: !all
  done;
  let sorted =
    List.stable_sort (fun (_, d1) (_, d2) -> compare d2 d1) !all
  in
  let rec take k = function
    | [] -> []
    | _ when k <= 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take k sorted

(* Binary search the store for a node id (ids are strictly increasing in
   each single-engine run; [merge] re-sorts). *)
let find t id =
  realize t;
  let lo = ref 0 and hi = ref (t.stored - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.s_id.(mid) in
    if v = id then begin
      found := mid;
      lo := !hi + 1
    end
    else if v < id then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then None
  else
    let i = !found in
    Some
      {
        n_id = t.s_id.(i);
        n_parent = t.s_parent.(i);
        n_edge = t.s_edge.(i);
        n_vertex = t.s_vertex.(i);
        n_depth = t.s_depth.(i);
        n_track = t.s_track.(i);
        n_ts = t.s_ts.(i);
      }

let iter_stored t f =
  realize t;
  for i = 0 to t.stored - 1 do
    f
      {
        n_id = t.s_id.(i);
        n_parent = t.s_parent.(i);
        n_edge = t.s_edge.(i);
        n_vertex = t.s_vertex.(i);
        n_depth = t.s_depth.(i);
        n_track = t.s_track.(i);
        n_ts = t.s_ts.(i);
      }
  done

(* Walk parent links from the deepest node through whatever prefix of
   the chain the store retained — exact end-to-end when sampling is off
   and nothing was dropped.  Deepest-first order. *)
let critical_path t =
  realize t;
  let rec walk acc id =
    if id <= 0 then List.rev acc
    else
      match find t id with
      | None -> List.rev acc
      | Some n -> walk (n :: acc) n.n_parent
  in
  walk [] t.deepest

(* {1 Merge} (for per-shard recorders)

   Aggregates combine exactly (sums / maxes / min-first); stores append
   up to capacity then re-sort by id so [find] keeps working. *)

let merge ~into:a b =
  realize a;
  realize b;
  a.nodes <- a.nodes + b.nodes;
  if b.max_depth > a.max_depth then begin
    a.max_depth <- b.max_depth;
    a.deepest <- b.deepest
  end;
  let dlen = max (Array.length a.depth_counts) (Array.length b.depth_counts) in
  a.depth_counts <- grow_to a.depth_counts dlen 0;
  Array.iteri
    (fun i c -> if c > 0 then a.depth_counts.(i) <- a.depth_counts.(i) + c)
    b.depth_counts;
  let elen =
    max (Array.length a.edge_max_depth) (Array.length b.edge_max_depth)
  in
  a.edge_max_depth <- grow_to a.edge_max_depth elen 0;
  Array.iteri
    (fun e d -> if d > a.edge_max_depth.(e) then a.edge_max_depth.(e) <- d)
    b.edge_max_depth;
  let vlen =
    max (Array.length a.vertex_first_depth) (Array.length b.vertex_first_depth)
  in
  a.vertex_first_depth <- grow_to a.vertex_first_depth vlen (-1);
  Array.iteri
    (fun v d ->
      if d >= 0 then
        let cur = a.vertex_first_depth.(v) in
        if cur < 0 || d < cur then a.vertex_first_depth.(v) <- d)
    b.vertex_first_depth;
  a.dropped <- a.dropped + b.dropped;
  let room = a.capacity - a.stored in
  let take = min room b.stored in
  if take > 0 then begin
    if a.stored + take > Array.length a.s_id then begin
      let n = min a.capacity (a.stored + take) in
      a.s_id <- grow_to a.s_id n 0;
      a.s_parent <- grow_to a.s_parent n 0;
      a.s_edge <- grow_to a.s_edge n 0;
      a.s_vertex <- grow_to a.s_vertex n 0;
      a.s_depth <- grow_to a.s_depth n 0;
      a.s_track <- grow_to a.s_track n 0;
      a.s_ts <- grow_to a.s_ts n 0.0
    end;
    Array.blit b.s_id 0 a.s_id a.stored take;
    Array.blit b.s_parent 0 a.s_parent a.stored take;
    Array.blit b.s_edge 0 a.s_edge a.stored take;
    Array.blit b.s_vertex 0 a.s_vertex a.stored take;
    Array.blit b.s_depth 0 a.s_depth a.stored take;
    Array.blit b.s_track 0 a.s_track a.stored take;
    Array.blit b.s_ts 0 a.s_ts a.stored take;
    a.stored <- a.stored + take
  end;
  a.dropped <- a.dropped + (b.stored - take);
  (* Re-sort the parallel arrays by id so binary search survives. *)
  let idx = Array.init a.stored (fun i -> i) in
  Array.sort (fun i j -> compare a.s_id.(i) a.s_id.(j)) idx;
  let permute src = Array.init a.stored (fun i -> src.(idx.(i))) in
  let id' = permute a.s_id
  and pa' = permute a.s_parent
  and ed' = permute a.s_edge
  and vx' = permute a.s_vertex
  and dp' = permute a.s_depth
  and tr' = permute a.s_track in
  let ts' = Array.init a.stored (fun i -> a.s_ts.(idx.(i))) in
  Array.blit id' 0 a.s_id 0 a.stored;
  Array.blit pa' 0 a.s_parent 0 a.stored;
  Array.blit ed' 0 a.s_edge 0 a.stored;
  Array.blit vx' 0 a.s_vertex 0 a.stored;
  Array.blit dp' 0 a.s_depth 0 a.stored;
  Array.blit tr' 0 a.s_track 0 a.stored;
  Array.blit ts' 0 a.s_ts 0 a.stored

(* {1 JSON export}

   Shape:
   { "nodes": N, "max_depth": D, "deepest": id, "width": W,
     "stored": S, "dropped": K, "sample_every": E, "capacity": C,
     "depth_counts": [c1, ..., cD],            // index 0 = depth 1
     "critical_edges": [[edge, depth], ...],   // top 16, depth desc
     "critical_path": [[id, parent, edge, vertex, depth], ...],
     "vertex_depths": [d0, d1, ...],           // -1 = never received
     "nodes_stored": [[id, parent, edge, vertex, depth, track, ts], ...] }

   Validated by [Obs.Json.validate] in tests and CI. *)
let to_json t =
  realize t;
  let b = Buffer.create 4096 in
  let bp fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bp "{\"nodes\":%d,\"max_depth\":%d,\"deepest\":%d,\"width\":%d," t.nodes
    t.max_depth t.deepest (width t);
  bp "\"stored\":%d,\"dropped\":%d,\"sample_every\":%d,\"capacity\":%d,"
    t.stored t.dropped t.sample_every t.capacity;
  Buffer.add_string b "\"depth_counts\":[";
  let hist = depth_histogram t in
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      bp "%d" c)
    hist;
  Buffer.add_string b "],\"critical_edges\":[";
  List.iteri
    (fun i (e, d) ->
      if i > 0 then Buffer.add_char b ',';
      bp "[%d,%d]" e d)
    (critical_edges t ~k:16);
  Buffer.add_string b "],\"critical_path\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      bp "[%d,%d,%d,%d,%d]" n.n_id n.n_parent n.n_edge n.n_vertex n.n_depth)
    (critical_path t);
  Buffer.add_string b "],\"vertex_depths\":[";
  Array.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      bp "%d" d)
    t.vertex_first_depth;
  Buffer.add_string b "],\"nodes_stored\":[";
  for i = 0 to t.stored - 1 do
    if i > 0 then Buffer.add_char b ',';
    bp "[%d,%d,%d,%d,%d,%d,%.6f]" t.s_id.(i) t.s_parent.(i) t.s_edge.(i)
      t.s_vertex.(i) t.s_depth.(i) t.s_track.(i) t.s_ts.(i)
  done;
  Buffer.add_string b "]}";
  Buffer.contents b
