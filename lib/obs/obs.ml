(** Telemetry for the execution backends.

    - {!Registry} — named counters / gauges / log₂ histograms with O(1)
      hot-path updates and deterministic JSON-able snapshots;
    - {!Timeline} — begin/end spans, instants and counter samples over a
      bounded ring buffer, with per-domain tracks;
    - {!Export} — Chrome trace-event JSON (Perfetto) and CSV;
    - {!Lineage} — causal-provenance forest over deliveries (parent
      delivery ids, critical-path depth, per-edge/per-vertex
      attribution), threaded through the engines via [?lineage];
    - {!Json} — the tree's shared JSON emission/validation helpers
      (re-exported as [Runtime.Json]).

    An {!t} bundles one registry and one timeline with a sampling period;
    pass it as the [?obs] argument of [Runtime.Engine.Make.run],
    [Runtime.Explore.Make.explore] or [Par.Engine.Make.run] and the backend
    streams its internal state into it. *)

module Json = Json
module Registry = Registry
module Timeline = Timeline
module Export = Export
module Lineage = Lineage

type t = {
  registry : Registry.t;
  timeline : Timeline.t;
  sample_every : int;
      (** Instrumented backends emit timeline samples every [sample_every]
          deliveries (or transitions); counters are exact regardless. *)
}

let create ?(sample_every = 256) ?clock ?(capacity = 1 lsl 16) () =
  if sample_every < 1 then invalid_arg "Obs.create: sample_every < 1";
  {
    registry = Registry.create ();
    timeline = Timeline.create ?clock ~capacity ();
    sample_every;
  }
