(* Exporters for the timeline and registry.  The Chrome trace-event format
   (the JSON array flavour, wrapped in {"traceEvents": [...]}) loads
   directly in Perfetto (ui.perfetto.dev) and chrome://tracing; timestamps
   are microseconds, [pid]/[tid] map to process 0 / the event's track. *)

let ph_of = function
  | Timeline.Begin -> "B"
  | Timeline.End -> "E"
  | Timeline.Instant -> "i"
  | Timeline.Sample -> "C"

let buf_trace_event b (ev : Timeline.event) =
  Buffer.add_string b "{\"name\":";
  Json.buf_string b ev.name;
  Printf.bprintf b ",\"ph\":\"%s\",\"ts\":" (ph_of ev.kind);
  Json.buf_float b (ev.ts *. 1e6);
  Printf.bprintf b ",\"pid\":0,\"tid\":%d" ev.track;
  (match ev.kind with
  | Timeline.Instant -> Buffer.add_string b ",\"s\":\"t\""
  | Timeline.Sample ->
      Buffer.add_string b ",\"args\":{\"value\":";
      Json.buf_float b ev.value;
      Buffer.add_string b "}"
  | Timeline.Begin | Timeline.End -> ());
  Buffer.add_char b '}'

(* Flow events pair a "s" (start, anchored at the parent delivery) with
   an "f" "bp":"e" (finish, at the child), sharing one numeric id — the
   child's lineage node id, which is unique per trace.  Both halves are
   emitted together from the child's store entry, so every start has a
   matching finish by construction; nodes whose parent never made the
   sampled store are skipped rather than emitted dangling. *)
let buf_flow_events b (lin : Lineage.t) =
  Lineage.iter_stored lin (fun (n : Lineage.node) ->
      if n.Lineage.n_parent > 0 then
        match Lineage.find lin n.Lineage.n_parent with
        | None -> ()
        | Some p ->
            Printf.bprintf b
              ",{\"name\":\"lineage\",\"cat\":\"lineage\",\"ph\":\"s\",\"id\":%d,\"ts\":"
              n.Lineage.n_id;
            Json.buf_float b (p.Lineage.n_ts *. 1e6);
            Printf.bprintf b ",\"pid\":0,\"tid\":%d}" p.Lineage.n_track;
            Printf.bprintf b
              ",{\"name\":\"lineage\",\"cat\":\"lineage\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":"
              n.Lineage.n_id;
            Json.buf_float b (n.Lineage.n_ts *. 1e6);
            Printf.bprintf b ",\"pid\":0,\"tid\":%d}" n.Lineage.n_track)

let chrome_trace ?(process_name = "anonet") ?lineage tl =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":";
  Json.buf_string b process_name;
  Buffer.add_string b "}}";
  Timeline.iter
    (fun ev ->
      Buffer.add_char b ',';
      buf_trace_event b ev)
    tl;
  (match lineage with None -> () | Some lin -> buf_flow_events b lin);
  Buffer.add_string b "]";
  Printf.bprintf b ",\"otherData\":{\"dropped\":\"%d\"" (Timeline.dropped tl);
  (match lineage with
  | None -> ()
  | Some lin ->
      Printf.bprintf b ",\"lineage_dropped\":\"%d\"" (Lineage.dropped lin));
  Buffer.add_string b "}}";
  Buffer.contents b

let kind_name = function
  | Timeline.Begin -> "begin"
  | Timeline.End -> "end"
  | Timeline.Instant -> "instant"
  | Timeline.Sample -> "sample"

(* One row per retained event; [Sample] rows carry the series value, span
   markers a 0.  A flat file that loads in any spreadsheet / dataframe.
   The leading [#]-comment line surfaces how many events the ring
   overwrote — without it a truncated export is indistinguishable from a
   short run. *)
let timeline_csv tl =
  let b = Buffer.create 1024 in
  Printf.bprintf b "# dropped=%d\n" (Timeline.dropped tl);
  Buffer.add_string b "ts_s,track,kind,name,value\n";
  Timeline.iter
    (fun (ev : Timeline.event) ->
      Printf.bprintf b "%.6f,%d,%s," ev.ts ev.track (kind_name ev.kind);
      (* Quote the name if it could break the row. *)
      if String.exists (fun c -> c = ',' || c = '"' || c = '\n') ev.name then begin
        Buffer.add_char b '"';
        String.iter
          (fun c ->
            if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
          ev.name;
        Buffer.add_char b '"'
      end
      else Buffer.add_string b ev.name;
      Buffer.add_char b ',';
      Json.buf_float b ev.value;
      Buffer.add_char b '\n')
    tl;
  Buffer.contents b

let metrics_json ?(meta = []) snap =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iter
    (fun (k, v) ->
      Json.buf_string b k;
      Buffer.add_char b ':';
      Json.buf_string b v;
      Buffer.add_char b ',')
    meta;
  Buffer.add_string b "\"metrics\":";
  Buffer.add_string b (Registry.to_json snap);
  Buffer.add_char b '}';
  Buffer.contents b
