(** Topology mapping over general directed anonymous networks.

    The paper's conclusion observes that once unique labels exist one "can
    even map the whole topology by flooding local information available to
    nodes".  This module realizes that program as a single protocol, still
    within the anonymous model of Section 2:

    - run the labeling protocol of Section 5 unchanged ([alpha]/[beta]
      commodity, canonical [d+1]-partition, label = part 0);
    - every message additionally carries the sender's label and out-port,
      so a receiver learns, per in-port, which labeled vertex feeds it;
    - when both endpoints of an edge know their labels, the receiving
      endpoint mints an {e adjacency fact} [(src label, src port, dst label,
      dst port)]; newly labeled vertices also mint an {e announcement}
      [(label, out-degree, in-degree)];
    - announcements and facts flood monotonically, exactly like [beta].

    The terminal accepts when (a) the labeling predicate holds
    ([alpha union beta = \[0,1)]), (b) it knows exactly one edge out of the
    root, and (c) for every announced vertex it holds as many facts as that
    vertex announced out-edges.  At that point {!extract_map} rebuilds the
    entire port-numbered network — provably isomorphic to the ground truth,
    which the test-suite checks via {!map_isomorphic}. *)

module I = Intervals.Interval

type sender_id = Root | Labeled of I.t

type announcement = { ann_who : sender_id; ann_out : int; ann_in : int }
(** Degree announcement flooded by every labeled vertex; the root's own
    announcement rides on its initial messages (it is what lets the
    terminal handle multi-out-degree roots). *)

type fact = { src : sender_id; src_port : int; dst : I.t; dst_port : int }

include Runtime.Protocol_intf.CHECKABLE

val vertex_label : state -> I.t option
(** The single-interval label this vertex kept, once initialized. *)

val announcements : state -> announcement list
val facts : state -> fact list

type network_map = {
  graph : Digraph.t;  (** Reconstructed network, with [s = 0] and [t] last. *)
  labels : I.t option array;  (** Per reconstructed vertex id; [None] for [s] and [t]. *)
}

val extract_map : state -> (network_map, string) result
(** Rebuild the network from the terminal's final state.  Fails with a
    description when called on a non-accepting state. *)

val map_isomorphic : network_map -> Digraph.t -> bool
(** Does the reconstruction match the ground-truth network up to the (only
    possible) port-preserving relabeling? *)
