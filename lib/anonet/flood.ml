type state = { received : bool }
type message = Token

let name = "flood"

let initial_state ~out_degree:_ ~in_degree:_ = { received = false }

let root_emit ~out_degree = List.init out_degree (fun j -> (j, Token))

let receive ~out_degree ~in_degree:_ state Token ~in_port:_ =
  if state.received then (state, [])
  else ({ received = true }, List.init out_degree (fun j -> (j, Token)))

let accepting _ = false

let encode w Token = Bitio.Bit_writer.bit w true

let decode r =
  let (_ : bool) = Bitio.Bit_reader.bit r in
  Token

let equal_message Token Token = true

let state_bits _ = 1

let pp_message fmt Token = Format.pp_print_string fmt "token"

let pp_state fmt st =
  Format.pp_print_string fmt (if st.received then "received" else "idle")

let digest st = if st.received then "1" else "0"

(* Flooding duplicates the token freely: there is no conserved commodity,
   and (by design) no termination — [accepting] is constantly false. *)
let conservation = None
let vertex_invariant = None

let received st = st.received
