module Make (C : Commodity.S) = struct
  type state = { acc : C.t; heard : int }
  type message = C.t

  let name = "dag-broadcast/" ^ C.name

  let initial_state ~out_degree:_ ~in_degree:_ = { acc = C.zero; heard = 0 }

  let root_emit ~out_degree =
    if out_degree = 0 then []
    else List.mapi (fun j v -> (j, v)) (C.split C.unit_commodity out_degree)

  let receive ~out_degree ~in_degree state x ~in_port:_ =
    let state = { acc = C.add state.acc x; heard = state.heard + 1 } in
    let sends =
      if state.heard = in_degree && out_degree > 0 then
        List.mapi (fun j v -> (j, v)) (C.split state.acc out_degree)
      else []
    in
    (state, sends)

  let accepting state = C.is_unit state.acc

  let encode = C.encode
  let decode = C.decode
  let equal_message = C.equal

  let state_bits st = C.bit_size st.acc + 32

  let pp_message = C.pp

  let pp_state fmt st =
    Format.fprintf fmt "acc=%s heard=%d" (C.to_string st.acc) st.heard

  (* [heard] gates forwarding, so it is behavioral and must fingerprint. *)
  let digest st = C.to_string st.acc ^ "@" ^ string_of_int st.heard

  (* The Section 3.3 cut: a vertex holds its accumulated commodity until the
     [heard = in_degree] flush re-emits all of it; sinks absorb forever. *)
  let conservation =
    Some
      (Runtime.Protocol_intf.Conservation
         {
           zero = C.zero;
           add = C.add;
           of_message = (fun x -> x);
           retained =
             (fun ~out_degree ~in_degree st ->
               if out_degree = 0 || st.heard < in_degree then st.acc else C.zero);
           check =
             (fun total ->
               if C.is_unit total then Ok ()
               else Error (Printf.sprintf "cut total %s <> 1" (C.to_string total)));
         })

  (* On a DAG each in-edge carries exactly one message. *)
  let vertex_invariant =
    Some (fun ~out_degree:_ ~in_degree st -> st.heard <= in_degree)

  let accumulated st = st.acc
  let heard st = st.heard
end
