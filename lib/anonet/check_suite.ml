module F = Digraph.Families

type case = {
  c_protocol : string;
  c_family : string;
  c_edges : int;
  c_graph : Digraph.t;
  c_explore :
    ?max_states:int ->
    ?max_depth:int ->
    ?walks:int ->
    ?obs:Obs.t ->
    unit ->
    Runtime.Explore.result;
  c_replay : ?engine:Flatcore.kind -> int list -> Runtime.Explore.replay;
}

let make (module P : Runtime.Protocol_intf.CHECKABLE) ~family g =
  let module X = Runtime.Explore.Make (P) in
  let module Fl = Flatcore.Engine.Make (P) in
  {
    c_protocol = P.name;
    c_family = family;
    c_edges = Digraph.n_edges g;
    c_graph = g;
    c_explore =
      (fun ?max_states ?max_depth ?walks ?obs () ->
        X.explore ?max_states ?max_depth ?walks ?obs g);
    c_replay =
      (fun ?(engine = Flatcore.Classic) schedule ->
        match engine with
        | Flatcore.Classic -> X.replay g schedule
        | Flatcore.Flat -> X.replay ~engine:(module Fl) g schedule);
  }

(* The graph classes a protocol's correctness theorem quantifies over.
   Every family here is deterministic, so the suite is reproducible. *)
let grounded_trees () =
  [
    ("path:2", F.path 2);
    ("path:3", F.path 3);
    ("comb:3", F.comb 3);
    ("comb:4", F.comb 4);
    ("full-tree:1x2", F.full_tree ~height:1 ~degree:2);
    ("full-tree:1x3", F.full_tree ~height:1 ~degree:3);
    ("pruned-tree:2x2", F.pruned_tree ~height:2 ~degree:2);
  ]

let dags () =
  grounded_trees ()
  @ [ ("diamond", F.diamond ()); ("grid:2x2", F.grid_dag ~rows:2 ~cols:2) ]

let digraphs () =
  dags ()
  @ [
      ("cycle:3", F.cycle_with_exit ~k:3);
      ("cycle:4", F.cycle_with_exit ~k:4);
      ("figure-eight", F.figure_eight ());
    ]

let shortname = function
  | "scalar-broadcast/pow2-dyadic" -> "tree"
  | "scalar-broadcast/even-rational" -> "tree-naive"
  | "dag-broadcast/pow2-dyadic" -> "dag"
  | "general-broadcast" -> "general"
  | n -> n

(* Instantiated here (rather than referencing the {!Anonet} facade, which
   sits above this module in the dependency order). *)
module Tree_impl = Scalar_broadcast.Make (Commodity.Pow2_dyadic)
module Tree_naive_impl = Scalar_broadcast.Make (Commodity.Even_rational)
module Dag_impl = Dag_broadcast.Make (Commodity.Pow2_dyadic)

let protocols () :
    (string
    * [ `Trees | `Dags | `Digraphs ]
    * (module Runtime.Protocol_intf.CHECKABLE))
    list =
  [
    ("tree", `Trees, (module Tree_impl));
    ("tree-naive", `Trees, (module Tree_naive_impl));
    ("dag", `Dags, (module Dag_impl));
    ("general", `Digraphs, (module General_broadcast));
    ("counting", `Dags, (module Counting));
    ("labeling", `Digraphs, (module Labeling));
    ("mapping", `Digraphs, (module Mapping));
  ]

let cases ?(max_edges = 8) () =
  let on families (p : (module Runtime.Protocol_intf.CHECKABLE)) =
    List.filter_map
      (fun (family, g) ->
        if Digraph.n_edges g <= max_edges then Some (make p ~family g) else None)
      (families ())
  in
  let rename c = { c with c_protocol = shortname c.c_protocol } in
  List.map rename
    (on grounded_trees (module Tree_impl)
    @ on grounded_trees (module Tree_naive_impl)
    @ on dags (module Dag_impl)
    @ on dags (module Counting)
    @ on digraphs (module General_broadcast)
    @ on digraphs (module Labeling)
    @ on digraphs (module Mapping))

(* {1 Negative control} *)

(* A deliberately broken commodity: [split] keeps the whole value on the
   first out-edge instead of dividing it, so every other subtree is starved
   while the terminal still accumulates the full unit.  Conservation holds —
   nothing is lost — which makes this a pure {e soundness} bug: the protocol
   halts claiming success with vertices unvisited.  Exactly what the
   checker's broadcast-soundness invariant must catch. *)
module Sabotaged_commodity = struct
  include Commodity.Pow2_dyadic

  let name = "pow2-sabotaged"
  let split x _d = [ x ]
end

module Sabotaged = Scalar_broadcast.Make (Sabotaged_commodity)

let sabotaged () =
  make (module Sabotaged) ~family:"full-tree:1x2" (F.full_tree ~height:1 ~degree:2)

(* {1 Chaos controls} *)

(* The two ends of the crash-resilience spectrum, packaged for tests, CI
   smoke and [bench -- chaos].  The negative control is bare flooding under
   crash-restart amnesia: an amnesiac vertex forgets it was reached, its
   neighbors never resend, and the chaos search must find (and shrink to
   <= 4 atoms) a starvation witness.  The supervised control is the
   full stack — Redundant(3) + checkpointing supervisor — which the same
   search must never catch falsely terminating. *)

let chaos_negative ?(budget = 60) ?(seed = 11) () =
  Runtime.Chaos.run
    (Runtime.Chaos.config ~budget ~seed
       ~recoveries:[ Runtime.Vfaults.Amnesia ] ~p_edge:0.0 ())
    ~runners:[ Resilient.chaos_runner ~k:1 (module Flood) ]
    ~graphs:(Resilient.chaos_graphs ())

let chaos_supervised ?(budget = 60) ?(seed = 11) () =
  Runtime.Chaos.run
    (Runtime.Chaos.config ~budget ~seed
       ~supervisor:Runtime.Supervisor.default ())
    ~runners:[ Resilient.chaos_runner ~k:3 (module General_broadcast) ]
    ~graphs:(Resilient.chaos_graphs ())

(* {1 Churn controls} *)

let chaos_churn ?(budget = 40) ?(seed = 11) () =
  Runtime.Chaos.run
    (Runtime.Chaos.config ~budget ~seed ~p_churn:0.5 ~churn_t:4
       ~supervisor:Runtime.Supervisor.default ())
    ~runners:[ Resilient.chaos_runner ~k:3 (module General_broadcast) ]
    ~graphs:(Resilient.chaos_graphs ())

(* The footprint whose back edges close cycles; every run of amnesiac
   flooding on it — with the cycle edge present from the start, or churned
   in mid-run by an [Add] atom — circulates tokens forever. *)
let dynamic_case ~n =
  {
    Runtime.Campaign.g_name = Printf.sprintf "random-dynamic-%d" n;
    build =
      (fun ~seed ->
        let g, _events =
          F.random_dynamic (Prng.create seed) ~n ~extra_edges:6 ~back_edges:2
            ~t_edge_prob:0.3 ()
        in
        g);
  }

let chaos_amnesiac ?(budget = 12) ?(seed = 11) () =
  Runtime.Chaos.run
    (Runtime.Chaos.config ~budget ~seed ~p_churn:1.0 ~max_faults:1
       ~step_limit:10_000 ())
    ~runners:[ Resilient.chaos_runner ~k:1 (module Amnesiac_flood) ]
    ~graphs:[ dynamic_case ~n:12 ]
