module Make (C : Commodity.S) = struct
  type state = { acc : C.t; times : int }
  type message = C.t

  let name = "scalar-broadcast/" ^ C.name

  let initial_state ~out_degree:_ ~in_degree:_ = { acc = C.zero; times = 0 }

  (* A multi-out-edge root splits the unit commodity rather than duplicating
     it, so flow conservation survives the Section 2 extension. *)
  let root_emit ~out_degree =
    if out_degree = 0 then []
    else List.mapi (fun j v -> (j, v)) (C.split C.unit_commodity out_degree)

  let receive ~out_degree ~in_degree:_ state x ~in_port:_ =
    let state = { acc = C.add state.acc x; times = state.times + 1 } in
    let sends =
      if out_degree = 0 then []
      else List.mapi (fun j v -> (j, v)) (C.split x out_degree)
    in
    (state, sends)

  let accepting state = C.is_unit state.acc

  let encode = C.encode
  let decode = C.decode
  let equal_message = C.equal

  let state_bits st = C.bit_size st.acc + 32

  let pp_message = C.pp

  let pp_state fmt st =
    Format.fprintf fmt "acc=%s after %d messages" (C.to_string st.acc) st.times

  (* [times] is pure bookkeeping — it never influences [receive] or
     [accepting] — so the digest omits it and behaviorally equal states
     share one model-checking fingerprint. *)
  let digest st = C.to_string st.acc

  (* Lemma 3.5's linear cut: in-flight commodity plus what the sinks
     absorbed is exactly the unit injected at [s] (internal vertices forward
     everything the instant it arrives, so they retain nothing). *)
  let conservation =
    Some
      (Runtime.Protocol_intf.Conservation
         {
           zero = C.zero;
           add = C.add;
           of_message = (fun x -> x);
           retained =
             (fun ~out_degree ~in_degree:_ st ->
               if out_degree = 0 then st.acc else C.zero);
           check =
             (fun total ->
               if C.is_unit total then Ok ()
               else Error (Printf.sprintf "cut total %s <> 1" (C.to_string total)));
         })

  let vertex_invariant = None

  let accumulated st = st.acc
  let times_received st = st.times
end
