(** The model-checking suite: every library protocol paired with every
    deterministic small family its correctness theorem quantifies over
    (grounded trees for Section 3.1, DAGs for Section 3.3, arbitrary
    digraphs for Sections 4–6), sized so exhaustive schedule-space
    exploration is feasible (default [|E| <= 8]).

    Consumed by the [anonet check] CLI subcommand, [bench -- check] and the
    test-suite; the protocol's state/message types are hidden behind
    closures so callers need no functor plumbing. *)

type case = {
  c_protocol : string;  (** Short protocol name ([tree], [general], ...). *)
  c_family : string;
  c_edges : int;
  c_graph : Digraph.t;
  c_explore :
    ?max_states:int ->
    ?max_depth:int ->
    ?walks:int ->
    ?obs:Obs.t ->
    unit ->
    Runtime.Explore.result;
  c_replay : ?engine:Flatcore.kind -> int list -> Runtime.Explore.replay;
      (** Replay a recorded schedule through a real engine —
          [Flatcore.Classic] (the default) or [Flatcore.Flat].  Both must
          reproduce a recorded counterexample byte-for-byte: seq numbers
          are engine-independent because the flat engine assigns them in
          the identical send order. *)
}

val make :
  (module Runtime.Protocol_intf.CHECKABLE) ->
  family:string ->
  Digraph.t ->
  case
(** Wrap an arbitrary checkable protocol on an arbitrary graph. *)

val cases : ?max_edges:int -> unit -> case list
(** The full suite, deterministic and in stable order. *)

val protocols :
  unit ->
  (string
  * [ `Trees | `Dags | `Digraphs ]
  * (module Runtime.Protocol_intf.CHECKABLE))
  list
(** The suite's protocols as first-class modules, each tagged with the
    widest graph class its correctness theorem covers — what the
    parallel-vs-sequential equivalence tests quantify over. *)

val sabotaged : unit -> case
(** The negative control: the tree protocol over a commodity whose [split]
    ships the whole value on the first out-edge.  Conservation holds but a
    sibling subtree starves, so exploring it must produce a
    [False_termination] counterexample. *)

val chaos_negative : ?budget:int -> ?seed:int -> unit -> Runtime.Chaos.result
(** Chaos negative control: bare [Flood] under crash-restart-amnesia
    vertex faults over the default {!Resilient.chaos_graphs} suite.  An
    amnesiac vertex forgets it was reached and flooding never resends, so
    the search must find — and shrink to at most 4 atoms — a replayable
    starvation witness.  Defaults: [budget = 60], [seed = 11]. *)

val chaos_supervised : ?budget:int -> ?seed:int -> unit -> Runtime.Chaos.result
(** The positive control: [Redundant(3)]-wrapped general broadcast under a
    default {!Runtime.Supervisor} (checkpoint cadence 1), searched over the
    full joint edge-and-vertex fault space.  Must report zero [Unsound]
    witnesses — starvation is permitted (and expected: a crash-stop can
    make coverage impossible), false termination is not. *)

val chaos_churn : ?budget:int -> ?seed:int -> unit -> Runtime.Chaos.result
(** The churn-hardened positive control: the {!chaos_supervised} stack
    searched over the {e joint} edge-kill x vertex-crash x churn-script
    space ([p_churn = 0.5]) with the T-interval contract [churn_t = 4]
    installed for accounting.  Must report zero [Unsound] witnesses:
    bounded outages heal under supervisor retransmission, so soundness
    survives churn.  Defaults: [budget = 40], [seed = 11]. *)

val chaos_amnesiac : ?budget:int -> ?seed:int -> unit -> Runtime.Chaos.result
(** The dynamic-network negative control (Austin et al.): amnesiac flooding
    over a {!Digraph.Families.random_dynamic} footprint whose back edges
    close cycles.  Tokens circulate forever — with the cycle edge present
    from the start or churned in mid-run — so the all-churn search
    ([p_churn = 1.0]) must find only [Livelock] witnesses, each replaying
    byte-for-byte.  Defaults: [budget = 12], [seed = 11]. *)
