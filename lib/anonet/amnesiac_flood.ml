type state = unit
type message = Token

let name = "amnesiac-flood"

let initial_state ~out_degree:_ ~in_degree:_ = ()

let root_emit ~out_degree = List.init out_degree (fun j -> (j, Token))

(* The amnesiac rule: forward every token to every out-port, remembering
   nothing.  The whole protocol is this one line. *)
let receive ~out_degree ~in_degree:_ () Token ~in_port:_ =
  ((), List.init out_degree (fun j -> (j, Token)))

let accepting _ = false

let encode w Token = Bitio.Bit_writer.bit w true

let decode r =
  let (_ : bool) = Bitio.Bit_reader.bit r in
  Token

let equal_message Token Token = true

let state_bits () = 0

let pp_message fmt Token = Format.pp_print_string fmt "token"
let pp_state fmt () = Format.pp_print_string fmt "amnesiac"

let digest () = ""

(* Like plain {!Flood}, tokens duplicate freely: no conserved commodity. *)
let conservation = None
let vertex_invariant = None
