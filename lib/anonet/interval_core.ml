module Is = Intervals.Iset

type t = {
  initialized : bool;
  alpha : Is.t array;
  beta : Is.t;
  label : Is.t;
  seen_alpha : Is.t;
}

type outgoing = { port : int; d_alpha : Is.t; d_beta : Is.t }

let create ~out_degree =
  {
    initialized = false;
    alpha = Array.make out_degree Is.empty;
    beta = Is.empty;
    label = Is.empty;
    seen_alpha = Is.empty;
  }

(* Flood a beta delta on every port (no alpha news anywhere). *)
let beta_flood_sends d d_beta =
  if Is.is_empty d_beta then []
  else List.init d (fun port -> { port; d_alpha = Is.empty; d_beta })

let step ~assign_label state ~alpha:alpha' ~beta:beta' =
  let d = Array.length state.alpha in
  let seen_alpha = Is.union state.seen_alpha alpha' in
  if d = 0 then begin
    (* Terminal-like vertex: absorb.  In labeling mode the first non-empty
       arrival doubles as its (whole) label. *)
    let label =
      if assign_label && (not state.initialized) && not (Is.is_empty alpha')
      then alpha'
      else state.label
    in
    let initialized = state.initialized || not (Is.is_empty alpha') in
    let beta = Is.union state.beta beta' in
    ({ state with initialized; beta; label; seen_alpha }, [])
  end
  else if (not state.initialized) && not (Is.is_empty alpha') then begin
    (* First real commodity: canonical partition (Definition 4.1). *)
    let parts = Is.canonical_partition alpha' (if assign_label then d + 1 else d) in
    let label, port_parts =
      if assign_label then
        match parts with
        | lbl :: rest -> (lbl, Array.of_list rest)
        | [] -> assert false
      else (Is.empty, Array.of_list parts)
    in
    (* In labeling mode the label is immediately beta-flooded (Section 5:
       beta'' = beta' union alpha_0), so the terminal can account for it. *)
    let beta = Is.union (Is.union state.beta beta') label in
    let d_beta = Is.diff beta state.beta in
    let sends =
      List.init d (fun port ->
          { port; d_alpha = port_parts.(port); d_beta })
    in
    ( { initialized = true; alpha = port_parts; beta; label; seen_alpha },
      sends )
  end
  else if not state.initialized then begin
    (* Beta-only traffic before initialization: merge and relay. *)
    let beta = Is.union state.beta beta' in
    let d_beta = Is.diff beta state.beta in
    ({ state with beta; seen_alpha }, beta_flood_sends d d_beta)
  end
  else begin
    (* Initialized: unseen alpha continues on the last port; already-sent
       alpha is a detected cycle and joins beta (Section 4's f). *)
    let sent_union =
      Array.fold_left Is.union (if assign_label then state.label else Is.empty)
        state.alpha
    in
    let new_alpha = Is.diff alpha' sent_union in
    let cycles = Is.inter alpha' sent_union in
    let beta = Is.union (Is.union state.beta beta') cycles in
    let d_beta = Is.diff beta state.beta in
    let last = d - 1 in
    let alpha = Array.copy state.alpha in
    alpha.(last) <- Is.union alpha.(last) new_alpha;
    let sends =
      if Is.is_empty d_beta then
        if Is.is_empty new_alpha then []
        else [ { port = last; d_alpha = new_alpha; d_beta = Is.empty } ]
      else
        List.init d (fun port ->
            { port; d_alpha = (if port = last then new_alpha else Is.empty); d_beta })
    in
    ({ state with alpha; beta; seen_alpha }, sends)
  end

(* Canonical fingerprint for the model checker: every field is behavioral
   ([alpha] gates cycle detection, [seen_alpha] only feeds [covered] at
   absorbing vertices but is cheap and keeps the digest obviously
   injective).  [Is.to_string] prints the normal form, so equal sets print
   equally. *)
let digest state =
  let c = Runtime.Canonical.create () in
  Runtime.Canonical.add_bool c state.initialized;
  Runtime.Canonical.add_int c (Array.length state.alpha);
  Array.iter (fun a -> Runtime.Canonical.add_string c (Is.to_string a)) state.alpha;
  Runtime.Canonical.add_string c (Is.to_string state.beta);
  Runtime.Canonical.add_string c (Is.to_string state.label);
  Runtime.Canonical.add_string c (Is.to_string state.seen_alpha);
  Runtime.Canonical.contents c

let covered state = Is.union state.seen_alpha state.beta

let accepting state = Is.is_unit (covered state)

let invariant ?prev state =
  let d = Array.length state.alpha in
  let pairwise_disjoint =
    let ok = ref true in
    for i = 0 to d - 1 do
      if not (Is.disjoint state.alpha.(i) state.label) then ok := false;
      for j = i + 1 to d - 1 do
        if not (Is.disjoint state.alpha.(i) state.alpha.(j)) then ok := false
      done
    done;
    !ok
  in
  let monotone =
    match prev with
    | None -> true
    | Some p ->
        Array.length p.alpha = d
        && Array.for_all2 (fun a b -> Is.subset a b) p.alpha state.alpha
        && Is.subset p.beta state.beta
        && Is.subset p.label state.label
        && Is.subset p.seen_alpha state.seen_alpha
        && (p.initialized <= state.initialized)
  in
  pairwise_disjoint && monotone
