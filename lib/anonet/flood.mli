(** Plain propagation without termination detection — the strawman of
    Section 1.2 ("this, in itself, seems a trivial task obtained by simple
    propagation").

    Every vertex forwards a one-bit token the first time it hears one.  The
    broadcast itself succeeds (every reachable vertex is visited), but the
    terminal has no way to decide completion: [accepting] is constantly
    false, so the engine always reports [Quiescent].  This module exists to
    demonstrate, in runnable form, why the paper's commodity machinery is
    necessary. *)

include Runtime.Protocol_intf.CHECKABLE

val received : state -> bool
(** Whether the vertex had been visited when the run stopped. *)
