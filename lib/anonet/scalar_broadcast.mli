(** The grounded-tree broadcasting protocol of Section 3.1, generic over the
    scalar commodity discipline.

    Behaviour: every time a vertex receives a commodity value it immediately
    splits it over its out-edges (a grounded-tree vertex receives exactly
    once — Lemma 3.3 — so this matches the paper; on DAGs the same code
    remains a *correct* commodity-preserving protocol, it just forwards once
    per incoming path and serves as the message-count baseline that the
    wait-for-all-ports variant {!Dag_broadcast} improves on).  The terminal
    accepts when its accumulated commodity reaches exactly 1.

    Instantiated as {!Tree_broadcast} (power-of-two rule, the paper's
    optimal protocol) and {!Tree_broadcast_naive} ([x/d] rule, the ablation
    baseline). *)

module Make (C : Commodity.S) : sig
  include Runtime.Protocol_intf.CHECKABLE with type message = C.t

  val accumulated : state -> C.t
  (** Total commodity received by the vertex so far. *)

  val times_received : state -> int
end
