module Seen = Set.Make (String)

module Make
    (K : sig
      val k : int
    end)
    (P : Runtime.Protocol_intf.PROTOCOL) =
struct
  let () = if K.k < 1 then invalid_arg "Redundant.Make: k must be >= 1"

  type state = { inner : P.state; seen : Seen.t; seen_bits : int }
  type message = P.message

  let name = Printf.sprintf "%s+r%d" P.name K.k

  let initial_state ~out_degree ~in_degree =
    { inner = P.initial_state ~out_degree ~in_degree; seen = Seen.empty; seen_bits = 0 }

  let repeat sends =
    if K.k = 1 then sends
    else List.concat_map (fun s -> List.init K.k (fun _ -> s)) sends

  let root_emit ~out_degree = repeat (P.root_emit ~out_degree)

  (* Dedup key: the copy's in-port plus its exact wire encoding — the only
     identity an anonymous receiver can assign to a message. *)
  let key msg ~in_port =
    let w = Bitio.Bit_writer.create () in
    P.encode w msg;
    Printf.sprintf "%d|%d:%s" in_port
      (Bitio.Bit_writer.length w)
      (Bitio.Bit_writer.to_string w)

  let receive ~out_degree ~in_degree st msg ~in_port =
    let k = key msg ~in_port in
    if Seen.mem k st.seen then (st, [])
    else
      let inner', sends = P.receive ~out_degree ~in_degree st.inner msg ~in_port in
      ( {
          inner = inner';
          seen = Seen.add k st.seen;
          seen_bits = st.seen_bits + (8 * String.length k);
        },
        repeat sends )

  let accepting st = P.accepting st.inner

  (* A 16-bit checksum (bit-length mixed with an xor-fold of the packed
     bytes) rides ahead of the base encoding.  A single flipped wire bit
     either lands in the checksum, or changes one packed byte, or changes
     how many bits [P.decode] consumes — each case breaks the equation
     below, so the flip is detected, the decode fails, and the engine
     degrades the corruption into a drop that the k repetitions heal. *)
  let checksum s len =
    let c = ref (len land 0xFFFF) in
    String.iteri
      (fun i ch -> c := !c lxor (Char.code ch lsl (8 * (i land 1))))
      s;
    !c land 0xFFFF

  let encode w msg =
    let inner = Bitio.Bit_writer.create () in
    P.encode inner msg;
    let s = Bitio.Bit_writer.to_string inner in
    let len = Bitio.Bit_writer.length inner in
    Bitio.Bit_writer.bits w (checksum s len) 16;
    for i = 0 to len - 1 do
      let byte = Char.code s.[i / 8] in
      Bitio.Bit_writer.bit w ((byte lsr (7 - (i mod 8))) land 1 = 1)
    done

  let decode r =
    let c = Bitio.Bit_reader.bits r 16 in
    let msg = P.decode r in
    (* The reader does not expose the raw bits it consumed, but the base
       codec is canonical (verify_codec-tested), so re-encoding the decoded
       message reconstructs them exactly. *)
    let inner = Bitio.Bit_writer.create () in
    P.encode inner msg;
    if
      checksum (Bitio.Bit_writer.to_string inner) (Bitio.Bit_writer.length inner)
      <> c
    then raise Runtime.Protocol_intf.Checksum_reject;
    msg

  let equal_message = P.equal_message

  (* The dedup table is real per-vertex memory; charge it. *)
  let state_bits st = P.state_bits st.inner + st.seen_bits

  let pp_message = P.pp_message

  let pp_state fmt st =
    Format.fprintf fmt "%a (dedup %d)" P.pp_state st.inner (Seen.cardinal st.seen)

  let inner st = st.inner
  let dedup_entries st = Seen.cardinal st.seen
end
