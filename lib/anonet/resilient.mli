(** Self-healing protocol stacks: {!Redundant} + {!Runtime.Supervisor}
    composed, with adaptive escalation of the repetition factor.

    The supervisor can retransmit but never NACK, and the redundancy layer
    can absorb loss but costs [k]x the bits; this module is the policy
    glue between them:

    - {!redundant} wraps a protocol behind [Redundant(k)] as a first-class
      module, so the repetition factor becomes a runtime value;
    - {!chaos_runner} builds a {!Runtime.Chaos.runner} for the wrapped
      protocol — the form the chaos search, the [anonet chaos] CLI and the
      E17 bench consume;
    - {!run_escalating} implements the supervisor's adaptive escalation:
      run at [k], and if the run fell short of termination {e and} the
      report shows observed loss (dropped or swallowed copies, garbles,
      checksum rejects), double [k] and rerun, up to [k_max].  Each
      attempt's evidence is returned, so the caller sees what the
      escalation reacted to.

    The default chaos suite ({!chaos_graphs}) is the same three random
    families the fault campaign sweeps, at [n = 16]. *)

type attempt = {
  a_k : int;
  a_outcome : Runtime.Engine.outcome;
  a_deliveries : int;
  a_total_bits : int;
  a_all_visited : bool;
  a_losses : int;
      (** Observed-loss evidence: dropped + down-swallowed + garbled +
          checksum-rejected + stuttered copies. *)
}

type escalation = {
  attempts : attempt list;  (** In execution order. *)
  final_k : int;
  terminated : bool;  (** Whether the last attempt terminated. *)
}

val redundant :
  k:int ->
  (module Runtime.Protocol_intf.PROTOCOL) ->
  (module Runtime.Protocol_intf.PROTOCOL)

val chaos_runner :
  ?name:string ->
  ?k:int ->
  (module Runtime.Protocol_intf.PROTOCOL) ->
  Runtime.Chaos.runner
(** [k] defaults to 3 (the redundancy level PR 1 showed survives the edge
    grid); [k = 1] means the bare protocol.  The default name is the
    wrapped protocol's ([base+r3] style). *)

val run_escalating :
  ?k0:int ->
  ?k_max:int ->
  ?scheduler:Runtime.Scheduler.t ->
  ?step_limit:int ->
  ?faults:Runtime.Faults.t ->
  ?vfaults:Runtime.Vfaults.t ->
  ?supervisor:Runtime.Supervisor.config ->
  (module Runtime.Protocol_intf.PROTOCOL) ->
  Digraph.t ->
  escalation
(** Defaults: [k0 = 1], [k_max = 8], supervisor = {!Runtime.Supervisor}
    [.default].  Stops at the first terminating attempt, when no loss was
    observed (escalating cannot help), or past [k_max]. *)

val chaos_graphs : unit -> Runtime.Campaign.graph_case list
(** [random-tree-16], [random-dag-16], [random-digraph-16] — the fault
    campaign's families, reused as the chaos default suite. *)
