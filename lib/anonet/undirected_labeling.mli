(** The undirected-anonymous-network baseline: token-DFS labeling with
    [O(log |V|)]-bit labels.

    The paper's conclusion attributes the exponential label-length gap
    ([Omega(|V| log d_out)] in directed networks vs [O(log |V|)] in
    undirected or strongly-connected ones) to "the possible lack of feedback
    due to the directionality of edges".  This protocol makes the comparison
    concrete: on the bidirected families
    ({!Digraph.Families.bidirected_random}), where a vertex {e can} reply
    over the edge a message arrived on (out-port [j] and in-port [j] are
    aligned), a single token performs a depth-first traversal handing out
    consecutive integer identifiers — the classical adaptive message-passing
    paradigm the introduction contrasts with.

    Once the token returns to the start vertex, it knows the traversal is
    complete (that is the feedback!), and floods a [Done] notice carrying the
    vertex count; the terminal accepts on receiving it.  Labels are integers
    below [|V|]: [O(log |V|)] bits, exponentially shorter than the directed
    lower bound of Theorem 5.2.

    The network contract (guaranteed by the bidirected families): every
    internal vertex's last out-port leads to [t] and its remaining ports are
    aligned bidirected edges; the DFS root is whoever receives [Start]. *)

include Runtime.Protocol_intf.CHECKABLE

val vertex_id : state -> int option
(** The integer label assigned by the traversal. *)

val total_count : state -> int option
(** At the terminal: the vertex count announced by [Done]. *)
