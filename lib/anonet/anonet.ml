(** Distributed broadcasting and mapping protocols in directed anonymous
    networks — an OCaml reproduction of Langberg, Schwartz & Bruck
    (PODC 2007).

    The protocols run over {!Digraph} networks inside the asynchronous
    {!Runtime} simulator.  Quick start:

    {[
      let g = Digraph.Families.random_digraph prng ~n:50 ~extra_edges:30
                ~back_edges:10 ~t_edge_prob:0.2 in
      let stats = Anonet.broadcast_general g in
      assert (stats.Anonet.outcome = Runtime.Engine.Terminated)
    ]} *)

(** {1 Protocol modules} *)

module Commodity = Commodity
module Flood = Flood
module Amnesiac_flood = Amnesiac_flood
module Counting = Counting
module Scalar_broadcast = Scalar_broadcast
module Dag_broadcast = Dag_broadcast
module Interval_core = Interval_core
module Interval_protocol = Interval_protocol
module General_broadcast = General_broadcast
module Labeling = Labeling
module Mapping = Mapping
module Undirected_labeling = Undirected_labeling
module Lower_bounds = Lower_bounds
module Redundant = Redundant
module Resilient = Resilient
module Check_suite = Check_suite

module Tree_broadcast = Scalar_broadcast.Make (Commodity.Pow2_dyadic)
(** Section 3.1's grounded-tree protocol: power-of-two flow splitting. *)

module Tree_broadcast_naive = Scalar_broadcast.Make (Commodity.Even_rational)
(** The naive [x/d] splitting baseline of Section 3.1. *)

module Dag_broadcast_pow2 = Dag_broadcast.Make (Commodity.Pow2_dyadic)
(** Section 3.3's DAG protocol under the power-of-two rule. *)

module Dag_broadcast_naive = Dag_broadcast.Make (Commodity.Even_rational)
(** Section 3.3's DAG protocol under the naive rule. *)

(** {1 Engines} *)

module Flood_engine = Runtime.Engine.Make (Flood)
module Amnesiac_engine = Runtime.Engine.Make (Amnesiac_flood)
module Counting_engine = Runtime.Engine.Make (Counting)
module Tree_engine = Runtime.Engine.Make (Tree_broadcast)
module Tree_naive_engine = Runtime.Engine.Make (Tree_broadcast_naive)
module Dag_engine = Runtime.Engine.Make (Dag_broadcast_pow2)
module Dag_naive_engine = Runtime.Engine.Make (Dag_broadcast_naive)
module General_engine = Runtime.Engine.Make (General_broadcast)
module Labeling_engine = Runtime.Engine.Make (Labeling)
module Mapping_engine = Runtime.Engine.Make (Mapping)
module Undirected_engine = Runtime.Engine.Make (Undirected_labeling)

(** {1 Convenience runners} *)

type stats = {
  outcome : Runtime.Engine.outcome;
  deliveries : int;
  total_bits : int;
  max_edge_bits : int;
  max_message_bits : int;
  distinct_messages : int;
  all_visited : bool;
}

let stats_of_report (r : _ Runtime.Engine.report) =
  {
    outcome = r.outcome;
    deliveries = r.deliveries;
    total_bits = r.total_bits;
    max_edge_bits = r.max_edge_bits;
    max_message_bits = r.max_message_bits;
    distinct_messages = r.distinct_messages;
    all_visited = Array.for_all (fun v -> v) r.visited;
  }

let broadcast_tree ?scheduler ?payload_bits g =
  stats_of_report (Tree_engine.run ?scheduler ?payload_bits g)

let broadcast_tree_naive ?scheduler ?payload_bits g =
  stats_of_report (Tree_naive_engine.run ?scheduler ?payload_bits g)

let broadcast_dag ?scheduler ?payload_bits g =
  stats_of_report (Dag_engine.run ?scheduler ?payload_bits g)

let broadcast_general ?scheduler ?payload_bits g =
  stats_of_report (General_engine.run ?scheduler ?payload_bits g)

let assign_labels ?scheduler ?payload_bits g =
  let r = Labeling_engine.run ?scheduler ?payload_bits g in
  (stats_of_report r, Array.map Labeling.label r.states)

let assign_labels_undirected ?scheduler ?payload_bits g =
  let r = Undirected_engine.run ?scheduler ?payload_bits g in
  (stats_of_report r, Array.map Undirected_labeling.vertex_id r.states)

let map_network ?scheduler ?payload_bits g =
  let r = Mapping_engine.run ?scheduler ?payload_bits g in
  let map =
    match r.outcome with
    | Runtime.Engine.Terminated ->
        Mapping.extract_map r.states.(Digraph.terminal g)
    | Runtime.Engine.Quiescent -> Error "protocol did not terminate (quiescent)"
    | Runtime.Engine.Step_limit -> Error "step limit reached"
    | Runtime.Engine.Cancelled -> Error "run cancelled"
  in
  (stats_of_report r, map)
