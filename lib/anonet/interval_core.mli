(** The interval-commodity state machine shared by the general-graph
    broadcast protocol (Section 4), the unique-labeling protocol (Section 5)
    and the topology-mapping extension.

    A vertex's state is [pi = (alpha_bar, beta)] plus, in labeling mode, the
    label interval-union [alpha_0] it keeps for itself:

    - [alpha.(j)] is the interval-union sent so far on out-port [j];
    - [beta] is the cycle/label information to be flooded towards [t];
    - on the {e first} message carrying a non-empty interval-union the vertex
      performs the canonical partition of Definition 4.1 (in labeling mode,
      into [d+1] parts, keeping part 0);
    - later arrivals route their unseen part to the last out-port and move
      the already-seen part (a detected cycle) into [beta];
    - [beta] deltas are flooded on every out-port.

    All state components are monotonically increasing under set inclusion —
    the paper's state-monotonicity property — which {!invariant} checks. *)

type t = {
  initialized : bool;  (** Has the canonical partition been performed? *)
  alpha : Intervals.Iset.t array;  (** Per out-port, length = out-degree. *)
  beta : Intervals.Iset.t;
  label : Intervals.Iset.t;  (** Empty unless labeling mode initialized. *)
  seen_alpha : Intervals.Iset.t;  (** Union of every received alpha. *)
}

type outgoing = {
  port : int;
  d_alpha : Intervals.Iset.t;  (** New-to-this-port alpha content. *)
  d_beta : Intervals.Iset.t;  (** New beta content. *)
}

val create : out_degree:int -> t
(** The common initial state [pi0]. *)

val step :
  assign_label:bool ->
  t ->
  alpha:Intervals.Iset.t ->
  beta:Intervals.Iset.t ->
  t * outgoing list
(** One application of [(f, g)].  Only ports with something new to say
    appear in the result (the paper's [g = phi] case). *)

val accepting : t -> bool
(** The stopping predicate [S]: everything received or beta-flooded covers
    exactly [\[0,1)]. *)

val covered : t -> Intervals.Iset.t
(** [seen_alpha union beta], the quantity [S] tests. *)

val digest : t -> string
(** Canonical fingerprint of the whole state, for {!Runtime.Explore}. *)

val invariant : ?prev:t -> t -> bool
(** Structural invariants: [alpha.(j)] pairwise disjoint and disjoint from
    the label; with [?prev], state-monotonicity w.r.t. that earlier state. *)
