(** Anonymous counting, Milani–Mosteiro-style: the terminal learns [n] — the
    number of participating vertices — without identifiers, by piggybacking
    a census on the Section 3 termination commodity.

    Every message carries a dyadic flow share plus an integer count.  A
    vertex mints [+1] for itself the first time it is activated and ships
    its accumulated count on port 0 of its forwarding batch; flow splits by
    the paper's power-of-two rule exactly as in
    {!Scalar_broadcast}/{!Dag_broadcast}.  Because counts only ride
    flow-carrying messages, the instant the terminal's flow sums back to
    one, {e every} message has landed and the census is complete:
    [census] = banked counts [+ 1] (the terminal itself) equals the number
    of vertices the broadcast visited — [n] on grounded trees and DAGs,
    where every vertex lies on an [s]-[t] path.

    The conservation law is the scalar cut law tensored with the census
    ledger: each activated internal vertex retains [-1] (offsetting the one
    count it minted into flight), the terminal retains what it banked, so
    the cut total is constantly [(unit, 1)] — checkable by {!Explore} at
    every instant, and the property {!Runtime.Chaos} falsifies under
    unexcused faults or churn. *)

include Runtime.Protocol_intf.CHECKABLE

val census : state -> int
(** Terminal-side census: banked counts plus the terminal itself.  Equals
    [n] exactly when the run terminated on a grounded tree or DAG. *)

val accumulated : state -> Exact.Dyadic.t
(** The flow banked so far (terminal) or passed through (internal). *)
