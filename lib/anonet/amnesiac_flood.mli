(** Amnesiac flooding, directed: a vertex forwards every token it receives
    to {e all} of its out-ports and keeps no state at all ([state_bits = 0]).

    This is the zero-memory extreme of the broadcast memory hierarchy
    studied for anonymous dynamic networks (Parzych–Daymude's lower bounds;
    Austin, Hussak & Trehan's "easy to break, hard to mend" analysis of
    amnesiac flooding under edge insertion).  On a DAG every token follows a
    finite path, so the run quiesces after one delivery per [s]-path; the
    moment the network contains a directed cycle reachable from [s], tokens
    circulate forever and the engine hits its step limit.

    That fragility is the point: a single {!Runtime.Churn} [Add] event that
    closes a back edge mid-run converts a quiescing execution into a
    non-terminating one — the witness class the churn-aware {!Runtime.Chaos}
    search ([Livelock] kind) is asked to find and replay. *)

include Runtime.Protocol_intf.CHECKABLE
