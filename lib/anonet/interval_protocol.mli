(** PROTOCOL wrapper around {!Interval_core}, shared by
    {!General_broadcast} and {!Labeling}. *)

module Make (M : sig
  val name : string
  val assign_label : bool
end) : sig
  include
    Runtime.Protocol_intf.CHECKABLE
      with type state = Interval_core.t
       and type message = Intervals.Iset.t * Intervals.Iset.t

  val label : state -> Intervals.Iset.t
  (** The vertex's kept interval-union; empty when not in labeling mode. *)

  val covered : state -> Intervals.Iset.t
end
