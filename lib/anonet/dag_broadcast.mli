(** The DAG broadcasting protocol of Section 3.3.

    A vertex holds its incoming commodity until it has heard a message on
    {e each} of its in-ports (legitimate knowledge: a vertex knows its own
    in-degree, and on a DAG in which every vertex is reachable from [s]
    every in-edge eventually fires), then splits the accumulated value over
    its out-edges.  Exactly one message crosses each edge, giving the
    [O(|E|)]-bandwidth / [O(|E|^2)]-communication upper bound; on cyclic
    graphs the wait deadlocks — the engine reports [Quiescent] — which is
    precisely why Section 4 needs the interval machinery. *)

module Make (C : Commodity.S) : sig
  include Runtime.Protocol_intf.CHECKABLE with type message = C.t

  val accumulated : state -> C.t
  val heard : state -> int
end
