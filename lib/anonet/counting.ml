module C = Commodity.Pow2_dyadic

type state = { acc : C.t; got : int; active : bool }
type message = { flow : C.t; count : int }

let name = "counting"

let initial_state ~out_degree:_ ~in_degree:_ =
  { acc = C.zero; got = 0; active = false }

(* The source mints its own +1 and ships it on port 0, riding the first
   share of the unit flow. *)
let root_emit ~out_degree =
  if out_degree = 0 then []
  else
    List.mapi
      (fun j flow -> (j, { flow; count = (if j = 0 then 1 else 0) }))
      (C.split C.unit_commodity out_degree)

let receive ~out_degree ~in_degree:_ state { flow; count } ~in_port:_ =
  if out_degree = 0 then
    (* The terminal banks flow and census alike; it never forwards, so it
       never mints — [census] adds the 1 for the terminal itself. *)
    ({ state with acc = C.add state.acc flow; got = state.got + count }, [])
  else
    let mint = if state.active then 0 else 1 in
    let state = { state with acc = C.add state.acc flow; active = true } in
    let out = count + mint in
    let sends =
      List.mapi
        (fun j flow -> (j, { flow; count = (if j = 0 then out else 0) }))
        (C.split flow out_degree)
    in
    (state, sends)

let accepting state = C.is_unit state.acc

let encode w { flow; count } =
  C.encode w flow;
  Bitio.Codes.write_gamma0 w count

let decode r =
  let flow = C.decode r in
  let count = Bitio.Codes.read_gamma0 r in
  { flow; count }

let equal_message a b = C.equal a.flow b.flow && a.count = b.count

let state_bits st = C.bit_size st.acc + Bitio.Codes.gamma0_size st.got + 1

let pp_message fmt { flow; count } =
  Format.fprintf fmt "%a+%d" C.pp flow count

let pp_state fmt st =
  Format.fprintf fmt "acc=%s got=%d%s" (C.to_string st.acc) st.got
    (if st.active then " active" else "")

let digest st =
  Printf.sprintf "%s|%d|%b" (C.to_string st.acc) st.got st.active

(* The scalar cut law, tensored with a census ledger.  Each activated
   internal vertex has minted one count into flight and so retains -1; the
   terminal retains what it banked; counts ride flow messages.  The pair
   total is therefore constantly [(unit, 1)]: when the flow coordinate sums
   to one, every message has landed, so the census is complete too. *)
let conservation =
  Some
    (Runtime.Protocol_intf.Conservation
       {
         zero = (C.zero, 0);
         add = (fun (f1, c1) (f2, c2) -> (C.add f1 f2, c1 + c2));
         of_message = (fun { flow; count } -> (flow, count));
         retained =
           (fun ~out_degree ~in_degree:_ st ->
             if out_degree = 0 then (st.acc, st.got)
             else (C.zero, if st.active then -1 else 0));
         check =
           (fun (flow, count) ->
             if not (C.is_unit flow) then
               Error
                 (Printf.sprintf "cut flow %s <> 1" (C.to_string flow))
             else if count <> 1 then
               Error (Printf.sprintf "cut census %d <> 1" count)
             else Ok ());
       })

(* Only the terminal banks census counts. *)
let vertex_invariant =
  Some (fun ~out_degree ~in_degree:_ st -> out_degree = 0 || st.got = 0)

let census st = st.got + 1
let accumulated st = st.acc
