module Is = Intervals.Iset

module Make (M : sig
  val name : string
  val assign_label : bool
end) =
struct
  type state = Interval_core.t

  (* (alpha, beta) — both components of Sigma's symbols. *)
  type message = Is.t * Is.t

  let name = M.name

  let initial_state ~out_degree ~in_degree:_ = Interval_core.create ~out_degree

  (* A multi-out-edge root canonically partitions [0,1) across its ports
     (the root itself takes no label even in labeling mode — it has no
     incoming edge to trigger one, matching Section 5). *)
  let root_emit ~out_degree =
    if out_degree = 0 then []
    else
      List.mapi
        (fun j part -> (j, (part, Is.empty)))
        (Is.canonical_partition Is.unit out_degree)

  let receive ~out_degree:_ ~in_degree:_ st (alpha, beta) ~in_port:_ =
    let st', outs = Interval_core.step ~assign_label:M.assign_label st ~alpha ~beta in
    ( st',
      List.map
        (fun (o : Interval_core.outgoing) -> (o.port, (o.d_alpha, o.d_beta)))
        outs )

  let accepting = Interval_core.accepting

  let encode w (alpha, beta) =
    Is.write w alpha;
    Is.write w beta

  let decode r =
    let alpha = Is.read r in
    let beta = Is.read r in
    (alpha, beta)

  let equal_message (a1, b1) (a2, b2) = Is.equal a1 a2 && Is.equal b1 b2

  let state_bits (st : state) =
    Array.fold_left
      (fun acc a -> acc + Is.size_bits a)
      (Is.size_bits st.beta + Is.size_bits st.label + Is.size_bits st.seen_alpha + 8)
      st.alpha

  let pp_message fmt (alpha, beta) =
    Format.fprintf fmt "alpha=%s beta=%s" (Is.to_string alpha) (Is.to_string beta)

  let pp_state fmt (st : state) =
    Format.fprintf fmt "init=%b beta=%s label=%s covered=%s" st.initialized
      (Is.to_string st.beta) (Is.to_string st.label)
      (Is.to_string (Interval_core.covered st))

  let digest = Interval_core.digest

  (* The Section 4 analogue of the linear cut is a {e linearity} law, not a
     sum: each point of [0,1) lives in at most one place — an in-flight
     alpha, an internal vertex's kept label, or an absorbing (out-degree-0)
     vertex's [seen_alpha].  Cycle detection moves alpha into beta (which
     floods and duplicates freely), so completeness cannot be asserted
     mid-run, but an overlap is exactly the duplication bug the checker
     hunts: the accumulator carries the running union plus a disjointness
     flag. *)
  let conservation =
    Some
      (Runtime.Protocol_intf.Conservation
         {
           zero = (Is.empty, true);
           add =
             (fun (a, ok) (b, ok') ->
               (Is.union a b, ok && ok' && Is.disjoint a b));
           of_message = (fun (alpha, _beta) -> (alpha, true));
           retained =
             (fun ~out_degree ~in_degree:_ (st : state) ->
               if out_degree = 0 then (st.Interval_core.seen_alpha, true)
               else (st.Interval_core.label, true));
           check =
             (fun (_total, ok) ->
               if ok then Ok ()
               else Error "alpha commodity duplicated across the cut");
         })

  let vertex_invariant =
    Some (fun ~out_degree:_ ~in_degree:_ st -> Interval_core.invariant st)

  let label (st : state) = st.label
  let covered = Interval_core.covered
end
