module I = Intervals.Interval
module Is = Intervals.Iset

type sender_id = Root | Labeled of I.t

let compare_sender_id a b =
  match (a, b) with
  | Root, Root -> 0
  | Root, Labeled _ -> -1
  | Labeled _, Root -> 1
  | Labeled x, Labeled y -> I.compare x y

type announcement = { ann_who : sender_id; ann_out : int; ann_in : int }

let compare_announcement a b =
  let c = compare_sender_id a.ann_who b.ann_who in
  if c <> 0 then c
  else Stdlib.compare (a.ann_out, a.ann_in) (b.ann_out, b.ann_in)

type fact = { src : sender_id; src_port : int; dst : I.t; dst_port : int }

let compare_fact a b =
  let c = compare_sender_id a.src b.src in
  if c <> 0 then c
  else begin
    let c = Stdlib.compare a.src_port b.src_port in
    if c <> 0 then c
    else begin
      let c = I.compare a.dst b.dst in
      if c <> 0 then c else Stdlib.compare a.dst_port b.dst_port
    end
  end

module Ann_set = Set.Make (struct
  type t = announcement

  let compare = compare_announcement
end)

module Fact_set = Set.Make (struct
  type t = fact

  let compare = compare_fact
end)

type state = {
  core : Interval_core.t;
  my_label : I.t option;
  (* Per in-port: sender identity and sender out-port, once learned. *)
  in_info : (sender_id * int) option array;
  anns : Ann_set.t;
  facts : Fact_set.t;
  (* Edge endpoints recorded by out-degree-0 vertices (t and dead ends):
     (sender, sender out-port, local in-port). *)
  local_ends : (sender_id * int * int) list;
  in_degree : int;
}

type message = {
  m_alpha : Is.t;
  m_beta : Is.t;
  m_anns : announcement list;
  m_facts : fact list;
  m_sender : sender_id option;
  m_sender_port : int;
}

let name = "mapping"

let initial_state ~out_degree ~in_degree =
  {
    core = Interval_core.create ~out_degree;
    my_label = None;
    in_info = Array.make (max in_degree 1) None;
    anns = Ann_set.empty;
    facts = Fact_set.empty;
    local_ends = [];
    in_degree;
  }

let root_emit ~out_degree =
  if out_degree = 0 then []
  else
    List.mapi
      (fun j part ->
        ( j,
          {
            m_alpha = part;
            m_beta = Is.empty;
            (* The root cannot be labeled, but sigma0 can carry its own
               degree announcement so the terminal knows how many Root
               facts to wait for (multi-out-degree-root extension). *)
            m_anns = [ { ann_who = Root; ann_out = out_degree; ann_in = 0 } ];
            m_facts = [];
            m_sender = Some Root;
            m_sender_port = j;
          } ))
      (Is.canonical_partition Is.unit out_degree)

(* A fact for in-port [k] can be minted once both endpoint identities are
   known. *)
let mint_facts st out_degree =
  match st.my_label with
  | None -> st
  | Some label when out_degree > 0 ->
      let facts = ref st.facts in
      Array.iteri
        (fun k info ->
          match info with
          | Some (src, src_port) ->
              facts := Fact_set.add { src; src_port; dst = label; dst_port = k } !facts
          | None -> ())
        st.in_info;
      { st with facts = !facts }
  | Some _ -> st

let receive ~out_degree ~in_degree st msg ~in_port =
  let core', core_outs =
    Interval_core.step ~assign_label:true st.core ~alpha:msg.m_alpha ~beta:msg.m_beta
  in
  (* Learn the sender behind this in-port (fixed once known). *)
  let st =
    match (msg.m_sender, st.in_info.(in_port)) with
    | Some sid, None ->
        let in_info = Array.copy st.in_info in
        in_info.(in_port) <- Some (sid, msg.m_sender_port);
        let local_ends =
          if out_degree = 0 then (sid, msg.m_sender_port, in_port) :: st.local_ends
          else st.local_ends
        in
        { st with in_info; local_ends }
    | _ -> st
  in
  (* Adopt the label the instant the core assigns one. *)
  let st =
    match (st.my_label, Is.first_interval core'.label) with
    | None, Some iv when out_degree > 0 -> { st with my_label = Some iv }
    | _ -> st
  in
  let anns_before = st.anns and facts_before = st.facts in
  (* Merge flooded knowledge. *)
  let st =
    {
      st with
      core = core';
      anns = List.fold_left (fun s a -> Ann_set.add a s) st.anns msg.m_anns;
      facts = List.fold_left (fun s f -> Fact_set.add f s) st.facts msg.m_facts;
    }
  in
  (* Announce ourselves on labeling. *)
  let st =
    match st.my_label with
    | Some label when out_degree > 0 ->
        {
          st with
          anns =
            Ann_set.add
              { ann_who = Labeled label; ann_out = out_degree; ann_in = in_degree }
              st.anns;
        }
    | _ -> st
  in
  let st = mint_facts st out_degree in
  let d_anns = Ann_set.elements (Ann_set.diff st.anns anns_before) in
  let d_facts = Fact_set.elements (Fact_set.diff st.facts facts_before) in
  let sender = Option.map (fun iv -> Labeled iv) st.my_label in
  (* Combine the core's per-port alpha/beta deltas with the flooded
     announcement/fact deltas (which go out on every port). *)
  let port_core = Array.make out_degree (Is.empty, Is.empty) in
  List.iter
    (fun (o : Interval_core.outgoing) -> port_core.(o.port) <- (o.d_alpha, o.d_beta))
    core_outs;
  let flood_knowledge = d_anns <> [] || d_facts <> [] in
  let sends = ref [] in
  for port = out_degree - 1 downto 0 do
    let d_alpha, d_beta = port_core.(port) in
    if flood_knowledge || not (Is.is_empty d_alpha && Is.is_empty d_beta) then
      sends :=
        ( port,
          {
            m_alpha = d_alpha;
            m_beta = d_beta;
            m_anns = d_anns;
            m_facts = d_facts;
            m_sender = sender;
            m_sender_port = port;
          } )
        :: !sends
  done;
  (st, !sends)

(* Facts (flooded and locally recorded) whose source is [sid]. *)
let known_out_edges st sid =
  Fact_set.fold (fun f acc -> if compare_sender_id f.src sid = 0 then acc + 1 else acc)
    st.facts 0
  + List.length
      (List.filter (fun (s, _, _) -> compare_sender_id s sid = 0) st.local_ends)

let accepting st =
  Interval_core.accepting st.core
  && Ann_set.exists (fun a -> a.ann_who = Root) st.anns
  && Ann_set.for_all (fun a -> known_out_edges st a.ann_who = a.ann_out) st.anns

let encode_sender_id w sid =
  match sid with
  | Root -> Bitio.Bit_writer.bit w false
  | Labeled iv ->
      Bitio.Bit_writer.bit w true;
      I.write w iv

let encode w msg =
  Is.write w msg.m_alpha;
  Is.write w msg.m_beta;
  Bitio.Codes.write_gamma0 w (List.length msg.m_anns);
  List.iter
    (fun a ->
      encode_sender_id w a.ann_who;
      Bitio.Codes.write_gamma0 w a.ann_out;
      Bitio.Codes.write_gamma0 w a.ann_in)
    msg.m_anns;
  Bitio.Codes.write_gamma0 w (List.length msg.m_facts);
  List.iter
    (fun f ->
      encode_sender_id w f.src;
      Bitio.Codes.write_gamma0 w f.src_port;
      I.write w f.dst;
      Bitio.Codes.write_gamma0 w f.dst_port)
    msg.m_facts;
  (match msg.m_sender with
  | None -> Bitio.Bit_writer.bit w false
  | Some sid ->
      Bitio.Bit_writer.bit w true;
      encode_sender_id w sid);
  Bitio.Codes.write_gamma0 w msg.m_sender_port

let decode_sender_id r =
  if Bitio.Bit_reader.bit r then Labeled (I.read r) else Root

let decode r =
  let m_alpha = Is.read r in
  let m_beta = Is.read r in
  let read_list read_one =
    let n = Bitio.Codes.read_gamma0 r in
    let rec go acc k = if k = 0 then List.rev acc else go (read_one () :: acc) (k - 1) in
    go [] n
  in
  let m_anns =
    read_list (fun () ->
        let ann_who = decode_sender_id r in
        let ann_out = Bitio.Codes.read_gamma0 r in
        let ann_in = Bitio.Codes.read_gamma0 r in
        { ann_who; ann_out; ann_in })
  in
  let m_facts =
    read_list (fun () ->
        let src = decode_sender_id r in
        let src_port = Bitio.Codes.read_gamma0 r in
        let dst = I.read r in
        let dst_port = Bitio.Codes.read_gamma0 r in
        { src; src_port; dst; dst_port })
  in
  let m_sender =
    if Bitio.Bit_reader.bit r then Some (decode_sender_id r) else None
  in
  let m_sender_port = Bitio.Codes.read_gamma0 r in
  { m_alpha; m_beta; m_anns; m_facts; m_sender; m_sender_port }

let equal_message a b =
  Is.equal a.m_alpha b.m_alpha
  && Is.equal a.m_beta b.m_beta
  && List.equal (fun x y -> compare_announcement x y = 0) a.m_anns b.m_anns
  && List.equal (fun x y -> compare_fact x y = 0) a.m_facts b.m_facts
  && Option.equal (fun x y -> compare_sender_id x y = 0) a.m_sender b.m_sender
  && a.m_sender_port = b.m_sender_port

let interval_bits = I.size_bits

let state_bits st =
  let iset_bits = Is.size_bits in
  let core_bits =
    Array.fold_left
      (fun acc a -> acc + iset_bits a)
      (iset_bits st.core.Interval_core.beta
      + iset_bits st.core.Interval_core.label
      + iset_bits st.core.Interval_core.seen_alpha
      + 8)
      st.core.Interval_core.alpha
  in
  let ann_bits =
    Ann_set.fold
      (fun a acc ->
        acc + 32
        + (match a.ann_who with Root -> 1 | Labeled iv -> 1 + interval_bits iv))
      st.anns 0
  in
  let fact_bits =
    Fact_set.fold
      (fun f acc ->
        acc + interval_bits f.dst + 32
        + (match f.src with Root -> 1 | Labeled iv -> 1 + interval_bits iv))
      st.facts 0
  in
  let table_bits =
    Array.fold_left
      (fun acc info ->
        match info with
        | None -> acc + 1
        | Some (Root, _) -> acc + 17
        | Some (Labeled iv, _) -> acc + 17 + interval_bits iv)
      0 st.in_info
  in
  core_bits + ann_bits + fact_bits + table_bits + (48 * List.length st.local_ends)

let pp_message fmt msg =
  Format.fprintf fmt "alpha=%s beta=%s anns=%d facts=%d" (Is.to_string msg.m_alpha)
    (Is.to_string msg.m_beta) (List.length msg.m_anns) (List.length msg.m_facts)

let pp_state fmt st =
  Format.fprintf fmt "label=%s anns=%d facts=%d covered=%s"
    (match st.my_label with Some iv -> I.to_string iv | None -> "-")
    (Ann_set.cardinal st.anns) (Fact_set.cardinal st.facts)
    (Is.to_string (Interval_core.covered st.core))

let sender_id_key = function
  | Root -> "R"
  | Labeled iv -> "L" ^ I.to_string iv

let digest st =
  let c = Runtime.Canonical.create () in
  Runtime.Canonical.add_string c (Interval_core.digest st.core);
  Runtime.Canonical.add_string c
    (match st.my_label with None -> "-" | Some iv -> I.to_string iv);
  Runtime.Canonical.add_int c (Array.length st.in_info);
  Array.iter
    (fun info ->
      Runtime.Canonical.add_string c
        (match info with
        | None -> "-"
        | Some (sid, port) -> sender_id_key sid ^ "@" ^ string_of_int port))
    st.in_info;
  (* Set iteration is already canonical (element order); [local_ends] is a
     cons-order list, so sort its rendering. *)
  Runtime.Canonical.add_int c (Ann_set.cardinal st.anns);
  Ann_set.iter
    (fun a ->
      Runtime.Canonical.add_string c
        (Printf.sprintf "%s/%d/%d" (sender_id_key a.ann_who) a.ann_out a.ann_in))
    st.anns;
  Runtime.Canonical.add_int c (Fact_set.cardinal st.facts);
  Fact_set.iter
    (fun f ->
      Runtime.Canonical.add_string c
        (Printf.sprintf "%s/%d>%s/%d" (sender_id_key f.src) f.src_port
           (I.to_string f.dst) f.dst_port))
    st.facts;
  Runtime.Canonical.add_sorted_strings c
    (List.map
       (fun (sid, sp, ip) ->
         Printf.sprintf "%s/%d/%d" (sender_id_key sid) sp ip)
       st.local_ends);
  Runtime.Canonical.contents c

(* Same linearity law as {!Interval_protocol}: the alpha commodity rides the
   labeling core unchanged; announcements and facts flood like beta and are
   exempt. *)
let conservation =
  Some
    (Runtime.Protocol_intf.Conservation
       {
         zero = (Is.empty, true);
         add =
           (fun (a, ok) (b, ok') -> (Is.union a b, ok && ok' && Is.disjoint a b));
         of_message = (fun m -> (m.m_alpha, true));
         retained =
           (fun ~out_degree ~in_degree:_ st ->
             if out_degree = 0 then (st.core.Interval_core.seen_alpha, true)
             else (st.core.Interval_core.label, true));
         check =
           (fun (_total, ok) ->
             if ok then Ok ()
             else Error "alpha commodity duplicated across the cut");
       })

let vertex_invariant =
  Some (fun ~out_degree:_ ~in_degree:_ st -> Interval_core.invariant st.core)

let vertex_label st = st.my_label
let announcements st = Ann_set.elements st.anns
let facts st = Fact_set.elements st.facts

type network_map = { graph : Digraph.t; labels : I.t option array }

let extract_map st =
  if not (accepting st) then Error "terminal state is not accepting"
  else begin
    let root_ann, anns =
      List.partition (fun a -> a.ann_who = Root) (Ann_set.elements st.anns)
    in
    let k = List.length anns in
    (* s = 0, internal vertices 1..k in label order, t = k+1. *)
    let t_id = k + 1 in
    let id_of_label =
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i a ->
          match a.ann_who with
          | Labeled iv -> Hashtbl.add tbl (I.to_string iv) (i + 1)
          | Root -> ())
        anns;
      tbl
    in
    let id_of_sender = function
      | Root -> Some 0
      | Labeled iv -> Hashtbl.find_opt id_of_label (I.to_string iv)
    in
    let exception Bad of string in
    try
      (* Out-edge target per (source id, out port). *)
      let out_deg = Array.make (k + 2) 0 in
      out_deg.(0) <-
        (match root_ann with
        | [ a ] -> a.ann_out
        | _ -> raise (Bad "expected exactly one root announcement"));
      List.iteri (fun i a -> out_deg.(i + 1) <- a.ann_out) anns;
      let targets = Array.init (k + 2) (fun v -> Array.make out_deg.(v) (-1)) in
      let record src port dst =
        match id_of_sender src with
        | None -> raise (Bad "fact references an unannounced label")
        | Some sid ->
            if port < 0 || port >= out_deg.(sid) then
              raise (Bad "fact port out of range");
            if targets.(sid).(port) <> -1 then raise (Bad "duplicate fact for port");
            targets.(sid).(port) <- dst
      in
      Fact_set.iter
        (fun f ->
          match Hashtbl.find_opt id_of_label (I.to_string f.dst) with
          | None -> raise (Bad "fact destination not announced")
          | Some dst -> record f.src f.src_port dst)
        st.facts;
      List.iter (fun (src, port, _in_port) -> record src port t_id) st.local_ends;
      let edges = ref [] in
      for v = k + 1 downto 0 do
        for j = out_deg.(v) - 1 downto 0 do
          if targets.(v).(j) = -1 then raise (Bad "missing fact for an out-port");
          edges := (v, targets.(v).(j)) :: !edges
        done
      done;
      let graph = Digraph.make ~n:(k + 2) ~s:0 ~t:t_id !edges in
      let labels = Array.make (k + 2) None in
      List.iteri
        (fun i a ->
          match a.ann_who with
          | Labeled iv -> labels.(i + 1) <- Some iv
          | Root -> ())
        anns;
      Ok { graph; labels }
    with Bad reason -> Error reason
  end

let map_isomorphic m ground_truth = Digraph.isomorphic m.graph ground_truth
