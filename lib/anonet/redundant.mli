(** Redundant-broadcast resilience layer: k-repetition coding with
    receive-side idempotence.

    The paper's edges are one-way and anonymous — a receiver cannot NACK,
    so retransmission-on-demand is impossible and the only feedback-free
    defense against message loss is repetition: send every protocol message
    [k] times and make the receiver idempotent.  {!Make} wraps any
    {!Runtime.Protocol_intf.PROTOCOL} that way: each emission (including the
    root's) is repeated [k] times, and a receiver processes at most one copy
    of each distinct (in-port, wire-encoding) pair, dropping the rest
    unprocessed (and unanswered).

    Consequences, measurable with the engine's fault injection:

    - a per-copy drop probability [p] becomes a per-logical-message loss of
      [p^k] — the wrapper restores broadcast at drop rates where the bare
      protocol reliably starves, at a cost of [k]x the bits plus the
      receiver-side dedup memory (charged honestly via [state_bits]);
    - channel {e duplication} is neutralized outright: the re-delivered
      copy is recognized and ignored, so the false-termination attacks on
      the bare protocols (a duplicated alpha commodity is indistinguishable
      from a detected cycle) no longer apply;
    - single-bit {e corruption} is detected: the wrapper's codec prefixes
      the base encoding with a 16-bit checksum over the encoded bits and
      their length, so a flipped wire bit makes [decode] raise
      {!Runtime.Protocol_intf.Checksum_reject} instead of silently
      yielding a different valid message (a corrupted commodity amount can
      otherwise inflate the terminal's flow past 1 and falsely terminate
      the bare protocol).  The engines count each detected rejection in
      the report's [fault_stats.checksum_rejects] — distinguishing caught
      corruption from accidental garbling — and degrade it into a drop,
      which the [k] repetitions then heal.  A flip the checksum {e fails}
      to catch (a collision) still surfaces: it is delivered and counted
      under [corrupted_deliveries] rather than accepted invisibly.

    The codec guard assumes the base codec is canonical — [encode (decode
    bits) = bits] — which {!Runtime.Protocol_intf.verify_codec} checks for
    every protocol in this library.

    The wrapper assumes the base protocol never legitimately sends the same
    wire encoding twice over one edge.  The paper's protocols satisfy this:
    the commodity protocols send once per out-edge (Lemma 3.3), and the
    interval protocols only ever emit deltas covering fresh sub-intervals,
    so two equal encodings on one edge are necessarily the same logical
    message.  For a protocol without this property the dedup layer would
    suppress genuine repeats. *)

module Make (_ : sig
  val k : int
  (** Copies per logical message; must be >= 1. *)
end)
(P : Runtime.Protocol_intf.PROTOCOL) : sig
  include
    Runtime.Protocol_intf.PROTOCOL with type message = P.message

  val inner : state -> P.state
  (** The wrapped protocol's state, e.g. for extracting results. *)

  val dedup_entries : state -> int
  (** Distinct (in-port, encoding) pairs remembered so far. *)
end
