(** Distributed broadcasting and mapping protocols in directed anonymous
    networks — an OCaml reproduction of Langberg, Schwartz & Bruck
    (PODC 2007).

    The typical session builds a network ({!Digraph}), runs a protocol on it
    through one of the {e convenience runners} below (or an {e engine} for
    full reports), and inspects the returned {!stats}:

    {[
      let prng = Prng.create 7 in
      let g =
        Digraph.Families.random_digraph prng ~n:50 ~extra_edges:30
          ~back_edges:10 ~t_edge_prob:0.2
      in
      let stats = Anonet.broadcast_general g in
      assert (stats.Anonet.outcome = Runtime.Engine.Terminated)
    ]} *)

(** {1 Protocol modules}

    Each implements {!Runtime.Protocol_intf.PROTOCOL}; run them through the
    engines below or through {!Runtime.Sync_engine} for the synchronous
    model. *)

module Commodity = Commodity
module Flood = Flood
module Scalar_broadcast = Scalar_broadcast
module Dag_broadcast = Dag_broadcast
module Interval_core = Interval_core
module Interval_protocol = Interval_protocol
module General_broadcast = General_broadcast
module Labeling = Labeling
module Mapping = Mapping
module Undirected_labeling = Undirected_labeling
module Lower_bounds = Lower_bounds

module Amnesiac_flood = Amnesiac_flood
(** Stateless flooding (Austin et al.): terminates on DAGs, livelocks the
    moment a cycle edge exists — the dynamic-network negative control. *)

module Counting = Counting
(** Anonymous counting: dyadic broadcast flow carrying a mint-once counter
    ledger; the terminal learns [n] exactly (see {!Counting.census}). *)

module Redundant = Redundant
(** k-repetition resilience wrapper for any protocol — the feedback-free
    defense against lossy channels (see {!Redundant.Make}). *)

module Resilient = Resilient
(** Self-healing stacks: {!Redundant} composed with {!Runtime.Supervisor},
    adaptive escalation of the repetition factor, and the chaos-search
    runners/graphs the [anonet chaos] CLI and the E17 bench consume. *)

module Check_suite = Check_suite
(** The model-checking suite for [anonet check] / [bench -- check]: every
    protocol on every small family it must be correct on, plus the
    sabotaged-split negative control (see {!Runtime.Explore}). *)

module Tree_broadcast : module type of Scalar_broadcast.Make (Commodity.Pow2_dyadic)
(** Section 3.1's grounded-tree protocol: power-of-two flow splitting. *)

module Tree_broadcast_naive :
  module type of Scalar_broadcast.Make (Commodity.Even_rational)
(** The naive [x/d] splitting baseline of Section 3.1. *)

module Dag_broadcast_pow2 : module type of Dag_broadcast.Make (Commodity.Pow2_dyadic)
(** Section 3.3's DAG protocol under the power-of-two rule. *)

module Dag_broadcast_naive :
  module type of Dag_broadcast.Make (Commodity.Even_rational)
(** Section 3.3's DAG protocol under the naive rule. *)

(** {1 Engines}

    Pre-instantiated asynchronous engines, one per protocol; their [run]
    accepts schedulers, fault injection, codec verification and payload
    size — see {!Runtime.Engine.Make}. *)

module Flood_engine : module type of Runtime.Engine.Make (Flood)
module Amnesiac_engine : module type of Runtime.Engine.Make (Amnesiac_flood)
module Counting_engine : module type of Runtime.Engine.Make (Counting)
module Tree_engine : module type of Runtime.Engine.Make (Tree_broadcast)
module Tree_naive_engine : module type of Runtime.Engine.Make (Tree_broadcast_naive)
module Dag_engine : module type of Runtime.Engine.Make (Dag_broadcast_pow2)
module Dag_naive_engine : module type of Runtime.Engine.Make (Dag_broadcast_naive)
module General_engine : module type of Runtime.Engine.Make (General_broadcast)
module Labeling_engine : module type of Runtime.Engine.Make (Labeling)
module Mapping_engine : module type of Runtime.Engine.Make (Mapping)
module Undirected_engine : module type of Runtime.Engine.Make (Undirected_labeling)

(** {1 Convenience runners} *)

type stats = {
  outcome : Runtime.Engine.outcome;
  deliveries : int;  (** Messages delivered before the run stopped. *)
  total_bits : int;  (** Total communication complexity. *)
  max_edge_bits : int;  (** Required bandwidth (busiest edge). *)
  max_message_bits : int;  (** Largest single message. *)
  distinct_messages : int;  (** Distinct symbols observed — [|Sigma_G|]. *)
  all_visited : bool;  (** Did every vertex receive at least one message? *)
}
(** The protocol-independent summary of an execution. *)

val stats_of_report : _ Runtime.Engine.report -> stats

val broadcast_tree :
  ?scheduler:Runtime.Scheduler.t -> ?payload_bits:int -> Digraph.t -> stats
(** Section 3.1's protocol.  Halts iff every vertex of a grounded tree is
    connected to [t]; [payload_bits] models the broadcast message [m]. *)

val broadcast_tree_naive :
  ?scheduler:Runtime.Scheduler.t -> ?payload_bits:int -> Digraph.t -> stats
(** The [x/d] ablation baseline. *)

val broadcast_dag :
  ?scheduler:Runtime.Scheduler.t -> ?payload_bits:int -> Digraph.t -> stats
(** Section 3.3's protocol: one message per edge on DAGs; deadlocks
    (reports [Quiescent]) on cyclic inputs. *)

val broadcast_general :
  ?scheduler:Runtime.Scheduler.t -> ?payload_bits:int -> Digraph.t -> stats
(** The paper's main protocol (Section 4): terminates on arbitrary directed
    networks iff every vertex lies on a path to [t]. *)

val assign_labels :
  ?scheduler:Runtime.Scheduler.t ->
  ?payload_bits:int ->
  Digraph.t ->
  stats * Intervals.Iset.t array
(** Section 5's protocol.  Returns the per-vertex labels (indexed by vertex;
    empty for [s], single non-empty disjoint intervals for every internal
    vertex on termination). *)

val assign_labels_undirected :
  ?scheduler:Runtime.Scheduler.t ->
  ?payload_bits:int ->
  Digraph.t ->
  stats * int option array
(** The token-DFS baseline for {e undirected} anonymous networks
    (bidirected families with aligned ports): consecutive integer labels of
    [O(log |V|)] bits — the other side of the conclusion's exponential
    gap. *)

val map_network :
  ?scheduler:Runtime.Scheduler.t ->
  ?payload_bits:int ->
  Digraph.t ->
  stats * (Mapping.network_map, string) result
(** The mapping protocol: on termination, the reconstructed port-numbered
    network (provably isomorphic to the input — check with
    {!Mapping.map_isomorphic}). *)
