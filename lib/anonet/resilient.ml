type attempt = {
  a_k : int;
  a_outcome : Runtime.Engine.outcome;
  a_deliveries : int;
  a_total_bits : int;
  a_all_visited : bool;
  a_losses : int;
}

type escalation = {
  attempts : attempt list;
  final_k : int;
  terminated : bool;
}

let redundant ~k (module P : Runtime.Protocol_intf.PROTOCOL) =
  (module Redundant.Make
            (struct
              let k = k
            end)
            (P) : Runtime.Protocol_intf.PROTOCOL)

let chaos_runner ?name ?(k = 3) (module P : Runtime.Protocol_intf.PROTOCOL) =
  let (module R) = if k = 1 then (module P : Runtime.Protocol_intf.PROTOCOL) else redundant ~k (module P) in
  let module C = Runtime.Chaos.Of_protocol (R) in
  C.runner ?name ()

(* The loss signals the supervisor's escalation policy reacts to: copies
   that provably never reached a receive.  All are observable from the
   report alone — no oracle access to the fault plan. *)
let losses_of (r : _ Runtime.Engine.report) =
  r.fault_stats.dropped_copies + r.fault_stats.garbled_drops
  + r.fault_stats.checksum_rejects + r.vfault_stats.down_drops
  + r.vfault_stats.stuttered

let run_escalating ?(k0 = 1) ?(k_max = 8) ?scheduler ?step_limit
    ?(faults = Runtime.Faults.none) ?(vfaults = Runtime.Vfaults.none)
    ?(supervisor = Runtime.Supervisor.default)
    (module P : Runtime.Protocol_intf.PROTOCOL) g =
  if k0 < 1 then invalid_arg "Resilient.run_escalating: k0 must be >= 1";
  let attempt k =
    let (module R) = if k = 1 then (module P : Runtime.Protocol_intf.PROTOCOL) else redundant ~k (module P) in
    let module E = Runtime.Engine.Make (R) in
    let r = E.run ?scheduler ?step_limit ~faults ~vfaults ~supervisor g in
    {
      a_k = k;
      a_outcome = r.outcome;
      a_deliveries = r.deliveries;
      a_total_bits = r.total_bits;
      a_all_visited = Array.for_all (fun v -> v) r.visited;
      a_losses = losses_of r;
    }
  in
  let rec go k acc =
    let a = attempt k in
    let acc = a :: acc in
    let stop =
      a.a_outcome = Runtime.Engine.Terminated
      || a.a_losses = 0 (* nothing was lost; more copies cannot help *)
      || 2 * k > k_max
    in
    if stop then (List.rev acc, a)
    else go (2 * k) acc
  in
  let attempts, last = go k0 [] in
  {
    attempts;
    final_k = last.a_k;
    terminated = last.a_outcome = Runtime.Engine.Terminated;
  }

let chaos_graphs () =
  let module F = Digraph.Families in
  [
    {
      Runtime.Campaign.g_name = "random-tree-16";
      build =
        (fun ~seed ->
          F.random_grounded_tree (Prng.create seed) ~n:16 ~t_edge_prob:0.3);
    };
    {
      Runtime.Campaign.g_name = "random-dag-16";
      build =
        (fun ~seed ->
          F.random_dag (Prng.create seed) ~n:16 ~extra_edges:16
            ~t_edge_prob:0.25);
    };
    {
      Runtime.Campaign.g_name = "random-digraph-16";
      build =
        (fun ~seed ->
          F.random_digraph (Prng.create seed) ~n:16 ~extra_edges:10
            ~back_edges:4 ~t_edge_prob:0.25);
    };
  ]
