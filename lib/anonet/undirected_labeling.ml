type message =
  | Start
  | Token of int  (** carries the next free identifier *)
  | Return of int
  | Done of int  (** carries the total vertex count *)

type state = {
  id : int option;
  parent : int option;  (** bidirected port towards the DFS parent *)
  next_port : int;  (** next bidirected port to explore *)
  is_root : bool;
  done_count : int option;  (** set once the Done flood has passed through *)
}

let name = "undirected-labeling"

let initial_state ~out_degree:_ ~in_degree:_ =
  { id = None; parent = None; next_port = 0; is_root = false; done_count = None }

let root_emit ~out_degree = List.init out_degree (fun j -> (j, Start))

(* Bidirected ports are 0 .. out_degree - 2; the last out-port leads to t. *)
let network_ports ~out_degree = max 0 (out_degree - 1)

(* Advance the exploration: hand the token to the next unexplored port, or
   close the subtree (Return to parent / Done flood at the root). *)
let rec explore ~out_degree st counter =
  let k = network_ports ~out_degree in
  let p = st.next_port in
  if p < k then
    if st.parent = Some p then
      explore ~out_degree { st with next_port = p + 1 } counter
    else ({ st with next_port = p + 1 }, [ (p, Token counter) ])
  else if st.is_root then begin
    (* Traversal complete: the root has feedback, so it can announce both
       completion and the exact vertex count. *)
    let st = { st with done_count = Some counter } in
    (st, List.init out_degree (fun j -> (j, Done counter)))
  end
  else begin
    match st.parent with
    | Some parent -> (st, [ (parent, Return counter) ])
    | None -> (st, [])
  end

let receive ~out_degree ~in_degree:_ st msg ~in_port =
  match msg with
  | Start ->
      if st.id <> None then (st, [])
      else explore ~out_degree { st with is_root = true; id = Some 0 } 1
  | Token c ->
      if st.id = None then
        explore ~out_degree { st with id = Some c; parent = Some in_port } (c + 1)
      else (st, [ (in_port, Return c) ])
  | Return c -> explore ~out_degree st c
  | Done c ->
      if st.done_count <> None then (st, [])
      else
        ( { st with done_count = Some c },
          List.init out_degree (fun j -> (j, Done c)) )

let accepting st = st.done_count <> None

let encode w = function
  | Start -> Bitio.Bit_writer.bits w 0 2
  | Token c ->
      Bitio.Bit_writer.bits w 1 2;
      Bitio.Codes.write_gamma0 w c
  | Return c ->
      Bitio.Bit_writer.bits w 2 2;
      Bitio.Codes.write_gamma0 w c
  | Done c ->
      Bitio.Bit_writer.bits w 3 2;
      Bitio.Codes.write_gamma0 w c

let decode r =
  match Bitio.Bit_reader.bits r 2 with
  | 0 -> Start
  | 1 -> Token (Bitio.Codes.read_gamma0 r)
  | 2 -> Return (Bitio.Codes.read_gamma0 r)
  | _ -> Done (Bitio.Codes.read_gamma0 r)

let equal_message (a : message) (b : message) = a = b

let state_bits st =
  let id_bits = match st.id with None -> 1 | Some c -> Bitio.Codes.gamma0_size c in
  id_bits + 34

let pp_message fmt = function
  | Start -> Format.pp_print_string fmt "start"
  | Token c -> Format.fprintf fmt "token(%d)" c
  | Return c -> Format.fprintf fmt "return(%d)" c
  | Done c -> Format.fprintf fmt "done(%d)" c

let pp_state fmt st =
  Format.fprintf fmt "id=%s root=%b done=%s"
    (match st.id with Some i -> string_of_int i | None -> "-")
    st.is_root
    (match st.done_count with Some c -> string_of_int c | None -> "-")

let digest st =
  Printf.sprintf "%s|%s|%d|%c|%s"
    (match st.id with None -> "-" | Some i -> string_of_int i)
    (match st.parent with None -> "-" | Some p -> string_of_int p)
    st.next_port
    (if st.is_root then 'r' else '.')
    (match st.done_count with None -> "-" | Some c -> string_of_int c)

(* The single DFS token is conserved until the Done flood duplicates it;
   no whole-run linear law to state. *)
let conservation = None
let vertex_invariant = None

let vertex_id st = st.id
let total_count st = st.done_count
