(* The long-lived broadcast service.

   One [t] owns: the graph table (family specs resolved once at startup,
   shared read-only by every session), the session table, a bounded
   admission queue drained by [workers] domains, per-connection submission
   credits, and a server-wide [Obs.Registry] into which every finished
   session's private registry is rolled up under the "sessions." prefix.

   [handle_line] is the whole protocol: the stdio/socket event loop, the
   in-process tests and the bench all drive the same function, so wire
   coverage is engine coverage.  It is safe to call from any domain — the
   tables take their own locks, server counters are atomic, and the merge
   lock serializes every touch of the shared registry (whose cell updates
   are plain stores).

   Metrics reconciliation contract: a worker merges a session's registry
   {e before} publishing its final state, so any client that has observed
   a session finish observes a server registry that already contains it —
   "sessions.engine.deliveries" equals the sum of [deliveries] over the
   results the client has collected, exactly.

   Durability contract (with [journal] configured): a submit is journaled
   {e before} its acknowledgement leaves [handle_line], and a session's
   terminal record is journaled before the state becomes pollable — so
   "acknowledged" implies "replayable".  On restart, [create] replays the
   log: terminal-record sessions are restored (Done results re-executed
   and digest-verified — the serve layer's byte-determinism makes replay
   {e be} recovery), incomplete ones are re-executed to completion.  The
   crash window between a worker publishing Done and its Result record
   landing is closed by the same determinism: recovery re-executes the
   submit and produces the identical bytes the client saw. *)

module R = Obs.Registry

type config = {
  graphs : (string * string) list;  (* name -> family spec *)
  workers : int;  (* 0 = drain via [step] (tests) *)
  max_queue : int;
  credits : int;  (* max unfinished sessions per connection *)
  step_limit : int;  (* default when a submit names none *)
  default_engine : string;  (* "classic" | "flat", when a submit names none *)
  sample_every : int;  (* per-session Obs sampling cadence *)
  max_line : int;
  journal : string option;  (* WAL path; None = no durability *)
  journal_sync : bool;  (* fsync on append (false: bench baselines) *)
  shed_watermark_ms : int;  (* queue-latency watermark; 0 = plain FIFO *)
  watchdog : Watchdog.config option;
}

let default_config =
  {
    graphs = [ ("small", "comb:8") ];
    workers = 2;
    max_queue = 64;
    credits = 32;
    step_limit = 10_000_000;
    default_engine = "classic";
    sample_every = 1 lsl 20;
    max_line = Wire.default_max_line;
    journal = None;
    journal_sync = true;
    shed_watermark_ms = 0;
    watchdog = None;
  }

type recovery = {
  rec_replayed : int;  (* submits re-executed during recovery *)
  rec_verified : int;  (* re-executed results matching their digest *)
  rec_mismatched : int;  (* determinism violations — should be 0 *)
  rec_completed : int;  (* acked-but-unfinished submits finished now *)
  rec_cancelled : int;  (* restored from Cancelled records, not re-run *)
  rec_failed : int;  (* restored from Failed records, not re-run *)
  rec_orphans : int;  (* terminal records with no surviving submit *)
  rec_unreplayable : int;  (* submits this config can no longer run *)
  rec_torn : bool;  (* the log had a damaged tail (truncated away) *)
}

type t = {
  cfg : config;
  graphs : (string * Flatcore.Csr.t) list;
      (* compiled once at boot; flat sessions run the CSR directly *)
  sessions : Session.table;
  queue : Session.t Sched.t;
  registry : R.t;
  merge_lock : Mutex.t;
  c_submitted : R.acounter;
  c_completed : R.acounter;
  c_cancelled : R.acounter;
  c_failed : R.acounter;
  c_rejected_overloaded : R.acounter;
  c_rejected_shed : R.acounter;
  c_rejected_no_credit : R.acounter;
  c_frames : R.acounter;
  c_frame_errors : R.acounter;
  c_overflows : R.acounter;
  c_key_hits : R.acounter;
  shutdown_flag : bool Atomic.t;
  credits_tbl : (int, int) Hashtbl.t;
  credits_lock : Mutex.t;
  keys_tbl : (string, string) Hashtbl.t;  (* idempotency key -> session id *)
  keys_lock : Mutex.t;
  journal : Journal.t option;
  watchdog : Watchdog.t option;
  recovery : recovery option;
  mutable worker_doms : unit Domain.t list;
  mutable wd_running : bool;
  mutable stopped : bool;
}

(* {1 Journal replay = recovery}

   Fold the log into per-id entries (submit line + first terminal record
   of each kind), then restore sessions in submit order.  Precedence:
   a [Result] record means the client may have seen those exact bytes, so
   re-execute and digest-verify; [Cancelled]/[Failed] are restored as-is
   (re-running a cancelled session would resurrect work the client
   explicitly killed); no terminal record at all means the submit was
   acknowledged but unfinished — determinism lets us simply run it now. *)

type replay_entry = {
  mutable e_line : string;
  mutable e_result : (string * int * int) option;  (* digest, deliv, bits *)
  mutable e_cancel : string option;
  mutable e_fail : (string * string) option;
}

let replay_journal t ~(scan : Journal.scan) =
  let entries : (string, replay_entry) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let orphans = ref 0 in
  let terminal id f =
    match Hashtbl.find_opt entries id with
    | None -> incr orphans
    | Some e -> f e
  in
  List.iter
    (fun (r : Journal.record) ->
      match r with
      | Journal.Submitted { id; line } ->
          if not (Hashtbl.mem entries id) then begin
            Hashtbl.add entries id
              { e_line = line; e_result = None; e_cancel = None; e_fail = None };
            order := id :: !order
          end
      | Journal.Result { id; digest; deliveries; total_bits; _ } ->
          terminal id (fun e ->
              if e.e_result = None then
                e.e_result <- Some (digest, deliveries, total_bits))
      | Journal.Cancelled { id; reason } ->
          terminal id (fun e ->
              if e.e_cancel = None then e.e_cancel <- Some reason)
      | Journal.Failed { id; code; msg } ->
          terminal id (fun e ->
              if e.e_fail = None then e.e_fail <- Some (code, msg)))
    scan.Journal.records;
  let replayed = ref 0
  and verified = ref 0
  and mismatched = ref 0
  and completed = ref 0
  and cancelled = ref 0
  and failed = ref 0
  and unreplayable = ref 0 in
  let now = Unix.gettimeofday () in
  let restore (s : Session.t) state ~deliveries ~total_bits =
    Session.transition t.sessions s (fun s ->
        s.Session.state <- state;
        s.Session.credit_released <- true;
        s.Session.deliveries <- deliveries;
        s.Session.total_bits <- total_bits;
        s.Session.t_finished <- now)
  in
  (* Re-execute one journaled submit on the current process's graphs.
     [stop] never fires: the original run finished (or was owed a
     finish), and replay telemetry merges under "recovery." so the
     "sessions." reconciliation contract stays exact. *)
  let rerun (sub : Proto.submit) =
    let g = List.assoc sub.Proto.sub_graph t.graphs in
    let obs = Obs.create ~sample_every:t.cfg.sample_every () in
    let res =
      Runner.run ~stop:(fun () -> false) ~obs ~step_limit:t.cfg.step_limit sub
        g
    in
    Mutex.lock t.merge_lock;
    R.merge ~into:t.registry ~prefix:"recovery." (R.snapshot obs.Obs.registry);
    Mutex.unlock t.merge_lock;
    res
  in
  List.iter
    (fun id ->
      let e = Hashtbl.find entries id in
      match Proto.parse_request ~default_engine:t.cfg.default_engine e.e_line with
      | Ok (Proto.Submit sub) when sub.Proto.sub_id = id -> (
          match
            Session.add t.sessions ~conn:(-1) ~now sub
          with
          | Error () -> incr unreplayable  (* duplicate submit id in log *)
          | Ok s ->
              (match sub.Proto.sub_key with
              | Some k ->
                  if not (Hashtbl.mem t.keys_tbl k) then
                    Hashtbl.add t.keys_tbl k id
              | None -> ());
              if not (Runner.protocol_known sub.Proto.sub_protocol) then begin
                incr unreplayable;
                restore s
                  (Session.Failed
                     ( Proto.Unknown_protocol,
                       Printf.sprintf "unreplayable: unknown protocol %S"
                         sub.Proto.sub_protocol ))
                  ~deliveries:0 ~total_bits:0
              end
              else if not (List.mem_assoc sub.Proto.sub_graph t.graphs) then begin
                incr unreplayable;
                restore s
                  (Session.Failed
                     ( Proto.Unknown_graph,
                       Printf.sprintf "unreplayable: unknown graph %S"
                         sub.Proto.sub_graph ))
                  ~deliveries:0 ~total_bits:0
              end
              else
                match (e.e_result, e.e_cancel, e.e_fail) with
                | Some (digest, _, _), _, _ -> (
                    match rerun sub with
                    | exception ex ->
                        incr unreplayable;
                        restore s
                          (Session.Failed
                             ( Proto.Bad_request,
                               "replay raised: " ^ Printexc.to_string ex ))
                          ~deliveries:0 ~total_bits:0
                    | res ->
                        incr replayed;
                        if Journal.digest res.Runner.json = digest then
                          incr verified
                        else incr mismatched;
                        restore s (Session.Done res.Runner.json)
                          ~deliveries:res.Runner.r_deliveries
                          ~total_bits:res.Runner.r_total_bits)
                | None, Some reason, _ ->
                    incr cancelled;
                    restore s (Session.Cancelled reason) ~deliveries:0
                      ~total_bits:0
                | None, None, Some (code, msg) ->
                    incr failed;
                    restore s
                      (Session.Failed (Proto.code_of_string code, msg))
                      ~deliveries:0 ~total_bits:0
                | None, None, None -> (
                    (* Acknowledged, never finished: finish it now and
                       journal the result this process just produced. *)
                    match rerun sub with
                    | exception ex ->
                        incr unreplayable;
                        restore s
                          (Session.Failed
                             ( Proto.Bad_request,
                               "replay raised: " ^ Printexc.to_string ex ))
                          ~deliveries:0 ~total_bits:0
                    | res ->
                        incr replayed;
                        incr completed;
                        restore s (Session.Done res.Runner.json)
                          ~deliveries:res.Runner.r_deliveries
                          ~total_bits:res.Runner.r_total_bits;
                        Option.iter
                          (fun j ->
                            Journal.append j
                              (Journal.Result
                                 {
                                   id;
                                   digest = Journal.digest res.Runner.json;
                                   outcome = "done";
                                   deliveries = res.Runner.r_deliveries;
                                   total_bits = res.Runner.r_total_bits;
                                 }))
                          t.journal))
      | Ok _ | Error _ -> incr unreplayable)
    (List.rev !order);
  let rec_summary =
    {
      rec_replayed = !replayed;
      rec_verified = !verified;
      rec_mismatched = !mismatched;
      rec_completed = !completed;
      rec_cancelled = !cancelled;
      rec_failed = !failed;
      rec_orphans = !orphans;
      rec_unreplayable = !unreplayable;
      rec_torn = scan.Journal.torn;
    }
  in
  (* Mirror the summary into plain counters so [metrics] exposes exactly
     what [Server.recovery] reports — same reconciliation discipline as
     the sessions rollup. *)
  let mirror name v = R.add (R.counter t.registry name) v in
  mirror "server.recovered.replayed" rec_summary.rec_replayed;
  mirror "server.recovered.verified" rec_summary.rec_verified;
  mirror "server.recovered.mismatched" rec_summary.rec_mismatched;
  mirror "server.recovered.completed" rec_summary.rec_completed;
  mirror "server.recovered.cancelled" rec_summary.rec_cancelled;
  mirror "server.recovered.failed" rec_summary.rec_failed;
  mirror "server.recovered.orphans" rec_summary.rec_orphans;
  mirror "server.recovered.unreplayable" rec_summary.rec_unreplayable;
  mirror "server.recovered.torn" (if rec_summary.rec_torn then 1 else 0);
  rec_summary

let create ?(config = default_config) () =
  if config.workers < 0 then Error "workers must be >= 0"
  else if config.max_queue < 1 then Error "max_queue must be >= 1"
  else if config.credits < 1 then Error "credits must be >= 1"
  else if config.shed_watermark_ms < 0 then
    Error "shed_watermark_ms must be >= 0"
  else if config.graphs = [] then Error "at least one --graph is required"
  else if
    match config.default_engine with "classic" | "flat" -> false | _ -> true
  then
    Error
      (Printf.sprintf "unknown default engine %S (classic | flat)"
         config.default_engine)
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | (name, spec) :: rest -> (
          if List.mem_assoc name acc then
            Error (Printf.sprintf "duplicate graph name %S" name)
          else
            match Digraph.Families.of_spec spec with
            | Ok g -> resolve ((name, Flatcore.Csr.of_digraph g) :: acc) rest
            | Error e -> Error (Printf.sprintf "graph %S: %s" name e))
    in
    match resolve [] config.graphs with
    | Error _ as e -> e
    | Ok graphs -> (
        let registry = R.create () in
        let sessions = Session.create_table () in
        match
          Option.map
            (fun wd_cfg -> Watchdog.create wd_cfg sessions registry)
            config.watchdog
        with
        | exception Invalid_argument m -> Error m
        | watchdog -> (
            let journal_open =
              match config.journal with
              | None -> Ok None
              | Some path -> (
                  match Journal.open_append ~sync:config.journal_sync path with
                  | Ok (j, scan) -> Ok (Some (j, scan))
                  | Error e -> Error (Printf.sprintf "journal %s: %s" path e))
            in
            match journal_open with
            | Error _ as e -> e
            | Ok journal_open ->
                let t =
                  {
                    cfg = config;
                    graphs;
                    sessions;
                    queue =
                      Sched.create ~cap:config.max_queue
                        ~watermark_ms:config.shed_watermark_ms ();
                    registry;
                    merge_lock = Mutex.create ();
                    c_submitted = R.acounter registry "server.sessions.submitted";
                    c_completed = R.acounter registry "server.sessions.completed";
                    c_cancelled = R.acounter registry "server.sessions.cancelled";
                    c_failed = R.acounter registry "server.sessions.failed";
                    c_rejected_overloaded =
                      R.acounter registry "server.rejected.overloaded";
                    c_rejected_shed = R.acounter registry "server.rejected.shed";
                    c_rejected_no_credit =
                      R.acounter registry "server.rejected.no_credit";
                    c_frames = R.acounter registry "server.frames";
                    c_frame_errors = R.acounter registry "server.frame_errors";
                    c_overflows = R.acounter registry "server.wire.overflows";
                    c_key_hits = R.acounter registry "server.sessions.key_hits";
                    shutdown_flag = Atomic.make false;
                    credits_tbl = Hashtbl.create 8;
                    credits_lock = Mutex.create ();
                    keys_tbl = Hashtbl.create 16;
                    keys_lock = Mutex.create ();
                    journal = Option.map fst journal_open;
                    watchdog;
                    recovery = None;
                    worker_doms = [];
                    wd_running = false;
                    stopped = false;
                  }
                in
                let recovery =
                  Option.map (fun (_, scan) -> replay_journal t ~scan)
                    journal_open
                in
                Ok { t with recovery }))

(* {1 Credits} *)

let credit_take t conn =
  Mutex.lock t.credits_lock;
  let used = Option.value ~default:0 (Hashtbl.find_opt t.credits_tbl conn) in
  let got = used < t.cfg.credits in
  if got then Hashtbl.replace t.credits_tbl conn (used + 1);
  Mutex.unlock t.credits_lock;
  got

let credit_release t conn =
  Mutex.lock t.credits_lock;
  (match Hashtbl.find_opt t.credits_tbl conn with
  | Some used when used > 0 -> Hashtbl.replace t.credits_tbl conn (used - 1)
  | _ -> ());
  Mutex.unlock t.credits_lock

(* {1 Idempotency keys}

   A key is claimed under [keys_lock] {e before} admission, so two
   racing submits with the same key serialize here: the loser sees the
   winner's session id even while that session is still in flight.  A
   claim is rolled back only by the claimant (guarded compare), so a
   failed admission frees the key for the next attempt. *)

let key_claim t (sub : Proto.submit) =
  match sub.Proto.sub_key with
  | None -> `No_key
  | Some k ->
      Mutex.lock t.keys_lock;
      let r =
        match Hashtbl.find_opt t.keys_tbl k with
        | Some orig -> `Dup orig
        | None ->
            Hashtbl.replace t.keys_tbl k sub.Proto.sub_id;
            `Claimed
      in
      Mutex.unlock t.keys_lock;
      r

let key_unclaim t k id =
  Mutex.lock t.keys_lock;
  (match Hashtbl.find_opt t.keys_tbl k with
  | Some cur when cur = id -> Hashtbl.remove t.keys_tbl k
  | _ -> ());
  Mutex.unlock t.keys_lock

(* {1 Journal appends} *)

let journal_append t r = Option.iter (fun j -> Journal.append j r) t.journal

(* The terminal record for a finished session.  [Shutting_down] failures
   are deliberately NOT journaled: those sessions were accepted but
   drained at shutdown, and skipping their record is what makes the next
   boot re-execute them — zero acknowledged-submit loss. *)
let journal_record_of id (state : Session.state) ~deliveries ~total_bits =
  match state with
  | Session.Done json ->
      Some
        (Journal.Result
           {
             id;
             digest = Journal.digest json;
             outcome = "done";
             deliveries;
             total_bits;
           })
  | Session.Cancelled reason -> Some (Journal.Cancelled { id; reason })
  | Session.Failed (Proto.Shutting_down, _) -> None
  | Session.Failed (code, msg) ->
      Some (Journal.Failed { id; code = Proto.code_string code; msg })
  | Session.Queued | Session.Running -> None

(* {1 Session completion}

   The single door through which a live session becomes finished:
   transition under the table lock, then — for the winner only — journal
   the terminal record, release the connection credit exactly once (the
   [credit_released] flag is flipped under the lock, so a cancel racing a
   worker cannot double-release) and bump the outcome counter. *)

let finish t (s : Session.t) (state : Session.state) =
  let released =
    Session.transition t.sessions s (fun s ->
        match s.Session.state with
        | Queued | Running ->
            s.Session.state <- state;
            s.Session.t_finished <- Unix.gettimeofday ();
            let fresh = not s.Session.credit_released in
            s.Session.credit_released <- true;
            fresh
        | _ -> false)
  in
  if released then begin
    Option.iter (journal_append t)
      (journal_record_of s.Session.id state ~deliveries:s.Session.deliveries
         ~total_bits:s.Session.total_bits);
    credit_release t s.Session.conn;
    R.aincr
      (match state with
      | Done _ -> t.c_completed
      | Cancelled _ -> t.c_cancelled
      | _ -> t.c_failed)
  end;
  released

(* {1 Executing one session (worker side)} *)

let execute t (s : Session.t) =
  let claim =
    Session.transition t.sessions s (fun s ->
        match s.Session.state with
        | Queued ->
            s.Session.state <- Running;
            s.Session.t_started <- Unix.gettimeofday ();
            true
        | _ -> false  (* cancelled while queued; nothing to do *))
  in
  if claim then begin
    let sub = s.Session.submit in
    let g = List.assoc sub.Proto.sub_graph t.graphs in
    let obs = Obs.create ~sample_every:t.cfg.sample_every () in
    (* Publish the live registry for [watch] before the run starts, so a
       watcher never misses the early deliveries of a session it saw
       transition to Running. *)
    Session.transition t.sessions s (fun s -> s.Session.obs <- Some obs);
    (* The stop hook runs between deliveries on this worker's domain: the
       cancel flag is checked every time, the deadline only every 1024
       polls so [gettimeofday] stays off the hot path. *)
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
        sub.Proto.sub_deadline_ms
    in
    let countdown = ref 0 in
    let stop () =
      Atomic.get s.Session.cancel
      ||
      match deadline with
      | None -> false
      | Some d ->
          decr countdown;
          !countdown <= 0
          && begin
               countdown := 1024;
               Unix.gettimeofday () > d
             end
    in
    match
      Runner.run ~stop ~obs ~step_limit:t.cfg.step_limit sub g
    with
    | exception e ->
        ignore
          (finish t s
             (Session.Failed (Proto.Bad_request, Printexc.to_string e)))
    | res ->
        (* Roll the session's telemetry up BEFORE publishing the final
           state: metrics seen after a result are never behind it. *)
        Mutex.lock t.merge_lock;
        R.merge ~into:t.registry ~prefix:"sessions."
          (R.snapshot obs.Obs.registry);
        Mutex.unlock t.merge_lock;
        Session.transition t.sessions s (fun s ->
            s.Session.deliveries <- res.Runner.r_deliveries;
            s.Session.total_bits <- res.Runner.r_total_bits);
        let state =
          match res.Runner.r_outcome with
          | Runtime.Engine.Cancelled ->
              (* Reason, best effort: the watchdog raised [wd_level] to 2
                 before flipping the flag, so the order of checks makes
                 the escalation visible in the reason string. *)
              if s.Session.wd_level >= 2 then Session.Cancelled "watchdog"
              else if Atomic.get s.Session.cancel then
                Session.Cancelled "cancel"
              else Session.Cancelled "deadline"
          | _ -> Session.Done res.Runner.json
        in
        ignore (finish t s state)
  end

let step t =
  match Sched.try_pop t.queue with
  | None -> false
  | Some s ->
      execute t s;
      true

let worker_loop t () =
  let rec go () =
    match Sched.pop t.queue with
    | None -> ()
    | Some s ->
        execute t s;
        go ()
  in
  go ()

let start_workers t =
  if t.worker_doms = [] && t.cfg.workers > 0 then
    t.worker_doms <-
      List.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t));
  match t.watchdog with
  | Some wd when not t.wd_running ->
      t.wd_running <- true;
      Watchdog.start wd
  | _ -> ()

(* Close the queue and join the workers; accepted sessions drain first. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.shutdown_flag true;
    (match t.watchdog with
    | Some wd when t.wd_running ->
        t.wd_running <- false;
        Watchdog.stop wd
    | _ -> ());
    Sched.close t.queue;
    List.iter Domain.join t.worker_doms;
    t.worker_doms <- [];
    (* Anything still queued was never claimed: fail it visibly rather
       than leaving clients polling a session that will never finish.
       [Shutting_down] failures carry no journal record, so the next
       boot re-executes exactly these sessions. *)
    let rec drain () =
      match Sched.try_pop t.queue with
      | None -> ()
      | Some s ->
          ignore
            (finish t s (Session.Failed (Proto.Shutting_down, "server stopped")));
          drain ()
    in
    drain ();
    Option.iter Journal.close t.journal
  end

let shutting_down t = Atomic.get t.shutdown_flag

(* {1 Request dispatch} *)

(* Answer a duplicate-key submit with the {e original} session's state:
   its stored result when done, its error when failed/cancelled, and a
   [key_of] pointer while it is still in flight. *)
let reply_for_original t ~id orig_id =
  match Session.find t.sessions orig_id with
  | None ->
      (* The claim map named a session that was rolled back between our
         lookup and now; tell the client to retry the submit. *)
      Proto.error ~id Proto.Unknown_id
        (Printf.sprintf "idempotency key raced a rolled-back submit %S"
           orig_id)
  | Some s -> (
      match Session.state t.sessions s with
      | Session.Done json -> Proto.ok ~id json
      | Session.Failed (code, msg) -> Proto.error ~id code msg
      | Session.Cancelled reason ->
          Proto.error ~id Proto.Cancelled_error
            (Printf.sprintf "session cancelled (%s)" reason)
      | (Session.Queued | Session.Running) as st ->
          Proto.ok ~id
            (Printf.sprintf "{\"state\":%s,\"key_of\":%s}"
               (Obs.Json.escape (Session.state_name st))
               (Obs.Json.escape orig_id)))

let handle_submit t ~conn ~raw (sub : Proto.submit) =
  let id = sub.Proto.sub_id in
  if Atomic.get t.shutdown_flag then
    Proto.error ~id Proto.Shutting_down "server is shutting down"
  else if not (Runner.protocol_known sub.Proto.sub_protocol) then
    Proto.error ~id Proto.Unknown_protocol
      (Printf.sprintf "unknown protocol %S (one of: %s)"
         sub.Proto.sub_protocol
         (String.concat ", " Runner.protocol_names))
  else if not (List.mem_assoc sub.Proto.sub_graph t.graphs) then
    Proto.error ~id Proto.Unknown_graph
      (Printf.sprintf "unknown graph %S (one of: %s)" sub.Proto.sub_graph
         (String.concat ", " (List.map fst t.graphs)))
  else
    let quarantine =
      Option.bind t.watchdog (fun wd ->
          Watchdog.quarantined wd ~graph:sub.Proto.sub_graph
            ~protocol:sub.Proto.sub_protocol ~now:(Unix.gettimeofday ()))
    in
    match quarantine with
    | Some remaining_ms ->
        Proto.error ~id ~retry_after_ms:remaining_ms Proto.Quarantined
          (Printf.sprintf "(%s, %s) is quarantined by the watchdog"
             sub.Proto.sub_graph sub.Proto.sub_protocol)
    | None -> (
        match key_claim t sub with
        | `Dup orig_id ->
            R.aincr t.c_key_hits;
            reply_for_original t ~id orig_id
        | (`Claimed | `No_key) as claim -> (
            let unclaim () =
              match (claim, sub.Proto.sub_key) with
              | `Claimed, Some k -> key_unclaim t k id
              | _ -> ()
            in
            if not (credit_take t conn) then begin
              unclaim ();
              R.aincr t.c_rejected_no_credit;
              Proto.error ~id Proto.No_credit
                (Printf.sprintf "connection has %d unfinished sessions"
                   t.cfg.credits)
            end
            else
              let now = Unix.gettimeofday () in
              match Session.add t.sessions ~conn ~now sub with
              | Error () ->
                  credit_release t conn;
                  unclaim ();
                  Proto.error ~id Proto.Duplicate_id
                    (Printf.sprintf "session %S already exists" id)
              | Ok s -> (
                  (* Durability point: the submit record is on disk
                     before any acknowledgement leaves this function. *)
                  journal_append t (Journal.Submitted { id; line = raw });
                  let deadline =
                    Option.map
                      (fun ms -> now +. (float_of_int ms /. 1000.0))
                      sub.Proto.sub_deadline_ms
                  in
                  let rollback () =
                    (* Close the journaled submit so recovery restores it
                       as cancelled instead of re-executing a run the
                       client was told we refused. *)
                    journal_append t
                      (Journal.Cancelled { id; reason = "rollback" });
                    Session.remove t.sessions id;
                    credit_release t conn;
                    unclaim ()
                  in
                  match Sched.try_push t.queue ?deadline ~now s with
                  | Sched.Pushed ->
                      R.aincr t.c_submitted;
                      Proto.ok ~id (Proto.state_result "queued")
                  | Sched.Full hint ->
                      rollback ();
                      R.aincr t.c_rejected_overloaded;
                      Proto.error ~id ~retry_after_ms:hint Proto.Overloaded
                        (Printf.sprintf "admission queue full (%d)"
                           t.cfg.max_queue)
                  | Sched.Shed hint ->
                      rollback ();
                      R.aincr t.c_rejected_shed;
                      Proto.error ~id ~retry_after_ms:hint Proto.Overloaded
                        (Printf.sprintf
                           "shed: estimated queue wait %dms exceeds the \
                            deadline"
                           (Sched.est_wait_ms t.queue)))))

let with_session t id f =
  match Session.find t.sessions id with
  | None ->
      Proto.error ~id Proto.Unknown_id (Printf.sprintf "no session %S" id)
  | Some s -> f s

let handle_status t id =
  with_session t id (fun s ->
      Proto.ok ~id
        (Proto.state_result (Session.state_name (Session.state t.sessions s))))

let handle_result t id =
  with_session t id (fun s ->
      match Session.state t.sessions s with
      | Session.Done json -> Proto.ok ~id json
      | Session.Failed (code, msg) -> Proto.error ~id code msg
      | Session.Cancelled reason ->
          Proto.error ~id Proto.Cancelled_error
            (Printf.sprintf "session cancelled (%s)" reason)
      | (Session.Queued | Session.Running) as st ->
          Proto.error ~id Proto.Not_done
            (Printf.sprintf "session is %s" (Session.state_name st)))

let handle_cancel t id =
  with_session t id (fun s ->
      Atomic.set s.Session.cancel true;
      (* A queued session dies right here; a running one is asked to stop
         (the worker will observe the flag between deliveries) and a
         finished one is left alone — cancel is idempotent. *)
      if Session.state t.sessions s = Session.Queued then
        ignore (finish t s (Session.Cancelled "cancel"));
      let answer =
        match Session.state t.sessions s with
        | Session.Running -> "cancelling"
        | st -> Session.state_name st
      in
      Proto.ok ~id (Proto.state_result answer))

(* [watch] streams a session's telemetry incrementally: each call answers
   the registry diff since the same session's previous watch, plus the
   current lifecycle state, so a polling client sees a long run move.
   Before the worker installs the registry (still queued) the metrics
   object is empty; after completion the final diff drains the tail. *)
let handle_watch t id =
  with_session t id (fun s ->
      let state, metrics =
        Session.transition t.sessions s (fun s ->
            let state = Session.state_name s.Session.state in
            match s.Session.obs with
            | None -> (state, R.to_json [])
            | Some o ->
                let now = R.snapshot o.Obs.registry in
                let d = R.diff ~older:s.Session.watch_seen ~newer:now in
                s.Session.watch_seen <- now;
                (state, R.to_json d))
      in
      Proto.ok ~id
        (Printf.sprintf "{\"state\":%s,\"metrics\":%s}"
           (Obs.Json.escape state) metrics))

let metrics_json t =
  Mutex.lock t.merge_lock;
  let g = R.gauge t.registry "server.queue_depth" in
  R.set g (Sched.length t.queue);
  R.set (R.gauge t.registry "server.queue_wait_est_ms")
    (Sched.est_wait_ms t.queue);
  (match t.journal with
  | Some j ->
      let st = Journal.stats j in
      R.set (R.gauge t.registry "server.journal.appends") st.Journal.s_appends;
      R.set (R.gauge t.registry "server.journal.fsyncs") st.Journal.s_fsyncs;
      R.set (R.gauge t.registry "server.journal.bytes") st.Journal.s_bytes
  | None -> ());
  let live =
    Session.fold t.sessions
      (fun s acc -> if Session.finished s.Session.state then acc else acc + 1)
      0
  in
  R.set (R.gauge t.registry "server.sessions.live") live;
  let snap = R.snapshot t.registry in
  Mutex.unlock t.merge_lock;
  R.to_json snap

let handle_line t ~conn line =
  R.aincr t.c_frames;
  match Proto.parse_request ~default_engine:t.cfg.default_engine line with
  | Error (id, code, msg) ->
      R.aincr t.c_frame_errors;
      Proto.error ?id code msg
  | Ok (Proto.Submit sub) -> handle_submit t ~conn ~raw:line sub
  | Ok (Proto.Status id) -> handle_status t id
  | Ok (Proto.Result id) -> handle_result t id
  | Ok (Proto.Cancel id) -> handle_cancel t id
  | Ok (Proto.Watch id) -> handle_watch t id
  | Ok Proto.Metrics -> Proto.ok (metrics_json t)
  | Ok Proto.Shutdown ->
      Atomic.set t.shutdown_flag true;
      Proto.ok (Proto.state_result "shutting_down")

(* An over-long frame: the wire layer already discarded to the next
   newline; count it on both the total-error and the overflow-specific
   counters and answer in-band. *)
let handle_overflow t =
  R.aincr t.c_frame_errors;
  R.aincr t.c_overflows;
  Proto.error Proto.Parse_error
    (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line)

(* {1 Introspection (tests and bench)} *)

let registry t = t.registry
let queue_length t = Sched.length t.queue
let graph_names t = List.map fst t.graphs
let recovery t = t.recovery
let watchdog t = t.watchdog
let journal_stats t = Option.map Journal.stats t.journal

let await t id =
  Option.map (fun s -> Session.await t.sessions s) (Session.find t.sessions id)

let session_times t id =
  Option.map
    (fun (s : Session.t) -> (s.Session.t_submitted, s.Session.t_finished))
    (Session.find t.sessions id)

let session_counts t id =
  Option.map
    (fun (s : Session.t) -> (s.Session.deliveries, s.Session.total_bits))
    (Session.find t.sessions id)

(* {1 The stdio / socket event loop}

   Single-threaded [Unix.select]: protocol work is cheap (submission is
   enqueue-and-ack; the engines run on worker domains), so one loop thread
   multiplexes stdin and every socket connection without further locking.
   Connection 0 is stdin/stdout; accepted sockets get ids from 1. *)

type conn_io = {
  cid : int;
  fd : Unix.file_descr;
  reply_fd : Unix.file_descr;  (* = fd except for the stdin/stdout pair *)
  w : Wire.t;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

let serve_loop ?socket ?(stdio = false) t =
  if socket = None && not stdio then
    invalid_arg "Server.serve_loop: need a socket path, --stdio, or both";
  (* A client that dies mid-reply must cost us an EPIPE error code, not
     the whole process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  start_workers t;
  let listener =
    Option.map
      (fun path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        (fd, path))
      socket
  in
  let conns = Hashtbl.create 8 in
  let next_cid = ref 1 in
  if stdio then
    Hashtbl.replace conns Unix.stdin
      {
        cid = 0;
        fd = Unix.stdin;
        reply_fd = Unix.stdout;
        w = Wire.create ~max_line:t.cfg.max_line ();
      };
  let stdio_only = stdio && listener = None in
  let buf = Bytes.create 65536 in
  let drop c =
    Hashtbl.remove conns c.fd;
    if c.cid > 0 then try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_events c events =
    List.iter
      (fun ev ->
        let resp =
          match ev with
          | Wire.Line line -> handle_line t ~conn:c.cid line
          | Wire.Overflow -> handle_overflow t
        in
        write_all c.reply_fd (resp ^ "\n"))
      events
  in
  while not (Atomic.get t.shutdown_flag) do
    let fds =
      (match listener with Some (fd, _) -> [ fd ] | None -> [])
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            match listener with
            | Some (lfd, _) when fd = lfd ->
                let cfd, _ = Unix.accept lfd in
                let cid = !next_cid in
                incr next_cid;
                Hashtbl.replace conns cfd
                  {
                    cid;
                    fd = cfd;
                    reply_fd = cfd;
                    w = Wire.create ~max_line:t.cfg.max_line ();
                  }
            | _ -> (
                match Hashtbl.find_opt conns fd with
                | None -> ()
                | Some c -> (
                    match Unix.read c.fd buf 0 (Bytes.length buf) with
                    | exception Unix.Unix_error _ -> drop c
                    | 0 ->
                        drop c;
                        if c.cid = 0 && stdio_only then
                          Atomic.set t.shutdown_flag true
                    | n -> handle_events c (Wire.feed c.w buf 0 n))))
          ready
  done;
  Hashtbl.iter (fun _ c -> if c.cid > 0 then drop c) conns;
  Option.iter
    (fun (fd, path) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    listener;
  stop t
