(* The long-lived broadcast service.

   One [t] owns: the graph table (family specs resolved once at startup,
   shared read-only by every session), the session table, a bounded
   admission queue drained by [workers] domains, per-connection submission
   credits, and a server-wide [Obs.Registry] into which every finished
   session's private registry is rolled up under the "sessions." prefix.

   [handle_line] is the whole protocol: the stdio/socket event loop, the
   in-process tests and the bench all drive the same function, so wire
   coverage is engine coverage.  It is safe to call from any domain — the
   tables take their own locks, server counters are atomic, and the merge
   lock serializes every touch of the shared registry (whose cell updates
   are plain stores).

   Metrics reconciliation contract: a worker merges a session's registry
   {e before} publishing its final state, so any client that has observed
   a session finish observes a server registry that already contains it —
   "sessions.engine.deliveries" equals the sum of [deliveries] over the
   results the client has collected, exactly. *)

module R = Obs.Registry

type config = {
  graphs : (string * string) list;  (* name -> family spec *)
  workers : int;  (* 0 = drain via [step] (tests) *)
  max_queue : int;
  credits : int;  (* max unfinished sessions per connection *)
  step_limit : int;  (* default when a submit names none *)
  default_engine : string;  (* "classic" | "flat", when a submit names none *)
  sample_every : int;  (* per-session Obs sampling cadence *)
  max_line : int;
}

let default_config =
  {
    graphs = [ ("small", "comb:8") ];
    workers = 2;
    max_queue = 64;
    credits = 32;
    step_limit = 10_000_000;
    default_engine = "classic";
    sample_every = 1 lsl 20;
    max_line = Wire.default_max_line;
  }

type t = {
  cfg : config;
  graphs : (string * Flatcore.Csr.t) list;
      (* compiled once at boot; flat sessions run the CSR directly *)
  sessions : Session.table;
  queue : Session.t Sched.t;
  registry : R.t;
  merge_lock : Mutex.t;
  c_submitted : R.acounter;
  c_completed : R.acounter;
  c_cancelled : R.acounter;
  c_failed : R.acounter;
  c_rejected_overloaded : R.acounter;
  c_rejected_no_credit : R.acounter;
  c_frames : R.acounter;
  c_frame_errors : R.acounter;
  shutdown_flag : bool Atomic.t;
  credits_tbl : (int, int) Hashtbl.t;
  credits_lock : Mutex.t;
  mutable worker_doms : unit Domain.t list;
  mutable stopped : bool;
}

let create ?(config = default_config) () =
  if config.workers < 0 then Error "workers must be >= 0"
  else if config.max_queue < 1 then Error "max_queue must be >= 1"
  else if config.credits < 1 then Error "credits must be >= 1"
  else if config.graphs = [] then Error "at least one --graph is required"
  else if
    match config.default_engine with "classic" | "flat" -> false | _ -> true
  then
    Error
      (Printf.sprintf "unknown default engine %S (classic | flat)"
         config.default_engine)
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | (name, spec) :: rest -> (
          if List.mem_assoc name acc then
            Error (Printf.sprintf "duplicate graph name %S" name)
          else
            match Digraph.Families.of_spec spec with
            | Ok g -> resolve ((name, Flatcore.Csr.of_digraph g) :: acc) rest
            | Error e -> Error (Printf.sprintf "graph %S: %s" name e))
    in
    match resolve [] config.graphs with
    | Error _ as e -> e
    | Ok graphs ->
        let registry = R.create () in
        let t =
          {
            cfg = config;
            graphs;
            sessions = Session.create_table ();
            queue = Sched.create ~cap:config.max_queue;
            registry;
            merge_lock = Mutex.create ();
            c_submitted = R.acounter registry "server.sessions.submitted";
            c_completed = R.acounter registry "server.sessions.completed";
            c_cancelled = R.acounter registry "server.sessions.cancelled";
            c_failed = R.acounter registry "server.sessions.failed";
            c_rejected_overloaded =
              R.acounter registry "server.rejected.overloaded";
            c_rejected_no_credit =
              R.acounter registry "server.rejected.no_credit";
            c_frames = R.acounter registry "server.frames";
            c_frame_errors = R.acounter registry "server.frame_errors";
            shutdown_flag = Atomic.make false;
            credits_tbl = Hashtbl.create 8;
            credits_lock = Mutex.create ();
            worker_doms = [];
            stopped = false;
          }
        in
        Ok t

(* {1 Credits} *)

let credit_take t conn =
  Mutex.lock t.credits_lock;
  let used = Option.value ~default:0 (Hashtbl.find_opt t.credits_tbl conn) in
  let got = used < t.cfg.credits in
  if got then Hashtbl.replace t.credits_tbl conn (used + 1);
  Mutex.unlock t.credits_lock;
  got

let credit_release t conn =
  Mutex.lock t.credits_lock;
  (match Hashtbl.find_opt t.credits_tbl conn with
  | Some used when used > 0 -> Hashtbl.replace t.credits_tbl conn (used - 1)
  | _ -> ());
  Mutex.unlock t.credits_lock

(* {1 Session completion}

   The single door through which a live session becomes finished:
   transition under the table lock, then release the connection credit
   exactly once (the [credit_released] flag is flipped under the lock, so
   a cancel racing a worker cannot double-release). *)

let finish t (s : Session.t) (state : Session.state) =
  let released =
    Session.transition t.sessions s (fun s ->
        match s.Session.state with
        | Queued | Running ->
            s.Session.state <- state;
            s.Session.t_finished <- Unix.gettimeofday ();
            let fresh = not s.Session.credit_released in
            s.Session.credit_released <- true;
            fresh
        | _ -> false)
  in
  if released then begin
    credit_release t s.Session.conn;
    R.aincr
      (match state with
      | Done _ -> t.c_completed
      | Cancelled _ -> t.c_cancelled
      | _ -> t.c_failed)
  end;
  released

(* {1 Executing one session (worker side)} *)

let execute t (s : Session.t) =
  let claim =
    Session.transition t.sessions s (fun s ->
        match s.Session.state with
        | Queued ->
            s.Session.state <- Running;
            true
        | _ -> false  (* cancelled while queued; nothing to do *))
  in
  if claim then begin
    let sub = s.Session.submit in
    let g = List.assoc sub.Proto.sub_graph t.graphs in
    let obs = Obs.create ~sample_every:t.cfg.sample_every () in
    (* Publish the live registry for [watch] before the run starts, so a
       watcher never misses the early deliveries of a session it saw
       transition to Running. *)
    Session.transition t.sessions s (fun s -> s.Session.obs <- Some obs);
    (* The stop hook runs between deliveries on this worker's domain: the
       cancel flag is checked every time, the deadline only every 1024
       polls so [gettimeofday] stays off the hot path. *)
    let deadline =
      Option.map
        (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
        sub.Proto.sub_deadline_ms
    in
    let countdown = ref 0 in
    let stop () =
      Atomic.get s.Session.cancel
      ||
      match deadline with
      | None -> false
      | Some d ->
          decr countdown;
          !countdown <= 0
          && begin
               countdown := 1024;
               Unix.gettimeofday () > d
             end
    in
    match
      Runner.run ~stop ~obs ~step_limit:t.cfg.step_limit sub g
    with
    | exception e ->
        ignore
          (finish t s
             (Session.Failed (Proto.Bad_request, Printexc.to_string e)))
    | res ->
        (* Roll the session's telemetry up BEFORE publishing the final
           state: metrics seen after a result are never behind it. *)
        Mutex.lock t.merge_lock;
        R.merge ~into:t.registry ~prefix:"sessions."
          (R.snapshot obs.Obs.registry);
        Mutex.unlock t.merge_lock;
        Session.transition t.sessions s (fun s ->
            s.Session.deliveries <- res.Runner.r_deliveries;
            s.Session.total_bits <- res.Runner.r_total_bits);
        let state =
          match res.Runner.r_outcome with
          | Runtime.Engine.Cancelled ->
              if Atomic.get s.Session.cancel then Session.Cancelled "cancel"
              else Session.Cancelled "deadline"
          | _ -> Session.Done res.Runner.json
        in
        ignore (finish t s state)
  end

let step t =
  match Sched.try_pop t.queue with
  | None -> false
  | Some s ->
      execute t s;
      true

let worker_loop t () =
  let rec go () =
    match Sched.pop t.queue with
    | None -> ()
    | Some s ->
        execute t s;
        go ()
  in
  go ()

let start_workers t =
  if t.worker_doms = [] && t.cfg.workers > 0 then
    t.worker_doms <-
      List.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t))

(* Close the queue and join the workers; accepted sessions drain first. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.shutdown_flag true;
    Sched.close t.queue;
    List.iter Domain.join t.worker_doms;
    t.worker_doms <- [];
    (* Anything still queued was never claimed: fail it visibly rather
       than leaving clients polling a session that will never finish. *)
    let rec drain () =
      match Sched.try_pop t.queue with
      | None -> ()
      | Some s ->
          ignore
            (finish t s (Session.Failed (Proto.Shutting_down, "server stopped")));
          drain ()
    in
    drain ()
  end

let shutting_down t = Atomic.get t.shutdown_flag

(* {1 Request dispatch} *)

let handle_submit t ~conn (sub : Proto.submit) =
  let id = sub.Proto.sub_id in
  if Atomic.get t.shutdown_flag then
    Proto.error ~id Proto.Shutting_down "server is shutting down"
  else if not (Runner.protocol_known sub.Proto.sub_protocol) then
    Proto.error ~id Proto.Unknown_protocol
      (Printf.sprintf "unknown protocol %S (one of: %s)"
         sub.Proto.sub_protocol
         (String.concat ", " Runner.protocol_names))
  else if not (List.mem_assoc sub.Proto.sub_graph t.graphs) then
    Proto.error ~id Proto.Unknown_graph
      (Printf.sprintf "unknown graph %S (one of: %s)" sub.Proto.sub_graph
         (String.concat ", " (List.map fst t.graphs)))
  else if not (credit_take t conn) then begin
    R.aincr t.c_rejected_no_credit;
    Proto.error ~id Proto.No_credit
      (Printf.sprintf "connection has %d unfinished sessions" t.cfg.credits)
  end
  else
    match Session.add t.sessions ~conn ~now:(Unix.gettimeofday ()) sub with
    | Error () ->
        credit_release t conn;
        Proto.error ~id Proto.Duplicate_id
          (Printf.sprintf "session %S already exists" id)
    | Ok s ->
        if Sched.try_push t.queue s then begin
          R.aincr t.c_submitted;
          Proto.ok ~id (Proto.state_result "queued")
        end
        else begin
          Session.remove t.sessions id;
          credit_release t conn;
          R.aincr t.c_rejected_overloaded;
          Proto.error ~id Proto.Overloaded
            (Printf.sprintf "admission queue full (%d)" t.cfg.max_queue)
        end

let with_session t id f =
  match Session.find t.sessions id with
  | None ->
      Proto.error ~id Proto.Unknown_id (Printf.sprintf "no session %S" id)
  | Some s -> f s

let handle_status t id =
  with_session t id (fun s ->
      Proto.ok ~id
        (Proto.state_result (Session.state_name (Session.state t.sessions s))))

let handle_result t id =
  with_session t id (fun s ->
      match Session.state t.sessions s with
      | Session.Done json -> Proto.ok ~id json
      | Session.Failed (code, msg) -> Proto.error ~id code msg
      | Session.Cancelled reason ->
          Proto.error ~id Proto.Cancelled_error
            (Printf.sprintf "session cancelled (%s)" reason)
      | (Session.Queued | Session.Running) as st ->
          Proto.error ~id Proto.Not_done
            (Printf.sprintf "session is %s" (Session.state_name st)))

let handle_cancel t id =
  with_session t id (fun s ->
      Atomic.set s.Session.cancel true;
      (* A queued session dies right here; a running one is asked to stop
         (the worker will observe the flag between deliveries) and a
         finished one is left alone — cancel is idempotent. *)
      if Session.state t.sessions s = Session.Queued then
        ignore (finish t s (Session.Cancelled "cancel"));
      let answer =
        match Session.state t.sessions s with
        | Session.Running -> "cancelling"
        | st -> Session.state_name st
      in
      Proto.ok ~id (Proto.state_result answer))

(* [watch] streams a session's telemetry incrementally: each call answers
   the registry diff since the same session's previous watch, plus the
   current lifecycle state, so a polling client sees a long run move.
   Before the worker installs the registry (still queued) the metrics
   object is empty; after completion the final diff drains the tail. *)
let handle_watch t id =
  with_session t id (fun s ->
      let state, metrics =
        Session.transition t.sessions s (fun s ->
            let state = Session.state_name s.Session.state in
            match s.Session.obs with
            | None -> (state, R.to_json [])
            | Some o ->
                let now = R.snapshot o.Obs.registry in
                let d = R.diff ~older:s.Session.watch_seen ~newer:now in
                s.Session.watch_seen <- now;
                (state, R.to_json d))
      in
      Proto.ok ~id
        (Printf.sprintf "{\"state\":%s,\"metrics\":%s}"
           (Obs.Json.escape state) metrics))

let metrics_json t =
  Mutex.lock t.merge_lock;
  let g = R.gauge t.registry "server.queue_depth" in
  R.set g (Sched.length t.queue);
  let live =
    Session.fold t.sessions
      (fun s acc -> if Session.finished s.Session.state then acc else acc + 1)
      0
  in
  R.set (R.gauge t.registry "server.sessions.live") live;
  let snap = R.snapshot t.registry in
  Mutex.unlock t.merge_lock;
  R.to_json snap

let handle_line t ~conn line =
  R.aincr t.c_frames;
  match Proto.parse_request ~default_engine:t.cfg.default_engine line with
  | Error (id, code, msg) ->
      R.aincr t.c_frame_errors;
      Proto.error ?id code msg
  | Ok (Proto.Submit sub) -> handle_submit t ~conn sub
  | Ok (Proto.Status id) -> handle_status t id
  | Ok (Proto.Result id) -> handle_result t id
  | Ok (Proto.Cancel id) -> handle_cancel t id
  | Ok (Proto.Watch id) -> handle_watch t id
  | Ok Proto.Metrics -> Proto.ok (metrics_json t)
  | Ok Proto.Shutdown ->
      Atomic.set t.shutdown_flag true;
      Proto.ok (Proto.state_result "shutting_down")

(* {1 Introspection (tests and bench)} *)

let registry t = t.registry
let queue_length t = Sched.length t.queue
let graph_names t = List.map fst t.graphs

let await t id =
  Option.map (fun s -> Session.await t.sessions s) (Session.find t.sessions id)

let session_times t id =
  Option.map
    (fun (s : Session.t) -> (s.Session.t_submitted, s.Session.t_finished))
    (Session.find t.sessions id)

let session_counts t id =
  Option.map
    (fun (s : Session.t) -> (s.Session.deliveries, s.Session.total_bits))
    (Session.find t.sessions id)

(* {1 The stdio / socket event loop}

   Single-threaded [Unix.select]: protocol work is cheap (submission is
   enqueue-and-ack; the engines run on worker domains), so one loop thread
   multiplexes stdin and every socket connection without further locking.
   Connection 0 is stdin/stdout; accepted sockets get ids from 1. *)

type conn_io = {
  cid : int;
  fd : Unix.file_descr;
  reply_fd : Unix.file_descr;  (* = fd except for the stdin/stdout pair *)
  w : Wire.t;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  try go 0 with Unix.Unix_error _ -> ()

let serve_loop ?socket ?(stdio = false) t =
  if socket = None && not stdio then
    invalid_arg "Server.serve_loop: need a socket path, --stdio, or both";
  start_workers t;
  let listener =
    Option.map
      (fun path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 16;
        (fd, path))
      socket
  in
  let conns = Hashtbl.create 8 in
  let next_cid = ref 1 in
  if stdio then
    Hashtbl.replace conns Unix.stdin
      {
        cid = 0;
        fd = Unix.stdin;
        reply_fd = Unix.stdout;
        w = Wire.create ~max_line:t.cfg.max_line ();
      };
  let stdio_only = stdio && listener = None in
  let buf = Bytes.create 65536 in
  let drop c =
    Hashtbl.remove conns c.fd;
    if c.cid > 0 then try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let handle_events c events =
    List.iter
      (fun ev ->
        let resp =
          match ev with
          | Wire.Line line -> handle_line t ~conn:c.cid line
          | Wire.Overflow ->
              R.aincr t.c_frame_errors;
              Proto.error Proto.Parse_error
                (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line)
        in
        write_all c.reply_fd (resp ^ "\n"))
      events
  in
  while not (Atomic.get t.shutdown_flag) do
    let fds =
      (match listener with Some (fd, _) -> [ fd ] | None -> [])
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []
    in
    match Unix.select fds [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            match listener with
            | Some (lfd, _) when fd = lfd ->
                let cfd, _ = Unix.accept lfd in
                let cid = !next_cid in
                incr next_cid;
                Hashtbl.replace conns cfd
                  {
                    cid;
                    fd = cfd;
                    reply_fd = cfd;
                    w = Wire.create ~max_line:t.cfg.max_line ();
                  }
            | _ -> (
                match Hashtbl.find_opt conns fd with
                | None -> ()
                | Some c -> (
                    match Unix.read c.fd buf 0 (Bytes.length buf) with
                    | exception Unix.Unix_error _ -> drop c
                    | 0 ->
                        drop c;
                        if c.cid = 0 && stdio_only then
                          Atomic.set t.shutdown_flag true
                    | n -> handle_events c (Wire.feed c.w buf 0 n))))
          ready
  done;
  Hashtbl.iter (fun _ c -> if c.cid > 0 then drop c) conns;
  Option.iter
    (fun (fd, path) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    listener;
  stop t
