(** Execution of one submitted session.

    Everything reaching {!run} was validated at the protocol edge and the
    graph resolved from the server table.  The hard contract is
    {e determinism}: the result payload is a pure function of
    (graph, submit fields) — fixed key order, engine-report counters only,
    no wall clock, no session id — so equal submissions render
    byte-identical JSON regardless of concurrent server load. *)

val protocol_known : string -> bool

val protocol_names : string list
(** The wire names: flood, amnesiac, counting, tree, tree-naive, dag,
    general, labeling, mapping, undirected. *)

type done_run = {
  json : string;  (** The deterministic result payload. *)
  r_outcome : Runtime.Engine.outcome;
  r_deliveries : int;
  r_total_bits : int;
}

val run :
  stop:(unit -> bool) ->
  ?obs:Obs.t ->
  step_limit:int ->
  Proto.submit ->
  Flatcore.Csr.t ->
  done_run
(** Runs on the calling domain; [stop] is the engine's cooperative
    cancellation hook, [step_limit] the server default (a per-session
    [step_limit] overrides it), [obs] the session's private telemetry
    sink (rolled up by the server afterwards).  The graph arrives in its
    CSR form — compiled once at server boot — so [engine:"flat"] sessions
    pay zero per-run compilation; [engine:"classic"] runs on the embedded
    {!Digraph.t}.  Both engines render byte-identical payloads for equal
    submissions. *)
