(* Unix-socket client for the serve protocol, plus the smoke routine the
   CLI and CI use to exercise a live server end to end. *)

module J = Obs.Json

type t = {
  fd : Unix.file_descr;
  w : Wire.t;
  buf : Bytes.t;
  mutable pending : string list;  (* lines read ahead of their request *)
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd; w = Wire.create (); buf = Bytes.create 65536; pending = [] }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* The server answers every frame with exactly one frame, in order, so
   reading up to the next line is a correct request/response discipline;
   anything beyond it (pipelined answers) is queued for later calls. *)
let read_line t =
  let rec go () =
    match t.pending with
    | l :: rest ->
        t.pending <- rest;
        Ok l
    | [] -> (
        match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
        | 0 -> Error "server closed the connection"
        | n ->
            t.pending <-
              List.filter_map
                (function Wire.Line l -> Some l | Wire.Overflow -> None)
                (Wire.feed t.w t.buf 0 n);
            go ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  go ()

let request t line =
  match write_all t.fd (line ^ "\n") with
  | () -> read_line t
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

(* {1 Retry}

   Capped exponential backoff with seeded jitter, on [overloaded]
   answers and refused connections.  The delay schedule is the
   supervisor's retransmission policy ([Runtime.Supervisor.backoff]) —
   one backoff implementation serves both the in-network retransmit
   timers and the out-of-network client, so tuning (cap, jitter shape)
   stays in one place.  A server-supplied [retry_after_ms] hint can only
   {e lengthen} a wait: the client sleeps [max backoff hint]. *)

type retry = { r_attempts : int; r_base_ms : int; r_seed : int }

let default_retry = { r_attempts = 5; r_base_ms = 50; r_seed = 0 }

let retry_delay_ms r prng ~round ~hint_ms =
  let cfg = Runtime.Supervisor.config ~base_timeout:r.r_base_ms () in
  Stdlib.max (Runtime.Supervisor.backoff cfg prng ~round) hint_ms

let retry_sleep r prng ~round ~hint_ms =
  Unix.sleepf (float_of_int (retry_delay_ms r prng ~round ~hint_ms) /. 1000.0)

let connect_retry ?(retry = default_retry) path =
  let prng = Prng.create retry.r_seed in
  let rec go round =
    match connect path with
    | Ok _ as ok -> ok
    | Error e ->
        if round >= retry.r_attempts then Error e
        else begin
          retry_sleep retry prng ~round ~hint_ms:0;
          go (round + 1)
        end
  in
  go 0

(* The response's error object, when it asks to be retried. *)
let overloaded_hint resp =
  match J.parse resp with
  | Error _ -> None
  | Ok v -> (
      match Option.bind (J.member "error" v) (J.member "code") with
      | Some code when J.to_string_opt code = Some "overloaded" ->
          Some
            (match
               Option.bind (J.member "error" v) (fun e ->
                   Option.bind (J.member "retry_after_ms" e) J.to_int_opt)
             with
            | Some ms -> ms
            | None -> 0)
      | _ -> None)

let request_retry ?(retry = default_retry) t line =
  let prng = Prng.create retry.r_seed in
  let rec go round =
    match request t line with
    | Error _ as e -> e
    | Ok resp -> (
        match overloaded_hint resp with
        | Some hint_ms when round < retry.r_attempts ->
            retry_sleep retry prng ~round ~hint_ms;
            go (round + 1)
        | _ -> Ok resp)
  in
  go 0

(* {1 Response inspection helpers} *)

let response_ok resp =
  match J.parse resp with
  | Ok v -> (
      match Option.map J.to_bool_opt (J.member "ok" v) with
      | Some (Some b) -> Ok (b, v)
      | _ -> Error (Printf.sprintf "malformed response %s" resp))
  | Error _ -> Error (Printf.sprintf "unparseable response %s" resp)

let result_of resp =
  match response_ok resp with
  | Error _ as e -> e
  | Ok (true, v) -> (
      match J.member "result" v with
      | Some r -> Ok r
      | None -> Error "missing \"result\"")
  | Ok (false, v) ->
      let code =
        match Option.map J.to_string_opt (J.member "code" (Option.value ~default:J.Null (J.member "error" v))) with
        | Some (Some c) -> c
        | _ -> "unknown"
      in
      Error code

let watch t id =
  match request t (Printf.sprintf "{\"op\":\"watch\",\"id\":%s}" (J.escape id)) with
  | Error _ as e -> e
  | Ok resp -> result_of resp

(* {1 Smoke}

   Drive a mixed load through a live server: plain floods, counting runs
   and churn-stressed general broadcasts, every seed submitted twice so
   the byte-determinism contract is checked on the wire, then reconcile
   the server's merged metrics against the collected per-session results.
   Pure client side: everything it verifies crosses the socket. *)

type smoke_report = {
  sessions : int;
  ok_results : int;
  determinism_ok : bool;
  reconcile_ok : bool;
  sum_deliveries : int;
  metrics_deliveries : int;
}

let smoke_submit_line ~id ~kind ~graph ~seed =
  match kind with
  | `Flood ->
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":%s,\"protocol\":\"flood\",\"graph\":%s,\"seed\":%d}"
        (J.escape id) (J.escape graph) seed
  | `Counting ->
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":%s,\"protocol\":\"counting\",\"graph\":%s,\"scheduler\":\"random\",\"seed\":%d}"
        (J.escape id) (J.escape graph) seed
  | `Churned ->
      Printf.sprintf
        "{\"op\":\"submit\",\"id\":%s,\"protocol\":\"general\",\"graph\":%s,\"scheduler\":\"random\",\"seed\":%d,\"churn\":{\"rate\":0.05,\"seed\":%d}}"
        (J.escape id) (J.escape graph) seed seed

let metrics_deliveries_of c =
  match request c "{\"op\":\"metrics\"}" with
  | Error _ as e -> e
  | Ok resp -> (
      match result_of resp with
      | Error e -> Error e
      | Ok m -> (
          match
            Option.bind (J.member "counters" m)
              (J.member "sessions.engine.deliveries")
          with
          | Some n -> (
              match J.to_int_opt n with
              | Some i -> Ok i
              | None -> Error "non-integer sessions.engine.deliveries")
          | None -> Ok 0 (* fresh server: nothing merged yet *)))

let smoke ?(sessions = 30) ~socket () =
  match connect socket with
  | Error _ as e -> e
  | Ok c -> (
      let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
      let finally () = close c in
      let kinds = [| `Flood; `Counting; `Churned |] in
      let error_code v =
        match
          Option.bind (J.member "error" v) (fun e ->
              Option.bind (J.member "code" e) J.to_string_opt)
        with
        | Some code -> code
        | None -> ""
      in
      let rec submit i tries acc =
        if i >= sessions then Ok (List.rev acc)
        else
          (* Pairs (2k, 2k+1) share kind AND seed — equal submissions
             under distinct ids, the byte-determinism probe. *)
          let kind = kinds.(i / 2 mod 3) in
          let seed = i / 2 in
          let id = Printf.sprintf "smoke-%d" i in
          let line = smoke_submit_line ~id ~kind ~graph:"small" ~seed in
          match request c line with
          | Error e -> fail "submit %s: %s" id e
          | Ok resp -> (
              match response_ok resp with
              | Ok (true, _) -> submit (i + 1) 0 ((id, kind, seed) :: acc)
              | Ok (false, v)
                when error_code v = "no_credit" || error_code v = "overloaded"
                ->
                  (* Backpressure, not failure: the probe outran its own
                     credit allowance or the admission queue.  Wait for
                     earlier sessions to drain and resubmit. *)
                  if tries > 4000 then fail "submit %s starved: %s" id resp
                  else begin
                    Unix.sleepf 0.005;
                    submit i (tries + 1) acc
                  end
              | Ok (false, _) -> fail "submit %s rejected: %s" id resp
              | Error e -> fail "submit %s: %s" id e)
      in
      let poll_result id =
        let rec go tries =
          match request c (Printf.sprintf "{\"op\":\"result\",\"id\":%s}" (J.escape id)) with
          | Error e -> Error e
          | Ok resp -> (
              match result_of resp with
              | Ok r -> Ok r
              | Error "not_done" ->
                  if tries > 4000 then Error "session stuck"
                  else begin
                    Unix.sleepf 0.005;
                    go (tries + 1)
                  end
              | Error e -> Error e)
        in
        go 0
      in
      (* Baseline for the reconcile delta: the probe may run against a
         server that has already served other load; what must match is
         what THIS probe added (assuming no concurrent third-party load,
         which is the smoke harness's setup anyway). *)
      match metrics_deliveries_of c with
      | Error e ->
          finally ();
          fail "metrics baseline: %s" e
      | Ok baseline -> (
      match submit 0 0 [] with
      | Error e ->
          finally ();
          Error e
      | Ok submitted -> (
          let results =
            List.map
              (fun (id, kind, seed) -> (id, kind, seed, poll_result id))
              submitted
          in
          let bad =
            List.filter (fun (_, _, _, r) -> Result.is_error r) results
          in
          match bad with
          | (id, _, _, Error e) :: _ ->
              finally ();
              fail "result %s: %s" id e
          | _ -> (
              (* determinism: equal (kind, seed) pairs must render equal bytes *)
              let rendered =
                List.map
                  (fun (id, kind, seed, r) ->
                    match r with
                    | Ok v -> (id, kind, seed, J.to_string v)
                    | Error _ -> assert false)
                  results
              in
              let determinism_ok =
                List.for_all
                  (fun (_, kind, seed, json) ->
                    List.for_all
                      (fun (_, kind', seed', json') ->
                        kind <> kind' || seed <> seed' || json = json')
                      rendered)
                  rendered
              in
              let sum_deliveries =
                List.fold_left
                  (fun acc (_, _, _, json) ->
                    match J.parse json with
                    | Ok v -> (
                        match
                          Option.map J.to_int_opt (J.member "deliveries" v)
                        with
                        | Some (Some d) -> acc + d
                        | _ -> acc)
                    | Error _ -> acc)
                  0 rendered
              in
              match metrics_deliveries_of c with
              | Error e ->
                  finally ();
                  fail "metrics: %s" e
              | Ok total ->
                  let metrics_deliveries = total - baseline in
                  finally ();
                  Ok
                    {
                      sessions;
                      ok_results = List.length rendered;
                      determinism_ok;
                      reconcile_ok = metrics_deliveries = sum_deliveries;
                      sum_deliveries;
                      metrics_deliveries;
                    }))))

let shutdown ~socket =
  match connect socket with
  | Error _ as e -> e
  | Ok c ->
      let r = request c "{\"op\":\"shutdown\"}" in
      close c;
      r
