(** Unix-socket client for the serve protocol.

    Request/response over one connection — the server answers every frame
    with exactly one frame in order, so {!request} is a blocking
    round-trip.  {!smoke} is the end-to-end probe used by [anonet client
    smoke] and CI: a mixed flood/counting/churned load with every seed
    submitted twice, checking byte-determinism and the metrics
    reconciliation contract purely from the client side of the socket. *)

type t

val connect : string -> (t, string) result
val close : t -> unit

val request : t -> string -> (string, string) result
(** Send one frame, read one response frame. *)

(** {1 Retry}

    Capped exponential backoff with seeded jitter, reusing the
    supervisor's retransmission schedule ([Runtime.Supervisor.backoff])
    so there is exactly one backoff policy in the tree.  A
    server-supplied [retry_after_ms] hint can only lengthen a wait. *)

type retry = {
  r_attempts : int;  (** Max retries beyond the first attempt. *)
  r_base_ms : int;  (** Backoff base (doubles per round, jittered). *)
  r_seed : int;  (** Jitter PRNG seed — schedules are reproducible. *)
}

val default_retry : retry
(** 5 retries, 50ms base, seed 0. *)

val retry_delay_ms : retry -> Prng.t -> round:int -> hint_ms:int -> int
(** The wait before retry [round] (0-based):
    [max (Supervisor.backoff ~round) hint_ms].  Exposed so tests can pin
    the policy-reuse contract. *)

val connect_retry : ?retry:retry -> string -> (t, string) result
(** {!connect}, retrying refused/missing sockets — rides out a server
    restart. *)

val request_retry : ?retry:retry -> t -> string -> (string, string) result
(** {!request}, resending on an [overloaded] answer (honouring its
    [retry_after_ms] hint).  Other errors return immediately. *)

val result_of : string -> (Obs.Json.value, string) result
(** Unwrap a response envelope: the ["result"] value, or the error code
    ([Error "overloaded"], ...). *)

val watch : t -> string -> (Obs.Json.value, string) result
(** One [watch] round-trip for a session id: the
    [{"state":...,"metrics":...}] result value, where [metrics] holds
    the registry diff accumulated since the previous [watch] of the same
    session.  Poll it to stream a long run's telemetry live. *)

type smoke_report = {
  sessions : int;
  ok_results : int;
  determinism_ok : bool;  (** Equal submissions rendered equal bytes. *)
  reconcile_ok : bool;
      (** ["sessions.engine.deliveries"] = sum of result deliveries. *)
  sum_deliveries : int;
  metrics_deliveries : int;
}

val smoke : ?sessions:int -> socket:string -> unit -> (smoke_report, string) result
(** Needs a server with a graph named ["small"].  Default 30 sessions. *)

val shutdown : socket:string -> (string, string) result
(** Connect, send [{"op":"shutdown"}], return the raw response. *)
