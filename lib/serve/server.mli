(** The long-lived multi-session broadcast service.

    One {!t} owns a graph table (family specs resolved once at startup),
    the session table, a bounded admission queue drained by worker
    domains, per-connection submission credits, and a server-wide
    [Obs.Registry] into which every finished session's telemetry is
    rolled up under the ["sessions."] prefix.

    {!handle_line} {e is} the protocol — the stdio/socket event loop, the
    in-process tests and the bench all drive the same function — and is
    safe to call from any domain.

    Reconciliation contract: a worker merges a session's registry before
    publishing its final state, so a [metrics] snapshot taken after
    observing a result already contains that session —
    ["sessions.engine.deliveries"] equals the sum of [deliveries] over
    the results observed so far, exactly.

    Durability contract (with [journal] set): every submit is journaled
    before its acknowledgement leaves {!handle_line}, and a session's
    terminal record is journaled before its state becomes pollable.
    {!create} replays the log on boot — acknowledged ⇒ replayable, and
    the serve layer's byte-determinism makes replay {e be} recovery. *)

type config = {
  graphs : (string * string) list;
      (** Name -> family spec ({!Digraph.Families.of_spec} grammar). *)
  workers : int;  (** 0 = no domains; drain with {!step} (tests). *)
  max_queue : int;  (** Admission-queue bound; beyond it: [overloaded]. *)
  credits : int;
      (** Max unfinished sessions per connection; beyond it: [no_credit]. *)
  step_limit : int;  (** Default when a submit names none. *)
  default_engine : string;
      (** ["classic" | "flat"] — the engine for submits that name none;
          [create] rejects anything else. *)
  sample_every : int;  (** Per-session [Obs] sampling cadence. *)
  max_line : int;  (** Wire frame bound. *)
  journal : string option;
      (** Write-ahead log path; [None] disables durability. *)
  journal_sync : bool;
      (** fsync on append (group-committed).  [false] = write-through
          without fsync, for bench baselines and throwaway servers. *)
  shed_watermark_ms : int;
      (** Queue-latency watermark for adaptive shedding; [0] keeps plain
          bounded-FIFO admission. *)
  watchdog : Watchdog.config option;  (** [None] = no watchdog. *)
}

val default_config : config
(** One graph ["small" = comb:8], 2 workers, queue 64, 32 credits; no
    journal, no watchdog, shedding off. *)

(** What journal replay did at boot — all zeros / [false] for a fresh
    log.  Mirrored exactly into ["server.recovered.*"] counters. *)
type recovery = {
  rec_replayed : int;  (** Submits re-executed during recovery. *)
  rec_verified : int;
      (** Re-executed results whose bytes matched the journaled digest. *)
  rec_mismatched : int;  (** Determinism violations — should be 0. *)
  rec_completed : int;
      (** Acknowledged-but-unfinished submits finished by recovery. *)
  rec_cancelled : int;  (** Restored from [Cancelled] records, not re-run. *)
  rec_failed : int;  (** Restored from [Failed] records, not re-run. *)
  rec_orphans : int;  (** Terminal records with no surviving submit. *)
  rec_unreplayable : int;
      (** Journaled submits this process can no longer run (e.g. a graph
          dropped from the config) — restored as [Failed]. *)
  rec_torn : bool;  (** The log had a damaged tail (truncated away). *)
}

type t

val create : ?config:config -> unit -> (t, string) result
(** Resolves every graph spec; [Error] names the offending spec.  With a
    [journal] path, scans the log, truncates any torn tail, replays it
    (blocking until recovery completes) and opens it for append.  Worker
    domains are NOT spawned yet — {!serve_loop} does, or call
    {!start_workers} yourself. *)

val handle_line : t -> conn:int -> string -> string
(** Process one request frame, return one response frame (no newline).
    [conn] scopes submission credits; any int is a valid connection. *)

val handle_overflow : t -> string
(** The response for an over-long frame ({!Wire.event.Overflow}); counts
    it on ["server.frame_errors"] and ["server.wire.overflows"]. *)

val start_workers : t -> unit
(** Spawn worker domains and (when configured) the watchdog domain. *)

val step : t -> bool
(** Run one queued session inline on the calling domain ([false] = queue
    empty).  Deterministic drain for [workers = 0] tests. *)

val stop : t -> unit
(** Close the admission queue, join the workers (accepted sessions finish
    first), fail anything still queued, stop the watchdog, close the
    journal.  Queued sessions drained here get no terminal journal
    record, so the next boot re-executes them.  Idempotent. *)

val shutting_down : t -> bool
(** A [shutdown] request was received (or {!stop} ran). *)

val serve_loop : ?socket:string -> ?stdio:bool -> t -> unit
(** Run the single-threaded select loop until a [shutdown] request (or
    EOF on stdin in stdio-only mode), then {!stop}.  [socket] is a Unix
    domain socket path (unlinked and rebound on entry, removed on exit);
    [stdio] serves connection 0 on stdin/stdout.  At least one of the two
    is required.  Ignores [SIGPIPE]. *)

(** {1 Introspection} (tests and bench) *)

val registry : t -> Obs.Registry.t
val queue_length : t -> int
val graph_names : t -> string list

val recovery : t -> recovery option
(** [Some] iff this server booted with a journal (fresh log ⇒ all-zero
    summary). *)

val watchdog : t -> Watchdog.t option
(** The live watchdog, for deterministic [sweep] calls in tests. *)

val journal_stats : t -> Journal.stats option

val await : t -> string -> Session.state option
(** Block until the session finishes; [None] = unknown id.  Needs a
    drainer (workers or a {!step} caller) to ever return. *)

val session_times : t -> string -> (float * float) option
(** [(submitted, finished)] wall-clock stamps, for latency measurement. *)

val session_counts : t -> string -> (int * int) option
(** [(deliveries, total_bits)] from the session's report. *)
