(** The long-lived multi-session broadcast service.

    One {!t} owns a graph table (family specs resolved once at startup),
    the session table, a bounded admission queue drained by worker
    domains, per-connection submission credits, and a server-wide
    [Obs.Registry] into which every finished session's telemetry is
    rolled up under the ["sessions."] prefix.

    {!handle_line} {e is} the protocol — the stdio/socket event loop, the
    in-process tests and the bench all drive the same function — and is
    safe to call from any domain.

    Reconciliation contract: a worker merges a session's registry before
    publishing its final state, so a [metrics] snapshot taken after
    observing a result already contains that session —
    ["sessions.engine.deliveries"] equals the sum of [deliveries] over
    the results observed so far, exactly. *)

type config = {
  graphs : (string * string) list;
      (** Name -> family spec ({!Digraph.Families.of_spec} grammar). *)
  workers : int;  (** 0 = no domains; drain with {!step} (tests). *)
  max_queue : int;  (** Admission-queue bound; beyond it: [overloaded]. *)
  credits : int;
      (** Max unfinished sessions per connection; beyond it: [no_credit]. *)
  step_limit : int;  (** Default when a submit names none. *)
  default_engine : string;
      (** ["classic" | "flat"] — the engine for submits that name none;
          [create] rejects anything else. *)
  sample_every : int;  (** Per-session [Obs] sampling cadence. *)
  max_line : int;  (** Wire frame bound. *)
}

val default_config : config
(** One graph ["small" = comb:8], 2 workers, queue 64, 32 credits. *)

type t

val create : ?config:config -> unit -> (t, string) result
(** Resolves every graph spec; [Error] names the offending spec.  Worker
    domains are NOT spawned yet — {!serve_loop} does, or call
    {!start_workers} yourself. *)

val handle_line : t -> conn:int -> string -> string
(** Process one request frame, return one response frame (no newline).
    [conn] scopes submission credits; any int is a valid connection. *)

val start_workers : t -> unit
val step : t -> bool
(** Run one queued session inline on the calling domain ([false] = queue
    empty).  Deterministic drain for [workers = 0] tests. *)

val stop : t -> unit
(** Close the admission queue, join the workers (accepted sessions finish
    first), fail anything still queued.  Idempotent. *)

val shutting_down : t -> bool
(** A [shutdown] request was received (or {!stop} ran). *)

val serve_loop : ?socket:string -> ?stdio:bool -> t -> unit
(** Run the single-threaded select loop until a [shutdown] request (or
    EOF on stdin in stdio-only mode), then {!stop}.  [socket] is a Unix
    domain socket path (unlinked and rebound on entry, removed on exit);
    [stdio] serves connection 0 on stdin/stdout.  At least one of the two
    is required. *)

(** {1 Introspection} (tests and bench) *)

val registry : t -> Obs.Registry.t
val queue_length : t -> int
val graph_names : t -> string list

val await : t -> string -> Session.state option
(** Block until the session finishes; [None] = unknown id.  Needs a
    drainer (workers or a {!step} caller) to ever return. *)

val session_times : t -> string -> (float * float) option
(** [(submitted, finished)] wall-clock stamps, for latency measurement. *)

val session_counts : t -> string -> (int * int) option
(** [(deliveries, total_bits)] from the session's report. *)
