(* Request/response layer of the serve wire protocol.

   Requests are one JSON object per line, dispatched on an "op" member;
   responses are an envelope {"id":...,"ok":true,"result":...} or
   {"id":...,"ok":false,"error":{"code":...,"msg":...}} — the "id" echoes
   the request's session id when it has one, so a client may pipeline
   requests and match answers.  Error codes are a closed enum: clients
   branch on [code], never on message text.

   All numeric knobs are validated here, at the edge, so everything behind
   [parse_request] works with known-good values — the runner never has to
   translate an [Invalid_argument] back into a wire error. *)

module J = Obs.Json

type error_code =
  | Parse_error  (** The line is not a well-formed request object. *)
  | Bad_request  (** Well-formed but invalid: bad op, missing id, range. *)
  | Unknown_graph
  | Unknown_protocol
  | Unknown_id
  | Duplicate_id
  | Overloaded  (** Admission queue full; resubmit later. *)
  | No_credit  (** This connection's unfinished-session cap is reached. *)
  | Not_done  (** [result] asked before the session finished. *)
  | Cancelled_error  (** [result] of a cancelled session. *)
  | Quarantined
      (** The (graph, protocol) pair tripped the watchdog's circuit
          breaker; resubmit after the retry-after hint. *)
  | Shutting_down

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Unknown_graph -> "unknown_graph"
  | Unknown_protocol -> "unknown_protocol"
  | Unknown_id -> "unknown_id"
  | Duplicate_id -> "duplicate_id"
  | Overloaded -> "overloaded"
  | No_credit -> "no_credit"
  | Not_done -> "not_done"
  | Cancelled_error -> "cancelled"
  | Quarantined -> "quarantined"
  | Shutting_down -> "shutting_down"

(* Inverse spelling, for journal replay of [Failed] records; an unknown
   spelling (a future code read by an older binary) degrades to
   [Bad_request] rather than failing recovery. *)
let code_of_string = function
  | "parse_error" -> Parse_error
  | "unknown_graph" -> Unknown_graph
  | "unknown_protocol" -> Unknown_protocol
  | "unknown_id" -> Unknown_id
  | "duplicate_id" -> Duplicate_id
  | "overloaded" -> Overloaded
  | "no_credit" -> No_credit
  | "not_done" -> Not_done
  | "cancelled" -> Cancelled_error
  | "quarantined" -> Quarantined
  | "shutting_down" -> Shutting_down
  | _ -> Bad_request

type fault_spec = {
  f_drop : float;
  f_duplicate : float;
  f_max_delay : int;
  f_corrupt : float;
  f_kill : float;
  f_seed : int;
}

type churn_spec = { c_rate : float; c_seed : int; c_t : int option }

type submit = {
  sub_id : string;
  sub_protocol : string;
  sub_graph : string;
  sub_scheduler : string;  (* "fifo" | "lifo" | "random" (seeded below) *)
  sub_engine : string;  (* "classic" | "flat" *)
  sub_seed : int;
  sub_payload : int;
  sub_step_limit : int option;  (* None = server default *)
  sub_faults : fault_spec option;
  sub_churn : churn_spec option;
  sub_deadline_ms : int option;
  sub_key : string option;  (* client-supplied idempotency key *)
}

type request =
  | Submit of submit
  | Status of string
  | Result of string
  | Cancel of string
  | Watch of string
  | Metrics
  | Shutdown

(* {1 Parsing} *)

exception Reject of error_code * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let str_field v name =
  match Option.map J.to_string_opt (J.member name v) with
  | Some (Some s) -> s
  | _ -> reject Bad_request "missing or non-string %S" name

let int_field v name ~default =
  match J.member name v with
  | None -> default
  | Some f -> (
      match J.to_int_opt f with
      | Some i -> i
      | None -> reject Bad_request "non-integer %S" name)

let int_opt_field v name =
  match J.member name v with
  | None -> None
  | Some f -> (
      match J.to_int_opt f with
      | Some i -> Some i
      | None -> reject Bad_request "non-integer %S" name)

let float_field v name ~default =
  match J.member name v with
  | None -> default
  | Some f -> (
      match J.to_float_opt f with
      | Some x -> x
      | None -> reject Bad_request "non-number %S" name)

let prob v name =
  let x = float_field v name ~default:0.0 in
  if x < 0.0 || x > 1.0 then reject Bad_request "%S must be in [0,1]" name;
  x

let faults_of v =
  match J.member "faults" v with
  | None -> None
  | Some f ->
      let spec =
        {
          f_drop = prob f "drop";
          f_duplicate = prob f "duplicate";
          f_max_delay = int_field f "max_delay" ~default:0;
          f_corrupt = prob f "corrupt";
          f_kill = prob f "kill";
          f_seed = int_field f "seed" ~default:0;
        }
      in
      if spec.f_duplicate >= 1.0 then
        reject Bad_request "\"duplicate\" must be in [0,1)";
      if spec.f_max_delay < 0 then
        reject Bad_request "\"max_delay\" must be >= 0";
      Some spec

let churn_of v =
  match J.member "churn" v with
  | None -> None
  | Some c ->
      let spec =
        {
          c_rate = prob c "rate";
          c_seed = int_field c "seed" ~default:0;
          c_t = int_opt_field c "t";
        }
      in
      (match spec.c_t with
      | Some t when t < 1 -> reject Bad_request "churn \"t\" must be >= 1"
      | _ -> ());
      if spec.c_rate = 0.0 then None else Some spec

let submit_of ~default_engine v =
  let sub =
    {
      sub_id = str_field v "id";
      sub_protocol = str_field v "protocol";
      sub_graph = str_field v "graph";
      sub_scheduler =
        (match Option.map J.to_string_opt (J.member "scheduler" v) with
        | Some (Some s) -> s
        | None -> "fifo"
        | Some None -> reject Bad_request "non-string \"scheduler\"");
      sub_engine =
        (match Option.map J.to_string_opt (J.member "engine" v) with
        | Some (Some s) -> s
        | None -> default_engine
        | Some None -> reject Bad_request "non-string \"engine\"");
      sub_seed = int_field v "seed" ~default:0;
      sub_payload = int_field v "payload" ~default:0;
      sub_step_limit = int_opt_field v "step_limit";
      sub_faults = faults_of v;
      sub_churn = churn_of v;
      sub_deadline_ms = int_opt_field v "deadline_ms";
      sub_key =
        (match J.member "key" v with
        | None -> None
        | Some f -> (
            match J.to_string_opt f with
            | Some k -> Some k
            | None -> reject Bad_request "non-string \"key\""));
    }
  in
  if sub.sub_id = "" then reject Bad_request "empty session id";
  (match sub.sub_key with
  | Some "" -> reject Bad_request "empty idempotency \"key\""
  | _ -> ());
  (match sub.sub_scheduler with
  | "fifo" | "lifo" | "random" -> ()
  | s -> reject Bad_request "unknown scheduler %S (fifo | lifo | random)" s);
  (match sub.sub_engine with
  | "classic" | "flat" -> ()
  | s -> reject Bad_request "unknown engine %S (classic | flat)" s);
  if sub.sub_payload < 0 then reject Bad_request "\"payload\" must be >= 0";
  (match sub.sub_step_limit with
  | Some l when l < 1 -> reject Bad_request "\"step_limit\" must be >= 1"
  | _ -> ());
  (match sub.sub_deadline_ms with
  | Some d when d < 1 -> reject Bad_request "\"deadline_ms\" must be >= 1"
  | _ -> ());
  Submit sub

(* The id to echo in an error envelope, best effort: a parseable object's
   "id" member even when the request itself is rejected. *)
let id_of_value v =
  match Option.map J.to_string_opt (J.member "id" v) with
  | Some (Some s) -> Some s
  | _ -> None

let parse_request ?(default_engine = "classic") line =
  match J.parse line with
  | Error pos ->
      Error (None, Parse_error, Printf.sprintf "invalid JSON at byte %d" pos)
  | Ok v -> (
      let id = id_of_value v in
      match Option.map J.to_string_opt (J.member "op" v) with
      | Some (Some op) -> (
          let with_id make =
            match id with
            | Some i -> Ok (make i)
            | None -> Error (id, Bad_request, "missing or non-string \"id\"")
          in
          try
            match op with
            | "submit" -> Ok (submit_of ~default_engine v)
            | "status" -> with_id (fun i -> Status i)
            | "result" -> with_id (fun i -> Result i)
            | "cancel" -> with_id (fun i -> Cancel i)
            | "watch" -> with_id (fun i -> Watch i)
            | "metrics" -> Ok Metrics
            | "shutdown" -> Ok Shutdown
            | op ->
                Error (id, Bad_request, Printf.sprintf "unknown op %S" op)
          with Reject (code, msg) -> Error (id, code, msg))
      | _ -> Error (id, Bad_request, "missing or non-string \"op\""))

(* {1 Envelopes}

   [result] payloads are embedded as raw pre-rendered JSON so a stored
   session result is echoed byte-for-byte — the determinism contract is
   about these exact bytes. *)

let envelope ?id ~ok body =
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  (match id with
  | Some id ->
      Buffer.add_string b "\"id\":";
      J.buf_string b id;
      Buffer.add_char b ','
  | None -> ());
  Buffer.add_string b (if ok then "\"ok\":true," else "\"ok\":false,");
  Buffer.add_string b body;
  Buffer.add_char b '}';
  Buffer.contents b

let ok ?id result_json = envelope ?id ~ok:true ("\"result\":" ^ result_json)

let error ?id ?retry_after_ms code msg =
  let b = Buffer.create 64 in
  Buffer.add_string b "\"error\":{\"code\":\"";
  Buffer.add_string b (code_string code);
  Buffer.add_string b "\",\"msg\":";
  J.buf_string b msg;
  (match retry_after_ms with
  | Some ms -> Printf.bprintf b ",\"retry_after_ms\":%d" ms
  | None -> ());
  Buffer.add_char b '}';
  envelope ?id ~ok:false (Buffer.contents b)

let state_result state = Printf.sprintf "{\"state\":%s}" (J.escape state)
