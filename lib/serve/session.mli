(** Session records and the server-wide session table.

    Lifecycle: [Queued -> Running -> (Done | Failed)], or [-> Cancelled]
    from either live state.  Transitions go through {!transition} (under
    the table lock, broadcasting to {!await} waiters); the {!t.cancel}
    flag is an [Atomic.t] so the engine's [stop] hook can poll it from a
    worker domain without locking. *)

type state =
  | Queued
  | Running
  | Done of string  (** Pre-rendered result JSON, echoed verbatim. *)
  | Cancelled of string
      (** Reason: ["cancel"], ["deadline"] or ["watchdog"]. *)
  | Failed of Proto.error_code * string

val state_name : state -> string
val finished : state -> bool

type t = {
  id : string;
  conn : int;
  submit : Proto.submit;
  cancel : bool Atomic.t;
  mutable state : state;
  mutable credit_released : bool;
  mutable deliveries : int;
  mutable total_bits : int;
  mutable obs : Obs.t option;
      (** The session's live registry, installed by the worker when the
          run starts and kept after it finishes so a final [watch] can
          pick up the tail.  Reads from the serve loop race the worker's
          plain stores — fine for telemetry, and the completion-time
          merge into the server registry is still the exact rollup. *)
  mutable watch_seen : Obs.Registry.snapshot;
      (** What the previous [watch] reply already covered; each watch
          answers the diff against this and advances it (under the table
          lock). *)
  mutable t_submitted : float;
      (** Wall clock, for latency measurement only — timing never enters
          the result payload (that would break byte-determinism). *)
  mutable t_started : float;
      (** When a worker claimed the session (0.0 while queued) — the
          clock the watchdog ages Running sessions against. *)
  mutable t_finished : float;
  mutable wd_level : int;
      (** Watchdog escalation: 0 none, 1 warned, 2 cancelled. *)
}

type table

val create_table : unit -> table

val add : table -> conn:int -> now:float -> Proto.submit -> (t, unit) result
(** [Error ()] if the id is already taken; ids are never reused. *)

val find : table -> string -> t option

val remove : table -> string -> unit
(** Rolls back a submission the admission queue refused; sessions that
    were actually admitted stay queryable for the server's lifetime. *)

val state : table -> t -> state

val transition : table -> t -> (t -> 'a) -> 'a
(** Run a mutation under the table lock and wake {!await} waiters. *)

val await : table -> t -> state
(** Block until the session is {!finished}; returns the final state. *)

val fold : table -> (t -> 'a -> 'a) -> 'a -> 'a
