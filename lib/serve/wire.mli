(** Newline-delimited framing for the serve wire protocol.

    One decoder per connection; {!feed} it whatever byte slices the socket
    yields and it hands back completed frames in order, surviving frames
    split across reads, several frames per read, and oversized or garbage
    input.  Framing errors are {e events}, not exceptions: the connection
    (and the server) always outlives them. *)

type event =
  | Line of string
      (** One complete frame, newline stripped (a trailing CR too, so CRLF
          peers work).  May be empty or arbitrary garbage — framing does
          not validate JSON. *)
  | Overflow
      (** The current line exceeded [max_line] before its newline arrived.
          Emitted once per offending line; the decoder discards the rest of
          the line and resynchronizes at the next newline. *)

type t

val default_max_line : int
(** 1 MiB. *)

val create : ?max_line:int -> unit -> t

val feed : t -> bytes -> int -> int -> event list
(** [feed t bytes off len] consumes a slice and returns the events it
    completes, in arrival order. *)

val feed_string : t -> string -> event list

val pending : t -> bool
(** A partial line is buffered (or being discarded) — i.e. EOF now would
    drop bytes. *)
