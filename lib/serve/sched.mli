(** Bounded multi-producer multi-consumer job queue — the admission-control
    half of the server.

    {!try_push} never blocks: a full (or closed) queue answers [false]
    immediately, which the server turns into a typed [overloaded] error
    instead of invisible latency.  {!pop} blocks; {!close} wakes every
    consumer and lets them drain what was already accepted, so graceful
    shutdown finishes admitted work. *)

type 'a t

val create : cap:int -> 'a t
val try_push : 'a t -> 'a -> bool
val pop : 'a t -> 'a option
(** Blocks until an item or {!close}; [None] = closed and drained. *)

val try_pop : 'a t -> 'a option
(** Non-blocking; for driving jobs inline (tests, [workers = 0]). *)

val close : 'a t -> unit
val length : 'a t -> int
