(** Bounded MPMC job queue with adaptive overload control.

    Producers never block: {!try_push} answers immediately with a typed
    admission decision.  Consumers ({!pop}) block until an item or
    {!close} arrives; a closed queue still drains already-accepted items
    so graceful shutdown finishes accepted work.

    Every dequeue feeds the observed queue wait into an EWMA latency
    estimate.  When a positive [watermark_ms] is configured and the
    estimate exceeds it, admission becomes {e deadline-aware}: a request
    whose deadline the current backlog would already blow is refused
    ({!push_result.Shed}) with a retry-after hint instead of being
    queued and cancelled late.  Deadline-less requests keep plain
    bounded-FIFO semantics. *)

type push_result =
  | Pushed
  | Full of int
      (** Queue at capacity (or closed); payload is a retry-after hint
          in milliseconds derived from the latency estimate. *)
  | Shed of int
      (** Latency estimate above the watermark and the request's
          deadline unmeetable; same retry-after hint. *)

type 'a t

val create : cap:int -> ?watermark_ms:int -> unit -> 'a t
(** [watermark_ms = 0] (the default) disables shedding. *)

val try_push : 'a t -> ?deadline:float -> now:float -> 'a -> push_result
(** [deadline] is an absolute [Unix.gettimeofday]-clock instant. *)

val pop : 'a t -> 'a option
(** Blocks; [None] only once closed {e and} drained. *)

val try_pop : ?now:float -> 'a t -> 'a option
(** Non-blocking. [now] overrides the wall clock for the wait sample —
    injectable for deterministic latency tests. *)

val close : 'a t -> unit
val length : 'a t -> int

val est_wait_ms : 'a t -> int
(** Current queue-wait estimate, ms, floored at 1 — the retry-after
    hint clients receive. *)
