(* Append-only write-ahead log of session lifecycle records.

   One record per line: [CRC32HEX ' ' BODY '\n'] where BODY is a JSON
   object and the checksum covers exactly the BODY bytes.  The framing is
   deliberately the dumbest thing that survives torn writes: a crash can
   only damage the {e tail} of the file (appends are sequential), and any
   truncation or corruption of that tail is caught by the missing newline
   or the checksum — [scan] keeps the longest intact prefix and reports
   the damage instead of crashing on it.

   Durability: [append] is a {e group commit}.  Every record is stamped
   with a sequence number under the lock; one caller becomes the syncer,
   writes the whole pending batch and fsyncs once, and every caller whose
   record made that batch returns together — so N worker domains finishing
   simultaneously cost one fsync, not N.  When [append] returns (in sync
   mode), the record is on disk: the server calls it {e before} any
   acknowledgement leaves [handle_line], which is the whole recovery
   story — an acknowledged submit is a durable submit. *)

module J = Obs.Json

type record =
  | Submitted of { id : string; line : string }
      (* the full request line as received: replay re-parses it, so
         recovery re-executes exactly the acknowledged submission *)
  | Result of {
      id : string;
      digest : string;  (* MD5 hex of the result payload bytes *)
      outcome : string;
      deliveries : int;
      total_bits : int;
    }
  | Cancelled of { id : string; reason : string }
  | Failed of { id : string; code : string; msg : string }

let digest payload = Digest.to_hex (Digest.string payload)

(* {1 CRC32 (IEEE)} *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

(* {1 Encoding} *)

let encode_body r =
  let b = Buffer.create 128 in
  let str name v =
    Buffer.add_string b ",\"";
    Buffer.add_string b name;
    Buffer.add_string b "\":";
    J.buf_string b v
  in
  let int name v =
    Buffer.add_string b ",\"";
    Buffer.add_string b name;
    Printf.bprintf b "\":%d" v
  in
  (match r with
  | Submitted { id; line } ->
      Buffer.add_string b "{\"k\":\"submit\"";
      str "id" id;
      str "line" line
  | Result { id; digest; outcome; deliveries; total_bits } ->
      Buffer.add_string b "{\"k\":\"result\"";
      str "id" id;
      str "digest" digest;
      str "outcome" outcome;
      int "deliveries" deliveries;
      int "bits" total_bits
  | Cancelled { id; reason } ->
      Buffer.add_string b "{\"k\":\"cancel\"";
      str "id" id;
      str "reason" reason
  | Failed { id; code; msg } ->
      Buffer.add_string b "{\"k\":\"fail\"";
      str "id" id;
      str "code" code;
      str "msg" msg);
  Buffer.add_char b '}';
  Buffer.contents b

let encode r =
  let body = encode_body r in
  Printf.sprintf "%08x %s\n" (crc32 body) body

let decode_body body =
  match J.parse body with
  | Error _ -> Error "unparseable record body"
  | Ok v -> (
      let str name = Option.bind (J.member name v) J.to_string_opt in
      let int name = Option.bind (J.member name v) J.to_int_opt in
      match str "k" with
      | Some "submit" -> (
          match (str "id", str "line") with
          | Some id, Some line -> Ok (Submitted { id; line })
          | _ -> Error "bad submit record")
      | Some "result" -> (
          match
            (str "id", str "digest", str "outcome", int "deliveries", int "bits")
          with
          | Some id, Some digest, Some outcome, Some deliveries, Some total_bits
            ->
              Ok (Result { id; digest; outcome; deliveries; total_bits })
          | _ -> Error "bad result record")
      | Some "cancel" -> (
          match (str "id", str "reason") with
          | Some id, Some reason -> Ok (Cancelled { id; reason })
          | _ -> Error "bad cancel record")
      | Some "fail" -> (
          match (str "id", str "code", str "msg") with
          | Some id, Some code, Some msg -> Ok (Failed { id; code; msg })
          | _ -> Error "bad fail record")
      | _ -> Error "unknown record kind")

(* {1 Scanning (recovery side)} *)

type scan = {
  records : record list;  (* the intact prefix, in append order *)
  torn : bool;  (* trailing bytes failed framing, checksum or decode *)
  valid_bytes : int;  (* file offset where the intact prefix ends *)
  total_bytes : int;
}

let scan_string s =
  let n = String.length s in
  let records = ref [] in
  let pos = ref 0 and valid = ref 0 and torn = ref false in
  (try
     while !pos < n do
       match String.index_from_opt s !pos '\n' with
       | None ->
           (* a partial record: the classic torn tail *)
           torn := true;
           raise Exit
       | Some nl ->
           let line = String.sub s !pos (nl - !pos) in
           let ok =
             String.length line > 9
             && line.[8] = ' '
             && String.for_all
                  (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
                  (String.sub line 0 8)
             &&
             let c = int_of_string ("0x" ^ String.sub line 0 8) in
             let body = String.sub line 9 (String.length line - 9) in
             c = crc32 body
             &&
             match decode_body body with
             | Ok r ->
                 records := r :: !records;
                 true
             | Error _ -> false
           in
           if ok then begin
             valid := nl + 1;
             pos := nl + 1
           end
           else begin
             (* stop at the first damaged record: everything after it is
                untrusted (its length framing may itself be corrupt) *)
             torn := true;
             raise Exit
           end
     done
   with Exit -> ());
  {
    records = List.rev !records;
    torn = !torn;
    valid_bytes = !valid;
    total_bytes = n;
  }

let scan_file path =
  if not (Sys.file_exists path) then
    Ok { records = []; torn = false; valid_bytes = 0; total_bytes = 0 }
  else
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      Ok (scan_string s)
    with Sys_error e | Failure e -> Error e

(* {1 The writer} *)

type t = {
  fd : Unix.file_descr;
  sync : bool;
  lock : Mutex.t;
  synced : Condition.t;
  pending : Buffer.t;  (* encoded records not yet written to the fd *)
  mutable next_seq : int;
  mutable synced_seq : int;  (* records <= this are durable (or written) *)
  mutable syncing : bool;  (* a caller is inside write+fsync *)
  mutable appends : int;
  mutable fsyncs : int;
  mutable bytes : int;
  mutable closed : bool;
}

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let open_append ?(sync = true) path =
  match scan_file path with
  | Error e -> Error (Printf.sprintf "journal %s: %s" path e)
  | Ok scan -> (
      match Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 with
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "journal %s: %s" path (Unix.error_message e))
      | fd ->
          (* amputate the torn tail so fresh appends form a clean stream *)
          if scan.valid_bytes < scan.total_bytes then
            Unix.ftruncate fd scan.valid_bytes;
          ignore (Unix.lseek fd 0 Unix.SEEK_END);
          Ok
            ( {
                fd;
                sync;
                lock = Mutex.create ();
                synced = Condition.create ();
                pending = Buffer.create 512;
                next_seq = 0;
                synced_seq = -1;
                syncing = false;
                appends = 0;
                fsyncs = 0;
                bytes = scan.valid_bytes;
                closed = false;
              },
              scan ))

let append t r =
  let line = encode r in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Journal.append: closed"
  end
  else begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Buffer.add_string t.pending line;
    t.appends <- t.appends + 1;
    t.bytes <- t.bytes + String.length line;
    if not t.sync then begin
      (* write-through without fsync: ordering preserved, OS decides
         when it hits the platter *)
      let data = Buffer.contents t.pending in
      Buffer.clear t.pending;
      t.synced_seq <- seq;
      write_all t.fd data;
      Mutex.unlock t.lock
    end
    else begin
      (* group commit: whoever finds no syncer in flight becomes one and
         carries everyone batched behind them through a single fsync *)
      let rec wait_durable () =
        if t.synced_seq >= seq then ()
        else if t.syncing then begin
          Condition.wait t.synced t.lock;
          wait_durable ()
        end
        else begin
          t.syncing <- true;
          let data = Buffer.contents t.pending in
          Buffer.clear t.pending;
          let target = t.next_seq - 1 in
          Mutex.unlock t.lock;
          if data <> "" then write_all t.fd data;
          (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
          Mutex.lock t.lock;
          t.fsyncs <- t.fsyncs + 1;
          if target > t.synced_seq then t.synced_seq <- target;
          t.syncing <- false;
          Condition.broadcast t.synced;
          wait_durable ()
        end
      in
      wait_durable ();
      Mutex.unlock t.lock
    end
  end

type stats = { s_appends : int; s_fsyncs : int; s_bytes : int }

let stats t =
  Mutex.lock t.lock;
  let s = { s_appends = t.appends; s_fsyncs = t.fsyncs; s_bytes = t.bytes } in
  Mutex.unlock t.lock;
  s

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    let data = Buffer.contents t.pending in
    Buffer.clear t.pending;
    if data <> "" then write_all t.fd data;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.lock
