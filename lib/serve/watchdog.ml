(* Stuck-session watchdog: a periodic sweep over the session table that
   escalates long-Running sessions through a ladder —

     warn        mark the session (telemetry only), once
     cancel      flip its cooperative cancel flag; the engine's [stop]
                 hook notices within one poll interval and the worker
                 publishes Cancelled "watchdog"
     quarantine  after enough cancels of the same (graph, protocol)
                 pair, trip a circuit breaker: further submits of that
                 pair are refused at admission until the window expires

   The ladder exists because cancellation here is cooperative: a session
   that livelocks inside the engine still polls [stop] (the runner
   checks every 1024 events), so cancel works — but the submit that
   wedged once will wedge again, and the breaker is what stops a
   retry-happy client from feeding workers an endless diet of doomed
   runs.

   Locking: [sweep] collects victims inside [Session.fold] (which holds
   the table lock) and applies transitions only after the fold returns —
   [Session.transition] retakes the same non-reentrant lock, so
   transitioning inside the fold would deadlock. *)

type config = {
  tick_ms : int;  (* sweep period *)
  warn_after_ms : int;  (* Running age before the warn mark *)
  cancel_after_ms : int;  (* Running age before cooperative cancel *)
  quarantine_strikes : int;  (* watchdog cancels of one (graph, protocol)
                                pair before its breaker trips *)
  quarantine_ms : int;  (* how long a tripped breaker stays open *)
}

let default_config =
  {
    tick_ms = 50;
    warn_after_ms = 1_000;
    cancel_after_ms = 5_000;
    quarantine_strikes = 3;
    quarantine_ms = 30_000;
  }

let validate_config c =
  if c.tick_ms < 1 then invalid_arg "Watchdog: tick_ms must be >= 1";
  if c.warn_after_ms < 1 then invalid_arg "Watchdog: warn_after_ms must be >= 1";
  if c.cancel_after_ms < c.warn_after_ms then
    invalid_arg "Watchdog: cancel_after_ms must be >= warn_after_ms";
  if c.quarantine_strikes < 1 then
    invalid_arg "Watchdog: quarantine_strikes must be >= 1";
  if c.quarantine_ms < 1 then
    invalid_arg "Watchdog: quarantine_ms must be >= 1"

type breaker = {
  mutable strikes : int;
  mutable strike_until : float;  (* strikes decay when this passes *)
  mutable open_until : float;  (* 0.0 = breaker closed *)
}

type t = {
  cfg : config;
  sessions : Session.table;
  breakers : (string * string, breaker) Hashtbl.t;
  block : Mutex.t;
  c_warned : Obs.Registry.acounter;
  c_cancelled : Obs.Registry.acounter;
  c_quarantines : Obs.Registry.acounter;
  stop_flag : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let create cfg sessions reg =
  validate_config cfg;
  let ac = Obs.Registry.acounter reg in
  {
    cfg;
    sessions;
    breakers = Hashtbl.create 8;
    block = Mutex.create ();
    c_warned = ac "server.watchdog.warned";
    c_cancelled = ac "server.watchdog.cancelled";
    c_quarantines = ac "server.watchdog.quarantines";
    stop_flag = Atomic.make false;
    dom = None;
  }

let blocked t f =
  Mutex.lock t.block;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.block) f

(* A watchdog cancel strikes the session's (graph, protocol) pair.
   Strikes within one quarantine window accumulate; reaching the
   threshold opens the breaker and resets the count so a still-broken
   pair re-trips after the window instead of staying open forever. *)
let strike t ~now key =
  blocked t (fun () ->
      let b =
        match Hashtbl.find_opt t.breakers key with
        | Some b -> b
        | None ->
            let b = { strikes = 0; strike_until = 0.0; open_until = 0.0 } in
            Hashtbl.replace t.breakers key b;
            b
      in
      if now > b.strike_until then b.strikes <- 0;
      b.strikes <- b.strikes + 1;
      b.strike_until <- now +. (float_of_int t.cfg.quarantine_ms /. 1000.0);
      if b.strikes >= t.cfg.quarantine_strikes then begin
        b.strikes <- 0;
        b.open_until <- now +. (float_of_int t.cfg.quarantine_ms /. 1000.0);
        Obs.Registry.aincr t.c_quarantines
      end)

let quarantined t ~graph ~protocol ~now =
  blocked t (fun () ->
      match Hashtbl.find_opt t.breakers (graph, protocol) with
      | Some b when b.open_until > now ->
          Some
            (Stdlib.max 1
               (int_of_float (Float.ceil ((b.open_until -. now) *. 1000.0))))
      | _ -> None)

let sweep t ~now =
  let victims =
    Session.fold t.sessions
      (fun s acc ->
        match s.Session.state with
        | Session.Running ->
            let age_ms = (now -. s.Session.t_started) *. 1000.0 in
            if
              s.Session.wd_level < 2
              && age_ms > float_of_int t.cfg.cancel_after_ms
            then (s, `Cancel) :: acc
            else if
              s.Session.wd_level < 1
              && age_ms > float_of_int t.cfg.warn_after_ms
            then (s, `Warn) :: acc
            else acc
        | _ -> acc)
      []
  in
  List.iter
    (fun (s, action) ->
      match action with
      | `Warn ->
          Session.transition t.sessions s (fun s ->
              if s.Session.state = Session.Running && s.Session.wd_level < 1
              then begin
                s.Session.wd_level <- 1;
                Obs.Registry.aincr t.c_warned
              end)
      | `Cancel ->
          let struck =
            Session.transition t.sessions s (fun s ->
                if s.Session.state = Session.Running && s.Session.wd_level < 2
                then begin
                  s.Session.wd_level <- 2;
                  Atomic.set s.Session.cancel true;
                  Obs.Registry.aincr t.c_cancelled;
                  true
                end
                else false)
          in
          if struck then
            strike t ~now
              (s.Session.submit.Proto.sub_graph, s.Session.submit.Proto.sub_protocol))
    victims;
  List.length victims

let start t =
  if t.dom <> None then invalid_arg "Watchdog.start: already started";
  let tick = float_of_int t.cfg.tick_ms /. 1000.0 in
  t.dom <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stop_flag) do
             Unix.sleepf tick;
             if not (Atomic.get t.stop_flag) then
               ignore (sweep t ~now:(Unix.gettimeofday ()))
           done))

let stop t =
  Atomic.set t.stop_flag true;
  match t.dom with
  | Some d ->
      t.dom <- None;
      Domain.join d
  | None -> ()
