(** Append-only, checksummed, fsync-batched write-ahead log of session
    lifecycle records — the durability half of [anonet serve].

    One record per line, [CRC32HEX ' ' BODY '\n'], checksum over the BODY
    bytes.  Sequential appends mean a crash can only damage the file's
    tail; {!scan_string} keeps the longest intact prefix and {e reports}
    a torn tail (missing newline, checksum mismatch, undecodable body)
    instead of failing on it.  {!open_append} amputates that tail so the
    continuing log is clean.

    {!append} is a group commit: records are sequenced under a lock, one
    caller writes and fsyncs the whole pending batch, and every batched
    caller returns together — when it returns (sync mode), the record is
    durable.  The server appends {e before} acknowledging, which is the
    entire recovery contract: acknowledged ⇒ journaled ⇒ replayable. *)

type record =
  | Submitted of { id : string; line : string }
      (** The full request line as received — replay re-parses it, so
          recovery re-executes exactly the acknowledged submission. *)
  | Result of {
      id : string;
      digest : string;  (** MD5 hex of the result payload bytes. *)
      outcome : string;
      deliveries : int;
      total_bits : int;
    }
  | Cancelled of { id : string; reason : string }
  | Failed of { id : string; code : string; msg : string }

val digest : string -> string
(** MD5 hex of a payload — what {!Result} records carry and recovery
    verifies re-executed results against. *)

val crc32 : string -> int
(** IEEE CRC32 of a string (exposed for tests). *)

val encode : record -> string
(** One framed line including the trailing newline. *)

type scan = {
  records : record list;  (** The intact prefix, in append order. *)
  torn : bool;
      (** Trailing bytes failed framing, checksum or decode — recovery
          proceeds from the prefix and reports this. *)
  valid_bytes : int;  (** Offset where the intact prefix ends. *)
  total_bytes : int;
}

val scan_string : string -> scan
val scan_file : string -> (scan, string) result
(** A missing file is an empty (not torn) scan. *)

type t

val open_append : ?sync:bool -> string -> (t * scan, string) result
(** Scan the existing log (if any), truncate the torn tail, open for
    append.  [sync=false] writes through without fsync (bench baseline /
    throwaway servers). *)

val append : t -> record -> unit
(** Durable on return in sync mode (group-committed).
    @raise Invalid_argument after {!close}. *)

type stats = { s_appends : int; s_fsyncs : int; s_bytes : int }

val stats : t -> stats
val close : t -> unit
(** Flush, fsync, close.  Idempotent. *)
