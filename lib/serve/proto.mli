(** Request parsing and response envelopes of the serve wire protocol.

    One JSON object per line.  Requests carry an ["op"] member ([submit],
    [status], [result], [cancel], [watch], [metrics], [shutdown]); responses are
    [{"id":...,"ok":true,"result":...}] or
    [{"id":...,"ok":false,"error":{"code":...,"msg":...}}].  Error codes
    are a closed enum — clients branch on the code, never the message.
    All numeric knobs are range-checked here, so everything behind
    {!parse_request} runs with known-good values. *)

type error_code =
  | Parse_error
  | Bad_request
  | Unknown_graph
  | Unknown_protocol
  | Unknown_id
  | Duplicate_id
  | Overloaded  (** Admission queue full; resubmit later. *)
  | No_credit  (** The connection's unfinished-session cap is reached. *)
  | Not_done  (** [result] asked before the session finished. *)
  | Cancelled_error  (** [result] of a cancelled session. *)
  | Quarantined
      (** The (graph, protocol) pair tripped the watchdog's circuit
          breaker; resubmit after the [retry_after_ms] hint. *)
  | Shutting_down

val code_string : error_code -> string
(** The wire spelling: ["parse_error"], ["overloaded"], ... *)

val code_of_string : string -> error_code
(** Inverse of {!code_string}; unknown spellings degrade to
    [Bad_request] (journal replay of [Failed] records must not fail on a
    code written by a newer binary). *)

type fault_spec = {
  f_drop : float;
  f_duplicate : float;
  f_max_delay : int;
  f_corrupt : float;
  f_kill : float;
  f_seed : int;
}

type churn_spec = { c_rate : float; c_seed : int; c_t : int option }

type submit = {
  sub_id : string;
  sub_protocol : string;
  sub_graph : string;  (** Name in the server's graph table. *)
  sub_scheduler : string;  (** ["fifo" | "lifo" | "random"] (seeded). *)
  sub_engine : string;
      (** ["classic" | "flat"] — which execution engine runs the session.
          Both produce byte-identical result payloads (the flat engine's
          parity contract); [flat] runs on the CSR form the server
          compiled at boot.  Validated here: an unknown engine is a
          [Bad_request], never a dropped connection. *)
  sub_seed : int;  (** Seeds the [random] scheduler's PRNG. *)
  sub_payload : int;
  sub_step_limit : int option;  (** [None] = the server default. *)
  sub_faults : fault_spec option;
  sub_churn : churn_spec option;
  sub_deadline_ms : int option;
  sub_key : string option;
      (** Client-supplied idempotency key: a duplicate key answers with
          the original session's state/result instead of re-running. *)
}

type request =
  | Submit of submit
  | Status of string
  | Result of string
  | Cancel of string
  | Watch of string
      (** Live telemetry: each [watch] of a session answers
          [{"state":...,"metrics":...}] where [metrics] is the
          registry {e diff} since this session's previous [watch] —
          polling it periodically streams incremental snapshots of a
          long run. *)
  | Metrics
  | Shutdown

val parse_request :
  ?default_engine:string ->
  string ->
  (request, string option * error_code * string) result
(** Parse one frame.  [default_engine] (default ["classic"]) fills
    [sub_engine] when a submit omits the ["engine"] member — the server
    passes its configured default here, so [anonet serve --engine flat]
    flips every unannotated session.  The error triple carries the
    request's ["id"] member when one could still be extracted, so even a
    rejection names the session it answers. *)

val ok : ?id:string -> string -> string
(** [ok ?id result_json] builds a success envelope; [result_json] is
    embedded {e verbatim} (it must be pre-rendered JSON), which is what
    makes stored session results byte-identical on every [result] call. *)

val error : ?id:string -> ?retry_after_ms:int -> error_code -> string -> string
(** [retry_after_ms] adds a machine-readable backoff hint to the error
    object — [overloaded]/[quarantined] answers carry one so clients can
    pace their retries instead of hammering. *)

val state_result : string -> string
(** [{"state":"queued"}] etc. — the [submit]/[status]/[cancel] payload. *)
