(** Stuck-session watchdog and (graph, protocol) circuit breaker.

    A periodic sweep of the session table escalates long-[Running]
    sessions through a ladder: {b warn} (telemetry mark) → {b cancel}
    (flip the cooperative cancel flag the engine's [stop] hook polls; the
    worker publishes [Cancelled "watchdog"]) → {b quarantine} (after
    [quarantine_strikes] watchdog-cancels of one (graph, protocol) pair
    within a window, further submits of that pair are refused at
    admission for [quarantine_ms]).

    Cancellation stays cooperative — the runner polls its stop hook
    every 1024 engine events, so even a livelocking protocol yields
    within a bounded number of steps; the breaker is what keeps
    retry-happy clients from resubmitting the same doomed run. *)

type config = {
  tick_ms : int;  (** Sweep period. *)
  warn_after_ms : int;  (** [Running] age before the warn mark. *)
  cancel_after_ms : int;  (** [Running] age before cooperative cancel. *)
  quarantine_strikes : int;
      (** Watchdog cancels of one (graph, protocol) pair before its
          breaker trips. *)
  quarantine_ms : int;  (** How long a tripped breaker stays open. *)
}

val default_config : config
(** 50ms tick, warn at 1s, cancel at 5s, 3 strikes, 30s quarantine. *)

val validate_config : config -> unit
(** Raises [Invalid_argument] on nonsensical knobs (e.g.
    [cancel_after_ms < warn_after_ms]). *)

type t

val create : config -> Session.table -> Obs.Registry.t -> t
(** Registers [server.watchdog.{warned,cancelled,quarantines}] atomic
    counters on the given registry.  Validates the config. *)

val sweep : t -> now:float -> int
(** One pass over the table; returns how many sessions were escalated.
    Safe to call directly (deterministic tests) — {!start} merely calls
    it on a timer. *)

val quarantined : t -> graph:string -> protocol:string -> now:float -> int option
(** [Some remaining_ms] when the pair's breaker is open — the server
    turns this into a [quarantined] error with a retry-after hint. *)

val start : t -> unit
(** Spawn the sweeping domain.  At most once per [t]. *)

val stop : t -> unit
(** Signal and join the sweeping domain; idempotent. *)
