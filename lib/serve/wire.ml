(* Newline-delimited framing with bounded lines.

   One decoder per connection.  [feed] accepts an arbitrary byte slice —
   lines split across reads, several lines in one read — and returns the
   completed frames in arrival order.  A line longer than [max_line] yields
   a single [`Overflow] event and the decoder discards bytes until the next
   newline, so one abusive (or corrupt) frame costs its sender one error
   response instead of unbounded server memory — and never kills the
   connection, let alone the server. *)

type event = Line of string | Overflow

type t = {
  buf : Buffer.t;
  max_line : int;
  mutable discarding : bool;
}

let default_max_line = 1 lsl 20

let create ?(max_line = default_max_line) () =
  if max_line < 1 then invalid_arg "Wire.create: max_line must be >= 1";
  { buf = Buffer.create 256; max_line; discarding = false }

(* A completed line, with one trailing CR stripped so CRLF peers work. *)
let take_line t =
  let s = Buffer.contents t.buf in
  Buffer.clear t.buf;
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let feed t bytes off len =
  if off < 0 || len < 0 || off + len > Bytes.length bytes then
    invalid_arg "Wire.feed: slice out of bounds";
  let out = ref [] in
  for i = off to off + len - 1 do
    let c = Bytes.get bytes i in
    if t.discarding then begin
      if c = '\n' then t.discarding <- false
    end
    else if c = '\n' then out := Line (take_line t) :: !out
    else if Buffer.length t.buf >= t.max_line then begin
      Buffer.clear t.buf;
      t.discarding <- true;
      out := Overflow :: !out
    end
    else Buffer.add_char t.buf c
  done;
  List.rev !out

let feed_string t s = feed t (Bytes.unsafe_of_string s) 0 (String.length s)
let pending t = Buffer.length t.buf > 0 || t.discarding
