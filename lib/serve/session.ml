(* Session records and the server-wide session table.

   A session is one submitted protocol run.  Its lifecycle is
   Queued -> Running -> (Done | Failed), or -> Cancelled from either live
   state.  All state transitions happen under the table lock and broadcast
   [cond], so [await] is a plain condition-variable wait; the [cancel]
   flag is additionally an [Atomic.t] because the engine's cooperative
   [stop] hook polls it from a worker domain without taking the lock. *)

type state =
  | Queued
  | Running
  | Done of string  (* pre-rendered result JSON, echoed verbatim *)
  | Cancelled of string  (* reason: "cancel" | "deadline" | "watchdog" *)
  | Failed of Proto.error_code * string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled _ -> "cancelled"
  | Failed _ -> "failed"

let finished = function
  | Queued | Running -> false
  | Done _ | Cancelled _ | Failed _ -> true

type t = {
  id : string;
  conn : int;  (* submitting connection, for credit accounting *)
  submit : Proto.submit;
  cancel : bool Atomic.t;
  mutable state : state;
  mutable credit_released : bool;
  mutable deliveries : int;  (* from the report, for reconciliation *)
  mutable total_bits : int;
  mutable obs : Obs.t option;  (* live per-session telemetry, for [watch] *)
  mutable watch_seen : Obs.Registry.snapshot;
      (* registry state the last watch reply already covered *)
  mutable t_submitted : float;  (* wall clock, latency measurement only — *)
  mutable t_started : float;  (* never part of the result payload *)
  mutable t_finished : float;
  mutable wd_level : int;
      (* watchdog escalation: 0 none, 1 warned, 2 cancelled.  Written by
         the watchdog under the table lock; the worker's cancel-reason
         read is racy by design (telemetry-grade, not a contract). *)
}

type table = {
  tbl : (string, t) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
}

let create_table () =
  { tbl = Hashtbl.create 64; lock = Mutex.create (); cond = Condition.create () }

let locked tab f =
  Mutex.lock tab.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock tab.lock) f

(* Insert a fresh Queued session; [Error ()] if the id is taken (ids are
   never reused — a finished session stays queryable until shutdown). *)
let add tab ~conn ~now (submit : Proto.submit) =
  locked tab (fun () ->
      if Hashtbl.mem tab.tbl submit.Proto.sub_id then Error ()
      else begin
        let s =
          {
            id = submit.Proto.sub_id;
            conn;
            submit;
            cancel = Atomic.make false;
            state = Queued;
            credit_released = false;
            deliveries = 0;
            total_bits = 0;
            obs = None;
            watch_seen = [];
            t_submitted = now;
            t_started = 0.0;
            t_finished = 0.0;
            wd_level = 0;
          }
        in
        Hashtbl.add tab.tbl s.id s;
        Ok s
      end)

let find tab id = locked tab (fun () -> Hashtbl.find_opt tab.tbl id)

(* Only for rolling back a submission the queue refused — a session that
   ever reached Queued stays in the table for the server's lifetime. *)
let remove tab id = locked tab (fun () -> Hashtbl.remove tab.tbl id)
let state tab s = locked tab (fun () -> s.state)

(* Run [f s] under the lock and broadcast — the one door for transitions. *)
let transition tab s f =
  locked tab (fun () ->
      let r = f s in
      Condition.broadcast tab.cond;
      r)

let await tab s =
  locked tab (fun () ->
      while not (finished s.state) do
        Condition.wait tab.cond tab.lock
      done;
      s.state)

let fold tab f acc =
  locked tab (fun () -> Hashtbl.fold (fun _ s acc -> f s acc) tab.tbl acc)
