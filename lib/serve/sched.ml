(* A bounded multi-producer multi-consumer job queue with adaptive
   overload control.

   The admission-control half of the server.  [try_push] never blocks —
   a full queue is an immediate, typed answer to the client, not
   invisible latency.  Consumers ([pop]) block on a condition variable;
   [close] wakes them all and lets them drain what is already queued, so
   a graceful shutdown finishes accepted work.

   Adaptive shedding: every pop measures how long its item waited and
   folds it into an EWMA of queue latency.  Below the watermark,
   admission is plain bounded FIFO.  Once the estimated wait crosses the
   watermark the queue shifts to {e deadline-aware shedding}: a request
   whose deadline the current backlog would already blow is refused at
   the door ([Shed]) instead of being queued, run late and cancelled —
   the client gets its capacity back as a retry-after hint rather than a
   doomed session.  Deadline-less work keeps FIFO semantics (it cannot
   miss a deadline, so queueing it is never a lie). *)

type push_result =
  | Pushed
  | Full of int  (* queue at capacity; retry-after hint in ms *)
  | Shed of int  (* deadline unmeetable at current latency; hint in ms *)

type 'a t = {
  q : ('a * float * float option) Queue.t;  (* item, enqueued-at, deadline *)
  cap : int;
  watermark_ms : int;  (* 0 = shedding disabled *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable ewma_wait : float;  (* seconds; EWMA of observed queue waits *)
  mutable waits : int;  (* samples folded in so far *)
}

let create ~cap ?(watermark_ms = 0) () =
  if cap < 1 then invalid_arg "Sched.create: cap must be >= 1";
  if watermark_ms < 0 then
    invalid_arg "Sched.create: watermark_ms must be >= 0";
  {
    q = Queue.create ();
    cap;
    watermark_ms;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    ewma_wait = 0.0;
    waits = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Retry-after: the latency estimate itself, floored at 1ms so a hint is
   never "now". *)
let hint_ms_unlocked t =
  Stdlib.max 1 (int_of_float (Float.ceil (t.ewma_wait *. 1000.0)))

let try_push t ?deadline ~now x =
  locked t (fun () ->
      if t.closed || Queue.length t.q >= t.cap then Full (hint_ms_unlocked t)
      else if
        t.watermark_ms > 0
        && t.ewma_wait *. 1000.0 > float_of_int t.watermark_ms
        && match deadline with
           | Some d -> now +. t.ewma_wait > d
           | None -> false
      then Shed (hint_ms_unlocked t)
      else begin
        Queue.push (x, now, deadline) t.q;
        Condition.signal t.nonempty;
        Pushed
      end)

(* First sample seeds the EWMA (no cold-start bias toward 0), later ones
   blend at alpha = 0.2 — reactive enough to notice a latency spike
   within a handful of pops, smooth enough to ignore one slow session. *)
let note_wait t ~now enq =
  let w = Stdlib.max 0.0 (now -. enq) in
  t.ewma_wait <-
    (if t.waits = 0 then w else (0.2 *. w) +. (0.8 *. t.ewma_wait));
  t.waits <- t.waits + 1

let pop t =
  locked t (fun () ->
      let rec go () =
        match Queue.take_opt t.q with
        | Some (x, enq, _) ->
            note_wait t ~now:(Unix.gettimeofday ()) enq;
            Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              go ()
            end
      in
      go ())

let try_pop ?now t =
  locked t (fun () ->
      match Queue.take_opt t.q with
      | Some (x, enq, _) ->
          let now =
            match now with Some n -> n | None -> Unix.gettimeofday ()
          in
          note_wait t ~now enq;
          Some x
      | None -> None)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = locked t (fun () -> Queue.length t.q)
let est_wait_ms t = locked t (fun () -> hint_ms_unlocked t)
