(* A bounded multi-producer multi-consumer job queue.

   The admission-control half of the server: [try_push] never blocks — a
   full queue is an immediate, typed [overloaded] answer to the client,
   not invisible latency.  Consumers ([pop]) block on a condition
   variable; [close] wakes them all and lets them drain what is already
   queued, so a graceful shutdown finishes accepted work. *)

type 'a t = {
  q : 'a Queue.t;
  cap : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~cap =
  if cap < 1 then invalid_arg "Sched.create: cap must be >= 1";
  {
    q = Queue.create ();
    cap;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.q >= t.cap then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      let rec go () =
        match Queue.take_opt t.q with
        | Some x -> Some x
        | None ->
            if t.closed then None
            else begin
              Condition.wait t.nonempty t.lock;
              go ()
            end
      in
      go ())

let try_pop t = locked t (fun () -> Queue.take_opt t.q)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = locked t (fun () -> Queue.length t.q)
