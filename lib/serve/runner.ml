(* Execute one submitted session on a worker.

   The runner is deliberately dumb: everything reaching it was validated
   at the protocol edge, the graph was resolved from the server table, and
   cancellation arrives as an opaque [stop] hook.  Its one hard contract
   is {e determinism}: the result JSON is a pure function of
   (graph, submit fields) — keys emitted in a fixed order, counters from
   the engine report only, no wall clock, no session id — so equal
   submissions yield byte-identical payloads no matter what else the
   server is running. *)

module E = Runtime.Engine

let protocol_of_name :
    string -> (module Runtime.Protocol_intf.PROTOCOL) option = function
  | "flood" -> Some (module Anonet.Flood)
  | "amnesiac" -> Some (module Anonet.Amnesiac_flood)
  | "counting" -> Some (module Anonet.Counting)
  | "tree" -> Some (module Anonet.Tree_broadcast)
  | "tree-naive" -> Some (module Anonet.Tree_broadcast_naive)
  | "dag" -> Some (module Anonet.Dag_broadcast_pow2)
  | "general" -> Some (module Anonet.General_broadcast)
  | "labeling" -> Some (module Anonet.Labeling)
  | "mapping" -> Some (module Anonet.Mapping)
  | "undirected" -> Some (module Anonet.Undirected_labeling)
  | _ -> None

let protocol_known name = protocol_of_name name <> None

let protocol_names =
  [
    "flood"; "amnesiac"; "counting"; "tree"; "tree-naive"; "dag"; "general";
    "labeling"; "mapping"; "undirected";
  ]

let scheduler_of (sub : Proto.submit) =
  match sub.Proto.sub_scheduler with
  | "lifo" -> Runtime.Scheduler.Lifo
  | "random" -> Runtime.Scheduler.Random (Prng.create sub.Proto.sub_seed)
  | _ -> Runtime.Scheduler.Fifo

let faults_of (sub : Proto.submit) =
  match sub.Proto.sub_faults with
  | None -> Runtime.Faults.none
  | Some f ->
      Runtime.Faults.create ~drop:f.Proto.f_drop ~duplicate:f.Proto.f_duplicate
        ~max_delay:f.Proto.f_max_delay ~corrupt:f.Proto.f_corrupt
        ~kill:f.Proto.f_kill ~seed:f.Proto.f_seed ()

let churn_of (sub : Proto.submit) g =
  match sub.Proto.sub_churn with
  | None -> Runtime.Churn.none
  | Some c -> (
      let base =
        Runtime.Churn.uniform
          (Runtime.Churn.plan ~remove:c.Proto.c_rate ~max_downtime:3 ())
          ~seed:c.Proto.c_seed
      in
      match c.Proto.c_t with
      | None -> base
      | Some t -> Runtime.Churn.with_contract ~t_interval:t g base)

let outcome_name = function
  | E.Terminated -> "terminated"
  | E.Quiescent -> "quiescent"
  | E.Step_limit -> "step_limit"
  | E.Cancelled -> "cancelled"

(* Fixed key order, engine-report fields only: the byte-determinism
   contract lives here. *)
let render_result (r : _ E.report) =
  let b = Buffer.create 256 in
  let field ?(first = false) name v =
    if not first then Buffer.add_char b ',';
    Printf.bprintf b "\"%s\":%d" name v
  in
  Buffer.add_char b '{';
  Printf.bprintf b "\"outcome\":\"%s\"" (outcome_name r.E.outcome);
  field "deliveries" r.E.deliveries;
  field "total_bits" r.E.total_bits;
  field "max_edge_bits" r.E.max_edge_bits;
  field "max_message_bits" r.E.max_message_bits;
  field "max_state_bits" r.E.max_state_bits;
  field "max_in_flight" r.E.max_in_flight;
  field "final_in_flight" r.E.final_in_flight;
  field "distinct_messages" r.E.distinct_messages;
  let visited =
    Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 r.E.visited
  in
  field "visited" visited;
  Printf.bprintf b ",\"all_visited\":%b"
    (Array.for_all (fun v -> v) r.E.visited);
  let f = r.E.fault_stats in
  Buffer.add_string b ",\"faults\":{";
  field ~first:true "dropped" f.E.dropped_copies;
  field "extra" f.E.extra_copies;
  field "delayed" f.E.delayed_copies;
  field "corrupted" f.E.corrupted_deliveries;
  field "garbled" f.E.garbled_drops;
  field "checksum_rejects" f.E.checksum_rejects;
  field "dead_edges" (List.length f.E.dead_edges);
  Buffer.add_char b '}';
  let c = r.E.churn_stats in
  Buffer.add_string b ",\"churn\":{";
  field ~first:true "adds" c.E.adds;
  field "removes" c.E.removes;
  field "heals" c.E.heals;
  field "lost_in_flight" c.E.messages_lost_in_flight;
  field "window_violations" c.E.window_violations;
  Buffer.add_string b "}}";
  Buffer.contents b

type done_run = {
  json : string;  (* the deterministic result payload *)
  r_outcome : E.outcome;
  r_deliveries : int;
  r_total_bits : int;
}

let run ~stop ?obs ~step_limit (sub : Proto.submit) csr =
  match protocol_of_name sub.Proto.sub_protocol with
  | None -> invalid_arg "Runner.run: unknown protocol (validated upstream)"
  | Some (module P : Runtime.Protocol_intf.PROTOCOL) ->
      let g = Flatcore.Csr.digraph csr in
      let step_limit =
        match sub.Proto.sub_step_limit with Some l -> l | None -> step_limit
      in
      (* Engine parity makes this a pure performance knob: both produce
         the same report, so the same payload bytes. *)
      let r =
        match sub.Proto.sub_engine with
        | "flat" ->
            let module En = Flatcore.Engine.Make (P) in
            En.run_csr ~scheduler:(scheduler_of sub)
              ~payload_bits:sub.Proto.sub_payload ~step_limit
              ~faults:(faults_of sub) ~churn:(churn_of sub g) ~stop ?obs csr
        | _ ->
            let module En = E.Make (P) in
            En.run ~scheduler:(scheduler_of sub)
              ~payload_bits:sub.Proto.sub_payload ~step_limit
              ~faults:(faults_of sub) ~churn:(churn_of sub g) ~stop ?obs g
      in
      {
        json = render_result r;
        r_outcome = r.E.outcome;
        r_deliveries = r.E.deliveries;
        r_total_bits = r.E.total_bits;
      }
