(* The flat execution engine: Runtime.Engine semantics over a CSR graph,
   an arena of encoded message slots, and — when a pre-run probe certifies
   the protocol as flood-shaped — a specialized loop that delivers messages
   as pure int arithmetic.

   The contract is Engine_sig.S: for equal inputs, every field of the
   returned report and every deterministic [engine.*] Obs counter is
   byte-for-byte identical to [Runtime.Engine.Make].  The flat engine is a
   different evaluation order of the same math, never a different
   semantics, and [test/test_flatcore.ml] property-tests exactly that
   across protocols x graph families x faults x vfaults x churn x
   schedulers.

   Where the classic engine spends its per-delivery budget:
   - a [Bit_writer] allocation + encode to learn the wire size,
   - a [length ^ ":" ^ bytes] key string + hashtable probe for
     [distinct_messages],
   - a heap-allocated flight record and a queue cell per copy.

   Here a message is encoded once per physically-distinct value at send
   time (a pointer-equality memo catches the overwhelmingly common case of
   a protocol re-sending one value on every port) into a bump arena of
   bytes; the slot id rides with the copy, so a delivery charges bits and
   dedups symbols with two int loads and a byte flag.  The fast path goes
   further and keeps the whole in-flight pool as one int array of edge
   indices. *)

module E = Runtime.Engine
module Scheduler = Runtime.Scheduler
module Faults = Runtime.Faults
module Vfaults = Runtime.Vfaults
module Churn = Runtime.Churn
module Supervisor = Runtime.Supervisor
module Binheap = Runtime.Binheap

(* {1 The message arena}

   One slot per distinct wire encoding: the bytes live in a single growing
   buffer, the per-slot tables give offset and exact bit length, and
   [seen] marks slots whose encoding crossed an edge at least once — the
   flat representation of the classic engine's distinct-symbol table. *)

type arena = {
  mutable buf : Bytes.t;
  mutable used : int;
  mutable off : int array;  (* per slot: byte offset into [buf] *)
  mutable len_bits : int array;  (* per slot: exact encoded length *)
  mutable seen : Bytes.t;  (* per slot: '\001' once delivered across an edge *)
  mutable n_slots : int;
  mutable distinct : int;  (* slots marked seen *)
  index : (string, int) Hashtbl.t;  (* encoding key -> slot *)
}

let arena_create () =
  {
    buf = Bytes.create 256;
    used = 0;
    off = Array.make 16 0;
    len_bits = Array.make 16 0;
    seen = Bytes.make 16 '\000';
    n_slots = 0;
    distinct = 0;
    index = Hashtbl.create 64;
  }

let arena_add a bytes len_bits =
  let blen = String.length bytes in
  if a.used + blen > Bytes.length a.buf then begin
    let cap = Stdlib.max (a.used + blen) (2 * Bytes.length a.buf) in
    let bigger = Bytes.create cap in
    Bytes.blit a.buf 0 bigger 0 a.used;
    a.buf <- bigger
  end;
  Bytes.blit_string bytes 0 a.buf a.used blen;
  if a.n_slots = Array.length a.off then begin
    let cap = 2 * a.n_slots in
    let grow arr = Array.append arr (Array.make a.n_slots 0) in
    a.off <- grow a.off;
    a.len_bits <- grow a.len_bits;
    let seen = Bytes.make cap '\000' in
    Bytes.blit a.seen 0 seen 0 a.n_slots;
    a.seen <- seen
  end;
  let slot = a.n_slots in
  a.off.(slot) <- a.used;
  a.len_bits.(slot) <- len_bits;
  a.used <- a.used + blen;
  a.n_slots <- slot + 1;
  slot

(* The stored encoding, re-materialized as a string (corrupt/verify paths
   only — never on the fault-free hot path). *)
let arena_string a slot =
  Bytes.sub_string a.buf a.off.(slot) ((a.len_bits.(slot) + 7) / 8)

let arena_mark_seen a slot =
  if Bytes.get a.seen slot = '\000' then begin
    Bytes.set a.seen slot '\001';
    a.distinct <- a.distinct + 1
  end

module Make (P : Runtime.Protocol_intf.PROTOCOL) = struct
  type state = P.state
  type message = P.message

  (* A copy in flight.  [fv/fp/tv/tp] of the classic flight are all
     recoverable from [edge] via the CSR arrays, so only the scheduling
     identity, the fault bit, the protocol value (for [receive]), the
     arena slot (for everything charged by wire size) and the causal
     provenance ([lp] = parent lineage node id, [ld] = causal depth —
     same convention as the classic flight) travel. *)
  type flight = {
    seq : int;
    edge : int;
    corrupt : bool;
    lp : int;
    ld : int;
    msg : P.message;
    slot : int;
  }

  (* In-flight pools, one per scheduling policy — the same structures (and
     therefore the same PRNG draw sequences and tie-breaks) as the classic
     engine's. *)
  let make_pool scheduler =
    match (scheduler : Scheduler.t) with
    | Fifo ->
        let q = Queue.create () in
        ( (fun f -> Queue.add f q),
          (fun () -> Queue.take_opt q),
          fun () ->
            let l = List.of_seq (Queue.to_seq q) in
            Queue.clear q;
            l )
    | Lifo ->
        let st = ref [] in
        ( (fun f -> st := f :: !st),
          (fun () ->
            match !st with
            | [] -> None
            | f :: rest ->
                st := rest;
                Some f),
          fun () ->
            let l = !st in
            st := [];
            l )
    | Random g ->
        let arr = ref [||] and len = ref 0 in
        let push f =
          if !len = Array.length !arr then begin
            let cap = Stdlib.max 16 (2 * !len) in
            let bigger = Array.make cap f in
            Array.blit !arr 0 bigger 0 !len;
            arr := bigger
          end;
          !arr.(!len) <- f;
          incr len
        in
        let pop () =
          if !len = 0 then None
          else begin
            let i = Prng.int g !len in
            let f = !arr.(i) in
            decr len;
            !arr.(i) <- !arr.(!len);
            Some f
          end
        in
        let drain () =
          let l = Array.to_list (Array.sub !arr 0 !len) in
          len := 0;
          l
        in
        (push, pop, drain)
    | Edge_priority prio ->
        let h = Binheap.create () in
        let pop () = Option.map snd (Binheap.pop h) in
        let rec drain acc =
          match pop () with None -> List.rev acc | Some f -> drain (f :: acc)
        in
        ((fun f -> Binheap.push h (prio f.edge, f.seq) f), pop, fun () -> drain [])
    | Replay order ->
        let pool : (int, flight) Hashtbl.t = Hashtbl.create 32 in
        let remaining = ref order in
        let push f = Hashtbl.replace pool f.seq f in
        let pop () =
          match !remaining with
          | [] -> None
          | s :: rest -> (
              match Hashtbl.find_opt pool s with
              | Some f ->
                  remaining := rest;
                  Hashtbl.remove pool s;
                  Some f
              | None -> None)
        in
        let drain () =
          let l = Hashtbl.fold (fun _ f acc -> f :: acc) pool [] in
          Hashtbl.reset pool;
          List.sort (fun a b -> compare a.seq b.seq) l
        in
        (push, pop, drain)

  let flip_bit s b =
    let bytes = Bytes.of_string s in
    let i = b / 8 in
    Bytes.set bytes i
      (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (7 - (b mod 8)))));
    Bytes.to_string bytes

  (* {1 The flood certificate}

     The fast path replaces [P.receive] on already-saturated vertices with
     nothing at all, which is sound only for protocols whose behavior it
     can certify up front:

     - the root emits one physically-shared message value [m0], and every
       send any receive ever produces is pointer-equal to it (checked live
       on each executed receive — a pointer compare per send);
     - from the state one receive of [m0] produces, any further receive of
       [m0] on any in-port returns that very state (pointer-equal) and no
       sends — the vertex is {e absorbing}.

     Absorption is probed per distinct (out_degree, in_degree) pair over
     every in-port, assuming only that [receive] is a pure function of its
     arguments — the same purity the classic engine already relies on to
     share checkpoint snapshots.  Probing is O(sum in_degree^2) over the
     distinct degree pairs; a budget keeps pathological degree profiles on
     the generic path instead. *)
  let certify_flood csr =
    let od_s = Csr.out_degree csr (Csr.source csr) in
    match P.root_emit ~out_degree:od_s with
    | [] -> None
    | (_, m0) :: _ as emits ->
        if not (List.for_all (fun (_, m) -> m == m0) emits) then None
        else begin
          let n = Csr.n_vertices csr and m = Csr.n_edges csr in
          let pairs = Hashtbl.create 16 in
          for v = 0 to n - 1 do
            let idg = Csr.in_degree csr v in
            if idg > 0 then Hashtbl.replace pairs (Csr.out_degree csr v, idg) ()
          done;
          let budget =
            Hashtbl.fold (fun (_, idg) () acc -> acc + (idg * (idg + 1))) pairs 0
          in
          if budget > (4 * m) + 4096 then None
          else begin
            let ok = ref true in
            let check_pair (od, idg) () =
              if !ok then begin
                let st0 = P.initial_state ~out_degree:od ~in_degree:idg in
                for i = 0 to idg - 1 do
                  if !ok then begin
                    let st1, sends =
                      P.receive ~out_degree:od ~in_degree:idg st0 m0 ~in_port:i
                    in
                    if not (List.for_all (fun (_, s) -> s == m0) sends) then
                      ok := false
                    else
                      for i' = 0 to idg - 1 do
                        if !ok then
                          match
                            P.receive ~out_degree:od ~in_degree:idg st1 m0
                              ~in_port:i'
                          with
                          | st2, [] when st2 == st1 -> ()
                          | _ -> ok := false
                      done
                  end
                done
              end
            in
            Hashtbl.iter check_pair pairs;
            if !ok then Some (m0, emits) else None
          end
        end

  (* {1 The fast path}

     Fault-free FIFO only: the pool degenerates to one int array of edge
     indices consumed left to right (send order is delivery order, so the
     k-th pop is seq k), and a vertex's first receive — executed for real,
     so final states match the classic run bit-for-bit — flips it to
     absorbed, after which its deliveries touch two arrays and nothing
     else.  Total pushes are bounded by [root emissions + m] because an
     absorbing vertex emits at most once. *)
  let run_flood csr ~payload_bits ~step_limit ~stop ~oh ~lineage (m0 : P.message)
      (emits : (int * P.message) list) =
    let n = Csr.n_vertices csr and ne = Csr.n_edges csr in
    let s = Csr.source csr and t = Csr.terminal csr in
    let row = csr.Csr.row
    and head_arr = csr.Csr.head
    and tgt_port = csr.Csr.tgt_port in
    let bpm =
      let w = Bitio.Bit_writer.create () in
      P.encode w m0;
      Bitio.Bit_writer.length w + payload_bits
    in
    let states =
      Array.init n (fun v ->
          P.initial_state
            ~out_degree:(Csr.out_degree csr v)
            ~in_degree:(Csr.in_degree csr v))
    in
    let visited = Array.make n false in
    let absorbed = Bytes.make n '\000' in
    let edge_messages = Array.make (Stdlib.max ne 1) 0 in
    let deliveries = ref 0 in
    let n_visited = ref 0 in
    let max_state_bits = ref 0 in
    (* One push per root emission plus at most one emission burst per
       vertex; grown defensively since the certificate does not bound a
       burst's length. *)
    let ring = ref (Array.make (List.length emits + ne + 1) 0) in
    let tail = ref 0 and head = ref 0 in
    let max_in_flight = ref 0 in
    (* Lineage rides in the unused upper bits of the edge ring itself:
       each pushed slot packs [edge lor (parent_id lsl journal_shift)]
       (edge and delivery counts are both far below 2^31).  With no
       recorder [lin_parent] stays 0, the pack is the identity, and the
       bare fast path pays one OR per push and one AND per pop. *)
    let lin_on = lineage <> None in
    (match lineage with
    | Some l -> Obs.Lineage.bind l ~n_vertices:n ~n_edges:ne
    | None -> ());
    let lin_parent = ref 0 in
    let stop_now = match stop with None -> (fun () -> false) | Some f -> f in
    let until_sample =
      ref (match oh with Some h -> h.E.oh_sample_every | None -> max_int)
    in
    let time_receive = ref false in
    (* [bits_total] is passed in because the classic engine samples
       [engine.total_bits] {e before} charging the current delivery. *)
    let obs_sample ~bits_total =
      match oh with
      | None -> ()
      | Some h ->
          let tl = h.E.oh_timeline and track = h.E.oh_track in
          let in_flight = !tail - !head in
          Obs.Registry.set h.E.g_in_flight in_flight;
          Obs.Registry.set h.E.g_wavefront !n_visited;
          (* entered - delivered - in_flight: every pop is a delivery here,
             so the residual is identically 0 — sampled anyway to keep the
             reconciliation series present. *)
          Obs.Registry.set h.E.g_residual 0;
          Obs.Timeline.sample tl ~track "engine.in_flight" (float_of_int in_flight);
          Obs.Timeline.sample tl ~track "engine.wavefront" (float_of_int !n_visited);
          Obs.Timeline.sample tl ~track "engine.cut_residual" 0.0;
          Obs.Timeline.sample tl ~track "engine.deliveries" (float_of_int !deliveries);
          Obs.Timeline.sample tl ~track "engine.total_bits"
            (float_of_int bits_total)
    in
    (match oh with
    | Some h -> Obs.Timeline.begin_span h.E.oh_timeline ~track:h.E.oh_track "engine.run"
    | None -> ());
    let push_edge e =
      let r = !ring in
      let r =
        if !tail = Array.length r then begin
          let bigger = Array.make (2 * Array.length r) 0 in
          Array.blit r 0 bigger 0 !tail;
          ring := bigger;
          bigger
        end
        else r
      in
      r.(!tail) <- e lor (!lin_parent lsl Obs.Lineage.journal_shift);
      incr tail;
      let fl = !tail - !head in
      if fl > !max_in_flight then max_in_flight := fl
    in
    List.iter
      (fun (j, _) ->
        (match oh with Some h -> Obs.Registry.incr h.E.c_sends | None -> ());
        push_edge (row.(s) + j))
      emits;
    visited.(s) <- true;
    incr n_visited;
    let outcome = ref E.Quiescent in
    let running = ref true in
    while !running do
      if !deliveries >= step_limit then begin
        outcome := E.Step_limit;
        running := false
      end
      else if stop_now () then begin
        outcome := E.Cancelled;
        running := false
      end
      else if !head = !tail then begin
        outcome := (if P.accepting states.(t) then E.Terminated else E.Quiescent);
        running := false
      end
      else begin
        let e =
          Array.unsafe_get !ring !head
          land ((1 lsl Obs.Lineage.journal_shift) - 1)
        in
        incr head;
        incr deliveries;
        (match oh with
        | Some h ->
            Obs.Registry.incr h.E.c_deliveries;
            Obs.Registry.add h.E.c_bits bpm;
            Obs.Registry.observe h.E.h_message_bits bpm;
            decr until_sample;
            if !until_sample <= 0 then begin
              until_sample := h.E.oh_sample_every;
              time_receive := true;
              obs_sample ~bits_total:((!deliveries - 1) * bpm)
            end
        | None -> ());
        Array.unsafe_set edge_messages e (Array.unsafe_get edge_messages e + 1);
        let tv = Array.unsafe_get head_arr e in
        if Bytes.unsafe_get absorbed tv = '\001' then begin
          (* The classic engine would run a receive returning the same
             state and no sends; the sampled-receive histogram still gets
             its observation so counts reconcile. *)
          match oh with
          | Some h when !time_receive ->
              time_receive := false;
              Obs.Registry.observe h.E.h_receive_ns 0
          | _ -> ()
        end
        else begin
          if not visited.(tv) then begin
            visited.(tv) <- true;
            incr n_visited
          end;
          let t0 =
            match oh with
            | Some h when !time_receive -> Obs.Timeline.now h.E.oh_timeline
            | _ -> 0.0
          in
          let st', sends =
            P.receive
              ~out_degree:(Csr.out_degree csr tv)
              ~in_degree:(Csr.in_degree csr tv)
              states.(tv) m0 ~in_port:(Array.unsafe_get tgt_port e)
          in
          (match oh with
          | Some h when !time_receive ->
              time_receive := false;
              let ns =
                int_of_float ((Obs.Timeline.now h.E.oh_timeline -. t0) *. 1e9)
              in
              Obs.Registry.add h.E.c_receive_ns ns;
              Obs.Registry.observe h.E.h_receive_ns ns
          | _ -> ());
          states.(tv) <- st';
          let b = P.state_bits st' in
          if b > !max_state_bits then max_state_bits := b;
          Bytes.unsafe_set absorbed tv '\001';
          if lin_on then lin_parent := !deliveries;
          let base = row.(tv) in
          List.iter
            (fun (j, m) ->
              if m != m0 then
                failwith "Flatcore.Engine: protocol violated its flood certificate";
              (match oh with Some h -> Obs.Registry.incr h.E.c_sends | None -> ());
              push_edge (base + j))
            sends;
          if tv = t && P.accepting st' then begin
            outcome := E.Terminated;
            running := false
          end
        end
      end
    done;
    (* The ring never reuses a slot — [head] only advances, and growth
       blits the whole [0, tail) prefix — so slots [0, head) are the pop
       journal in delivery order (id = slot + 1).  Hand the rings to the
       recorder wholesale: they are dead here, and it replays them into
       its aggregates lazily on first query, so the ~100ns/pop loop
       above paid only the two ring stores per push. *)
    (match lineage with
    | Some l ->
        Obs.Lineage.note_journal l ~packed:!ring ~heads:head_arr
          ~count:!head ~track:0
    | None -> ());
    (match oh with
    | Some h ->
        obs_sample ~bits_total:(!deliveries * bpm);
        Obs.Timeline.end_span h.E.oh_timeline ~track:h.E.oh_track "engine.run"
    | None -> ());
    let edge_bits = Array.map (fun c -> c * bpm) edge_messages in
    {
      E.outcome = !outcome;
      deliveries = !deliveries;
      total_bits = !deliveries * bpm;
      max_edge_bits = Array.fold_left Stdlib.max 0 edge_bits;
      max_message_bits = (if !deliveries > 0 then bpm else 0);
      max_state_bits = !max_state_bits;
      max_in_flight = !max_in_flight;
      final_in_flight = !tail - !head;
      distinct_messages = (if !deliveries > 0 then 1 else 0);
      edge_messages;
      edge_bits;
      visited;
      states;
      fault_stats = E.no_faults_stats;
      vfault_stats = E.no_vfaults_stats;
      churn_stats = E.no_churn_stats;
    }

  (* {1 The generic path}

     A delivery-for-delivery transcription of [Runtime.Engine.Make(P).run]:
     same fault / vfault / churn fate order, same PRNG streams, same pool
     behavior, same Obs counter updates — with targets resolved through
     the CSR arrays and wire sizes through the arena instead of a
     per-delivery encode. *)
  let run_generic csr ~scheduler ~payload_bits ~step_limit ~faults ~vfaults
      ~churn ~supervisor ~verify_codec ~stop ~oh ~lineage ~on_deliver ~on_pop
      ~on_undelivered () =
    let stop_now = match stop with None -> (fun () -> false) | Some f -> f in
    let n = Csr.n_vertices csr in
    let ne = Csr.n_edges csr in
    (match lineage with
    | Some l -> Obs.Lineage.bind l ~n_vertices:n ~n_edges:ne
    | None -> ());
    (* Same causal-context discipline as the classic engine: (0, 0)
       outside a receive's send burst. *)
    let lin_parent = ref 0 in
    let lin_depth = ref 0 in
    let t = Csr.terminal csr in
    let row = csr.Csr.row
    and head_arr = csr.Csr.head
    and tgt_port = csr.Csr.tgt_port
    and src = csr.Csr.src in
    let states =
      Array.init n (fun v ->
          P.initial_state
            ~out_degree:(Csr.out_degree csr v)
            ~in_degree:(Csr.in_degree csr v))
    in
    let initial_of v =
      P.initial_state
        ~out_degree:(Csr.out_degree csr v)
        ~in_degree:(Csr.in_degree csr v)
    in
    let visited = Array.make n false in
    let edge_messages = Array.make (Stdlib.max ne 1) 0 in
    let edge_bits = Array.make (Stdlib.max ne 1) 0 in
    let total_bits = ref 0 in
    let max_message_bits = ref 0 in
    let deliveries = ref 0 in
    let corrupted_deliveries = ref 0 in
    let garbled_drops = ref 0 in
    let checksum_rejects = ref 0 in
    let arena = arena_create () in
    (* Encode-once memo: protocols overwhelmingly re-send one physical
       message value (flood's token, a just-built commodity fanned over
       every port), so most sends resolve their slot with one pointer
       compare. *)
    let memo : (P.message * int) option ref = ref None in
    let slot_of msg =
      match !memo with
      | Some (m, s) when m == msg -> s
      | _ ->
          let w = Bitio.Bit_writer.create () in
          P.encode w msg;
          let len_bits = Bitio.Bit_writer.length w in
          let bytes = Bitio.Bit_writer.to_string w in
          let key = string_of_int len_bits ^ ":" ^ bytes in
          let slot =
            match Hashtbl.find_opt arena.index key with
            | Some s -> s
            | None ->
                let s = arena_add arena bytes len_bits in
                Hashtbl.add arena.index key s;
                s
          in
          memo := Some (msg, slot);
          slot
    in
    let push, pop, drain = make_pool scheduler in
    let faulty = not (Faults.is_none faults) in
    let fi = Faults.Instance.start faults in
    let vfaulty = not (Vfaults.is_none vfaults) in
    let vfi = Vfaults.Instance.start vfaults in
    let churny = not (Churn.is_none churn) in
    let ci = Churn.Instance.start churn in
    let supervised = supervisor <> None in
    let need_ckpt = vfaulty || supervised in
    let ckpt = if need_ckpt then Array.copy states else [||] in
    let ckpt_visited = if need_ckpt then Array.make n false else [||] in
    let ckpt_cadence =
      match supervisor with
      | Some (c : Supervisor.config) -> c.checkpoint_every
      | None -> 1
    in
    let vdeliv = Array.make (if need_ckpt then n else 0) 0 in
    let lost_state_bits = ref 0 in
    let checkpoints = ref 0 in
    let replayed = ref 0 in
    let delayed : (int * int, flight) Binheap.t = Binheap.create () in
    let next_seq = ref 0 in
    let max_state_bits = ref 0 in
    let in_flight = ref 0 in
    let max_in_flight = ref 0 in
    let n_visited = ref 0 in
    let mark_visited v =
      if not visited.(v) then begin
        visited.(v) <- true;
        incr n_visited
      end
    in
    let entered = ref 0 in
    let note_state st =
      let b = P.state_bits st in
      if b > !max_state_bits then max_state_bits := b
    in
    let enter f ~delay =
      incr in_flight;
      incr entered;
      if !in_flight > !max_in_flight then max_in_flight := !in_flight;
      if delay = 0 then push f
      else Binheap.push delayed (!deliveries + delay, f.seq) f
    in
    let until_sample =
      ref (match oh with Some h -> h.E.oh_sample_every | None -> max_int)
    in
    let time_receive = ref false in
    let obs_sample () =
      match oh with
      | None -> ()
      | Some h ->
          let tl = h.E.oh_timeline and track = h.E.oh_track in
          Obs.Registry.set h.E.g_in_flight !in_flight;
          Obs.Registry.set h.E.g_wavefront !n_visited;
          let residual = !entered - !deliveries - !in_flight in
          Obs.Registry.set h.E.g_residual residual;
          Obs.Timeline.sample tl ~track "engine.in_flight" (float_of_int !in_flight);
          Obs.Timeline.sample tl ~track "engine.wavefront" (float_of_int !n_visited);
          Obs.Timeline.sample tl ~track "engine.cut_residual" (float_of_int residual);
          Obs.Timeline.sample tl ~track "engine.deliveries" (float_of_int !deliveries);
          Obs.Timeline.sample tl ~track "engine.total_bits" (float_of_int !total_bits)
    in
    let last_msg : P.message option array =
      Array.make (if supervised then Stdlib.max ne 1 else 1) None
    in
    let sup_prng =
      Prng.create
        (match supervisor with Some (c : Supervisor.config) -> c.seed | None -> 0)
    in
    let retries_left =
      ref
        (match supervisor with
        | Some (c : Supervisor.config) -> c.max_retries
        | None -> 0)
    in
    let sup_round = ref 0 in
    let send ?(extra_delay = 0) fv fp msg =
      let edge = row.(fv) + fp in
      (match oh with Some h -> Obs.Registry.incr h.E.c_sends | None -> ());
      if supervised then last_msg.(edge) <- Some msg;
      let slot = slot_of msg in
      let lp = !lin_parent and ld = !lin_depth + 1 in
      if not faulty then begin
        enter
          { seq = !next_seq; edge; corrupt = false; lp; ld; msg; slot }
          ~delay:extra_delay;
        incr next_seq
      end
      else
        List.iter
          (fun ({ delay; flip_bit = corrupt } : Faults.copy_fate) ->
            enter
              { seq = !next_seq; edge; corrupt; lp; ld; msg; slot }
              ~delay:(delay + extra_delay);
            incr next_seq)
          (Faults.Instance.on_send fi ~edge)
    in
    let retransmit () =
      match supervisor with
      | None -> false
      | Some (cfg : Supervisor.config) ->
          lin_parent := 0;
          lin_depth := 0;
          let sent = ref false in
          for e = 0 to ne - 1 do
            match last_msg.(e) with
            | Some msg when Vfaults.Instance.is_up vfi ~vertex:src.(e) ->
                let fv = src.(e) in
                let extra_delay = Supervisor.backoff cfg sup_prng ~round:!sup_round in
                send ~extra_delay fv (e - row.(fv)) msg;
                incr replayed;
                (match oh with Some h -> Obs.Registry.incr h.E.c_replayed | None -> ());
                sent := true
            | _ -> ()
          done;
          incr sup_round;
          decr retries_left;
          !sent
    in
    let release_due () =
      let continue = ref true in
      while !continue do
        match Binheap.peek delayed with
        | Some ((release, _), _) when release <= !deliveries -> (
            match Binheap.pop delayed with
            | Some (_, f) -> push f
            | None -> continue := false)
        | _ -> continue := false
      done
    in
    (match oh with
    | Some h -> Obs.Timeline.begin_span h.E.oh_timeline ~track:h.E.oh_track "engine.run"
    | None -> ());
    let se = Csr.source csr in
    List.iter
      (fun (j, msg) -> send se j msg)
      (P.root_emit ~out_degree:(Csr.out_degree csr se));
    mark_visited se;
    let outcome = ref E.Quiescent in
    let running = ref true in
    while !running do
      if !deliveries >= step_limit then begin
        outcome := E.Step_limit;
        running := false
      end
      else if stop_now () then begin
        outcome := E.Cancelled;
        running := false
      end
      else begin
        release_due ();
        match pop () with
        | None -> (
            match Binheap.pop delayed with
            | Some (_, f) -> push f
            | None ->
                if P.accepting states.(t) then begin
                  outcome := E.Terminated;
                  running := false
                end
                else if !retries_left > 0 && retransmit () then ()
                else begin
                  outcome := E.Quiescent;
                  running := false
                end)
        | Some f -> (
            incr deliveries;
            decr in_flight;
            (match lineage with
            | Some l ->
                Obs.Lineage.note l ~id:!deliveries ~parent:f.lp ~depth:f.ld
                  ~edge:f.edge ~vertex:head_arr.(f.edge) ~track:0
            | None -> ());
            (match on_pop with Some hook -> hook f.seq | None -> ());
            let cfate =
              if churny then Churn.Instance.on_offer ci ~edge:f.edge
              else Churn.Cross
            in
            if cfate <> Churn.Cross then begin
              match oh with
              | None -> ()
              | Some h ->
                  Obs.Registry.incr h.E.c_deliveries;
                  decr until_sample;
                  if !until_sample <= 0 then begin
                    until_sample := h.E.oh_sample_every;
                    obs_sample ()
                  end;
                  let tl = h.E.oh_timeline and track = h.E.oh_track in
                  let mark kind =
                    Obs.Timeline.instant tl ~track
                      (Printf.sprintf "churn.%s:%d" kind f.edge)
                  in
                  (match cfate with
                  | Churn.Removed left ->
                      mark "remove";
                      if left = 0 then mark "heal"
                  | Churn.Back `Heal -> mark "heal"
                  | Churn.Back `Add -> mark "add"
                  | Churn.Down | Churn.Cross -> ())
            end
            else begin
              let len_bits = arena.len_bits.(f.slot) in
              let bits = len_bits + payload_bits in
              (match oh with
              | Some h ->
                  Obs.Registry.incr h.E.c_deliveries;
                  Obs.Registry.add h.E.c_bits bits;
                  Obs.Registry.observe h.E.h_message_bits bits;
                  decr until_sample;
                  if !until_sample <= 0 then begin
                    until_sample := h.E.oh_sample_every;
                    time_receive := true;
                    obs_sample ()
                  end
              | None -> ());
              if verify_codec then begin
                let r =
                  Bitio.Bit_reader.of_string ~length_bits:len_bits
                    (arena_string arena f.slot)
                in
                let decoded =
                  try P.decode r
                  with exn ->
                    raise
                      (E.Codec_mismatch
                         (Printf.sprintf "%s: decode raised %s" P.name
                            (Printexc.to_string exn)))
                in
                if not (P.equal_message decoded f.msg) then
                  raise
                    (E.Codec_mismatch
                       (Format.asprintf "%s: %a decoded as %a" P.name
                          P.pp_message f.msg P.pp_message decoded));
                if not (Bitio.Bit_reader.at_end r) then
                  raise
                    (E.Codec_mismatch
                       (Printf.sprintf "%s: %d trailing bits after decode"
                          P.name
                          (Bitio.Bit_reader.remaining r)))
              end;
              arena_mark_seen arena f.slot;
              total_bits := !total_bits + bits;
              edge_messages.(f.edge) <- edge_messages.(f.edge) + 1;
              edge_bits.(f.edge) <- edge_bits.(f.edge) + bits;
              if bits > !max_message_bits then max_message_bits := bits;
              let tv = head_arr.(f.edge) in
              let vfate =
                if vfaulty then Vfaults.Instance.on_deliver vfi ~vertex:tv
                else Vfaults.Deliver
              in
              match vfate with
              | Vfaults.Stutter -> (
                  match oh with
                  | Some h -> Obs.Registry.incr h.E.c_stuttered
                  | None -> ())
              | Vfaults.Down_drop -> (
                  match oh with
                  | Some h ->
                      Obs.Registry.incr h.E.c_down_drops;
                      let nr = Vfaults.Instance.restarts vfi in
                      let seen = Obs.Registry.value h.E.c_restarts in
                      if nr > seen then Obs.Registry.add h.E.c_restarts (nr - seen)
                  | None -> ())
              | Vfaults.Crash (recovery, _downtime) -> (
                  (match oh with
                  | Some h -> Obs.Registry.incr h.E.c_crashes
                  | None -> ());
                  let old_bits = P.state_bits states.(tv) in
                  match recovery with
                  | Vfaults.Stop -> ()
                  | Vfaults.Amnesia when not supervised ->
                      lost_state_bits := !lost_state_bits + old_bits;
                      (match oh with
                      | Some h -> Obs.Registry.add h.E.c_lost_state_bits old_bits
                      | None -> ());
                      states.(tv) <- initial_of tv;
                      if visited.(tv) then begin
                        visited.(tv) <- false;
                        decr n_visited
                      end
                  | Vfaults.Amnesia | Vfaults.Restore ->
                      let restored = ckpt.(tv) in
                      let lost = Stdlib.max 0 (old_bits - P.state_bits restored) in
                      lost_state_bits := !lost_state_bits + lost;
                      (match oh with
                      | Some h -> Obs.Registry.add h.E.c_lost_state_bits lost
                      | None -> ());
                      states.(tv) <- restored;
                      if ckpt_visited.(tv) then mark_visited tv
                      else if visited.(tv) then begin
                        visited.(tv) <- false;
                        decr n_visited
                      end)
              | Vfaults.Deliver -> (
                  let delivered =
                    if not f.corrupt then Some f.msg
                    else if len_bits = 0 then Some f.msg
                    else begin
                      let b =
                        Faults.Instance.corrupt_bit fi ~edge:f.edge
                          ~length_bits:len_bits
                      in
                      let s = flip_bit (arena_string arena f.slot) b in
                      let r = Bitio.Bit_reader.of_string ~length_bits:len_bits s in
                      match P.decode r with
                      | decoded ->
                          if not (P.equal_message decoded f.msg) then begin
                            incr corrupted_deliveries;
                            match oh with
                            | Some h -> Obs.Registry.incr h.E.c_corrupted
                            | None -> ()
                          end;
                          Some decoded
                      | exception Runtime.Protocol_intf.Checksum_reject ->
                          incr checksum_rejects;
                          (match oh with
                          | Some h -> Obs.Registry.incr h.E.c_checksum_rejects
                          | None -> ());
                          None
                      | exception _ ->
                          incr garbled_drops;
                          (match oh with
                          | Some h -> Obs.Registry.incr h.E.c_garbled
                          | None -> ());
                          None
                    end
                  in
                  match delivered with
                  | None -> ()
                  | Some msg ->
                      let tp = tgt_port.(f.edge) in
                      (match on_deliver with
                      | Some hook ->
                          let fv = src.(f.edge) in
                          hook
                            {
                              E.step = !deliveries;
                              seq = f.seq;
                              from_vertex = fv;
                              from_port = f.edge - row.(fv);
                              to_vertex = tv;
                              to_port = tp;
                              bits;
                            }
                            msg
                      | None -> ());
                      mark_visited tv;
                      let t0 =
                        match oh with
                        | Some h when !time_receive -> Obs.Timeline.now h.E.oh_timeline
                        | _ -> 0.0
                      in
                      let state', sends =
                        P.receive
                          ~out_degree:(Csr.out_degree csr tv)
                          ~in_degree:(Csr.in_degree csr tv)
                          states.(tv) msg ~in_port:tp
                      in
                      (match oh with
                      | Some h when !time_receive ->
                          time_receive := false;
                          let ns =
                            int_of_float
                              ((Obs.Timeline.now h.E.oh_timeline -. t0) *. 1e9)
                          in
                          Obs.Registry.add h.E.c_receive_ns ns;
                          Obs.Registry.observe h.E.h_receive_ns ns
                      | _ -> ());
                      states.(tv) <- state';
                      note_state state';
                      if need_ckpt then begin
                        vdeliv.(tv) <- vdeliv.(tv) + 1;
                        if vdeliv.(tv) mod ckpt_cadence = 0 then begin
                          ckpt.(tv) <- state';
                          ckpt_visited.(tv) <- true;
                          incr checkpoints;
                          match oh with
                          | Some h -> Obs.Registry.incr h.E.c_checkpoints
                          | None -> ()
                        end
                      end;
                      lin_parent := !deliveries;
                      lin_depth := f.ld;
                      List.iter (fun (j, msg) -> send tv j msg) sends;
                      lin_parent := 0;
                      lin_depth := 0;
                      if tv = t && P.accepting state' then begin
                        outcome := E.Terminated;
                        running := false
                      end)
            end)
      end
    done;
    (match on_undelivered with
    | None -> ()
    | Some hook ->
        List.iter (fun f -> hook f.msg) (drain ());
        let continue = ref true in
        while !continue do
          match Binheap.pop delayed with
          | Some (_, f) -> hook f.msg
          | None -> continue := false
        done);
    (match oh with
    | Some h ->
        obs_sample ();
        if faulty then begin
          Obs.Registry.add h.E.c_dropped (Faults.Instance.dropped_copies fi);
          Obs.Registry.add h.E.c_extra (Faults.Instance.extra_copies fi);
          Obs.Registry.add h.E.c_delayed (Faults.Instance.delayed_copies fi)
        end;
        if churny then begin
          Obs.Registry.add h.E.c_churn_adds (Churn.Instance.adds ci);
          Obs.Registry.add h.E.c_churn_removes (Churn.Instance.removes ci);
          Obs.Registry.add h.E.c_churn_heals (Churn.Instance.heals ci);
          Obs.Registry.add h.E.c_churn_lost (Churn.Instance.lost ci);
          Obs.Registry.add h.E.c_churn_violations
            (Churn.Instance.window_violations ci)
        end;
        Obs.Timeline.end_span h.E.oh_timeline ~track:h.E.oh_track "engine.run"
    | None -> ());
    let fault_stats =
      if not faulty then
        {
          E.no_faults_stats with
          corrupted_deliveries = !corrupted_deliveries;
          garbled_drops = !garbled_drops;
          checksum_rejects = !checksum_rejects;
        }
      else
        {
          E.dropped_copies = Faults.Instance.dropped_copies fi;
          extra_copies = Faults.Instance.extra_copies fi;
          delayed_copies = Faults.Instance.delayed_copies fi;
          corrupted_deliveries = !corrupted_deliveries;
          garbled_drops = !garbled_drops;
          checksum_rejects = !checksum_rejects;
          dead_edges = Faults.Instance.dead_edges fi;
        }
    in
    let vfault_stats =
      {
        E.crashes = Vfaults.Instance.crashes vfi;
        restarts = Vfaults.Instance.restarts vfi;
        lost_state_bits = !lost_state_bits;
        down_drops = Vfaults.Instance.down_drops vfi;
        stuttered = Vfaults.Instance.stuttered vfi;
        stopped_vertices = Vfaults.Instance.stopped vfi;
        checkpoints = !checkpoints;
        replayed = !replayed;
      }
    in
    let churn_stats =
      if not churny then E.no_churn_stats
      else
        {
          E.adds = Churn.Instance.adds ci;
          removes = Churn.Instance.removes ci;
          heals = Churn.Instance.heals ci;
          messages_lost_in_flight = Churn.Instance.lost ci;
          window_violations = Churn.Instance.window_violations ci;
        }
    in
    {
      E.outcome = !outcome;
      deliveries = !deliveries;
      total_bits = !total_bits;
      max_edge_bits = Array.fold_left Stdlib.max 0 edge_bits;
      max_message_bits = !max_message_bits;
      max_state_bits = !max_state_bits;
      max_in_flight = !max_in_flight;
      final_in_flight = !in_flight;
      distinct_messages = arena.distinct;
      edge_messages;
      edge_bits;
      visited;
      states;
      fault_stats;
      vfault_stats;
      churn_stats;
    }

  let run_csr ?(scheduler = Scheduler.Fifo) ?(payload_bits = 0)
      ?(step_limit = 10_000_000) ?(faults = Faults.none)
      ?(vfaults = Vfaults.none) ?(churn = Churn.none) ?supervisor
      ?(verify_codec = false) ?stop ?obs ?lineage ?on_deliver ?on_pop
      ?on_undelivered csr =
    let oh = Option.map (fun o -> E.obs_hooks o) obs in
    let gc0 =
      match obs with
      | Some _ -> Some (Gc.quick_stat (), Gc.minor_words ())
      | None -> None
    in
    let plain =
      (match scheduler with Scheduler.Fifo -> true | _ -> false)
      && Faults.is_none faults && Vfaults.is_none vfaults
      && Churn.is_none churn && supervisor = None && not verify_codec
      && on_deliver = None && on_pop = None && on_undelivered = None
    in
    let report =
      match if plain then certify_flood csr else None with
      | Some (m0, emits) ->
          run_flood csr ~payload_bits ~step_limit ~stop ~oh ~lineage m0 emits
      | None ->
          run_generic csr ~scheduler ~payload_bits ~step_limit ~faults ~vfaults
            ~churn ~supervisor ~verify_codec ~stop ~oh ~lineage ~on_deliver
            ~on_pop ~on_undelivered ()
    in
    (* Same telemetry epilogue as the classic engine: GC deltas as
       gauges, end-of-run heap size, and the timeline ring's overwrite
       count mirrored monotonically into [timeline.dropped]. *)
    (match (obs, gc0) with
    | Some o, Some (g0, mw0) ->
        let g1 = Gc.quick_stat () in
        let set name v =
          Obs.Registry.set (Obs.Registry.gauge o.Obs.registry name) v
        in
        set "engine.gc.minor_words" (int_of_float (Gc.minor_words () -. mw0));
        set "engine.gc.major_words"
          (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
        set "engine.gc.heap_words" g1.Gc.heap_words;
        set "engine.gc.compactions" (g1.Gc.compactions - g0.Gc.compactions);
        let c = Obs.Registry.counter o.Obs.registry "timeline.dropped" in
        let d = Obs.Timeline.dropped o.Obs.timeline in
        let seen = Obs.Registry.value c in
        if d > seen then Obs.Registry.add c (d - seen)
    | _ -> ());
    report

  let run ?scheduler ?payload_bits ?step_limit ?faults ?vfaults ?churn
      ?supervisor ?verify_codec ?stop ?obs ?lineage ?on_deliver ?on_pop
      ?on_undelivered g =
    run_csr ?scheduler ?payload_bits ?step_limit ?faults ?vfaults ?churn
      ?supervisor ?verify_codec ?stop ?obs ?lineage ?on_deliver ?on_pop
      ?on_undelivered (Csr.of_digraph g)
end
