(** Compressed-sparse-row compilation of a {!Digraph.t}.

    [of_digraph] is O(n + m) and is meant to run {e once} per graph (the
    serving layer compiles its preloaded graphs at boot); every accessor
    below is a constant number of int loads.  The dense edge numbering is
    identical to {!Digraph.edge_index}, so per-edge arrays, fault plans and
    replay schedules are interchangeable between the classic and flat
    engines. *)

type t = private {
  g : Digraph.t;
  n : int;
  s : int;
  t : int;
  m : int;
  row : int array;  (** [n+1] offsets: out-edges of [u] are [row.(u) .. row.(u+1)-1]. *)
  head : int array;  (** Per dense edge: target vertex. *)
  tgt_port : int array;  (** Per dense edge: in-port at the target. *)
  src : int array;  (** Per dense edge: source vertex. *)
  in_row : int array;  (** [n+1] offsets into [in_edge]. *)
  in_edge : int array;  (** Per (vertex, in-port): the dense edge index. *)
}

val of_digraph : Digraph.t -> t

val digraph : t -> Digraph.t
(** The representation it was compiled from (shared, not copied). *)

val n_vertices : t -> int
val n_edges : t -> int
val source : t -> int
val terminal : t -> int
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val edge_index : t -> int -> int -> int
val edge_src : t -> int -> int
val edge_src_port : t -> int -> int
val edge_head : t -> int -> int
val edge_tgt_port : t -> int -> int
