(* [Digraph.Graph_sig.S] over the CSR representation.

   Hot accessors (degrees, neighbors, ports, edge indices) read the flat
   int arrays; structure queries — reachability, SCC, classification,
   canonical signatures — delegate to the embedded [Digraph.t], whose
   answers are representation-independent.  The conformance check at the
   bottom of [flatcore.ml] keeps this module and [Digraph.Graph] on the
   same signature forever. *)

type vertex = int
type t = Csr.t

let of_digraph = Csr.of_digraph
let to_digraph = Csr.digraph
let n_vertices = Csr.n_vertices
let n_edges = Csr.n_edges
let source = Csr.source
let terminal = Csr.terminal
let out_degree = Csr.out_degree
let in_degree = Csr.in_degree

let out_neighbor (c : t) v j = c.Csr.head.(c.Csr.row.(v) + j)

let in_origin (c : t) v i =
  let e = c.Csr.in_edge.(c.Csr.in_row.(v) + i) in
  (c.Csr.src.(e), e - c.Csr.row.(c.Csr.src.(e)))

let out_port_target_port (c : t) u j =
  let e = c.Csr.row.(u) + j in
  (c.Csr.head.(e), c.Csr.tgt_port.(e))

let iter_out (c : t) v f =
  let lo = c.Csr.row.(v) and hi = c.Csr.row.(v + 1) in
  for e = lo to hi - 1 do
    f (e - lo) (Array.unsafe_get c.Csr.head e)
  done

let fold_out (c : t) v ~init f =
  let lo = c.Csr.row.(v) and hi = c.Csr.row.(v + 1) in
  let acc = ref init in
  for e = lo to hi - 1 do
    acc := f !acc (e - lo) (Array.unsafe_get c.Csr.head e)
  done;
  !acc

let edge_index = Csr.edge_index

let edge_of_index (c : t) e =
  if e < 0 || e >= c.Csr.m then invalid_arg "Flat_graph.edge_of_index";
  (c.Csr.src.(e), e - c.Csr.row.(c.Csr.src.(e)))

let edges c = Digraph.edges (Csr.digraph c)
let max_out_degree c = Digraph.max_out_degree (Csr.digraph c)
let vertices c = Digraph.vertices (Csr.digraph c)
let internal_vertices c = Digraph.internal_vertices (Csr.digraph c)
let reachable_from_s c = Digraph.reachable_from_s (Csr.digraph c)
let coreachable_to_t c = Digraph.coreachable_to_t (Csr.digraph c)
let all_reachable c = Digraph.all_reachable (Csr.digraph c)
let all_coreachable c = Digraph.all_coreachable (Csr.digraph c)
let is_dag c = Digraph.is_dag (Csr.digraph c)
let topological_order c = Digraph.topological_order (Csr.digraph c)
let is_grounded_tree c = Digraph.is_grounded_tree (Csr.digraph c)
let classify c = Digraph.classify (Csr.digraph c)
let scc c = Digraph.scc (Csr.digraph c)
let validate ?allow_multi_root c =
  Digraph.validate ?allow_multi_root (Csr.digraph c)
let equal a b = Digraph.equal (Csr.digraph a) (Csr.digraph b)
let distances_from c v = Digraph.distances_from (Csr.digraph c) v
let longest_path_dag c = Digraph.longest_path_dag (Csr.digraph c)
let diameter_from_s c = Digraph.diameter_from_s (Csr.digraph c)
let canonical_signature c = Digraph.canonical_signature (Csr.digraph c)
let isomorphic a b = Digraph.isomorphic (Csr.digraph a) (Csr.digraph b)
let pp fmt c = Digraph.pp fmt (Csr.digraph c)
