(* Compressed-sparse-row compilation of a port-numbered network.

   Built once per graph in O(n + m): six int arrays replace the per-vertex
   adjacency arrays of tuples, so the engine's hot path — edge index to
   (source, target, ports) — is four int loads with no pointer chasing and
   no tuple allocation.  The dense edge numbering is {e identical} to
   [Digraph.edge_index] (out-edges of vertex 0, then vertex 1, ...), which
   is what makes per-edge reports, fault plans, churn clocks and replay
   schedules carry over between engines unchanged.

   The original [Digraph.t] rides along: structure queries (SCC,
   reachability, canonicalization) stay on the pointer representation,
   which is fine off the hot path. *)

type t = {
  g : Digraph.t;  (* the source representation, for structure queries *)
  n : int;
  s : int;
  t : int;
  m : int;
  row : int array;  (* n+1: out-edges of u are row.(u) .. row.(u+1)-1 *)
  head : int array;  (* m: target vertex of dense edge e *)
  tgt_port : int array;  (* m: in-port of head.(e) the edge lands on *)
  src : int array;  (* m: source vertex (e - row.(src) is the out-port) *)
  in_row : int array;  (* n+1: in-edges of v are in_row.(v) .. in_row.(v+1)-1 *)
  in_edge : int array;  (* m: dense edge index of v's i-th in-edge *)
}

let of_digraph g =
  let n = Digraph.n_vertices g in
  let m = Digraph.n_edges g in
  let row = Array.make (n + 1) 0 in
  let in_row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + Digraph.out_degree g v;
    in_row.(v + 1) <- in_row.(v) + Digraph.in_degree g v
  done;
  let head = Array.make m 0 in
  let tgt_port = Array.make m 0 in
  let src = Array.make m 0 in
  let in_edge = Array.make m 0 in
  for u = 0 to n - 1 do
    let base = row.(u) in
    Digraph.iter_out g u (fun j w ->
        head.(base + j) <- w;
        src.(base + j) <- u)
  done;
  (* Port permutation via the in-adjacency: v's i-th in-edge is u's j-th
     out-edge, i.e. dense edge row.(u)+j — O(1) per edge, where the naive
     [out_port_target_port] walk would be O(in_degree). *)
  for v = 0 to n - 1 do
    let base = in_row.(v) in
    for i = 0 to Digraph.in_degree g v - 1 do
      let u, j = Digraph.in_origin g v i in
      let e = row.(u) + j in
      tgt_port.(e) <- i;
      in_edge.(base + i) <- e
    done
  done;
  {
    g;
    n;
    s = Digraph.source g;
    t = Digraph.terminal g;
    m;
    row;
    head;
    tgt_port;
    src;
    in_row;
    in_edge;
  }

let digraph c = c.g
let n_vertices c = c.n
let n_edges c = c.m
let source c = c.s
let terminal c = c.t
let out_degree c v = c.row.(v + 1) - c.row.(v)
let in_degree c v = c.in_row.(v + 1) - c.in_row.(v)
let edge_index c u j = c.row.(u) + j
let edge_src c e = c.src.(e)
let edge_src_port c e = e - c.row.(c.src.(e))
let edge_head c e = c.head.(e)
let edge_tgt_port c e = c.tgt_port.(e)
