(** The flat core: CSR graph compilation and the arena-message engine.

    - {!Csr} — six-int-array compressed-sparse-row compilation of a
      {!Digraph.t}, built once per graph, with the dense edge numbering of
      [Digraph.edge_index];
    - {!Graph} — {!Digraph.Graph_sig.S} over the CSR form (hot accessors
      flat, structure queries delegated);
    - {!Engine} — an {!Runtime.Engine_sig.S}-conforming engine whose
      reports and deterministic Obs counters are byte-for-byte identical
      to {!Runtime.Engine}, built on preallocated per-edge structures, an
      arena of encoded message slots, and a probe-certified fast path for
      flood-shaped protocols.

    Engine selection is a value of {!type:kind}; the CLI and the serving
    layer thread it through an [--engine] knob. *)

module Csr = Csr
module Graph = Flat_graph
module Engine = Engine

(* The flat graph must answer every query exactly like the pointer
   representation — same signature, checked here once and forever. *)
module _ : Digraph.Graph_sig.S with type t = Csr.t = Flat_graph

type kind = Classic | Flat

let kind_of_string = function
  | "classic" -> Some Classic
  | "flat" -> Some Flat
  | _ -> None

let string_of_kind = function Classic -> "classic" | Flat -> "flat"
