type t = Buffer.t

let create () = Buffer.create 256

let add_string b s =
  Buffer.add_string b (string_of_int (String.length s));
  Buffer.add_char b ':';
  Buffer.add_string b s

let add_int b i =
  Buffer.add_char b 'i';
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_bool b v = Buffer.add_char b (if v then '1' else '0')

let add_bool_array b arr =
  Buffer.add_char b 'b';
  Buffer.add_string b (string_of_int (Array.length arr));
  Buffer.add_char b ':';
  Array.iter (add_bool b) arr

let add_sorted_strings b xs =
  let xs = List.sort String.compare xs in
  add_int b (List.length xs);
  List.iter (add_string b) xs

let contents = Buffer.contents

module Memo = struct
  type key = string

  type t = (string, string list list ref) Hashtbl.t

  let create () = Hashtbl.create 4096

  let size = Hashtbl.length

  (* [visit] returns [(stored, fresh)]: the (mutable) list of sleep sets the
     state has already been fully expanded under, and whether this is the
     first time the key is seen at all. *)
  let visit t key =
    match Hashtbl.find_opt t key with
    | Some stored -> (stored, false)
    | None ->
        let stored = ref [] in
        Hashtbl.add t key stored;
        (stored, true)

  (* Sleep sets are kept as sorted tkey lists; [subset a b] assumes both
     sorted. *)
  let rec subset a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' ->
        let c = String.compare x y in
        if c = 0 then subset a' b'
        else if c > 0 then subset a b'
        else false

  let covered stored sleep = List.exists (fun s -> subset s sleep) !stored

  let record stored sleep =
    (* A stored superset of [sleep] is now redundant: [sleep] covers every
       future visit it would have. *)
    stored := sleep :: List.filter (fun s -> not (subset sleep s)) !stored
end
