type t =
  | Fifo
  | Lifo
  | Random of Prng.t
  | Edge_priority of (int -> int)
  | Replay of int list

let describe = function
  | Fifo -> "fifo"
  | Lifo -> "lifo"
  | Random _ -> "random"
  | Edge_priority _ -> "edge-priority"
  | Replay _ -> "replay"
