(** Delivery-trace collection, for tests that inspect executions (e.g. the
    Lemma 3.3 check that on grounded trees every vertex transmits exactly
    once per out-edge). *)

type t

val create : unit -> t

val hook : t -> Engine.event -> 'msg -> unit
(** Pass [hook tr] as the engine's [on_deliver]. *)

val events : t -> Engine.event list
(** In delivery order.  Allocates a fresh list; prefer {!iter} for large
    traces. *)

val iter : (Engine.event -> unit) -> t -> unit
(** Apply to every event in delivery order, without materializing the
    event list. *)

val length : t -> int

val sends_per_vertex : t -> n:int -> int array
(** How many message deliveries originated at each vertex. *)

val receives_per_vertex : t -> n:int -> int array

val render : ?limit:int -> t -> string
(** Human-readable delivery log, one line per event
    (["#12  3.0 -> 5.1   17 bits"]); at most [limit] lines
    (default 100), with a truncation notice beyond that. *)

val to_csv : t -> string
(** The whole trace as CSV
    ([step,from_vertex,from_port,to_vertex,to_port,bits] header plus one
    row per delivery), streamed into one buffer via {!iter}. *)

val edge_first_use : t -> ((Digraph.vertex * int) * int) list
(** For each (source vertex, out-port) edge that carried traffic, the step
    of its first delivery — in first-use order. *)
