(** Asynchronous simulation of anonymous protocols (Section 2's model).

    - {!Protocol_intf} — the [(Pi, Sigma, pi0, sigma0, f, g, S)] signature;
    - {!Engine} — discrete-event executor with bit-exact accounting;
    - {!Engine_sig} — the run signature engines share, for first-class
      engine selection (classic vs. the Flatcore flat engine);
    - {!Scheduler} — asynchronous delivery orders, including adversarial ones;
    - {!Faults} — per-edge channel fault plans (drop / duplicate / delay /
      corrupt / kill), all seeded;
    - {!Vfaults} — per-vertex fault plans (crash-stop, restart with amnesia
      or from checkpoint, stutter), composing with {!Faults};
    - {!Churn} — edge add/remove adversary with a T-interval-connectivity
      contract, composing with both fault layers;
    - {!Supervisor} — the self-healing layer: per-vertex checkpoints and
      backoff retransmission;
    - {!Chaos} — joint edge-and-vertex fault-space search with witness
      shrinking and replay;
    - {!Campaign} — deterministic fault-campaign harness with soundness
      checking and witness shrinking;
    - {!Explore} — exhaustive schedule-space model checker with sleep-set
      partial-order reduction and replayable counterexamples;
    - {!Canonical} — configuration fingerprints and the visited-state table;
    - {!Binheap} — the min-heap behind [Edge_priority] and the delay queue;
    - {!Trace} — execution recording for tests;
    - {!Json} — shared JSON emission helpers. *)

module Protocol_intf = Protocol_intf
module Engine = Engine
module Engine_sig = Engine_sig
module Sync_engine = Sync_engine
module Scheduler = Scheduler
module Faults = Faults
module Vfaults = Vfaults
module Churn = Churn
module Supervisor = Supervisor
module Chaos = Chaos
module Campaign = Campaign
module Explore = Explore
module Canonical = Canonical
module Binheap = Binheap
module Trace = Trace
module Json = Json
