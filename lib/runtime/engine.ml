type outcome = Terminated | Quiescent | Step_limit | Cancelled

type fault_stats = {
  dropped_copies : int;
  extra_copies : int;
  delayed_copies : int;
  corrupted_deliveries : int;
  garbled_drops : int;
  checksum_rejects : int;
  dead_edges : int list;
}

let no_faults_stats =
  {
    dropped_copies = 0;
    extra_copies = 0;
    delayed_copies = 0;
    corrupted_deliveries = 0;
    garbled_drops = 0;
    checksum_rejects = 0;
    dead_edges = [];
  }

type vertex_fault_stats = {
  crashes : int;
  restarts : int;
  lost_state_bits : int;
  down_drops : int;
  stuttered : int;
  stopped_vertices : int list;
  checkpoints : int;
  replayed : int;
}

let no_vfaults_stats =
  {
    crashes = 0;
    restarts = 0;
    lost_state_bits = 0;
    down_drops = 0;
    stuttered = 0;
    stopped_vertices = [];
    checkpoints = 0;
    replayed = 0;
  }

type churn_stats = {
  adds : int;
  removes : int;
  heals : int;
  messages_lost_in_flight : int;
  window_violations : int;
}

let no_churn_stats =
  {
    adds = 0;
    removes = 0;
    heals = 0;
    messages_lost_in_flight = 0;
    window_violations = 0;
  }

type 'state report = {
  outcome : outcome;
  deliveries : int;
  total_bits : int;
  max_edge_bits : int;
  max_message_bits : int;
  max_state_bits : int;
  max_in_flight : int;
  final_in_flight : int;
  distinct_messages : int;
  edge_messages : int array;
  edge_bits : int array;
  visited : bool array;
  states : 'state array;
  fault_stats : fault_stats;
  vfault_stats : vertex_fault_stats;
  churn_stats : churn_stats;
}

exception Codec_mismatch of string

type event = {
  step : int;
  seq : int;
  from_vertex : Digraph.vertex;
  from_port : int;
  to_vertex : Digraph.vertex;
  to_port : int;
  bits : int;
}

(* Telemetry cells resolved once per run (registration is the only locked
   operation); per-delivery updates are plain stores.  [track] is the
   timeline lane — 0 for the sequential engine. *)
type obs_hooks = {
  oh_timeline : Obs.Timeline.t;
  oh_sample_every : int;
  oh_track : int;
  c_deliveries : Obs.Registry.counter;
  c_bits : Obs.Registry.counter;
  c_sends : Obs.Registry.counter;
  c_corrupted : Obs.Registry.counter;
  c_garbled : Obs.Registry.counter;
  c_dropped : Obs.Registry.counter;
  c_extra : Obs.Registry.counter;
  c_delayed : Obs.Registry.counter;
  c_checksum_rejects : Obs.Registry.counter;
  c_crashes : Obs.Registry.counter;
  c_restarts : Obs.Registry.counter;
  c_lost_state_bits : Obs.Registry.counter;
  c_down_drops : Obs.Registry.counter;
  c_stuttered : Obs.Registry.counter;
  c_checkpoints : Obs.Registry.counter;
  c_replayed : Obs.Registry.counter;
  c_churn_adds : Obs.Registry.counter;
  c_churn_removes : Obs.Registry.counter;
  c_churn_heals : Obs.Registry.counter;
  c_churn_lost : Obs.Registry.counter;
  c_churn_violations : Obs.Registry.counter;
  c_receive_ns : Obs.Registry.counter;
  h_message_bits : Obs.Registry.histogram;
  h_receive_ns : Obs.Registry.histogram;
  g_in_flight : Obs.Registry.gauge;
  g_wavefront : Obs.Registry.gauge;
  g_residual : Obs.Registry.gauge;
}

let obs_hooks ?(track = 0) (o : Obs.t) =
  let reg = o.Obs.registry in
  {
    oh_timeline = o.Obs.timeline;
    oh_sample_every = o.Obs.sample_every;
    oh_track = track;
    c_deliveries = Obs.Registry.counter reg "engine.deliveries";
    c_bits = Obs.Registry.counter reg "engine.total_bits";
    c_sends = Obs.Registry.counter reg "engine.sends";
    c_corrupted = Obs.Registry.counter reg "engine.corrupted_deliveries";
    c_garbled = Obs.Registry.counter reg "engine.garbled_drops";
    c_dropped = Obs.Registry.counter reg "engine.dropped_copies";
    c_extra = Obs.Registry.counter reg "engine.extra_copies";
    c_delayed = Obs.Registry.counter reg "engine.delayed_copies";
    c_checksum_rejects = Obs.Registry.counter reg "engine.checksum_rejects";
    c_crashes = Obs.Registry.counter reg "engine.crashes";
    c_restarts = Obs.Registry.counter reg "engine.restarts";
    c_lost_state_bits = Obs.Registry.counter reg "engine.lost_state_bits";
    c_down_drops = Obs.Registry.counter reg "engine.down_drops";
    c_stuttered = Obs.Registry.counter reg "engine.stuttered";
    c_checkpoints = Obs.Registry.counter reg "engine.checkpoints";
    c_replayed = Obs.Registry.counter reg "engine.replayed";
    c_churn_adds = Obs.Registry.counter reg "engine.churn.adds";
    c_churn_removes = Obs.Registry.counter reg "engine.churn.removes";
    c_churn_heals = Obs.Registry.counter reg "engine.churn.heals";
    c_churn_lost = Obs.Registry.counter reg "engine.churn.lost_in_flight";
    c_churn_violations =
      Obs.Registry.counter reg "engine.churn.window_violations";
    c_receive_ns = Obs.Registry.counter reg "engine.receive_ns";
    h_message_bits = Obs.Registry.histogram reg "engine.message_bits";
    h_receive_ns = Obs.Registry.histogram reg "engine.receive_ns_hist";
    g_in_flight = Obs.Registry.gauge reg "engine.in_flight";
    g_wavefront = Obs.Registry.gauge reg "engine.wavefront";
    g_residual = Obs.Registry.gauge reg "engine.cut_residual";
  }

module Make (P : Protocol_intf.PROTOCOL) = struct
  type state = P.state
  type message = P.message

  type flight = {
    seq : int;
    fv : Digraph.vertex;
    fp : int;
    tv : Digraph.vertex;
    tp : int;
    edge : int;
    corrupt : bool;
    (* Causal provenance, carried by every copy: the lineage node id of
       the receive that caused this send (0 = root emission or
       supervisor retransmission) and this copy's causal depth (parent
       depth + 1; root copies have depth 1). *)
    lp : int;
    ld : int;
    msg : P.message;
  }

  (* In-flight message pool, specialized per scheduling policy.  Returns
     (push, pop, drain): [drain] empties the pool and returns whatever was
     still held, so the engine can report undelivered messages at the end of
     a run (conservation-law checks need the full cut). *)
  let make_pool scheduler =
    match (scheduler : Scheduler.t) with
    | Fifo ->
        let q = Queue.create () in
        ( (fun f -> Queue.add f q),
          (fun () -> Queue.take_opt q),
          fun () ->
            let l = List.of_seq (Queue.to_seq q) in
            Queue.clear q;
            l )
    | Lifo ->
        let st = ref [] in
        ( (fun f -> st := f :: !st),
          (fun () ->
            match !st with
            | [] -> None
            | f :: rest ->
                st := rest;
                Some f),
          fun () ->
            let l = !st in
            st := [];
            l )
    | Random g ->
        let arr = ref [||] and len = ref 0 in
        let push f =
          if !len = Array.length !arr then begin
            let cap = Stdlib.max 16 (2 * !len) in
            let bigger = Array.make cap f in
            Array.blit !arr 0 bigger 0 !len;
            arr := bigger
          end;
          !arr.(!len) <- f;
          incr len
        in
        let pop () =
          if !len = 0 then None
          else begin
            let i = Prng.int g !len in
            let f = !arr.(i) in
            decr len;
            !arr.(i) <- !arr.(!len);
            Some f
          end
        in
        let drain () =
          let l = Array.to_list (Array.sub !arr 0 !len) in
          len := 0;
          l
        in
        (push, pop, drain)
    | Edge_priority prio ->
        (* Binary min-heap on (priority, seq). *)
        let h = Binheap.create () in
        let pop () = Option.map snd (Binheap.pop h) in
        let rec drain acc =
          match pop () with None -> List.rev acc | Some f -> drain (f :: acc)
        in
        ((fun f -> Binheap.push h (prio f.edge, f.seq) f), pop, fun () -> drain [])
    | Replay order ->
        (* Deliver exactly the listed seq numbers, in order.  A listed seq
           that is not yet in flight makes the pool report empty {e without}
           consuming it: the engine's idle path then releases delay-held
           copies and fires supervisor retransmissions — the only sources
           that can still produce it — and retries.  With a faithfully
           recorded schedule the head always appears; if it never does (an
           unfaithful schedule) the run stops where the schedule left it. *)
        let pool : (int, flight) Hashtbl.t = Hashtbl.create 32 in
        let remaining = ref order in
        let push f = Hashtbl.replace pool f.seq f in
        let pop () =
          match !remaining with
          | [] -> None
          | s :: rest -> (
              match Hashtbl.find_opt pool s with
              | Some f ->
                  remaining := rest;
                  Hashtbl.remove pool s;
                  Some f
              | None -> None)
        in
        let drain () =
          let l = Hashtbl.fold (fun _ f acc -> f :: acc) pool [] in
          Hashtbl.reset pool;
          List.sort (fun a b -> compare a.seq b.seq) l
        in
        (push, pop, drain)

  (* Flip stream-bit [b] of the MSB-first packing produced by Bit_writer. *)
  let flip_bit s b =
    let bytes = Bytes.of_string s in
    let i = b / 8 in
    Bytes.set bytes i
      (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (7 - (b mod 8)))));
    Bytes.to_string bytes

  let run ?(scheduler = Scheduler.Fifo) ?(payload_bits = 0)
      ?(step_limit = 10_000_000) ?(faults = Faults.none)
      ?(vfaults = Vfaults.none) ?(churn = Churn.none) ?supervisor
      ?(verify_codec = false) ?stop ?obs ?lineage ?on_deliver ?on_pop
      ?on_undelivered g =
    (* Cooperative cancellation: polled between deliveries, so a [true]
       stops the run at a message boundary with the accounting intact
       (undelivered copies stay counted in [final_in_flight] and reach
       [on_undelivered], exactly as under [Step_limit]). *)
    let stop_now = match stop with None -> (fun () -> false) | Some f -> f in
    let oh = Option.map (fun o -> obs_hooks o) obs in
    let gc0 =
      match obs with
      | Some _ -> Some (Gc.quick_stat (), Gc.minor_words ())
      | None -> None
    in
    let n = Digraph.n_vertices g in
    let ne = Digraph.n_edges g in
    (match lineage with
    | Some l -> Obs.Lineage.bind l ~n_vertices:n ~n_edges:ne
    | None -> ());
    (* Causal context for [send]: the lineage node id and depth of the
       receive whose sends are currently being injected.  (0, 0) outside
       a receive — root emissions and supervisor retransmissions start
       fresh chains. *)
    let lin_parent = ref 0 in
    let lin_depth = ref 0 in
    (* Pop journal: one packed [edge lor (parent lsl journal_shift)]
       slot per consumed copy, handed to the recorder wholesale at run
       end and replayed into its aggregates on first query — the run
       itself pays one store per delivery.  Depths reconstruct exactly
       because [ld] is always parent depth + 1 with retransmissions
       restarting at parent 0. *)
    let lin_on = lineage <> None in
    let lin_j = ref (if lin_on then Array.make 1024 0 else [||]) in
    let lin_n = ref 0 in
    let t = Digraph.terminal g in
    (* Dense edge -> (target vertex, target in-port), filled by walking the
       in-adjacency: [in_origin] and [edge_index] are O(1), so the table
       costs O(n + m) — not the O(m * in_degree) port search of
       [out_port_target_port]. *)
    let target = Array.make (Stdlib.max ne 1) (0, 0) in
    for v = 0 to n - 1 do
      for i = 0 to Digraph.in_degree g v - 1 do
        let u, j = Digraph.in_origin g v i in
        target.(Digraph.edge_index g u j) <- (v, i)
      done
    done;
    let states =
      Array.init n (fun v ->
          P.initial_state ~out_degree:(Digraph.out_degree g v)
            ~in_degree:(Digraph.in_degree g v))
    in
    let initial_of v =
      P.initial_state ~out_degree:(Digraph.out_degree g v)
        ~in_degree:(Digraph.in_degree g v)
    in
    let visited = Array.make n false in
    let edge_messages = Array.make (Stdlib.max ne 1) 0 in
    let edge_bits = Array.make (Stdlib.max ne 1) 0 in
    let total_bits = ref 0 in
    let max_message_bits = ref 0 in
    let deliveries = ref 0 in
    let corrupted_deliveries = ref 0 in
    let garbled_drops = ref 0 in
    let checksum_rejects = ref 0 in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let push, pop, drain = make_pool scheduler in
    let faulty = not (Faults.is_none faults) in
    let fi = Faults.Instance.start faults in
    let vfaulty = not (Vfaults.is_none vfaults) in
    let vfi = Vfaults.Instance.start vfaults in
    let churny = not (Churn.is_none churn) in
    let ci = Churn.Instance.start churn in
    let supervised = supervisor <> None in
    (* Checkpoints: one state snapshot per vertex (initially pi0), plus the
       visited flag as of the snapshot.  States are immutable values, so
       the arrays share structure with [states] rather than copying. *)
    let need_ckpt = vfaulty || supervised in
    let ckpt = if need_ckpt then Array.copy states else [||] in
    let ckpt_visited = if need_ckpt then Array.make n false else [||] in
    let ckpt_cadence =
      match supervisor with
      | Some (c : Supervisor.config) -> c.checkpoint_every
      | None -> 1
    in
    let vdeliv = Array.make (if need_ckpt then n else 0) 0 in
    let lost_state_bits = ref 0 in
    let checkpoints = ref 0 in
    let replayed = ref 0 in
    (* Copies held back by a delay fault, keyed by (release step, seq); they
       still count as in flight. *)
    let delayed : ((int * int), flight) Binheap.t = Binheap.create () in
    let next_seq = ref 0 in
    let max_state_bits = ref 0 in
    let in_flight = ref 0 in
    let max_in_flight = ref 0 in
    let n_visited = ref 0 in
    let mark_visited v =
      if not visited.(v) then begin
        visited.(v) <- true;
        incr n_visited
      end
    in
    (* Copies that ever entered flight; [entered - deliveries - in_flight]
       is the engine's message-conservation residual, sampled as the
       [engine.cut_residual] series (always 0 unless the accounting is
       broken — a live self-check, not a tautology for readers of the
       trace). *)
    let entered = ref 0 in
    let note_state st =
      let b = P.state_bits st in
      if b > !max_state_bits then max_state_bits := b
    in
    let enter f ~delay =
      incr in_flight;
      incr entered;
      if !in_flight > !max_in_flight then max_in_flight := !in_flight;
      if delay = 0 then push f else Binheap.push delayed (!deliveries + delay, f.seq) f
    in
    (* Countdown to the next sampled delivery — one decrement/compare on
       the hot path instead of a [mod] — and a flag marking the current
       delivery as the one whose [P.receive] gets timed. *)
    let until_sample =
      ref (match oh with Some h -> h.oh_sample_every | None -> max_int)
    in
    let time_receive = ref false in
    let obs_sample () =
      match oh with
      | None -> ()
      | Some h ->
          let tl = h.oh_timeline and track = h.oh_track in
          Obs.Registry.set h.g_in_flight !in_flight;
          Obs.Registry.set h.g_wavefront !n_visited;
          let residual = !entered - !deliveries - !in_flight in
          Obs.Registry.set h.g_residual residual;
          Obs.Timeline.sample tl ~track "engine.in_flight" (float_of_int !in_flight);
          Obs.Timeline.sample tl ~track "engine.wavefront" (float_of_int !n_visited);
          Obs.Timeline.sample tl ~track "engine.cut_residual" (float_of_int residual);
          Obs.Timeline.sample tl ~track "engine.deliveries" (float_of_int !deliveries);
          Obs.Timeline.sample tl ~track "engine.total_bits" (float_of_int !total_bits)
    in
    (* Supervisor retransmission state: the last message emitted on each
       dense edge (the only thing a feedback-free repeater can re-send),
       plus the edge's source endpoint for re-injection. *)
    let last_msg : P.message option array =
      Array.make (if supervised then Stdlib.max ne 1 else 1) None
    in
    let source_of = Array.make (if supervised then Stdlib.max ne 1 else 1) (0, 0) in
    if supervised then
      for u = 0 to n - 1 do
        Digraph.iter_out g u (fun j _ ->
            source_of.(Digraph.edge_index g u j) <- (u, j))
      done;
    let sup_prng =
      Prng.create (match supervisor with Some (c : Supervisor.config) -> c.seed | None -> 0)
    in
    let retries_left =
      ref (match supervisor with Some (c : Supervisor.config) -> c.max_retries | None -> 0)
    in
    let sup_round = ref 0 in
    let send ?(extra_delay = 0) fv fp msg =
      let edge = Digraph.edge_index g fv fp in
      let tv, tp = target.(edge) in
      (match oh with Some h -> Obs.Registry.incr h.c_sends | None -> ());
      if supervised then last_msg.(edge) <- Some msg;
      let lp = !lin_parent and ld = !lin_depth + 1 in
      if not faulty then begin
        enter
          { seq = !next_seq; fv; fp; tv; tp; edge; corrupt = false; lp; ld; msg }
          ~delay:extra_delay;
        incr next_seq
      end
      else
        List.iter
          (fun ({ delay; flip_bit = corrupt } : Faults.copy_fate) ->
            enter
              { seq = !next_seq; fv; fp; tv; tp; edge; corrupt; lp; ld; msg }
              ~delay:(delay + extra_delay);
            incr next_seq)
          (Faults.Instance.on_send fi ~edge)
    in
    (* One retransmission round: re-send the last message of every edge
       whose source is still healthy, held back by the round's backoff.
       Retransmitted copies run the same per-edge fault gauntlet as
       originals, and a {!Redundant}-wrapped receiver dedups them by wire
       encoding.  Returns whether anything was actually re-injected. *)
    let retransmit () =
      match supervisor with
      | None -> false
      | Some (cfg : Supervisor.config) ->
          (* Retransmissions start fresh causal chains: nothing "caused"
             them but the supervisor's clock. *)
          lin_parent := 0;
          lin_depth := 0;
          let sent = ref false in
          for e = 0 to ne - 1 do
            match last_msg.(e) with
            | Some msg when Vfaults.Instance.is_up vfi ~vertex:(fst source_of.(e)) ->
                let fv, fp = source_of.(e) in
                let extra_delay = Supervisor.backoff cfg sup_prng ~round:!sup_round in
                send ~extra_delay fv fp msg;
                incr replayed;
                (match oh with Some h -> Obs.Registry.incr h.c_replayed | None -> ());
                sent := true
            | _ -> ()
          done;
          incr sup_round;
          decr retries_left;
          !sent
    in
    (* Move every delay-expired copy back into the scheduler's pool. *)
    let release_due () =
      let continue = ref true in
      while !continue do
        match Binheap.peek delayed with
        | Some ((release, _), _) when release <= !deliveries -> (
            match Binheap.pop delayed with
            | Some (_, f) -> push f
            | None -> continue := false)
        | _ -> continue := false
      done
    in
    (match oh with
    | Some h -> Obs.Timeline.begin_span h.oh_timeline ~track:h.oh_track "engine.run"
    | None -> ());
    (* The root spontaneously emits sigma0. *)
    List.iter
      (fun (j, msg) -> send (Digraph.source g) j msg)
      (P.root_emit ~out_degree:(Digraph.out_degree g (Digraph.source g)));
    mark_visited (Digraph.source g);
    let outcome = ref Quiescent in
    let running = ref true in
    while !running do
      if !deliveries >= step_limit then begin
        outcome := Step_limit;
        running := false
      end
      else if stop_now () then begin
        outcome := Cancelled;
        running := false
      end
      else begin
        release_due ();
        match pop () with
        | None -> (
            (* Nothing deliverable; fast-forward idle time to the next
               delayed copy, if any. *)
            match Binheap.pop delayed with
            | Some (_, f) -> push f
            | None ->
                (* True quiescence.  If the terminal has not accepted and a
                   supervisor is installed, burn a retransmission round
                   before giving up — losses (drops, crashes, stutter) are
                   the only way a terminating protocol goes quiet early. *)
                if P.accepting states.(t) then begin
                  outcome := Terminated;
                  running := false
                end
                else if !retries_left > 0 && retransmit () then ()
                else begin
                  outcome := Quiescent;
                  running := false
                end)
        | Some f -> (
            incr deliveries;
            decr in_flight;
            (* Every consumed copy gets a journal slot — including copies
               a churn-absent edge or a down vertex swallows — so the
               node count reconciles exactly with [report.deliveries]. *)
            if lin_on then begin
              if !lin_n = Array.length !lin_j then begin
                let bigger = Array.make (2 * !lin_n) 0 in
                Array.blit !lin_j 0 bigger 0 !lin_n;
                lin_j := bigger
              end;
              Array.unsafe_set !lin_j !lin_n
                (f.edge lor (f.lp lsl Obs.Lineage.journal_shift));
              incr lin_n
            end;
            (* [on_pop] sees every consumed copy — including copies a down
               vertex swallows or a garble destroys — because a faithful
               replay schedule must re-deliver exactly those seqs to keep
               the per-vertex fault clocks aligned. *)
            (match on_pop with Some hook -> hook f.seq | None -> ());
            (* The churn fate comes first, on the edge's own offer clock: a
               copy offered on an absent edge is consumed (it occupies a
               replay-schedule slot, so [on_pop] already saw it) but never
               crossed the channel — no bits are charged to the edge, no
               symbol is recorded, and the vertex fates never fire. *)
            let cfate =
              if churny then Churn.Instance.on_offer ci ~edge:f.edge
              else Churn.Cross
            in
            if cfate <> Churn.Cross then begin
              match oh with
              | None -> ()
              | Some h ->
                  Obs.Registry.incr h.c_deliveries;
                  decr until_sample;
                  if !until_sample <= 0 then begin
                    until_sample := h.oh_sample_every;
                    obs_sample ()
                  end;
                  let tl = h.oh_timeline and track = h.oh_track in
                  let mark kind =
                    Obs.Timeline.instant tl ~track
                      (Printf.sprintf "churn.%s:%d" kind f.edge)
                  in
                  (match cfate with
                  | Churn.Removed left ->
                      mark "remove";
                      if left = 0 then mark "heal"
                  | Churn.Back `Heal -> mark "heal"
                  | Churn.Back `Add -> mark "add"
                  | Churn.Down | Churn.Cross -> ())
            end
            else begin
            (* Charge the exact wire size. *)
            let w = Bitio.Bit_writer.create () in
            P.encode w f.msg;
            let bits = Bitio.Bit_writer.length w + payload_bits in
            (match oh with
            | Some h ->
                Obs.Registry.incr h.c_deliveries;
                Obs.Registry.add h.c_bits bits;
                Obs.Registry.observe h.h_message_bits bits;
                decr until_sample;
                if !until_sample <= 0 then begin
                  until_sample := h.oh_sample_every;
                  time_receive := true;
                  obs_sample ()
                end
            | None -> ());
            if verify_codec then begin
              let r =
                Bitio.Bit_reader.of_string
                  ~length_bits:(Bitio.Bit_writer.length w)
                  (Bitio.Bit_writer.to_string w)
              in
              let decoded =
                try P.decode r
                with exn ->
                  raise
                    (Codec_mismatch
                       (Printf.sprintf "%s: decode raised %s" P.name
                          (Printexc.to_string exn)))
              in
              if not (P.equal_message decoded f.msg) then
                raise
                  (Codec_mismatch
                     (Format.asprintf "%s: %a decoded as %a" P.name P.pp_message
                        f.msg P.pp_message decoded));
              if not (Bitio.Bit_reader.at_end r) then
                raise
                  (Codec_mismatch
                     (Printf.sprintf "%s: %d trailing bits after decode" P.name
                        (Bitio.Bit_reader.remaining r)))
            end;
            let key =
              string_of_int (Bitio.Bit_writer.length w)
              ^ ":"
              ^ Bitio.Bit_writer.to_string w
            in
            if not (Hashtbl.mem seen key) then Hashtbl.add seen key ();
            total_bits := !total_bits + bits;
            edge_messages.(f.edge) <- edge_messages.(f.edge) + 1;
            edge_bits.(f.edge) <- edge_bits.(f.edge) + bits;
            if bits > !max_message_bits then max_message_bits := bits;
            (* The vertex-fault fate is decided before decode: a delivery
               consumed by a down, stuttering or crashing vertex is charged
               to the edge (it did cross the channel) but never reaches
               [P.receive] — and skips the corrupt-bit draw, since nobody
               observes the flipped encoding. *)
            let vfate =
              if vfaulty then Vfaults.Instance.on_deliver vfi ~vertex:f.tv
              else Vfaults.Deliver
            in
            match vfate with
            | Vfaults.Stutter ->
                (match oh with
                | Some h -> Obs.Registry.incr h.c_stuttered
                | None -> ())
            | Vfaults.Down_drop ->
                (match oh with
                | Some h ->
                    Obs.Registry.incr h.c_down_drops;
                    (* A restart fires on the down-drop that drains the
                       vertex's downtime; mirror the instance's count
                       exactly (a vertex still down at run end never
                       restarted). *)
                    let nr = Vfaults.Instance.restarts vfi in
                    let seen = Obs.Registry.value h.c_restarts in
                    if nr > seen then Obs.Registry.add h.c_restarts (nr - seen)
                | None -> ())
            | Vfaults.Crash (recovery, _downtime) -> (
                (match oh with
                | Some h -> Obs.Registry.incr h.c_crashes
                | None -> ());
                let old_bits = P.state_bits states.(f.tv) in
                match recovery with
                | Vfaults.Stop ->
                    (* The corpse keeps its state; it is simply deaf.  Its
                       visited flag stands — it {e was} reached. *)
                    ()
                | Vfaults.Amnesia when not supervised ->
                    lost_state_bits := !lost_state_bits + old_bits;
                    (match oh with
                    | Some h -> Obs.Registry.add h.c_lost_state_bits old_bits
                    | None -> ());
                    states.(f.tv) <- initial_of f.tv;
                    if visited.(f.tv) then begin
                      visited.(f.tv) <- false;
                      decr n_visited
                    end
                (* With a supervisor armed its checkpoints are durable
                   storage, so even "full" state loss degrades to a
                   restore: without this, an amnesia crash after a vertex
                   has forwarded its flow erases coverage that no
                   conservation argument can ever notice — the terminal
                   still collects flow 1 and falsely terminates. *)
                | Vfaults.Amnesia | Vfaults.Restore ->
                    let restored = ckpt.(f.tv) in
                    let lost = Stdlib.max 0 (old_bits - P.state_bits restored) in
                    lost_state_bits := !lost_state_bits + lost;
                    (match oh with
                    | Some h -> Obs.Registry.add h.c_lost_state_bits lost
                    | None -> ());
                    states.(f.tv) <- restored;
                    if ckpt_visited.(f.tv) then mark_visited f.tv
                    else if visited.(f.tv) then begin
                      visited.(f.tv) <- false;
                      decr n_visited
                    end)
            | Vfaults.Deliver -> (
            (* A corrupted copy flows through the real decode path: what the
               vertex processes is whatever the flipped encoding decodes to,
               a checksum-bearing codec rejects the flip outright, and an
               unparseable encoding is consumed undelivered. *)
            let delivered =
              if not f.corrupt then Some f.msg
              else
                let len = Bitio.Bit_writer.length w in
                if len = 0 then Some f.msg
                else begin
                  let b = Faults.Instance.corrupt_bit fi ~edge:f.edge ~length_bits:len in
                  let s = flip_bit (Bitio.Bit_writer.to_string w) b in
                  let r = Bitio.Bit_reader.of_string ~length_bits:len s in
                  match P.decode r with
                  | decoded ->
                      if not (P.equal_message decoded f.msg) then begin
                        incr corrupted_deliveries;
                        match oh with
                        | Some h -> Obs.Registry.incr h.c_corrupted
                        | None -> ()
                      end;
                      Some decoded
                  | exception Protocol_intf.Checksum_reject ->
                      incr checksum_rejects;
                      (match oh with
                      | Some h -> Obs.Registry.incr h.c_checksum_rejects
                      | None -> ());
                      None
                  | exception _ ->
                      incr garbled_drops;
                      (match oh with
                      | Some h -> Obs.Registry.incr h.c_garbled
                      | None -> ());
                      None
                end
            in
            match delivered with
            | None -> ()
            | Some msg ->
                (match on_deliver with
                | Some hook ->
                    hook
                      {
                        step = !deliveries;
                        seq = f.seq;
                        from_vertex = f.fv;
                        from_port = f.fp;
                        to_vertex = f.tv;
                        to_port = f.tp;
                        bits;
                      }
                      msg
                | None -> ());
                mark_visited f.tv;
                (* Receive cost is measured only on sampled deliveries —
                   two clock reads per delivery would dominate the cheap
                   protocols, and the histogram only needs a time series,
                   not a total. *)
                let t0 =
                  match oh with
                  | Some h when !time_receive -> Obs.Timeline.now h.oh_timeline
                  | _ -> 0.0
                in
                let state', sends =
                  P.receive
                    ~out_degree:(Digraph.out_degree g f.tv)
                    ~in_degree:(Digraph.in_degree g f.tv)
                    states.(f.tv) msg ~in_port:f.tp
                in
                (match oh with
                | Some h when !time_receive ->
                    time_receive := false;
                    let ns =
                      int_of_float ((Obs.Timeline.now h.oh_timeline -. t0) *. 1e9)
                    in
                    Obs.Registry.add h.c_receive_ns ns;
                    Obs.Registry.observe h.h_receive_ns ns
                | _ -> ());
                states.(f.tv) <- state';
                note_state state';
                if need_ckpt then begin
                  vdeliv.(f.tv) <- vdeliv.(f.tv) + 1;
                  if vdeliv.(f.tv) mod ckpt_cadence = 0 then begin
                    ckpt.(f.tv) <- state';
                    ckpt_visited.(f.tv) <- true;
                    incr checkpoints;
                    match oh with
                    | Some h -> Obs.Registry.incr h.c_checkpoints
                    | None -> ()
                  end
                end;
                lin_parent := !deliveries;
                lin_depth := f.ld;
                List.iter (fun (j, msg) -> send f.tv j msg) sends;
                lin_parent := 0;
                lin_depth := 0;
                if f.tv = t && P.accepting state' then begin
                  outcome := Terminated;
                  running := false
                end)
            end)
      end
    done;
    (* Surface what never got delivered — the in-flight part of the final
       linear cut.  Consumers fold these into a conservation accumulator. *)
    (match on_undelivered with
    | None -> ()
    | Some hook ->
        List.iter (fun f -> hook f.msg) (drain ());
        let continue = ref true in
        while !continue do
          match Binheap.pop delayed with
          | Some (_, f) -> hook f.msg
          | None -> continue := false
        done);
    (match lineage with
    | Some l ->
        Obs.Lineage.note_journal l ~packed:!lin_j
          ~heads:(Array.map fst target) ~count:!lin_n ~track:0
    | None -> ());
    (match oh with
    | Some h ->
        obs_sample ();
        if faulty then begin
          (* The per-edge fault draws live in the Faults instance; folding
             its end-of-run totals into cumulative counters keeps the
             registry reconciled with [fault_stats] across any number of
             runs sharing one sink. *)
          Obs.Registry.add h.c_dropped (Faults.Instance.dropped_copies fi);
          Obs.Registry.add h.c_extra (Faults.Instance.extra_copies fi);
          Obs.Registry.add h.c_delayed (Faults.Instance.delayed_copies fi)
        end;
        if churny then begin
          (* Same folding discipline as the edge-fault counters: the churn
             instance is the source of truth, so [engine.churn.*] reconciles
             exactly with [churn_stats] across runs sharing one sink. *)
          Obs.Registry.add h.c_churn_adds (Churn.Instance.adds ci);
          Obs.Registry.add h.c_churn_removes (Churn.Instance.removes ci);
          Obs.Registry.add h.c_churn_heals (Churn.Instance.heals ci);
          Obs.Registry.add h.c_churn_lost (Churn.Instance.lost ci);
          Obs.Registry.add h.c_churn_violations
            (Churn.Instance.window_violations ci)
        end;
        Obs.Timeline.end_span h.oh_timeline ~track:h.oh_track "engine.run"
    | None -> ());
    (match (obs, gc0) with
    | Some o, Some (g0, mw0) ->
        (* GC cost of the run, as gauges: words are deltas (what this run
           allocated), heap size is the absolute end-of-run footprint. *)
        let g1 = Gc.quick_stat () in
        let set name v =
          Obs.Registry.set (Obs.Registry.gauge o.Obs.registry name) v
        in
        set "engine.gc.minor_words" (int_of_float (Gc.minor_words () -. mw0));
        set "engine.gc.major_words"
          (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
        set "engine.gc.heap_words" g1.Gc.heap_words;
        set "engine.gc.compactions" (g1.Gc.compactions - g0.Gc.compactions);
        (* Mirror the timeline ring's overwrite count into the registry
           (same folding discipline as [c_restarts]: the timeline is the
           source of truth, the counter tracks it monotonically). *)
        let c = Obs.Registry.counter o.Obs.registry "timeline.dropped" in
        let d = Obs.Timeline.dropped o.Obs.timeline in
        let seen = Obs.Registry.value c in
        if d > seen then Obs.Registry.add c (d - seen)
    | _ -> ());
    let fault_stats =
      if not faulty then
        { no_faults_stats with
          corrupted_deliveries = !corrupted_deliveries;
          garbled_drops = !garbled_drops;
          checksum_rejects = !checksum_rejects;
        }
      else
        {
          dropped_copies = Faults.Instance.dropped_copies fi;
          extra_copies = Faults.Instance.extra_copies fi;
          delayed_copies = Faults.Instance.delayed_copies fi;
          corrupted_deliveries = !corrupted_deliveries;
          garbled_drops = !garbled_drops;
          checksum_rejects = !checksum_rejects;
          dead_edges = Faults.Instance.dead_edges fi;
        }
    in
    let vfault_stats =
      {
        crashes = Vfaults.Instance.crashes vfi;
        restarts = Vfaults.Instance.restarts vfi;
        lost_state_bits = !lost_state_bits;
        down_drops = Vfaults.Instance.down_drops vfi;
        stuttered = Vfaults.Instance.stuttered vfi;
        stopped_vertices = Vfaults.Instance.stopped vfi;
        checkpoints = !checkpoints;
        replayed = !replayed;
      }
    in
    let churn_stats =
      if not churny then no_churn_stats
      else
        {
          adds = Churn.Instance.adds ci;
          removes = Churn.Instance.removes ci;
          heals = Churn.Instance.heals ci;
          messages_lost_in_flight = Churn.Instance.lost ci;
          window_violations = Churn.Instance.window_violations ci;
        }
    in
    {
      outcome = !outcome;
      deliveries = !deliveries;
      total_bits = !total_bits;
      max_edge_bits = Array.fold_left Stdlib.max 0 edge_bits;
      max_message_bits = !max_message_bits;
      max_state_bits = !max_state_bits;
      max_in_flight = !max_in_flight;
      final_in_flight = !in_flight;
      distinct_messages = Hashtbl.length seen;
      edge_messages;
      edge_bits;
      visited;
      states;
      fault_stats;
      vfault_stats;
      churn_stats;
    }
end
