type fault_point = { label : string; fault_plan : Faults.plan }

let default_label (p : Faults.plan) =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        (if p.drop > 0.0 then Some (Printf.sprintf "drop=%g" p.drop) else None);
        (if p.duplicate > 0.0 then Some (Printf.sprintf "dup=%g" p.duplicate)
         else None);
        (if p.max_delay > 0 then Some (Printf.sprintf "delay=%d" p.max_delay)
         else None);
        (if p.corrupt > 0.0 then Some (Printf.sprintf "corrupt=%g" p.corrupt)
         else None);
        (if p.kill > 0.0 then Some (Printf.sprintf "kill=%g" p.kill) else None);
      ]
  in
  if parts = [] then "reliable" else String.concat "," parts

let of_plan p = { label = default_label p; fault_plan = p }

let point ?drop ?duplicate ?max_delay ?corrupt ?kill ?label () =
  let p = Faults.plan ?drop ?duplicate ?max_delay ?corrupt ?kill () in
  { label = (match label with Some l -> l | None -> default_label p); fault_plan = p }

let grid ?(drops = [ 0.0 ]) ?(duplicates = [ 0.0 ]) ?(max_delays = [ 0 ])
    ?(corrupts = [ 0.0 ]) ?(kills = [ 0.0 ]) () =
  List.concat_map
    (fun drop ->
      List.concat_map
        (fun duplicate ->
          List.concat_map
            (fun max_delay ->
              List.concat_map
                (fun corrupt ->
                  List.map
                    (fun kill ->
                      point ~drop ~duplicate ~max_delay ~corrupt ~kill ())
                    kills)
                corrupts)
            max_delays)
        duplicates)
    drops

type run_summary = {
  outcome : Engine.outcome;
  visited : bool array;
  deliveries : int;
  total_bits : int;
  final_in_flight : int;
  fault_stats : Engine.fault_stats;
}

type runner = {
  r_name : string;
  run : faults:Faults.t -> step_limit:int -> Digraph.t -> run_summary;
}

module Of_protocol (P : Protocol_intf.PROTOCOL) = struct
  module E = Engine.Make (P)

  let runner ?(scheduler = Scheduler.Fifo) ?name () =
    {
      r_name = (match name with Some n -> n | None -> P.name);
      run =
        (fun ~faults ~step_limit g ->
          let r = E.run ~scheduler ~faults ~step_limit g in
          {
            outcome = r.outcome;
            visited = r.visited;
            deliveries = r.deliveries;
            total_bits = r.total_bits;
            final_in_flight = r.final_in_flight;
            fault_stats = r.fault_stats;
          });
    }
end

type graph_case = { g_name : string; build : seed:int -> Digraph.t }

type violation = {
  v_runner : string;
  v_graph : string;
  v_point : fault_point;
  v_seed : int;
  unreached : int list;
  shrunk_point : fault_point;
  shrunk_seed : int;
}

type starvation = {
  s_runner : string;
  s_graph : string;
  s_point : fault_point;
  s_seed : int;
  starved : int list;
  dark_edges : int list;
}

type cell = {
  c_runner : string;
  c_graph : string;
  c_point : fault_point;
  runs : int;
  terminated : int;
  false_terminated : int;
  quiescent : int;
  step_limited : int;
  total_deliveries : int;
  total_bits : int;
}

type result = {
  cells : cell list;
  violations : violation list;
  starvations : starvation list;
}

(* Reachable-but-unvisited vertices: non-empty at [Terminated] is exactly a
   soundness violation of the broadcast specification. *)
let unreached_of g (s : run_summary) =
  let reach = Digraph.reachable_from_s g in
  List.filter
    (fun v -> reach.(v) && not s.visited.(v))
    (Digraph.vertices g)

let execute ~step_limit (r : runner) (gc : graph_case) (pt : fault_point) seed =
  let g = gc.build ~seed in
  let faults = Faults.uniform pt.fault_plan ~seed in
  (g, r.run ~faults ~step_limit g)

let violates ~step_limit r gc pt seed =
  let g, s = execute ~step_limit r gc pt seed in
  s.outcome = Engine.Terminated && unreached_of g s <> []

(* Shrink a failing point: independently walk every rate down through a
   small candidate ladder while the same (runner, graph, seed) still fails,
   iterating to a fixpoint; then scan the sweep's seeds in order for the
   smallest one failing at the shrunk rates. *)
let shrink ~step_limit r gc pt seed seeds =
  let fails plan = violates ~step_limit r gc (of_plan plan) seed in
  let lower_float v = if v = 0.0 then [] else [ 0.0; v /. 4.0; v /. 2.0 ] in
  let lower_int v = if v = 0 then [] else [ 0; v / 2 ] in
  let try_field plan candidates set =
    let rec first = function
      | [] -> plan
      | c :: rest -> if fails (set plan c) then set plan c else first rest
    in
    first candidates
  in
  let pass (plan : Faults.plan) =
    let plan =
      try_field plan (lower_float plan.drop) (fun p v -> { p with Faults.drop = v })
    in
    let plan =
      try_field plan (lower_float plan.duplicate) (fun p v ->
          { p with Faults.duplicate = v })
    in
    let plan =
      try_field plan (lower_int plan.max_delay) (fun p v ->
          { p with Faults.max_delay = v })
    in
    let plan =
      try_field plan (lower_float plan.corrupt) (fun p v ->
          { p with Faults.corrupt = v })
    in
    try_field plan (lower_float plan.kill) (fun p v -> { p with Faults.kill = v })
  in
  let rec fix plan budget =
    if budget = 0 then plan
    else
      let plan' = pass plan in
      if plan' = plan then plan else fix plan' (budget - 1)
  in
  let shrunk_plan = fix pt.fault_plan 3 in
  let shrunk_point = of_plan shrunk_plan in
  let shrunk_seed =
    match
      List.find_opt
        (fun s -> violates ~step_limit r gc shrunk_point s)
        (List.sort compare seeds)
    with
    | Some s -> s
    | None -> seed
  in
  (shrunk_point, shrunk_seed)

let run ?(step_limit = 200_000) ?(max_shrinks = 8) ~runners ~graphs ~grid ~seeds
    () =
  let cells = ref [] in
  let violations = ref [] in
  let starvations = ref [] in
  let shrinks_left = ref max_shrinks in
  (* Shrink results memoized by the canonical fault-plan key: different
     seeds of one (runner, graph, point) cell usually collapse onto the
     same shrunk plan, and re-deriving it would burn the shrink budget on
     repeats instead of fresh failures. *)
  let shrink_memo : (string, fault_point * int) Hashtbl.t = Hashtbl.create 8 in
  let shrink_key r gc (pt : fault_point) =
    let p = pt.fault_plan in
    Printf.sprintf "%s|%s|%g,%g,%d,%g,%g" r.r_name gc.g_name p.Faults.drop
      p.Faults.duplicate p.Faults.max_delay p.Faults.corrupt p.Faults.kill
  in
  List.iter
    (fun r ->
      List.iter
        (fun gc ->
          List.iter
            (fun pt ->
              let terminated = ref 0 in
              let false_terminated = ref 0 in
              let quiescent = ref 0 in
              let step_limited = ref 0 in
              let total_deliveries = ref 0 in
              let total_bits = ref 0 in
              List.iter
                (fun seed ->
                  let g, s = execute ~step_limit r gc pt seed in
                  total_deliveries := !total_deliveries + s.deliveries;
                  total_bits := !total_bits + s.total_bits;
                  match s.outcome with
                  | Engine.Terminated -> (
                      match unreached_of g s with
                      | [] -> incr terminated
                      | unreached ->
                          incr false_terminated;
                          let shrunk_point, shrunk_seed =
                            let key = shrink_key r gc pt in
                            match Hashtbl.find_opt shrink_memo key with
                            | Some cached -> cached
                            | None ->
                                if !shrinks_left > 0 then begin
                                  decr shrinks_left;
                                  let res =
                                    shrink ~step_limit r gc pt seed seeds
                                  in
                                  Hashtbl.add shrink_memo key res;
                                  res
                                end
                                else (pt, seed)
                          in
                          violations :=
                            {
                              v_runner = r.r_name;
                              v_graph = gc.g_name;
                              v_point = pt;
                              v_seed = seed;
                              unreached;
                              shrunk_point;
                              shrunk_seed;
                            }
                            :: !violations)
                  | Engine.Quiescent ->
                      incr quiescent;
                      let starved = unreached_of g s in
                      if starved <> [] || s.fault_stats.dead_edges <> [] then
                        starvations :=
                          {
                            s_runner = r.r_name;
                            s_graph = gc.g_name;
                            s_point = pt;
                            s_seed = seed;
                            starved;
                            dark_edges = s.fault_stats.dead_edges;
                          }
                          :: !starvations
                  | Engine.Step_limit | Engine.Cancelled -> incr step_limited)
                seeds;
              cells :=
                {
                  c_runner = r.r_name;
                  c_graph = gc.g_name;
                  c_point = pt;
                  runs = List.length seeds;
                  terminated = !terminated;
                  false_terminated = !false_terminated;
                  quiescent = !quiescent;
                  step_limited = !step_limited;
                  total_deliveries = !total_deliveries;
                  total_bits = !total_bits;
                }
                :: !cells)
            grid)
        graphs)
    runners;
  {
    cells = List.rev !cells;
    violations = List.rev !violations;
    starvations = List.rev !starvations;
  }

let sound res = res.violations = []

(* {1 JSON} *)

(* All string escaping goes through the shared {!Json} helper so every JSON
   producer in the tree agrees on the escaping rules. *)
let buf_json_string = Json.buf_string
let buf_list = Json.buf_list
let buf_int_list = Json.buf_int_list

let buf_plan b (p : Faults.plan) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"drop\":%g,\"duplicate\":%g,\"max_delay\":%d,\"corrupt\":%g,\"kill\":%g}"
       p.drop p.duplicate p.max_delay p.corrupt p.kill)

let buf_point b pt =
  Buffer.add_string b "{\"label\":";
  buf_json_string b pt.label;
  Buffer.add_string b ",\"plan\":";
  buf_plan b pt.fault_plan;
  Buffer.add_char b '}'

let buf_cell b c =
  Buffer.add_string b "{\"runner\":";
  buf_json_string b c.c_runner;
  Buffer.add_string b ",\"graph\":";
  buf_json_string b c.c_graph;
  Buffer.add_string b ",\"point\":";
  buf_point b c.c_point;
  Buffer.add_string b
    (Printf.sprintf
       ",\"runs\":%d,\"terminated\":%d,\"false_terminated\":%d,\"quiescent\":%d,\"step_limited\":%d,\"total_deliveries\":%d,\"total_bits\":%d}"
       c.runs c.terminated c.false_terminated c.quiescent c.step_limited
       c.total_deliveries c.total_bits)

let buf_violation b v =
  Buffer.add_string b "{\"runner\":";
  buf_json_string b v.v_runner;
  Buffer.add_string b ",\"graph\":";
  buf_json_string b v.v_graph;
  Buffer.add_string b ",\"point\":";
  buf_point b v.v_point;
  Buffer.add_string b (Printf.sprintf ",\"seed\":%d,\"unreached\":" v.v_seed);
  buf_int_list b v.unreached;
  Buffer.add_string b ",\"shrunk_point\":";
  buf_point b v.shrunk_point;
  Buffer.add_string b (Printf.sprintf ",\"shrunk_seed\":%d}" v.shrunk_seed)

let buf_starvation b s =
  Buffer.add_string b "{\"runner\":";
  buf_json_string b s.s_runner;
  Buffer.add_string b ",\"graph\":";
  buf_json_string b s.s_graph;
  Buffer.add_string b ",\"point\":";
  buf_point b s.s_point;
  Buffer.add_string b (Printf.sprintf ",\"seed\":%d,\"starved\":" s.s_seed);
  buf_int_list b s.starved;
  Buffer.add_string b ",\"dark_edges\":";
  buf_int_list b s.dark_edges;
  Buffer.add_char b '}'

let to_json res =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"cells\":";
  buf_list b buf_cell res.cells;
  Buffer.add_string b ",\"violations\":";
  buf_list b buf_violation res.violations;
  Buffer.add_string b ",\"starvations\":";
  buf_list b buf_starvation res.starvations;
  Buffer.add_string b ",\"sound\":";
  Buffer.add_string b (if sound res then "true" else "false");
  Buffer.add_char b '}';
  Buffer.contents b
